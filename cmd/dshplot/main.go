// Command dshplot renders ASCII versions of the paper's figures straight
// from the analytic collision probability functions:
//
//	dshplot fig1   CPF of the Euclidean family R_{k,w} (k=3, w=1)
//	dshplot fig2   step-function CPF from a mixture of unimodal CPFs
//	dshplot fig3   annulus boundaries alpha-(alphaMax), alpha+(alphaMax)
//	dshplot fig4   polynomial CPFs sim(P(alpha)) of Theorem 5.1
//	dshplot filter CPFs of the filter families D+ and D- (Thm 1.2)
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"dsh/internal/core"
	"dsh/internal/euclid"
	"dsh/internal/poly"
	"dsh/internal/sphere"
)

// plot renders one or more curves over [xLo, xHi] as an ASCII chart.
func plot(title string, xLo, xHi float64, width, height int, curves map[rune]func(float64) float64) {
	fmt.Printf("%s\n", title)
	// Sample curves.
	type sample struct {
		mark rune
		ys   []float64
	}
	var samples []sample
	yMax := math.Inf(-1)
	yMin := 0.0
	order := make([]rune, 0, len(curves))
	for m := range curves {
		order = append(order, m)
	}
	// Deterministic order.
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			if order[j] < order[i] {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	for _, m := range order {
		f := curves[m]
		ys := make([]float64, width)
		for i := 0; i < width; i++ {
			x := xLo + (xHi-xLo)*float64(i)/float64(width-1)
			ys[i] = f(x)
			if !math.IsNaN(ys[i]) && !math.IsInf(ys[i], 0) {
				yMax = math.Max(yMax, ys[i])
			}
		}
		samples = append(samples, sample{mark: m, ys: ys})
	}
	if yMax <= yMin {
		yMax = yMin + 1
	}
	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", width))
	}
	for _, s := range samples {
		for i, y := range s.ys {
			if math.IsNaN(y) || math.IsInf(y, 0) {
				continue
			}
			row := int((y - yMin) / (yMax - yMin) * float64(height-1))
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[height-1-row][i] = s.mark
		}
	}
	for r, line := range grid {
		label := "        "
		if r == 0 {
			label = fmt.Sprintf("%7.3f ", yMax)
		} else if r == height-1 {
			label = fmt.Sprintf("%7.3f ", yMin)
		}
		fmt.Printf("%s|%s\n", label, string(line))
	}
	fmt.Printf("        +%s\n", strings.Repeat("-", width))
	fmt.Printf("        %-10.3g%*s\n\n", xLo, width-9, fmt.Sprintf("%.3g", xHi))
}

func fig1() {
	fam := euclid.NewPStable(16, 3, 1)
	plot("Figure 1: CPF of R_{k,w}, k=3, w=1 (x: distance, y: collision probability)",
		0.2, 10, 72, 16, map[rune]func(float64) float64{'*': fam.ExactCPF})
}

func fig2() {
	// Equal-height unimodal components (squared R_{3,w} at spread widths)
	// and their equal-weight mixture, as in internal/experiments.Figure2.
	widths := []float64{1, 1.5, 2.25, 3.4, 5}
	var parts []core.Family[[]float64]
	weights := make([]float64, len(widths))
	var fams []*euclid.PStable
	for i, w := range widths {
		f := euclid.NewPStable(16, 3, w)
		fams = append(fams, f)
		parts = append(parts, core.Power[[]float64](f, 2))
		weights[i] = 1 / float64(len(widths))
	}
	mix := core.Mixture(parts, weights)
	curves := map[rune]func(float64) float64{'#': mix.CPF().Eval}
	marks := []rune{'a', 'b', 'c', 'd', 'e'}
	for i, f := range fams {
		scaled := weights[i]
		fam := f
		curves[marks[i]] = func(x float64) float64 {
			v := fam.ExactCPF(x)
			return scaled * v * v
		}
	}
	plot("Figure 2: unimodal components (a-e, weighted) and their step-function mixture (#)",
		0.2, 25, 72, 16, curves)
}

func fig3() {
	lo2 := func(a float64) float64 { lo, _ := sphere.AnnulusBounds(a, 2); return lo }
	hi2 := func(a float64) float64 { _, hi := sphere.AnnulusBounds(a, 2); return hi }
	lo4 := func(a float64) float64 { lo, _ := sphere.AnnulusBounds(a, 4); return lo }
	hi4 := func(a float64) float64 { _, hi := sphere.AnnulusBounds(a, 4); return hi }
	id := func(a float64) float64 { return a }
	fmt.Println("(curves shifted by +1 so the plot is non-negative: y = alpha + 1)")
	shift := func(f func(float64) float64) func(float64) float64 {
		return func(a float64) float64 { return f(a) + 1 }
	}
	plot("Figure 3: annulus boundaries vs alphaMax (m: alphaMax, 2: s=2 bounds, 4: s=4 bounds)",
		-0.9, 0.9, 72, 18, map[rune]func(float64) float64{
			'm': shift(id),
			'2': shift(lo2), '3': shift(hi2),
			'4': shift(lo4), '5': shift(hi4),
		})
}

func fig4() {
	mk := func(p poly.Poly) func(float64) float64 {
		return func(a float64) float64 { return sphere.SimHashCPF(p.Eval(a)) }
	}
	plot("Figure 4 (left): sim(P(alpha)) for P = t^2 (a), -t^2 (b), (-t^3+t^2-t)/3 (c)",
		-1, 1, 72, 16, map[rune]func(float64) float64{
			'a': mk(poly.New(0, 0, 1)),
			'b': mk(poly.New(0, 0, -1)),
			'c': mk(poly.New(0, -1.0/3, 1.0/3, -1.0/3)),
		})
	plot("Figure 4 (right): normalized Chebyshev T2 (2), T3 (3), T4 (4), T5 (5)",
		-1, 1, 72, 16, map[rune]func(float64) float64{
			'2': mk(poly.Chebyshev(2).NormalizeAbsSum()),
			'3': mk(poly.Chebyshev(3).NormalizeAbsSum()),
			'4': mk(poly.Chebyshev(4).NormalizeAbsSum()),
			'5': mk(poly.Chebyshev(5).NormalizeAbsSum()),
		})
}

func filterFig() {
	plus := sphere.NewFilterPlus(24, 2)
	minus := sphere.NewFilterMinus(24, 2)
	ann := sphere.NewAnnulus(24, 0.25, 2)
	plot("Filter CPFs (Thm 1.2): D+ (+), D- (-), and the Sec 6.2 annulus product (#) [log10 scale +6]",
		-0.9, 0.9, 72, 18, map[rune]func(float64) float64{
			'+': func(a float64) float64 { return math.Max(0, math.Log10(plus.ExactCPF(a))+6) },
			'-': func(a float64) float64 { return math.Max(0, math.Log10(minus.ExactCPF(a))+6) },
			'#': func(a float64) float64 { return math.Max(0, math.Log10(ann.CPF().Eval(a))+6) },
		})
}

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: dshplot [fig1|fig2|fig3|fig4|filter|all]")
	}
	flag.Parse()
	which := "all"
	if flag.NArg() > 0 {
		which = flag.Arg(0)
	}
	switch which {
	case "fig1":
		fig1()
	case "fig2":
		fig2()
	case "fig3":
		fig3()
	case "fig4":
		fig4()
	case "filter":
		filterFig()
	case "all":
		fig1()
		fig2()
		fig3()
		fig4()
		filterFig()
	default:
		flag.Usage()
		os.Exit(2)
	}
}
