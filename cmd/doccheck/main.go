// Command doccheck fails when any exported identifier in the given
// packages lacks a godoc comment. It walks the non-test Go files of each
// package directory and reports every exported type, function, method,
// const and var declared without a doc comment (grouped const/var blocks
// count as documented when the block or the individual spec is).
//
// Usage:
//
//	go run ./cmd/doccheck ./internal/index [more package dirs...]
//
// CI runs it over internal/index so the serving core's concurrency
// contracts stay written down next to the code they govern.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck <package dir> [more dirs...]")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		missing, err := check(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(2)
		}
		for _, m := range missing {
			fmt.Println(m)
		}
		bad += len(missing)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d exported identifier(s) without a doc comment\n", bad)
		os.Exit(1)
	}
}

// check parses the non-test files of one package directory and returns a
// description of every exported identifier missing a doc comment.
func check(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var missing []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc.Text() == "" && exportedRecv(d) {
						kind := "function"
						if d.Recv != nil {
							kind = "method"
						}
						report(d.Pos(), kind, funcName(d))
					}
				case *ast.GenDecl:
					blockDoc := d.Doc.Text() != ""
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() && !blockDoc && s.Doc.Text() == "" && s.Comment.Text() == "" {
								report(s.Pos(), "type", s.Name.Name)
							}
						case *ast.ValueSpec:
							// A const/var block doc or a per-spec doc or
							// trailing line comment all count.
							if blockDoc || s.Doc.Text() != "" || s.Comment.Text() != "" {
								continue
							}
							for _, name := range s.Names {
								if name.IsExported() {
									report(name.Pos(), kindOf(d.Tok), name.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	return missing, nil
}

// exportedRecv reports whether the function is free-standing or its
// receiver's base type is exported: methods on unexported types are not
// part of the package API.
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch v := t.(type) {
		case *ast.StarExpr:
			t = v.X
		case *ast.IndexExpr:
			t = v.X
		case *ast.IndexListExpr:
			t = v.X
		case *ast.Ident:
			return v.IsExported()
		default:
			return true
		}
	}
}

// funcName renders Method names as Recv.Method for readable reports.
func funcName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	t := d.Recv.List[0].Type
	for {
		switch v := t.(type) {
		case *ast.StarExpr:
			t = v.X
		case *ast.IndexExpr:
			t = v.X
		case *ast.IndexListExpr:
			t = v.X
		case *ast.Ident:
			return v.Name + "." + d.Name.Name
		default:
			return d.Name.Name
		}
	}
}

// kindOf maps the declaration token to a report label.
func kindOf(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}
