package main

import (
	"fmt"
	"io"
	"os"
	"reflect"
	"time"

	"dsh/internal/core"
	"dsh/internal/durable"
	"dsh/internal/index"
	"dsh/internal/sphere"
	"dsh/internal/workload"
	"dsh/internal/xrand"
)

// recoverConfig parameterizes the recovery benchmark: build a durable
// index, delete a slice of it, garbage-collect, close — then race a
// cold start from the on-disk store against a full in-memory rebuild
// over the same live points. Recovery loads segments and key columns
// directly, so on a hash-heavy family it should win by a wide margin
// (the acceptance bar is 5x at 100k points).
type recoverConfig struct {
	Points  int
	Queries int
	Dim     int
	Seed    uint64
	Shards  int
	// Dir is the store directory; empty means a temp dir removed on exit.
	Dir string
}

func runRecover(w io.Writer, cfg recoverConfig) error {
	dir := cfg.Dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "dshbench-recover-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	// Same hash-heavy serving family as the churn mode: k=6 concatenated
	// SimHash draws per repetition, 32 repetitions — the regime where
	// construction cost is dominated by hash evaluations.
	fam := core.Power[[]float64](sphere.SimHash(cfg.Dim), 6)
	const L = 32
	opts := index.DynamicOptions{
		MemtableThreshold: maxInt(cfg.Points/64, 128),
		Policy:            index.CompactLeveled,
	}
	pts := workload.SpherePoints(xrand.New(cfg.Seed+2), cfg.Points, cfg.Dim)
	queries := workload.SpherePoints(xrand.New(cfg.Seed+3), maxInt(cfg.Queries, 8), cfg.Dim)
	fmt.Fprintf(w, "recover: points=%d dim=%d L=%d shards=%d dir=%s\n",
		cfg.Points, cfg.Dim, L, cfg.Shards, dir)

	if cfg.Shards > 1 {
		return runRecoverSharded(w, cfg, dir, fam, L, opts, pts, queries)
	}

	// Build: insert everything, tombstone a tenth, fold the tombstones out
	// through a leveled GC merge, and seal. Close's final checkpoint writes
	// the segment files and manifest that recovery will load.
	buildStart := time.Now()
	dx, err := index.NewDurableDynamic[[]float64](dir, cfg.Seed, fam, L, durable.Float64Codec{},
		opts, durable.Options{Fsync: durable.FsyncNever})
	if err != nil {
		return err
	}
	for _, p := range pts {
		dx.Insert(p)
	}
	for id := 0; id < cfg.Points; id += 10 {
		dx.Delete(id)
	}
	dx.Compact()
	buildTime := time.Since(buildStart)
	closeStart := time.Now()
	dx.Close()
	closeTime := time.Since(closeStart)
	if err := dx.DurableErr(); err != nil {
		return fmt.Errorf("build left a durable error: %w", err)
	}
	fmt.Fprintf(w, "build:   %12v  (inserts+deletes+gc, live=%d)\n", buildTime, dx.Len())
	fmt.Fprintf(w, "close:   %12v  (final checkpoint)\n", closeTime)

	// Cold start: manifest + segment files + retained key columns, zero
	// hash evaluations.
	recoverStart := time.Now()
	rx, err := index.OpenDynamic[[]float64](dir, fam, durable.Float64Codec{}, opts, durable.Options{})
	if err != nil {
		return fmt.Errorf("recovery failed: %w", err)
	}
	recoverTime := time.Since(recoverStart)
	defer rx.Close()

	// Full rebuild: hash every live point back into a fresh index with the
	// same repetition draws — what a process without the durable tier
	// would have to do on every restart.
	live := make([][]float64, 0, rx.Len())
	for id, n := 0, 0; n < rx.Len(); id++ {
		if !rx.Deleted(id) {
			live = append(live, rx.Point(id))
			n++
		}
	}
	rebuildStart := time.Now()
	rebuilt := index.NewDynamic[[]float64](xrand.New(cfg.Seed), fam, L, live, opts)
	rebuildTime := time.Since(rebuildStart)
	defer rebuilt.Close()

	if rx.Len() != rebuilt.Len() {
		return fmt.Errorf("recovered %d live rows, rebuild has %d", rx.Len(), rebuilt.Len())
	}
	for qi, q := range queries[:8] {
		if !reflect.DeepEqual(rx.CollectDistinct(q, 0), rebuilt.CollectDistinct(q, 0)) {
			return fmt.Errorf("query %d: recovered candidate stream diverged from rebuild", qi)
		}
	}
	fmt.Fprintf(w, "recover: %12v  (cold start from disk, 0 hash evaluations)\n", recoverTime)
	fmt.Fprintf(w, "rebuild: %12v  (re-hash %d live points)\n", rebuildTime, len(live))
	fmt.Fprintf(w, "recovery speedup: %.1fx\n", float64(rebuildTime)/float64(recoverTime))
	return nil
}

// runRecoverSharded is the K-shard variant: keyed upserts hash-routed
// across shards, per-shard stores checkpointed and recovered in
// parallel.
func runRecoverSharded(w io.Writer, cfg recoverConfig, dir string, fam core.Family[[]float64], L int,
	dyn index.DynamicOptions, pts, queries [][]float64) error {
	sopts := index.ShardOptions{Shards: cfg.Shards, Routing: index.RouteHash, Dynamic: dyn}
	buildStart := time.Now()
	sx, err := index.NewDurableSharded[[]float64](dir, cfg.Seed, fam, L, durable.Float64Codec{},
		sopts, durable.Options{Fsync: durable.FsyncNever})
	if err != nil {
		return err
	}
	for i, p := range pts {
		sx.InsertKeyed(uint64(i), p)
	}
	for k := 0; k < cfg.Points; k += 10 {
		sx.DeleteKeyed(uint64(k))
	}
	buildTime := time.Since(buildStart)
	closeStart := time.Now()
	sx.Close()
	closeTime := time.Since(closeStart)
	if err := sx.DurableErr(); err != nil {
		return fmt.Errorf("build left a durable error: %w", err)
	}
	fmt.Fprintf(w, "build:   %12v  (keyed inserts+deletes, live=%d)\n", buildTime, sx.Len())
	fmt.Fprintf(w, "close:   %12v  (parallel per-shard checkpoints)\n", closeTime)

	recoverStart := time.Now()
	rx, err := index.OpenSharded[[]float64](dir, fam, durable.Float64Codec{}, dyn, durable.Options{})
	if err != nil {
		return fmt.Errorf("recovery failed: %w", err)
	}
	recoverTime := time.Since(recoverStart)
	defer rx.Close()

	rebuildStart := time.Now()
	rebuilt := index.NewSharded[[]float64](xrand.New(cfg.Seed), fam, L, nil, sopts)
	for i, p := range pts {
		if i%10 != 0 {
			rebuilt.InsertKeyed(uint64(i), p)
		}
	}
	rebuildTime := time.Since(rebuildStart)
	defer rebuilt.Close()

	if rx.Len() != rebuilt.Len() {
		return fmt.Errorf("recovered %d live rows, rebuild has %d", rx.Len(), rebuilt.Len())
	}
	for qi, q := range queries[:8] {
		if !reflect.DeepEqual(rx.CollectDistinct(q, 0), sx.CollectDistinct(q, 0)) {
			return fmt.Errorf("query %d: recovered candidate stream diverged", qi)
		}
	}
	fmt.Fprintf(w, "recover: %12v  (parallel cold start, %d shards, 0 hash evaluations)\n", recoverTime, rx.Shards())
	fmt.Fprintf(w, "rebuild: %12v  (re-hash %d live points)\n", rebuildTime, rebuilt.Len())
	fmt.Fprintf(w, "recovery speedup: %.1fx\n", float64(rebuildTime)/float64(recoverTime))
	return nil
}
