package main

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"dsh/internal/index"
	"dsh/internal/sphere"
	"dsh/internal/vec"
	"dsh/internal/workload"
	"dsh/internal/xrand"
)

// heapAllocated returns the cumulative bytes allocated so far; deltas
// around a query loop expose the per-query allocation cost of the serving
// path (the flat-table engine should be near zero in steady state).
func heapAllocated() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.TotalAlloc
}

// throughputConfig parameterizes the serving-throughput mode: an annulus
// index over n random unit vectors, answering query batches through the
// concurrent batch engine and reporting QPS plus latency percentiles
// against the sequential per-query loop.
type throughputConfig struct {
	Points    int
	Queries   int
	BatchSize int
	Workers   int
	Dim       int
	Seed      uint64
}

func runThroughput(w io.Writer, cfg throughputConfig) {
	rng := xrand.New(cfg.Seed)
	const alphaTarget = 0.5
	fam := sphere.NewAnnulus(cfg.Dim, alphaTarget, 1.8)
	L := index.RepetitionsForCPF(fam.CPF().Eval(alphaTarget))
	within := func(q, x []float64) bool {
		a := vec.Dot(q, x)
		return a >= 0.3 && a <= 0.7
	}

	points := workload.SpherePoints(rng, cfg.Points, cfg.Dim)
	// Half the queries are planted at the CPF peak of an indexed point;
	// half are uniform over the sphere.
	queries := make([][]float64, cfg.Queries)
	for i := range queries {
		if i%2 == 0 {
			queries[i] = workload.PointAtAlpha(rng, points[i%cfg.Points], alphaTarget)
		} else {
			queries[i] = vec.RandomUnit(rng, cfg.Dim)
		}
	}

	buildStart := time.Now()
	ai := index.NewAnnulus[[]float64](rng, fam, L, points, within)
	buildTime := time.Since(buildStart)
	fmt.Fprintf(w, "throughput: n=%d queries=%d batch=%d workers=%d dim=%d L=%d\n",
		cfg.Points, cfg.Queries, cfg.BatchSize, cfg.Workers, cfg.Dim, L)
	fmt.Fprintf(w, "build: %v\n", buildTime)

	// Sequential baseline: one query at a time, driving one reusable
	// Querier so the loop exercises the zero-allocation steady state.
	qr := ai.Index().NewQuerier()
	seqPer := make([]index.QueryStats, len(queries))
	seqFound := 0
	seqAllocs := heapAllocated()
	seqStart := time.Now()
	for i, q := range queries {
		qStart := time.Now()
		id, st := ai.QueryWith(qr, q)
		st.Latency = time.Since(qStart)
		seqPer[i] = st
		if id >= 0 {
			seqFound++
		}
	}
	seqWall := time.Since(seqStart)
	// Measure before aggregation so B/q reflects the query path alone.
	seqAllocs = heapAllocated() - seqAllocs
	seqAgg := index.AggregateStats(seqPer, seqWall)
	printThroughputRow(w, "sequential", seqAgg, seqFound, seqAllocs)

	// Batched: fan each batch of BatchSize queries across the pool. The
	// allocation delta is scoped to the QueryBatch calls themselves so the
	// B/q column is comparable with the sequential row (harness
	// bookkeeping like batchPer growth is excluded from both).
	opts := index.BatchOptions{Workers: cfg.Workers}
	var batchPer []index.QueryStats
	batchFound := 0
	var batchAllocs uint64
	var wall time.Duration
	for lo := 0; lo < len(queries); lo += cfg.BatchSize {
		hi := lo + cfg.BatchSize
		if hi > len(queries) {
			hi = len(queries)
		}
		before := heapAllocated()
		ids, per, agg := ai.QueryBatch(queries[lo:hi], opts)
		batchAllocs += heapAllocated() - before
		for _, id := range ids {
			if id >= 0 {
				batchFound++
			}
		}
		batchPer = append(batchPer, per...)
		wall += agg.Wall
	}
	batchAgg := index.AggregateStats(batchPer, wall)
	printThroughputRow(w, "batch", batchAgg, batchFound, batchAllocs)
	if seqAgg.Wall > 0 && batchAgg.Wall > 0 {
		fmt.Fprintf(w, "speedup: %.2fx\n", seqAgg.Wall.Seconds()/batchAgg.Wall.Seconds())
	}
	if seqFound != batchFound {
		fmt.Fprintf(w, "WARNING: sequential found %d, batch found %d (expected identical)\n",
			seqFound, batchFound)
	}
}

func printThroughputRow(w io.Writer, label string, agg index.BatchStats, found int, allocs uint64) {
	fmt.Fprintf(w, "%-10s qps=%10.0f  p50=%-10v p90=%-10v p99=%-10v max=%-10v cand/q=%.1f B/q=%-8.0f found=%d/%d\n",
		label, agg.QPS, agg.LatP50, agg.LatP90, agg.LatP99, agg.LatMax,
		float64(agg.Candidates)/float64(agg.Queries), float64(allocs)/float64(agg.Queries), found, agg.Queries)
}
