package main

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"dsh"
	"dsh/internal/index"
	"dsh/internal/sphere"
	"dsh/internal/vec"
	"dsh/internal/workload"
	"dsh/internal/xrand"
)

// heapAllocated returns the cumulative bytes allocated so far; deltas
// around a query loop expose the per-query allocation cost of the serving
// path (the flat-table engine should be near zero in steady state).
func heapAllocated() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.TotalAlloc
}

// throughputConfig parameterizes the serving-throughput mode: an index
// over n random unit vectors, answering query batches through the
// concurrent batch engine and reporting QPS plus latency percentiles
// against the sequential per-query loop. The default (Family == "") runs
// the annulus query structure; -family switches to distinct-candidate
// serving under the selected hash family and adds a hash-vs-probe
// cost-split row.
type throughputConfig struct {
	Points    int
	Queries   int
	BatchSize int
	Workers   int
	Dim       int
	Seed      uint64
	Family    string
}

func runThroughput(w io.Writer, cfg throughputConfig) error {
	if cfg.Family != "" {
		return runThroughputFamily(w, cfg)
	}
	rng := xrand.New(cfg.Seed)
	const alphaTarget = 0.5
	fam := sphere.NewAnnulus(cfg.Dim, alphaTarget, 1.8)
	L := index.RepetitionsForCPF(fam.CPF().Eval(alphaTarget))
	within := func(q, x []float64) bool {
		a := vec.Dot(q, x)
		return a >= 0.3 && a <= 0.7
	}

	points := workload.SpherePoints(rng, cfg.Points, cfg.Dim)
	// Half the queries are planted at the CPF peak of an indexed point;
	// half are uniform over the sphere.
	queries := make([][]float64, cfg.Queries)
	for i := range queries {
		if i%2 == 0 {
			queries[i] = workload.PointAtAlpha(rng, points[i%cfg.Points], alphaTarget)
		} else {
			queries[i] = vec.RandomUnit(rng, cfg.Dim)
		}
	}

	buildStart := time.Now()
	ai := index.NewAnnulus[[]float64](rng, fam, L, points, within)
	buildTime := time.Since(buildStart)
	fmt.Fprintf(w, "throughput: n=%d queries=%d batch=%d workers=%d dim=%d L=%d\n",
		cfg.Points, cfg.Queries, cfg.BatchSize, cfg.Workers, cfg.Dim, L)
	fmt.Fprintf(w, "build: %v\n", buildTime)

	// Sequential baseline: one query at a time, driving one reusable
	// Querier so the loop exercises the zero-allocation steady state.
	qr := ai.Index().NewQuerier()
	seqPer := make([]index.QueryStats, len(queries))
	seqFound := 0
	seqAllocs := heapAllocated()
	seqStart := time.Now()
	for i, q := range queries {
		qStart := time.Now()
		id, st := ai.QueryWith(qr, q)
		st.Latency = time.Since(qStart)
		seqPer[i] = st
		if id >= 0 {
			seqFound++
		}
	}
	seqWall := time.Since(seqStart)
	// Measure before aggregation so B/q reflects the query path alone.
	seqAllocs = heapAllocated() - seqAllocs
	seqAgg := index.AggregateStats(seqPer, seqWall)
	printThroughputRow(w, "sequential", seqAgg, seqFound, seqAllocs)

	// Batched: fan each batch of BatchSize queries across the pool. The
	// allocation delta is scoped to the QueryBatch calls themselves so the
	// B/q column is comparable with the sequential row (harness
	// bookkeeping like batchPer growth is excluded from both).
	opts := index.BatchOptions{Workers: cfg.Workers}
	var batchPer []index.QueryStats
	batchFound := 0
	var batchAllocs uint64
	var wall time.Duration
	for lo := 0; lo < len(queries); lo += cfg.BatchSize {
		hi := lo + cfg.BatchSize
		if hi > len(queries) {
			hi = len(queries)
		}
		before := heapAllocated()
		ids, per, agg := ai.QueryBatch(queries[lo:hi], opts)
		batchAllocs += heapAllocated() - before
		for _, id := range ids {
			if id >= 0 {
				batchFound++
			}
		}
		batchPer = append(batchPer, per...)
		wall += agg.Wall
	}
	batchAgg := index.AggregateStats(batchPer, wall)
	printThroughputRow(w, "batch", batchAgg, batchFound, batchAllocs)
	if seqAgg.Wall > 0 && batchAgg.Wall > 0 {
		fmt.Fprintf(w, "speedup: %.2fx\n", seqAgg.Wall.Seconds()/batchAgg.Wall.Seconds())
	}
	if seqFound != batchFound {
		fmt.Fprintf(w, "WARNING: sequential found %d, batch found %d (expected identical)\n",
			seqFound, batchFound)
	}
	return nil
}

// runThroughputFamily benchmarks distinct-candidate serving under the
// -family flag: a static Index over the selected family, a sequential
// scalar loop through one reusable Querier, then the concurrent batch
// engine (whose default repetition-blocked pre-hash exercises
// core.BatchHasher when the family provides it), followed by the
// hash-vs-probe cost split of the scalar path.
func runThroughputFamily(w io.Writer, cfg throughputConfig) error {
	fam, L, err := servingFamily(cfg.Family, cfg.Dim)
	if err != nil {
		return err
	}
	rng := xrand.New(cfg.Seed)
	points := workload.SpherePoints(rng, cfg.Points, cfg.Dim)
	queries := workload.SpherePoints(rng, cfg.Queries, cfg.Dim)

	buildStart := time.Now()
	ix := index.New(rng, fam, L, points)
	buildTime := time.Since(buildStart)
	fmt.Fprintf(w, "throughput: family=%s n=%d queries=%d batch=%d workers=%d dim=%d L=%d\n",
		fam.Name(), cfg.Points, cfg.Queries, cfg.BatchSize, cfg.Workers, cfg.Dim, L)
	fmt.Fprintf(w, "build: %v\n", buildTime)

	evalsBefore := dsh.Metrics().Counters["dsh_query_hash_evals_total"]

	// Sequential baseline: the scalar zero-allocation serving loop, whose
	// per-query latency includes the L hash evaluations — the minuend of
	// the cost split below.
	qr := ix.NewQuerier()
	seqPer := make([]index.QueryStats, len(queries))
	seqAllocs := heapAllocated()
	seqStart := time.Now()
	for i, q := range queries {
		qStart := time.Now()
		_, st := qr.CollectDistinct(q, 0)
		st.Latency = time.Since(qStart)
		seqPer[i] = st
	}
	seqWall := time.Since(seqStart)
	seqAllocs = heapAllocated() - seqAllocs
	seqAgg := index.AggregateStats(seqPer, seqWall)
	seqEvals := dsh.Metrics().Counters["dsh_query_hash_evals_total"] - evalsBefore
	printFamilyRow(w, "sequential", seqAgg, seqAllocs)

	// Batched serving through the repetition-blocked pre-hash engine.
	opts := index.BatchOptions{Workers: cfg.Workers}
	var batchPer []index.QueryStats
	var batchAllocs uint64
	var wall time.Duration
	for lo := 0; lo < len(queries); lo += cfg.BatchSize {
		hi := lo + cfg.BatchSize
		if hi > len(queries) {
			hi = len(queries)
		}
		before := heapAllocated()
		_, per, agg := ix.QueryBatch(queries[lo:hi], opts)
		batchAllocs += heapAllocated() - before
		batchPer = append(batchPer, per...)
		wall += agg.Wall
	}
	batchAgg := index.AggregateStats(batchPer, wall)
	printFamilyRow(w, "batch", batchAgg, batchAllocs)
	if seqAgg.Wall > 0 && batchAgg.Wall > 0 {
		fmt.Fprintf(w, "speedup: %.2fx\n", seqAgg.Wall.Seconds()/batchAgg.Wall.Seconds())
	}

	hashPerQ := hashCostPerQuery(rng, fam, L, queries)
	printCostSplit(w, hashPerQ, seqAgg.LatMean, seqAgg, seqEvals)
	return nil
}

func printFamilyRow(w io.Writer, label string, agg index.BatchStats, allocs uint64) {
	fmt.Fprintf(w, "%-10s qps=%10.0f  p50=%-10v p90=%-10v p99=%-10v max=%-10v cand/q=%.1f probes/q=%.1f B/q=%.0f\n",
		label, agg.QPS, agg.LatP50, agg.LatP90, agg.LatP99, agg.LatMax,
		float64(agg.Candidates)/float64(agg.Queries),
		float64(agg.Probes)/float64(agg.Queries),
		float64(allocs)/float64(agg.Queries))
}

func printThroughputRow(w io.Writer, label string, agg index.BatchStats, found int, allocs uint64) {
	fmt.Fprintf(w, "%-10s qps=%10.0f  p50=%-10v p90=%-10v p99=%-10v max=%-10v cand/q=%.1f B/q=%-8.0f found=%d/%d\n",
		label, agg.QPS, agg.LatP50, agg.LatP90, agg.LatP99, agg.LatMax,
		float64(agg.Candidates)/float64(agg.Queries), float64(allocs)/float64(agg.Queries), found, agg.Queries)
}
