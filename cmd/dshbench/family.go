package main

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"dsh/internal/core"
	"dsh/internal/index"
	"dsh/internal/workload"
	"dsh/internal/xrand"
)

// servingFamily resolves the -family flag into a family plus a repetition
// count for the serving benchmarks. The name set and construction live in
// workload.ServingFamily, shared with cmd/dshserve so both tools accept
// identical names and build identical indexes.
func servingFamily(name string, dim int) (core.Family[[]float64], int, error) {
	return workload.ServingFamily(name, dim)
}

// hashCostPerQuery times a dedicated hashing pass — L freshly sampled
// draws' query hashers over every query, exactly the per-query hashing
// work of the scalar serving path — and returns the mean per-query cost.
// Sampling fresh draws keeps the measurement independent of the index
// being benchmarked while hashing statistically identical functions.
func hashCostPerQuery(rng *xrand.Rand, fam core.Family[[]float64], L int, queries [][]float64) time.Duration {
	if len(queries) == 0 || L <= 0 {
		return 0
	}
	pairs := make([]core.Pair[[]float64], L)
	for i := range pairs {
		pairs[i] = fam.Sample(rng)
	}
	var sink uint64
	start := time.Now()
	for _, q := range queries {
		for _, pair := range pairs {
			sink ^= pair.G.Hash(q)
		}
	}
	wall := time.Since(start)
	runtime.KeepAlive(sink)
	return wall / time.Duration(len(queries))
}

// printCostSplit renders the hash-vs-probe cost decomposition of a serving
// run: the measured per-query hash cost, the remainder of the scalar
// per-query latency attributed to table probing and candidate handling,
// and the per-query hash-eval / probe counts (hash evals from the metrics
// plane's dsh_query_hash_evals_total delta over the run, probes from the
// batch stats' Probes counter).
func printCostSplit(w io.Writer, hashPerQ time.Duration, scalarLatMean time.Duration, agg index.BatchStats, hashEvals uint64) {
	probePerQ := scalarLatMean - hashPerQ
	if probePerQ < 0 {
		probePerQ = 0
	}
	pct := 0.0
	if scalarLatMean > 0 {
		pct = 100 * float64(hashPerQ) / float64(scalarLatMean)
	}
	fmt.Fprintf(w, "%-12s hash/q=%-10v probe/q=%-10v hash-share=%4.1f%% evals/q=%.1f probes/q=%.1f\n",
		"cost-split", hashPerQ, probePerQ, pct,
		float64(hashEvals)/float64(agg.Queries),
		float64(agg.Probes)/float64(agg.Queries))
}
