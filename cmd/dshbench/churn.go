package main

import (
	"fmt"
	"io"
	"sync"
	"time"

	"dsh"
	"dsh/internal/index"
	"dsh/internal/stats"
	"dsh/internal/workload"
	"dsh/internal/xrand"
)

// churnConfig parameterizes the dynamic-index churn mode: a DynamicIndex
// over random unit vectors absorbing interleaved inserts, deletes and
// query batches, then compacted, so the report shows serving QPS and
// latency percentiles before and after compaction, plus insert latency
// percentiles that expose the freeze write stall.
type churnConfig struct {
	Points    int
	Queries   int
	BatchSize int
	Workers   int
	Dim       int
	Seed      uint64
	// Policy is the background merge policy: "all" (monolithic) or
	// "tiered".
	Policy string
	// Freeze selects the memtable freeze mode: "inline" (the crossing
	// Insert builds the segment under the lock) or "async" (detach and
	// build off-lock).
	Freeze string
	// Shards is the number of ShardedIndex shards; values > 1 (or
	// Writers > 1) switch the mode to the multi-writer benchmark, which
	// also runs a single-shard baseline for comparison.
	Shards int
	// Writers is the number of concurrent insert/delete goroutines in the
	// multi-writer benchmark.
	Writers int
	// Deletes is the per-insert probability that a delete of a random
	// earlier point follows the insert.
	Deletes float64
	// Routing selects the write path: "rr" (round-robin Insert with dense
	// ids) or "hash" (keyed upserts through InsertKeyed, which on a
	// ShardedIndex hash-routes keys to shards).
	Routing string
	// Family selects the serving hash family (see servingFamily); empty
	// means the historical default, SimHash^6 at L = 32.
	Family string
}

// dynamicOptions translates the string flags into index options.
func (cfg churnConfig) dynamicOptions() (index.DynamicOptions, error) {
	// The threshold is kept small relative to the insert count so freezes
	// land well inside the measured percentiles: the inline write stall
	// strikes once per MemtableThreshold inserts, so with threshold ~1% of
	// the stream the p99/p99.9 insert columns expose it directly.
	opts := index.DynamicOptions{
		MemtableThreshold:    maxInt(cfg.Points/64, 128),
		BackgroundCompaction: true,
	}
	switch cfg.Policy {
	case "", "all":
		opts.Policy = index.CompactAll
	case "tiered":
		opts.Policy = index.CompactTiered
	case "leveled":
		opts.Policy = index.CompactLeveled
	default:
		return opts, fmt.Errorf("unknown -policy %q (want all, tiered or leveled)", cfg.Policy)
	}
	switch cfg.Freeze {
	case "", "inline":
	case "async":
		opts.AsyncFreeze = true
	default:
		return opts, fmt.Errorf("unknown -freeze %q (want inline or async)", cfg.Freeze)
	}
	return opts, nil
}

func runChurn(w io.Writer, cfg churnConfig) error {
	opts, err := cfg.dynamicOptions()
	if err != nil {
		return err
	}
	switch cfg.Routing {
	case "", "rr", "hash":
	default:
		return fmt.Errorf("unknown -routing %q (want rr or hash)", cfg.Routing)
	}
	if cfg.Shards > 1 || cfg.Writers > 1 {
		if err := runShardedChurn(w, cfg, opts); err != nil {
			return err
		}
		printMetricsTable(w)
		return nil
	}
	keyed := cfg.Routing == "hash"
	rng := xrand.New(cfg.Seed)
	fam, L, err := servingFamily(orDefault(cfg.Family, "simhash"), cfg.Dim)
	if err != nil {
		return err
	}

	initial := cfg.Points / 2
	pts := workload.SpherePoints(rng, cfg.Points, cfg.Dim)
	queries := workload.SpherePoints(rng, cfg.Queries, cfg.Dim)

	// In keyed mode every point enters through InsertKeyed under its stream
	// position as key, so the delete side can churn through DeleteKeyed and
	// leveled GC gets a key table to remap.
	buildStart := time.Now()
	var dx *index.DynamicIndex[[]float64]
	if keyed {
		dx = index.NewDynamic(rng, fam, L, nil, opts)
		for i, p := range pts[:initial] {
			dx.InsertKeyed(uint64(i), p)
		}
	} else {
		dx = index.NewDynamic(rng, fam, L, pts[:initial], opts)
	}
	defer dx.Close()
	buildTime := time.Since(buildStart)
	fmt.Fprintf(w, "churn: family=%s n0=%d inserts=%d queries=%d batch=%d workers=%d dim=%d L=%d policy=%s freeze=%s deletes=%.2f routing=%s\n",
		fam.Name(), initial, cfg.Points-initial, cfg.Queries, cfg.BatchSize, cfg.Workers, cfg.Dim, L,
		orDefault(cfg.Policy, "all"), orDefault(cfg.Freeze, "inline"), cfg.Deletes, orDefault(cfg.Routing, "rr"))
	fmt.Fprintf(w, "build: %v\n", buildTime)

	// Query batches run through the RunBatch worker pool with one pooled
	// DynamicQuerier per in-flight query — the serving loop, with no
	// per-query result copying — so the B/q column measures the query
	// path itself. runPhase scopes the allocation delta to the batches.
	batchOpts := index.BatchOptions{Workers: cfg.Workers}
	pool := &dynQuerierPool{dx: dx}
	runPhase := func(qs [][]float64, between func(batch int)) (index.BatchStats, uint64) {
		per := make([]index.QueryStats, len(qs))
		var wall time.Duration
		var allocs uint64
		for lo, batch := 0, 0; lo < len(qs); lo, batch = lo+cfg.BatchSize, batch+1 {
			hi := lo + cfg.BatchSize
			if hi > len(qs) {
				hi = len(qs)
			}
			if between != nil {
				between(batch)
			}
			chunk := qs[lo:hi]
			chunkPer := per[lo:hi]
			before := heapAllocated()
			wall += index.RunBatch(len(chunk), batchOpts, func(i int, _ *xrand.Rand) {
				qr := pool.get()
				start := time.Now()
				_, st := qr.CollectDistinct(chunk[i], 0)
				st.Latency = time.Since(start)
				chunkPer[i] = st
				pool.put(qr)
			})
			allocs += heapAllocated() - before
		}
		return index.AggregateStats(per, wall), allocs
	}

	// Churn phase: before each batch, insert a slice of the remaining
	// points and delete a matching fraction of live ids, so queries run
	// against a layered index (frozen segments + live memtable +
	// tombstones). Half the query budget is spent here, half after
	// compaction. Every Insert is timed individually: the p99/max columns
	// expose the freeze write stall that -freeze async removes.
	half := cfg.Queries / 2
	batches := (half + cfg.BatchSize - 1) / cfg.BatchSize
	mrng := xrand.New(cfg.Seed + 1)
	nextInsert := initial
	insertLat := make([]float64, 0, cfg.Points-initial)
	var insertWall time.Duration
	churnAgg, churnAllocs := runPhase(queries[:half], func(batch int) {
		target := initial + (cfg.Points-initial)*(batch+1)/batches
		for ; nextInsert < target; nextInsert++ {
			start := time.Now()
			if keyed {
				dx.InsertKeyed(uint64(nextInsert), pts[nextInsert])
			} else {
				dx.Insert(pts[nextInsert])
			}
			lat := time.Since(start)
			insertWall += lat
			insertLat = append(insertLat, float64(lat))
			if mrng.Bernoulli(cfg.Deletes) {
				victim := mrng.Intn(nextInsert + 1)
				if keyed {
					dx.DeleteKeyed(uint64(victim))
				} else {
					// A renumbering GC may have shrunk the id space below
					// the stream position; out-of-range ids are no-ops.
					dx.Delete(victim)
				}
			}
		}
	})
	fmt.Fprintf(w, "state: live=%d segments=%d memtable=%d pending-freezes=%d\n",
		dx.Len(), dx.Segments(), dx.MemtableLen(), dx.PendingFreezes())
	printGCRow(w, "pre-compact gc", dx.GCStats())
	printInsertRow(w, insertLat, insertWall)
	printChurnRow(w, "pre-compact", churnAgg, churnAllocs)

	compactStart := time.Now()
	dx.Compact()
	fmt.Fprintf(w, "compact: %v (live=%d segments=%d memtable=%d)\n",
		time.Since(compactStart), dx.Len(), dx.Segments(), dx.MemtableLen())
	printGCRow(w, "post-compact gc", dx.GCStats())

	evalsBefore := dsh.Metrics().Counters["dsh_query_hash_evals_total"]
	steadyAgg, steadyAllocs := runPhase(queries[half:], nil)
	steadyEvals := dsh.Metrics().Counters["dsh_query_hash_evals_total"] - evalsBefore
	printChurnRow(w, "post-compact", steadyAgg, steadyAllocs)
	if churnAgg.QPS > 0 && steadyAgg.QPS > 0 {
		fmt.Fprintf(w, "compaction speedup: %.2fx\n", steadyAgg.QPS/churnAgg.QPS)
	}
	// Hash-vs-probe decomposition of the post-compact scalar serving path:
	// the serving loop above hashes inline per query, so its mean latency
	// splits into the dedicated hashing pass's per-query cost and the
	// probing/candidate remainder.
	hashPerQ := hashCostPerQuery(xrand.New(cfg.Seed+2), fam, L, queries[half:])
	printCostSplit(w, hashPerQ, steadyAgg.LatMean, steadyAgg, steadyEvals)
	printMetricsTable(w)
	return nil
}

// printMetricsTable renders the run's cumulative lifecycle counters from
// the process-wide metrics plane — the same series /metrics exposes, so
// the table doubles as a sanity check that the instrumentation observed
// the churn the benchmark generated (freezes, compactions, GC folds,
// snapshots, WAL traffic).
func printMetricsTable(w io.Writer) {
	m := dsh.Metrics()
	c, g, h := m.Counters, m.Gauges, m.Histograms
	p99 := func(name string) time.Duration {
		return time.Duration(h[name].Quantile(0.99))
	}
	fmt.Fprintf(w, "-- metrics plane --\n")
	fmt.Fprintf(w, "%-12s queries=%d probes=%d candidates=%d distinct=%d hash-evals=%d p99=%v\n",
		"m/query", c["dsh_queries_total"], c["dsh_query_probes_total"],
		c["dsh_query_candidates_total"], c["dsh_query_distinct_total"],
		c["dsh_query_hash_evals_total"], p99("dsh_query_latency_ns"))
	fmt.Fprintf(w, "%-12s inserts=%d upserts=%d deletes=%d deletes-keyed=%d\n",
		"m/write", c["dsh_inserts_total"], c["dsh_upserts_total"],
		c["dsh_deletes_total"], c["dsh_deletes_keyed_total"])
	fmt.Fprintf(w, "%-12s inline=%d async=%d installs=%d rows=%d build-p99=%v\n",
		"m/freeze", c["dsh_freezes_inline_total"], c["dsh_freezes_async_total"],
		c["dsh_freeze_installs_total"], c["dsh_frozen_rows_total"],
		p99("dsh_freeze_build_ns"))
	fmt.Fprintf(w, "%-12s all=%d tiered=%d upper=%d gc=%d rows=%d p99=%v\n",
		"m/compact", c["dsh_compactions_all_total"], c["dsh_compactions_tiered_total"],
		c["dsh_compactions_upper_total"], c["dsh_compactions_gc_total"],
		c["dsh_compaction_rows_total"], p99("dsh_compaction_ns"))
	fmt.Fprintf(w, "%-12s collected=%d reclaimed=%dB\n",
		"m/gc", c["dsh_gc_collected_rows_total"], c["dsh_gc_reclaimed_bitmap_bytes_total"])
	fmt.Fprintf(w, "%-12s taken=%d open=%d optimistic=%d retries=%d fallback=%d\n",
		"m/snapshot", c["dsh_snapshots_total"], g["dsh_snapshots_open"],
		c["dsh_snapshot_optimistic_total"], c["dsh_snapshot_retries_total"],
		c["dsh_snapshot_fallback_total"])
	fmt.Fprintf(w, "%-12s appends=%d bytes=%d fsyncs=%d rotations=%d seg-writes=%d manifests=%d faults=%d\n",
		"m/durable", c["dsh_wal_appends_total"], c["dsh_wal_append_bytes_total"],
		c["dsh_wal_fsyncs_total"], c["dsh_wal_rotations_total"],
		c["dsh_segment_writes_total"], c["dsh_manifest_commits_total"],
		g["dsh_durable_faults"])
}

// dynQuerierPool pools DynamicQueriers for the churn serving loop.
type dynQuerierPool struct {
	dx   *index.DynamicIndex[[]float64]
	pool sync.Pool
}

func (p *dynQuerierPool) get() *index.DynamicQuerier[[]float64] {
	if qr, ok := p.pool.Get().(*index.DynamicQuerier[[]float64]); ok {
		return qr
	}
	return p.dx.NewQuerier()
}

func (p *dynQuerierPool) put(qr *index.DynamicQuerier[[]float64]) { p.pool.Put(qr) }

func printInsertRow(w io.Writer, lat []float64, wall time.Duration) {
	if len(lat) == 0 {
		return
	}
	rate := float64(len(lat)) / wall.Seconds()
	fmt.Fprintf(w, "%-12s rate=%9.0f/s p50=%-10v p99=%-10v p99.9=%-10v max=%-10v\n",
		"inserts", rate,
		time.Duration(stats.Quantile(lat, 0.50)),
		time.Duration(stats.Quantile(lat, 0.99)),
		time.Duration(stats.Quantile(lat, 0.999)),
		time.Duration(stats.Quantile(lat, 1.0)))
}

func printChurnRow(w io.Writer, label string, agg index.BatchStats, allocs uint64) {
	fmt.Fprintf(w, "%-12s qps=%10.0f  p50=%-10v p90=%-10v p99=%-10v max=%-10v cand/q=%.1f probes/q=%.1f B/q=%.0f\n",
		label, agg.QPS, agg.LatP50, agg.LatP90, agg.LatP99, agg.LatMax,
		float64(agg.Candidates)/float64(agg.Queries),
		float64(agg.Probes)/float64(agg.Queries),
		float64(allocs)/float64(agg.Queries))
}

// printGCRow reports the garbage profile of the index: live versus dead
// (tombstoned, not yet collected) rows, the tombstone-bitmap footprint,
// and the cumulative rows dropped / bitmap bytes reclaimed by renumbering
// GC merges.
func printGCRow(w io.Writer, label string, st index.GCStats) {
	fmt.Fprintf(w, "%-15s live=%d dead=%d bitmap=%dB collected=%d reclaimed=%dB\n",
		label, st.LiveRows, st.DeadRows, st.BitmapBytes, st.CollectedRows, st.ReclaimedBitmapBytes)
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
