// Command dshbench runs the experiment harness that reproduces every
// figure and quantitative theorem of "Distance-Sensitive Hashing"
// (PODS 2018). Each experiment prints a table of paper-predicted versus
// measured values.
//
// Usage:
//
//	dshbench [-trials N] [-seed S] [-csv] [experiment...]
//
// Experiments: fig1 fig2 fig3 fig4 filter-cpf crosspolytope lowerbound
// antibit euclid-rho polycpf annulus rangereport privacy combinators all
// (default: all).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"dsh/internal/experiments"
	"dsh/obshttp"
)

var registry = map[string]func(experiments.Config) *experiments.Table{
	"fig1":          experiments.Figure1,
	"fig2":          experiments.Figure2,
	"fig3":          experiments.Figure3,
	"fig4":          experiments.Figure4,
	"filter-cpf":    experiments.FilterCPF,
	"crosspolytope": experiments.CrossPolytopeExp,
	"lowerbound":    experiments.LowerBound,
	"antibit":       experiments.AntiBit,
	"euclid-rho":    experiments.EuclidRho,
	"polycpf":       experiments.PolyCPF,
	"annulus":       experiments.AnnulusSearch,
	"rangereport":   experiments.RangeReport,
	"privacy":       experiments.Privacy,
	"combinators":   experiments.Combinators,
	"join":          experiments.AnnulusJoin,
	"cpfdesign":     experiments.CPFDesign,
	"taylor":        experiments.TaylorCPF,
	"hyperplane":    experiments.HyperplaneQueries,
	"kernel":        experiments.KernelSpaces,
}

func names() []string {
	var out []string
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func main() {
	trials := flag.Int("trials", 20000, "Monte-Carlo samples per probed point")
	seed := flag.Uint64("seed", 7, "random seed")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	throughput := flag.Bool("throughput", false, "run the serving-throughput mode instead of experiments")
	churn := flag.Bool("churn", false, "run the dynamic-index churn mode (interleaved inserts/deletes/queries, QPS before/after compaction)")
	recoverMode := flag.Bool("recover", false, "run the durable-recovery mode (cold start from an on-disk store vs a full in-memory rebuild)")
	dir := flag.String("dir", "", "recover: store directory (default: a temp dir removed on exit)")
	points := flag.Int("points", 20000, "throughput/churn: indexed points")
	queries := flag.Int("queries", 2000, "throughput/churn: total queries")
	batch := flag.Int("batch", 256, "throughput/churn: queries per batch")
	workers := flag.Int("workers", 0, "throughput/churn: batch workers (0 = GOMAXPROCS)")
	dim := flag.Int("dim", 24, "throughput/churn: dimension")
	family := flag.String("family", "", "throughput/churn: serving hash family (cp, fastcp, simhash or batchsimhash; default: the annulus family in -throughput, simhash in -churn)")
	policy := flag.String("policy", "all", "churn: background compaction policy (all, tiered or leveled)")
	freeze := flag.String("freeze", "inline", "churn: memtable freeze mode (inline or async)")
	shards := flag.Int("shards", 1, "churn, recover: ShardedIndex shard count (>1 runs the multi-writer or sharded-recovery variant)")
	writers := flag.Int("writers", 1, "churn: concurrent insert/delete goroutines (multi-writer benchmark)")
	deletes := flag.Float64("deletes", 0.25, "churn: per-insert probability of a trailing delete")
	routing := flag.String("routing", "rr", "churn: insert routing (rr = dense round-robin ids via Insert, hash = keyed upserts via InsertKeyed)")
	serveMode := flag.Bool("serve", false, "run the serving-edge load-generator mode (real HTTP connections, client-observed latency percentiles)")
	serveAddr := flag.String("serveaddr", "", "serve: target address of a running dshserve (empty = self-host on 127.0.0.1:0 and report in-process coalescing/cache metrics)")
	conns := flag.Int("conns", 16, "serve: concurrent client connections")
	writeFrac := flag.Float64("writefrac", 0.1, "serve: fraction of ops that are inserts")
	hotFrac := flag.Float64("hotfrac", 0.5, "serve: fraction of queries drawn from the hot set (cacheable working set)")
	hotSet := flag.Int("hotset", 64, "serve: distinct hot query vectors")
	metricsAddr := flag.String("metrics", "", "serve the metrics plane (Prometheus /metrics, /debug/vars, /debug/pprof) on this address for the duration of the run (e.g. :9100 or 127.0.0.1:0)")
	metricsLinger := flag.Duration("metrics-linger", 0, "keep the -metrics endpoint up this long after the run finishes (for scrapers that attach late)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dshbench [flags] [experiment...]\n")
		fmt.Fprintf(os.Stderr, "experiments: %s all\n", strings.Join(names(), " "))
		flag.PrintDefaults()
	}
	flag.Parse()

	if *metricsAddr != "" {
		srv, addr, err := obshttp.Start(*metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dshbench: -metrics %s: %v\n", *metricsAddr, err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "dshbench: metrics plane on http://%s/ (/metrics, /debug/vars, /debug/pprof/)\n", addr)
		defer func() {
			if *metricsLinger > 0 {
				fmt.Fprintf(os.Stderr, "dshbench: metrics plane lingering %v\n", *metricsLinger)
				time.Sleep(*metricsLinger)
			}
			srv.Close()
		}()
	}

	if *throughput || *churn || *recoverMode || *serveMode {
		if *points <= 0 || *queries <= 0 || *batch <= 0 || *dim <= 0 {
			fmt.Fprintln(os.Stderr, "dshbench: -points, -queries, -batch and -dim must be positive")
			os.Exit(2)
		}
	}
	if *serveMode {
		err := runServeLoad(os.Stdout, serveLoadConfig{
			Points:    *points,
			Queries:   *queries,
			Dim:       *dim,
			Seed:      *seed,
			Shards:    max(*shards, 1),
			Family:    *family,
			Routing:   *routing,
			Addr:      *serveAddr,
			Conns:     *conns,
			WriteFrac: *writeFrac,
			HotFrac:   *hotFrac,
			HotSet:    *hotSet,
			BatchSize: *batch,
			Workers:   *workers,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "dshbench: %v\n", err)
			os.Exit(2)
		}
		return
	}
	if *recoverMode {
		if *shards < 1 {
			fmt.Fprintln(os.Stderr, "dshbench: -shards must be positive")
			os.Exit(2)
		}
		err := runRecover(os.Stdout, recoverConfig{
			Points:  *points,
			Queries: *queries,
			Dim:     *dim,
			Seed:    *seed,
			Shards:  *shards,
			Dir:     *dir,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "dshbench: %v\n", err)
			os.Exit(2)
		}
		return
	}
	if *churn {
		if *shards < 1 || *writers < 1 {
			fmt.Fprintln(os.Stderr, "dshbench: -shards and -writers must be positive")
			os.Exit(2)
		}
		if *deletes < 0 || *deletes > 1 {
			fmt.Fprintln(os.Stderr, "dshbench: -deletes must be in [0, 1]")
			os.Exit(2)
		}
		err := runChurn(os.Stdout, churnConfig{
			Points:    *points,
			Queries:   *queries,
			BatchSize: *batch,
			Workers:   *workers,
			Dim:       *dim,
			Seed:      *seed,
			Policy:    *policy,
			Freeze:    *freeze,
			Shards:    *shards,
			Writers:   *writers,
			Deletes:   *deletes,
			Routing:   *routing,
			Family:    *family,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "dshbench: %v\n", err)
			os.Exit(2)
		}
		return
	}
	if *throughput {
		err := runThroughput(os.Stdout, throughputConfig{
			Points:    *points,
			Queries:   *queries,
			BatchSize: *batch,
			Workers:   *workers,
			Dim:       *dim,
			Seed:      *seed,
			Family:    *family,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "dshbench: %v\n", err)
			os.Exit(2)
		}
		return
	}

	cfg := experiments.Config{Trials: *trials, Seed: *seed}
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"all"}
	}
	var selected []string
	for _, a := range args {
		if a == "all" {
			selected = names()
			break
		}
		if _, ok := registry[a]; !ok {
			fmt.Fprintf(os.Stderr, "dshbench: unknown experiment %q\n", a)
			flag.Usage()
			os.Exit(2)
		}
		selected = append(selected, a)
	}
	for _, name := range selected {
		tbl := registry[name](cfg)
		if *csv {
			tbl.RenderCSV(os.Stdout)
		} else {
			tbl.Render(os.Stdout)
		}
	}
}
