package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dsh"
	"dsh/internal/index"
	"dsh/internal/serve"
	"dsh/internal/workload"
	"dsh/internal/xrand"
)

// serveLoadConfig parameterizes the -serve mode: a closed-loop load
// generator driving real HTTP connections against a dshserve-compatible
// endpoint. With Addr empty the benchmark self-hosts a server on a
// loopback listener and additionally reports the coalescing and cache
// metrics only visible from inside the process.
type serveLoadConfig struct {
	Points    int     // self-host: preloaded points
	Queries   int     // total requests across all connections
	Dim       int     // vector dimension
	Seed      uint64  // rng seed for data and op mix
	Shards    int     // self-host: shard count
	Family    string  // self-host: serving hash family ("" = simhash)
	Routing   string  // self-host: "hash" or "rr"
	Addr      string  // target base address; "" = self-host on 127.0.0.1:0
	Conns     int     // concurrent client connections
	WriteFrac float64 // fraction of ops that are inserts
	HotFrac   float64 // fraction of queries drawn from the hot set
	HotSet    int     // distinct hot query vectors (cacheable working set)
	BatchSize int     // self-host: coalescer flush size
	Workers   int     // self-host: batch engine workers
}

// runServeLoad drives the serving edge over real sockets: Conns
// goroutines issue a WriteFrac/1-WriteFrac mix of keyed inserts and
// single queries, queries drawn from a HotSet-sized working set with
// probability HotFrac (exercising the hot-query cache) and from the full
// sphere otherwise. Reports QPS and client-observed latency percentiles
// split by op class, plus shed counts; self-hosted runs add dispatcher
// batch and cache-hit-rate lines from the in-process metrics plane.
func runServeLoad(w io.Writer, cfg serveLoadConfig) error {
	if cfg.Conns <= 0 || cfg.HotSet <= 0 {
		return fmt.Errorf("-conns and -hotset must be positive")
	}
	if cfg.WriteFrac < 0 || cfg.WriteFrac > 1 || cfg.HotFrac < 0 || cfg.HotFrac > 1 {
		return fmt.Errorf("-writefrac and -hotfrac must be in [0, 1]")
	}

	base := cfg.Addr
	selfHosted := base == ""
	var before dsh.MetricsSnapshot
	if selfHosted {
		famName := cfg.Family
		if famName == "" {
			famName = "simhash"
		}
		fam, L, err := servingFamily(famName, cfg.Dim)
		if err != nil {
			return err
		}
		routing := index.RouteHash
		if cfg.Routing == "rr" {
			routing = index.RouteRoundRobin
		}
		ix := index.NewSharded(xrand.New(cfg.Seed), fam, L, nil,
			index.ShardOptions{Shards: cfg.Shards, Routing: routing})
		defer ix.Close()
		for i, p := range workload.SpherePoints(xrand.New(cfg.Seed+1), cfg.Points, cfg.Dim) {
			if routing == index.RouteHash {
				ix.InsertKeyed(uint64(i), p)
			} else {
				ix.Insert(p)
			}
		}
		srv := serve.New(ix, serve.Options{
			Dim:       cfg.Dim,
			BatchSize: cfg.BatchSize,
			Workers:   cfg.Workers,
		})
		defer srv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		httpSrv := &http.Server{Handler: srv.Handler()}
		go httpSrv.Serve(ln)
		defer httpSrv.Close()
		base = "http://" + ln.Addr().String()
		fmt.Fprintf(w, "serve-load self-hosted on %s (family=%s L=%d shards=%d points=%d)\n",
			base, famName, L, cfg.Shards, cfg.Points)
		before = dsh.Metrics()
	} else if len(base) >= 1 && base[0] == ':' {
		base = "http://127.0.0.1" + base
	} else if len(base) < 7 || base[:7] != "http://" {
		base = "http://" + base
	}

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        cfg.Conns * 2,
		MaxIdleConnsPerHost: cfg.Conns * 2,
	}}
	hot := workload.SpherePoints(xrand.New(cfg.Seed+2), cfg.HotSet, cfg.Dim)

	perConn := cfg.Queries / cfg.Conns
	if perConn == 0 {
		perConn = 1
	}
	type connStats struct {
		reads, writes []time.Duration
		shed, errs    int
	}
	stats := make([]connStats, cfg.Conns)
	var wg sync.WaitGroup
	var firstErr atomic.Value
	start := time.Now()
	for c := 0; c < cfg.Conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := xrand.New(cfg.Seed + 100 + uint64(c))
			cold := workload.SpherePoints(xrand.New(cfg.Seed+200+uint64(c)), 64, cfg.Dim)
			st := &stats[c]
			for i := 0; i < perConn; i++ {
				var path string
				var body any
				isWrite := float64(rng.Uint64()%1000)/1000 < cfg.WriteFrac
				if isWrite {
					path = "/v1/insert"
					key := rng.Uint64() % uint64(cfg.Points+1)
					vec := cold[rng.Uint64()%uint64(len(cold))]
					if cfg.Routing == "rr" && cfg.Addr == "" {
						body = map[string]any{"vector": vec}
					} else {
						body = map[string]any{"key": key, "vector": vec}
					}
				} else {
					path = "/v1/query"
					var vec []float64
					if float64(rng.Uint64()%1000)/1000 < cfg.HotFrac {
						vec = hot[rng.Uint64()%uint64(len(hot))]
					} else {
						vec = cold[rng.Uint64()%uint64(len(cold))]
					}
					body = map[string]any{"vector": vec}
				}
				buf, _ := json.Marshal(body)
				t0 := time.Now()
				resp, err := client.Post(base+path, "application/json", bytes.NewReader(buf))
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					st.errs++
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				d := time.Since(t0)
				switch {
				case resp.StatusCode == http.StatusTooManyRequests:
					st.shed++
				case resp.StatusCode != http.StatusOK:
					st.errs++
				case isWrite:
					st.writes = append(st.writes, d)
				default:
					st.reads = append(st.reads, d)
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return fmt.Errorf("serve-load transport: %w", err)
	}

	var reads, writes []time.Duration
	shed, errs := 0, 0
	for i := range stats {
		reads = append(reads, stats[i].reads...)
		writes = append(writes, stats[i].writes...)
		shed += stats[i].shed
		errs += stats[i].errs
	}
	total := len(reads) + len(writes) + shed + errs
	fmt.Fprintf(w, "serve-load conns=%d ops=%d elapsed=%v qps=%.0f shed=%d errs=%d\n",
		cfg.Conns, total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds(), shed, errs)
	printLatency(w, "serve-read ", reads)
	printLatency(w, "serve-write", writes)

	if selfHosted {
		after := dsh.Metrics()
		delta := func(name string) uint64 { return after.Counters[name] - before.Counters[name] }
		flushes := delta("dsh_serve_batches_total")
		bh := after.Histograms["dsh_serve_batch_size"]
		bhBefore := before.Histograms["dsh_serve_batch_size"]
		var meanBatch float64
		if n := bh.Count - bhBefore.Count; n > 0 {
			meanBatch = float64(bh.Sum-bhBefore.Sum) / float64(n)
		}
		hits, misses, stale := delta("dsh_serve_cache_hits_total"),
			delta("dsh_serve_cache_misses_total"), delta("dsh_serve_cache_stale_total")
		var hitRate float64
		if hits+misses > 0 {
			hitRate = float64(hits) / float64(hits+misses)
		}
		fmt.Fprintf(w, "serve-batch flushes=%d coalesced=%d mean-size=%.2f\n",
			flushes, delta("dsh_serve_coalesced_batches_total"), meanBatch)
		fmt.Fprintf(w, "serve-cache hits=%d misses=%d stale=%d hit-rate=%.3f\n",
			hits, misses, stale, hitRate)
	}
	return nil
}

// printLatency emits sorted-percentile client latencies for one op class.
func printLatency(w io.Writer, label string, ds []time.Duration) {
	if len(ds) == 0 {
		fmt.Fprintf(w, "%s n=0\n", label)
		return
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	pct := func(q float64) time.Duration {
		i := int(q * float64(len(ds)-1))
		return ds[i]
	}
	fmt.Fprintf(w, "%s n=%d p50=%v p99=%v p99.9=%v max=%v\n",
		label, len(ds), pct(0.50).Round(time.Microsecond), pct(0.99).Round(time.Microsecond),
		pct(0.999).Round(time.Microsecond), ds[len(ds)-1].Round(time.Microsecond))
}
