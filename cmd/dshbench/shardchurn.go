package main

import (
	"fmt"
	"io"
	"sync"
	"time"

	"dsh/internal/core"
	"dsh/internal/index"
	"dsh/internal/stats"
	"dsh/internal/workload"
	"dsh/internal/xrand"
)

// The multi-writer churn benchmark: W concurrent writer goroutines pump
// inserts and deletes into a ShardedIndex while query batches run against
// it, first with the requested shard count and then with a single shard —
// the single-lock baseline — so the report shows what sharding buys under
// write contention: multi-writer insert p50/p99 and serving QPS, side by
// side.

// shardPassResult carries one pass's measurements.
type shardPassResult struct {
	shards    int
	build     time.Duration
	insertLat []float64
	writeWall time.Duration
	churnAgg  index.BatchStats
	compact   time.Duration
	postAgg   index.BatchStats
	live      int
	preGC     index.GCStats
	postGC    index.GCStats
}

func runShardedChurn(w io.Writer, cfg churnConfig, opts index.DynamicOptions) error {
	rng := xrand.New(cfg.Seed)
	fam, L, err := servingFamily(orDefault(cfg.Family, "simhash"), cfg.Dim)
	if err != nil {
		return err
	}
	initial := cfg.Points / 2
	pts := workload.SpherePoints(rng, cfg.Points, cfg.Dim)
	queries := workload.SpherePoints(rng, cfg.Queries, cfg.Dim)
	// main.go rejects non-positive values before this mode is reached.
	shards, writers := cfg.Shards, cfg.Writers

	fmt.Fprintf(w, "churn: family=%s n0=%d inserts=%d queries=%d batch=%d workers=%d writers=%d shards=%d dim=%d L=%d policy=%s freeze=%s deletes=%.2f routing=%s\n",
		fam.Name(), initial, cfg.Points-initial, cfg.Queries, cfg.BatchSize, cfg.Workers, writers, shards, cfg.Dim, L,
		orDefault(cfg.Policy, "all"), orDefault(cfg.Freeze, "inline"), cfg.Deletes, orDefault(cfg.Routing, "rr"))

	// Sharded pass first, then the single-shard (single structural lock)
	// baseline over the same point and query streams.
	passes := []int{shards}
	if shards > 1 {
		passes = append(passes, 1)
	}
	results := make([]shardPassResult, 0, len(passes))
	for _, k := range passes {
		res := shardedChurnPass(cfg, opts, fam, L, pts, queries, initial, k, writers)
		results = append(results, res)
		label := fmt.Sprintf("shards=%d", k)
		if k == 1 && shards > 1 {
			label = "baseline(1)"
		}
		fmt.Fprintf(w, "%s: build=%v live=%d compact=%v\n", label, res.build, res.live, res.compact)
		printGCRow(w, label+" gc pre", res.preGC)
		printGCRow(w, label+" gc post", res.postGC)
		printInsertRowLabel(w, label+" ins", res.insertLat, res.writeWall)
		printShardChurnRow(w, label+" churn", res.churnAgg)
		printShardChurnRow(w, label+" post", res.postAgg)
	}
	if len(results) == 2 {
		a, b := results[0], results[1]
		p99a := stats.Quantile(a.insertLat, 0.99)
		p99b := stats.Quantile(b.insertLat, 0.99)
		if p99a > 0 && b.churnAgg.QPS > 0 {
			fmt.Fprintf(w, "sharding: insert p99 %.2fx lower, churn qps %.2fx vs single lock\n",
				p99b/p99a, a.churnAgg.QPS/b.churnAgg.QPS)
		}
	}
	return nil
}

// shardedChurnPass builds a ShardedIndex with k shards over the first
// half of pts, then runs `writers` concurrent insert/delete goroutines
// over the second half while query batches cycle against the index; after
// the writers drain it compacts and measures the steady state.
func shardedChurnPass(cfg churnConfig, opts index.DynamicOptions, fam core.Family[[]float64], L int,
	pts, queries [][]float64, initial, k, writers int) shardPassResult {

	keyed := cfg.Routing == "hash"
	buildStart := time.Now()
	var sx *index.ShardedIndex[[]float64]
	if keyed {
		// Hash routing: every point enters through InsertKeyed under its
		// stream position as key, including the initial build, so deletes
		// can target keys and leveled GC has a key table to remap.
		sx = index.NewSharded(xrand.New(cfg.Seed), fam, L, nil,
			index.ShardOptions{Shards: k, Routing: index.RouteHash, Dynamic: opts})
		for i, p := range pts[:initial] {
			sx.InsertKeyed(uint64(i), p)
		}
	} else {
		sx = index.NewSharded(xrand.New(cfg.Seed), fam, L, pts[:initial],
			index.ShardOptions{Shards: k, Dynamic: opts})
	}
	defer sx.Close()
	res := shardPassResult{shards: k, build: time.Since(buildStart)}

	toInsert := pts[initial:]
	per := len(toInsert) / writers
	latCh := make(chan []float64, writers)
	writeStart := time.Now()
	var wg sync.WaitGroup
	for wi := 0; wi < writers; wi++ {
		lo, hi := wi*per, (wi+1)*per
		if wi == writers-1 {
			hi = len(toInsert)
		}
		wg.Add(1)
		go func(wi, lo, hi int) {
			defer wg.Done()
			mrng := xrand.New(cfg.Seed + uint64(wi) + 1)
			lats := make([]float64, 0, hi-lo)
			for i := lo; i < hi; i++ {
				t0 := time.Now()
				var bound int
				if keyed {
					sx.InsertKeyed(uint64(initial+i), toInsert[i])
					bound = initial + i
				} else {
					bound = sx.Insert(toInsert[i])
				}
				lats = append(lats, float64(time.Since(t0)))
				if mrng.Bernoulli(cfg.Deletes) {
					// Deleting a not-yet-assigned id (or key) is a harmless
					// no-op, so an upper bound on the space suffices.
					victim := mrng.Intn(bound + 1)
					if keyed {
						sx.DeleteKeyed(uint64(victim))
					} else {
						sx.Delete(victim)
					}
				}
			}
			latCh <- lats
		}(wi, lo, hi)
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		res.writeWall = time.Since(writeStart)
		close(done)
	}()

	// Serve query batches against the churning index until the writers
	// drain (at least one full pass over the churn half so the row is
	// never empty).
	batchOpts := index.BatchOptions{Workers: cfg.Workers}
	half := queries[:len(queries)/2]
	var churnPer []index.QueryStats
	var churnWall time.Duration
	for pass := 0; ; pass++ {
		for lo := 0; lo < len(half); lo += cfg.BatchSize {
			hi := min(lo+cfg.BatchSize, len(half))
			_, perStats, agg := sx.QueryBatch(half[lo:hi], batchOpts)
			churnPer = append(churnPer, perStats...)
			churnWall += agg.Wall
		}
		select {
		case <-done:
		default:
			continue
		}
		break
	}
	res.churnAgg = index.AggregateStats(churnPer, churnWall)
	for wi := 0; wi < writers; wi++ {
		res.insertLat = append(res.insertLat, <-latCh...)
	}

	res.preGC = sx.GCStats()
	compactStart := time.Now()
	sx.Compact()
	res.compact = time.Since(compactStart)
	res.postGC = sx.GCStats()
	res.live = sx.Len()

	post := queries[len(queries)/2:]
	var postPer []index.QueryStats
	var postWall time.Duration
	for lo := 0; lo < len(post); lo += cfg.BatchSize {
		hi := min(lo+cfg.BatchSize, len(post))
		_, perStats, agg := sx.QueryBatch(post[lo:hi], batchOpts)
		postPer = append(postPer, perStats...)
		postWall += agg.Wall
	}
	res.postAgg = index.AggregateStats(postPer, postWall)
	return res
}

// printInsertRowLabel is printInsertRow with a caller-chosen row label.
func printInsertRowLabel(w io.Writer, label string, lat []float64, wall time.Duration) {
	if len(lat) == 0 || wall <= 0 {
		return
	}
	rate := float64(len(lat)) / wall.Seconds()
	fmt.Fprintf(w, "%-18s rate=%9.0f/s p50=%-10v p99=%-10v p99.9=%-10v max=%-10v\n",
		label, rate,
		time.Duration(stats.Quantile(lat, 0.50)),
		time.Duration(stats.Quantile(lat, 0.99)),
		time.Duration(stats.Quantile(lat, 0.999)),
		time.Duration(stats.Quantile(lat, 1.0)))
}

// printShardChurnRow is printChurnRow without the allocation column (the
// multi-writer passes interleave writer allocations with the query loop,
// so a per-query B/q delta would be meaningless).
func printShardChurnRow(w io.Writer, label string, agg index.BatchStats) {
	if agg.Queries == 0 {
		return
	}
	fmt.Fprintf(w, "%-18s qps=%10.0f  p50=%-10v p90=%-10v p99=%-10v max=%-10v cand/q=%.1f probes/q=%.1f\n",
		label, agg.QPS, agg.LatP50, agg.LatP90, agg.LatP99, agg.LatMax,
		float64(agg.Candidates)/float64(agg.Queries),
		float64(agg.Probes)/float64(agg.Queries))
}
