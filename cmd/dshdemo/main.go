// Command dshdemo runs an end-to-end "close but not too close"
// recommendation demo (the paper's motivating example): it builds a corpus
// of synthetic article embeddings grouped into topics, indexes them with
// the Section 6.2 unimodal annulus family, and answers queries that ask for
// articles on the same topic but not near-duplicates.
//
// Usage:
//
//	dshdemo [-n 20000] [-d 32] [-topics 50] [-alpha 0.55] [-width 0.15] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dsh/internal/index"
	"dsh/internal/sphere"
	"dsh/internal/vec"
	"dsh/internal/workload"
	"dsh/internal/xrand"
)

func main() {
	n := flag.Int("n", 20000, "number of articles")
	d := flag.Int("d", 32, "embedding dimension")
	topics := flag.Int("topics", 50, "number of topics")
	alpha := flag.Float64("alpha", 0.55, "target similarity (peak of the annulus)")
	width := flag.Float64("width", 0.15, "accepted half-width around the target similarity")
	seed := flag.Uint64("seed", 1, "random seed")
	queries := flag.Int("queries", 20, "number of demo queries")
	flag.Parse()

	rng := xrand.New(*seed)
	perTopic := *n / *topics
	fmt.Printf("building corpus: %d articles, %d topics, d=%d\n", perTopic**topics, *topics, *d)
	corpus := workload.NewArticleCorpus(rng, *d, *topics, perTopic, 0.55)

	fam := sphere.NewAnnulus(*d, *alpha, 2.2)
	fPeak := fam.CPF().Eval(*alpha)
	L := index.RepetitionsForCPF(fPeak)
	fmt.Printf("annulus family %s: f(peak) = %.5f, L = %d repetitions\n", fam.Name(), fPeak, L)

	within := func(q, x []float64) bool {
		a := vec.Dot(q, x)
		return a >= *alpha-*width && a <= *alpha+*width
	}

	start := time.Now()
	ai := index.NewAnnulus[[]float64](rng, fam, L, corpus.Points, within)
	fmt.Printf("index built over %d points in %v\n\n", len(corpus.Points), time.Since(start))

	ls := index.NewLinearScan(corpus.Points)
	hits, lsCand, aiCand := 0, 0, 0
	var aiTime, lsTime time.Duration
	for qi := 0; qi < *queries; qi++ {
		qid := rng.Intn(len(corpus.Points))
		q := corpus.Points[qid]

		t0 := time.Now()
		id, stats := ai.Query(q)
		aiTime += time.Since(t0)
		aiCand += stats.Candidates

		t0 = time.Now()
		lid, lstats := ls.Query(q, within)
		lsTime += time.Since(t0)
		lsCand += lstats.Candidates

		status := "miss"
		if id >= 0 {
			hits++
			sim := vec.Dot(q, corpus.Points[id])
			sameTopic := corpus.Topic[id] == corpus.Topic[qid]
			status = fmt.Sprintf("hit sim=%.3f same-topic=%v (scanned %d)", sim, sameTopic, stats.Candidates)
		}
		if qi < 5 {
			fmt.Printf("query %2d (topic %3d): %s; linear scan found=%v after %d points\n",
				qi, corpus.Topic[qid], status, lid >= 0, lstats.Candidates)
		}
	}
	fmt.Printf("\nsummary over %d queries:\n", *queries)
	fmt.Printf("  dsh annulus: recall %.2f, avg candidates %.0f, avg time %v\n",
		float64(hits)/float64(*queries), float64(aiCand)/float64(*queries), aiTime/time.Duration(*queries))
	fmt.Printf("  linear scan: avg candidates %.0f, avg time %v\n",
		float64(lsCand)/float64(*queries), lsTime/time.Duration(*queries))
	if hits == 0 {
		fmt.Fprintln(os.Stderr, "warning: no hits; try increasing -width or lowering -alpha")
	}
}
