// Command dshserve exposes a sharded DSH index over HTTP: keyed or
// round-robin mutations, single and batch queries with cross-connection
// coalescing, admission control with load shedding, and an
// epoch-invalidated hot-query cache. The metrics plane (/metrics,
// /debug/vars, /debug/pprof) rides on the same listener.
//
// Usage:
//
//	dshserve [-addr :8080] [-dim 24] [-points 20000] [-family simhash]
//	         [-routing hash|rr] [-dir STORE] [serving knobs...]
//
// With -dir the index is durable: an existing store is recovered
// (cold-start, zero hash evaluations), an empty directory is initialised
// and preloaded with -points synthetic sphere points. Without -dir the
// index is in-memory. SIGINT/SIGTERM triggers a graceful drain: the
// admission latch flips to 503, parked queries complete, then the
// listener and the index shut down.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dsh/internal/durable"
	"dsh/internal/index"
	"dsh/internal/serve"
	"dsh/internal/workload"
	"dsh/internal/xrand"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dim := flag.Int("dim", 24, "vector dimension")
	points := flag.Int("points", 20000, "synthetic sphere points preloaded into a fresh index")
	L := flag.Int("l", 0, "repetitions (0 = family default)")
	shards := flag.Int("shards", 4, "shard count")
	seed := flag.Uint64("seed", 7, "random seed for hash draws and preload data")
	family := flag.String("family", "simhash", "hash family (cp, fastcp, simhash or batchsimhash)")
	routing := flag.String("routing", "hash", "insert routing: hash (keyed upserts) or rr (dense round-robin ids)")
	dir := flag.String("dir", "", "durable store directory (empty = in-memory index)")
	batch := flag.Int("batch", 64, "coalescer flush size")
	linger := flag.Duration("linger", 250*time.Microsecond, "coalescer linger (how long a short batch waits for company)")
	inflight := flag.Int("inflight", 1024, "admission budget: max concurrent requests")
	queue := flag.Int("queue", 0, "intake queue depth (0 = 4x batch)")
	shed := flag.Int("shed", 0, "queue-depth shed watermark (0 = 3/4 of queue)")
	cache := flag.Int("cache", 4096, "hot-query cache entries (negative disables)")
	timeout := flag.Duration("timeout", 2*time.Second, "per-request deadline")
	maxbatch := flag.Int("maxbatch", 1024, "max vectors per /v1/querybatch request")
	workers := flag.Int("workers", 0, "batch query workers (0 = GOMAXPROCS)")
	flag.Parse()

	fam, famL, err := workload.ServingFamily(*family, *dim)
	if err != nil {
		fatal(err)
	}
	if *L > 0 {
		famL = *L
	}
	route := index.RouteHash
	switch *routing {
	case "hash":
	case "rr":
		route = index.RouteRoundRobin
	default:
		fatal(fmt.Errorf("unknown -routing %q (want hash or rr)", *routing))
	}
	sopts := index.ShardOptions{Shards: *shards, Routing: route}

	var ix *index.ShardedIndex[[]float64]
	switch {
	case *dir == "":
		ix = index.NewSharded(xrand.New(*seed), fam, famL, nil, sopts)
		preload(ix, route, *seed, *points, *dim)
		log.Printf("in-memory index: %d points, %d shards, L=%d, family=%s", ix.Len(), *shards, famL, *family)
	case hasManifest(*dir):
		start := time.Now()
		ix, err = index.OpenSharded(*dir, fam, durable.Float64Codec{}, index.DynamicOptions{}, durable.Options{})
		if err != nil {
			fatal(fmt.Errorf("recover %s: %w", *dir, err))
		}
		log.Printf("recovered %s: %d points in %v", *dir, ix.Len(), time.Since(start).Round(time.Millisecond))
	default:
		ix, err = index.NewDurableSharded(*dir, *seed, fam, famL, durable.Float64Codec{}, sopts, durable.Options{})
		if err != nil {
			fatal(fmt.Errorf("create %s: %w", *dir, err))
		}
		preload(ix, route, *seed, *points, *dim)
		log.Printf("created %s: %d points, %d shards, L=%d, family=%s", *dir, ix.Len(), *shards, famL, *family)
	}

	srv := serve.New(ix, serve.Options{
		Dim:         *dim,
		BatchSize:   *batch,
		Linger:      *linger,
		MaxInFlight: *inflight,
		QueueDepth:  *queue,
		ShedDepth:   *shed,
		CacheSize:   *cache,
		Timeout:     *timeout,
		MaxBatch:    *maxbatch,
		Workers:     *workers,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	go func() {
		<-ctx.Done()
		log.Print("signal: draining")
		dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer dcancel()
		if err := srv.Drain(dctx); err != nil {
			log.Printf("drain: %v", err)
		}
		if err := httpSrv.Shutdown(dctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()

	log.Printf("serving on %s", ln.Addr())
	if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
	ix.Close()
	log.Print("drained")
}

// preload fills a fresh index with synthetic unit-sphere points: keyed
// 0..n-1 under hash routing, dense ids under round-robin.
func preload(ix *index.ShardedIndex[[]float64], route index.Routing, seed uint64, n, dim int) {
	for i, p := range workload.SpherePoints(xrand.New(seed+1), n, dim) {
		if route == index.RouteHash {
			ix.InsertKeyed(uint64(i), p)
		} else {
			ix.Insert(p)
		}
	}
}

// hasManifest reports whether dir already holds a durable index (so the
// server recovers it instead of initialising a fresh store).
func hasManifest(dir string) bool {
	if _, err := os.Stat(dir); err != nil {
		return false
	}
	ents, err := os.ReadDir(dir)
	return err == nil && len(ents) > 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dshserve:", err)
	os.Exit(1)
}
