// Package obshttp exposes the dsh metrics plane over HTTP: one mux
// serving the process-wide registry as Prometheus text (/metrics), as
// expvar-style JSON with histogram percentiles and the lifecycle event
// trace (/debug/vars), and the standard net/http/pprof profiling
// endpoints (/debug/pprof/). It has no dependencies beyond the standard
// library and never blocks or allocates on the instrumented hot paths —
// encoding happens only when a scrape arrives.
//
// Typical wiring:
//
//	srv, addr, err := obshttp.Start("127.0.0.1:9100")
//	// ... curl http://<addr>/metrics, /debug/vars, /debug/pprof/ ...
//	defer srv.Close()
//
// or mount Handler() on an existing server.
package obshttp

import (
	"net"
	"net/http"
	"net/http/pprof"

	"dsh/internal/obs"
)

// Handler returns the debug mux over the process-wide metrics registry:
//
//	/metrics      Prometheus text exposition (counters, gauges,
//	              cumulative log2 histogram buckets)
//	/debug/vars   expvar-style JSON: counters, gauges, histograms with
//	              count/sum/mean/p50/p99/p999, buffered trace events
//	/debug/pprof  the standard runtime profiles (heap, goroutine, CPU,
//	              block, mutex, trace, symbol lookup)
//	/             a plain-text index of the above
func Handler() http.Handler { return handlerFor(obs.Default) }

// Mount registers the metrics-plane endpoints (/metrics, /debug/vars,
// /debug/pprof/*) on an existing mux, so servers with their own routes —
// the dshserve network edge mounts it next to its /v1 endpoints — expose
// the registry without a second listener. The index route ("/") is not
// registered, leaving the root to the embedding server.
func Mount(mux *http.ServeMux) { mountFor(mux, obs.Default) }

// mountFor registers the registry endpoints on mux.
func mountFor(mux *http.ServeMux, r *obs.Registry) {
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

func handlerFor(r *obs.Registry) http.Handler {
	mux := http.NewServeMux()
	mountFor(mux, r)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("dsh metrics plane\n\n/metrics\n/debug/vars\n/debug/pprof/\n"))
	})
	return mux
}


// Start listens on addr (use ":0" for an ephemeral port) and serves
// Handler in a background goroutine. It returns the running server and
// the bound address; shut down with srv.Close or srv.Shutdown.
func Start(addr string) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: Handler()}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr(), nil
}
