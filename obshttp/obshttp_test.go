package obshttp

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"dsh/internal/obs"
)

// testHandler builds a handler over a private registry populated with one
// metric of each kind, so format assertions do not depend on what the
// rest of the process has recorded in the Default registry.
func testHandler(t *testing.T) (http.Handler, *obs.Registry) {
	t.Helper()
	r := obs.NewRegistry()
	c := r.NewCounter("test_ops_total", "operations")
	g := r.NewGauge("test_open", "open handles")
	h := r.NewHistogram("test_latency_ns", "op latency")
	c.Add(0, 42)
	g.Set(-3)
	for v := uint64(1); v <= 1<<20; v <<= 1 {
		h.Observe(0, v)
	}
	return handlerFor(r), r
}

func get(t *testing.T, h http.Handler, path string) (*http.Response, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	res := rec.Result()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatalf("read %s body: %v", path, err)
	}
	return res, string(body)
}

// promLine matches one Prometheus text-format sample: a metric name with
// an optional label set, a space, and a number.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9]`)

func TestMetricsEndpointWellFormedPrometheus(t *testing.T) {
	h, _ := testHandler(t)
	res, body := get(t, h, "/metrics")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	for i, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("line %d is not a well-formed sample: %q", i+1, line)
		}
	}
	for _, want := range []string{
		"# TYPE test_ops_total counter",
		"test_ops_total 42",
		"# TYPE test_open gauge",
		"test_open -3",
		"# TYPE test_latency_ns histogram",
		`test_latency_ns_bucket{le="+Inf"} 21`,
		"test_latency_ns_count 21",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\nbody:\n%s", want, body)
		}
	}
}

func TestDebugVarsDecodesAsJSON(t *testing.T) {
	h, _ := testHandler(t)
	res, body := get(t, h, "/debug/vars")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("/debug/vars status = %d", res.StatusCode)
	}
	var doc struct {
		Counters   map[string]uint64 `json:"counters"`
		Gauges     map[string]int64  `json:"gauges"`
		Histograms map[string]struct {
			Count uint64  `json:"count"`
			P99   float64 `json:"p99"`
		} `json:"histograms"`
		Events []json.RawMessage `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/debug/vars is not valid JSON: %v\nbody:\n%s", err, body)
	}
	if got := doc.Counters["test_ops_total"]; got != 42 {
		t.Errorf("counters[test_ops_total] = %d, want 42", got)
	}
	if got := doc.Gauges["test_open"]; got != -3 {
		t.Errorf("gauges[test_open] = %d, want -3", got)
	}
	hist := doc.Histograms["test_latency_ns"]
	if hist.Count != 21 || hist.P99 <= 0 {
		t.Errorf("histograms[test_latency_ns] = %+v, want count 21 and positive p99", hist)
	}
}

func TestPprofAndIndexRoutes(t *testing.T) {
	h, _ := testHandler(t)
	res, body := get(t, h, "/")
	if res.StatusCode != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Fatalf("index: status=%d body=%q", res.StatusCode, body)
	}
	res, body = get(t, h, "/debug/pprof/")
	if res.StatusCode != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/: status=%d", res.StatusCode)
	}
	if res, _ := get(t, h, "/no-such-page"); res.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path status = %d, want 404", res.StatusCode)
	}
}

func TestStartServesDefaultRegistry(t *testing.T) {
	// Record into the Default registry through a private metric so the
	// assertion does not depend on what else the test binary has done.
	name := fmt.Sprintf("test_start_probe_%d_total", len(t.Name()))
	obs.NewCounter(name, "start probe").Add(0, 7)

	srv, addr, err := Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer srv.Close()
	res, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer res.Body.Close()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	if !strings.Contains(string(body), name+" 7") {
		t.Fatalf("served registry is missing %q", name)
	}
}

func TestStartRejectsBadAddress(t *testing.T) {
	if _, _, err := Start("256.0.0.1:bogus"); err == nil {
		t.Fatal("Start on a bogus address did not fail")
	}
}
