package psi

import (
	"fmt"
	"math/big"
	"sort"
	"testing"

	"dsh/internal/xrand"
)

func toBytes(items []string) [][]byte {
	out := make([][]byte, len(items))
	for i, s := range items {
		out[i] = []byte(s)
	}
	return out
}

func protocols() []Protocol {
	return []Protocol{Plaintext{}, DH{}}
}

func TestIntersectBasic(t *testing.T) {
	a := toBytes([]string{"apple", "banana", "cherry", "date"})
	b := toBytes([]string{"banana", "date", "elderberry"})
	for _, p := range protocols() {
		res, err := p.Intersect(a, b)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		sort.Ints(res.IndicesA)
		if len(res.IndicesA) != 2 || res.IndicesA[0] != 1 || res.IndicesA[1] != 3 {
			t.Errorf("%s: intersection indices = %v, want [1 3]", p.Name(), res.IndicesA)
		}
		if res.TranscriptBytes <= 0 {
			t.Errorf("%s: no transcript recorded", p.Name())
		}
	}
}

func TestIntersectEmpty(t *testing.T) {
	for _, p := range protocols() {
		res, err := p.Intersect(nil, toBytes([]string{"x"}))
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if len(res.IndicesA) != 0 {
			t.Errorf("%s: expected empty intersection", p.Name())
		}
		res, err = p.Intersect(toBytes([]string{"x"}), nil)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if len(res.IndicesA) != 0 {
			t.Errorf("%s: expected empty intersection", p.Name())
		}
	}
}

func TestIntersectDisjoint(t *testing.T) {
	a := toBytes([]string{"a", "b", "c"})
	b := toBytes([]string{"d", "e"})
	for _, p := range protocols() {
		res, err := p.Intersect(a, b)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if len(res.IndicesA) != 0 {
			t.Errorf("%s: disjoint sets intersected: %v", p.Name(), res.IndicesA)
		}
	}
}

func TestIntersectIdentical(t *testing.T) {
	a := toBytes([]string{"x", "y", "z"})
	for _, p := range protocols() {
		res, err := p.Intersect(a, a)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if len(res.IndicesA) != 3 {
			t.Errorf("%s: self intersection = %v", p.Name(), res.IndicesA)
		}
	}
}

func TestDHAgreesWithPlaintextRandomized(t *testing.T) {
	rng := xrand.New(42)
	for trial := 0; trial < 10; trial++ {
		var a, b [][]byte
		for i := 0; i < 12; i++ {
			a = append(a, []byte(fmt.Sprintf("item-%d", rng.Intn(20))))
		}
		for i := 0; i < 9; i++ {
			b = append(b, []byte(fmt.Sprintf("item-%d", rng.Intn(20))))
		}
		want, err := Plaintext{}.Intersect(a, b)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DH{}.Intersect(a, b)
		if err != nil {
			t.Fatal(err)
		}
		sort.Ints(want.IndicesA)
		sort.Ints(got.IndicesA)
		if len(want.IndicesA) != len(got.IndicesA) {
			t.Fatalf("trial %d: plaintext %v vs dh %v", trial, want.IndicesA, got.IndicesA)
		}
		for i := range want.IndicesA {
			if want.IndicesA[i] != got.IndicesA[i] {
				t.Fatalf("trial %d: plaintext %v vs dh %v", trial, want.IndicesA, got.IndicesA)
			}
		}
	}
}

func TestHashToGroupIsQuadraticResidue(t *testing.T) {
	// Every output must be a QR mod p: v^((p-1)/2) == 1.
	for _, item := range []string{"", "a", "hello world", "\x00\x01\x02"} {
		v := hashToGroup([]byte(item))
		if v.Sign() <= 0 || v.Cmp(prime) >= 0 {
			t.Fatalf("hash out of range for %q", item)
		}
		legendre := new(big.Int).Exp(v, subOrder, prime)
		if legendre.Cmp(big.NewInt(1)) != 0 {
			t.Fatalf("hash of %q is not a quadratic residue", item)
		}
	}
}

func TestHashToGroupDeterministicAndDistinct(t *testing.T) {
	a1 := hashToGroup([]byte("alpha"))
	a2 := hashToGroup([]byte("alpha"))
	if a1.Cmp(a2) != 0 {
		t.Fatal("hash not deterministic")
	}
	b := hashToGroup([]byte("beta"))
	if a1.Cmp(b) == 0 {
		t.Fatal("distinct items should hash differently")
	}
}

func TestDHTranscriptLargerThanPlaintext(t *testing.T) {
	a := toBytes([]string{"a", "b", "c"})
	b := toBytes([]string{"c", "d"})
	plain, _ := Plaintext{}.Intersect(a, b)
	private, err := DH{}.Intersect(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if private.TranscriptBytes <= plain.TranscriptBytes {
		t.Errorf("DH transcript %d should exceed plaintext %d",
			private.TranscriptBytes, plain.TranscriptBytes)
	}
	// 2*|A| + |B| group elements of 192 bytes.
	want := (2*3 + 2) * 192
	if private.TranscriptBytes != want {
		t.Errorf("DH transcript = %d, want %d", private.TranscriptBytes, want)
	}
}

func TestSafePrimeStructure(t *testing.T) {
	if !prime.ProbablyPrime(32) {
		t.Fatal("p not prime")
	}
	if !subOrder.ProbablyPrime(32) {
		t.Fatal("(p-1)/2 not prime: not a safe prime")
	}
	if prime.BitLen() != 1536 {
		t.Fatalf("prime is %d bits", prime.BitLen())
	}
}

func BenchmarkDHIntersect16(b *testing.B) {
	var setA, setB [][]byte
	for i := 0; i < 16; i++ {
		setA = append(setA, []byte(fmt.Sprintf("a%d", i)))
		setB = append(setB, []byte(fmt.Sprintf("b%d", i)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (DH{}).Intersect(setA, setB); err != nil {
			b.Fatal(err)
		}
	}
}
