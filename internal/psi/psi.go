// Package psi implements private set intersection (PSI), the cryptographic
// substrate for the paper's Section 6.4 privacy-preserving distance
// estimation. The paper uses PSI as a black box (citing [24, 26]); this
// package provides:
//
//   - Protocol: a two-party PSI interface with transcript accounting.
//   - Plaintext: a non-private reference implementation used as ground
//     truth in tests and experiments.
//   - DH: a semi-honest commutative-encryption PSI (Pohlig-Hellman style)
//     over a fixed 1536-bit safe prime, using SHA-256 hashing into the
//     quadratic-residue subgroup. Each party exponentiates with a private
//     key; doubly-encrypted values coincide exactly for equal inputs, so
//     the intersection is computed without revealing non-matching items.
//
// The DH construction is the classic Meadows/Huberman-Franklin-Hogg
// protocol; it is semantically adequate for the reduction experiments here
// but is presented as a simulation substrate, not audited production
// cryptography.
package psi

import (
	"crypto/rand"
	"crypto/sha256"
	"fmt"
	"math/big"
)

// Result reports the outcome of a PSI run between two parties A and B.
type Result struct {
	// IndicesA lists the positions of A's items that are in the
	// intersection.
	IndicesA []int
	// TranscriptBytes is the total number of bytes exchanged between the
	// parties (a proxy for communication complexity).
	TranscriptBytes int
}

// Protocol computes the intersection of two byte-string multisets from the
// perspective of party A (who learns which of its items B also holds).
type Protocol interface {
	Name() string
	Intersect(a, b [][]byte) (Result, error)
}

// Plaintext is the trivially correct, non-private reference protocol.
type Plaintext struct{}

// Name implements Protocol.
func (Plaintext) Name() string { return "plaintext" }

// Intersect implements Protocol with a hash join; the "transcript" is the
// full payload of B's set, as a baseline for the private variants.
func (Plaintext) Intersect(a, b [][]byte) (Result, error) {
	set := make(map[string]struct{}, len(b))
	transcript := 0
	for _, item := range b {
		set[string(item)] = struct{}{}
		transcript += len(item)
	}
	var res Result
	res.TranscriptBytes = transcript
	for i, item := range a {
		if _, ok := set[string(item)]; ok {
			res.IndicesA = append(res.IndicesA, i)
		}
	}
	return res, nil
}

// safePrimeHex is a fixed 1536-bit safe prime p = 2q + 1 (RFC 3526 group 5,
// the 1536-bit MODP group), so the squares of Z_p^* form a prime-order-q
// subgroup where Pohlig-Hellman commutative encryption is secure against
// semi-honest adversaries under DDH.
const safePrimeHex = "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1" +
	"29024E088A67CC74020BBEA63B139B22514A08798E3404DD" +
	"EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245" +
	"E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED" +
	"EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3D" +
	"C2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F" +
	"83655D23DCA3AD961C62F356208552BB9ED529077096966D" +
	"670C354E4ABC9804F1746C08CA237327FFFFFFFFFFFFFFFF"

var (
	prime *big.Int
	// subOrder = (p-1)/2, the order of the quadratic-residue subgroup.
	subOrder *big.Int
)

func init() {
	prime = new(big.Int)
	if _, ok := prime.SetString(safePrimeHex, 16); !ok {
		panic("psi: bad prime constant")
	}
	subOrder = new(big.Int).Rsh(new(big.Int).Sub(prime, big.NewInt(1)), 1)
}

// hashToGroup maps an item into the quadratic-residue subgroup of Z_p^* by
// expanding it with SHA-256 into a wide integer and squaring mod p.
func hashToGroup(item []byte) *big.Int {
	// Expand to 192 bytes (1536 bits) with counter-mode SHA-256.
	var expanded []byte
	var counter [1]byte
	for len(expanded) < 192 {
		h := sha256.New()
		h.Write(counter[:])
		h.Write(item)
		expanded = h.Sum(expanded)
		counter[0]++
	}
	v := new(big.Int).SetBytes(expanded[:192])
	v.Mod(v, prime)
	if v.Sign() == 0 {
		v.SetInt64(4) // arbitrary QR fallback for the measure-zero case
	}
	return v.Mul(v, v).Mod(v, prime)
}

// DH is the commutative-encryption PSI protocol. The zero value is ready
// to use; keys are generated per Intersect call with crypto/rand.
type DH struct{}

// Name implements Protocol.
func (DH) Name() string { return "dh-psi" }

// randomKey returns a uniform exponent in [1, subOrder).
func randomKey() (*big.Int, error) {
	for {
		k, err := rand.Int(rand.Reader, subOrder)
		if err != nil {
			return nil, err
		}
		if k.Sign() > 0 {
			return k, nil
		}
	}
}

// Intersect implements Protocol:
//
//  1. A sends {H(x)^a} for its items x.
//  2. B sends {H(y)^b} for its items y, and {(H(x)^a)^b} for A's blinded
//     items (in A's original order).
//  3. A computes {(H(y)^b)^a} and matches them against {H(x)^{ab}}.
//
// A learns which of its items are shared; nothing else about B's items is
// revealed beyond the doubly-blinded values (semi-honest model, DDH).
func (DH) Intersect(a, b [][]byte) (Result, error) {
	keyA, err := randomKey()
	if err != nil {
		return Result{}, fmt.Errorf("psi: key generation: %w", err)
	}
	keyB, err := randomKey()
	if err != nil {
		return Result{}, fmt.Errorf("psi: key generation: %w", err)
	}
	elemBytes := (prime.BitLen() + 7) / 8
	transcript := 0

	// Round 1: A -> B.
	blindedA := make([]*big.Int, len(a))
	for i, item := range a {
		blindedA[i] = new(big.Int).Exp(hashToGroup(item), keyA, prime)
	}
	transcript += len(a) * elemBytes

	// Round 2: B -> A.
	doubleA := make([]*big.Int, len(a))
	for i, v := range blindedA {
		doubleA[i] = new(big.Int).Exp(v, keyB, prime)
	}
	blindedB := make([]*big.Int, len(b))
	for i, item := range b {
		blindedB[i] = new(big.Int).Exp(hashToGroup(item), keyB, prime)
	}
	transcript += (len(a) + len(b)) * elemBytes

	// A's local finish: double-blind B's values and match.
	setB := make(map[string]struct{}, len(b))
	for _, v := range blindedB {
		w := new(big.Int).Exp(v, keyA, prime)
		setB[string(w.Bytes())] = struct{}{}
	}
	var res Result
	res.TranscriptBytes = transcript
	for i, v := range doubleA {
		if _, ok := setB[string(v.Bytes())]; ok {
			res.IndicesA = append(res.IndicesA, i)
		}
	}
	return res, nil
}
