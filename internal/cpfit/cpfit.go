// Package cpfit fits target collision probability functions with the
// paper's combinators: given a dictionary of basis DSH families and a
// desired CPF shape, it finds non-negative mixture weights (Lemma 1.4(b))
// whose convex combination approximates the target in least squares.
//
// Chierichetti and Kumar showed that (in the symmetric setting) mixtures
// and concatenations generate *all* CPF-to-CPF transformations, so fitting
// over a dictionary of concatenation powers is the principled way to
// design a CPF that the framework can actually realize. This package turns
// that observation into a small design tool: BuildDictionary enumerates
// powers of given base families, Fit solves the constrained least-squares
// problem (via internal/mat's NNLS), and the result is a ready-to-use
// core.Family.
package cpfit

import (
	"fmt"
	"math"

	"dsh/internal/core"
	"dsh/internal/mat"
	"dsh/internal/xrand"
)

// Target is a desired CPF specified by sample points.
type Target struct {
	// X holds CPF arguments (distances or similarities, matching the
	// dictionary's domain).
	X []float64
	// F holds the desired collision probabilities at X, each in [0, 1].
	F []float64
}

// Grid builds a Target by sampling fn on a uniform grid of n points over
// [lo, hi].
func Grid(lo, hi float64, n int, fn func(float64) float64) Target {
	if n < 2 {
		panic("cpfit: need at least two grid points")
	}
	t := Target{X: make([]float64, n), F: make([]float64, n)}
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		t.X[i] = x
		t.F[i] = fn(x)
	}
	return t
}

// Validate checks the target's consistency.
func (t Target) Validate() error {
	if len(t.X) != len(t.F) {
		return fmt.Errorf("cpfit: %d points vs %d values", len(t.X), len(t.F))
	}
	if len(t.X) == 0 {
		return fmt.Errorf("cpfit: empty target")
	}
	for i, f := range t.F {
		if f < 0 || f > 1 || math.IsNaN(f) {
			return fmt.Errorf("cpfit: target value %v at %v out of [0,1]", f, t.X[i])
		}
	}
	return nil
}

// Dictionary is a set of basis families over a shared point type and CPF
// domain.
type Dictionary[P any] struct {
	Families []core.Family[P]
}

// BuildDictionary enumerates concatenation powers base^1 .. base^maxPower
// for every base family, the natural dictionary closed under Lemma 1.4(a).
func BuildDictionary[P any](maxPower int, bases ...core.Family[P]) Dictionary[P] {
	if maxPower < 1 {
		panic("cpfit: maxPower must be >= 1")
	}
	if len(bases) == 0 {
		panic("cpfit: need at least one base family")
	}
	d := bases[0].CPF().Domain
	var out []core.Family[P]
	for _, b := range bases {
		if b.CPF().Domain != d {
			panic("cpfit: mixed CPF domains in dictionary")
		}
		for k := 1; k <= maxPower; k++ {
			out = append(out, core.Power(b, k))
		}
	}
	return Dictionary[P]{Families: out}
}

// Result is a fitted mixture.
type Result[P any] struct {
	// Family is the fitted mixture (nil if every weight collapsed to 0).
	Family core.Family[P]
	// Weights are the mixture weights over the dictionary (summing to
	// Mass <= 1; the remaining mass never collides).
	Weights []float64
	// Mass is the total weight assigned to the dictionary.
	Mass float64
	// MaxErr is the maximum absolute deviation from the target over its
	// sample points.
	MaxErr float64
	// RMSE is the root-mean-square deviation over the target points.
	RMSE float64
}

// Fit finds non-negative weights w minimizing sum_i (sum_j w_j f_j(x_i) -
// target_i)^2 subject to sum w_j <= 1 (the feasible region of a Lemma
// 1.4(b) mixture; the deficit 1 - sum w_j is assigned to an implicit
// never-collide family, which is always available).
func Fit[P any](dict Dictionary[P], target Target) (*Result[P], error) {
	if err := target.Validate(); err != nil {
		return nil, err
	}
	if len(dict.Families) == 0 {
		return nil, fmt.Errorf("cpfit: empty dictionary")
	}
	rows := len(target.X)
	cols := len(dict.Families)
	a := mat.NewDense(rows, cols)
	cpfs := make([]func(float64) float64, cols)
	for j, fam := range dict.Families {
		cpfs[j] = fam.CPF().Eval
		for i, x := range target.X {
			a.Set(i, j, cpfs[j](x))
		}
	}
	w, _, err := mat.SubSimplexLS(a, target.F)
	if err != nil {
		return nil, fmt.Errorf("cpfit: constrained least squares failed: %w", err)
	}
	var mass float64
	for j, v := range w {
		if v < 1e-10 {
			w[j] = 0 // drop numerical dust so components stay sparse
			continue
		}
		mass += v
	}
	res := &Result[P]{Weights: w, Mass: mass}

	// Assemble the mixture over the nonzero components, padding with a
	// never-collide family for the remaining mass.
	var parts []core.Family[P]
	var weights []float64
	for j, v := range w {
		if v > 0 {
			parts = append(parts, dict.Families[j])
			weights = append(weights, v)
		}
	}
	if len(parts) > 0 {
		if mass < 1-1e-12 {
			parts = append(parts, neverCollide[P]{domain: dict.Families[0].CPF().Domain})
			weights = append(weights, 1-mass)
		}
		res.Family = core.Renamed[P]{
			Inner:   core.Mixture(parts, weights),
			NewName: fmt.Sprintf("fitted(%d components)", len(parts)),
		}
	}

	// Fit quality.
	var sq float64
	for i, x := range target.X {
		var v float64
		for j, wj := range w {
			v += wj * cpfs[j](x)
		}
		e := math.Abs(v - target.F[i])
		if e > res.MaxErr {
			res.MaxErr = e
		}
		sq += e * e
	}
	res.RMSE = math.Sqrt(sq / float64(rows))
	return res, nil
}

// neverCollide is the zero-CPF family: h and g always disagree. It absorbs
// the mixture mass a convex combination cannot place on the dictionary.
type neverCollide[P any] struct{ domain core.Domain }

func (n neverCollide[P]) Name() string { return "never" }

func (n neverCollide[P]) Sample(rng *xrand.Rand) core.Pair[P] {
	return core.Pair[P]{
		H: core.HasherFunc[P](func(P) uint64 { return 0 }),
		G: core.HasherFunc[P](func(P) uint64 { return 1 }),
	}
}

func (n neverCollide[P]) CPF() core.CPF { return core.Constant(n.domain, 0) }
