package cpfit

import (
	"math"
	"testing"

	"dsh/internal/bitvec"
	"dsh/internal/core"
	"dsh/internal/hamming"
	"dsh/internal/xrand"
)

const d = 256

func TestGridAndValidate(t *testing.T) {
	g := Grid(0, 1, 5, func(x float64) float64 { return x })
	if len(g.X) != 5 || g.X[0] != 0 || g.X[4] != 1 || g.F[2] != 0.5 {
		t.Fatalf("grid = %+v", g)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Target{X: []float64{0}, F: []float64{2}}
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-range value should fail")
	}
	if err := (Target{}).Validate(); err == nil {
		t.Fatal("empty target should fail")
	}
	if err := (Target{X: []float64{1}, F: nil}).Validate(); err == nil {
		t.Fatal("mismatched lengths should fail")
	}
}

func TestBuildDictionary(t *testing.T) {
	dict := BuildDictionary[bitvec.Vector](3, hamming.BitSampling(d), hamming.AntiBitSampling(d))
	if len(dict.Families) != 6 {
		t.Fatalf("dictionary size = %d", len(dict.Families))
	}
	// Second entry is bit-sampling squared: CPF (1-t)^2.
	if got := dict.Families[1].CPF().Eval(0.5); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("power CPF = %v", got)
	}
	for i, fn := range []func(){
		func() { BuildDictionary[bitvec.Vector](0, hamming.BitSampling(d)) },
		func() { BuildDictionary[bitvec.Vector](2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestFitRecoversExactMixture(t *testing.T) {
	// Target = 0.3*(1-t) + 0.2*t^2 is exactly expressible.
	dict := BuildDictionary[bitvec.Vector](2, hamming.BitSampling(d), hamming.AntiBitSampling(d))
	target := Grid(0, 1, 21, func(x float64) float64 {
		return 0.3*(1-x) + 0.2*x*x
	})
	res, err := Fit(dict, target)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxErr > 1e-5 {
		t.Fatalf("max error %v for an exactly representable target", res.MaxErr)
	}
	if res.Family == nil {
		t.Fatal("no family returned")
	}
	// The decomposition is not unique (the power basis is linearly
	// dependent as polynomials), but the fitted mixture must reproduce
	// the target exactly and stay a sub-distribution.
	if res.Mass > 1+1e-9 {
		t.Fatalf("mass = %v", res.Mass)
	}
	f := res.Family.CPF()
	for _, x := range []float64{0, 0.25, 0.5, 0.75, 1} {
		want := 0.3*(1-x) + 0.2*x*x
		if got := f.Eval(x); math.Abs(got-want) > 1e-5 {
			t.Fatalf("fitted CPF(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestFittedFamilyCollidesAtTargetRate(t *testing.T) {
	dict := BuildDictionary[bitvec.Vector](2, hamming.BitSampling(d), hamming.AntiBitSampling(d))
	target := Grid(0, 1, 21, func(x float64) float64 {
		return 0.25*(1-x) + 0.25*x*x
	})
	res, err := Fit(dict, target)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(1)
	gen := func(r *xrand.Rand, tt float64) (bitvec.Vector, bitvec.Vector) {
		x := bitvec.Random(r, d)
		return x, bitvec.AtDistance(r, x, int(math.Round(tt*d)))
	}
	for _, tt := range []float64{0, 0.5, 1} {
		est := core.EstimateCollision(rng, res.Family, gen, tt, 20000, 5)
		want := 0.25*(1-tt) + 0.25*tt*tt
		if !est.Interval.Contains(want) {
			t.Errorf("t=%v: measured %v excludes target %v", tt, est.P, want)
		}
	}
}

func TestFitUnimodalTarget(t *testing.T) {
	// A bump peaking at t = 1/3, like the annulus problem on the cube:
	// representable approximately by (1-t)^a * t^b mixtures... the
	// dictionary here is only pure powers, so the fit is approximate but
	// must capture the qualitative shape.
	dict := BuildDictionary[bitvec.Vector](4,
		hamming.BitSampling(d), hamming.AntiBitSampling(d),
		core.Concat[bitvec.Vector](hamming.BitSampling(d), hamming.AntiBitSampling(d)),
		core.Concat[bitvec.Vector](
			core.Power[bitvec.Vector](hamming.BitSampling(d), 2),
			hamming.AntiBitSampling(d)),
	)
	// Amplitude 0.12 is within reach of the dictionary (the peak value of
	// (1-t)^2 t is 4/27 ~ 0.148 at t = 1/3); a taller bump would be
	// unreachable by any convex combination.
	target := Grid(0, 1, 31, func(x float64) float64 {
		return 0.12 * math.Exp(-8*(x-1.0/3)*(x-1.0/3))
	})
	res, err := Fit(dict, target)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxErr > 0.04 {
		t.Fatalf("max error %v too large for the bump target", res.MaxErr)
	}
	f := res.Family.CPF()
	if f.Eval(1.0/3) < f.Eval(0)+0.02 || f.Eval(1.0/3) < f.Eval(0.9)+0.02 {
		t.Errorf("fitted CPF not peaked near 1/3: f(0)=%v f(1/3)=%v f(0.9)=%v",
			f.Eval(0), f.Eval(1.0/3), f.Eval(0.9))
	}
}

func TestFitClampsMassToOne(t *testing.T) {
	// An unreachable target (constant 1 everywhere is expressible only by
	// the trivial family, absent from this dictionary): weights must form
	// a valid sub-distribution.
	dict := BuildDictionary[bitvec.Vector](1, hamming.AntiBitSampling(d))
	target := Grid(0, 1, 11, func(x float64) float64 { return 1 })
	res, err := Fit(dict, target)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mass > 1+1e-12 {
		t.Fatalf("mass = %v exceeds 1", res.Mass)
	}
	var sum float64
	for _, w := range res.Weights {
		if w < 0 {
			t.Fatalf("negative weight %v", w)
		}
		sum += w
	}
	if sum > 1+1e-12 {
		t.Fatalf("weights sum to %v", sum)
	}
}

func TestFitErrors(t *testing.T) {
	dict := Dictionary[bitvec.Vector]{}
	if _, err := Fit(dict, Grid(0, 1, 3, func(float64) float64 { return 0.5 })); err == nil {
		t.Fatal("empty dictionary should error")
	}
	full := BuildDictionary[bitvec.Vector](1, hamming.BitSampling(d))
	if _, err := Fit(full, Target{X: []float64{0}, F: []float64{-1}}); err == nil {
		t.Fatal("invalid target should error")
	}
}

func TestNeverCollideAbsorbsMass(t *testing.T) {
	// Target 0.5*(1-t): mass 0.5, the rest flows to the never family; the
	// mixture must still sample and collide at the right rate at t=0.
	dict := BuildDictionary[bitvec.Vector](1, hamming.BitSampling(d))
	target := Grid(0, 1, 11, func(x float64) float64 { return 0.5 * (1 - x) })
	res, err := Fit(dict, target)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(2)
	x := bitvec.Random(rng, d)
	hits := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if res.Family.Sample(rng).Collides(x, x) {
			hits++
		}
	}
	p := float64(hits) / trials
	if math.Abs(p-0.5) > 0.02 {
		t.Fatalf("collision rate at t=0 is %v, want 0.5", p)
	}
}
