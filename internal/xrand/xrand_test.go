package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestNewFromString(t *testing.T) {
	a := NewFromString("TestNewFromString")
	b := NewFromString("TestNewFromString")
	if a.Uint64() != b.Uint64() {
		t.Fatal("equal strings should produce equal streams")
	}
	c := NewFromString("other")
	d := NewFromString("another")
	if c.Uint64() == d.Uint64() {
		t.Fatal("distinct strings should (almost surely) differ")
	}
}

func TestZeroSeedNotDegenerate(t *testing.T) {
	r := New(0)
	zeros := 0
	for i := 0; i < 64; i++ {
		if r.Uint64() == 0 {
			zeros++
		}
	}
	if zeros > 1 {
		t.Fatalf("seed 0 produced %d zero outputs out of 64", zeros)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	// Standard error is 1/sqrt(12 n) ~ 0.00065; allow 6 sigma.
	if math.Abs(mean-0.5) > 0.004 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(5)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		// 6-sigma band for a binomial count.
		sigma := math.Sqrt(want * (1 - 1.0/n))
		if math.Abs(float64(c)-want) > 6*sigma {
			t.Fatalf("bucket %d count %d deviates from %v", i, c, want)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13)
	const n = 400000
	var sum, sumSq, sumCube float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
		sumCube += v * v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	skew := sumCube / n
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
	if math.Abs(skew) > 0.05 {
		t.Fatalf("normal third moment = %v, want ~0", skew)
	}
}

func TestNormFloat64TailFractions(t *testing.T) {
	r := New(17)
	const n = 400000
	beyond1, beyond2 := 0, 0
	for i := 0; i < n; i++ {
		v := math.Abs(r.NormFloat64())
		if v > 1 {
			beyond1++
		}
		if v > 2 {
			beyond2++
		}
	}
	// P(|Z|>1) ~ 0.3173, P(|Z|>2) ~ 0.0455.
	f1 := float64(beyond1) / n
	f2 := float64(beyond2) / n
	if math.Abs(f1-0.3173) > 0.01 {
		t.Fatalf("P(|Z|>1) = %v", f1)
	}
	if math.Abs(f2-0.0455) > 0.005 {
		t.Fatalf("P(|Z|>2) = %v", f2)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(19)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("negative exponential variate %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(23)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) returned %d elements", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSampleDistinct(t *testing.T) {
	r := New(29)
	for _, tc := range []struct{ n, k int }{{10, 0}, {10, 1}, {10, 3}, {10, 10}, {1000, 5}, {16, 12}} {
		s := r.Sample(tc.n, tc.k)
		if len(s) != tc.k {
			t.Fatalf("Sample(%d,%d) returned %d values", tc.n, tc.k, len(s))
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= tc.n || seen[v] {
				t.Fatalf("Sample(%d,%d) invalid: %v", tc.n, tc.k, s)
			}
			seen[v] = true
		}
	}
}

func TestSampleUniformMarginals(t *testing.T) {
	r := New(31)
	const n, k, trials = 20, 4, 50000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		for _, v := range r.Sample(n, k) {
			counts[v]++
		}
	}
	want := float64(trials*k) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Fatalf("index %d sampled %d times, want ~%v", i, c, want)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(37)
	child := r.Split()
	matches := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == child.Uint64() {
			matches++
		}
	}
	if matches > 0 {
		t.Fatalf("split stream matched parent %d times", matches)
	}
}

func TestBytes(t *testing.T) {
	r := New(41)
	for _, n := range []int{0, 1, 7, 8, 9, 31, 64} {
		b := make([]byte, n)
		r.Bytes(b)
		if n >= 16 {
			allZero := true
			for _, v := range b {
				if v != 0 {
					allZero = false
					break
				}
			}
			if allZero {
				t.Fatalf("Bytes(%d) produced all zeros", n)
			}
		}
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(43)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(47)
	const p, n = 0.3, 200000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-p) > 0.01 {
		t.Fatalf("Bernoulli(%v) rate = %v", p, rate)
	}
}

func TestUint64nPropertyInRange(t *testing.T) {
	r := New(53)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return r.Uint64n(n) < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.NormFloat64()
	}
	_ = sink
}
