// Package xrand provides a small, deterministic, splittable pseudo-random
// number generator used throughout the library.
//
// All randomized components in this repository take an explicit *Rand so that
// experiments are reproducible from a single seed. The generator is
// xoshiro256++ seeded through SplitMix64, following the reference
// constructions of Blackman and Vigna. It is not cryptographically secure;
// the PSI substrate uses crypto/rand separately for key material.
package xrand

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"math/bits"
)

// Rand is a deterministic pseudo-random number generator.
// It is not safe for concurrent use; use Split to derive independent
// generators for concurrent goroutines.
type Rand struct {
	s [4]uint64
	// cached second Gaussian from the polar method.
	gauss    float64
	hasGauss bool
}

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used for seeding so that nearby seeds yield uncorrelated streams.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from the given seed.
func New(seed uint64) *Rand {
	r := &Rand{}
	r.Seed(seed)
	return r
}

// NewFromString returns a generator seeded from an arbitrary string, for
// example a test name. Equal strings yield equal streams.
func NewFromString(s string) *Rand {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return New(h.Sum64())
}

// Seed resets the generator state from seed.
func (r *Rand) Seed(seed uint64) {
	sm := seed
	for i := range r.s {
		r.s[i] = splitMix64(&sm)
	}
	// xoshiro must not be seeded with the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	r.hasGauss = false
}

// Split returns a new generator whose stream is independent of r's
// continued stream, suitable for handing to a different goroutine.
func (r *Rand) Split() *Rand {
	return New(r.Uint64() ^ 0xd1b54a32d192ed03)
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[0]+s[3], 23) + s[0]
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Uint32 returns a uniformly distributed 32-bit value.
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// It uses Lemire's nearly-divisionless bounded rejection method.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with zero n")
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) * 0x1p-53
}

// Float64Range returns a uniform value in [lo, hi).
func (r *Rand) Float64Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Bool returns true with probability 1/2.
func (r *Rand) Bool() bool { return r.Uint64()&1 == 1 }

// Bernoulli returns true with probability p (clamped to [0, 1]).
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate using the Marsaglia polar
// method. Successive calls alternate between freshly generated pairs, so the
// amortized cost is about one log and one sqrt per two variates.
func (r *Rand) NormFloat64() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		factor := math.Sqrt(-2 * math.Log(s) / s)
		r.gauss = v * factor
		r.hasGauss = true
		return u * factor
	}
}

// ExpFloat64 returns an exponentially distributed variate with rate 1.
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a uniformly random permutation of [0, n) by Fisher-Yates.
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using the provided swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Sample returns k distinct indices drawn uniformly from [0, n) in random
// order. It panics if k > n or k < 0. For small k relative to n it uses
// Floyd's algorithm; otherwise a partial Fisher-Yates shuffle.
func (r *Rand) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("xrand: Sample with k out of range")
	}
	if k == 0 {
		return nil
	}
	if k*4 <= n {
		// Floyd's algorithm: expected O(k) work.
		chosen := make(map[int]struct{}, k)
		out := make([]int, 0, k)
		for j := n - k; j < n; j++ {
			t := r.Intn(j + 1)
			if _, dup := chosen[t]; dup {
				t = j
			}
			chosen[t] = struct{}{}
			out = append(out, t)
		}
		r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		return out
	}
	p := r.Perm(n)
	return p[:k]
}

// Bytes fills b with pseudo-random bytes.
func (r *Rand) Bytes(b []byte) {
	var buf [8]byte
	for len(b) >= 8 {
		binary.LittleEndian.PutUint64(b, r.Uint64())
		b = b[8:]
	}
	if len(b) > 0 {
		binary.LittleEndian.PutUint64(buf[:], r.Uint64())
		copy(b, buf[:len(b)])
	}
}
