package serve

import (
	"strconv"
	"sync/atomic"
	"time"
)

// clock abstracts time for the coalescer's linger timer so the admission
// tests can drive flush deadlines deterministically instead of sleeping.
type clock interface {
	Now() time.Time
	After(d time.Duration) <-chan time.Time
}

// sysClock is the production clock.
type sysClock struct{}

func (sysClock) Now() time.Time                         { return time.Now() }
func (sysClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// admission is the in-flight budget: a semaphore bounding how many
// requests may hold server resources at once, plus the drain latch. A
// request acquires a slot before its body is even read and releases it
// when its response is written (or its context dies); when the budget is
// exhausted the edge sheds with 429 + Retry-After instead of queueing
// unboundedly.
type admission struct {
	budget   chan struct{}
	draining atomic.Bool
	retry    string // Retry-After header value, in whole seconds
}

func newAdmission(maxInFlight int, retryAfter time.Duration) *admission {
	secs := int(retryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	return &admission{
		budget: make(chan struct{}, maxInFlight),
		retry:  strconv.Itoa(secs),
	}
}

// tryAcquire claims an in-flight slot without blocking; a false return
// means the budget is exhausted and the request must be shed.
func (a *admission) tryAcquire() bool {
	select {
	case a.budget <- struct{}{}:
		mInFlight.Add(1)
		return true
	default:
		return false
	}
}

// release returns a slot claimed by tryAcquire.
func (a *admission) release() {
	<-a.budget
	mInFlight.Add(-1)
}

// inFlight reports the number of currently held slots (test hook: every
// handler path, including sheds, timeouts, and fuzzed garbage, must leave
// this at zero).
func (a *admission) inFlight() int { return len(a.budget) }

// beginDrain flips the edge into draining mode: new requests are refused
// with 503 while already-admitted ones run to completion.
func (a *admission) beginDrain() { a.draining.Store(true) }

func (a *admission) isDraining() bool { return a.draining.Load() }
