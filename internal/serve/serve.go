// Package serve is the dsh network serving edge: a standard-library HTTP
// front end over a ShardedIndex that makes many slow connections look
// like one fast batch. Three mechanisms stack:
//
//   - Cross-connection coalescing. Query handlers park their request in a
//     bounded intake queue; a single dispatcher drains it into
//     QueryBatchSigned calls, flushing on batch size or a short linger
//     timer. Concurrent clients therefore share one repetition-blocked
//     pre-hash and one worker-pool pass per flush.
//   - Admission control. A semaphore bounds in-flight requests and a
//     queue-depth watermark sheds load with 429 + Retry-After before the
//     dispatcher saturates; every request carries a deadline, and
//     graceful drain (SIGTERM in dshserve) completes parked work while
//     refusing new requests with 503.
//   - A hot-query result cache keyed by the per-repetition hash-key
//     signature of the query point. Equal signatures against one snapshot
//     imply identical results (they probed the same bucket in every
//     repetition), and entries are stamped with the snapshot epoch, so
//     any insert or delete invalidates the whole cache at the next
//     refresh. Cache hits skip hash evaluation entirely via a raw-bits
//     fingerprint index.
//
// Endpoints: POST /v1/query, /v1/querybatch, /v1/insert, /v1/delete
// (keyed or round-robin variants matching the index routing), GET
// /healthz, plus the obshttp metrics plane (/metrics, /debug/vars,
// /debug/pprof/) on the same mux.
package serve

import (
	"context"
	"net/http"
	"runtime"
	"time"

	"dsh/internal/index"
	"dsh/internal/obs"
	"dsh/obshttp"
)

// Options configures a Server. The zero value of every field except Dim
// is usable; defaults are filled by New.
type Options struct {
	// Dim is the vector dimensionality the index serves. Required.
	Dim int
	// BatchSize is the coalescing target: the dispatcher flushes as soon
	// as this many queries are parked. Default 64.
	BatchSize int
	// Linger is how long the dispatcher holds a short batch open waiting
	// for more connections to coalesce with. Default 250µs. Zero uses the
	// default; negative disables lingering (flush whatever is parked).
	Linger time.Duration
	// MaxInFlight bounds concurrently admitted requests. Default 1024.
	MaxInFlight int
	// QueueDepth is the intake-queue capacity. Default 4*BatchSize.
	QueueDepth int
	// ShedDepth is the backpressure watermark: query offers are refused
	// with 429 once this many queries are parked. Default 3/4 QueueDepth.
	ShedDepth int
	// CacheSize bounds the hot-query cache entry count; 0 uses the
	// default 4096, negative disables the cache.
	CacheSize int
	// Workers is the batch-engine worker count per flush. Default
	// GOMAXPROCS.
	Workers int
	// MaxBatch bounds vectors per /v1/querybatch request. Default 1024.
	MaxBatch int
	// MaxBodyBytes bounds request bodies. Default 8 MiB.
	MaxBodyBytes int64
	// Timeout is the per-request deadline. Default 2s.
	Timeout time.Duration
	// RetryAfter is the hint sent with 429/503 responses. Default 1s.
	RetryAfter time.Duration

	// clk lets the deterministic admission tests drive the linger timer;
	// nil means the system clock.
	clk clock
}

func (o Options) withDefaults() Options {
	if o.BatchSize <= 0 {
		o.BatchSize = 64
	}
	if o.Linger == 0 {
		o.Linger = 250 * time.Microsecond
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 1024
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 4 * o.BatchSize
	}
	if o.ShedDepth <= 0 || o.ShedDepth > o.QueueDepth {
		o.ShedDepth = o.QueueDepth - o.QueueDepth/4
	}
	if o.CacheSize == 0 {
		o.CacheSize = 4096
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 1024
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 8 << 20
	}
	if o.Timeout <= 0 {
		o.Timeout = 2 * time.Second
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.clk == nil {
		o.clk = sysClock{}
	}
	return o
}

// Server is the serving edge over one ShardedIndex. Create with New,
// mount Handler on an http.Server, and shut down with Drain (or Close).
type Server struct {
	ix    *index.ShardedIndex[[]float64]
	opts  Options
	keyed bool // RouteHash: mutations go through the keyed entry points

	stripe uint32

	adm   *admission
	co    *coalescer
	cache *queryCache // nil when disabled
	mux   *http.ServeMux

	// Serving snapshot, owned by the dispatcher goroutine (and by Drain
	// after the dispatcher exits): refreshed at flush time whenever the
	// index epoch has moved, released when replaced.
	snap      *index.ShardedSnapshot[[]float64]
	snapEpoch uint64
}

// New builds a Server over ix and starts its dispatcher. opts.Dim must
// match the vectors ix was built over; it is the server's only required
// option.
func New(ix *index.ShardedIndex[[]float64], opts Options) *Server {
	if opts.Dim <= 0 {
		panic("serve: Options.Dim is required")
	}
	opts = opts.withDefaults()
	s := &Server{
		ix:     ix,
		opts:   opts,
		stripe: obs.NextStripe(),
		keyed:  ix.Routing() == index.RouteHash,
		adm:    newAdmission(opts.MaxInFlight, opts.RetryAfter),
	}
	if opts.CacheSize > 0 {
		s.cache = newQueryCache(opts.CacheSize)
	}
	s.co = newCoalescer(opts.BatchSize, opts.QueueDepth, opts.ShedDepth, opts.Linger, opts.clk, s.serveBatch)
	s.buildMux()
	go s.co.run()
	return s
}

// Handler returns the server's mux: the /v1 endpoints, /healthz, and the
// obshttp metrics plane.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain gracefully shuts the serving edge down: new requests are refused
// with 503 while parked and in-flight ones run to completion (bounded by
// ctx), then the serving snapshot is released. The index itself is not
// closed — that stays with the caller. Safe to call once.
func (s *Server) Drain(ctx context.Context) error {
	s.adm.beginDrain()
	s.co.stop()
	select {
	case <-s.co.done():
	case <-ctx.Done():
		return ctx.Err()
	}
	// Stragglers: a handler that passed the draining check just before
	// beginDrain may have parked a query after the dispatcher's final
	// sweep. They hold budget slots, so sweep the queue until every slot
	// is back.
	for s.adm.inFlight() > 0 {
		s.sweepIntake()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Millisecond):
		}
	}
	s.sweepIntake()
	if s.snap != nil {
		s.snap.Release()
		s.snap = nil
	}
	return nil
}

// Close is Drain without a deadline.
func (s *Server) Close() error { return s.Drain(context.Background()) }

// sweepIntake flushes anything still parked in the intake queue; only
// called after the dispatcher goroutine has exited.
func (s *Server) sweepIntake() {
	batch := make([]*pending, 0, s.opts.BatchSize)
	s.co.fill(&batch)
	if len(batch) > 0 {
		s.co.dispatch(batch)
	}
}

func (s *Server) buildMux() {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("POST /v1/querybatch", s.handleQueryBatch)
	mux.HandleFunc("POST /v1/insert", s.handleInsert)
	mux.HandleFunc("POST /v1/delete", s.handleDelete)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		if s.adm.isDraining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok\n"))
	})
	obshttp.Mount(mux)
	s.mux = mux
}

// admit runs the shared front half of every /v1 handler: drain refusal,
// then the in-flight budget. A true return means the caller holds a slot
// and must release it on every path.
func (s *Server) admit(w http.ResponseWriter) bool {
	mRequests.Inc(s.stripe)
	if s.adm.isDraining() {
		mDrainRejected.Inc(s.stripe)
		w.Header().Set("Retry-After", s.adm.retry)
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server is draining"})
		return false
	}
	if !s.adm.tryAcquire() {
		mShed.Inc(s.stripe)
		w.Header().Set("Retry-After", s.adm.retry)
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: "in-flight budget exhausted"})
		return false
	}
	return true
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w) {
		return
	}
	defer s.adm.release()
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	req, werr := s.decodeQuery(r.Body)
	if werr != nil {
		s.writeWireError(w, werr)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.opts.Timeout)
	defer cancel()
	start := s.opts.clk.Now()
	p := &pending{
		ctx: ctx, vec: req.Vector, max: req.Max,
		fp:   fingerprint(req.Vector, req.Max),
		enq:  start,
		done: make(chan result, 1),
	}
	mQueryReqs.Inc(s.stripe)
	if !s.co.offer(p) {
		mShed.Inc(s.stripe)
		w.Header().Set("Retry-After", s.adm.retry)
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: "intake queue over watermark"})
		return
	}
	select {
	case res := <-p.done:
		observeLatency(s.stripe, s.opts.clk.Now().Sub(start))
		writeJSON(w, http.StatusOK, queryResponse{IDs: nonNilIDs(res.ids), Epoch: res.epoch, Cached: res.cached})
	case <-ctx.Done():
		p.canceled.Store(true)
		mTimeouts.Inc(s.stripe)
		writeJSON(w, http.StatusGatewayTimeout, errorResponse{Error: "query deadline exceeded"})
	}
}

func (s *Server) handleQueryBatch(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w) {
		return
	}
	defer s.adm.release()
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	req, werr := s.decodeBatch(r.Body)
	if werr != nil {
		s.writeWireError(w, werr)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.opts.Timeout)
	defer cancel()
	start := s.opts.clk.Now()
	ps := make([]*pending, len(req.Vectors))
	for i, vec := range req.Vectors {
		ps[i] = &pending{
			ctx: ctx, vec: vec, max: req.Max,
			fp:   fingerprint(vec, req.Max),
			enq:  start,
			done: make(chan result, 1),
		}
	}
	mQueryReqs.Add(s.stripe, uint64(len(ps)))
	for i, p := range ps {
		if !s.co.offer(p) {
			// Shed the whole request; flag the already-parked prefix so
			// the dispatcher skips it.
			for _, q := range ps[:i] {
				q.canceled.Store(true)
			}
			mShed.Inc(s.stripe)
			w.Header().Set("Retry-After", s.adm.retry)
			writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: "intake queue over watermark"})
			return
		}
	}
	resp := batchResponse{Results: make([][]int, len(ps))}
	for i, p := range ps {
		select {
		case res := <-p.done:
			resp.Results[i] = nonNilIDs(res.ids)
			resp.Epoch = res.epoch
			if res.cached {
				resp.Cached++
			}
		case <-ctx.Done():
			for _, q := range ps[i:] {
				q.canceled.Store(true)
			}
			mTimeouts.Inc(s.stripe)
			writeJSON(w, http.StatusGatewayTimeout, errorResponse{Error: "query deadline exceeded"})
			return
		}
	}
	observeLatency(s.stripe, s.opts.clk.Now().Sub(start))
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w) {
		return
	}
	defer s.adm.release()
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	req, werr := s.decodeInsert(r.Body)
	if werr != nil {
		s.writeWireError(w, werr)
		return
	}
	var id int
	if s.keyed {
		id = s.ix.InsertKeyed(*req.Key, req.Vector)
	} else {
		id = s.ix.Insert(req.Vector)
	}
	mMutations.Inc(s.stripe)
	mInsertOps.Inc(s.stripe)
	writeJSON(w, http.StatusOK, insertResponse{ID: id, Epoch: s.ix.Epoch()})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w) {
		return
	}
	defer s.adm.release()
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	req, werr := s.decodeDelete(r.Body)
	if werr != nil {
		s.writeWireError(w, werr)
		return
	}
	var deleted bool
	if s.keyed {
		deleted = s.ix.DeleteKeyed(*req.Key)
	} else {
		deleted = s.ix.Delete(int(*req.ID))
	}
	mMutations.Inc(s.stripe)
	mDeleteOps.Inc(s.stripe)
	writeJSON(w, http.StatusOK, deleteResponse{Deleted: deleted, Epoch: s.ix.Epoch()})
}

// serveBatch is the dispatcher's flush hook: refresh the serving snapshot
// if the index moved, answer cache hits, run the misses through
// QueryBatchSigned grouped by candidate bound, fill the cache, respond.
func (s *Server) serveBatch(batch []*pending) {
	live := batch[:0]
	for _, p := range batch {
		if p.canceled.Load() || p.ctx.Err() != nil {
			mAbandoned.Inc(s.stripe)
			continue
		}
		live = append(live, p)
	}
	if len(live) == 0 {
		return
	}
	s.refreshSnapshot()

	// Cache pass: answer hits immediately, collect misses grouped by
	// their candidate bound (MaxCandidates is batch-wide in the engine).
	var groups map[int][]*pending
	for _, p := range live {
		if s.cache != nil {
			if ids, ok := s.cache.lookup(p.fp, s.snapEpoch); ok {
				p.done <- result{ids: ids, epoch: s.snapEpoch, cached: true}
				continue
			}
		}
		if groups == nil {
			groups = make(map[int][]*pending, 1)
		}
		groups[p.max] = append(groups[p.max], p)
	}
	for max, ps := range groups {
		qs := make([][]float64, len(ps))
		for i, p := range ps {
			qs[i] = p.vec
		}
		out, sigs, _, _ := s.snap.QueryBatchSigned(qs, index.BatchOptions{
			Workers:       s.opts.Workers,
			MaxCandidates: max,
		})
		for i, p := range ps {
			if s.cache != nil {
				s.cache.store(mixSig(sigs[i], max), p.fp, s.snapEpoch, out[i])
			}
			p.done <- result{ids: out[i], epoch: s.snapEpoch}
		}
	}
}

// refreshSnapshot pins a fresh snapshot when the index epoch has moved
// (or on first use). The epoch sum is monotone, so equality means no
// insert or delete landed since the pin — the snapshot is still current.
func (s *Server) refreshSnapshot() {
	if s.snap != nil && s.ix.Epoch() == s.snapEpoch {
		return
	}
	if s.snap != nil {
		s.snap.Release()
	}
	s.snap = s.ix.Snapshot()
	s.snapEpoch = s.snap.Epoch()
	mSnapRefresh.Inc(s.stripe)
}

// mixSig folds the candidate bound into a query's hash-key signature —
// two queries with identical keys but different bounds return different
// prefixes, so they must cache separately. splitmix64 finalizer.
func mixSig(sig uint64, max int) uint64 {
	z := sig ^ (uint64(max) + 0x9e3779b97f4a7c15)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ z>>31
}

// observeLatency records a wall-clock duration, guarding against the
// fake clock running backwards in tests.
func observeLatency(stripe uint32, d time.Duration) {
	if d > 0 {
		mServeLatency.Observe(stripe, uint64(d))
	}
}

// nonNilIDs keeps empty result sets as [] rather than null on the wire.
func nonNilIDs(ids []int) []int {
	if ids == nil {
		return []int{}
	}
	return ids
}
