package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"dsh/internal/obs"
)

// The coalescer merges queries arriving on separate connections into one
// batch call against the serving snapshot. Handlers park a pending op in
// a bounded intake queue and block on its done channel; a single
// dispatcher goroutine drains the queue and flushes a batch when it
// reaches the batch size or when the oldest parked query has lingered
// ~Options.Linger. Batching is what makes the repetition-blocked pre-hash
// and the shared worker pool pay off across connections — one block hash
// and one scratch acquisition serve every query in the flush.

// pending is one parked query: the handler fills it, offers it to the
// coalescer, and waits on done. done is buffered so the dispatcher's send
// never blocks even if the handler already gave up.
type pending struct {
	ctx context.Context
	vec []float64
	max int
	fp  uint64
	enq time.Time // enqueue time, for the queue-wait histogram
	// canceled flags an abandoned query (handler deadline fired while it
	// was parked); the dispatcher skips it instead of wasting batch work.
	canceled atomic.Bool
	done     chan result
}

// result is the dispatcher's answer to one pending query.
type result struct {
	ids    []int
	epoch  uint64
	cached bool
}

// coalescer owns the intake queue and the dispatch loop.
type coalescer struct {
	intake    chan *pending
	batchSize int
	linger    time.Duration
	// shedDepth is the backpressure watermark: offers are refused once the
	// queue holds this many parked queries, before the channel is even
	// full, so shedding kicks in while the dispatcher still has headroom.
	shedDepth int
	clk       clock
	flush     func([]*pending)
	stripe    uint32

	// received counts queries the dispatcher has taken off the intake
	// queue; the deterministic admission tests synchronize on it.
	received atomic.Int64

	stopOnce sync.Once
	stopped  chan struct{} // closed by stop(); run drains and exits
	drained  chan struct{} // closed by run when the queue is fully flushed
}

func newCoalescer(batchSize, queueDepth, shedDepth int, linger time.Duration, clk clock, flush func([]*pending)) *coalescer {
	return &coalescer{
		intake:    make(chan *pending, queueDepth),
		batchSize: batchSize,
		linger:    linger,
		shedDepth: shedDepth,
		clk:       clk,
		flush:     flush,
		stripe:    obs.NextStripe(),
		stopped:   make(chan struct{}),
		drained:   make(chan struct{}),
	}
}

// offer parks p in the intake queue. It refuses — caller sheds with 429 —
// when the queue is over the shed watermark or full.
func (c *coalescer) offer(p *pending) bool {
	if len(c.intake) >= c.shedDepth {
		return false
	}
	select {
	case c.intake <- p:
		mQueueDepth.Add(1)
		return true
	default:
		return false
	}
}

// run is the dispatcher loop; it exits only after stop(), once every
// parked query has been flushed.
func (c *coalescer) run() {
	defer close(c.drained)
	batch := make([]*pending, 0, c.batchSize)
	for {
		// Block for the batch's first query (or for shutdown).
		batch = batch[:0]
		select {
		case p := <-c.intake:
			c.took()
			batch = append(batch, p)
		case <-c.stopped:
			c.drainAll(batch)
			return
		}

		// Fast drain: sweep whatever is already parked, up to batchSize.
		c.fill(&batch)

		// Linger: the batch is short, so hold it open for up to linger
		// hoping more connections arrive to coalesce with.
		if len(batch) < c.batchSize && c.linger > 0 {
			timer := c.clk.After(c.linger)
		lingerLoop:
			for len(batch) < c.batchSize {
				select {
				case p := <-c.intake:
					c.took()
					batch = append(batch, p)
				case <-timer:
					break lingerLoop
				case <-c.stopped:
					break lingerLoop
				}
			}
		}

		c.dispatch(batch)
	}
}

// fill non-blockingly moves parked queries into batch up to batchSize.
func (c *coalescer) fill(batch *[]*pending) {
	for len(*batch) < c.batchSize {
		select {
		case p := <-c.intake:
			c.took()
			*batch = append(*batch, p)
		default:
			return
		}
	}
}

// took records one query leaving the intake queue.
func (c *coalescer) took() {
	mQueueDepth.Add(-1)
	c.received.Add(1)
}

// dispatch records batch metrics and hands the batch to the flush hook.
func (c *coalescer) dispatch(batch []*pending) {
	if len(batch) == 0 {
		return
	}
	now := c.clk.Now()
	for _, p := range batch {
		if w := now.Sub(p.enq); w > 0 {
			mQueueWait.Observe(c.stripe, uint64(w))
		}
	}
	mFlushes.Inc(c.stripe)
	mBatchSize.Observe(c.stripe, uint64(len(batch)))
	if len(batch) > 1 {
		mCoalesced.Inc(c.stripe)
	}
	c.flush(batch)
}

// drainAll flushes the partial batch in hand plus everything still parked
// in the queue, in batchSize chunks. Runs only on the stop path, after
// offer can no longer admit new queries (the server flips draining before
// calling stop).
func (c *coalescer) drainAll(batch []*pending) {
	for {
		c.fill(&batch)
		if len(batch) == 0 {
			return
		}
		c.dispatch(batch)
		batch = batch[:0]
	}
}

// stop shuts the dispatcher down; wait on done() for the queue to empty.
func (c *coalescer) stop() { c.stopOnce.Do(func() { close(c.stopped) }) }

// done is closed once every parked query has been flushed after stop.
func (c *coalescer) done() <-chan struct{} { return c.drained }
