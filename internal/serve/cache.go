package serve

import (
	"math"
	"sync"

	"dsh/internal/obs"
)

// The hot-query cache answers repeated queries without touching the index
// — no hash evaluations, no bucket probes. Its canonical key is the
// per-repetition hash-key signature QueryBatchSigned folds per query: two
// queries with equal signatures probed identical buckets in every
// repetition, so against one snapshot their results are identical. The
// signature is only available *after* hashing, though, and a cache whose
// lookup requires hashing saves nothing. So the cache is double-indexed:
//
//   - bySig: signature -> entry, the canonical, collision-meaningful key.
//     Distinct vectors that share a signature share one entry (they
//     provably share results).
//   - byFP: a cheap fingerprint of the raw vector bits -> entry, the
//     lookup path. A fingerprint hit short-circuits before any hashing.
//
// Entries are stamped with the snapshot epoch they were computed against;
// a lookup that finds an entry from an older epoch discards it (counted
// as stale), so a mutation can never be masked by the cache — this is the
// invariant the cache-invalidation differential test pins.
type queryCache struct {
	mu     sync.Mutex
	max    int
	stripe uint32
	bySig  map[uint64]*cacheEntry
	byFP   map[uint64]*cacheEntry
	// Intrusive LRU list: head is most recent, tail next to evict.
	head, tail *cacheEntry
}

type cacheEntry struct {
	sig   uint64
	epoch uint64
	// fps are all fingerprints aliased to this entry (distinct vectors
	// whose signatures collided onto the same result set).
	fps        []uint64
	ids        []int
	prev, next *cacheEntry
}

func newQueryCache(max int) *queryCache {
	return &queryCache{
		max:    max,
		stripe: obs.NextStripe(),
		bySig:  make(map[uint64]*cacheEntry, max),
		byFP:   make(map[uint64]*cacheEntry, max),
	}
}

// fingerprint hashes the raw bit pattern of vec plus the candidate bound
// with FNV-1a 64. Using the exact float bits means no canonicalization
// cost and no false merges (-0.0 vs 0.0 differ, which is fine — a miss is
// only a missed optimization); folding max in keeps queries that differ
// only in their candidate budget from aliasing.
func fingerprint(vec []float64, max int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range vec {
		b := math.Float64bits(v)
		for s := 0; s < 64; s += 8 {
			h ^= (b >> s) & 0xff
			h *= prime64
		}
	}
	b := uint64(max)
	for s := 0; s < 64; s += 8 {
		h ^= (b >> s) & 0xff
		h *= prime64
	}
	return h
}

// lookup returns the cached ids for fp if an entry exists at exactly
// epoch. Misses and stale discards bump their counters; a hit refreshes
// LRU position. The returned slice is shared — callers must not mutate it.
func (c *queryCache) lookup(fp uint64, epoch uint64) ([]int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.byFP[fp]
	if e == nil {
		mCacheMisses.Inc(c.stripe)
		return nil, false
	}
	if e.epoch != epoch {
		mCacheStale.Inc(c.stripe)
		c.remove(e)
		return nil, false
	}
	mCacheHits.Inc(c.stripe)
	c.moveToFront(e)
	return e.ids, true
}

// store records ids as the result for the query with the given signature
// and fingerprint, computed against epoch. If an entry for the signature
// already exists at this epoch the fingerprint is aliased onto it (a new
// vector provably sharing the result set); otherwise a fresh entry is
// inserted and the LRU trimmed to the size bound.
func (c *queryCache) store(sig, fp, epoch uint64, ids []int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e := c.bySig[sig]; e != nil {
		if e.epoch == epoch {
			if c.byFP[fp] != e {
				c.byFP[fp] = e
				e.fps = append(e.fps, fp)
			}
			c.moveToFront(e)
			return
		}
		c.remove(e) // superseded by a newer epoch's result
	}
	e := &cacheEntry{sig: sig, epoch: epoch, fps: []uint64{fp}, ids: ids}
	c.bySig[sig] = e
	c.byFP[fp] = e
	c.pushFront(e)
	for len(c.bySig) > c.max && c.tail != nil {
		mCacheEvict.Inc(c.stripe)
		c.remove(c.tail)
	}
}

// len reports the number of live entries (test hook).
func (c *queryCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.bySig)
}

// remove unlinks e from both maps and the LRU list. Caller holds mu.
func (c *queryCache) remove(e *cacheEntry) {
	delete(c.bySig, e.sig)
	for _, fp := range e.fps {
		if c.byFP[fp] == e {
			delete(c.byFP, fp)
		}
	}
	c.unlink(e)
}

func (c *queryCache) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if c.head == e {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if c.tail == e {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *queryCache) pushFront(e *cacheEntry) {
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *queryCache) moveToFront(e *cacheEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}
