package serve

import (
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"dsh/internal/core"
	"dsh/internal/index"
	"dsh/internal/workload"
	"dsh/internal/xrand"
)

// countingFamily wraps a family so every query-side (G) hash evaluation
// increments a shared counter — the instrument that proves a cache hit
// really skipped hashing, not just the probe.
type countingFamily struct {
	inner  core.Family[[]float64]
	gCalls *atomic.Int64
}

type countingHasher struct {
	inner core.Hasher[[]float64]
	calls *atomic.Int64
}

func (h countingHasher) Hash(p []float64) uint64 {
	h.calls.Add(1)
	return h.inner.Hash(p)
}

func (f countingFamily) Name() string  { return "counting(" + f.inner.Name() + ")" }
func (f countingFamily) CPF() core.CPF { return f.inner.CPF() }

func (f countingFamily) Sample(rng *xrand.Rand) core.Pair[[]float64] {
	pair := f.inner.Sample(rng)
	return core.Pair[[]float64]{
		H: pair.H,
		G: countingHasher{inner: pair.G, calls: f.gCalls},
	}
}

// TestQueryCacheHitSkipsHashEvaluation pins the cache's whole point: the
// second serving of a hot query performs zero query-side hash
// evaluations and returns the identical id list.
func TestQueryCacheHitSkipsHashEvaluation(t *testing.T) {
	gCalls := &atomic.Int64{}
	fam := countingFamily{inner: testFamily(), gCalls: gCalls}
	ix := index.NewSharded[[]float64](xrand.New(421), fam, testL, nil, index.ShardOptions{
		Shards:  2,
		Routing: index.RouteHash,
		Dynamic: index.DynamicOptions{MemtableThreshold: 64},
	})
	defer ix.Close()
	for i, p := range workload.SpherePoints(xrand.New(422), 100, testDim) {
		ix.InsertKeyed(uint64(i), p)
	}
	srv := New(ix, Options{Dim: testDim, Workers: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	vec := workload.SpherePoints(xrand.New(423), 1, testDim)[0]

	first := wireQuery(t, ts.Client(), ts.URL, vec)
	if first.Cached {
		t.Fatal("first serving reported Cached=true")
	}
	between := gCalls.Load()
	if between == 0 {
		t.Fatal("first serving performed no query-side hash evaluations")
	}

	second := wireQuery(t, ts.Client(), ts.URL, vec)
	if !second.Cached {
		t.Fatal("second serving of the same vector missed the cache")
	}
	if got := gCalls.Load(); got != between {
		t.Fatalf("cache hit evaluated hashes: %d -> %d G calls", between, got)
	}
	if !sameIDs(second.IDs, first.IDs) {
		t.Fatalf("cache hit returned %v, first serving returned %v", second.IDs, first.IDs)
	}
	if second.Epoch != first.Epoch {
		t.Fatalf("cache hit at epoch %d, stored at %d", second.Epoch, first.Epoch)
	}
}

// TestQueryCacheNeverServesStale is the cache-invalidation differential:
// across rounds of keyed upserts, deletes, explicit compaction (tombstone
// GC folds) and snapshot barriers, a wire query must always match a
// fresh in-process computation — a cached answer may only be served while
// its epoch is exactly current.
func TestQueryCacheNeverServesStale(t *testing.T) {
	ix, _ := newKeyedIndex(t, 200)
	defer ix.Close()
	srv := New(ix, Options{Dim: testDim, Workers: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	probes := workload.SpherePoints(xrand.New(431), 8, testDim)
	fresh := workload.SpherePoints(xrand.New(432), 64, testDim)
	rng := xrand.New(433)

	staleBefore := mCacheStale.Value()
	hitsBefore := mCacheHits.Value()
	for round := 0; round < 12; round++ {
		// Warm the cache on every probe, twice so hits occur.
		for _, vec := range probes {
			wireQuery(t, ts.Client(), ts.URL, vec)
			wireQuery(t, ts.Client(), ts.URL, vec)
		}
		// Churn: upserts and deletes over the preloaded key space, then a
		// GC-folding compaction and a snapshot barrier.
		for i := 0; i < 10; i++ {
			key := rng.Uint64() % 200
			if i%3 == 2 {
				ix.DeleteKeyed(key)
			} else {
				ix.InsertKeyed(key, fresh[rng.Uint64()%uint64(len(fresh))])
			}
		}
		ix.Compact()
		barrier := ix.Snapshot()
		barrier.Release()

		// Differential check: every wire answer equals the in-process
		// answer at the live epoch. The test is serial, so the epochs
		// must line up exactly.
		snap := ix.Snapshot()
		want, _, _ := snap.QueryBatch(probes, index.BatchOptions{})
		for i, vec := range probes {
			qr := wireQuery(t, ts.Client(), ts.URL, vec)
			if qr.Epoch != snap.Epoch() {
				t.Fatalf("round %d: wire epoch %d, live epoch %d", round, qr.Epoch, snap.Epoch())
			}
			if !sameIDs(qr.IDs, want[i]) {
				t.Fatalf("round %d probe %d: wire %v != in-process %v (stale cache?)",
					round, i, qr.IDs, want[i])
			}
		}
		snap.Release()
	}
	if d := mCacheStale.Value() - staleBefore; d == 0 {
		t.Fatal("churn rounds never discarded a stale cache entry")
	}
	if d := mCacheHits.Value() - hitsBefore; d == 0 {
		t.Fatal("warm rounds never hit the cache")
	}
}

// TestQueryCacheLRU unit-tests the double-indexed LRU structure directly:
// eviction order, stale discard, fingerprint aliasing, and removal
// consistency between the two maps.
func TestQueryCacheLRU(t *testing.T) {
	c := newQueryCache(2)
	c.store(1, 10, 5, []int{1})
	c.store(2, 20, 5, []int{2})
	if _, ok := c.lookup(10, 5); !ok {
		t.Fatal("entry 1 missing")
	}
	// Entry 1 is now most recent; storing a third evicts entry 2.
	c.store(3, 30, 5, []int{3})
	if _, ok := c.lookup(20, 5); ok {
		t.Fatal("LRU kept the least-recently-used entry")
	}
	if _, ok := c.lookup(10, 5); !ok {
		t.Fatal("LRU evicted the most-recently-used entry")
	}
	if c.len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", c.len())
	}

	// Stale: an epoch bump invalidates on lookup.
	if _, ok := c.lookup(10, 6); ok {
		t.Fatal("lookup served an entry from an older epoch")
	}
	if _, ok := c.lookup(10, 5); ok {
		t.Fatal("stale entry was not discarded")
	}

	// Aliasing: a second fingerprint with the same signature and epoch
	// shares the entry; removing the entry clears both fingerprints.
	c2 := newQueryCache(4)
	c2.store(7, 70, 9, []int{7})
	c2.store(7, 71, 9, []int{7})
	if c2.len() != 1 {
		t.Fatalf("aliased store created %d entries, want 1", c2.len())
	}
	if ids, ok := c2.lookup(71, 9); !ok || len(ids) != 1 || ids[0] != 7 {
		t.Fatalf("aliased fingerprint lookup = %v, %v", ids, ok)
	}
	if _, ok := c2.lookup(70, 11); ok {
		t.Fatal("stale aliased entry served")
	}
	if _, ok := c2.lookup(71, 9); ok {
		t.Fatal("removing a stale entry left an aliased fingerprint behind")
	}
}

// TestQueryCacheFingerprint pins that the candidate bound participates in
// both cache keys: same vector, different max, no aliasing.
func TestQueryCacheFingerprint(t *testing.T) {
	vec := workload.SpherePoints(xrand.New(441), 1, testDim)[0]
	if fingerprint(vec, 0) == fingerprint(vec, 5) {
		t.Fatal("fingerprint ignores the candidate bound")
	}
	if mixSig(99, 0) == mixSig(99, 5) {
		t.Fatal("mixSig ignores the candidate bound")
	}
	other := workload.SpherePoints(xrand.New(442), 1, testDim)[0]
	if fingerprint(vec, 0) == fingerprint(other, 0) {
		t.Fatal("distinct vectors share a fingerprint")
	}
}
