package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// fakeClock drives the coalescer's linger timer deterministically: Now
// advances only via Advance, and After registers a waiter that fires when
// the clock passes its deadline. Tests synchronize on timer registration
// (waitTimers) instead of sleeping.
type fakeClock struct {
	mu     sync.Mutex
	now    time.Time
	timers []*fakeTimer
}

type fakeTimer struct {
	at time.Time
	ch chan time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(0, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &fakeTimer{at: c.now.Add(d), ch: make(chan time.Time, 1)}
	c.timers = append(c.timers, t)
	return t.ch
}

// Advance moves the clock and fires every timer whose deadline passed.
func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	kept := c.timers[:0]
	for _, t := range c.timers {
		if !t.at.After(c.now) {
			t.ch <- c.now
		} else {
			kept = append(kept, t)
		}
	}
	c.timers = kept
}

// waitTimers polls until at least n timers are registered — i.e. the
// dispatcher has entered its linger loop — or the deadline passes.
func (c *fakeClock) waitTimers(t *testing.T, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		c.mu.Lock()
		got := len(c.timers)
		c.mu.Unlock()
		if got >= n {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
	t.Fatal("dispatcher never registered a linger timer")
}

// waitReceived polls until the dispatcher has taken at least n queries
// off the intake queue since the recorded baseline.
func waitReceived(t *testing.T, co *coalescer, base, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if co.received.Load()-base >= n {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
	t.Fatalf("dispatcher absorbed %d queries, want %d", co.received.Load()-base, n)
}

// newClockedServer builds a keyed-index server on a fake clock with a
// linger long enough that nothing flushes until the test advances time.
func newClockedServer(t *testing.T, opts Options) (*Server, *fakeClock, func()) {
	t.Helper()
	ix, _ := newKeyedIndex(t, 50)
	clk := newFakeClock()
	opts.Dim = testDim
	opts.clk = clk
	srv := New(ix, opts)
	return srv, clk, func() {
		_ = srv.Close()
		ix.Close()
	}
}

// queryAsync fires one wire query (a fixed valid vector) against the
// handler from a goroutine and returns a channel carrying the recorder
// once the response is written.
func queryAsync(srv *Server) <-chan *httptest.ResponseRecorder {
	ch := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		req := httptest.NewRequest(http.MethodPost, "/v1/query",
			bytes.NewReader([]byte(`{"vector":[1,1,1,1,1,1,1,1,1,1,1,1]}`)))
		rr := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rr, req)
		ch <- rr
	}()
	return ch
}

// TestCoalesceLingerFlush pins the linger semantics: short batches hold
// until the timer fires, then flush together as one coalesced batch.
func TestCoalesceLingerFlush(t *testing.T) {
	srv, clk, done := newClockedServer(t, Options{
		BatchSize: 8,
		Linger:    time.Millisecond,
		CacheSize: -1, // isolate coalescing from caching
	})
	defer done()

	flushesBefore := mFlushes.Value()
	coalescedBefore := mCoalesced.Value()
	recBefore := srv.co.received.Load()

	first := queryAsync(srv)
	// The dispatcher takes the first query and enters the linger loop.
	clk.waitTimers(t, 1)

	second := queryAsync(srv)
	third := queryAsync(srv)
	waitReceived(t, srv.co, recBefore, 3) // all three absorbed into the open batch

	clk.Advance(time.Millisecond) // linger expires -> flush of 3
	for i, ch := range []<-chan *httptest.ResponseRecorder{first, second, third} {
		rr := <-ch
		if rr.Code != http.StatusOK {
			t.Fatalf("query %d: status %d body %s", i, rr.Code, rr.Body.String())
		}
	}
	if d := mFlushes.Value() - flushesBefore; d != 1 {
		t.Fatalf("%d flushes, want exactly 1 (all three queries coalesced)", d)
	}
	if d := mCoalesced.Value() - coalescedBefore; d != 1 {
		t.Fatalf("%d coalesced batches, want 1", d)
	}
}

// TestCoalesceBatchSizeFlush pins the size trigger: once BatchSize
// queries are parked the batch flushes with no clock movement at all.
func TestCoalesceBatchSizeFlush(t *testing.T) {
	srv, _, done := newClockedServer(t, Options{
		BatchSize: 2,
		Linger:    time.Hour, // only the size trigger may flush
		CacheSize: -1,
	})
	defer done()

	first := queryAsync(srv)
	second := queryAsync(srv)
	for i, ch := range []<-chan *httptest.ResponseRecorder{first, second} {
		rr := <-ch
		if rr.Code != http.StatusOK {
			t.Fatalf("query %d: status %d (size-triggered flush never fired)", i, rr.Code)
		}
	}
}

// TestCoalesceWatermarkShedding drives the coalescer directly with a
// blocked flush hook: parked queries pile up while the dispatcher is
// busy, the shed watermark refuses offers before the channel is full,
// and unblocking drains everything.
func TestCoalesceWatermarkShedding(t *testing.T) {
	release := make(chan struct{})
	co := newCoalescer(1, 8, 3, 0, sysClock{}, func(batch []*pending) {
		<-release
		for _, p := range batch {
			p.done <- result{}
		}
	})
	go co.run()
	defer func() {
		co.stop()
		<-co.done()
	}()

	mk := func() *pending { return &pending{done: make(chan result, 1)} }
	// One offer fills a batch (size 1); the dispatcher takes it and
	// blocks inside the flush hook.
	base := co.received.Load()
	if !co.offer(mk()) {
		t.Fatal("initial offer refused")
	}
	waitReceived(t, co, base, 1)

	// The dispatcher is stuck: exactly shedDepth queries may park, the
	// next offer is shed.
	for i := 0; i < 3; i++ {
		if !co.offer(mk()) {
			t.Fatalf("offer %d refused below the watermark", i)
		}
	}
	if co.offer(mk()) {
		t.Fatal("offer above the shed watermark accepted")
	}

	// Unblock: everything parked flushes and completes.
	close(release)
	deadline := time.Now().Add(5 * time.Second)
	for co.received.Load()-base < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("dispatcher drained %d of 4 queries", co.received.Load()-base)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestAdmissionBudgetSheds pins the in-flight semaphore: with a budget of
// one, a second concurrent request is shed with 429 + Retry-After while
// the first is parked, and the shed path releases nothing it didn't take.
func TestAdmissionBudgetSheds(t *testing.T) {
	srv, clk, done := newClockedServer(t, Options{
		BatchSize:   8,
		Linger:      time.Millisecond,
		MaxInFlight: 1,
		CacheSize:   -1,
		RetryAfter:  3 * time.Second,
	})
	defer done()

	first := queryAsync(srv)
	clk.waitTimers(t, 1) // first request is parked and holds the only slot

	rr := doRaw(t, srv.Handler(), http.MethodPost, "/v1/query",
		[]byte(`{"vector":[1,1,1,1,1,1,1,1,1,1,1,1]}`))
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("second request: status %d, want 429", rr.Code)
	}
	if got := rr.Header().Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", got)
	}
	if n := srv.adm.inFlight(); n != 1 {
		t.Fatalf("in-flight %d after shed, want 1 (shed must not release the holder's slot)", n)
	}

	clk.Advance(time.Millisecond)
	if rr := <-first; rr.Code != http.StatusOK {
		t.Fatalf("parked request: status %d", rr.Code)
	}
	waitInFlightZero(t, srv)
}

// TestServeGracefulDrain pins the drain ordering: a parked query
// completes with 200, requests arriving after Drain begins get 503 +
// Retry-After, and Drain returns with the budget empty.
func TestServeGracefulDrain(t *testing.T) {
	ix, _ := newKeyedIndex(t, 50)
	defer ix.Close()
	clk := newFakeClock()
	srv := New(ix, Options{Dim: testDim, BatchSize: 8, Linger: time.Hour, CacheSize: -1, clk: clk})

	parked := queryAsync(srv)
	clk.waitTimers(t, 1) // the query is held open in the linger loop

	drainErr := make(chan error, 1)
	go func() { drainErr <- srv.Close() }()

	// A request racing the drain either lands before the latch (200) or
	// after it (503); poll until the latch is visibly up.
	deadline := time.Now().Add(5 * time.Second)
	for {
		rr := doRaw(t, srv.Handler(), http.MethodPost, "/v1/query",
			[]byte(`{"vector":[1,1,1,1,1,1,1,1,1,1,1,1]}`))
		if rr.Code == http.StatusServiceUnavailable {
			if got := rr.Header().Get("Retry-After"); got == "" {
				t.Fatal("503 without Retry-After")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("drain latch never refused a new request")
		}
	}

	// The parked query still completes: stop breaks the linger loop and
	// the final sweep flushes it.
	if rr := <-parked; rr.Code != http.StatusOK {
		t.Fatalf("parked query during drain: status %d, want 200", rr.Code)
	}
	if err := <-drainErr; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if n := srv.adm.inFlight(); n != 0 {
		t.Fatalf("%d slots still held after drain", n)
	}
}

// waitInFlightZero polls the budget back to empty (the handler releases
// its slot after writing the response, which races the test's receive).
func waitInFlightZero(t *testing.T, srv *Server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if srv.adm.inFlight() == 0 {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
	t.Fatalf("in-flight budget stuck at %d", srv.adm.inFlight())
}
