package serve

import (
	"math"
	"net/http"
	"testing"

	"dsh/internal/index"
	"dsh/internal/workload"
	"dsh/internal/xrand"
)

// TestServeWireValidation drives every malformed-input class through the
// real handlers and checks both the status code and that no in-flight
// budget slot leaked — the invariant the fuzz harness extends to
// arbitrary bytes.
func TestServeWireValidation(t *testing.T) {
	ix, _ := newKeyedIndex(t, 30)
	defer ix.Close()
	srv := New(ix, Options{Dim: testDim, MaxBatch: 4, MaxBodyBytes: 1 << 14})
	defer srv.Close()
	h := srv.Handler()

	cases := []struct {
		name string
		path string
		body string
		want int
	}{
		{"malformed json", "/v1/query", `{"vector":`, http.StatusBadRequest},
		{"trailing garbage", "/v1/query", `{"vector":[1,2,3,4,5,6,7,8,9,10,11,12]} extra`, http.StatusBadRequest},
		{"wrong shape", "/v1/query", `{"vector":"not an array"}`, http.StatusBadRequest},
		{"empty vector", "/v1/query", `{"vector":[]}`, http.StatusBadRequest},
		{"missing vector", "/v1/query", `{}`, http.StatusBadRequest},
		{"dim mismatch short", "/v1/query", `{"vector":[1,2,3]}`, http.StatusBadRequest},
		{"dim mismatch long", "/v1/query", `{"vector":[1,2,3,4,5,6,7,8,9,10,11,12,13]}`, http.StatusBadRequest},
		{"overflow to inf", "/v1/query", `{"vector":[1e999,2,3,4,5,6,7,8,9,10,11,12]}`, http.StatusBadRequest},
		{"negative max", "/v1/query", `{"vector":[1,2,3,4,5,6,7,8,9,10,11,12],"max":-1}`, http.StatusBadRequest},
		{"empty batch", "/v1/querybatch", `{"vectors":[]}`, http.StatusBadRequest},
		{"oversized batch", "/v1/querybatch",
			`{"vectors":[[1,2,3,4,5,6,7,8,9,10,11,12],[1,2,3,4,5,6,7,8,9,10,11,12],[1,2,3,4,5,6,7,8,9,10,11,12],[1,2,3,4,5,6,7,8,9,10,11,12],[1,2,3,4,5,6,7,8,9,10,11,12]]}`,
			http.StatusRequestEntityTooLarge},
		{"batch bad member", "/v1/querybatch", `{"vectors":[[1,2,3]]}`, http.StatusBadRequest},
		{"keyed insert without key", "/v1/insert", `{"vector":[1,2,3,4,5,6,7,8,9,10,11,12]}`, http.StatusBadRequest},
		{"insert zero-length vector", "/v1/insert", `{"key":1,"vector":[]}`, http.StatusBadRequest},
		{"delete with both key and id", "/v1/delete", `{"key":1,"id":2}`, http.StatusBadRequest},
		{"delete with neither", "/v1/delete", `{}`, http.StatusBadRequest},
		{"keyed delete by id", "/v1/delete", `{"id":3}`, http.StatusBadRequest},
		{"unknown endpoint", "/v1/nope", `{}`, http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rr := doRaw(t, h, http.MethodPost, tc.path, []byte(tc.body))
			if rr.Code != tc.want {
				t.Fatalf("status %d, want %d (body %s)", rr.Code, tc.want, rr.Body.String())
			}
		})
	}

	// Wrong method on a POST route.
	rr := doRaw(t, h, http.MethodGet, "/v1/query", nil)
	if rr.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/query: status %d, want 405", rr.Code)
	}

	// Body over MaxBodyBytes trips the MaxBytesReader mid-decode.
	big := make([]byte, 1<<15)
	for i := range big {
		big[i] = '1'
	}
	rr = doRaw(t, h, http.MethodPost, "/v1/query", append([]byte(`{"vector":[`), big...))
	if rr.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", rr.Code)
	}

	if n := srv.adm.inFlight(); n != 0 {
		t.Fatalf("%d in-flight budget slots leaked across rejected requests", n)
	}
}

// TestServeWireValidationRoundRobin covers the routing-variant rejections
// only a round-robin index produces.
func TestServeWireValidationRoundRobin(t *testing.T) {
	ix := index.NewSharded[[]float64](xrand.New(451), testFamily(), testL,
		workload.SpherePoints(xrand.New(452), 10, testDim),
		index.ShardOptions{Shards: 2})
	defer ix.Close()
	srv := New(ix, Options{Dim: testDim})
	defer srv.Close()
	h := srv.Handler()

	cases := []struct {
		name string
		path string
		body string
	}{
		{"rr insert with key", "/v1/insert", `{"key":7,"vector":[1,2,3,4,5,6,7,8,9,10,11,12]}`},
		{"rr delete by key", "/v1/delete", `{"key":7}`},
		{"negative id", "/v1/delete", `{"id":-4}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rr := doRaw(t, h, http.MethodPost, tc.path, []byte(tc.body))
			if rr.Code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (body %s)", rr.Code, rr.Body.String())
			}
		})
	}
	if n := srv.adm.inFlight(); n != 0 {
		t.Fatalf("%d in-flight budget slots leaked", n)
	}
}

// TestCheckVector unit-tests the validator on inputs JSON itself cannot
// produce (NaN, Inf) so the non-finite branch is pinned even though the
// wire can only reach it through decoded infinities.
func TestCheckVector(t *testing.T) {
	if err := checkVector([]float64{1, math.NaN()}, 2); err == nil {
		t.Fatal("NaN accepted")
	}
	if err := checkVector([]float64{math.Inf(1), 0}, 2); err == nil {
		t.Fatal("+Inf accepted")
	}
	if err := checkVector([]float64{1, 2}, 3); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	if err := checkVector(nil, 3); err == nil {
		t.Fatal("nil vector accepted")
	}
	if err := checkVector([]float64{1, 2, 3}, 3); err != nil {
		t.Fatalf("valid vector rejected: %v", err)
	}
}
