package serve

import "dsh/internal/obs"

// Serving-edge metrics, registered once in the obs default registry and
// exported through /metrics on the server's own mux. All hot-path records
// are striped counter adds or histogram observations — the serving edge
// never blocks a request on metrics.
var (
	// Request intake and admission.
	mRequests = obs.NewCounter("dsh_serve_requests_total",
		"HTTP requests received by the serving edge (all /v1 endpoints)")
	mQueryReqs = obs.NewCounter("dsh_serve_queries_total",
		"query operations enqueued into the coalescing intake queue")
	mMutations = obs.NewCounter("dsh_serve_mutations_total",
		"insert and delete operations applied through the serving edge")
	mBadRequests = obs.NewCounter("dsh_serve_bad_requests_total",
		"requests rejected by the wire codec (4xx: malformed JSON, bad dims, oversized batches)")
	mShed = obs.NewCounter("dsh_serve_shed_total",
		"requests shed with 429 by admission control (in-flight budget exhausted or intake queue over the watermark)")
	mDrainRejected = obs.NewCounter("dsh_serve_drain_rejected_total",
		"requests refused with 503 while the server was draining")
	mTimeouts = obs.NewCounter("dsh_serve_timeouts_total",
		"requests that hit their deadline before the dispatcher answered (504)")
	mAbandoned = obs.NewCounter("dsh_serve_abandoned_total",
		"parked queries skipped by the dispatcher because their context was already canceled")
	mInFlight = obs.NewGauge("dsh_serve_inflight",
		"requests currently holding an in-flight budget slot")
	mQueueDepth = obs.NewGauge("dsh_serve_queue_depth",
		"queries currently parked in the coalescing intake queue")

	// Coalescing dispatcher.
	mFlushes = obs.NewCounter("dsh_serve_batches_total",
		"coalesced batches flushed by the dispatcher (size or linger triggered)")
	mCoalesced = obs.NewCounter("dsh_serve_coalesced_batches_total",
		"dispatcher batches that merged more than one in-flight query")
	mBatchSize = obs.NewHistogram("dsh_serve_batch_size",
		"queries per coalesced dispatcher batch")
	mQueueWait = obs.NewHistogram("dsh_serve_queue_wait_ns",
		"time a query spent parked in the intake queue before its batch flushed, in nanoseconds")
	mServeLatency = obs.NewHistogram("dsh_serve_request_ns",
		"server-side query latency (enqueue to response written) in nanoseconds")
	mSnapRefresh = obs.NewCounter("dsh_serve_snapshot_refreshes_total",
		"serving-snapshot refreshes triggered by an epoch advance")

	// Hot-query cache.
	mCacheHits = obs.NewCounter("dsh_serve_cache_hits_total",
		"queries answered from the hot-query cache (no hash evaluation, no probe)")
	mCacheMisses = obs.NewCounter("dsh_serve_cache_misses_total",
		"queries that missed the hot-query cache and ran through the batch engine")
	mCacheStale = obs.NewCounter("dsh_serve_cache_stale_total",
		"cache entries discarded on lookup because the serving epoch moved past them")
	mCacheEvict = obs.NewCounter("dsh_serve_cache_evictions_total",
		"cache entries evicted by the size-bounded LRU")

	// Mutation endpoints.
	mInsertOps = obs.NewCounter("dsh_serve_inserts_total",
		"insert/upsert operations applied through /v1/insert")
	mDeleteOps = obs.NewCounter("dsh_serve_deletes_total",
		"delete operations applied through /v1/delete")
)
