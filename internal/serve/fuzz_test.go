package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"

	"dsh/internal/core"
	"dsh/internal/index"
	"dsh/internal/sphere"
	"dsh/internal/workload"
	"dsh/internal/xrand"
)

// fuzzDim is deliberately small so random JSON has a fighting chance of
// producing a valid vector and exercising the accept paths too.
const fuzzDim = 4

// FuzzWireDecode throws arbitrary bytes at every request decoder: the
// only acceptable outcomes are a nil error or a wireError with a 4xx
// status — never a panic, never a 5xx classification.
func FuzzWireDecode(f *testing.F) {
	f.Add(byte('q'), []byte(`{"vector":[1,2,3,4]}`))
	f.Add(byte('q'), []byte(`{"vector":[1,2,3,4],"max":2}`))
	f.Add(byte('q'), []byte(`{"vector":[]}`))
	f.Add(byte('q'), []byte(`{"vector":[1e999,0,0,0]}`))
	f.Add(byte('q'), []byte(`{"vector":[1,2]}`))
	f.Add(byte('b'), []byte(`{"vectors":[[1,2,3,4],[4,3,2,1]]}`))
	f.Add(byte('b'), []byte(`{"vectors":[]}`))
	f.Add(byte('b'), []byte(`{"vectors":[[1,2,3,4],[1,2,3,4],[1,2,3,4],[1,2,3,4],[1,2,3,4],[1,2,3,4],[1,2,3,4],[1,2,3,4],[1,2,3,4]]}`))
	f.Add(byte('i'), []byte(`{"key":7,"vector":[1,2,3,4]}`))
	f.Add(byte('i'), []byte(`{"vector":[1,2,3,4]}`))
	f.Add(byte('d'), []byte(`{"key":7}`))
	f.Add(byte('d'), []byte(`{"id":3}`))
	f.Add(byte('d'), []byte(`{"key":7,"id":3}`))
	f.Add(byte('q'), []byte(`not json at all`))
	f.Add(byte('q'), []byte(`{"vector":[1,2,3,4]} trailing`))
	f.Add(byte('q'), []byte("{\"vector\":[\x00]}"))

	// Decoding only touches opts and the routing flag, so a bare Server
	// value suffices — no dispatcher, no index.
	keyedSrv := &Server{opts: Options{Dim: fuzzDim, MaxBatch: 8}.withDefaults(), keyed: true}
	rrSrv := &Server{opts: Options{Dim: fuzzDim, MaxBatch: 8}.withDefaults(), keyed: false}

	f.Fuzz(func(t *testing.T, which byte, body []byte) {
		for _, srv := range []*Server{keyedSrv, rrSrv} {
			var werr *wireError
			switch which % 4 {
			case 0:
				_, werr = srv.decodeQuery(bytes.NewReader(body))
			case 1:
				_, werr = srv.decodeBatch(bytes.NewReader(body))
			case 2:
				_, werr = srv.decodeInsert(bytes.NewReader(body))
			case 3:
				_, werr = srv.decodeDelete(bytes.NewReader(body))
			}
			if werr != nil && (werr.status < 400 || werr.status >= 500) {
				t.Fatalf("decoder classified %q as status %d, want 4xx", body, werr.status)
			}
		}
	})
}

// FuzzServeHTTP drives arbitrary bytes through the full HTTP stack — mux,
// admission, decode, coalescer, batch engine — and asserts the server
// neither panics, nor answers 500, nor leaks an in-flight budget slot.
func FuzzServeHTTP(f *testing.F) {
	f.Add(byte('q'), []byte(`{"vector":[1,2,3,4]}`))
	f.Add(byte('b'), []byte(`{"vectors":[[1,2,3,4]],"max":3}`))
	f.Add(byte('i'), []byte(`{"key":9,"vector":[0.5,0.5,0.5,0.5]}`))
	f.Add(byte('d'), []byte(`{"key":9}`))
	f.Add(byte('q'), []byte(`{"vector":[1,2,3]}`))
	f.Add(byte('q'), []byte(`garbage`))
	f.Add(byte('h'), []byte(``))
	f.Add(byte('m'), []byte(``))

	fam := core.Power[[]float64](sphere.SimHash(fuzzDim), 4)
	ix := index.NewSharded[[]float64](xrand.New(471), fam, 4, nil,
		index.ShardOptions{Shards: 2, Routing: index.RouteHash})
	for i, p := range workload.SpherePoints(xrand.New(472), 50, fuzzDim) {
		ix.InsertKeyed(uint64(i), p)
	}
	srv := New(ix, Options{Dim: fuzzDim, MaxBatch: 8, MaxBodyBytes: 1 << 16, Workers: 1})
	f.Cleanup(func() {
		_ = srv.Close()
		ix.Close()
	})
	paths := map[byte]string{
		'q': "/v1/query",
		'b': "/v1/querybatch",
		'i': "/v1/insert",
		'd': "/v1/delete",
		'h': "/healthz",
		'm': "/metrics",
	}

	f.Fuzz(func(t *testing.T, which byte, body []byte) {
		path, ok := paths[which]
		if !ok {
			path = "/v1/query"
		}
		method := http.MethodPost
		if which == 'h' || which == 'm' {
			method = http.MethodGet
		}
		req := httptest.NewRequest(method, path, bytes.NewReader(body))
		rr := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rr, req)
		if rr.Code == http.StatusInternalServerError {
			t.Fatalf("%s %s with %q answered 500: %s", method, path, body, rr.Body.String())
		}
		if n := srv.adm.inFlight(); n != 0 {
			t.Fatalf("%d in-flight budget slots leaked after %s %s %q", n, method, path, body)
		}
	})
}
