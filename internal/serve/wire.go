package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
)

// The wire format is plain JSON over HTTP: small enough to drive with
// curl, strict enough to fuzz. Every decode error maps to a 4xx with a
// one-line JSON body; nothing in this file touches the index, so a
// malformed request is rejected before it costs an in-flight slot any
// real work.

// wireError is a decode/validation failure carrying the HTTP status it
// should be reported with.
type wireError struct {
	status int
	msg    string
}

func (e *wireError) Error() string { return e.msg }

func badRequest(format string, args ...any) *wireError {
	return &wireError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// queryRequest is the body of POST /v1/query.
type queryRequest struct {
	Vector []float64 `json:"vector"`
	// Max bounds the number of distinct candidates returned; 0 means
	// unbounded. Mirrors BatchOptions.MaxCandidates.
	Max int `json:"max,omitempty"`
}

// batchRequest is the body of POST /v1/querybatch.
type batchRequest struct {
	Vectors [][]float64 `json:"vectors"`
	Max     int         `json:"max,omitempty"`
}

// insertRequest is the body of POST /v1/insert. Key must be present on a
// hash-routed (keyed) index and absent on a round-robin one.
type insertRequest struct {
	Key    *uint64   `json:"key,omitempty"`
	Vector []float64 `json:"vector"`
}

// deleteRequest is the body of POST /v1/delete: exactly one of Key (keyed
// index) or ID (round-robin index) must be set.
type deleteRequest struct {
	Key *uint64 `json:"key,omitempty"`
	ID  *int64  `json:"id,omitempty"`
}

// queryResponse answers /v1/query.
type queryResponse struct {
	IDs    []int  `json:"ids"`
	Epoch  uint64 `json:"epoch"`
	Cached bool   `json:"cached"`
}

// batchResponse answers /v1/querybatch; Cached counts how many of the
// batch's queries were answered from the hot-query cache.
type batchResponse struct {
	Results [][]int `json:"results"`
	Epoch   uint64  `json:"epoch"`
	Cached  int     `json:"cached"`
}

// insertResponse answers /v1/insert with the assigned (or upserted) id.
type insertResponse struct {
	ID    int    `json:"id"`
	Epoch uint64 `json:"epoch"`
}

// deleteResponse answers /v1/delete.
type deleteResponse struct {
	Deleted bool   `json:"deleted"`
	Epoch   uint64 `json:"epoch"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// decodeJSON decodes one JSON value from r into v, rejecting syntax
// errors, wrong shapes, and trailing garbage with 400 (or 413 when the
// body tripped MaxBytesReader).
func decodeJSON(r io.Reader, v any) *wireError {
	dec := json.NewDecoder(r)
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return &wireError{status: http.StatusRequestEntityTooLarge, msg: "request body too large"}
		}
		return badRequest("malformed request body: %v", err)
	}
	if dec.More() {
		return badRequest("trailing data after request body")
	}
	return nil
}

// checkVector validates one query/insert vector against the serving
// dimension: present, exactly dim wide, and finite in every coordinate.
// NaN would poison hash keys (every comparison false) and Inf overflows
// the projection sums, so both are rejected at the edge.
func checkVector(vec []float64, dim int) *wireError {
	if len(vec) == 0 {
		return badRequest("vector is required and must be non-empty")
	}
	if len(vec) != dim {
		return badRequest("vector has dimension %d, index serves dimension %d", len(vec), dim)
	}
	for i, v := range vec {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return badRequest("vector[%d] is not finite", i)
		}
	}
	return nil
}

func (s *Server) decodeQuery(r io.Reader) (queryRequest, *wireError) {
	var req queryRequest
	if werr := decodeJSON(r, &req); werr != nil {
		return req, werr
	}
	if werr := checkVector(req.Vector, s.opts.Dim); werr != nil {
		return req, werr
	}
	if req.Max < 0 {
		return req, badRequest("max must be >= 0, got %d", req.Max)
	}
	return req, nil
}

func (s *Server) decodeBatch(r io.Reader) (batchRequest, *wireError) {
	var req batchRequest
	if werr := decodeJSON(r, &req); werr != nil {
		return req, werr
	}
	if len(req.Vectors) == 0 {
		return req, badRequest("vectors is required and must be non-empty")
	}
	if len(req.Vectors) > s.opts.MaxBatch {
		return req, &wireError{
			status: http.StatusRequestEntityTooLarge,
			msg:    fmt.Sprintf("batch of %d vectors exceeds limit %d", len(req.Vectors), s.opts.MaxBatch),
		}
	}
	for i, vec := range req.Vectors {
		if werr := checkVector(vec, s.opts.Dim); werr != nil {
			return req, badRequest("vectors[%d]: %s", i, werr.msg)
		}
	}
	if req.Max < 0 {
		return req, badRequest("max must be >= 0, got %d", req.Max)
	}
	return req, nil
}

func (s *Server) decodeInsert(r io.Reader) (insertRequest, *wireError) {
	var req insertRequest
	if werr := decodeJSON(r, &req); werr != nil {
		return req, werr
	}
	if werr := checkVector(req.Vector, s.opts.Dim); werr != nil {
		return req, werr
	}
	if s.keyed && req.Key == nil {
		return req, badRequest("index is hash-routed: insert requires a key")
	}
	if !s.keyed && req.Key != nil {
		return req, badRequest("index is round-robin routed: insert must not carry a key")
	}
	return req, nil
}

func (s *Server) decodeDelete(r io.Reader) (deleteRequest, *wireError) {
	var req deleteRequest
	if werr := decodeJSON(r, &req); werr != nil {
		return req, werr
	}
	if (req.Key == nil) == (req.ID == nil) {
		return req, badRequest("delete requires exactly one of key or id")
	}
	if s.keyed && req.Key == nil {
		return req, badRequest("index is hash-routed: delete requires a key")
	}
	if !s.keyed && req.Key != nil {
		return req, badRequest("index is round-robin routed: delete by id, not key")
	}
	if req.ID != nil && *req.ID < 0 {
		return req, badRequest("id must be >= 0, got %d", *req.ID)
	}
	return req, nil
}

// writeJSON writes v as the response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeWireError reports a wireError to the client and bumps the
// bad-request counter.
func (s *Server) writeWireError(w http.ResponseWriter, werr *wireError) {
	mBadRequests.Inc(s.stripe)
	writeJSON(w, werr.status, errorResponse{Error: werr.msg})
}
