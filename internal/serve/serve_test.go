package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dsh/internal/core"
	"dsh/internal/index"
	"dsh/internal/sphere"
	"dsh/internal/workload"
	"dsh/internal/xrand"
)

const testDim = 12

func testFamily() core.Family[[]float64] {
	return core.Power[[]float64](sphere.SimHash(testDim), 4)
}

const testL = 8

// newKeyedIndex builds a hash-routed sharded index with n preloaded keyed
// points (key i holds pts[i]). Background compaction stays off so that
// index structure is a pure function of the mutation history: two
// snapshots at equal epochs are then bit-identical, which the
// differential tests rely on.
func newKeyedIndex(t testing.TB, n int) (*index.ShardedIndex[[]float64], [][]float64) {
	t.Helper()
	ix := index.NewSharded[[]float64](xrand.New(401), testFamily(), testL, nil, index.ShardOptions{
		Shards:  3,
		Routing: index.RouteHash,
		Dynamic: index.DynamicOptions{MemtableThreshold: 64, Policy: index.CompactLeveled},
	})
	pts := workload.SpherePoints(xrand.New(402), n, testDim)
	for i, p := range pts {
		ix.InsertKeyed(uint64(i), p)
	}
	return ix, pts
}

func postJSON(t testing.TB, client *http.Client, url string, body any) (int, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, out
}

func wireQuery(t testing.TB, client *http.Client, base string, vec []float64) queryResponse {
	t.Helper()
	code, body := postJSON(t, client, base+"/v1/query", queryRequest{Vector: vec})
	if code != http.StatusOK {
		t.Fatalf("query: status %d body %s", code, body)
	}
	var qr queryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatalf("unmarshal query response: %v", err)
	}
	return qr
}

// TestServeEndToEndDifferentialUnderChurn is the race-run harness: a real
// dshserve handler on a loopback listener takes concurrent keyed inserts,
// deletes, single queries and batch queries while a snapshotter churns
// epoch barriers — and every wire result whose reported epoch matches a
// freshly pinned snapshot must be bit-identical to the in-process
// QueryBatch over that snapshot. A final quiesced phase asserts the same
// for every probe vector and for the /v1/querybatch endpoint.
func TestServeEndToEndDifferentialUnderChurn(t *testing.T) {
	ix, _ := newKeyedIndex(t, 300)
	defer ix.Close()
	srv := New(ix, Options{
		Dim:       testDim,
		BatchSize: 8,
		Linger:    500 * time.Microsecond,
		Workers:   4,
		// Room for the 50-vector querybatch below the shed watermark.
		QueueDepth: 256,
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	probes := workload.SpherePoints(xrand.New(403), 50, testDim)
	var (
		wg      sync.WaitGroup
		stop    atomic.Bool
		matched atomic.Int64 // epoch-matched differential comparisons
	)

	// Writers: keyed upserts and deletes over a small key space through
	// the wire, so routing validation is exercised end to end.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := xrand.New(seed)
			vecs := workload.SpherePoints(xrand.New(seed+100), 64, testDim)
			for i := 0; !stop.Load(); i++ {
				key := rng.Uint64() % 100
				if i%5 == 4 {
					code, _ := postJSON(t, ts.Client(), ts.URL+"/v1/delete", deleteRequest{Key: &key})
					if code != http.StatusOK {
						t.Errorf("delete: status %d", code)
						return
					}
				} else {
					code, _ := postJSON(t, ts.Client(), ts.URL+"/v1/insert",
						insertRequest{Key: &key, Vector: vecs[i%len(vecs)]})
					if code != http.StatusOK {
						t.Errorf("insert: status %d", code)
						return
					}
				}
			}
		}(500 + uint64(w))
	}

	// Queriers: single wire queries, opportunistically differential. When
	// a freshly pinned snapshot has the same epoch the wire response was
	// served at, no mutation landed in between — the in-process result
	// must match exactly.
	for q := 0; q < 4; q++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := xrand.New(seed)
			for !stop.Load() {
				vec := probes[rng.Uint64()%uint64(len(probes))]
				qr := wireQuery(t, ts.Client(), ts.URL, vec)
				snap := ix.Snapshot()
				if snap.Epoch() == qr.Epoch {
					want, _, _ := snap.QueryBatch([][]float64{vec}, index.BatchOptions{})
					if !sameIDs(qr.IDs, want[0]) {
						t.Errorf("epoch %d: wire %v != in-process %v", qr.Epoch, qr.IDs, want[0])
						snap.Release()
						return
					}
					matched.Add(1)
				}
				snap.Release()
			}
		}(600 + uint64(q))
	}

	// Snapshotter: epoch barriers under churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			snap := ix.Snapshot()
			if snap.Len() < 0 {
				t.Error("negative snapshot length")
			}
			snap.Release()
			time.Sleep(100 * time.Microsecond)
		}
	}()

	time.Sleep(300 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	if t.Failed() {
		return
	}
	t.Logf("during-churn epoch-matched comparisons: %d", matched.Load())

	// Quiesced phase: no writers, so every wire answer must be at the
	// live epoch and bit-identical to the in-process result.
	snap := ix.Snapshot()
	defer snap.Release()
	want, _, _ := snap.QueryBatch(probes, index.BatchOptions{})
	for i, vec := range probes {
		qr := wireQuery(t, ts.Client(), ts.URL, vec)
		if qr.Epoch != snap.Epoch() {
			t.Fatalf("quiesced query at epoch %d, want %d", qr.Epoch, snap.Epoch())
		}
		if !sameIDs(qr.IDs, want[i]) {
			t.Fatalf("probe %d: wire %v != in-process %v", i, qr.IDs, want[i])
		}
	}

	// And the batch endpoint in one shot.
	code, body := postJSON(t, ts.Client(), ts.URL+"/v1/querybatch", batchRequest{Vectors: probes})
	if code != http.StatusOK {
		t.Fatalf("querybatch: status %d body %s", code, body)
	}
	var br batchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatalf("unmarshal batch response: %v", err)
	}
	if br.Epoch != snap.Epoch() {
		t.Fatalf("batch served at epoch %d, want %d", br.Epoch, snap.Epoch())
	}
	for i := range probes {
		if !sameIDs(br.Results[i], want[i]) {
			t.Fatalf("batch probe %d: wire %v != in-process %v", i, br.Results[i], want[i])
		}
	}
}

// sameIDs compares a wire id list ([] for empty) with an in-process one
// (possibly nil) element for element, order included.
func sameIDs(got, want []int) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

// TestServeRoundRobinMutations covers the unkeyed routing variant: plain
// inserts and deletes by id over the wire against a round-robin index.
func TestServeRoundRobinMutations(t *testing.T) {
	ix := index.NewSharded[[]float64](xrand.New(411), testFamily(), testL,
		workload.SpherePoints(xrand.New(412), 50, testDim),
		index.ShardOptions{Shards: 2, Dynamic: index.DynamicOptions{MemtableThreshold: 32}})
	defer ix.Close()
	srv := New(ix, Options{Dim: testDim})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	vec := workload.SpherePoints(xrand.New(413), 1, testDim)[0]
	code, body := postJSON(t, ts.Client(), ts.URL+"/v1/insert", insertRequest{Vector: vec})
	if code != http.StatusOK {
		t.Fatalf("insert: status %d body %s", code, body)
	}
	var ir insertResponse
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatalf("unmarshal insert response: %v", err)
	}
	if ir.ID != 50 {
		t.Fatalf("inserted id %d, want 50", ir.ID)
	}
	id := int64(ir.ID)
	code, body = postJSON(t, ts.Client(), ts.URL+"/v1/delete", deleteRequest{ID: &id})
	if code != http.StatusOK {
		t.Fatalf("delete: status %d body %s", code, body)
	}
	var dr deleteResponse
	if err := json.Unmarshal(body, &dr); err != nil {
		t.Fatalf("unmarshal delete response: %v", err)
	}
	if !dr.Deleted {
		t.Fatal("delete reported Deleted=false for a live id")
	}
	if ix.Deleted(int(id)) != true {
		t.Fatal("id not tombstoned in the index")
	}
}

// TestServeHealthz covers the liveness endpoint through both lifecycle
// states.
func TestServeHealthz(t *testing.T) {
	ix, _ := newKeyedIndex(t, 20)
	defer ix.Close()
	srv := New(ix, Options{Dim: testDim})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	resp, err = ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while drained: status %d, want 503", resp.StatusCode)
	}
}

// TestServeMetricsMounted asserts the obshttp plane is reachable on the
// serving mux and carries the dsh_serve_* series.
func TestServeMetricsMounted(t *testing.T) {
	ix, _ := newKeyedIndex(t, 20)
	defer ix.Close()
	srv := New(ix, Options{Dim: testDim})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	wireQuery(t, ts.Client(), ts.URL, workload.SpherePoints(xrand.New(414), 1, testDim)[0])
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	for _, series := range []string{"dsh_serve_requests_total", "dsh_serve_queries_total", "dsh_serve_batches_total"} {
		if !bytes.Contains(body, []byte(series)) {
			t.Fatalf("/metrics missing %s", series)
		}
	}
}

// doRaw drives the handler directly for tests that only care about
// status codes.
func doRaw(t testing.TB, h http.Handler, method, path string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, bytes.NewReader(body))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr
}
