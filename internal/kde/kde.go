// Package kde implements kernel density estimation through
// distance-sensitive hashing, the application the paper's conclusion
// singles out as future work ("it is also of interest to consider other
// applications of DSH in ... kernel density estimation").
//
// The observation is immediate from Definition 1.1: if a DSH family has
// CPF f, then for a fixed query q and dataset X,
//
//	E[ |{ i : h(x_i) = g(q) }| ] = sum_i f(dist(x_i, q)),
//
// so when f equals (a constant multiple of) the kernel, the average bucket
// size over L independent draws is an unbiased estimator of the kernel
// density sum KDE(q) = (1/n) sum_i kappa(dist(x_i, q)). Querying costs one
// hash evaluation plus a table lookup per repetition -- no scan over the
// data -- and the family can be *designed* to match a target kernel with
// the cpfit tools or lifted to l2 kernels with the rff package.
package kde

import (
	"fmt"
	"math"

	"dsh/internal/core"
	"dsh/internal/stats"
	"dsh/internal/xrand"
)

// Estimator is a hashing-based kernel density estimator over a fixed
// dataset. The kernel is the family's CPF (as a function of the family's
// distance/similarity convention).
type Estimator[P any] struct {
	pairs   []core.Pair[P]
	buckets []map[uint64]int32 // per repetition: hash value -> count
	n       int
}

// New builds the estimator with L independent draws over the points.
func New[P any](rng *xrand.Rand, fam core.Family[P], L int, points []P) *Estimator[P] {
	if L <= 0 {
		panic("kde: repetitions must be positive")
	}
	if len(points) == 0 {
		panic("kde: empty dataset")
	}
	e := &Estimator[P]{
		pairs:   make([]core.Pair[P], L),
		buckets: make([]map[uint64]int32, L),
		n:       len(points),
	}
	for i := 0; i < L; i++ {
		e.pairs[i] = fam.Sample(rng)
		counts := make(map[uint64]int32)
		for _, p := range points {
			counts[e.pairs[i].H.Hash(p)]++
		}
		e.buckets[i] = counts
	}
	return e
}

// L returns the number of repetitions.
func (e *Estimator[P]) L() int { return len(e.pairs) }

// N returns the dataset size.
func (e *Estimator[P]) N() int { return e.n }

// Result is one density query's output.
type Result struct {
	// Density is the estimate of (1/n) sum_i f(dist(x_i, q)).
	Density float64
	// StdErr is the Monte-Carlo standard error across repetitions.
	StdErr float64
}

// Query estimates the kernel density at q: the mean matched-bucket size
// across repetitions, normalized by n.
func (e *Estimator[P]) Query(q P) Result {
	perRep := make([]float64, len(e.pairs))
	for i, pair := range e.pairs {
		perRep[i] = float64(e.buckets[i][pair.G.Hash(q)]) / float64(e.n)
	}
	res := Result{Density: stats.Mean(perRep)}
	if len(perRep) > 1 {
		res.StdErr = stats.StdDev(perRep) / math.Sqrt(float64(len(perRep)))
	}
	return res
}

// Exact computes the exact kernel density sum (1/n) sum_i kernel(x_i, q)
// by brute force, as ground truth for tests and experiments.
func Exact[P any](points []P, q P, kernel func(x, q P) float64) float64 {
	if len(points) == 0 {
		panic("kde: empty dataset")
	}
	var sum float64
	for _, p := range points {
		sum += kernel(p, q)
	}
	return sum / float64(len(points))
}

// RelativeError returns |est-exact|/max(exact, floor), a convenience for
// reporting.
func RelativeError(est, exact, floor float64) float64 {
	den := math.Max(exact, floor)
	if den == 0 {
		return math.Abs(est)
	}
	return math.Abs(est-exact) / den
}

// String renders a result compactly.
func (r Result) String() string {
	return fmt.Sprintf("%.5f ± %.5f", r.Density, r.StdErr)
}
