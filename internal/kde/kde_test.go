package kde

import (
	"math"
	"testing"

	"dsh/internal/core"
	"dsh/internal/sphere"
	"dsh/internal/vec"
	"dsh/internal/workload"
	"dsh/internal/xrand"
)

func TestEstimatorMatchesExactSimHashKernel(t *testing.T) {
	// SimHash's CPF is the angular kernel 1 - arccos(alpha)/pi: the
	// estimator must match the exact kernel sum.
	rng := xrand.New(1)
	const d = 16
	pts := workload.SpherePoints(rng, 400, d)
	fam := sphere.SimHash(d)
	est := New(rng, fam, 800, pts)
	kernel := func(x, q []float64) float64 {
		return sphere.SimHashCPF(vec.Dot(x, q))
	}
	for i := 0; i < 5; i++ {
		q := vec.RandomUnit(rng, d)
		got := est.Query(q)
		want := Exact(pts, q, kernel)
		if math.Abs(got.Density-want) > 5*got.StdErr+0.01 {
			t.Errorf("query %d: estimate %v, exact %v", i, got, want)
		}
	}
}

func TestEstimatorPoweredKernel(t *testing.T) {
	// Power sharpens the kernel: CPF = simhashCPF^4.
	rng := xrand.New(2)
	const d = 16
	pts := workload.SpherePoints(rng, 300, d)
	fam := core.Power[[]float64](sphere.SimHash(d), 4)
	est := New(rng, fam, 1500, pts)
	kernel := func(x, q []float64) float64 {
		return math.Pow(sphere.SimHashCPF(vec.Dot(x, q)), 4)
	}
	q := vec.RandomUnit(rng, d)
	got := est.Query(q)
	want := Exact(pts, q, kernel)
	if math.Abs(got.Density-want) > 6*got.StdErr+0.01 {
		t.Errorf("estimate %v, exact %v", got, want)
	}
}

func TestEstimatorSeesPlantedCluster(t *testing.T) {
	// A query inside a dense cluster must report higher density than a
	// far-away query.
	rng := xrand.New(3)
	const d = 16
	corpus := workload.NewArticleCorpus(rng, d, 1, 200, 0.1)
	pts := corpus.Points
	fam := core.Power[[]float64](sphere.SimHash(d), 4)
	est := New(rng, fam, 800, pts)
	inCluster := est.Query(corpus.Centers[0])
	far := est.Query(vec.Neg(corpus.Centers[0]))
	if inCluster.Density < 4*far.Density {
		t.Errorf("cluster density %v not well above far density %v", inCluster, far)
	}
}

func TestQueryCostIndependentOfN(t *testing.T) {
	// Structural check: Query touches only L buckets, not the points.
	rng := xrand.New(4)
	const d = 8
	pts := workload.SpherePoints(rng, 50, d)
	est := New(rng, sphere.SimHash(d), 32, pts)
	if est.L() != 32 || est.N() != 50 {
		t.Fatalf("L=%d N=%d", est.L(), est.N())
	}
	res := est.Query(pts[0])
	if res.Density < 0 || res.Density > 1 {
		t.Fatalf("density %v out of [0,1]", res.Density)
	}
	if res.String() == "" {
		t.Fatal("empty render")
	}
}

func TestValidation(t *testing.T) {
	rng := xrand.New(5)
	for i, fn := range []func(){
		func() { New[[]float64](rng, sphere.SimHash(4), 0, [][]float64{{1, 0, 0, 0}}) },
		func() { New[[]float64](rng, sphere.SimHash(4), 4, nil) },
		func() { Exact(nil, []float64{1}, func(x, q []float64) float64 { return 0 }) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestRelativeError(t *testing.T) {
	if got := RelativeError(0.12, 0.1, 0.01); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("rel err = %v", got)
	}
	if got := RelativeError(0.5, 0, 0); got != 0.5 {
		t.Errorf("zero-exact rel err = %v", got)
	}
}

func BenchmarkKDEQuery(b *testing.B) {
	rng := xrand.New(1)
	pts := workload.SpherePoints(rng, 2000, 16)
	est := New(rng, core.Power[[]float64](sphere.SimHash(16), 4), 400, pts)
	q := vec.RandomUnit(rng, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est.Query(q)
	}
}
