package mat

import (
	"math"
	"testing"
	"testing/quick"

	"dsh/internal/xrand"
)

func TestBasics(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	if m.Rows() != 2 || m.Cols() != 3 || m.At(0, 0) != 1 || m.At(1, 2) != 5 {
		t.Fatal("basic accessors wrong")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone aliases data")
	}
}

func TestFromRowsAndPanics(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(1, 0) != 3 {
		t.Fatal("FromRows wrong")
	}
	for i, fn := range []func(){
		func() { NewDense(0, 1) },
		func() { FromRows(nil) },
		func() { FromRows([][]float64{{1}, {1, 2}}) },
		func() { m.At(2, 0) },
		func() { m.MulVec([]float64{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestMulVec(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	got := m.MulVec([]float64{1, -1})
	want := []float64{-1, -1, -1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MulVec = %v", got)
		}
	}
	gt := m.TransposeMulVec([]float64{1, 1, 1})
	if gt[0] != 9 || gt[1] != 12 {
		t.Fatalf("TransposeMulVec = %v", gt)
	}
}

func TestGram(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	g := m.Gram() // [[10, 14], [14, 20]]
	if g.At(0, 0) != 10 || g.At(0, 1) != 14 || g.At(1, 0) != 14 || g.At(1, 1) != 20 {
		t.Fatalf("Gram wrong: %+v", g)
	}
}

func TestSolveLUKnown(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	x, err := SolveLU(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("solution = %v", x)
	}
}

func TestSolveLUNeedsPivoting(t *testing.T) {
	// Zero on the diagonal forces a row swap.
	a := FromRows([][]float64{{0, 1}, {1, 0}})
	x, err := SolveLU(a, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 3 || x[1] != 2 {
		t.Fatalf("solution = %v", x)
	}
}

func TestSolveLUSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := SolveLU(a, []float64{1, 2}); err == nil {
		t.Fatal("singular matrix should error")
	}
	if _, err := SolveLU(FromRows([][]float64{{1, 2}}), []float64{1}); err == nil {
		t.Fatal("non-square should error")
	}
}

func TestSolveLURandomQuick(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 2 + rng.Intn(6)
		a := NewDense(n, n)
		xTrue := make([]float64, n)
		for i := 0; i < n; i++ {
			xTrue[i] = rng.Float64Range(-2, 2)
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.Float64Range(-1, 1))
			}
			a.Set(i, i, a.At(i, i)+float64(n)) // diagonally dominant
		}
		b := a.MulVec(xTrue)
		x, err := SolveLU(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// Fit y = 2x + 1 from noisy-free samples: exact recovery.
	a := FromRows([][]float64{{1, 0}, {1, 1}, {1, 2}, {1, 3}})
	b := []float64{1, 3, 5, 7}
	x, err := LeastSquares(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-10 || math.Abs(x[1]-2) > 1e-10 {
		t.Fatalf("coefficients = %v", x)
	}
}

func TestLeastSquaresRidgeRankDeficient(t *testing.T) {
	// Duplicate columns: exact normal equations are singular; the ridge
	// fallback must still produce a finite solution with small residual.
	a := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	b := []float64{2, 4, 6}
	if _, err := LeastSquares(a, b, 0); err == nil {
		t.Fatal("exact normal equations should be singular")
	}
	x, err := LeastSquares(a, b, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	pred := a.MulVec(x)
	for i := range b {
		if math.Abs(pred[i]-b[i]) > 1e-3 {
			t.Fatalf("ridge fit residual too large: %v", pred)
		}
	}
}

func TestNNLSRecoversNonNegativeSolution(t *testing.T) {
	rng := xrand.New(3)
	const m, n = 20, 5
	a := NewDense(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, rng.Float64())
		}
	}
	xTrue := []float64{0.5, 0, 1.25, 0, 2}
	b := a.MulVec(xTrue)
	x, resid, err := NNLS(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if resid > 1e-6 {
		t.Fatalf("residual = %v", resid)
	}
	for i := range x {
		if math.Abs(x[i]-xTrue[i]) > 1e-6 {
			t.Fatalf("x = %v, want %v", x, xTrue)
		}
	}
}

func TestNNLSClipsNegatives(t *testing.T) {
	// Unconstrained solution has a negative coefficient; NNLS must return
	// a non-negative vector with the best achievable residual.
	a := FromRows([][]float64{{1, 1}, {0, 1}})
	b := []float64{1, -1} // unconstrained x = (2, -1)
	x, _, err := NNLS(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if v < 0 {
			t.Fatalf("x[%d] = %v negative", i, v)
		}
	}
	// KKT check: gradient A^T(b - Ax) must be <= 0 on inactive vars.
	ax := a.MulVec(x)
	r := []float64{b[0] - ax[0], b[1] - ax[1]}
	grad := a.TransposeMulVec(r)
	for i, g := range grad {
		if x[i] == 0 && g > 1e-9 {
			t.Fatalf("KKT violated at %d: grad %v", i, g)
		}
		if x[i] > 0 && math.Abs(g) > 1e-9 {
			t.Fatalf("active gradient nonzero at %d: %v", i, g)
		}
	}
}

func TestNNLSQuickNonNegativeAndKKT(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		m := 3 + rng.Intn(10)
		n := 2 + rng.Intn(5)
		a := NewDense(m, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.Float64Range(-1, 1))
			}
		}
		b := make([]float64, m)
		for i := range b {
			b[i] = rng.Float64Range(-1, 1)
		}
		x, _, err := NNLS(a, b)
		if err != nil {
			return true // singular subproblems are acceptable exits
		}
		ax := a.MulVec(x)
		r := make([]float64, m)
		for i := range r {
			r[i] = b[i] - ax[i]
		}
		grad := a.TransposeMulVec(r)
		for i := range x {
			if x[i] < 0 {
				return false
			}
			if x[i] == 0 && grad[i] > 1e-6 {
				return false
			}
			if x[i] > 0 && math.Abs(grad[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSubSimplexLSRespectsConstraints(t *testing.T) {
	rng := xrand.New(9)
	const m, n = 25, 6
	a := NewDense(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, rng.Float64())
		}
	}
	// Target requiring total mass > 1: solution must saturate at sum = 1.
	want := []float64{1, 1, 0.5, 0, 0, 0}
	b := a.MulVec(want)
	x, _, err := SubSimplexLS(a, b)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range x {
		if v < -1e-12 {
			t.Fatalf("negative weight %v", v)
		}
		sum += v
	}
	if sum > 1+1e-9 {
		t.Fatalf("weights sum to %v > 1", sum)
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("constraint should be active: sum = %v", sum)
	}
}

func TestSubSimplexLSExactInteriorSolution(t *testing.T) {
	rng := xrand.New(10)
	const m, n = 30, 4
	a := NewDense(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, rng.Float64Range(-1, 1))
		}
	}
	want := []float64{0.2, 0, 0.3, 0.1} // interior of the sub-simplex
	b := a.MulVec(want)
	x, resid, err := SubSimplexLS(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if resid > 1e-6 {
		t.Fatalf("residual %v", resid)
	}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-5 {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestProjectSubSimplex(t *testing.T) {
	cases := []struct{ in, want []float64 }{
		{[]float64{0.2, 0.3}, []float64{0.2, 0.3}},    // already feasible
		{[]float64{-0.5, 0.5}, []float64{0, 0.5}},     // clip negative
		{[]float64{1, 1}, []float64{0.5, 0.5}},        // project to simplex
		{[]float64{2, 0}, []float64{1, 0}},            // corner
		{[]float64{1.5, 0.5, -1}, []float64{1, 0, 0}}, // mixed
	}
	for _, c := range cases {
		x := append([]float64(nil), c.in...)
		projectSubSimplex(x)
		for i := range c.want {
			if math.Abs(x[i]-c.want[i]) > 1e-12 {
				t.Errorf("project(%v) = %v, want %v", c.in, x, c.want)
				break
			}
		}
	}
}
