// Package mat provides the small dense linear-algebra kernel used by the
// CPF-fitting tools (internal/cpfit): column-major dense matrices,
// LU-factorization solves with partial pivoting, and least-squares via
// normal equations with Tikhonov fallback. It is deliberately minimal --
// just what fitting mixture weights over a few dozen basis CPFs needs.
package mat

import (
	"fmt"
	"math"
)

// Dense is a row-major dense matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense returns a zero rows x cols matrix. It panics for non-positive
// dimensions.
func NewDense(rows, cols int) *Dense {
	if rows <= 0 || cols <= 0 {
		panic("mat: dimensions must be positive")
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices (which must be equal length).
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("mat: empty matrix")
	}
	m := NewDense(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic("mat: ragged rows")
		}
		copy(m.data[i*m.cols:], r)
	}
	return m
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of %dx%d", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// MulVec returns m * x.
func (m *Dense) MulVec(x []float64) []float64 {
	if len(x) != m.cols {
		panic("mat: dimension mismatch")
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// TransposeMulVec returns m^T * x.
func (m *Dense) TransposeMulVec(x []float64) []float64 {
	if len(x) != m.rows {
		panic("mat: dimension mismatch")
	}
	out := make([]float64, m.cols)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			out[j] += v * x[i]
		}
	}
	return out
}

// Gram returns m^T * m (the normal-equations matrix).
func (m *Dense) Gram() *Dense {
	g := NewDense(m.cols, m.cols)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for a := 0; a < m.cols; a++ {
			if row[a] == 0 {
				continue
			}
			for b := a; b < m.cols; b++ {
				g.data[a*m.cols+b] += row[a] * row[b]
			}
		}
	}
	for a := 0; a < m.cols; a++ {
		for b := 0; b < a; b++ {
			g.data[a*m.cols+b] = g.data[b*m.cols+a]
		}
	}
	return g
}

// SolveLU solves A x = b for square A by LU factorization with partial
// pivoting, returning an error for singular (or numerically singular)
// systems. A and b are not modified.
func SolveLU(a *Dense, b []float64) ([]float64, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("mat: SolveLU needs a square matrix, got %dx%d", a.rows, a.cols)
	}
	n := a.rows
	if len(b) != n {
		return nil, fmt.Errorf("mat: rhs length %d != %d", len(b), n)
	}
	lu := a.Clone()
	x := append([]float64(nil), b...)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(lu.data[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(lu.data[r*n+col]); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-13 {
			return nil, fmt.Errorf("mat: singular matrix at column %d", col)
		}
		if pivot != col {
			for j := 0; j < n; j++ {
				lu.data[col*n+j], lu.data[pivot*n+j] = lu.data[pivot*n+j], lu.data[col*n+j]
			}
			x[col], x[pivot] = x[pivot], x[col]
		}
		inv := 1 / lu.data[col*n+col]
		for r := col + 1; r < n; r++ {
			factor := lu.data[r*n+col] * inv
			if factor == 0 {
				continue
			}
			lu.data[r*n+col] = factor
			for j := col + 1; j < n; j++ {
				lu.data[r*n+j] -= factor * lu.data[col*n+j]
			}
			x[r] -= factor * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= lu.data[i*n+j] * x[j]
		}
		x[i] = s / lu.data[i*n+i]
	}
	return x, nil
}

// LeastSquares solves min ||A x - b||_2 via the normal equations
// (A^T A + ridge I) x = A^T b. A tiny ridge stabilizes rank-deficient
// designs; pass 0 for exact normal equations.
func LeastSquares(a *Dense, b []float64, ridge float64) ([]float64, error) {
	if len(b) != a.rows {
		return nil, fmt.Errorf("mat: rhs length %d != %d", len(b), a.rows)
	}
	if ridge < 0 {
		return nil, fmt.Errorf("mat: negative ridge")
	}
	g := a.Gram()
	for i := 0; i < g.rows; i++ {
		g.data[i*g.cols+i] += ridge
	}
	return SolveLU(g, a.TransposeMulVec(b))
}

// SubSimplexLS solves min ||A x - b||_2 subject to x >= 0 and
// sum(x) <= 1 (the feasible weights of a Lemma 1.4(b) mixture) by
// projected gradient descent with the Duchi et al. simplex projection.
// It returns the solution and its residual norm.
func SubSimplexLS(a *Dense, b []float64) ([]float64, float64, error) {
	if len(b) != a.rows {
		return nil, 0, fmt.Errorf("mat: rhs length %d != %d", len(b), a.rows)
	}
	n := a.cols
	// Lipschitz constant of the gradient: lambda_max(A^T A) <= trace.
	g := a.Gram()
	var trace float64
	for i := 0; i < n; i++ {
		trace += g.At(i, i)
	}
	if trace == 0 {
		return make([]float64, n), normOf(b), nil
	}
	step := 1 / trace
	x := make([]float64, n)
	grad := make([]float64, n)
	atb := a.TransposeMulVec(b)
	const iters = 4000
	for it := 0; it < iters; it++ {
		// grad = A^T A x - A^T b.
		gx := g.MulVec(x)
		maxMove := 0.0
		for j := 0; j < n; j++ {
			grad[j] = gx[j] - atb[j]
		}
		for j := 0; j < n; j++ {
			x[j] -= step * grad[j]
		}
		projectSubSimplex(x)
		for j := 0; j < n; j++ {
			if m := math.Abs(step * grad[j]); m > maxMove {
				maxMove = m
			}
		}
		if maxMove < 1e-14 {
			break
		}
	}
	ax := a.MulVec(x)
	var sq float64
	for i := range b {
		d := ax[i] - b[i]
		sq += d * d
	}
	return x, math.Sqrt(sq), nil
}

func normOf(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// projectSubSimplex projects x in place onto {x >= 0, sum(x) <= 1}:
// clip to the non-negative orthant; if the sum still exceeds 1, project
// onto the probability simplex by the sorting algorithm of Duchi et al.
func projectSubSimplex(x []float64) {
	var sum float64
	for i, v := range x {
		if v < 0 {
			x[i] = 0
		} else {
			sum += v
		}
	}
	if sum <= 1 {
		return
	}
	// Sort a copy descending.
	sorted := append([]float64(nil), x...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] > sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	var cum, theta float64
	k := 0
	for i, v := range sorted {
		cum += v
		t := (cum - 1) / float64(i+1)
		if v-t > 0 {
			theta = t
			k = i + 1
		}
	}
	_ = k
	for i, v := range x {
		if v > theta {
			x[i] = v - theta
		} else {
			x[i] = 0
		}
	}
}

// NNLS solves min ||A x - b||_2 subject to x >= 0 by the Lawson-Hanson
// active-set algorithm. It returns the solution and its residual norm.
func NNLS(a *Dense, b []float64) ([]float64, float64, error) {
	if len(b) != a.rows {
		return nil, 0, fmt.Errorf("mat: rhs length %d != %d", len(b), a.rows)
	}
	n := a.cols
	x := make([]float64, n)
	passive := make([]bool, n)
	const maxOuter = 200
	const tol = 1e-12

	residual := func() []float64 {
		ax := a.MulVec(x)
		r := make([]float64, len(b))
		for i := range b {
			r[i] = b[i] - ax[i]
		}
		return r
	}

	for outer := 0; outer < maxOuter; outer++ {
		// Gradient of 1/2||Ax-b||^2 is -A^T r; candidates to enter are
		// inactive variables with positive A^T r.
		w := a.TransposeMulVec(residual())
		bestIdx, bestW := -1, tol
		for j := 0; j < n; j++ {
			if !passive[j] && w[j] > bestW {
				bestW, bestIdx = w[j], j
			}
		}
		if bestIdx < 0 {
			break // KKT satisfied
		}
		passive[bestIdx] = true

		// Inner loop: solve the unconstrained problem on the passive set;
		// clip variables that go non-positive.
		for inner := 0; inner < maxOuter; inner++ {
			idx := make([]int, 0, n)
			for j := 0; j < n; j++ {
				if passive[j] {
					idx = append(idx, j)
				}
			}
			if len(idx) == 0 {
				break
			}
			sub := NewDense(a.rows, len(idx))
			for i := 0; i < a.rows; i++ {
				for k, j := range idx {
					sub.Set(i, k, a.At(i, j))
				}
			}
			z, err := LeastSquares(sub, b, 1e-12)
			if err != nil {
				return nil, 0, fmt.Errorf("mat: NNLS subproblem: %w", err)
			}
			minZ := math.Inf(1)
			for _, v := range z {
				minZ = math.Min(minZ, v)
			}
			if minZ > tol {
				for k, j := range idx {
					x[j] = z[k]
				}
				break
			}
			// Step toward z until the first passive variable hits zero.
			alpha := math.Inf(1)
			for k, j := range idx {
				if z[k] <= tol {
					if denom := x[j] - z[k]; denom > 0 {
						alpha = math.Min(alpha, x[j]/denom)
					}
				}
			}
			if math.IsInf(alpha, 1) {
				alpha = 0
			}
			for k, j := range idx {
				x[j] += alpha * (z[k] - x[j])
				if x[j] <= tol {
					x[j] = 0
					passive[j] = false
				}
			}
		}
	}
	r := residual()
	var norm float64
	for _, v := range r {
		norm += v * v
	}
	return x, math.Sqrt(norm), nil
}
