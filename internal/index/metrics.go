package index

import (
	"time"

	"dsh/internal/obs"
)

// Process-wide serving-core metrics, registered once in the obs default
// registry. All counters and histograms are striped: each DynamicIndex
// (therefore each shard) records write-path metrics on its own stripe,
// and each pooled sourceQuerier records query-path metrics on its own —
// queriers are per-goroutine, so concurrent batch workers never contend
// on a counter cache line. Recording never allocates; the instrumented
// query and insert benchmarks still report 0 allocs/op.
var (
	// Query path. One "query" is one veneer operation through the
	// candidateSource core: a distinct collection, an annulus query, a
	// range report, or a raw candidate stream — over any backend (static,
	// dynamic, sharded, snapshot).
	mQueries = obs.NewCounter("dsh_queries_total",
		"queries served through the candidateSource core (all veneers, all backends)")
	mQueryProbes = obs.NewCounter("dsh_query_probes_total",
		"per-layer bucket lookups performed by queries")
	mQueryCandidates = obs.NewCounter("dsh_query_candidates_total",
		"live candidate ids scanned by queries (duplicates across repetitions included)")
	mQueryDistinct = obs.NewCounter("dsh_query_distinct_total",
		"distinct candidate ids collected by queries")
	mQueryHashEvals = obs.NewCounter("dsh_query_hash_evals_total",
		"query-side hash evaluations g_i(q) (one per executed repetition)")
	mQueryLatency = obs.NewHistogram("dsh_query_latency_ns",
		"per-query wall time in nanoseconds")
	mBatches = obs.NewCounter("dsh_batches_total",
		"query batches executed by the concurrent batch engine")
	mBatchLatency = obs.NewHistogram("dsh_batch_latency_ns",
		"whole-batch wall time in nanoseconds")

	// Write path.
	mInserts = obs.NewCounter("dsh_inserts_total",
		"plain Insert operations")
	mUpserts = obs.NewCounter("dsh_upserts_total",
		"keyed upserts (InsertKeyed)")
	mDeletes = obs.NewCounter("dsh_deletes_total",
		"effective Delete operations (the id was live)")
	mDeletesKeyed = obs.NewCounter("dsh_deletes_keyed_total",
		"effective DeleteKeyed operations (the key was mapped)")
	mWriteHashEvals = obs.NewCounter("dsh_write_hash_evals_total",
		"data-side hash evaluations h_i(x) (L per insert/upsert)")
	mFreezesInline = obs.NewCounter("dsh_freezes_inline_total",
		"memtable freezes built inline under the structural lock")
	mFreezesAsync = obs.NewCounter("dsh_freezes_async_total",
		"memtable detaches onto the async freeze FIFO (AsyncFreeze inserts, snapshots, Flush)")
	mFreezeInstalls = obs.NewCounter("dsh_freeze_installs_total",
		"detached memtables whose flat tables were built off-lock and installed as segments")
	mFrozenRows = obs.NewCounter("dsh_frozen_rows_total",
		"rows frozen from memtables into segments")
	mFreezeBuild = obs.NewHistogram("dsh_freeze_build_ns",
		"flat-table build time of one memtable freeze in nanoseconds")

	// Compaction and GC.
	mCompactAll = obs.NewCounter("dsh_compactions_all_total",
		"monolithic merges (explicit Compact and the CompactAll policy)")
	mCompactTiered = obs.NewCounter("dsh_compactions_tiered_total",
		"size-tiered merges of the newest similar-sized run")
	mCompactUpper = obs.NewCounter("dsh_compactions_upper_total",
		"leveled upper-tier folds (id-preserving)")
	mCompactGC = obs.NewCounter("dsh_compactions_gc_total",
		"leveled bottom-level GC merges (tombstones dropped, ids renumbered)")
	mCompactRows = obs.NewCounter("dsh_compaction_rows_total",
		"rows written out by compaction merges")
	mCompactDur = obs.NewHistogram("dsh_compaction_ns",
		"wall time of one compaction merge in nanoseconds")
	mGCCollected = obs.NewCounter("dsh_gc_collected_rows_total",
		"tombstoned rows permanently dropped by bottom-level GC merges")
	mGCReclaimed = obs.NewCounter("dsh_gc_reclaimed_bitmap_bytes_total",
		"tombstone-bitmap bytes released by bottom-level GC merges")

	// Snapshot path.
	mSnapshots = obs.NewCounter("dsh_snapshots_total",
		"per-index snapshot pins (a sharded snapshot pins every shard)")
	mSnapshotsOpen = obs.NewGauge("dsh_snapshots_open",
		"snapshots currently pinned (taken minus released)")
	mSnapshotEpoch = obs.NewGauge("dsh_snapshot_last_epoch",
		"mutation epoch captured by the most recent snapshot pin (compare with the live Epoch for staleness age)")
	mSnapOptimistic = obs.NewCounter("dsh_snapshot_optimistic_total",
		"sharded snapshots that committed on the optimistic mark/pin/verify path")
	mSnapRetries = obs.NewCounter("dsh_snapshot_retries_total",
		"optimistic sharded-snapshot attempts invalidated by a concurrent mutation")
	mSnapFallback = obs.NewCounter("dsh_snapshot_fallback_total",
		"sharded snapshots that fell back to the exclusive write barrier")

	// Recovery (cold start from a durable directory).
	mRecoveries = obs.NewCounter("dsh_recoveries_total",
		"durable recoveries completed (one per index or shard opened)")
	mRecoverManifest = obs.NewHistogram("dsh_recover_manifest_ns",
		"recovery phase: manifest load time in nanoseconds")
	mRecoverSegments = obs.NewHistogram("dsh_recover_segments_ns",
		"recovery phase: segment file read+decode time in nanoseconds")
	mRecoverReplay = obs.NewHistogram("dsh_recover_replay_ns",
		"recovery phase: WAL replay time in nanoseconds")
)

// recordQuery flushes one query's counters onto the querier's stripe:
// a handful of atomic adds plus one histogram observation. hashEvals is
// the number of repetitions the query actually executed (each evaluates
// g_i(q) once).
func (sq *sourceQuerier[P]) recordQuery(start time.Time, hashEvals int, stats QueryStats) {
	st := sq.stripe
	mQueries.Inc(st)
	mQueryHashEvals.Add(st, uint64(hashEvals))
	mQueryProbes.Add(st, uint64(stats.Probes))
	mQueryCandidates.Add(st, uint64(stats.Candidates))
	mQueryDistinct.Add(st, uint64(stats.Distinct))
	mQueryLatency.Observe(st, uint64(time.Since(start)))
}
