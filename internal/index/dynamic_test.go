package index

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"dsh/internal/core"
	"dsh/internal/sphere"
	"dsh/internal/workload"
	"dsh/internal/xrand"
)

// dynamicFamily is the shared test family: SimHash^4 collides often enough
// that candidate sets are non-trivial at test sizes.
func dynamicFamily() core.Family[[]float64] {
	return core.Power[[]float64](sphere.SimHash(testDim), 4)
}

// churnDynamic applies a deterministic random interleaving of inserts,
// deletes, flushes and compactions to dx, drawing fresh points from rng.
// It returns the surviving points in global-id order together with the
// global id of each survivor.
func churnDynamic(t *testing.T, rng *xrand.Rand, dx *DynamicIndex[[]float64], ops int) (survivors [][]float64, ids []int) {
	t.Helper()
	var inserted []int
	for i := 0; i < dx.Len(); i++ {
		inserted = append(inserted, i)
	}
	for op := 0; op < ops; op++ {
		switch r := rng.Float64(); {
		case r < 0.55:
			id := dx.Insert(workload.SpherePoints(rng, 1, testDim)[0])
			inserted = append(inserted, id)
		case r < 0.85:
			if len(inserted) == 0 {
				continue
			}
			victim := inserted[rng.Intn(len(inserted))]
			was := dx.Deleted(victim)
			got := dx.Delete(victim)
			if got == was {
				t.Fatalf("Delete(%d) = %v with Deleted()=%v", victim, got, was)
			}
		case r < 0.95:
			dx.Flush()
		default:
			dx.Compact()
		}
	}
	for _, id := range inserted {
		if !dx.Deleted(id) {
			survivors = append(survivors, dx.Point(id))
			ids = append(ids, id)
		}
	}
	return survivors, ids
}

// TestDynamicMatchesStaticAfterChurn is the differential property test of
// the subsystem: after an arbitrary interleaving of inserts, deletes,
// flushes and compactions, a DynamicIndex must return exactly the
// candidates of a static Index rebuilt over the surviving points with the
// same rng stream — in the same order, because segments hold disjoint
// ascending global-id ranges, so the per-repetition candidate stream walks
// survivors in global-id order just like the static tables do.
func TestDynamicMatchesStaticAfterChurn(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		fam := dynamicFamily()
		const L = 18
		initial := workload.SpherePoints(xrand.New(seed*100), 120, testDim)

		dx := NewDynamic(xrand.New(seed), fam, L, initial, DynamicOptions{MemtableThreshold: 40})
		survivors, ids := churnDynamic(t, xrand.New(seed*777), dx, 500)

		if dx.Len() != len(survivors) {
			t.Fatalf("seed %d: Len() = %d, want %d survivors", seed, dx.Len(), len(survivors))
		}

		// Static rebuild over the survivors with the same rng stream: the
		// L repetition draws are identical, so candidate sets must match
		// under the global-id -> position mapping.
		static := New(xrand.New(seed), fam, L, survivors)
		toStatic := make(map[int]int, len(ids))
		for pos, id := range ids {
			toStatic[id] = pos
		}

		check := func(label string) {
			queries := workload.SpherePoints(xrand.New(seed*999), 24, testDim)
			queries = append(queries, survivors[:min(4, len(survivors))]...)
			for qi, q := range queries {
				want := static.CollectDistinct(q, 0)
				gotGlobal := dx.CollectDistinct(q, 0)
				got := make([]int, len(gotGlobal))
				for i, id := range gotGlobal {
					pos, ok := toStatic[id]
					if !ok {
						t.Fatalf("seed %d %s query %d: candidate %d is not a survivor", seed, label, qi, id)
					}
					got[i] = pos
				}
				if len(got) == 0 && len(want) == 0 {
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("seed %d %s query %d: dynamic candidates %v != static %v", seed, label, qi, got, want)
				}
			}
		}

		check("pre-compact")
		dx.Compact()
		if got := dx.Segments(); got > 1 {
			t.Fatalf("seed %d: %d segments after Compact", seed, got)
		}
		if got := dx.MemtableLen(); got != 0 {
			t.Fatalf("seed %d: %d memtable points after Compact", seed, got)
		}
		check("post-compact")
	}
}

func TestDynamicInsertDeleteSemantics(t *testing.T) {
	rng := xrand.New(3)
	pts := workload.SpherePoints(rng, 10, testDim)
	dx := NewDynamic(xrand.New(4), dynamicFamily(), 8, pts[:5], DynamicOptions{})
	for i, p := range pts[5:] {
		if id := dx.Insert(p); id != 5+i {
			t.Fatalf("Insert returned id %d, want %d", id, 5+i)
		}
	}
	if dx.Len() != 10 {
		t.Fatalf("Len = %d", dx.Len())
	}
	if !dx.Delete(3) || !dx.Delete(7) {
		t.Fatal("Delete of live ids returned false")
	}
	if dx.Delete(3) {
		t.Fatal("double Delete returned true")
	}
	if dx.Delete(-1) || dx.Delete(10) {
		t.Fatal("out-of-range Delete returned true")
	}
	if dx.Len() != 8 || !dx.Deleted(3) || dx.Deleted(4) {
		t.Fatalf("post-delete state wrong: Len=%d", dx.Len())
	}
	// Deleted points never appear as candidates, before or after Compact.
	assertGone := func() {
		t.Helper()
		for _, q := range pts {
			for _, id := range dx.CollectDistinct(q, 0) {
				if id == 3 || id == 7 {
					t.Fatal("deleted id appeared as candidate")
				}
			}
		}
	}
	assertGone()
	dx.Compact()
	assertGone()
	// A point is still retrievable after deletion of *other* points.
	found := false
	for _, id := range dx.CollectDistinct(pts[4], 0) {
		if id == 4 {
			found = true
		}
	}
	if !found {
		t.Fatal("live point 4 not retrievable after compaction")
	}
}

func TestDynamicQueryBatchMatchesSequential(t *testing.T) {
	rng := xrand.New(5)
	pts := workload.SpherePoints(rng, 300, testDim)
	dx := NewDynamic(xrand.New(6), dynamicFamily(), 16, pts[:200], DynamicOptions{MemtableThreshold: 64})
	for _, p := range pts[200:] {
		dx.Insert(p)
	}
	for id := 0; id < 300; id += 7 {
		dx.Delete(id)
	}
	queries := workload.SpherePoints(rng, 48, testDim)
	for _, max := range []int{0, 5} {
		got, per, agg := dx.QueryBatch(queries, BatchOptions{Workers: 8, MaxCandidates: max})
		if agg.Queries != len(queries) {
			t.Fatalf("agg.Queries = %d", agg.Queries)
		}
		for i, q := range queries {
			want := dx.CollectDistinct(q, max)
			if len(want) == 0 {
				want = nil
			}
			if !reflect.DeepEqual(got[i], want) {
				t.Fatalf("max=%d query %d: batch %v != sequential %v", max, i, got[i], want)
			}
			if per[i].Distinct != len(want) {
				t.Fatalf("max=%d query %d: Distinct=%d want %d", max, i, per[i].Distinct, len(want))
			}
		}
	}
}

// TestDynamicConcurrentQueryCompact drives queriers concurrently with
// inserts, deletes and explicit + background compactions. Run under -race
// (CI does) this is the race-freedom check of the subsystem; the
// assertions here are the invariants that hold under any interleaving:
// ids are in range and each result is duplicate-free.
func TestDynamicConcurrentQueryCompact(t *testing.T) {
	rng := xrand.New(7)
	pts := workload.SpherePoints(rng, 400, testDim)
	dx := NewDynamic(xrand.New(8), dynamicFamily(), 12, pts[:100],
		DynamicOptions{MemtableThreshold: 32, MaxSegments: 2, BackgroundCompaction: true})
	defer dx.Close()

	queries := workload.SpherePoints(rng, 16, testDim)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			qr := dx.NewQuerier()
			seen := map[int]bool{}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				res, _ := qr.CollectDistinct(queries[(i+w)%len(queries)], 0)
				for k := range seen {
					delete(seen, k)
				}
				for _, id := range res {
					if id < 0 {
						t.Errorf("negative candidate id %d", id)
						return
					}
					if seen[id] {
						t.Errorf("duplicate candidate id %d in one result", id)
						return
					}
					seen[id] = true
				}
			}
		}(w)
	}

	mrng := xrand.New(9)
	for op := 0; op < 2000; op++ {
		switch r := mrng.Float64(); {
		case r < 0.6:
			dx.Insert(pts[100+op%300])
		case r < 0.9:
			dx.Delete(mrng.Intn(100 + op%300))
		default:
			dx.Compact()
		}
	}
	dx.Compact()
	close(stop)
	wg.Wait()
}

// TestDynamicSteadyStateZeroAlloc is the acceptance criterion: after a
// churn phase and a Compact, CollectDistinct through a reused
// DynamicQuerier performs no heap allocations.
func TestDynamicSteadyStateZeroAlloc(t *testing.T) {
	rng := xrand.New(11)
	pts := workload.SpherePoints(rng, 2000, testDim)
	dx := NewDynamic(xrand.New(12), dynamicFamily(), 24, pts[:1500], DynamicOptions{MemtableThreshold: 200})
	for _, p := range pts[1500:] {
		dx.Insert(p)
	}
	for id := 0; id < 2000; id += 5 {
		dx.Delete(id)
	}
	dx.Compact()
	q := workload.SpherePoints(rng, 1, testDim)[0]
	qr := dx.NewQuerier()
	qr.CollectDistinct(q, 0) // warm the visited/out buffers
	allocs := testing.AllocsPerRun(100, func() {
		qr.CollectDistinct(q, 0)
	})
	if allocs != 0 {
		t.Errorf("steady-state CollectDistinct allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestDynamicBackgroundCompaction(t *testing.T) {
	rng := xrand.New(13)
	dx := NewDynamic[[]float64](xrand.New(14), dynamicFamily(), 8, nil,
		DynamicOptions{MemtableThreshold: 16, MaxSegments: 3, BackgroundCompaction: true})
	defer dx.Close()
	for i := 0; i < 2000; i++ {
		dx.Insert(workload.SpherePoints(rng, 1, testDim)[0])
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if dx.Segments() <= 4 { // merge target plus at most one fresh freeze
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background compactor left %d segments", dx.Segments())
		}
		time.Sleep(5 * time.Millisecond)
	}
	dx.Close() // idempotent with the deferred Close
	if dx.Len() != 2000 {
		t.Fatalf("Len = %d after background compaction", dx.Len())
	}
}

func TestDynamicEmptyAndMemtableOnly(t *testing.T) {
	dx := NewDynamic[[]float64](xrand.New(15), dynamicFamily(), 6, nil, DynamicOptions{})
	q := workload.SpherePoints(xrand.New(16), 1, testDim)[0]
	if got := dx.CollectDistinct(q, 0); len(got) != 0 {
		t.Fatalf("empty index returned candidates %v", got)
	}
	dx.Compact() // no-op on empty
	id := dx.Insert(q)
	found := false
	for _, c := range dx.CollectDistinct(q, 0) {
		if c == id {
			found = true
		}
	}
	if !found {
		t.Fatal("memtable-resident point not retrievable")
	}
	dx.Delete(id)
	dx.Compact() // drops the only point
	if dx.Segments() != 0 || dx.Len() != 0 {
		t.Fatalf("expected empty index after deleting sole point: segments=%d len=%d", dx.Segments(), dx.Len())
	}
}
