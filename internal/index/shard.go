package index

import (
	"sync"
	"sync/atomic"

	"dsh/internal/core"
	"dsh/internal/obs"
	"dsh/internal/xrand"
)

// Routing selects how a ShardedIndex assigns inserts to shards; see the
// constants.
type Routing int

const (
	// RouteRoundRobin routes plain Inserts to shards in rotation via an
	// atomic cursor: the id mapping stays purely arithmetic, shard sizes
	// stay balanced within one point, and global ids stay dense under
	// single-writer ingest. InsertKeyed panics under this routing — a key
	// must always resolve to the same shard, which rotation cannot
	// guarantee.
	RouteRoundRobin Routing = iota
	// RouteHash routes by external key: InsertKeyed (and DeleteKeyed,
	// LookupKey) sends key k to shard mix(k) mod K, where mix is a
	// splitmix64-style finalizer, so every version of a key lives on one
	// shard and re-inserting a key is an atomic upsert under that single
	// shard's lock. Plain Insert panics under this routing — unkeyed
	// points have no stable home shard.
	RouteHash
)

// ShardOptions configures a ShardedIndex.
type ShardOptions struct {
	// Shards is the number of independent DynamicIndex shards. It must be
	// positive; NewSharded panics otherwise. More shards means more
	// mutation concurrency (inserts and deletes on different shards never
	// contend on a lock) at the cost of one extra probe per repetition
	// per shard on the query path.
	Shards int
	// Routing selects the insert-routing discipline: RouteRoundRobin (the
	// zero value) serves plain Insert, RouteHash serves InsertKeyed. The
	// two are mutually exclusive per index — see the Routing constants.
	Routing Routing
	// Dynamic is applied to every shard: each gets its own memtable
	// threshold, freeze mode, segment budget, compaction policy and — when
	// BackgroundCompaction is set — its own background compactor
	// goroutine, so compactions of different shards run concurrently.
	Dynamic DynamicOptions
}

// ShardedIndex is the multi-writer serving core: K independent
// DynamicIndex shards, each with its own memtable, segment list, freezer
// and compaction policy — and, crucially, its own locks — so mutations on
// different shards never contend. Points are partitioned by global id:
// id g lives on shard g mod K at shard-local position g div K. Under
// RouteRoundRobin (the default) plain Inserts rotate across shards, which
// keeps that mapping purely arithmetic (no routing table) and keeps shard
// sizes balanced within one point; under RouteHash, InsertKeyed routes by
// a hash of the external key, so every version of a key lives on one
// shard and upserts are atomic under that shard's lock.
//
// All shards share the same L repetition draws (h_i, g_i), sampled once
// by NewSharded, so a query hashes once per repetition and probes every
// shard with that key: the collision-probability semantics are exactly
// those of a single DynamicIndex over the same live points, and every
// order-independent query result coincides — full-scan candidate sets,
// the Candidates/Distinct counters of CollectDistinct, and range
// reporting's ids and counters. Candidate order is shard-major instead
// of global-id-major, so order-sensitive outcomes (the first max ids of
// a truncated collection, the annulus scan's hit and its early-
// termination counters) may pick different representatives, and Probes
// grows with the layer count across all shards.
//
// ShardedIndex implements the candidateSource contract, so the
// AnnulusIndex and RangeReporter veneers (NewAnnulusOver,
// NewRangeReporterOver), CollectDistinct, Candidates and the QueryBatch
// engine run over it unchanged.
//
// Concurrency contract: all methods are safe for concurrent use. A query
// holds every shard's structural read-lock (acquired in shard order) for
// its read window, so each query sees one consistent state per shard;
// mutators touch exactly one shard. Snapshot pins a point-in-time view of
// every shard for lock-free scans. After Close, Insert and Snapshot panic;
// queries and deletes on the existing data remain valid.
type ShardedIndex[P any] struct {
	pairs   []core.Pair[P]
	negG    []negQueryHasher
	shards  []*DynamicIndex[P]
	routing Routing
	// cursor routes inserts round-robin; it continues from the initial
	// point count so global ids stay dense under single-writer ingest.
	cursor atomic.Uint64
	closed atomic.Bool

	// barrier is the epoch barrier behind the single-instant Snapshot:
	// every shard mutation (and every id-renumbering GC swap) holds it
	// shared via DynamicIndex.barrier, and Snapshot's fallback path holds
	// it exclusively to quiesce all shards at once. The optimistic
	// snapshot path never takes it, so mutators pay only an uncontended
	// RLock in the common case.
	barrier sync.RWMutex

	queriers sync.Pool

	// stripe is this index's metrics stripe for the snapshot-barrier
	// counters, drawn once at construction.
	stripe uint32
}

// NewSharded builds a sharded dynamic index over the initial points
// (which receive global ids 0..len-1, point i landing on shard i mod K)
// with L repetitions of the family shared by every shard. It consumes rng
// exactly like New and NewDynamic — L Sample calls — so a sharded, a
// single-shard and a static index built from generators with the same
// seed share their repetition draws and return identical full-scan
// candidate sets over identical live points (candidate order is
// shard-major, so order-sensitive results — truncated collections, the
// annulus early-termination hit — may pick different representatives).
//
// NewSharded panics with a clear message when family is nil, L <= 0, or
// opts.Shards <= 0.
func NewSharded[P any](rng *xrand.Rand, family core.Family[P], L int, points []P, opts ShardOptions) *ShardedIndex[P] {
	if family == nil {
		panic("index: family must be non-nil")
	}
	if L <= 0 {
		panic("index: repetitions must be positive")
	}
	if opts.Shards <= 0 {
		panic("index: shard count must be positive")
	}
	pairs := make([]core.Pair[P], L)
	for i := range pairs {
		pairs[i] = family.Sample(rng)
	}
	negG := negHashers(pairs)
	K := opts.Shards
	parts := make([][]P, K)
	for i, p := range points {
		parts[i%K] = append(parts[i%K], p)
	}
	sx := &ShardedIndex[P]{
		pairs:   pairs,
		negG:    negG,
		shards:  make([]*DynamicIndex[P], K),
		routing: opts.Routing,
		stripe:  obs.NextStripe(),
	}
	for s := range sx.shards {
		sx.shards[s] = newDynamicFromPairs(pairs, negG, parts[s], opts.Dynamic)
		sx.shards[s].barrier = &sx.barrier
	}
	sx.cursor.Store(uint64(len(points)))
	sx.queriers.New = func() any { return newSourceQuerier[P](sx, 0) }
	return sx
}

// L returns the number of repetitions.
func (sx *ShardedIndex[P]) L() int { return len(sx.pairs) }

// Shards returns the number of shards.
func (sx *ShardedIndex[P]) Shards() int { return len(sx.shards) }

// Routing returns the insert-routing discipline the index was built with,
// so serving layers can validate mutations (plain vs keyed) before
// dispatching them instead of tripping the entry-point panics.
func (sx *ShardedIndex[P]) Routing() Routing { return sx.routing }

// Shard returns the s-th underlying DynamicIndex, for per-shard
// inspection or a per-shard Snapshot. Mutating a shard directly (rather
// than through the ShardedIndex) is safe but bypasses the global-id
// arithmetic: ids returned by a shard's own Insert are shard-local.
func (sx *ShardedIndex[P]) Shard(s int) *DynamicIndex[P] { return sx.shards[s] }

// Len returns the number of live points across all shards. Each shard's
// count is read under its own lock; concurrent mutators may move the
// total while it is being summed.
func (sx *ShardedIndex[P]) Len() int {
	n := 0
	for _, dx := range sx.shards {
		n += dx.Len()
	}
	return n
}

// Epoch returns the sum of the shards' mutation epochs: a monotone
// counter advanced by every Insert and successful Delete anywhere in the
// index. Compare per-shard epochs (Shard(s).Epoch) against a sharded
// snapshot's shards for per-shard staleness.
func (sx *ShardedIndex[P]) Epoch() uint64 {
	var e uint64
	for _, dx := range sx.shards {
		e += dx.Epoch()
	}
	return e
}

// Insert adds a point to the next shard in round-robin order and returns
// its stable global id (shard-local id times the shard count, plus the
// shard number). Inserts landing on different shards run fully in
// parallel: each takes only its own shard's locks. Insert panics after
// Close, and panics under RouteHash — a hash-routed index has no rotation
// cursor; use InsertKeyed.
func (sx *ShardedIndex[P]) Insert(p P) int {
	if sx.closed.Load() {
		panic("index: Insert on closed ShardedIndex")
	}
	if sx.routing == RouteHash {
		panic("index: Insert on hash-routed ShardedIndex (use InsertKeyed)")
	}
	K := len(sx.shards)
	s := int((sx.cursor.Add(1) - 1) % uint64(K))
	local := sx.shards[s].Insert(p)
	return local*K + s
}

// mixKey is a splitmix64-style finalizer spreading external keys across
// shards: sequential keys land on effectively independent shards, so hash
// routing stays balanced even under adversarially regular key streams.
func mixKey(k uint64) uint64 {
	k += 0x9e3779b97f4a7c15
	k ^= k >> 30
	k *= 0xbf58476d1ce4e5b9
	k ^= k >> 27
	k *= 0x94d049bb133111eb
	k ^= k >> 31
	return k
}

// keyShard returns the home shard of an external key under hash routing.
func (sx *ShardedIndex[P]) keyShard(key uint64) int {
	return int(mixKey(key) % uint64(len(sx.shards)))
}

// InsertKeyed upserts a point under an external key and returns the
// global id of the new version. The key's hash picks the home shard, so
// every version of a key lives on one shard and the upsert — tombstoning
// the previous version and inserting the new one — is atomic under that
// single shard's lock: queries never see both (or neither) version.
// Returned ids are stable until a leveled GC merge on the owning shard
// renumbers them (see CompactLeveled); the key is the durable identity and
// LookupKey recovers the current id. InsertKeyed panics after Close and
// panics under RouteRoundRobin — rotation cannot send a key back to its
// home shard.
func (sx *ShardedIndex[P]) InsertKeyed(key uint64, p P) int {
	if sx.closed.Load() {
		panic("index: InsertKeyed on closed ShardedIndex")
	}
	if sx.routing != RouteHash {
		panic("index: InsertKeyed on round-robin ShardedIndex (set ShardOptions.Routing to RouteHash)")
	}
	K := len(sx.shards)
	s := sx.keyShard(key)
	local := sx.shards[s].InsertKeyed(key, p)
	return local*K + s
}

// DeleteKeyed tombstones the newest version of the point inserted under
// key, reporting whether a live version existed. Only the key's home
// shard's lock is taken.
func (sx *ShardedIndex[P]) DeleteKeyed(key uint64) bool {
	return sx.shards[sx.keyShard(key)].DeleteKeyed(key)
}

// LookupKey returns the current global id of the live point inserted
// under key, if any. Under CompactLeveled the id is only guaranteed
// current until the next GC merge on the owning shard; re-resolve after
// observing an Epoch change.
func (sx *ShardedIndex[P]) LookupKey(key uint64) (int, bool) {
	K := len(sx.shards)
	s := sx.keyShard(key)
	local, ok := sx.shards[s].LookupKey(key)
	if !ok {
		return 0, false
	}
	return local*K + s, true
}

// GCStats sums the shards' tombstone occupancy and leveled-GC progress.
// Each shard's stats are read under its own lock; concurrent mutators may
// move the totals while they are being summed.
func (sx *ShardedIndex[P]) GCStats() GCStats {
	var total GCStats
	for _, dx := range sx.shards {
		st := dx.GCStats()
		total.LiveRows += st.LiveRows
		total.DeadRows += st.DeadRows
		total.BitmapBytes += st.BitmapBytes
		total.CollectedRows += st.CollectedRows
		total.ReclaimedBitmapBytes += st.ReclaimedBitmapBytes
	}
	return total
}

// Delete tombstones the point with the given global id, reporting whether
// it was live. Only the owning shard's lock is taken.
func (sx *ShardedIndex[P]) Delete(id int) bool {
	if id < 0 {
		return false
	}
	K := len(sx.shards)
	return sx.shards[id%K].Delete(id / K)
}

// Deleted reports whether the given global id has been deleted. Like
// DynamicIndex.Deleted, ids outside the assigned range (including
// negative ids) report false.
func (sx *ShardedIndex[P]) Deleted(id int) bool {
	if id < 0 {
		return false
	}
	K := len(sx.shards)
	return sx.shards[id%K].Deleted(id / K)
}

// Point returns the point stored under the given global id; like
// DynamicIndex.Point it remains valid for deleted ids and panics for ids
// never assigned.
func (sx *ShardedIndex[P]) Point(id int) P {
	if id < 0 {
		panic("index: negative point id")
	}
	K := len(sx.shards)
	return sx.shards[id%K].Point(id / K)
}

// Flush freezes every shard's memtable and drains every pending
// asynchronous freeze, shard by shard.
func (sx *ShardedIndex[P]) Flush() {
	for _, dx := range sx.shards {
		dx.Flush()
	}
}

// Compact compacts every shard concurrently (shards are independent, so
// their merges never contend) and returns when all have finished. After
// it, every shard answers from one flat segment and an empty memtable.
func (sx *ShardedIndex[P]) Compact() {
	var wg sync.WaitGroup
	for _, dx := range sx.shards {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dx.Compact()
		}()
	}
	wg.Wait()
}

// Close marks the index closed and closes every shard concurrently —
// stopping its background compactor and, for a durable index, sealing its
// on-disk state (final per-shard checkpoint; see DynamicIndex.Close).
// After Close, Insert and Snapshot panic with a clear message; queries
// and deletes over the existing data remain valid, pending asynchronous
// freezes still install, and Compact remains callable — but on a durable
// index, mutations after Close are in-memory only and latch
// ErrNotJournaled in DurableErr. Close is idempotent and safe for
// concurrent use (concurrent calls seal each shard exactly once).
func (sx *ShardedIndex[P]) Close() {
	sx.closed.Store(true)
	var wg sync.WaitGroup
	for _, dx := range sx.shards {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dx.Close()
		}()
	}
	wg.Wait()
}

// candidateSource implementation. A query's read window holds every
// shard's structural read-lock, acquired in shard order (a fixed order,
// so two concurrent queries cannot deadlock); shard-local candidate ids
// are translated to global ids in place as each shard's layers are
// probed.

func (sx *ShardedIndex[P]) srcPairs() []core.Pair[P]  { return sx.pairs }
func (sx *ShardedIndex[P]) srcNegG() []negQueryHasher { return sx.negG }

func (sx *ShardedIndex[P]) beginRead() int {
	maxLen := 0
	for _, dx := range sx.shards {
		dx.mu.RLock()
		if n := len(dx.points); n > maxLen {
			maxLen = n
		}
	}
	// Shard s's largest global id is (len-1)*K + s < maxLen*K, so this
	// bound sizes the veneers' visited arrays for every translated id.
	return maxLen * len(sx.shards)
}

func (sx *ShardedIndex[P]) endRead() {
	for _, dx := range sx.shards {
		dx.mu.RUnlock()
	}
}

// srcPoint runs inside a beginRead window (every shard's lock held
// shared), so it reads the owning shard's points array directly.
func (sx *ShardedIndex[P]) srcPoint(id int) P {
	K := len(sx.shards)
	return sx.shards[id%K].points[id/K]
}

func (sx *ShardedIndex[P]) appendCandidates(rep int, key uint64, dst []int32) ([]int32, int) {
	K := int32(len(sx.shards))
	probes := 0
	for s, dx := range sx.shards {
		start := len(dst)
		var p int
		dst, p = dx.appendCandidates(rep, key, dst)
		probes += p
		for i := start; i < len(dst); i++ {
			dst[i] = dst[i]*K + int32(s)
		}
	}
	return dst, probes
}

func (sx *ShardedIndex[P]) acquireSQ() *sourceQuerier[P] {
	return sx.queriers.Get().(*sourceQuerier[P])
}
func (sx *ShardedIndex[P]) releaseSQ(sq *sourceQuerier[P]) { sx.queriers.Put(sq) }

// CollectDistinct gathers up to max distinct live candidate ids for q
// (max <= 0 means no limit) across every shard, deduplicated across
// repetitions and shards. For a full scan (max <= 0) the id set — and in
// every case the Candidates/Distinct counters — equal a single
// DynamicIndex over the same live points and rng stream; the order is
// shard-major within each repetition, so when max truncates the
// collection the *first max* distinct ids kept may differ from a
// single-index build even though their count does not. The returned
// slice is freshly allocated and owned by the caller; use a
// ShardedQuerier for the zero-allocation variant.
func (sx *ShardedIndex[P]) CollectDistinct(q P, max int) []int {
	return collectDistinctOwned[P](sx, q, max)
}

// Candidates streams the live global ids colliding with q, repetition by
// repetition, shard by shard within each repetition (duplicates across
// repetitions included), invoking visit for each; if visit returns false
// the scan stops early. visit runs inside the query's read window with
// every shard's lock held shared: it must not call back into this index's
// mutating or locking methods, or the scan deadlocks.
func (sx *ShardedIndex[P]) Candidates(q P, visit func(id int) bool) {
	streamCandidates[P](sx, q, visit)
}

// QueryBatch collects distinct live candidates for every query
// concurrently, fanning the batch across opts.Workers workers with one
// pooled querier per worker. Each query probes every shard under one
// consistent read window, and its QueryStats merge the work of all
// shards — Probes counts bucket lookups across every shard's every layer.
// Mutations and compactions on any shard may proceed concurrently.
func (sx *ShardedIndex[P]) QueryBatch(queries []P, opts BatchOptions) ([][]int, []QueryStats, BatchStats) {
	return collectBatch[P](sx, queries, opts)
}

// ShardedQuerier is the reusable query scratch of a ShardedIndex,
// mirroring DynamicQuerier: not safe for concurrent use, one per
// goroutine (QueryBatch hands each worker its own), no steady-state heap
// allocations once warmed.
type ShardedQuerier[P any] struct {
	sourceQuerier[P]
}

// NewQuerier returns a fresh ShardedQuerier bound to sx.
func (sx *ShardedIndex[P]) NewQuerier() *ShardedQuerier[P] {
	return &ShardedQuerier[P]{sourceQuerier: *newSourceQuerier[P](sx, 0)}
}

// CollectDistinct is ShardedIndex.CollectDistinct through this querier's
// scratch; the returned slice is owned by the querier and valid only
// until its next use.
func (qr *ShardedQuerier[P]) CollectDistinct(q P, max int) ([]int, QueryStats) {
	return qr.collectDistinct(q, max)
}

// Snapshot returns an immutable view of every shard — per-shard snapshots
// unified under the global-id arithmetic — representing the whole index
// at one single instant: there is a moment T such that every shard's
// pinned state is exactly its state at T (an op sequence applied through
// the index is never seen half-applied across shards). The result
// implements the same candidateSource contract as the live index, so
// every veneer and the batch engine run over it unchanged, lock-free,
// while all shards keep absorbing writes. Snapshot panics after Close.
//
// The single instant is established by an epoch barrier with an
// optimistic fast path. Mark: read every shard's mutation epoch. Pin:
// take every shard's snapshot. Verify: every pinned epoch still equals
// its mark. All marks complete before any pin starts, so on success every
// shard was mutation-free over [its mark, its pin] — an interval
// containing [last mark, first pin] — and any T in that common window
// works. On a verify failure the pins are released and the attempt
// retried; after three failures Snapshot stops the world instead, holding
// the index's barrier exclusively (every mutator and GC swap holds it
// shared) while it pins, so a snapshot completes in bounded time under
// any write load.
func (sx *ShardedIndex[P]) Snapshot() *ShardedSnapshot[P] {
	if sx.closed.Load() {
		panic("index: Snapshot of closed ShardedIndex")
	}
	K := len(sx.shards)
	marks := make([]uint64, K)
	ss := &ShardedSnapshot[P]{snaps: make([]*Snapshot[P], K)}
	for attempt := 0; attempt < 3; attempt++ {
		for s, dx := range sx.shards {
			marks[s] = dx.Epoch()
		}
		for s, dx := range sx.shards {
			ss.snaps[s] = dx.Snapshot()
		}
		ok := true
		for s, snap := range ss.snaps {
			if snap.Epoch() != marks[s] {
				ok = false
				break
			}
		}
		if ok {
			mSnapOptimistic.Inc(sx.stripe)
			ss.queriers.New = func() any { return newSourceQuerier[P](ss, ss.beginRead()) }
			return ss
		}
		mSnapRetries.Inc(sx.stripe)
		for s, snap := range ss.snaps {
			snap.Release()
			ss.snaps[s] = nil
		}
	}
	// Fallback: quiesce every mutator (they hold barrier shared) and pin
	// under exclusion. Trivially a single instant.
	mSnapFallback.Inc(sx.stripe)
	obs.RecordEvent("snapshot.fallback", int64(K), 0)
	sx.barrier.Lock()
	for s, dx := range sx.shards {
		ss.snaps[s] = dx.Snapshot()
	}
	sx.barrier.Unlock()
	ss.queriers.New = func() any { return newSourceQuerier[P](ss, ss.beginRead()) }
	return ss
}

// ShardedSnapshot is an immutable view of a ShardedIndex: one Snapshot
// per shard, unified under the global-id arithmetic, together pinning the
// whole index at one single instant (see ShardedIndex.Snapshot for the
// epoch-barrier protocol that guarantees it). Queries, scans and the
// batch engine run over it lock-free while the live shards keep mutating.
// Safe for unrestricted concurrent use until Release.
type ShardedSnapshot[P any] struct {
	snaps    []*Snapshot[P]
	released atomic.Bool
	queriers sync.Pool
}

// Shards returns the number of shards.
func (ss *ShardedSnapshot[P]) Shards() int { return len(ss.snaps) }

// Shard returns the s-th per-shard snapshot.
func (ss *ShardedSnapshot[P]) Shard(s int) *Snapshot[P] { return ss.snaps[s] }

// Len returns the number of live points visible to the snapshot.
func (ss *ShardedSnapshot[P]) Len() int {
	n := 0
	for _, s := range ss.snaps {
		n += s.Len()
	}
	return n
}

// L returns the number of repetitions.
func (ss *ShardedSnapshot[P]) L() int { return len(ss.snaps[0].pairs) }

// Release releases every per-shard snapshot so segments rewritten by
// later compactions can be garbage-collected; queries afterwards panic.
// Idempotent; must not run concurrently with queries on this snapshot.
func (ss *ShardedSnapshot[P]) Release() {
	if ss.released.Swap(true) {
		return
	}
	for _, s := range ss.snaps {
		s.Release()
	}
}

// Epoch returns the sum of the per-shard snapshot epochs; it equals the
// live ShardedIndex.Epoch while no Insert or Delete has landed on any
// shard since the snapshot was taken.
func (ss *ShardedSnapshot[P]) Epoch() uint64 {
	var e uint64
	for _, s := range ss.snaps {
		e += s.Epoch()
	}
	return e
}

// Deleted reports whether the given global id was tombstoned at snapshot
// time; ids outside the assigned range (including negative ids) report
// false. Panics after Release.
func (ss *ShardedSnapshot[P]) Deleted(id int) bool {
	if id < 0 {
		ss.check()
		return false
	}
	K := len(ss.snaps)
	return ss.snaps[id%K].Deleted(id / K)
}

// Point returns the point stored under the given global id at snapshot
// time; panics for ids never assigned and after Release.
func (ss *ShardedSnapshot[P]) Point(id int) P {
	if id < 0 {
		panic("index: negative point id")
	}
	K := len(ss.snaps)
	return ss.snaps[id%K].Point(id / K)
}

// AppendLiveIDs appends every live global id visible to the snapshot to
// dst in ascending order and returns the extended slice; see
// Snapshot.AppendLiveIDs.
func (ss *ShardedSnapshot[P]) AppendLiveIDs(dst []int) []int {
	ss.check()
	K := len(ss.snaps)
	for local := 0; ; local++ {
		any := false
		for s, sn := range ss.snaps {
			if local < sn.idBound {
				any = true
				if !sn.dead.Get(local) {
					dst = append(dst, local*K+s)
				}
			}
		}
		if !any {
			return dst
		}
	}
}

// check panics when the snapshot has been released.
func (ss *ShardedSnapshot[P]) check() {
	if ss.released.Load() {
		panic("index: use of released Snapshot")
	}
}

// candidateSource implementation: like ShardedIndex but over the pinned
// per-shard snapshots, with a free read window.

func (ss *ShardedSnapshot[P]) srcPairs() []core.Pair[P]  { return ss.snaps[0].pairs }
func (ss *ShardedSnapshot[P]) srcNegG() []negQueryHasher { return ss.snaps[0].negG }

func (ss *ShardedSnapshot[P]) beginRead() int {
	ss.check()
	maxBound := 0
	for _, s := range ss.snaps {
		if s.idBound > maxBound {
			maxBound = s.idBound
		}
	}
	return maxBound * len(ss.snaps)
}

func (ss *ShardedSnapshot[P]) endRead() {}

func (ss *ShardedSnapshot[P]) srcPoint(id int) P {
	K := len(ss.snaps)
	return ss.snaps[id%K].points[id/K]
}

func (ss *ShardedSnapshot[P]) appendCandidates(rep int, key uint64, dst []int32) ([]int32, int) {
	K := int32(len(ss.snaps))
	probes := 0
	for s, sn := range ss.snaps {
		start := len(dst)
		var p int
		dst, p = sn.appendCandidates(rep, key, dst)
		probes += p
		for i := start; i < len(dst); i++ {
			dst[i] = dst[i]*K + int32(s)
		}
	}
	return dst, probes
}

func (ss *ShardedSnapshot[P]) acquireSQ() *sourceQuerier[P] {
	return ss.queriers.Get().(*sourceQuerier[P])
}
func (ss *ShardedSnapshot[P]) releaseSQ(sq *sourceQuerier[P]) { ss.queriers.Put(sq) }

// CollectDistinct gathers up to max distinct live candidate ids for q
// (max <= 0 means no limit) from the pinned state; see
// ShardedIndex.CollectDistinct for the order and counter contract.
func (ss *ShardedSnapshot[P]) CollectDistinct(q P, max int) []int {
	return collectDistinctOwned[P](ss, q, max)
}

// QueryBatch collects distinct candidates for every query concurrently
// from the pinned state; see Index.QueryBatch for the determinism
// contract.
func (ss *ShardedSnapshot[P]) QueryBatch(queries []P, opts BatchOptions) ([][]int, []QueryStats, BatchStats) {
	ss.check()
	return collectBatch[P](ss, queries, opts)
}

// NewQuerier returns a fresh SnapshotQuerier bound to ss for
// zero-allocation steady-state queries over the pinned state.
func (ss *ShardedSnapshot[P]) NewQuerier() *SnapshotQuerier[P] {
	return &SnapshotQuerier[P]{sourceQuerier: *newSourceQuerier[P](ss, ss.beginRead())}
}
