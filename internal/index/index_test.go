package index

import (
	"math"
	"testing"

	"dsh/internal/core"
	"dsh/internal/sphere"
	"dsh/internal/vec"
	"dsh/internal/workload"
	"dsh/internal/xrand"
)

const testDim = 24

func TestRepetitionsForCPF(t *testing.T) {
	if got := RepetitionsForCPF(0.5); got != 2 {
		t.Errorf("L(0.5) = %d", got)
	}
	if got := RepetitionsForCPF(1); got != 1 {
		t.Errorf("L(1) = %d", got)
	}
	if got := RepetitionsForCPF(0.01); got != 100 {
		t.Errorf("L(0.01) = %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("f = 0 should panic")
		}
	}()
	RepetitionsForCPF(0)
}

func TestIndexBasicCollisionRetrieval(t *testing.T) {
	rng := xrand.New(1)
	// SimHash powered to k=4: close points collide often, far rarely.
	fam := core.Power[[]float64](sphere.SimHash(testDim), 4)
	ds := workload.NewPlantedSphere(rng, testDim, 200, []float64{0.95})
	L := RepetitionsForCPF(math.Pow(sphere.SimHashCPF(0.95), 4)) * 3
	ix := New(rng, fam, L, ds.Points)
	if ix.L() != L || ix.Len() != 201 {
		t.Fatalf("index sizes wrong: L=%d n=%d", ix.L(), ix.Len())
	}
	got := ix.CollectDistinct(ds.Query, 0)
	found := false
	for _, id := range got {
		if id == ds.PlantedIdx[0] {
			found = true
		}
	}
	if !found {
		t.Error("planted near point not among candidates")
	}
}

func TestIndexCandidatesEarlyStop(t *testing.T) {
	rng := xrand.New(2)
	fam := sphere.SimHash(testDim) // collides with ~half of everything
	pts := workload.SpherePoints(rng, 500, testDim)
	ix := New(rng, fam, 10, pts)
	count := 0
	ix.Candidates(pts[0], func(id int) bool {
		count++
		return count < 7
	})
	if count != 7 {
		t.Errorf("early stop visited %d", count)
	}
	limited := ix.CollectDistinct(pts[0], 5)
	if len(limited) != 5 {
		t.Errorf("CollectDistinct(max=5) returned %d", len(limited))
	}
}

func TestNewPanicsOnBadL(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("L=0 should panic")
		}
	}()
	New(xrand.New(1), sphere.SimHash(testDim), 0, nil)
}

// mustPanicMessage asserts fn panics with exactly the given message, the
// constructor-hardening contract: misuse fails at the call site with a
// clear diagnosis instead of deep inside table construction.
func mustPanicMessage(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Errorf("expected panic %q, got none", want)
			return
		}
		if got, ok := r.(string); !ok || got != want {
			t.Errorf("panic message = %v, want %q", r, want)
		}
	}()
	fn()
}

func TestConstructorValidationMessages(t *testing.T) {
	const (
		badL   = "index: repetitions must be positive"
		badFam = "index: family must be non-nil"
	)
	rng := func() *xrand.Rand { return xrand.New(1) }
	fam := sphere.SimHash(testDim)
	within := withinSim(0.3, 0.7)

	mustPanicMessage(t, badL, func() { New(rng(), fam, 0, nil) })
	mustPanicMessage(t, badL, func() { New(rng(), fam, -3, nil) })
	mustPanicMessage(t, badFam, func() { New[[]float64](rng(), nil, 4, nil) })
	mustPanicMessage(t, badL, func() { NewParallel(rng(), fam, 0, nil) })
	mustPanicMessage(t, badFam, func() { NewParallel[[]float64](rng(), nil, 4, nil) })
	mustPanicMessage(t, badL, func() { NewAnnulus(rng(), fam, 0, nil, within) })
	mustPanicMessage(t, badFam, func() { NewAnnulus[[]float64](rng(), nil, 4, nil, within) })
	mustPanicMessage(t, badL, func() { NewRangeReporter(rng(), fam, 0, nil, within) })
	mustPanicMessage(t, badFam, func() { NewRangeReporter[[]float64](rng(), nil, 4, nil, within) })
	mustPanicMessage(t, badL, func() { NewDynamic(rng(), fam, 0, nil, DynamicOptions{}) })
	mustPanicMessage(t, badFam, func() { NewDynamic[[]float64](rng(), nil, 4, nil, DynamicOptions{}) })
}

func withinSim(lo, hi float64) func(q, x []float64) bool {
	return func(q, x []float64) bool {
		a := vec.Dot(q, x)
		return a >= lo && a <= hi
	}
}

func TestAnnulusIndexFindsPlanted(t *testing.T) {
	rng := xrand.New(3)
	const alphaTarget = 0.5
	ds := workload.NewPlantedSphere(rng, testDim, 2000, []float64{alphaTarget})
	fam := sphere.NewAnnulus(testDim, alphaTarget, 1.8)
	L := RepetitionsForCPF(fam.CPF().Eval(alphaTarget))
	within := withinSim(0.3, 0.7)

	found := 0
	const reps = 12
	for i := 0; i < reps; i++ {
		ai := NewAnnulus[[]float64](rng, fam, L, ds.Points, within)
		id, _ := ai.Query(ds.Query)
		if id >= 0 && within(ds.Query, ds.Points[id]) {
			found++
		}
	}
	// Theorem 6.1 guarantees success probability >= 1/2 per build; with 12
	// independent builds, seeing fewer than 4 successes is astronomically
	// unlikely.
	if found < 4 {
		t.Errorf("annulus query succeeded only %d/%d times", found, reps)
	}
}

func TestAnnulusIndexScansSublinearly(t *testing.T) {
	rng := xrand.New(4)
	const alphaTarget = 0.6
	ds := workload.NewPlantedSphere(rng, testDim, 5000, []float64{alphaTarget})
	fam := sphere.NewAnnulus(testDim, alphaTarget, 1.8)
	L := RepetitionsForCPF(fam.CPF().Eval(alphaTarget))
	ai := NewAnnulus[[]float64](rng, fam, L, ds.Points, withinSim(0.45, 0.75))
	_, stats := ai.Query(ds.Query)
	if stats.Candidates > 8*L {
		t.Errorf("scanned %d candidates, limit %d", stats.Candidates, 8*L)
	}
	if stats.Candidates >= len(ds.Points) {
		t.Errorf("scanned %d candidates out of %d points: not sublinear", stats.Candidates, len(ds.Points))
	}
}

func TestRangeReporterFindsAllCloseWithDedup(t *testing.T) {
	rng := xrand.New(5)
	// Plant several close points.
	alphas := []float64{0.92, 0.9, 0.88, 0.85, 0.8}
	ds := workload.NewPlantedSphere(rng, testDim, 1000, alphas)
	fam := sphere.NewStep(testDim, 0.75, 0.95, 4, 1.6)
	fmin, _ := sphere.PlateauStats(fam.CPF(), 0.75, 0.95, 30)
	L := RepetitionsForCPF(fmin) * 3 // boost per-point success probability
	inRange := func(q, x []float64) bool { return vec.Dot(q, x) >= 0.75 }
	rr := NewRangeReporter[[]float64](rng, fam, L, ds.Points, inRange)
	got, stats := rr.Query(ds.Query)
	found := make(map[int]bool)
	for _, id := range got {
		found[id] = true
		if !inRange(ds.Query, ds.Points[id]) {
			t.Error("reported out-of-range point")
		}
	}
	hits := 0
	for _, idx := range ds.PlantedIdx {
		if found[idx] {
			hits++
		}
	}
	if hits < 4 {
		t.Errorf("reported %d/5 planted points", hits)
	}
	if stats.Verified != stats.Distinct {
		t.Errorf("each distinct candidate should be verified exactly once: %+v", stats)
	}
}

func TestLinearScan(t *testing.T) {
	rng := xrand.New(6)
	ds := workload.NewPlantedSphere(rng, testDim, 300, []float64{0.9})
	ls := NewLinearScan(ds.Points)
	id, stats := ls.Query(ds.Query, withinSim(0.85, 0.95))
	if id != ds.PlantedIdx[0] {
		// Another point may qualify; verify membership instead.
		if id < 0 || !withinSim(0.85, 0.95)(ds.Query, ds.Points[id]) {
			t.Errorf("linear scan returned %d", id)
		}
	}
	if stats.Candidates > len(ds.Points) {
		t.Errorf("scan stats wrong: %+v", stats)
	}
	all, _ := ls.QueryAll(ds.Query, withinSim(-1, 1))
	if len(all) != len(ds.Points) {
		t.Errorf("QueryAll returned %d of %d", len(all), len(ds.Points))
	}
}

func TestConcatAnnulusBaselineCPFShape(t *testing.T) {
	// k1 = k2 gives a CPF peaking at alpha = 0 (hyperplane queries).
	f := ConcatAnnulusCPF(3, 3)
	peak := f.Eval(0)
	for _, a := range []float64{-0.8, -0.4, 0.4, 0.8} {
		if f.Eval(a) >= peak {
			t.Errorf("baseline CPF(%v) = %v not below peak %v", a, f.Eval(a), peak)
		}
	}
}

func TestConcatAnnulusBaselineQuery(t *testing.T) {
	rng := xrand.New(7)
	// Plant an orthogonal vector among noise; search for |alpha| <= 0.2.
	ds := workload.NewPlantedSphere(rng, testDim, 1000, []float64{0})
	f := ConcatAnnulusCPF(4, 4)
	L := RepetitionsForCPF(f.Eval(0))
	found := 0
	const reps = 10
	for i := 0; i < reps; i++ {
		ai := ConcatAnnulusBaseline(rng, testDim, 4, 4, L, ds.Points, withinSim(-0.2, 0.2))
		if id, _ := ai.Query(ds.Query); id >= 0 {
			found++
		}
	}
	if found < 3 {
		t.Errorf("baseline found orthogonal point only %d/%d times", found, reps)
	}
}

func TestConcatAnnulusBaselinePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("k1=0 should panic")
		}
	}()
	ConcatAnnulusBaseline(xrand.New(1), testDim, 0, 1, 1, nil, nil)
}
