package index

import (
	"fmt"
	"runtime"
	"testing"

	"dsh/internal/core"
	"dsh/internal/sphere"
	"dsh/internal/workload"
	"dsh/internal/xrand"
)

// BenchmarkBatchQueryIndex compares a sequential CollectDistinct loop
// against QueryBatch over the same query slice; the batch variant should
// win by roughly the core count on multi-core hardware while returning
// identical results (see TestQueryBatchMatchesSequential).
func BenchmarkBatchQueryIndex(b *testing.B) {
	ix, queries := batchFixture(7, 4000, 256)
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, q := range queries {
				ix.CollectDistinct(q, 0)
			}
		}
	})
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("batch_w%d", workers), func(b *testing.B) {
			opts := BatchOptions{Workers: workers}
			for i := 0; i < b.N; i++ {
				ix.QueryBatch(queries, opts)
			}
		})
	}
}

// BenchmarkBatchQueryAnnulus compares per-query annulus search against the
// batched variant.
func BenchmarkBatchQueryAnnulus(b *testing.B) {
	rng := xrand.New(8)
	const alphaTarget = 0.5
	ds := workload.NewPlantedSphere(rng, testDim, 4000, []float64{alphaTarget})
	fam := sphere.NewAnnulus(testDim, alphaTarget, 1.8)
	L := RepetitionsForCPF(fam.CPF().Eval(alphaTarget))
	ai := NewAnnulus[[]float64](rng, fam, L, ds.Points, withinSim(0.3, 0.7))
	queries := workload.SpherePoints(rng, 256, testDim)

	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, q := range queries {
				ai.Query(q)
			}
		}
	})
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("batch_w%d", workers), func(b *testing.B) {
			opts := BatchOptions{Workers: workers}
			for i := 0; i < b.N; i++ {
				ai.QueryBatch(queries, opts)
			}
		})
	}
}

// BenchmarkBatchQueryJoin compares the sequential join against
// JoinParallel at full parallelism (identical output, see
// TestJoinParallelMatchesJoin).
func BenchmarkBatchQueryJoin(b *testing.B) {
	fam := core.Power[[]float64](sphere.SimHash(testDim), 3)
	setA := workload.SpherePoints(xrand.New(25), 1000, testDim)
	setB := workload.SpherePoints(xrand.New(26), 1000, testDim)
	verify := withinSim(0.4, 1.0)
	const L = 24
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Join(xrand.New(27), fam, L, setA, setB, verify)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			JoinParallel(xrand.New(27), fam, L, setA, setB, verify, 0)
		}
	})
}

func benchWorkerCounts() []int {
	max := runtime.GOMAXPROCS(0)
	counts := []int{2, 4, max}
	var out []int
	for _, c := range counts {
		if c <= max && (len(out) == 0 || out[len(out)-1] != c) {
			out = append(out, c)
		}
	}
	return out
}
