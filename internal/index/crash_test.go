package index

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dsh/internal/durable"
	"dsh/internal/workload"
	"dsh/internal/xrand"
)

// The crash matrix: a deterministic scripted workload (inserts, keyed
// upserts, deletes, checkpoints, GC compactions) runs against a durable
// index with a fault injected at every named syscall point, at several
// occurrences each. After the simulated kill the script keeps issuing
// mutations (they are lost by definition — the process is dead), then
// recovery opens the directory and the recovered state must equal an
// in-memory reference replay of the acked op prefix: either all ops
// through the crashing op or all ops before it, depending on whether the
// crashing op's WAL record reached the file. Anything else — a third
// state, a corrupt read, a failed open — is a recovery bug.

const (
	crashSeed = 59
	crashL    = 6
	crashOps  = 120
)

type crashOp struct {
	kind int // 0 insert, 1 insertKeyed, 2 delete, 3 deleteKeyed, 4 persist, 5 compact
	key  uint64
	pi   int
}

// crashScript is the deterministic op sequence shared by every matrix
// case, paired with the point pool it draws from.
func crashScript() ([]crashOp, [][]float64) {
	pts := workload.SpherePoints(xrand.New(709), crashOps, testDim)
	rng := xrand.New(711)
	ops := make([]crashOp, 0, crashOps)
	next := 0
	for i := 0; i < crashOps; i++ {
		switch r := rng.Float64(); {
		case r < 0.45:
			ops = append(ops, crashOp{kind: 0, pi: next})
			next++
		case r < 0.62:
			ops = append(ops, crashOp{kind: 1, key: uint64(rng.Intn(30)), pi: next})
			next++
		case r < 0.72:
			ops = append(ops, crashOp{kind: 2, key: uint64(rng.Intn(crashOps))})
		case r < 0.82:
			ops = append(ops, crashOp{kind: 3, key: uint64(rng.Intn(30))})
		case r < 0.92:
			ops = append(ops, crashOp{kind: 4})
		default:
			ops = append(ops, crashOp{kind: 5})
		}
	}
	return ops, pts
}

func crashDynOpts() DynamicOptions {
	return DynamicOptions{MemtableThreshold: 8, Policy: CompactLeveled}
}

// applyCrashOp applies one scripted op; the durable index and the
// in-memory reference go through the identical code path, so their id
// assignment (including GC renumbering) stays in lockstep.
func applyCrashOp(dx *DynamicIndex[[]float64], op crashOp, pts [][]float64) {
	switch op.kind {
	case 0:
		dx.Insert(pts[op.pi])
	case 1:
		dx.InsertKeyed(op.key, pts[op.pi])
	case 2:
		dx.Delete(int(op.key))
	case 3:
		dx.DeleteKeyed(op.key)
	case 4:
		_ = dx.Persist() // reference: no-op; durable: checkpoint
	case 5:
		dx.Compact()
	}
}

// crashReference replays ops[:n] on a fresh in-memory index sharing the
// durable index's repetition draws.
func crashReference(n int, ops []crashOp, pts [][]float64) *DynamicIndex[[]float64] {
	ref := NewDynamic[[]float64](xrand.New(crashSeed), dynamicFamily(), crashL, nil, crashDynOpts())
	for _, op := range ops[:n] {
		applyCrashOp(ref, op, pts)
	}
	return ref
}

// servingEqual reports whether two indexes serve identically (live count,
// candidate stream per probe, tombstones, stored points).
func servingEqual(want, got *DynamicIndex[[]float64]) bool {
	if want.Len() != got.Len() || len(want.points) != len(got.points) {
		return false
	}
	for _, q := range recoverQueries(12) {
		if !reflect.DeepEqual(want.CollectDistinct(q, 0), got.CollectDistinct(q, 0)) {
			return false
		}
	}
	for id := 0; id < len(want.points); id++ {
		if want.Deleted(id) != got.Deleted(id) {
			return false
		}
		if !want.Deleted(id) && !reflect.DeepEqual(want.Point(id), got.Point(id)) {
			return false
		}
	}
	return true
}

// TestCrashMatrixRecovery is the fault-interleaving acceptance test: for
// every fault point the workload actually crosses, at the first, a middle
// and the last occurrence, kill the store at that exact syscall and prove
// recovery lands on the acked op prefix.
func TestCrashMatrixRecovery(t *testing.T) {
	ops, pts := crashScript()

	// Trace pass: enumerate the real fault surface of this workload
	// (including Close) instead of guessing point names.
	trace := durable.Trace()
	{
		dir := t.TempDir()
		dx, err := NewDurableDynamic[[]float64](dir, crashSeed, dynamicFamily(), crashL, durable.Float64Codec{},
			crashDynOpts(), durable.Options{Fsync: durable.FsyncAlways, Hooks: trace})
		if err != nil {
			t.Fatal(err)
		}
		for _, op := range ops {
			applyCrashOp(dx, op, pts)
		}
		dx.Close()
	}
	counts := map[string]int{}
	for _, p := range trace.Crossings() {
		counts[p]++
	}
	if len(counts) < 8 {
		t.Fatalf("workload crossed only %d fault points (%v); fixture too shallow", len(counts), counts)
	}

	for point, total := range counts {
		occs := []int{0, total / 2, total - 1}
		seen := map[int]bool{}
		for _, occ := range occs {
			if occ < 0 || seen[occ] {
				continue
			}
			seen[occ] = true
			t.Run(fmt.Sprintf("%s#%d", point, occ), func(t *testing.T) {
				runCrashCase(t, point, occ, ops, pts)
			})
		}
	}
}

func runCrashCase(t *testing.T, point string, occ int, ops []crashOp, pts [][]float64) {
	dir := t.TempDir()
	hooks := durable.FailAt(map[string]int{point: occ})
	dx, err := NewDurableDynamic[[]float64](dir, crashSeed, dynamicFamily(), crashL, durable.Float64Codec{},
		crashDynOpts(), durable.Options{Fsync: durable.FsyncAlways, Hooks: hooks})
	if err != nil {
		// The fault hit store creation itself: the caller got an error, so
		// nothing was ever acknowledged and there is nothing to recover.
		return
	}
	crashedAt := -1
	for k, op := range ops {
		applyCrashOp(dx, op, pts)
		if dx.DurableErr() != nil {
			crashedAt = k
			break
		}
	}
	if crashedAt == -1 {
		dx.Close()
		if err := dx.DurableErr(); err != nil {
			// The fault fired inside Close's final checkpoint; the WAL still
			// holds every op, so recovery must land on the full script.
			crashedAt = len(ops)
		}
	} else {
		// The process is "dead": a few more mutations land in memory only and
		// must leave no trace on disk.
		for _, op := range ops[crashedAt+1 : min(crashedAt+4, len(ops))] {
			applyCrashOp(dx, op, pts)
		}
	}

	rx, err := OpenDynamic[[]float64](dir, dynamicFamily(), durable.Float64Codec{},
		crashDynOpts(), durable.Options{})
	if err != nil {
		t.Fatalf("recovery failed after fault at %s#%d: %v", point, occ, err)
	}
	defer rx.Close()

	if crashedAt == -1 {
		if ref := crashReference(len(ops), ops, pts); !servingEqual(ref, rx) {
			t.Fatalf("clean-close recovery diverged from full replay (fault at %s#%d never fired mid-run)", point, occ)
		}
		return
	}
	// The crashing op's WAL record either reached the file (state k+1) or
	// did not (state k); both are legitimate kill outcomes.
	upper := min(crashedAt+1, len(ops))
	if ref := crashReference(upper, ops, pts); servingEqual(ref, rx) {
		return
	}
	if ref := crashReference(crashedAt, ops, pts); servingEqual(ref, rx) {
		return
	}
	t.Fatalf("fault at %s#%d (op %d): recovered state matches neither ops[:%d] nor ops[:%d]",
		point, occ, crashedAt, upper, crashedAt)
}

// TestCrashBitFlipSegmentDetected flips one bit inside a committed
// segment file: recovery must refuse the store with ErrCorrupt rather
// than serve silently wrong candidates.
func TestCrashBitFlipSegmentDetected(t *testing.T) {
	dir := t.TempDir()
	pts := workload.SpherePoints(xrand.New(713), 100, testDim)
	dx, err := NewDurableDynamic[[]float64](dir, 61, dynamicFamily(), crashL, durable.Float64Codec{},
		DynamicOptions{MemtableThreshold: 16}, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		dx.Insert(p)
	}
	dx.Close()

	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segment files after close (err %v)", err)
	}
	info, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := durable.FlipBit(segs[0], info.Size()/2, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDynamic[[]float64](dir, dynamicFamily(), durable.Float64Codec{},
		DynamicOptions{}, durable.Options{}); err == nil {
		t.Fatal("recovery accepted a bit-flipped segment file")
	}
}

// TestCrashBitFlipWALTruncates flips one bit inside the last WAL record:
// replay must truncate at the damaged record — recovering every earlier
// op — instead of failing or serving the corrupt row.
func TestCrashBitFlipWALTruncates(t *testing.T) {
	dir := t.TempDir()
	const n = 50
	pts := workload.SpherePoints(xrand.New(715), n, testDim)
	dx, err := NewDurableDynamic[[]float64](dir, 67, dynamicFamily(), crashL, durable.Float64Codec{},
		DynamicOptions{MemtableThreshold: 1024}, durable.Options{Fsync: durable.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		dx.Insert(p)
	}
	// No Close: all n rows live in wal-00000001.log only.
	wal := filepath.Join(dir, durable.WALName(1))
	info, err := os.Stat(wal)
	if err != nil {
		t.Fatal(err)
	}
	if err := durable.FlipBit(wal, info.Size()-5, 2); err != nil {
		t.Fatal(err)
	}

	rx, err := OpenDynamic[[]float64](dir, dynamicFamily(), durable.Float64Codec{},
		DynamicOptions{}, durable.Options{})
	if err != nil {
		t.Fatalf("recovery failed on bit-flipped WAL tail: %v", err)
	}
	defer rx.Close()
	if rx.Len() != n-1 {
		t.Fatalf("recovered %d rows, want %d (last record truncated)", rx.Len(), n-1)
	}
	ref := NewDynamic[[]float64](xrand.New(67), dynamicFamily(), crashL, nil, DynamicOptions{MemtableThreshold: 1024})
	for _, p := range pts[:n-1] {
		ref.Insert(p)
	}
	if !servingEqual(ref, rx) {
		t.Fatal("truncated-tail recovery diverged from the n-1 prefix")
	}
}
