package index

import (
	"testing"

	"dsh/internal/bitvec"
	"dsh/internal/core"
	"dsh/internal/hamming"
	"dsh/internal/sphere"
	"dsh/internal/vec"
	"dsh/internal/workload"
	"dsh/internal/xrand"
)

// Benchmarks for the frozen flat-table layout. Run with
//
//	go test -bench 'IndexBuild|IndexQuery|RangeReport' -benchmem ./internal/index/
//
// IndexQuery and RangeReport should report 0 allocs/op in steady state.

func benchHammingIndex(b *testing.B) (*Index[bitvec.Vector], bitvec.Vector) {
	b.Helper()
	rng := xrand.New(77)
	const d, n, L = 256, 20000, 48
	pts := make([]bitvec.Vector, n)
	for i := range pts {
		pts[i] = bitvec.Random(rng, d)
	}
	fam := core.Power[bitvec.Vector](hamming.BitSampling(d), 8)
	ix := New(rng, fam, L, pts)
	q := bitvec.AtDistance(rng, pts[0], d/16)
	return ix, q
}

func BenchmarkIndexBuild(b *testing.B) {
	rng := xrand.New(78)
	const d, n, L = 256, 20000, 48
	pts := make([]bitvec.Vector, n)
	for i := range pts {
		pts[i] = bitvec.Random(rng, d)
	}
	fam := core.Power[bitvec.Vector](hamming.BitSampling(d), 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		New(xrand.New(uint64(i)+1), fam, L, pts)
	}
}

func BenchmarkIndexQuery(b *testing.B) {
	ix, q := benchHammingIndex(b)
	qr := ix.NewQuerier()
	qr.CollectDistinct(q, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qr.CollectDistinct(q, 0)
	}
}

func BenchmarkIndexQueryNegatedSphere(b *testing.B) {
	rng := xrand.New(79)
	const d, n, L = 64, 20000, 48
	pts := workload.SpherePoints(rng, n, d)
	fam := core.Power[[]float64](sphere.NegateQuery(sphere.SimHash(d)), 6)
	ix := New(rng, fam, L, pts)
	q := vec.RandomUnit(rng, d)
	qr := ix.NewQuerier()
	qr.CollectDistinct(q, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qr.CollectDistinct(q, 0)
	}
}

func BenchmarkRangeReport(b *testing.B) {
	rng := xrand.New(80)
	const d, n, L = 256, 20000, 48
	pts := make([]bitvec.Vector, n)
	for i := range pts {
		pts[i] = bitvec.Random(rng, d)
	}
	fam := core.Power[bitvec.Vector](hamming.BitSampling(d), 8)
	within := func(a, x bitvec.Vector) bool { return bitvec.Distance(a, x) <= d/8 }
	rr := NewRangeReporter(rng, fam, L, pts, within)
	q := bitvec.AtDistance(rng, pts[0], d/16)
	dst, _ := rr.AppendQuery(nil, q)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, _ = rr.AppendQuery(dst[:0], q)
	}
}
