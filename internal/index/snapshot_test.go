package index

import (
	"reflect"
	"sync"
	"testing"

	"dsh/internal/workload"
	"dsh/internal/xrand"
)

// TestSnapshotIsolationUnderConcurrentChurn is the snapshot-isolation
// acceptance test, meant to run under -race (CI does): a scan over a
// Snapshot must observe the identical live-id set and identical query
// results before, during and after concurrent Insert, Delete, Flush and
// Compact traffic on the live index.
func TestSnapshotIsolationUnderConcurrentChurn(t *testing.T) {
	rng := xrand.New(21)
	pts := workload.SpherePoints(rng, 900, testDim)
	dx := NewDynamic(xrand.New(22), dynamicFamily(), 12, pts[:300],
		DynamicOptions{MemtableThreshold: 64})
	for _, p := range pts[300:450] {
		dx.Insert(p) // leave a non-empty memtable for Snapshot to detach
	}
	for id := 0; id < 450; id += 9 {
		dx.Delete(id)
	}

	queries := workload.SpherePoints(rng, 12, testDim)
	snap := dx.Snapshot()
	wantLen := snap.Len()
	wantIDs := snap.AppendLiveIDs(nil)
	if len(wantIDs) != wantLen {
		t.Fatalf("AppendLiveIDs returned %d ids, Len() = %d", len(wantIDs), wantLen)
	}
	wantRes := make([][]int, len(queries))
	for i, q := range queries {
		wantRes[i] = snap.CollectDistinct(q, 0)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			qr := snap.NewQuerier()
			var ids []int
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				qi := (i + w) % len(queries)
				res, _ := qr.CollectDistinct(queries[qi], 0)
				if len(res) != len(wantRes[qi]) || (len(res) > 0 && !reflect.DeepEqual(res, wantRes[qi])) {
					t.Errorf("snapshot query %d drifted during churn: %v != %v", qi, res, wantRes[qi])
					return
				}
				if i%16 == 0 {
					ids = snap.AppendLiveIDs(ids[:0])
					if !reflect.DeepEqual(ids, wantIDs) {
						t.Errorf("snapshot live-id set drifted during churn: %d ids != %d", len(ids), len(wantIDs))
						return
					}
				}
			}
		}(w)
	}

	// Churn the live index hard while the scanners run.
	mrng := xrand.New(23)
	for op, p := range pts[450:] {
		dx.Insert(p)
		if mrng.Bernoulli(0.4) {
			dx.Delete(mrng.Intn(450 + op))
		}
		switch {
		case op%97 == 0:
			dx.Compact()
		case op%41 == 0:
			dx.Flush()
		}
	}
	dx.Compact()
	close(stop)
	wg.Wait()

	// After the churn: the snapshot still answers from the pinned state...
	if snap.Len() != wantLen {
		t.Fatalf("snapshot Len drifted: %d != %d", snap.Len(), wantLen)
	}
	if got := snap.AppendLiveIDs(nil); !reflect.DeepEqual(got, wantIDs) {
		t.Fatalf("snapshot live-id set drifted after churn")
	}
	for i, q := range queries {
		if got := snap.CollectDistinct(q, 0); !reflect.DeepEqual(got, wantRes[i]) && (len(got) > 0 || len(wantRes[i]) > 0) {
			t.Fatalf("snapshot query %d drifted after churn: %v != %v", i, got, wantRes[i])
		}
	}
	// ...and staleness is detectable through the epochs.
	if dx.Epoch() == snap.Epoch() {
		t.Fatal("live epoch did not advance past the snapshot's")
	}
	if fresh := dx.Snapshot(); fresh.Epoch() != dx.Epoch() {
		t.Fatalf("fresh snapshot epoch %d != live epoch %d", fresh.Epoch(), dx.Epoch())
	}
}

// TestSnapshotMatchesStaticRebuild pins snapshot serving to the
// differential contract of the package: every veneer over a Snapshot
// returns exactly what the same veneer returns over a static Index
// rebuilt from the snapshot's live points with the same rng stream —
// same ids (mapped through global ids), same work counters — regardless
// of how the live index is mutated after the snapshot was taken.
func TestSnapshotMatchesStaticRebuild(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		fam := dynamicFamily()
		const L = 16
		initial := workload.SpherePoints(xrand.New(seed*100), 120, testDim)
		dx := NewDynamic(xrand.New(seed), fam, L, initial, DynamicOptions{MemtableThreshold: 40})
		churnDynamic(t, xrand.New(seed*777), dx, 300)

		snap := dx.Snapshot()
		ids := snap.AppendLiveIDs(nil)
		survivors := make([][]float64, len(ids))
		toStatic := make(map[int]int, len(ids))
		for pos, id := range ids {
			survivors[pos] = snap.Point(id)
			toStatic[id] = pos
		}

		// Mutate the live index after the snapshot: none of this may be
		// visible below.
		mrng := xrand.New(seed * 31)
		for i := 0; i < 100; i++ {
			dx.Insert(workload.SpherePoints(mrng, 1, testDim)[0])
			dx.Delete(mrng.Intn(len(ids)))
		}
		dx.Compact()

		static := New(xrand.New(seed), fam, L, survivors)
		within := withinSim(0.2, 0.8)
		staticAI := NewAnnulus[[]float64](xrand.New(seed), fam, L, survivors, within)
		snapAI := NewAnnulusOver[[]float64](snap, within)
		staticRR := NewRangeReporter[[]float64](xrand.New(seed), fam, L, survivors, within)
		snapRR := NewRangeReporterOver[[]float64](snap, within)

		queries := workload.SpherePoints(xrand.New(seed*999), 24, testDim)
		for qi, q := range queries {
			want := static.CollectDistinct(q, 0)
			got := snap.CollectDistinct(q, 0)
			mapped := make([]int, len(got))
			for i, id := range got {
				pos, ok := toStatic[id]
				if !ok {
					t.Fatalf("seed %d query %d: snapshot candidate %d not pinned", seed, qi, id)
				}
				mapped[i] = pos
			}
			if (len(mapped) > 0 || len(want) > 0) && !reflect.DeepEqual(mapped, want) {
				t.Fatalf("seed %d query %d: snapshot candidates %v != static %v", seed, qi, mapped, want)
			}

			gotID, gotStats := snapAI.Query(q)
			wantID, wantStats := staticAI.Query(q)
			mappedID := -1
			if gotID >= 0 {
				mappedID = toStatic[gotID]
			}
			if mappedID != wantID || gotStats.Candidates != wantStats.Candidates || gotStats.Verified != wantStats.Verified {
				t.Fatalf("seed %d query %d: snapshot annulus (%d,%+v) != static (%d,%+v)",
					seed, qi, mappedID, gotStats, wantID, wantStats)
			}

			gotIDs, gotRS := snapRR.Query(q)
			wantIDs, wantRS := staticRR.Query(q)
			mappedIDs := make([]int, len(gotIDs))
			for i, id := range gotIDs {
				mappedIDs[i] = toStatic[id]
			}
			if (len(mappedIDs) > 0 || len(wantIDs) > 0) && !reflect.DeepEqual(mappedIDs, wantIDs) {
				t.Fatalf("seed %d query %d: snapshot range %v != static %v", seed, qi, mappedIDs, wantIDs)
			}
			if gotRS.Candidates != wantRS.Candidates || gotRS.Distinct != wantRS.Distinct || gotRS.Verified != wantRS.Verified {
				t.Fatalf("seed %d query %d: snapshot range stats %+v != static %+v", seed, qi, gotRS, wantRS)
			}
		}

		// The batch engine over the snapshot agrees with its sequential path.
		batch, per, _ := snap.QueryBatch(queries, BatchOptions{Workers: 4})
		for qi, q := range queries {
			want := snap.CollectDistinct(q, 0)
			if len(want) == 0 {
				want = nil
			}
			if !reflect.DeepEqual(batch[qi], want) {
				t.Fatalf("seed %d query %d: snapshot batch %v != sequential %v", seed, qi, batch[qi], want)
			}
			if per[qi].Distinct != len(want) {
				t.Fatalf("seed %d query %d: batch Distinct=%d want %d", seed, qi, per[qi].Distinct, len(want))
			}
		}
	}
}

// TestSnapshotSteadyStateZeroAlloc extends the zero-allocation acceptance
// criterion to snapshots: queries through a warmed SnapshotQuerier over a
// compacted index's snapshot perform no heap allocations.
func TestSnapshotSteadyStateZeroAlloc(t *testing.T) {
	rng := xrand.New(61)
	pts := workload.SpherePoints(rng, 1500, testDim)
	dx := NewDynamic(xrand.New(62), dynamicFamily(), 16, pts[:1000], DynamicOptions{MemtableThreshold: 200})
	for _, p := range pts[1000:] {
		dx.Insert(p)
	}
	dx.Compact()
	snap := dx.Snapshot()
	q := workload.SpherePoints(rng, 1, testDim)[0]
	qr := snap.NewQuerier()
	qr.CollectDistinct(q, 0) // warm the buffers
	if allocs := testing.AllocsPerRun(100, func() { qr.CollectDistinct(q, 0) }); allocs != 0 {
		t.Errorf("steady-state snapshot CollectDistinct allocates %.1f/op, want 0", allocs)
	}
	var ids []int
	ids = snap.AppendLiveIDs(ids[:0])
	if allocs := testing.AllocsPerRun(100, func() { ids = snap.AppendLiveIDs(ids[:0]) }); allocs != 0 {
		t.Errorf("steady-state AppendLiveIDs allocates %.1f/op, want 0", allocs)
	}
}

// TestSnapshotInlineFreezeLayerOrder pins the layer-ordering fix that
// snapshots force on inline-freeze indexes: a Snapshot detaches the live
// memtable onto the freeze FIFO, and until that install lands every
// later freeze must go through the same FIFO — never straight into the
// segment list — so candidate order stays the static order. The churn
// below used to interleave a pending detach with inline freezes.
func TestSnapshotInlineFreezeLayerOrder(t *testing.T) {
	fam := dynamicFamily()
	const L = 12
	seedPts := workload.SpherePoints(xrand.New(71), 64, testDim)
	dx := NewDynamic(xrand.New(72), fam, L, seedPts, DynamicOptions{MemtableThreshold: 16})

	rng := xrand.New(73)
	var snaps []*Snapshot[[]float64]
	for i := 0; i < 200; i++ {
		dx.Insert(workload.SpherePoints(rng, 1, testDim)[0])
		if i%13 == 0 {
			snaps = append(snaps, dx.Snapshot()) // detach mid-stream
		}
	}
	dx.Flush()

	var survivors [][]float64
	for id := 0; id < 264; id++ {
		survivors = append(survivors, dx.Point(id))
	}
	static := New(xrand.New(72), fam, L, survivors)
	queries := workload.SpherePoints(xrand.New(74), 16, testDim)
	for qi, q := range queries {
		want := static.CollectDistinct(q, 0)
		got := dx.CollectDistinct(q, 0)
		if (len(got) > 0 || len(want) > 0) && !reflect.DeepEqual(got, want) {
			t.Fatalf("query %d: candidate order diverged from static after snapshot detaches: %v != %v", qi, got, want)
		}
	}
	for _, s := range snaps {
		s.Release()
	}
}
