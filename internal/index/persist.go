package index

import (
	"encoding/binary"
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dsh/internal/bitvec"
	"dsh/internal/core"
	"dsh/internal/durable"
	"dsh/internal/obs"
	"dsh/internal/xrand"
)

// Durability integration. A DynamicIndex can be backed by a durable.Env:
// every mutation is journaled to a checksummed write-ahead log before it
// is applied (under the same structural-lock acquisition, so WAL order is
// apply order), frozen segments are flushed to immutable segment files,
// and a manifest commits the file set plus a WAL watermark. Because WAL
// records carry the L pre-computed data-side hash keys and segment files
// retain the per-repetition key columns, recovery performs ZERO hash
// evaluations — the repetition structure of the DSH family survives
// serialization untouched, which is what makes cold starts cheap for
// expensive families.
//
// Replay is split at the manifest in two regions. Files strictly below
// the manifest's sequence are the BUFFERED region: their deletes, keyed
// ops and GC side effects are already folded into the manifest's
// tombstone bitmap and key table, so only insert records at or past the
// watermark (rows that were still in memtables when the manifest was
// captured) are collected, with gcRemap records shifting their ids the
// way the original GC did. Files at or above the manifest's sequence are
// the LIVE region and replay through the normal mutation logic record by
// record; a gcRemap record there re-applies the exact id transform of
// the original bottom-level GC (the record carries the dropped-id list,
// so the replayed renumbering is bit-identical even though the replayed
// layer structure may differ).
//
// Failure model: the first disk error (real or injected) latches the Env
// into a crashed state; every later durable operation is a no-op and the
// index keeps serving from memory. DurableErr surfaces the latched
// error — the process equivalent is a kill, and recovery re-opens from
// the last durable state.

// WAL record types. Every record's first byte is one of these.
const (
	recInsert      = 1 // [u32 id][u32 plen][point][L x u64 keys]
	recInsertKeyed = 2 // [u64 key][u32 id][u32 plen][point][L x u64 keys]
	recDelete      = 3 // [u32 id]
	recDeleteKeyed = 4 // [u64 key]
	recGCRemap     = 5 // [u32 snapBound][u32 delta][u32 n][n x u32 dropped ids]
)

// ErrNotJournaled is surfaced by DurableErr when a mutation arrived
// after Close sealed the store: the mutation was applied in memory but
// exists nowhere on disk.
var ErrNotJournaled = errors.New("index: mutation after Close was not journaled")

// store is the durability attachment of one DynamicIndex. The wal field
// and the scratch buffers are guarded by the index's structural mutex
// (every append happens inside a mutation's critical section); persist
// has its own serialization.
type store[P any] struct {
	env   *durable.Env
	codec durable.PointCodec[P]
	seed  uint64

	// sealed is set by Close: no further WAL append or persist runs.
	sealed   atomic.Bool
	lost     atomic.Bool
	sealOnce sync.Once

	// persistMu serializes checkpoints (explicit Persist calls and the
	// one inside Close).
	persistMu sync.Mutex

	// Guarded by dx.mu.
	wal     *durable.WAL
	buf     []byte // record scratch
	pbuf    []byte // point-encoding scratch
	nextSeg uint64
}

// attach wires the store into dx and stamps the live memtable's WAL
// watermark when it is empty (a replayed memtable keeps the position of
// its first replayed record).
func (st *store[P]) attach(dx *DynamicIndex[P], wal *durable.WAL) {
	st.wal = wal
	dx.store = st
	if dx.mem.len() == 0 {
		dx.mem.walStart = wal.End()
	}
}

// appendRecord writes the assembled scratch record; errors latch in the
// Env (the mutation itself proceeds in memory — see the failure model).
func (st *store[P]) appendRecord(b []byte) {
	st.buf = b
	if st.sealed.Load() {
		st.lost.Store(true)
		return
	}
	_, _ = st.wal.Append(b)
}

// appendPointPayload appends [u32 plen][point bytes] to b.
func (st *store[P]) appendPointPayload(b []byte, p P) []byte {
	st.pbuf = st.codec.AppendPoint(st.pbuf[:0], p)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(st.pbuf)))
	return append(b, st.pbuf...)
}

// logInsert journals a plain insert about to receive id len(dx.points).
// Called under dx.mu, before insertLocked.
func (st *store[P]) logInsert(dx *DynamicIndex[P], p P, keys []uint64) {
	b := append(st.buf[:0], recInsert)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(dx.points)))
	b = st.appendPointPayload(b, p)
	for _, k := range keys {
		b = binary.LittleEndian.AppendUint64(b, k)
	}
	st.appendRecord(b)
}

// logInsertKeyed journals a keyed upsert (one record covers the implied
// tombstone of the previous version). Called under dx.mu, before the
// upsert.
func (st *store[P]) logInsertKeyed(dx *DynamicIndex[P], key uint64, p P, keys []uint64) {
	b := append(st.buf[:0], recInsertKeyed)
	b = binary.LittleEndian.AppendUint64(b, key)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(dx.points)))
	b = st.appendPointPayload(b, p)
	for _, k := range keys {
		b = binary.LittleEndian.AppendUint64(b, k)
	}
	st.appendRecord(b)
}

// logDelete journals an effective Delete. Called under dx.mu.
func (st *store[P]) logDelete(id int32) {
	b := append(st.buf[:0], recDelete)
	b = binary.LittleEndian.AppendUint32(b, uint32(id))
	st.appendRecord(b)
}

// logDeleteKeyed journals an effective DeleteKeyed (the key was mapped).
// Called under dx.mu.
func (st *store[P]) logDeleteKeyed(key uint64) {
	b := append(st.buf[:0], recDeleteKeyed)
	b = binary.LittleEndian.AppendUint64(b, key)
	st.appendRecord(b)
}

// logGCRemap journals a bottom-level GC renumbering: ids >= snapBound
// shift by delta, the listed ids are dropped, survivors below snapBound
// take their dense rank. Called from compactGC's swap section under
// dx.mu, so the record sits exactly between pre-GC and post-GC ids in
// the log.
func (st *store[P]) logGCRemap(snapBound int32, delta int32, dropped []int32) {
	b := append(st.buf[:0], recGCRemap)
	b = binary.LittleEndian.AppendUint32(b, uint32(snapBound))
	b = binary.LittleEndian.AppendUint32(b, uint32(delta))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(dropped)))
	for _, id := range dropped {
		b = binary.LittleEndian.AppendUint32(b, uint32(id))
	}
	st.appendRecord(b)
}

// walOp is one decoded WAL record.
type walOp[P any] struct {
	typ       byte
	id        int32
	key       uint64
	point     P
	keys      []uint64
	snapBound int32
	delta     int32
	dropped   []int32
}

// decodeOp parses a checksummed WAL payload. L is the repetition count
// (the key block is L*8 trailing bytes of insert records).
func decodeOp[P any](payload []byte, L int, codec durable.PointCodec[P]) (walOp[P], error) {
	var op walOp[P]
	corrupt := func() (walOp[P], error) {
		return op, fmt.Errorf("%w: malformed WAL record", durable.ErrCorrupt)
	}
	if len(payload) == 0 {
		return corrupt()
	}
	op.typ = payload[0]
	b := payload[1:]
	readU32 := func() (uint32, bool) {
		if len(b) < 4 {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(b)
		b = b[4:]
		return v, true
	}
	readU64 := func() (uint64, bool) {
		if len(b) < 8 {
			return 0, false
		}
		v := binary.LittleEndian.Uint64(b)
		b = b[8:]
		return v, true
	}
	readInsertTail := func() error {
		plen, ok := readU32()
		if !ok || int(plen) > len(b) {
			return durable.ErrCorrupt
		}
		p, err := codec.DecodePoint(b[:plen:plen])
		if err != nil {
			return err
		}
		op.point = p
		b = b[plen:]
		if len(b) != 8*L {
			return durable.ErrCorrupt
		}
		op.keys = make([]uint64, L)
		for i := range op.keys {
			op.keys[i] = binary.LittleEndian.Uint64(b[8*i:])
		}
		return nil
	}
	switch op.typ {
	case recInsert:
		id, ok := readU32()
		if !ok {
			return corrupt()
		}
		op.id = int32(id)
		if err := readInsertTail(); err != nil {
			return op, err
		}
	case recInsertKeyed:
		key, ok1 := readU64()
		id, ok2 := readU32()
		if !ok1 || !ok2 {
			return corrupt()
		}
		op.key, op.id = key, int32(id)
		if err := readInsertTail(); err != nil {
			return op, err
		}
	case recDelete:
		id, ok := readU32()
		if !ok {
			return corrupt()
		}
		op.id = int32(id)
	case recDeleteKeyed:
		key, ok := readU64()
		if !ok {
			return corrupt()
		}
		op.key = key
	case recGCRemap:
		sb, ok1 := readU32()
		dl, ok2 := readU32()
		n, ok3 := readU32()
		if !ok1 || !ok2 || !ok3 || len(b) != 4*int(n) {
			return corrupt()
		}
		op.snapBound, op.delta = int32(sb), int32(dl)
		op.dropped = make([]int32, n)
		for i := range op.dropped {
			op.dropped[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
		}
	default:
		return corrupt()
	}
	return op, nil
}

// segmentData serializes a segment's in-memory layout (the points slice
// is a pinned header captured under the same lock as the segment, so ids
// index it consistently).
func segmentData[P any](s *segment, points []P, codec durable.PointCodec[P]) *durable.SegmentData {
	sd := &durable.SegmentData{
		GlobalIDs: s.globalIDs,
		Reps:      make([]durable.RepData, len(s.tables)),
		Points:    make([][]byte, len(s.globalIDs)),
	}
	for i := range s.tables {
		t := &s.tables[i]
		sd.Reps[i] = durable.RepData{
			Keys: s.keys[i],
			Table: durable.TableData{
				Mask:       t.mask,
				Keys:       t.keys,
				SlotBucket: t.slotBucket,
				Starts:     t.starts,
				IDs:        t.ids,
			},
		}
	}
	for i, id := range s.globalIDs {
		sd.Points[i] = codec.AppendPoint(nil, points[id])
	}
	return sd
}

// segFromData reconstructs a segment from its file image — flat tables
// included, so no table build (let alone hash evaluation) happens.
func segFromData(sd *durable.SegmentData, file string, L int) (*segment, error) {
	if len(sd.Reps) != L {
		return nil, fmt.Errorf("%w: segment %s has %d repetitions, index has %d", durable.ErrCorrupt, file, len(sd.Reps), L)
	}
	s := &segment{
		tables:    make([]flatTable, L),
		keys:      make([][]uint64, L),
		globalIDs: sd.GlobalIDs,
		file:      file,
	}
	rows := len(sd.GlobalIDs)
	for i, rep := range sd.Reps {
		if len(rep.Keys) != rows {
			return nil, fmt.Errorf("%w: segment %s repetition %d key column has %d rows, want %d", durable.ErrCorrupt, file, i, len(rep.Keys), rows)
		}
		s.keys[i] = rep.Keys
		s.tables[i] = flatTable{
			mask:       rep.Table.Mask,
			keys:       rep.Table.Keys,
			slotBucket: rep.Table.SlotBucket,
			starts:     rep.Table.Starts,
			ids:        rep.Table.IDs,
		}
	}
	return s, nil
}

// persist checkpoints the index: every frozen segment lacking a file is
// written out, then — once the segment set is fully on disk — the WAL is
// synced and rotated and a new manifest committed, all captured under
// one structural-lock acquisition so the manifest describes one
// consistent instant. Obsolete files are retired only after the new
// manifest is durable, which is what makes manifest fallback safe.
func (st *store[P]) persist(dx *DynamicIndex[P]) error {
	st.persistMu.Lock()
	defer st.persistMu.Unlock()
	if st.sealed.Load() {
		return errors.New("index: Persist on a closed durable index")
	}
	for {
		if err := st.env.Err(); err != nil {
			return err
		}
		// Write out every segment that has no file yet. The points header
		// is captured under the same read-lock as the segment pointer, so
		// the ids index it consistently; if a concurrent GC swaps the
		// segment list while we write, the new segments come up file-less
		// and the loop below retries (stale files are retired later).
		type job struct {
			seg    *segment
			points []P
		}
		var jobs []job
		dx.mu.RLock()
		for _, s := range dx.segments {
			if s.file == "" {
				jobs = append(jobs, job{s, dx.points})
			}
		}
		dx.mu.RUnlock()
		for _, j := range jobs {
			name := durable.SegmentName(st.nextSeg)
			if err := st.env.WriteSegment(name, segmentData(j.seg, j.points, st.codec)); err != nil {
				return err
			}
			st.nextSeg++
			dx.mu.Lock()
			j.seg.file = name
			dx.mu.Unlock()
		}

		dx.mu.Lock()
		pending := false
		for _, s := range dx.segments {
			if s.file == "" {
				pending = true
				break
			}
		}
		if pending {
			dx.mu.Unlock()
			continue
		}
		// Rotation, under mu so no record lands between the sync and the
		// capture. The old log is synced FIRST: a torn tail may only ever
		// exist in the newest WAL file, never in the middle of the chain
		// the next manifest's buffered region will read.
		if err := st.wal.Sync(); err != nil {
			dx.mu.Unlock()
			return err
		}
		newSeq := st.wal.Seq() + 1
		nw, err := st.env.CreateWAL(newSeq)
		if err != nil {
			dx.mu.Unlock()
			return err
		}
		old := st.wal
		st.wal = nw
		wm := dx.mem.walStart
		if len(dx.frozen) > 0 {
			wm = dx.frozen[0].walStart
		} else if dx.mem.len() == 0 {
			// Nothing buffered at all: advance the watermark into the new
			// log so the whole old chain can retire.
			dx.mem.walStart = nw.End()
			wm = dx.mem.walStart
		}
		m := &durable.Manifest{
			Seq:         newSeq,
			Watermark:   wm,
			NextSeg:     st.nextSeg,
			Seed:        st.seed,
			L:           uint32(len(dx.pairs)),
			IDBound:     uint64(len(dx.points)),
			Epoch:       dx.epoch,
			GCCollected: uint64(dx.gcCollected),
			GCReclaimed: uint64(dx.gcReclaimedBytes),
			Segments:    make([]durable.SegmentRef, len(dx.segments)),
			Dead:        append([]uint64(nil), dx.dead.Words()...),
		}
		for i, s := range dx.segments {
			base := uint32(0)
			if len(s.globalIDs) > 0 {
				base = uint32(s.globalIDs[0])
			}
			m.Segments[i] = durable.SegmentRef{Name: s.file, Base: base, Rows: uint32(len(s.globalIDs))}
		}
		if len(dx.keyed) > 0 {
			m.KeyedKeys = make([]uint64, 0, len(dx.keyed))
			m.KeyedIDs = make([]int32, 0, len(dx.keyed))
			for k, v := range dx.keyed {
				m.KeyedKeys = append(m.KeyedKeys, k)
				m.KeyedIDs = append(m.KeyedIDs, v)
			}
		}
		dx.mu.Unlock()

		if err := old.Close(); err != nil {
			return err
		}
		if err := st.env.WriteManifest(m); err != nil {
			return err
		}
		if err := st.env.Retire(m); err != nil {
			return err
		}
		return nil
	}
}

// seal is Close's durable shutdown: drain every pending freeze, write a
// final checkpoint, and stop journaling. Idempotent; errors latch in the
// Env and surface through DurableErr.
func (st *store[P]) seal(dx *DynamicIndex[P]) {
	st.sealOnce.Do(func() {
		dx.Flush()
		_ = st.persist(dx)
		dx.mu.Lock()
		st.sealed.Store(true)
		_ = st.wal.Close()
		dx.mu.Unlock()
	})
}

// Persist checkpoints the index's durable state: frozen segments are
// flushed to segment files and a new manifest commits them together with
// the WAL watermark, shrinking the log tail a future recovery must
// replay. It is a no-op (returning nil) on an index without a durable
// store. Safe for concurrent use with queries and mutations; concurrent
// Persist calls serialize.
func (dx *DynamicIndex[P]) Persist() error {
	if dx.store == nil {
		return nil
	}
	return dx.store.persist(dx)
}

// DurableErr reports the first unrecoverable durability failure (a disk
// error, an injected fault, or ErrNotJournaled for mutations that
// arrived after Close). It returns nil for an index without a durable
// store and while the store is healthy: the index itself keeps serving
// from memory either way.
func (dx *DynamicIndex[P]) DurableErr() error {
	if dx.store == nil {
		return nil
	}
	if err := dx.store.env.Err(); err != nil {
		return err
	}
	if dx.store.lost.Load() {
		return ErrNotJournaled
	}
	return nil
}

// NewDurableDynamic builds an empty dynamic index whose mutations are
// journaled under dir (created if absent; it must not already hold an
// index). The L repetition draws are sampled from seed, which the
// manifest records so OpenDynamic can re-sample the identical draws —
// recovery therefore re-creates the hashers but never re-evaluates one
// on a point. The returned index behaves exactly like NewDynamic plus
// the durability methods (Persist, DurableErr) and a Close that seals
// the on-disk state.
func NewDurableDynamic[P any](dir string, seed uint64, family core.Family[P], L int, codec durable.PointCodec[P], opts DynamicOptions, dopts durable.Options) (*DynamicIndex[P], error) {
	if family == nil {
		panic("index: family must be non-nil")
	}
	if L <= 0 {
		panic("index: repetitions must be positive")
	}
	env, err := durable.OpenEnv(dir, dopts)
	if err != nil {
		return nil, err
	}
	if m, err := env.LoadManifest(); err != nil {
		return nil, err
	} else if m != nil {
		return nil, fmt.Errorf("index: %s already holds an index (use OpenDynamic)", dir)
	}
	rng := xrand.New(seed)
	pairs := make([]core.Pair[P], L)
	for i := range pairs {
		pairs[i] = family.Sample(rng)
	}
	dx := newDynamicShell(pairs, negHashers(pairs), opts)
	st := &store[P]{env: env, codec: codec, seed: seed}
	m := &durable.Manifest{
		Seq:       1,
		Watermark: durable.Pos{Seq: 1},
		Seed:      seed,
		L:         uint32(L),
	}
	if err := env.WriteManifest(m); err != nil {
		return nil, err
	}
	wal, err := env.CreateWAL(1)
	if err != nil {
		return nil, err
	}
	st.attach(dx, wal)
	dx.startCompactor()
	return dx, nil
}

// OpenDynamic recovers a dynamic index previously created by
// NewDurableDynamic under dir: segment files are read back verbatim
// (tables included), the WAL tail is replayed, and the index resumes
// journaling. family must be the family the index was created with; the
// repetition draws are re-sampled from the manifest's recorded seed, and
// no hash function is evaluated on any point during recovery. opts and
// dopts take effect for the recovered index's future behavior (they are
// runtime knobs, not persisted state).
func OpenDynamic[P any](dir string, family core.Family[P], codec durable.PointCodec[P], opts DynamicOptions, dopts durable.Options) (*DynamicIndex[P], error) {
	env, err := durable.OpenEnv(dir, dopts)
	if err != nil {
		return nil, err
	}
	mstart := time.Now()
	m, err := env.LoadManifest()
	mRecoverManifest.Observe(0, uint64(time.Since(mstart)))
	if err != nil {
		return nil, err
	}
	if m == nil {
		return nil, fmt.Errorf("index: no manifest under %s", dir)
	}
	if m.Shards != 0 {
		return nil, fmt.Errorf("index: %s holds a sharded index (use OpenSharded)", dir)
	}
	rng := xrand.New(m.Seed)
	pairs := make([]core.Pair[P], m.L)
	for i := range pairs {
		pairs[i] = family.Sample(rng)
	}
	dx, err := openDynamicFromEnv(env, m, pairs, negHashers(pairs), codec, opts)
	if err != nil {
		return nil, err
	}
	dx.startCompactor()
	return dx, nil
}

// openDynamicFromEnv is the shared recovery tail of OpenDynamic and
// OpenSharded: rebuild the in-memory state from the manifest, replay the
// WAL, and attach a live store appending to a fresh log file (appending
// past a possibly-torn tail is never attempted). The caller starts the
// background compactor afterwards.
func openDynamicFromEnv[P any](env *durable.Env, m *durable.Manifest, pairs []core.Pair[P], negG []negQueryHasher, codec durable.PointCodec[P], opts DynamicOptions) (*DynamicIndex[P], error) {
	dx := newDynamicShell(pairs, negG, opts)
	if err := dx.recoverFrom(env, codec, m); err != nil {
		return nil, err
	}
	st := &store[P]{env: env, codec: codec, seed: m.Seed, nextSeg: m.NextSeg}
	seqs, err := env.ListWALs()
	if err != nil {
		return nil, err
	}
	maxSeq := m.Seq
	for _, s := range seqs {
		if s > maxSeq {
			maxSeq = s
		}
	}
	wal, err := env.CreateWAL(maxSeq + 1)
	if err != nil {
		return nil, err
	}
	st.attach(dx, wal)
	return dx, nil
}

// recoverFrom rebuilds dx (a fresh shell, unpublished — no locking) from
// the manifest and the WAL. Zero hash evaluations: segment tables load
// verbatim, and replayed inserts reuse the hash keys their records
// carry.
func (dx *DynamicIndex[P]) recoverFrom(env *durable.Env, codec durable.PointCodec[P], m *durable.Manifest) error {
	L := len(dx.pairs)
	if int(m.L) != L {
		return fmt.Errorf("index: manifest has L=%d, caller sampled %d repetitions", m.L, L)
	}
	dx.points = make([]P, m.IDBound)
	segStart := time.Now()
	for _, ref := range m.Segments {
		sd, err := env.ReadSegment(ref.Name)
		if err != nil {
			return err
		}
		seg, err := segFromData(sd, ref.Name, L)
		if err != nil {
			return err
		}
		for _, id := range sd.GlobalIDs {
			if id < 0 || int(id) >= len(dx.points) {
				return fmt.Errorf("%w: segment %s row id %d outside manifest id bound %d", durable.ErrCorrupt, ref.Name, id, m.IDBound)
			}
		}
		// Point payloads decode independently; chunk them across
		// goroutines (each chunk writes a disjoint id set, validated
		// above).
		var wg sync.WaitGroup
		decodeErrs := make([]error, runtime.GOMAXPROCS(0))
		for w := range decodeErrs {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(sd.GlobalIDs); i += len(decodeErrs) {
					p, err := codec.DecodePoint(sd.Points[i])
					if err != nil {
						decodeErrs[w] = err
						return
					}
					dx.points[sd.GlobalIDs[i]] = p
				}
			}(w)
		}
		wg.Wait()
		if err := errors.Join(decodeErrs...); err != nil {
			return err
		}
		dx.segments = append(dx.segments, seg)
	}
	mRecoverSegments.Observe(dx.stripe, uint64(time.Since(segStart)))
	dx.dead = bitvec.BitmapFromWords(m.Dead)
	if len(m.KeyedKeys) > 0 {
		dx.keyed = make(map[uint64]int32, len(m.KeyedKeys))
		for i, k := range m.KeyedKeys {
			dx.keyed[k] = m.KeyedIDs[i]
		}
	}
	dx.gcCollected = int(m.GCCollected)
	dx.gcReclaimedBytes = int(m.GCReclaimed)

	replayStart := time.Now()
	// Buffered region: collect the rows that were still in memtables at
	// manifest capture. Deletes and keyed ops are already folded into the
	// manifest's bitmap and key table; gcRemap records shift the pending
	// ids exactly as the original GC shifted the memtables they sat in.
	type pendingRow struct {
		pos   durable.Pos
		id    int32
		point P
		keys  []uint64
	}
	var pend []pendingRow
	for seq := m.Watermark.Seq; seq < m.Seq; seq++ {
		recs, err := env.ReadWAL(seq)
		if err != nil {
			return err
		}
		for _, rec := range recs {
			if rec.Pos.Less(m.Watermark) {
				continue
			}
			op, err := decodeOp(rec.Payload, L, codec)
			if err != nil {
				return err
			}
			switch op.typ {
			case recInsert, recInsertKeyed:
				pend = append(pend, pendingRow{rec.Pos, op.id, op.point, op.keys})
			case recGCRemap:
				for i := range pend {
					if pend[i].id >= op.snapBound {
						pend[i].id += op.delta
					}
				}
			}
		}
	}
	for _, r := range pend {
		if r.id < 0 || int(r.id) >= len(dx.points) {
			return fmt.Errorf("%w: buffered WAL row id %d outside manifest id bound %d", durable.ErrCorrupt, r.id, m.IDBound)
		}
		dx.points[r.id] = r.point
		if dx.mem.len() == 0 {
			dx.mem.walStart = r.pos
		}
		dx.mem.insert(r.id, r.keys)
		if dx.mem.len() >= dx.opts.MemtableThreshold {
			dx.freezeLocked()
		}
	}

	// The live count at capture: rows present in some layer minus their
	// tombstones (the bitmap may also carry bits for rows non-GC merges
	// dropped from the tables; those must not be counted).
	live := 0
	countLive := func(ids []int32) {
		for _, id := range ids {
			if !dx.dead.Get(int(id)) {
				live++
			}
		}
	}
	for _, s := range dx.segments {
		countLive(s.globalIDs)
	}
	countLive(dx.mem.ids)
	dx.live = live
	dx.epoch = m.Epoch

	// Live region: replay record by record through the normal mutation
	// logic (freezes inline — no goroutines while unpublished).
	seqs, err := env.ListWALs()
	if err != nil {
		return err
	}
	for _, seq := range seqs {
		if seq < m.Seq {
			continue
		}
		recs, err := env.ReadWAL(seq)
		if err != nil {
			return err
		}
		for _, rec := range recs {
			op, err := decodeOp(rec.Payload, L, codec)
			if err != nil {
				return err
			}
			if err := dx.replayOp(op, rec.Pos); err != nil {
				return err
			}
		}
	}
	mRecoverReplay.Observe(dx.stripe, uint64(time.Since(replayStart)))
	mRecoveries.Inc(dx.stripe)
	obs.RecordEvent("recover", int64(len(dx.points)), int64(len(dx.segments)))
	return nil
}

// replayRow re-applies one journaled insert. The id check is a
// corruption tripwire: WAL order is apply order, so every replayed
// insert must receive exactly the id the original run assigned.
func (dx *DynamicIndex[P]) replayRow(id int32, p P, keys []uint64, pos durable.Pos) error {
	if int(id) != len(dx.points) {
		return fmt.Errorf("%w: WAL insert id %d, expected %d", durable.ErrCorrupt, id, len(dx.points))
	}
	if dx.mem.len() == 0 {
		dx.mem.walStart = pos
	}
	dx.points = append(dx.points, p)
	dx.mem.insert(id, keys)
	dx.live++
	dx.epoch++
	if dx.mem.len() >= dx.opts.MemtableThreshold {
		dx.freezeLocked()
	}
	return nil
}

// replayOp applies one live-region record, mirroring the mutation that
// journaled it.
func (dx *DynamicIndex[P]) replayOp(op walOp[P], pos durable.Pos) error {
	switch op.typ {
	case recInsert:
		return dx.replayRow(op.id, op.point, op.keys, pos)
	case recInsertKeyed:
		if old, ok := dx.keyed[op.key]; ok && !dx.dead.Get(int(old)) {
			dx.dead.Set(int(old))
			dx.live--
			dx.epoch++
		}
		if err := dx.replayRow(op.id, op.point, op.keys, pos); err != nil {
			return err
		}
		if dx.keyed == nil {
			dx.keyed = make(map[uint64]int32)
		}
		dx.keyed[op.key] = op.id
	case recDelete:
		if id := int(op.id); id >= 0 && id < len(dx.points) && !dx.dead.Get(id) {
			dx.dead.Set(id)
			dx.live--
			dx.epoch++
		}
	case recDeleteKeyed:
		if id, ok := dx.keyed[op.key]; ok {
			delete(dx.keyed, op.key)
			if !dx.dead.Get(int(id)) {
				dx.dead.Set(int(id))
				dx.live--
				dx.epoch++
			}
		}
	case recGCRemap:
		return dx.replayGCRemap(int(op.snapBound), op.delta, op.dropped)
	default:
		return fmt.Errorf("%w: unknown WAL record type %d", durable.ErrCorrupt, op.typ)
	}
	return nil
}

// replayGCRemap re-applies a journaled bottom-level GC as a pure id
// transform over the replayed state: the listed ids are dropped,
// survivors below snapBound take their dense rank, and every id at or
// above snapBound shifts by delta. Under CompactLeveled no other merge
// ever drops a row, so the replayed row set equals the original's at
// this record — the resulting ids are bit-identical to the crashed
// process's even though the replayed layer structure may differ (layer
// structure never affects candidate order; see DynamicQuerier).
func (dx *DynamicIndex[P]) replayGCRemap(snapBound int, delta int32, dropped []int32) error {
	var drop bitvec.Bitmap
	for _, id := range dropped {
		if id < 0 || int(id) >= snapBound {
			return fmt.Errorf("%w: gcRemap dropped id %d outside pin bound %d", durable.ErrCorrupt, id, snapBound)
		}
		drop.Set(int(id))
	}
	srcs := make([]colSource, 0, len(dx.segments)+1)
	for _, s := range dx.segments {
		srcs = append(srcs, colSource{ids: s.globalIDs, keys: s.keys})
	}
	if dx.mem.len() > 0 {
		srcs = append(srcs, colSource{ids: dx.mem.ids, keys: dx.mem.keys})
	}
	merged := mergeSources(len(dx.pairs), srcs, &drop)

	oldBytes := dx.dead.Bytes()
	var newDead bitvec.Bitmap
	var newPoints []P
	var survBelow []int32
	if merged != nil {
		ids := merged.globalIDs
		k := 0
		for k < len(ids) && int(ids[k]) < snapBound {
			k++
		}
		survBelow = ids[:k]
		if int32(k-snapBound) != delta {
			return fmt.Errorf("%w: gcRemap delta %d inconsistent with %d survivors below bound %d", durable.ErrCorrupt, delta, k, snapBound)
		}
		// Survivors take rank j == their merged position; the tail (every
		// id >= snapBound is present) lands at old+delta == j too, so the
		// new id space is dense 0..rows-1.
		newPoints = make([]P, len(ids))
		dense := make([]int32, len(ids))
		for j, old := range ids {
			dense[j] = int32(j)
			newPoints[j] = dx.points[old]
			if dx.dead.Get(int(old)) {
				newDead.Set(j)
			}
		}
		dx.segments = []*segment{{tables: merged.tables, keys: merged.keys, globalIDs: dense}}
	} else {
		dx.segments = nil
	}
	dx.frozen = nil
	dx.mem = newMemtable(len(dx.pairs), dx.opts.MemtableThreshold) // walStart stamped by the next replayed row
	dx.points = newPoints

	for k, v := range dx.keyed {
		switch {
		case int(v) >= snapBound:
			dx.keyed[k] = v + delta
		default:
			if j := rankOf(survBelow, v); j >= 0 {
				dx.keyed[k] = int32(j)
			} else {
				delete(dx.keyed, k)
			}
		}
	}
	dx.epoch++
	if reclaim := oldBytes - newDead.Bytes(); reclaim > 0 {
		dx.gcReclaimedBytes += reclaim
	}
	dx.dead = newDead
	dx.gcCollected += len(dropped)
	return nil
}

// shardDirName returns the subdirectory of shard s.
func shardDirName(s int) string { return fmt.Sprintf("shard-%03d", s) }

// NewDurableSharded builds an empty sharded index journaled under dir:
// one durable subdirectory per shard (each with its own WAL, segment
// files and manifest, so shards persist and recover independently and in
// parallel) plus a top-level manifest recording the shard count, routing
// mode, seed and L. The repetition draws are sampled from seed and
// shared by every shard, exactly like NewSharded.
func NewDurableSharded[P any](dir string, seed uint64, family core.Family[P], L int, codec durable.PointCodec[P], opts ShardOptions, dopts durable.Options) (*ShardedIndex[P], error) {
	if family == nil {
		panic("index: family must be non-nil")
	}
	if L <= 0 {
		panic("index: repetitions must be positive")
	}
	if opts.Shards <= 0 {
		panic("index: shard count must be positive")
	}
	topEnv, err := durable.OpenEnv(dir, dopts)
	if err != nil {
		return nil, err
	}
	if m, err := topEnv.LoadManifest(); err != nil {
		return nil, err
	} else if m != nil {
		return nil, fmt.Errorf("index: %s already holds an index (use OpenSharded)", dir)
	}
	rng := xrand.New(seed)
	pairs := make([]core.Pair[P], L)
	for i := range pairs {
		pairs[i] = family.Sample(rng)
	}
	negG := negHashers(pairs)
	sx := &ShardedIndex[P]{
		pairs:   pairs,
		negG:    negG,
		shards:  make([]*DynamicIndex[P], opts.Shards),
		routing: opts.Routing,
		stripe:  obs.NextStripe(),
	}
	if err := topEnv.WriteManifest(&durable.Manifest{
		Seed:    seed,
		L:       uint32(L),
		Shards:  uint32(opts.Shards),
		Routing: uint32(opts.Routing),
	}); err != nil {
		return nil, err
	}
	for s := range sx.shards {
		env, err := durable.OpenEnv(filepath.Join(dir, shardDirName(s)), dopts)
		if err != nil {
			return nil, err
		}
		dx := newDynamicShell(pairs, negG, opts.Dynamic)
		dx.barrier = &sx.barrier
		st := &store[P]{env: env, codec: codec, seed: seed}
		if err := env.WriteManifest(&durable.Manifest{Seq: 1, Watermark: durable.Pos{Seq: 1}, Seed: seed, L: uint32(L)}); err != nil {
			return nil, err
		}
		wal, err := env.CreateWAL(1)
		if err != nil {
			return nil, err
		}
		st.attach(dx, wal)
		dx.startCompactor()
		sx.shards[s] = dx
	}
	sx.queriers.New = func() any { return newSourceQuerier[P](sx, 0) }
	return sx, nil
}

// OpenSharded recovers a sharded index created by NewDurableSharded.
// The shard count and routing mode come from the top-level manifest;
// dyn configures each recovered shard's runtime behavior. Shards
// recover concurrently — each reads its own segment files and replays
// its own WAL — so cold starts scale with the shard count. Zero hash
// evaluations, like OpenDynamic.
func OpenSharded[P any](dir string, family core.Family[P], codec durable.PointCodec[P], dyn DynamicOptions, dopts durable.Options) (*ShardedIndex[P], error) {
	topEnv, err := durable.OpenEnv(dir, dopts)
	if err != nil {
		return nil, err
	}
	m, err := topEnv.LoadManifest()
	if err != nil {
		return nil, err
	}
	if m == nil {
		return nil, fmt.Errorf("index: no manifest under %s", dir)
	}
	if m.Shards == 0 {
		return nil, fmt.Errorf("index: %s holds an unsharded index (use OpenDynamic)", dir)
	}
	rng := xrand.New(m.Seed)
	pairs := make([]core.Pair[P], m.L)
	for i := range pairs {
		pairs[i] = family.Sample(rng)
	}
	negG := negHashers(pairs)
	K := int(m.Shards)
	sx := &ShardedIndex[P]{
		pairs:   pairs,
		negG:    negG,
		shards:  make([]*DynamicIndex[P], K),
		routing: Routing(m.Routing),
		stripe:  obs.NextStripe(),
	}
	errs := make([]error, K)
	var wg sync.WaitGroup
	for s := 0; s < K; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sdir := filepath.Join(dir, shardDirName(s))
			env, err := durable.OpenEnv(sdir, dopts)
			if err != nil {
				errs[s] = err
				return
			}
			mstart := time.Now()
			sm, err := env.LoadManifest()
			mRecoverManifest.Observe(uint32(s), uint64(time.Since(mstart)))
			if err != nil {
				errs[s] = err
				return
			}
			if sm == nil {
				errs[s] = fmt.Errorf("index: shard %d has no manifest under %s", s, sdir)
				return
			}
			if sm.Seed != m.Seed || sm.L != m.L {
				errs[s] = fmt.Errorf("%w: shard %d manifest (seed %d, L %d) disagrees with top manifest (seed %d, L %d)", durable.ErrCorrupt, s, sm.Seed, sm.L, m.Seed, m.L)
				return
			}
			dx, err := openDynamicFromEnv(env, sm, pairs, negG, codec, dyn)
			if err != nil {
				errs[s] = err
				return
			}
			sx.shards[s] = dx
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	total := 0
	for _, dx := range sx.shards {
		dx.barrier = &sx.barrier
		dx.startCompactor()
		total += len(dx.points)
	}
	// The round-robin cursor resumes from the recovered id bound: later
	// inserts stay balanced going forward (a leveled GC may have shrunk
	// some shards' id spaces, so historical density is not re-established).
	sx.cursor.Store(uint64(total))
	sx.queriers.New = func() any { return newSourceQuerier[P](sx, 0) }
	return sx, nil
}

// Persist checkpoints every shard concurrently; the first error is
// returned (other shards still complete their checkpoint attempts). A
// no-op on an index without durable shards.
func (sx *ShardedIndex[P]) Persist() error {
	errs := make([]error, len(sx.shards))
	var wg sync.WaitGroup
	for s, dx := range sx.shards {
		wg.Add(1)
		go func(s int, dx *DynamicIndex[P]) {
			defer wg.Done()
			errs[s] = dx.Persist()
		}(s, dx)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// DurableErr reports the first shard's latched durability failure, nil
// while every shard is healthy (or the index has no durable store).
func (sx *ShardedIndex[P]) DurableErr() error {
	for _, dx := range sx.shards {
		if err := dx.DurableErr(); err != nil {
			return err
		}
	}
	return nil
}
