package index

import "dsh/internal/core"

// segment is one immutable frozen run of a DynamicIndex: the flat-table
// layout of table.go applied to a batch of points that passed through the
// memtable (or through a merge). A segment stores one flatTable per
// repetition over *local* positions 0..len-1 plus the mapping from local
// position to the stable global point id, so points keep their ids across
// freezes and merges. Segments are never mutated after construction —
// deletes are recorded in the DynamicIndex tombstone bitmap and applied
// during candidate iteration, and compaction replaces whole segments.
type segment struct {
	// tables[i] buckets local positions by the repetition-i data-side key.
	tables []flatTable
	// globalIDs maps local position -> global point id, in insertion
	// order. Global ids are strictly increasing within a segment, and
	// segments are kept oldest-first, so concatenating segment id lists
	// walks the live points in global-id order.
	globalIDs []int32
}

// len returns the number of points frozen into the segment.
func (s *segment) len() int { return len(s.globalIDs) }

// lookup returns the local positions bucketed under key in repetition rep;
// callers translate through globalIDs. The slice aliases frozen storage.
func (s *segment) lookup(rep int, key uint64) []int32 {
	return s.tables[rep].lookup(key)
}

// buildSegment freezes points (carrying their global ids) into a segment
// by hashing every point with each repetition's data-side hasher. The
// pairs are the index's shared repetition draws: reusing them across
// segments is what lets a query hash once per repetition and probe every
// segment with the same key, preserving the family's collision-probability
// semantics exactly.
func buildSegment[P any](pairs []core.Pair[P], points []P, globalIDs []int32) *segment {
	seg := &segment{
		tables:    make([]flatTable, len(pairs)),
		globalIDs: globalIDs,
	}
	keys := make([]uint64, len(points))
	for i, pair := range pairs {
		h := pair.H
		for j, p := range points {
			keys[j] = h.Hash(p)
		}
		seg.tables[i] = buildFlatTable(keys)
	}
	return seg
}
