package index

import "dsh/internal/core"

// segment is one immutable frozen run of a DynamicIndex: the flat-table
// layout of table.go applied to a batch of points that passed through the
// memtable (or through a merge). A segment stores one flatTable per
// repetition over *local* positions 0..len-1 plus the mapping from local
// position to the stable global point id, so points keep their ids across
// freezes and merges. It also retains the raw per-repetition key columns
// the tables were built from, which is what lets compaction merge
// segments by concatenating columns instead of re-hashing points.
// Segments are never mutated after construction — deletes are recorded in
// the DynamicIndex tombstone bitmap and applied during candidate
// iteration, and merges replace whole segments.
type segment struct {
	// tables[i] buckets local positions by the repetition-i data-side key.
	tables []flatTable
	// keys[i][j] is h_i of the point at local position j — the column
	// tables[i] was built from, retained so merges never re-evaluate a
	// hash function.
	keys [][]uint64
	// globalIDs maps local position -> global point id, in insertion
	// order. Global ids are strictly increasing within a segment, and
	// segments are kept oldest-first, so concatenating segment id lists
	// walks the live points in global-id order.
	globalIDs []int32
	// file is the on-disk segment file name once a durable checkpoint has
	// written this segment out, "" before (and always for non-durable
	// indexes). Guarded by the index's structural lock. A copy made by
	// withShiftedIDs deliberately resets it: the shifted ids no longer
	// match the file's.
	file string
}

// len returns the number of points frozen into the segment.
func (s *segment) len() int { return len(s.globalIDs) }

// lookup returns the local positions bucketed under key in repetition rep;
// callers translate through globalIDs. The slice aliases frozen storage.
func (s *segment) lookup(rep int, key uint64) []int32 {
	return s.tables[rep].lookup(key)
}

// withShiftedIDs returns a copy of the segment sharing its flat tables and
// key columns (both immutable) but with every global id shifted by delta.
// The leveled GC uses it to renumber segments installed while the
// bottom-level merge built, without rebuilding their tables; the original
// stays valid for snapshots pinned under the old id space.
func (s *segment) withShiftedIDs(delta int32) *segment {
	ids := make([]int32, len(s.globalIDs))
	for j, id := range s.globalIDs {
		ids[j] = id + delta
	}
	return &segment{tables: s.tables, keys: s.keys, globalIDs: ids}
}

// buildSegment freezes points (carrying their global ids) into a segment
// by hashing every point with each repetition's data-side hasher — the
// only place in the dynamic subsystem outside Insert that evaluates hash
// functions. The pairs are the index's shared repetition draws: reusing
// them across segments is what lets a query hash once per repetition and
// probe every layer with the same key, preserving the family's
// collision-probability semantics exactly.
func buildSegment[P any](pairs []core.Pair[P], points []P, globalIDs []int32) *segment {
	seg := &segment{
		tables:    make([]flatTable, len(pairs)),
		keys:      make([][]uint64, len(pairs)),
		globalIDs: globalIDs,
	}
	for i, pair := range pairs {
		keys := make([]uint64, len(points))
		h := pair.H
		for j, p := range points {
			keys[j] = h.Hash(p)
		}
		seg.keys[i] = keys
		seg.tables[i] = buildFlatTable(keys)
	}
	return seg
}
