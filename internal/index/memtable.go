package index

import "dsh/internal/durable"

// memtable is the mutable write buffer of a DynamicIndex. Fresh inserts
// land here in a chained-bucket layout — one map[uint64]bucket per
// repetition pointing into a per-repetition chain array — which absorbs
// writes in O(1) without the rebuild cost of the frozen flat tables and,
// unlike the earlier map[uint64][]int32 layout, without a per-bucket
// slice allocation on the hot insert path: buckets are head/tail row
// indices and successor links live in one flat chain column, so a
// steady-state insert performs no heap allocations at all (columns and
// chains are pre-sized to the memtable threshold; only map growth and the
// occasional column doubling past the threshold allocate, both amortized
// away). Alongside the buckets it retains every point's per-repetition
// keys in column order, so freezing into a segment is a pure
// buildFlatTable pass with no rehashing of the points.
//
// A memtable is not safe for concurrent mutation; the DynamicIndex guards
// it with its structural lock. Once detached by an asynchronous freeze it
// is never mutated again, so it can serve lock-protected reads while its
// flat tables build off-lock.

// bucket is one repetition-key bucket: the first and last row index (into
// the memtable's column order) buffered under the key. Successors are
// threaded through the repetition's chain column, preserving insertion
// order.
type bucket struct {
	head, tail int32
}

type memtable struct {
	// tables[i] maps the repetition-i data-side key h_i(x) to its bucket.
	tables []map[uint64]bucket
	// chains[i][j] is the next row (in insertion order) sharing row j's
	// repetition-i key, or -1 at the end of the bucket.
	chains [][]int32
	// ids are the global ids of the buffered points in insertion order.
	ids []int32
	// keys[i][j] is h_i of the j-th buffered point (same order as ids).
	keys [][]uint64
	// walStart is the log position of the memtable's first buffered row
	// (for a durable index). The oldest un-persisted memtable's walStart
	// is the manifest watermark: replay of the buffered WAL region starts
	// there. Zero for non-durable indexes.
	walStart durable.Pos
}

// newMemtable returns an empty memtable with L repetition maps, its
// columns and chains pre-sized for sizeHint rows (the memtable threshold)
// so steady-state inserts below the hint never grow a column.
func newMemtable(L, sizeHint int) *memtable {
	if sizeHint < 0 {
		sizeHint = 0
	}
	mt := &memtable{
		tables: make([]map[uint64]bucket, L),
		chains: make([][]int32, L),
		keys:   make([][]uint64, L),
		ids:    make([]int32, 0, sizeHint),
	}
	for i := range mt.tables {
		mt.tables[i] = make(map[uint64]bucket)
		mt.chains[i] = make([]int32, 0, sizeHint)
		mt.keys[i] = make([]uint64, 0, sizeHint)
	}
	return mt
}

// len returns the number of buffered points.
func (mt *memtable) len() int { return len(mt.ids) }

// insert buffers global id under its per-repetition keys (keys[i] is
// h_i of the point; the caller owns and may reuse the slice).
func (mt *memtable) insert(id int32, keys []uint64) {
	j := int32(len(mt.ids))
	mt.ids = append(mt.ids, id)
	for i, k := range keys {
		mt.keys[i] = append(mt.keys[i], k)
		mt.chains[i] = append(mt.chains[i], -1)
		if b, ok := mt.tables[i][k]; ok {
			mt.chains[i][b.tail] = j
			b.tail = j
			mt.tables[i][k] = b
		} else {
			mt.tables[i][k] = bucket{head: j, tail: j}
		}
	}
}

// bucketHead returns the first row index buffered under key in repetition
// rep, or -1 when the bucket is empty. Iterate with the repetition's
// chain column:
//
//	for j := mt.bucketHead(rep, key); j >= 0; j = mt.chains[rep][j] {
//		id := mt.ids[j]
//	}
//
// The walk yields rows in insertion order and is valid only while the
// caller holds the index's structural lock (or the memtable is detached
// and immutable).
func (mt *memtable) bucketHead(rep int, key uint64) int32 {
	if b, ok := mt.tables[rep][key]; ok {
		return b.head
	}
	return -1
}

// remapped returns a copy of the memtable with every buffered id shifted
// by delta, sharing the (content-identical) key columns with the
// original. The leveled GC uses it to renumber the layers that
// accumulated while the bottom-level merge built: copies keep pinned
// snapshots — which still reference the original memtable under the old
// id space — consistent. The original must not be mutated afterwards; the
// copy may (it gets private bucket maps and chain columns, and the shared
// key columns are append-only — the original never reads past its own
// length).
func (mt *memtable) remapped(delta int32) *memtable {
	out := &memtable{
		tables:   make([]map[uint64]bucket, len(mt.tables)),
		chains:   make([][]int32, len(mt.chains)),
		ids:      make([]int32, len(mt.ids)),
		keys:     mt.keys,
		walStart: mt.walStart,
	}
	for j, id := range mt.ids {
		out.ids[j] = id + delta
	}
	for i, tbl := range mt.tables {
		nt := make(map[uint64]bucket, len(tbl))
		for k, b := range tbl {
			nt[k] = b
		}
		out.tables[i] = nt
		out.chains[i] = append([]int32(nil), mt.chains[i]...)
	}
	return out
}

// freeze converts the buffered points into an immutable segment using the
// retained key columns (no rehashing); the columns are handed to the
// segment so later merges stay rehash-free too. The memtable must not be
// mutated afterwards; the caller replaces it with a fresh one (a detached
// memtable may keep serving reads until the segment is installed).
func (mt *memtable) freeze() *segment {
	seg := &segment{
		tables:    make([]flatTable, len(mt.tables)),
		keys:      mt.keys,
		globalIDs: mt.ids,
	}
	for i := range mt.tables {
		seg.tables[i] = buildFlatTable(mt.keys[i])
	}
	return seg
}
