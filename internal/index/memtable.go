package index

import "dsh/internal/durable"

// memtable is the mutable write buffer of a DynamicIndex. Fresh inserts
// land here in the pre-PR-2 map layout — one map[uint64][]int32 per
// repetition — which absorbs writes in O(1) without the rebuild cost of
// the frozen flat tables. Alongside the maps it retains every point's
// per-repetition keys in column order, so freezing into a segment is a
// pure buildFlatTable pass with no rehashing of the points.
//
// A memtable is not safe for concurrent mutation; the DynamicIndex guards
// it with its structural lock. Once detached by an asynchronous freeze it
// is never mutated again, so it can serve lock-protected reads while its
// flat tables build off-lock.
type memtable struct {
	// tables[i] maps the repetition-i data-side key h_i(x) to the global
	// ids inserted under it, in insertion order.
	tables []map[uint64][]int32
	// ids are the global ids of the buffered points in insertion order.
	ids []int32
	// keys[i][j] is h_i of the j-th buffered point (same order as ids).
	keys [][]uint64
	// walStart is the log position of the memtable's first buffered row
	// (for a durable index). The oldest un-persisted memtable's walStart
	// is the manifest watermark: replay of the buffered WAL region starts
	// there. Zero for non-durable indexes.
	walStart durable.Pos
}

// newMemtable returns an empty memtable with L repetition maps.
func newMemtable(L int) *memtable {
	mt := &memtable{
		tables: make([]map[uint64][]int32, L),
		keys:   make([][]uint64, L),
	}
	for i := range mt.tables {
		mt.tables[i] = make(map[uint64][]int32)
	}
	return mt
}

// len returns the number of buffered points.
func (mt *memtable) len() int { return len(mt.ids) }

// insert buffers global id under its per-repetition keys (keys[i] is
// h_i of the point; the caller owns and may reuse the slice).
func (mt *memtable) insert(id int32, keys []uint64) {
	mt.ids = append(mt.ids, id)
	for i, k := range keys {
		mt.tables[i][k] = append(mt.tables[i][k], id)
		mt.keys[i] = append(mt.keys[i], k)
	}
}

// lookup returns the global ids bucketed under key in repetition rep, in
// insertion order. The slice aliases the memtable and is valid only while
// the caller holds the index's structural lock.
func (mt *memtable) lookup(rep int, key uint64) []int32 {
	return mt.tables[rep][key]
}

// remapped returns a copy of the memtable with every buffered id shifted by
// delta, sharing the (content-identical) key columns with the original. The
// leveled GC uses it to renumber the layers that accumulated while the
// bottom-level merge built: copies keep pinned snapshots — which still
// reference the original memtable under the old id space — consistent. The
// original must not be mutated afterwards; the copy may (the shared key
// columns are append-only, and the original never reads past its own
// length).
func (mt *memtable) remapped(delta int32) *memtable {
	out := &memtable{
		tables:   make([]map[uint64][]int32, len(mt.tables)),
		ids:      make([]int32, len(mt.ids)),
		keys:     mt.keys,
		walStart: mt.walStart,
	}
	for j, id := range mt.ids {
		out.ids[j] = id + delta
	}
	for i, tbl := range mt.tables {
		nt := make(map[uint64][]int32, len(tbl))
		for k, ids := range tbl {
			nids := make([]int32, len(ids))
			for j, id := range ids {
				nids[j] = id + delta
			}
			nt[k] = nids
		}
		out.tables[i] = nt
	}
	return out
}

// freeze converts the buffered points into an immutable segment using the
// retained key columns (no rehashing); the columns are handed to the
// segment so later merges stay rehash-free too. The memtable must not be
// mutated afterwards; the caller replaces it with a fresh one (a detached
// memtable may keep serving reads until the segment is installed).
func (mt *memtable) freeze() *segment {
	seg := &segment{
		tables:    make([]flatTable, len(mt.tables)),
		keys:      mt.keys,
		globalIDs: mt.ids,
	}
	for i := range mt.tables {
		seg.tables[i] = buildFlatTable(mt.keys[i])
	}
	return seg
}
