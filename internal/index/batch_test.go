package index

import (
	"math"
	"reflect"
	"testing"
	"time"

	"dsh/internal/core"
	"dsh/internal/sphere"
	"dsh/internal/workload"
	"dsh/internal/xrand"
)

// batchFixture builds a shared index workload: SimHash^4 over a planted
// sphere, with a mix of planted and uniform queries.
func batchFixture(seed uint64, nPoints, nQueries int) (*Index[[]float64], [][]float64) {
	rng := xrand.New(seed)
	fam := core.Power[[]float64](sphere.SimHash(testDim), 4)
	pts := workload.SpherePoints(rng, nPoints, testDim)
	ix := New(rng, fam, 24, pts)
	queries := workload.SpherePoints(rng, nQueries, testDim)
	return ix, queries
}

func TestQueryBatchMatchesSequential(t *testing.T) {
	ix, queries := batchFixture(11, 400, 64)
	for _, max := range []int{0, 7} {
		opts := BatchOptions{Workers: 8, MaxCandidates: max}
		got, per, agg := ix.QueryBatch(queries, opts)
		if len(got) != len(queries) || len(per) != len(queries) {
			t.Fatalf("max=%d: result lengths %d/%d, want %d", max, len(got), len(per), len(queries))
		}
		if agg.Queries != len(queries) {
			t.Errorf("max=%d: aggregated Queries = %d", max, agg.Queries)
		}
		var wantCands, wantDistinct int64
		for i, q := range queries {
			want := ix.CollectDistinct(q, max)
			if len(want) == 0 {
				want = nil
			}
			if !reflect.DeepEqual(got[i], want) {
				t.Fatalf("max=%d query %d: batch %v != sequential %v", max, i, got[i], want)
			}
			wantCands += int64(per[i].Candidates)
			wantDistinct += int64(per[i].Distinct)
			if per[i].Distinct != len(want) {
				t.Errorf("max=%d query %d: Distinct = %d, want %d", max, i, per[i].Distinct, len(want))
			}
		}
		if agg.Candidates != wantCands || agg.Distinct != wantDistinct {
			t.Errorf("max=%d: aggregation mismatch: %d/%d want %d/%d",
				max, agg.Candidates, agg.Distinct, wantCands, wantDistinct)
		}
	}
}

func TestQueryBatchDeterministicAcrossWorkerCounts(t *testing.T) {
	ix, queries := batchFixture(12, 300, 48)
	ref, _, _ := ix.QueryBatch(queries, BatchOptions{Workers: 1})
	for _, workers := range []int{2, 4, 16} {
		got, _, _ := ix.QueryBatch(queries, BatchOptions{Workers: workers})
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("workers=%d: results differ from single-worker run", workers)
		}
	}
}

func TestAnnulusQueryBatchMatchesSequential(t *testing.T) {
	rng := xrand.New(13)
	const alphaTarget = 0.5
	ds := workload.NewPlantedSphere(rng, testDim, 1500, []float64{alphaTarget})
	fam := sphere.NewAnnulus(testDim, alphaTarget, 1.8)
	L := RepetitionsForCPF(fam.CPF().Eval(alphaTarget))
	ai := NewAnnulus[[]float64](rng, fam, L, ds.Points, withinSim(0.3, 0.7))

	queries := append([][]float64{ds.Query}, workload.SpherePoints(rng, 31, testDim)...)
	got, per, agg := ai.QueryBatch(queries, BatchOptions{Workers: 8})
	for i, q := range queries {
		wantID, wantStats := ai.Query(q)
		if got[i] != wantID {
			t.Errorf("query %d: batch id %d != sequential %d", i, got[i], wantID)
		}
		if per[i].Candidates != wantStats.Candidates || per[i].Verified != wantStats.Verified {
			t.Errorf("query %d: batch stats %+v != sequential %+v", i, per[i], wantStats)
		}
	}
	if agg.Queries != len(queries) || agg.LatP50 > agg.LatMax {
		t.Errorf("aggregate stats implausible: %+v", agg)
	}
}

func TestRangeReporterQueryBatchMatchesSequential(t *testing.T) {
	rng := xrand.New(14)
	pts := workload.SpherePoints(rng, 800, testDim)
	fam := sphere.NewStep(testDim, 0.5, 0.9, 3, 2.0)
	rr := NewRangeReporter[[]float64](rng, fam, 40, pts, withinSim(0.45, 1.0))

	queries := workload.SpherePoints(rng, 32, testDim)
	got, per, _ := rr.QueryBatch(queries, BatchOptions{Workers: 8})
	for i, q := range queries {
		wantIDs, wantStats := rr.Query(q)
		if !reflect.DeepEqual(got[i], wantIDs) {
			t.Errorf("query %d: batch %v != sequential %v", i, got[i], wantIDs)
		}
		if per[i].Distinct != wantStats.Distinct || per[i].Verified != wantStats.Verified {
			t.Errorf("query %d: batch stats %+v != sequential %+v", i, per[i], wantStats)
		}
	}
}

func TestJoinParallelMatchesJoin(t *testing.T) {
	fam := core.Power[[]float64](sphere.SimHash(testDim), 3)
	setA := workload.SpherePoints(xrand.New(21), 150, testDim)
	setB := workload.SpherePoints(xrand.New(22), 170, testDim)
	verify := withinSim(0.4, 1.0)

	seqPairs, seqStats := Join(xrand.New(23), fam, 20, setA, setB, verify)
	for _, workers := range []int{2, 8} {
		parPairs, parStats := JoinParallel(xrand.New(23), fam, 20, setA, setB, verify, workers)
		if !reflect.DeepEqual(parPairs, seqPairs) {
			t.Errorf("workers=%d: pairs differ: %d vs %d", workers, len(parPairs), len(seqPairs))
		}
		if parStats != seqStats {
			t.Errorf("workers=%d: stats %+v != %+v", workers, parStats, seqStats)
		}
	}

	// Self-join: same diagonal/normalization handling in both paths.
	seqSelf, seqSelfStats := SelfJoin(xrand.New(24), fam, 20, setA, verify)
	parSelf, parSelfStats := JoinParallel(xrand.New(24), fam, 20, setA, setA, verify, 8)
	if !reflect.DeepEqual(parSelf, seqSelf) || parSelfStats != seqSelfStats {
		t.Errorf("self-join mismatch: %d pairs %+v vs %d pairs %+v",
			len(parSelf), parSelfStats, len(seqSelf), seqSelfStats)
	}
}

// TestNewParallelMatchesSplitStreams checks that NewParallel's tables are
// exactly what a sequential build over the same Split streams produces:
// the i-th repetition samples its pair from the i-th Split of the seed
// generator, so parallel construction is seed-deterministic.
func TestNewParallelMatchesSplitStreams(t *testing.T) {
	fam := core.Power[[]float64](sphere.SimHash(testDim), 4)
	pts := workload.SpherePoints(xrand.New(31), 400, testDim)
	const L = 24

	par := NewParallel[[]float64](xrand.New(32), fam, L, pts)

	// Sequential replica of NewParallel's seeding discipline.
	rng := xrand.New(32)
	tables := make([]flatTable, L)
	keys := make([]uint64, len(pts))
	for i := 0; i < L; i++ {
		pair := fam.Sample(rng.Split())
		for j, p := range pts {
			keys[j] = pair.H.Hash(p)
		}
		tables[i] = buildFlatTable(keys)
	}
	if !reflect.DeepEqual(par.tables, tables) {
		t.Fatal("NewParallel tables differ from sequential build over the same Split streams")
	}

	// And NewParallel is reproducible from the seed alone.
	again := NewParallel[[]float64](xrand.New(32), fam, L, pts)
	if !reflect.DeepEqual(par.tables, again.tables) {
		t.Fatal("NewParallel is not deterministic for a fixed seed")
	}
	queries := workload.SpherePoints(xrand.New(33), 16, testDim)
	for _, q := range queries {
		if !reflect.DeepEqual(par.CollectDistinct(q, 0), again.CollectDistinct(q, 0)) {
			t.Fatal("NewParallel query results differ between identical seeds")
		}
	}
}

func TestRunBatchSplitsRandDeterministically(t *testing.T) {
	draw := func(workers int) []uint64 {
		out := make([]uint64, 32)
		RunBatch(len(out), BatchOptions{Workers: workers, Rand: xrand.New(41)}, func(i int, r *xrand.Rand) {
			out[i] = r.Uint64()
		})
		return out
	}
	ref := draw(1)
	for _, workers := range []int{3, 8} {
		if got := draw(workers); !reflect.DeepEqual(got, ref) {
			t.Errorf("workers=%d: per-query rng streams depend on scheduling", workers)
		}
	}
	// Without a Rand, fn receives nil.
	RunBatch(4, BatchOptions{Workers: 2}, func(i int, r *xrand.Rand) {
		if r != nil {
			t.Error("expected nil rng when BatchOptions.Rand is unset")
		}
	})
}

// TestAggregateStatsEdgeCases pins the degenerate inputs: an empty batch,
// a single query, and a zero wall clock must all produce finite stats —
// no NaN, no Inf, no division by zero — since harness code divides by
// and prints these fields unconditionally.
func TestAggregateStatsEdgeCases(t *testing.T) {
	finite := func(t *testing.T, agg BatchStats) {
		t.Helper()
		if math.IsNaN(agg.QPS) || math.IsInf(agg.QPS, 0) {
			t.Errorf("QPS = %v, want finite", agg.QPS)
		}
		for _, d := range []time.Duration{agg.LatMean, agg.LatP50, agg.LatP90, agg.LatP99, agg.LatMax} {
			if d < 0 {
				t.Errorf("negative latency stat %v in %+v", d, agg)
			}
		}
	}

	t.Run("empty batch", func(t *testing.T) {
		agg := AggregateStats(nil, 0)
		finite(t, agg)
		if agg.Queries != 0 || agg.QPS != 0 || agg.LatMax != 0 {
			t.Errorf("empty batch: %+v, want all-zero stats", agg)
		}
		// Non-zero wall with no queries: QPS stays 0, not 0/0.
		finite(t, AggregateStats(nil, time.Second))
	})

	t.Run("single query", func(t *testing.T) {
		per := []QueryStats{{Probes: 3, Candidates: 7, Distinct: 5, Latency: 2 * time.Millisecond}}
		agg := AggregateStats(per, 4*time.Millisecond)
		finite(t, agg)
		if agg.Queries != 1 || agg.Probes != 3 || agg.Candidates != 7 || agg.Distinct != 5 {
			t.Errorf("single query sums: %+v", agg)
		}
		// With one sample every percentile is that sample.
		if agg.LatP50 != 2*time.Millisecond || agg.LatP99 != 2*time.Millisecond || agg.LatMax != 2*time.Millisecond {
			t.Errorf("single-sample percentiles: p50=%v p99=%v max=%v, want 2ms", agg.LatP50, agg.LatP99, agg.LatMax)
		}
		if agg.QPS != 250 {
			t.Errorf("QPS = %v, want 250 (1 query / 4ms)", agg.QPS)
		}
	})

	t.Run("zero wall", func(t *testing.T) {
		per := []QueryStats{{Latency: time.Microsecond}, {Latency: 3 * time.Microsecond}}
		agg := AggregateStats(per, 0)
		finite(t, agg)
		if agg.QPS != 0 {
			t.Errorf("zero-wall QPS = %v, want 0 (guarded, not +Inf)", agg.QPS)
		}
		if agg.LatMax != 3*time.Microsecond {
			t.Errorf("LatMax = %v, want 3µs", agg.LatMax)
		}
	})
}
