package index

import (
	"sync"
	"sync/atomic"

	"dsh/internal/core"
)

// blockHashMinQueries is the smallest batch that takes the pre-hash path:
// below it the key block's bookkeeping outweighs the cache-residency win
// of streaming queries through one repetition's draws.
const blockHashMinQueries = 8

// blockKeys is a pooled rep-major key block produced by blockHash:
// keys[rep*q + qi] holds g_rep(queries[qi]). The rep-major layout is the
// point of the exercise — all q keys of a repetition are computed back to
// back while that repetition's draws are cache-resident, instead of
// re-touching all L draws for every query.
type blockKeys struct {
	keys []uint64
	q    int
}

var keyBlockPool = sync.Pool{New: func() any { return new(blockKeys) }}

func acquireBlockKeys(l, q int) *blockKeys {
	bk := keyBlockPool.Get().(*blockKeys)
	n := l * q
	if cap(bk.keys) < n {
		bk.keys = make([]uint64, n)
	}
	bk.keys = bk.keys[:n]
	bk.q = q
	return bk
}

func (bk *blockKeys) release() { keyBlockPool.Put(bk) }

// negBlock holds pre-negated copies of a query block, backed by one flat
// pooled buffer, for repetitions whose query hasher takes the HashNeg
// fast path. Negating the block once replaces the per-querier negation
// scratch for the whole batch.
type negBlock struct {
	flat []float64
	pts  [][]float64
}

var negBlockPool = sync.Pool{New: func() any { return new(negBlock) }}

// acquireNegBlock returns the negations of queries, or nil when the point
// type is not []float64 (the HashNeg fast path does not apply then).
func acquireNegBlock[P any](queries []P) *negBlock {
	nb := negBlockPool.Get().(*negBlock)
	total := 0
	for _, q := range queries {
		fq, ok := any(q).([]float64)
		if !ok {
			nb.release()
			return nil
		}
		total += len(fq)
	}
	if cap(nb.flat) < total {
		nb.flat = make([]float64, total)
	}
	nb.flat = nb.flat[:total]
	if cap(nb.pts) < len(queries) {
		nb.pts = make([][]float64, len(queries))
	}
	nb.pts = nb.pts[:len(queries)]
	off := 0
	for j, q := range queries {
		fq := any(q).([]float64)
		dst := nb.flat[off : off+len(fq)]
		for i, v := range fq {
			dst[i] = -v
		}
		nb.pts[j] = dst
		off += len(fq)
	}
	return nb
}

func (nb *negBlock) release() { negBlockPool.Put(nb) }

// blockHash pre-hashes a query block repetition by repetition: for each of
// the L draws it computes all len(queries) keys before moving to the next
// draw, so each repetition's parameters (rotation signs, packed Gaussian
// rows, ...) are loaded into cache once per block instead of once per
// query. Per repetition it picks the fastest equivalent path:
//
//  1. core.BatchHasher, when the family's query hasher implements it —
//     one HashBatch call over the whole block;
//  2. the HashNeg pre-negated path, using the block's shared negations;
//  3. scalar g.Hash per query.
//
// All three produce exactly the keys the scalar per-query path produces
// (BatchHasher's contract requires bit-identical keys), so queriers
// consuming the block return identical results and stats. Repetitions are
// fanned across min(workers, L) goroutines. Returns nil — meaning "hash
// per query as usual" — for blocks too small to benefit.
//
// Hash evaluations are deliberately NOT counted here: queriers count them
// at consumption time (one per repetition scanned), so the metrics plane
// reports identical totals whether or not a batch was pre-hashed.
func blockHash[P any](src candidateSource[P], queries []P, workers int) *blockKeys {
	if len(queries) < blockHashMinQueries || len(src.srcPairs()) == 0 {
		return nil
	}
	return blockHashAll(src, queries, workers)
}

// blockHashAll is blockHash without the minimum-batch cutoff: it always
// materializes the key block (callers that need every query's keys — the
// signed batch path feeding the serving edge's hot-query cache — use it so
// even a one-query batch yields a signature). Requires len(queries) > 0
// and L > 0.
func blockHashAll[P any](src candidateSource[P], queries []P, workers int) *blockKeys {
	qn := len(queries)
	pairs := src.srcPairs()
	l := len(pairs)
	negG := src.srcNegG()
	var negs [][]float64
	var nb *negBlock
	for i, nh := range negG {
		if nh == nil {
			continue
		}
		// Only materialize negations for repetitions that cannot batch.
		if _, ok := pairs[i].G.(core.BatchHasher[P]); !ok {
			if nb = acquireNegBlock(queries); nb != nil {
				negs = nb.pts
			}
			break
		}
	}
	bk := acquireBlockKeys(l, qn)
	hashRep := func(i int) {
		out := bk.keys[i*qn : (i+1)*qn]
		if bh, ok := pairs[i].G.(core.BatchHasher[P]); ok {
			bh.HashBatch(queries, out)
			return
		}
		if nh := negG[i]; nh != nil && negs != nil {
			for j, nq := range negs {
				out[j] = nh.HashNeg(nq)
			}
			return
		}
		g := pairs[i].G
		for j, q := range queries {
			out[j] = g.Hash(q)
		}
	}
	if workers > l {
		workers = l
	}
	if workers <= 1 {
		for i := 0; i < l; i++ {
			hashRep(i)
		}
	} else {
		var cursor atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(cursor.Add(1)) - 1
					if i >= l {
						return
					}
					hashRep(i)
				}
			}()
		}
		wg.Wait()
	}
	if nb != nil {
		nb.release()
	}
	return bk
}
