package index

import (
	"reflect"
	"testing"

	"dsh/internal/sphere"
	"dsh/internal/workload"
	"dsh/internal/xrand"
)

// TestDynamicVeneersMatchStaticRebuild is the serving-parity differential
// test of the candidate-source refactor: after an arbitrary interleaving
// of inserts, deletes, flushes and compactions (with and without
// asynchronous freezing), the AnnulusIndex and RangeReporter veneers over
// the DynamicIndex must return exactly what the same veneers return over
// a static Index rebuilt from the survivors with the same rng stream —
// same ids (mapped through the survivors' global ids), same work
// counters, before and after compaction.
func TestDynamicVeneersMatchStaticRebuild(t *testing.T) {
	for _, async := range []bool{false, true} {
		for seed := uint64(1); seed <= 4; seed++ {
			fam := sphere.NewAnnulus(testDim, 0.5, 1.6)
			const L = 18
			within := withinSim(0.3, 0.7)
			initial := workload.SpherePoints(xrand.New(seed*100), 120, testDim)

			dx := NewDynamic[[]float64](xrand.New(seed), fam, L, initial,
				DynamicOptions{MemtableThreshold: 40, AsyncFreeze: async})
			survivors, ids := churnDynamic(t, xrand.New(seed*777), dx, 400)

			// Static rebuild over the survivors with the same rng stream:
			// NewAnnulus and NewDynamic both consume exactly L Sample
			// calls, so the repetition draws coincide.
			staticAI := NewAnnulus[[]float64](xrand.New(seed), fam, L, survivors, within)
			staticRR := NewRangeReporter[[]float64](xrand.New(seed), fam, L, survivors, within)
			dynAI := NewDynamicAnnulus(dx, within)
			dynRR := NewDynamicRangeReporter(dx, within)

			toStatic := make(map[int]int, len(ids))
			for pos, id := range ids {
				toStatic[id] = pos
			}

			queries := workload.SpherePoints(xrand.New(seed*999), 24, testDim)
			queries = append(queries, survivors[:min(4, len(survivors))]...)

			check := func(label string, compacted bool) {
				t.Helper()
				for qi, q := range queries {
					wantID, wantStats := staticAI.Query(q)
					gotID, gotStats := dynAI.Query(q)
					mapped := -1
					if gotID >= 0 {
						pos, ok := toStatic[gotID]
						if !ok {
							t.Fatalf("async=%v seed %d %s query %d: annulus hit %d is not a survivor", async, seed, label, qi, gotID)
						}
						mapped = pos
					}
					if mapped != wantID {
						t.Fatalf("async=%v seed %d %s query %d: annulus id %d != static %d", async, seed, label, qi, mapped, wantID)
					}
					if gotStats.Candidates != wantStats.Candidates || gotStats.Verified != wantStats.Verified {
						t.Fatalf("async=%v seed %d %s query %d: annulus stats %+v != static %+v", async, seed, label, qi, gotStats, wantStats)
					}

					wantIDs, wantRS := staticRR.Query(q)
					gotIDs, gotRS := dynRR.Query(q)
					mappedIDs := make([]int, len(gotIDs))
					for i, id := range gotIDs {
						pos, ok := toStatic[id]
						if !ok {
							t.Fatalf("async=%v seed %d %s query %d: reported id %d is not a survivor", async, seed, label, qi, id)
						}
						mappedIDs[i] = pos
					}
					if len(mappedIDs) != 0 || len(wantIDs) != 0 {
						if !reflect.DeepEqual(mappedIDs, wantIDs) {
							t.Fatalf("async=%v seed %d %s query %d: range ids %v != static %v", async, seed, label, qi, mappedIDs, wantIDs)
						}
					}
					if gotRS.Candidates != wantRS.Candidates || gotRS.Distinct != wantRS.Distinct || gotRS.Verified != wantRS.Verified {
						t.Fatalf("async=%v seed %d %s query %d: range stats %+v != static %+v", async, seed, label, qi, gotRS, wantRS)
					}
					if gotRS.Probes < wantRS.Probes {
						t.Fatalf("async=%v seed %d %s query %d: dynamic probes %d below static %d", async, seed, label, qi, gotRS.Probes, wantRS.Probes)
					}
					if compacted && gotRS.Probes != wantRS.Probes {
						t.Fatalf("async=%v seed %d %s query %d: post-compact probes %d != static %d", async, seed, label, qi, gotRS.Probes, wantRS.Probes)
					}
				}
			}

			check("pre-compact", false)
			dx.Compact()
			check("post-compact", true)

			// The batch veneers over the dynamic backend must agree with
			// their own sequential paths.
			batchIDs, _, _ := dynAI.QueryBatch(queries, BatchOptions{Workers: 4})
			rrBatch, _, _ := dynRR.QueryBatch(queries, BatchOptions{Workers: 4})
			for qi, q := range queries {
				if seqID, _ := dynAI.Query(q); batchIDs[qi] != seqID {
					t.Fatalf("async=%v seed %d query %d: annulus batch id %d != sequential %d", async, seed, qi, batchIDs[qi], seqID)
				}
				seqIDs, _ := dynRR.Query(q)
				if len(seqIDs) == 0 {
					seqIDs = nil
				}
				if !reflect.DeepEqual(rrBatch[qi], seqIDs) {
					t.Fatalf("async=%v seed %d query %d: range batch %v != sequential %v", async, seed, qi, rrBatch[qi], seqIDs)
				}
			}
		}
	}
}

// TestDynamicVeneerBackendAccessors pins the backend-inspection contract:
// a statically built veneer exposes its Index and no Dynamic, a
// dynamically built one the reverse, and QueryWith rejects queriers bound
// to another backend.
func TestDynamicVeneerBackendAccessors(t *testing.T) {
	rng := xrand.New(42)
	pts := workload.SpherePoints(rng, 50, testDim)
	within := withinSim(0.3, 0.7)

	static := NewAnnulus[[]float64](xrand.New(1), dynamicFamily(), 8, pts, within)
	if static.Index() == nil || static.Dynamic() != nil {
		t.Fatal("static veneer backend accessors wrong")
	}
	dx := NewDynamic[[]float64](xrand.New(1), dynamicFamily(), 8, pts, DynamicOptions{})
	dyn := NewDynamicAnnulus(dx, within)
	if dyn.Index() != nil || dyn.Dynamic() != dx {
		t.Fatal("dynamic veneer backend accessors wrong")
	}
	rr := NewDynamicRangeReporter(dx, within)
	if rr.Index() != nil || rr.Dynamic() != dx {
		t.Fatal("dynamic range veneer backend accessors wrong")
	}

	defer func() {
		if recover() == nil {
			t.Error("QueryWith with a foreign Querier should panic")
		}
	}()
	other := NewAnnulus[[]float64](xrand.New(2), dynamicFamily(), 8, pts, within)
	static.QueryWith(other.Index().NewQuerier(), pts[0])
}

// TestDynamicQueryBatchStatsMatchStaticRebuild pins the per-query
// QueryStats of DynamicIndex.QueryBatch against a static rebuild over the
// survivors: candidate and distinct counts must be identical in every
// layered state (stats aggregate whole repetitions across all segments
// plus the memtable, even when MaxCandidates truncates the distinct
// collection mid-probe), and after Compact the probe counts coincide too.
func TestDynamicQueryBatchStatsMatchStaticRebuild(t *testing.T) {
	const seed, L = 9, 16
	fam := dynamicFamily()
	pts := workload.SpherePoints(xrand.New(seed*10), 300, testDim)

	dx := NewDynamic(xrand.New(seed), fam, L, pts[:150], DynamicOptions{MemtableThreshold: 48})
	for _, p := range pts[150:] {
		dx.Insert(p)
	}
	for id := 0; id < 300; id += 6 {
		dx.Delete(id)
	}
	if dx.Segments() < 3 || dx.MemtableLen() == 0 {
		t.Fatalf("fixture not layered: %d segments, %d memtable entries", dx.Segments(), dx.MemtableLen())
	}

	var survivors [][]float64
	for id := 0; id < 300; id++ {
		if !dx.Deleted(id) {
			survivors = append(survivors, dx.Point(id))
		}
	}
	static := New(xrand.New(seed), fam, L, survivors)
	queries := workload.SpherePoints(xrand.New(seed*20), 32, testDim)

	compare := func(label string, compacted bool) {
		t.Helper()
		for _, max := range []int{0, 4} {
			_, per, agg := dx.QueryBatch(queries, BatchOptions{Workers: 4, MaxCandidates: max})
			_, sper, _ := static.QueryBatch(queries, BatchOptions{Workers: 4, MaxCandidates: max})
			var sumProbes, sumCands int64
			for i := range queries {
				if per[i].Candidates != sper[i].Candidates || per[i].Distinct != sper[i].Distinct {
					t.Fatalf("%s max=%d query %d: dynamic stats %+v != static %+v", label, max, i, per[i], sper[i])
				}
				if per[i].Probes < sper[i].Probes {
					t.Fatalf("%s max=%d query %d: dynamic probes %d below static %d", label, max, i, per[i].Probes, sper[i].Probes)
				}
				if compacted && per[i].Probes != sper[i].Probes {
					t.Fatalf("%s max=%d query %d: post-compact probes %d != static %d", label, max, i, per[i].Probes, sper[i].Probes)
				}
				sumProbes += int64(per[i].Probes)
				sumCands += int64(per[i].Candidates)
			}
			if agg.Probes != sumProbes || agg.Candidates != sumCands {
				t.Fatalf("%s max=%d: aggregation mismatch: probes %d/%d candidates %d/%d",
					label, max, agg.Probes, sumProbes, agg.Candidates, sumCands)
			}
		}
	}

	compare("pre-compact", false)
	dx.Compact()
	compare("post-compact", true)
}

// TestDynamicVeneerSteadyStateZeroAlloc extends the zero-allocation
// acceptance criterion to the unified veneers: after Compact, annulus and
// range queries over the dynamic backend through the pooled scratch
// perform no steady-state heap allocations.
func TestDynamicVeneerSteadyStateZeroAlloc(t *testing.T) {
	rng := xrand.New(51)
	pts := workload.SpherePoints(rng, 1500, testDim)
	dx := NewDynamic(xrand.New(52), dynamicFamily(), 16, pts[:1000], DynamicOptions{MemtableThreshold: 200})
	for _, p := range pts[1000:] {
		dx.Insert(p)
	}
	dx.Compact()
	within := withinSim(-1, 2) // accepts everything: exercises the verify path
	ai := NewDynamicAnnulus(dx, within)
	rr := NewDynamicRangeReporter(dx, within)
	q := workload.SpherePoints(rng, 1, testDim)[0]

	// Measure through a held querier rather than the pool: under -race,
	// sync.Pool deliberately drops items to shake out races, which makes
	// pooled Get/Put allocate in tests (never in production steady state).
	sq := dx.acquireSQ()
	defer dx.releaseSQ(sq)
	sq.annulusQuery(q, ai.within)
	if allocs := testing.AllocsPerRun(100, func() { sq.annulusQuery(q, ai.within) }); allocs != 0 {
		t.Errorf("dynamic annulus query allocates %.1f/op, want 0", allocs)
	}
	dst, _ := sq.appendRange(nil, q, rr.inRange)
	if allocs := testing.AllocsPerRun(100, func() { dst, _ = sq.appendRange(dst[:0], q, rr.inRange) }); allocs != 0 {
		t.Errorf("dynamic range query allocates %.1f/op, want 0", allocs)
	}
}
