package index

import (
	"time"

	"dsh/internal/core"
	"dsh/internal/obs"
)

// candidateSource is the storage abstraction behind every query veneer in
// this package. It is the paper's serving contract reduced to two
// operations — hash the query once per repetition, then iterate the
// colliding ids of that repetition under stable point ids — so that the
// Section 6 structures (distinct-candidate collection, annulus search,
// range reporting, concurrent batching) are written once and instantiated
// over any backend. (Ids are stable within any read window and, for every
// policy but CompactLeveled, across the backend's lifetime; a leveled GC
// merge renumbers ids between windows and advances the epoch.) The
// backends:
//
//   - *Index: the frozen flat-table layout (one immutable table per
//     repetition, ids 0..Len-1).
//   - *DynamicIndex: the segmented LSM layout (frozen segments + detached
//     read-only memtables + the live memtable, global ids, tombstones
//     applied during iteration).
//   - *ShardedIndex: K DynamicIndex shards probed in shard order,
//     shard-local ids translated to global ids during iteration.
//   - *Snapshot / *ShardedSnapshot: pinned, immutable views of the
//     dynamic backends with a free read window.
//
// Thread-safety contract: srcPairs and srcNegG return immutable state and
// may be called at any time. appendCandidates and srcPoint may only be
// called between beginRead and endRead, which bracket exactly one query
// and pin a consistent snapshot of the backend (the static Index is
// immutable, so its beginRead is free; the DynamicIndex holds its
// structural read-lock for the duration). Implementations must allow any
// number of concurrent beginRead..endRead windows; mutators may block for
// their duration but must never corrupt an open window.
type candidateSource[P any] interface {
	// srcPairs returns the L repetition draws (h_i, g_i), sampled once at
	// construction and immutable afterwards.
	srcPairs() []core.Pair[P]
	// srcNegG returns the per-repetition pre-negated query hashers (nil
	// entries where the fast path is unavailable), aligned with srcPairs.
	srcNegG() []negQueryHasher
	// beginRead opens a read-consistent snapshot for one query and returns
	// the exclusive upper bound of the id space (ids seen during the query
	// are < the returned value). Every beginRead must be paired with
	// endRead.
	beginRead() int
	// endRead releases the snapshot taken by beginRead.
	endRead()
	// appendCandidates appends the live ids colliding with key in
	// repetition rep to dst (tombstoned ids already filtered, duplicates
	// across repetitions included — deduplication is the caller's job) and
	// returns the extended slice plus the number of per-layer bucket
	// lookups performed. Candidate order is the backend's canonical
	// insertion order: for the dynamic backend and its snapshots that is
	// ascending global-id order — exactly the order a static Index over
	// the same live points produces — while the sharded backends iterate
	// shard-major within a repetition (ascending global id within each
	// shard), so per-probe candidate *sets* still coincide with a
	// single-index build but the order, and anything derived from order
	// under truncation or early termination, may differ.
	appendCandidates(rep int, key uint64, dst []int32) ([]int32, int)
	// srcPoint returns the point stored under id, valid only inside a
	// beginRead..endRead window.
	srcPoint(id int) P
	// acquireSQ draws a reusable query scratch bound to this source from
	// the backend's pool; releaseSQ returns it. Used by the single-query
	// and batch entry points so steady-state serving does not allocate.
	acquireSQ() *sourceQuerier[P]
	releaseSQ(sq *sourceQuerier[P])
}

// collectDistinctOwned runs one distinct-candidate collection through a
// pooled querier and copies the result out so the caller owns it. The
// public CollectDistinct methods of every backend delegate here; the
// querier-based variants skip the copy.
func collectDistinctOwned[P any](src candidateSource[P], q P, max int) []int {
	sq := src.acquireSQ()
	res, _ := sq.collectDistinct(q, max)
	var out []int
	if len(res) > 0 {
		out = make([]int, len(res))
		copy(out, res)
	}
	src.releaseSQ(sq)
	return out
}

// streamCandidates streams one candidate scan through a pooled querier;
// the public Candidates methods of every backend delegate here.
func streamCandidates[P any](src candidateSource[P], q P, visit func(id int) bool) {
	sq := src.acquireSQ()
	sq.candidates(q, visit)
	src.releaseSQ(sq)
}

// sourceQuerier is the reusable query scratch shared by every veneer: an
// epoch-stamped visited array over the id space (deduplication without
// clearing), a candidate buffer refilled per repetition probe, a negated
// query buffer for NegateQuery-backed families, and a reusable output
// buffer. The public Querier and DynamicQuerier types wrap it.
//
// A sourceQuerier is not safe for concurrent use; use one per goroutine.
// Steady-state queries through a warmed sourceQuerier perform no heap
// allocations (the dynamic backend may grow the visited array when the id
// space grew since the querier's last use).
type sourceQuerier[P any] struct {
	src   candidateSource[P]
	pairs []core.Pair[P]
	negG  []negQueryHasher

	visited []uint32
	epoch   uint32
	out     []int
	buf     []int32
	neg     []float64
	negOK   bool
	// preKeys, when non-nil, is a rep-major pre-hashed key block installed
	// by the batch engine: gKey(i, q) reads preKeys[i*preStride+preOff]
	// instead of evaluating g_i. blockHash computes the block with the
	// exact per-repetition path gKey would take, so consuming it is
	// bit-identical to hashing inline. The batch worker clears preKeys
	// after each query.
	preKeys   []uint64
	preStride int
	preOff    int
	// stripe is this querier's metrics stripe, drawn once at construction;
	// queriers are per-goroutine, so concurrent batch workers record onto
	// distinct counter cache lines.
	stripe uint32
}

// newSourceQuerier returns a fresh scratch bound to src with a visited
// array pre-sized for n ids (it grows on demand if the id space grows).
func newSourceQuerier[P any](src candidateSource[P], n int) *sourceQuerier[P] {
	return &sourceQuerier[P]{
		src:     src,
		pairs:   src.srcPairs(),
		negG:    src.srcNegG(),
		visited: make([]uint32, n),
		stripe:  obs.NextStripe(),
	}
}

// begin opens a new query over an id space of size n: grow the visited
// array if needed and advance the epoch (clearing the array only on uint32
// wraparound).
func (sq *sourceQuerier[P]) begin(n int) {
	sq.negOK = false
	if len(sq.visited) < n {
		grown := make([]uint32, n)
		copy(grown, sq.visited)
		sq.visited = grown
	}
	sq.epoch++
	if sq.epoch == 0 {
		for i := range sq.visited {
			sq.visited[i] = 0
		}
		sq.epoch = 1
	}
}

// negateQuery fills buf with -q when q is a []float64, reporting success.
// The returned slice reuses buf's capacity so steady-state negation does
// not allocate.
func negateQuery[P any](buf []float64, q P) ([]float64, bool) {
	fq, ok := any(q).([]float64)
	if !ok {
		return buf, false
	}
	if cap(buf) < len(fq) {
		buf = make([]float64, len(fq))
	}
	buf = buf[:len(fq)]
	for i, v := range fq {
		buf[i] = -v
	}
	return buf, true
}

// prepNeg fills sq.neg with -q if q is a []float64 and reports success.
// The negation is computed at most once per query.
func (sq *sourceQuerier[P]) prepNeg(q P) bool {
	if sq.negOK {
		return true
	}
	sq.neg, sq.negOK = negateQuery(sq.neg, q)
	return sq.negOK
}

// gKey returns g_i(q), negating q once per query (into the reused scratch
// buffer) when repetition i's query hasher supports the pre-negated path.
// When the batch engine installed a pre-hashed key block the key is read
// from it instead of re-evaluated.
func (sq *sourceQuerier[P]) gKey(i int, q P) uint64 {
	if sq.preKeys != nil {
		return sq.preKeys[i*sq.preStride+sq.preOff]
	}
	if nh := sq.negG[i]; nh != nil {
		if sq.prepNeg(q) {
			return nh.HashNeg(sq.neg)
		}
	}
	return sq.pairs[i].G.Hash(q)
}

// candidates streams the live ids colliding with q, repetition by
// repetition (duplicates across repetitions included), invoking visit for
// each. If visit returns false the scan stops early.
func (sq *sourceQuerier[P]) candidates(q P, visit func(id int) bool) {
	start := time.Now()
	src := sq.src
	src.beginRead()
	defer src.endRead()
	sq.negOK = false
	var stats QueryStats
	hashEvals := 0
scan:
	for i := range sq.pairs {
		key := sq.gKey(i, q)
		hashEvals++
		buf, probes := src.appendCandidates(i, key, sq.buf[:0])
		sq.buf = buf
		stats.Probes += probes
		stats.Candidates += len(buf)
		for _, id := range buf {
			if !visit(int(id)) {
				break scan
			}
		}
	}
	sq.recordQuery(start, hashEvals, stats)
}

// collectDistinct gathers up to max distinct live candidate ids for q
// (max <= 0 means no limit), deduplicating across repetitions while
// preserving first-occurrence order. The returned slice is owned by the
// querier and valid only until its next use.
//
// Stats contract: every repetition probe that runs is counted in full —
// Probes counts its bucket lookups across all layers and Candidates all
// live ids it scanned — even when the max cutoff stops the distinct
// collection partway through the probe's buffer, so per-query stats always
// aggregate the work of whole repetitions across every segment and the
// memtable.
func (sq *sourceQuerier[P]) collectDistinct(q P, max int) ([]int, QueryStats) {
	start := time.Now()
	src := sq.src
	n := src.beginRead()
	defer src.endRead()
	sq.begin(n)
	var stats QueryStats
	hashEvals := 0
	out := sq.out[:0]
	visited := sq.visited
	epoch := sq.epoch
scan:
	for i := range sq.pairs {
		key := sq.gKey(i, q)
		hashEvals++
		buf, probes := src.appendCandidates(i, key, sq.buf[:0])
		sq.buf = buf
		stats.Probes += probes
		stats.Candidates += len(buf)
		for _, id32 := range buf {
			id := int(id32)
			if visited[id] != epoch {
				visited[id] = epoch
				out = append(out, id)
				stats.Distinct++
				if max > 0 && len(out) >= max {
					break scan
				}
			}
		}
	}
	sq.out = out
	sq.recordQuery(start, hashEvals, stats)
	return out, stats
}

// annulusQuery runs the Theorem 6.1 query algorithm against the source:
// scan candidates in repetition order, verify each with within, return the
// first hit, and give up after 8L candidates (the Markov-bound early
// termination from the proof of Theorem 6.1).
func (sq *sourceQuerier[P]) annulusQuery(q P, within func(q, x P) bool) (int, QueryStats) {
	start := time.Now()
	src := sq.src
	limit := 8 * len(sq.pairs)
	src.beginRead()
	defer src.endRead()
	sq.negOK = false
	var stats QueryStats
	res := -1
	hashEvals := 0
scan:
	for i := range sq.pairs {
		key := sq.gKey(i, q)
		hashEvals++
		buf, probes := src.appendCandidates(i, key, sq.buf[:0])
		sq.buf = buf
		stats.Probes += probes
		for _, id32 := range buf {
			stats.Candidates++
			stats.Verified++
			id := int(id32)
			if within(q, src.srcPoint(id)) {
				res = id
				break scan
			}
			if stats.Candidates >= limit {
				break scan
			}
		}
	}
	sq.recordQuery(start, hashEvals, stats)
	return res, stats
}

// appendRange runs the Theorem 6.5 reporting algorithm against the source:
// verify every distinct candidate once with inRange and append the ids
// that qualify to dst, returning the extended slice.
func (sq *sourceQuerier[P]) appendRange(dst []int, q P, inRange func(q, x P) bool) ([]int, QueryStats) {
	start := time.Now()
	src := sq.src
	n := src.beginRead()
	defer src.endRead()
	sq.begin(n)
	var stats QueryStats
	hashEvals := 0
	visited := sq.visited
	epoch := sq.epoch
	for i := range sq.pairs {
		key := sq.gKey(i, q)
		hashEvals++
		buf, probes := src.appendCandidates(i, key, sq.buf[:0])
		sq.buf = buf
		stats.Probes += probes
		stats.Candidates += len(buf)
		for _, id32 := range buf {
			id := int(id32)
			if visited[id] != epoch {
				visited[id] = epoch
				stats.Distinct++
				stats.Verified++
				if inRange(q, src.srcPoint(id)) {
					dst = append(dst, id)
				}
			}
		}
	}
	sq.recordQuery(start, hashEvals, stats)
	return dst, stats
}
