package index

import (
	"math"
	"testing"

	"dsh/internal/vec"
	"dsh/internal/workload"
	"dsh/internal/xrand"
)

func TestHyperplaneRho(t *testing.T) {
	// rho*(alpha) = (1-a^2)/(1+a^2): decreasing in alpha, -> 1 as a -> 0.
	prev := 1.0
	for _, a := range []float64{0.1, 0.3, 0.5, 0.9} {
		rho := HyperplaneRho(a)
		if rho >= prev {
			t.Errorf("rho(%v) = %v not decreasing", a, rho)
		}
		if rho <= 0 || rho >= 1 {
			t.Errorf("rho(%v) = %v out of (0,1)", a, rho)
		}
		prev = rho
	}
	if got := HyperplaneRho(0.5); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("rho(0.5) = %v, want 0.6", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("alpha out of range should panic")
		}
	}()
	HyperplaneRho(1)
}

func TestHyperplaneIndexFindsOrthogonal(t *testing.T) {
	rng := xrand.New(1)
	const d = 24
	// Plant an exactly orthogonal point among biased noise (points that
	// all have |dot| >= 0.25 would be ideal; uniform noise also works
	// since d is moderate: typical |dot| ~ 1/sqrt(24) ~ 0.2).
	ds := workload.NewPlantedSphere(rng, d, 800, []float64{0})
	found := 0
	const reps = 6
	for i := 0; i < reps; i++ {
		hi := NewHyperplane(rng, d, 0.15, 1.4, ds.Points)
		id, _ := hi.Query(ds.Query)
		if id >= 0 {
			if got := math.Abs(vec.Dot(ds.Query, ds.Points[id])); got > 0.15 {
				t.Fatalf("returned point with |dot| = %v > alpha", got)
			}
			found++
		}
	}
	if found < 2 {
		t.Errorf("orthogonal point found only %d/%d times", found, reps)
	}
}

func TestHyperplaneValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("alpha=0 should panic")
		}
	}()
	NewHyperplane(xrand.New(1), 8, 0, 2, nil)
}
