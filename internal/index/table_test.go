package index

import (
	"reflect"
	"sync"
	"testing"

	"dsh/internal/bitvec"
	"dsh/internal/core"
	"dsh/internal/euclid"
	"dsh/internal/hamming"
	"dsh/internal/sphere"
	"dsh/internal/vec"
	"dsh/internal/workload"
	"dsh/internal/xrand"
)

// refTables rebuilds the map-based reference layout from an index's
// sampled pairs: exactly what New stored before the flat-table layout.
func refTables[P any](ix *Index[P]) []map[uint64][]int32 {
	tables := make([]map[uint64][]int32, ix.L())
	for i, pair := range ix.pairs {
		table := make(map[uint64][]int32)
		for j, p := range ix.points {
			key := pair.H.Hash(p)
			table[key] = append(table[key], int32(j))
		}
		tables[i] = table
	}
	return tables
}

// refCandidates streams the reference candidate sequence (order and
// duplicates included) for q against the map layout.
func refCandidates[P any](ix *Index[P], tables []map[uint64][]int32, q P) []int {
	var out []int
	for i, pair := range ix.pairs {
		key := pair.G.Hash(q)
		for _, id := range tables[i][key] {
			out = append(out, int(id))
		}
	}
	return out
}

// refCollectDistinct is the original map-based CollectDistinct.
func refCollectDistinct(seq []int, max int) []int {
	seen := make(map[int]struct{})
	var out []int
	for _, id := range seq {
		if _, dup := seen[id]; !dup {
			seen[id] = struct{}{}
			out = append(out, id)
		}
		if max > 0 && len(out) >= max {
			break
		}
	}
	return out
}

func TestFlatTableMatchesMapReference(t *testing.T) {
	rng := xrand.New(101)
	for _, n := range []int{0, 1, 7, 100, 1000} {
		// Keys drawn from a small universe so buckets hold many ids and
		// open addressing sees plenty of probe collisions.
		keys := make([]uint64, n)
		for j := range keys {
			keys[j] = rng.Uint64() % 37
		}
		table := buildFlatTable(keys)
		ref := make(map[uint64][]int32)
		for j, key := range keys {
			ref[key] = append(ref[key], int32(j))
		}
		if table.buckets() != len(ref) {
			t.Fatalf("n=%d: %d buckets, want %d", n, table.buckets(), len(ref))
		}
		for key, want := range ref {
			if got := table.lookup(key); !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d key=%d: lookup %v, want %v", n, key, got, want)
			}
		}
		for probe := uint64(0); probe < 64; probe++ {
			key := rng.Uint64()
			if got := table.lookup(key); !reflect.DeepEqual(got, ref[key]) {
				t.Fatalf("n=%d absent key=%d: lookup %v, want %v", n, key, got, ref[key])
			}
		}
	}
}

func TestU64SetMatchesMap(t *testing.T) {
	rng := xrand.New(102)
	set := newU64Set(4)
	ref := make(map[uint64]struct{})
	for i := 0; i < 20000; i++ {
		key := rng.Uint64() % 5000 // force duplicates and growth
		_, dup := ref[key]
		ref[key] = struct{}{}
		if got := set.add(key); got == dup {
			t.Fatalf("add(%d) = %v, want %v", key, got, !dup)
		}
	}
	if set.n != len(ref) {
		t.Fatalf("set holds %d keys, want %d", set.n, len(ref))
	}
}

// TestCandidatesMatchMapReference is the differential test: across
// Hamming, sphere, and Euclidean families, the flat layout must visit id
// sequences identical (same order, same duplicates) to the map-based
// reference, and CollectDistinct must match the map-based dedup exactly.
func TestCandidatesMatchMapReference(t *testing.T) {
	const n, nq, L = 600, 40, 24

	t.Run("hamming", func(t *testing.T) {
		rng := xrand.New(201)
		const d = 128
		pts := make([]bitvec.Vector, n)
		for i := range pts {
			pts[i] = bitvec.Random(rng, d)
		}
		fam := core.Power[bitvec.Vector](hamming.BitSampling(d), 6)
		ix := New(rng, fam, L, pts)
		queries := make([]bitvec.Vector, nq)
		for i := range queries {
			queries[i] = bitvec.AtDistance(rng, pts[i], d/8)
		}
		diffCheck(t, ix, queries)
	})

	t.Run("sphere-negated", func(t *testing.T) {
		rng := xrand.New(202)
		const d = 24
		pts := workload.SpherePoints(rng, n, d)
		// NegateQuery exercises the HashNeg hoisting on the query side.
		fam := core.Power[[]float64](sphere.NegateQuery(sphere.SimHash(d)), 4)
		ix := New(rng, fam, L, pts)
		queries := workload.SpherePoints(rng, nq, d)
		diffCheck(t, ix, queries)
	})

	t.Run("sphere-annulus", func(t *testing.T) {
		rng := xrand.New(203)
		const d = 24
		pts := workload.SpherePoints(rng, n, d)
		fam := sphere.NewAnnulus(d, 0.5, 1.6)
		ix := New(rng, fam, L, pts)
		queries := workload.SpherePoints(rng, nq, d)
		diffCheck(t, ix, queries)
	})

	t.Run("euclid", func(t *testing.T) {
		rng := xrand.New(204)
		const d = 16
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = vec.Gaussian(rng, d)
		}
		fam := euclid.NewPStable(d, 2, 1.5)
		ix := New(rng, fam, L, pts)
		queries := make([][]float64, nq)
		for i := range queries {
			queries[i] = vec.Gaussian(rng, d)
		}
		diffCheck(t, ix, queries)
	})
}

// diffCheck compares the flat index's Candidates stream, Querier stream,
// and CollectDistinct output against the map-based reference for every
// query.
func diffCheck[P any](t *testing.T, ix *Index[P], queries []P) {
	t.Helper()
	tables := refTables(ix)
	qr := ix.NewQuerier()
	for qi, q := range queries {
		want := refCandidates(ix, tables, q)

		var got []int
		ix.Candidates(q, func(id int) bool { got = append(got, id); return true })
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("query %d: Candidates stream diverges from map reference\ngot  %v\nwant %v", qi, got, want)
		}

		got = got[:0]
		qr.Candidates(q, func(id int) bool { got = append(got, id); return true })
		if len(got) != len(want) {
			t.Fatalf("query %d: Querier.Candidates length %d, want %d", qi, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %d: Querier.Candidates diverges at %d: %d != %d", qi, i, got[i], want[i])
			}
		}

		for _, max := range []int{0, 1, 3, len(want)} {
			wantDistinct := refCollectDistinct(want, max)
			if gotDistinct := ix.CollectDistinct(q, max); !reflect.DeepEqual(gotDistinct, wantDistinct) {
				t.Fatalf("query %d max=%d: CollectDistinct %v, want %v", qi, max, gotDistinct, wantDistinct)
			}
			qrDistinct, stats := qr.CollectDistinct(q, max)
			if len(qrDistinct) != len(wantDistinct) {
				t.Fatalf("query %d max=%d: Querier.CollectDistinct length %d, want %d", qi, max, len(qrDistinct), len(wantDistinct))
			}
			for i := range qrDistinct {
				if qrDistinct[i] != wantDistinct[i] {
					t.Fatalf("query %d max=%d: Querier.CollectDistinct diverges at %d", qi, max, i)
				}
			}
			if stats.Distinct != len(wantDistinct) {
				t.Fatalf("query %d max=%d: stats.Distinct=%d, want %d", qi, max, stats.Distinct, len(wantDistinct))
			}
		}
	}
}

// TestQueryPathZeroAlloc asserts the acceptance criterion directly:
// steady-state queries through a Querier perform zero heap allocations on
// a Hamming bit-sampling index, for the distinct-collection, annulus, and
// range-reporting paths.
func TestQueryPathZeroAlloc(t *testing.T) {
	rng := xrand.New(301)
	const d, n, L = 256, 4000, 48
	pts := make([]bitvec.Vector, n)
	for i := range pts {
		pts[i] = bitvec.Random(rng, d)
	}
	fam := core.Power[bitvec.Vector](hamming.BitSampling(d), 8)
	q := bitvec.AtDistance(rng, pts[0], d/16)

	ix := New(rng, fam, L, pts)
	qr := ix.NewQuerier()
	qr.CollectDistinct(q, 0) // warm the output buffer
	if allocs := testing.AllocsPerRun(100, func() { qr.CollectDistinct(q, 0) }); allocs != 0 {
		t.Errorf("Querier.CollectDistinct allocates %.1f/op, want 0", allocs)
	}

	within := func(a, b bitvec.Vector) bool { return bitvec.Distance(a, b) <= d/8 }
	ai := NewAnnulus(rng, fam, L, pts, within)
	aqr := ai.Index().NewQuerier()
	ai.QueryWith(aqr, q)
	if allocs := testing.AllocsPerRun(100, func() { ai.QueryWith(aqr, q) }); allocs != 0 {
		t.Errorf("AnnulusIndex.QueryWith allocates %.1f/op, want 0", allocs)
	}

	rr := NewRangeReporter(rng, fam, L, pts, within)
	rqr := rr.Index().NewQuerier()
	dst, _ := rr.AppendQueryWith(rqr, nil, q)
	dst = dst[:0]
	if allocs := testing.AllocsPerRun(100, func() { dst, _ = rr.AppendQueryWith(rqr, dst[:0], q) }); allocs != 0 {
		t.Errorf("RangeReporter.AppendQueryWith allocates %.1f/op, want 0", allocs)
	}
}

// TestNegatedQueryHoistZeroAlloc checks that NegateQuery-backed sphere
// indexes hash the negated query once per query into reused scratch: the
// steady-state Querier path stays allocation-free despite the asymmetric
// query hasher.
func TestNegatedQueryHoistZeroAlloc(t *testing.T) {
	rng := xrand.New(302)
	const d, n, L = 24, 2000, 32
	pts := workload.SpherePoints(rng, n, d)
	for name, fam := range map[string]core.Family[[]float64]{
		"plain": sphere.NegateQuery(sphere.SimHash(d)),
		// Amplification must not strip the fast path: Concat/Power
		// forward HashNeg when every component supports it.
		"powered": core.Power[[]float64](sphere.NegateQuery(sphere.SimHash(d)), 4),
	} {
		ix := New(rng, fam, L, pts)
		if got := len(ix.negG); got != L {
			t.Fatalf("%s: negG not frozen: len=%d", name, got)
		}
		for i, nh := range ix.negG {
			if nh == nil {
				t.Fatalf("%s: repetition %d lost the HashNeg fast path", name, i)
			}
		}
		q := vec.RandomUnit(rng, d)
		qr := ix.NewQuerier()
		qr.CollectDistinct(q, 0)
		if allocs := testing.AllocsPerRun(100, func() { qr.CollectDistinct(q, 0) }); allocs != 0 {
			t.Errorf("%s: negated-query CollectDistinct allocates %.1f/op, want 0", name, allocs)
		}
	}
}

// TestBatchPooledScratchRace hammers the pooled Querier scratch from
// concurrent batch and single-query paths at once; run under -race this
// verifies the scratch objects are never shared between goroutines, and
// the results must still match the sequential reference.
func TestBatchPooledScratchRace(t *testing.T) {
	rng := xrand.New(303)
	const d, n, nq, L = 24, 800, 64, 20
	pts := workload.SpherePoints(rng, n, d)
	fam := core.Power[[]float64](sphere.NegateQuery(sphere.SimHash(d)), 2)
	ix := New(rng, fam, L, pts)
	queries := workload.SpherePoints(rng, nq, d)

	want := make([][]int, nq)
	for i, q := range queries {
		want[i] = ix.CollectDistinct(q, 0)
	}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, _, _ := ix.QueryBatch(queries, BatchOptions{Workers: 8})
			for i := range out {
				if !reflect.DeepEqual(out[i], want[i]) {
					t.Errorf("concurrent QueryBatch diverges at query %d", i)
					return
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, q := range queries {
				if got := ix.CollectDistinct(q, 0); !reflect.DeepEqual(got, want[i]) {
					t.Errorf("concurrent CollectDistinct diverges at query %d", i)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestRangeReporterBatchMatchesSequential pins the batch range-reporting
// path (per-worker Querier scratch) to the sequential Query results.
func TestRangeReporterBatchMatchesSequential(t *testing.T) {
	rng := xrand.New(304)
	const d, n, nq = 24, 500, 48
	pts := workload.SpherePoints(rng, n, d)
	fam := sphere.NewStep(d, 0.6, 0.9, 3, 1.5)
	inRange := func(q, x []float64) bool { return vec.Dot(q, x) >= 0.6 }
	rr := NewRangeReporter(rng, fam, 16, pts, inRange)
	queries := workload.SpherePoints(rng, nq, d)

	wantIDs := make([][]int, nq)
	wantStats := make([]QueryStats, nq)
	for i, q := range queries {
		wantIDs[i], wantStats[i] = rr.Query(q)
	}
	for _, workers := range []int{1, 4} {
		gotIDs, per, _ := rr.QueryBatch(queries, BatchOptions{Workers: workers})
		for i := range gotIDs {
			if !reflect.DeepEqual(gotIDs[i], wantIDs[i]) {
				t.Fatalf("workers=%d query %d: batch ids %v, want %v", workers, i, gotIDs[i], wantIDs[i])
			}
			per[i].Latency = 0
			if per[i] != wantStats[i] {
				t.Fatalf("workers=%d query %d: batch stats %+v, want %+v", workers, i, per[i], wantStats[i])
			}
		}
	}
}
