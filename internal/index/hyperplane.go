package index

import (
	"math"

	"dsh/internal/core"
	"dsh/internal/sphere"
	"dsh/internal/vec"
	"dsh/internal/xrand"
)

// HyperplaneIndex answers hyperplane queries (Section 6.1 of the paper):
// given a query vector q (the normal of a hyperplane), find a data point
// approximately *orthogonal* to q, i.e. with |<x, q>| <= alpha. This is
// the annulus-search special case centered at inner product 0, previously
// handled by the ad-hoc constructions of Vijayanarasimhan et al. that the
// paper's lower bound shows to be near-optimal.
type HyperplaneIndex struct {
	inner *AnnulusIndex[[]float64]
	alpha float64
}

// NewHyperplane builds the structure over unit vectors: a query returns a
// point with |<x, q>| <= alpha (if one exists, with the Theorem 6.1
// constant success probability). t controls the sharpness of the
// underlying filter family; 1.5-2.5 is a practical range.
func NewHyperplane(rng *xrand.Rand, d int, alpha, t float64, points [][]float64) *HyperplaneIndex {
	if alpha <= 0 || alpha >= 1 {
		panic("index: hyperplane tolerance must lie in (0, 1)")
	}
	fam := sphere.NewAnnulus(d, 0, t)
	L := RepetitionsForCPF(fam.CPF().Eval(0))
	within := func(q, x []float64) bool {
		return math.Abs(vec.Dot(q, x)) <= alpha
	}
	return &HyperplaneIndex{
		inner: NewAnnulus[[]float64](rng, fam, L, points, within),
		alpha: alpha,
	}
}

// Query returns the id of a point with |<x, q>| <= alpha, or -1.
func (hi *HyperplaneIndex) Query(q []float64) (int, QueryStats) {
	return hi.inner.Query(q)
}

// NewQuerier returns a reusable query scratch bound to the underlying
// index, for callers that drive many sequential queries through QueryWith.
func (hi *HyperplaneIndex) NewQuerier() *Querier[[]float64] {
	return hi.inner.Index().NewQuerier()
}

// QueryWith is Query with an explicit Querier, avoiding the internal
// scratch pool on the hot path.
func (hi *HyperplaneIndex) QueryWith(qr *Querier[[]float64], q []float64) (int, QueryStats) {
	return hi.inner.QueryWith(qr, q)
}

// Alpha returns the orthogonality tolerance.
func (hi *HyperplaneIndex) Alpha() float64 { return hi.alpha }

// L returns the repetition count of the underlying index.
func (hi *HyperplaneIndex) L() int { return hi.inner.Index().L() }

// HyperplaneRho returns the paper's exponent for hyperplane queries with
// guarantee band [-alpha, alpha]: rho* = (1 - alpha^2) / (1 + alpha^2)
// (Section 6.1). Sublinear query time for every alpha > 0.
func HyperplaneRho(alpha float64) float64 {
	if alpha <= 0 || alpha >= 1 {
		panic("index: alpha out of (0, 1)")
	}
	return (1 - alpha*alpha) / (1 + alpha*alpha)
}

var _ core.Family[[]float64] = (*sphere.AnnulusFamily)(nil)
