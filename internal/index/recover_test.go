package index

import (
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"

	"dsh/internal/durable"
	"dsh/internal/workload"
	"dsh/internal/xrand"
)

// recoverQueries is the shared probe set for recovery comparisons.
func recoverQueries(n int) [][]float64 {
	return workload.SpherePoints(xrand.New(971), n, testDim)
}

// requireSameServing asserts that two indexes serve identically: same
// live count, same candidate stream for every probe, and same stored
// point under every live id.
func requireSameServing(t *testing.T, want, got *DynamicIndex[[]float64]) {
	t.Helper()
	if want.Len() != got.Len() {
		t.Fatalf("live count diverged: want %d, got %d", want.Len(), got.Len())
	}
	for qi, q := range recoverQueries(24) {
		w := want.CollectDistinct(q, 0)
		g := got.CollectDistinct(q, 0)
		if !reflect.DeepEqual(w, g) {
			t.Fatalf("query %d candidate stream diverged:\nwant %v\ngot  %v", qi, w, g)
		}
	}
	bound := len(want.points)
	if gb := len(got.points); gb != bound {
		t.Fatalf("id bound diverged: want %d, got %d", bound, gb)
	}
	for id := 0; id < bound; id++ {
		if want.Deleted(id) != got.Deleted(id) {
			t.Fatalf("tombstone for id %d diverged", id)
		}
		if want.Deleted(id) {
			continue
		}
		if !reflect.DeepEqual(want.Point(id), got.Point(id)) {
			t.Fatalf("point %d diverged after recovery", id)
		}
	}
}

// TestRecoverCleanShutdownZeroHashes is the tentpole acceptance test:
// after a clean Close, OpenDynamic rebuilds the exact serving state — and
// the counting family proves recovery performs zero hash evaluations on
// points (manifest + segment files + retained key columns carry
// everything).
func TestRecoverCleanShutdownZeroHashes(t *testing.T) {
	dir := t.TempDir()
	const seed, L, n = 41, 8, 700
	fam := countingFamily{inner: dynamicFamily(), hCalls: &atomic.Int64{}, gCalls: &atomic.Int64{}}
	pts := workload.SpherePoints(xrand.New(701), n, testDim)

	dx, err := NewDurableDynamic[[]float64](dir, seed, fam, L, durable.Float64Codec{},
		DynamicOptions{MemtableThreshold: 64, Policy: CompactLeveled}, durable.Options{Fsync: durable.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		dx.Insert(p)
	}
	for id := 0; id < n; id += 3 {
		dx.Delete(id)
	}
	dx.Compact() // leveled GC: renumbers ids, journals a gcRemap record
	for _, p := range pts[:50] {
		dx.Insert(p)
	}
	dx.Close()
	if err := dx.DurableErr(); err != nil {
		t.Fatalf("durable error after clean close: %v", err)
	}

	rfam := countingFamily{inner: dynamicFamily(), hCalls: &atomic.Int64{}, gCalls: &atomic.Int64{}}
	rx, err := OpenDynamic[[]float64](dir, rfam, durable.Float64Codec{},
		DynamicOptions{MemtableThreshold: 64, Policy: CompactLeveled}, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	if h := rfam.hCalls.Load(); h != 0 {
		t.Fatalf("recovery evaluated %d data-side hashes, want 0", h)
	}
	if g := rfam.gCalls.Load(); g != 0 {
		t.Fatalf("recovery evaluated %d query-side hashes, want 0", g)
	}
	requireSameServing(t, dx, rx)

	// The recovered index must also match a static rebuild over the
	// survivors: after the GC dropped every tombstone, live ids are dense,
	// so a static Index over the live points (same family draws) serves the
	// identical candidate stream.
	rx.Compact()
	live := make([][]float64, 0, rx.Len())
	for id := 0; id < len(rx.points); id++ {
		if !rx.Deleted(id) {
			live = append(live, rx.Point(id))
		}
	}
	static := New[[]float64](xrand.New(seed), dynamicFamily(), L, live)
	for qi, q := range recoverQueries(24) {
		if w, g := static.CollectDistinct(q, 0), rx.CollectDistinct(q, 0); !reflect.DeepEqual(w, g) {
			t.Fatalf("query %d diverged from static rebuild:\nwant %v\ngot  %v", qi, w, g)
		}
	}
}

// TestRecoverWALTailWithoutClose drops the index without Close (the
// manifest never advances past creation) and recovers everything from the
// WAL alone — the pure log-replay path, including keyed upserts and
// deletes.
func TestRecoverWALTailWithoutClose(t *testing.T) {
	dir := t.TempDir()
	const seed, L, n = 43, 6, 300
	pts := workload.SpherePoints(xrand.New(703), n, testDim)

	dx, err := NewDurableDynamic[[]float64](dir, seed, dynamicFamily(), L, durable.Float64Codec{},
		DynamicOptions{MemtableThreshold: 32}, durable.Options{Fsync: durable.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		dx.InsertKeyed(uint64(i%100), p) // heavy upserts: 3 versions per key
	}
	for k := uint64(0); k < 100; k += 4 {
		dx.DeleteKeyed(k)
	}
	// No Close: the open WAL file holds the whole history (FsyncAlways).

	rx, err := OpenDynamic[[]float64](dir, dynamicFamily(), durable.Float64Codec{},
		DynamicOptions{MemtableThreshold: 32}, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	requireSameServing(t, dx, rx)
	for k := uint64(0); k < 100; k++ {
		wid, wok := dx.LookupKey(k)
		gid, gok := rx.LookupKey(k)
		if wok != gok || wid != gid {
			t.Fatalf("key %d diverged: want (%d,%v), got (%d,%v)", k, wid, wok, gid, gok)
		}
	}
}

// TestRecoverAfterPersistSkipsBufferedDeletes exercises the watermark
// contract: records below the manifest's watermark must not replay twice,
// and buffered-region deletes (already folded into the manifest bitmap)
// must be skipped rather than re-applied.
func TestRecoverAfterPersistSkipsBufferedDeletes(t *testing.T) {
	dir := t.TempDir()
	const seed, L = 47, 6
	pts := workload.SpherePoints(xrand.New(705), 200, testDim)

	dx, err := NewDurableDynamic[[]float64](dir, seed, dynamicFamily(), L, durable.Float64Codec{},
		DynamicOptions{MemtableThreshold: 64}, durable.Options{Fsync: durable.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts[:150] {
		dx.Insert(p)
	}
	for id := 0; id < 150; id += 5 {
		dx.Delete(id)
	}
	if err := dx.Persist(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint tail: lives only in the fresh WAL.
	for _, p := range pts[150:] {
		dx.Insert(p)
	}
	dx.Delete(3) // double-delete across the checkpoint: must stay a no-op
	dx.Delete(160)

	rx, err := OpenDynamic[[]float64](dir, dynamicFamily(), durable.Float64Codec{},
		DynamicOptions{MemtableThreshold: 64}, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	requireSameServing(t, dx, rx)
}

// TestRecoverSharded checks per-shard durability: a hash-routed sharded
// index persists each shard into its own subdirectory, recovers them in
// parallel with zero hash evaluations, and resumes with identical keyed
// serving state.
func TestRecoverSharded(t *testing.T) {
	dir := t.TempDir()
	const seed, L, K, n = 53, 6, 4, 400
	fam := countingFamily{inner: dynamicFamily(), hCalls: &atomic.Int64{}, gCalls: &atomic.Int64{}}
	pts := workload.SpherePoints(xrand.New(707), n, testDim)

	sx, err := NewDurableSharded[[]float64](dir, seed, fam, L, durable.Float64Codec{},
		ShardOptions{Shards: K, Routing: RouteHash, Dynamic: DynamicOptions{MemtableThreshold: 32}},
		durable.Options{Fsync: durable.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		sx.InsertKeyed(uint64(i%250), p)
	}
	for k := uint64(0); k < 250; k += 7 {
		sx.DeleteKeyed(k)
	}
	if err := sx.Persist(); err != nil {
		t.Fatal(err)
	}
	for i, p := range pts[:60] {
		sx.InsertKeyed(uint64(1000+i), p)
	}
	// No Close: recovery replays each shard's WAL tail.

	rfam := countingFamily{inner: dynamicFamily(), hCalls: &atomic.Int64{}, gCalls: &atomic.Int64{}}
	rx, err := OpenSharded[[]float64](dir, rfam, durable.Float64Codec{},
		DynamicOptions{MemtableThreshold: 32}, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	if h := rfam.hCalls.Load(); h != 0 {
		t.Fatalf("sharded recovery evaluated %d data-side hashes, want 0", h)
	}
	if rx.Shards() != K {
		t.Fatalf("recovered %d shards, want %d", rx.Shards(), K)
	}
	if sx.Len() != rx.Len() {
		t.Fatalf("live count diverged: want %d, got %d", sx.Len(), rx.Len())
	}
	for k := uint64(0); k < 1100; k++ {
		wid, wok := sx.LookupKey(k)
		gid, gok := rx.LookupKey(k)
		if wok != gok || (wok && wid != gid) {
			t.Fatalf("key %d diverged: want (%d,%v), got (%d,%v)", k, wid, wok, gid, gok)
		}
	}
	for qi, q := range recoverQueries(16) {
		if w, g := sx.CollectDistinct(q, 0), rx.CollectDistinct(q, 0); !reflect.DeepEqual(w, g) {
			t.Fatalf("query %d candidate stream diverged:\nwant %v\ngot  %v", qi, w, g)
		}
	}

	// Round-robin insert on the recovered index must keep working from the
	// restored cursor without panicking id arithmetic (hash-routed here, so
	// exercise the keyed path again instead).
	rx.InsertKeyed(9999, pts[0])
	if _, ok := rx.LookupKey(9999); !ok {
		t.Fatal("insert after sharded recovery not visible")
	}
}

// TestOpenRejectsWrongKind makes sure the two Open entry points refuse
// each other's directories instead of mis-reading them.
func TestOpenRejectsWrongKind(t *testing.T) {
	dynDir := filepath.Join(t.TempDir(), "dyn")
	dx, err := NewDurableDynamic[[]float64](dynDir, 1, dynamicFamily(), 4, durable.Float64Codec{},
		DynamicOptions{}, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dx.Close()
	if _, err := OpenSharded[[]float64](dynDir, dynamicFamily(), durable.Float64Codec{}, DynamicOptions{}, durable.Options{}); err == nil {
		t.Fatal("OpenSharded accepted an unsharded directory")
	}
	if _, err := OpenDynamic[[]float64](t.TempDir(), dynamicFamily(), durable.Float64Codec{}, DynamicOptions{}, durable.Options{}); err == nil {
		t.Fatal("OpenDynamic accepted an empty directory")
	}
	if _, err := NewDurableDynamic[[]float64](dynDir, 1, dynamicFamily(), 4, durable.Float64Codec{}, DynamicOptions{}, durable.Options{}); err == nil {
		t.Fatal("NewDurableDynamic overwrote an existing store")
	}
}
