// Query veneers: the Section 6 search structures written once over the
// candidateSource core and instantiated over either backend. A veneer
// holds no storage of its own — it binds a predicate to a source, so the
// same AnnulusIndex/RangeReporter type serves a frozen Index and a
// churning DynamicIndex with identical semantics (and, for identical live
// points and rng streams, identical results).
package index

import (
	"dsh/internal/core"
	"dsh/internal/xrand"
)

// Source is the exported handle to a serving backend: anything
// implementing the candidateSource core — *Index, *DynamicIndex,
// *ShardedIndex, *Snapshot, *ShardedSnapshot — satisfies it. Callers
// cannot implement Source themselves (its methods are unexported); they
// obtain one from this package and hand it to NewAnnulusOver or
// NewRangeReporterOver to bind a predicate veneer to any backend,
// including point-in-time snapshots.
type Source[P any] interface {
	candidateSource[P]
}

// NewAnnulusOver wraps any serving backend — static, dynamic, sharded, or
// a snapshot of either — in the Theorem 6.1 annulus-search algorithm. The
// veneer shares the backend's storage (mutations on a live backend are
// visible to subsequent queries immediately; a snapshot backend stays
// pinned) and inherits its concurrency contract. NewAnnulusOver panics
// when src is nil.
func NewAnnulusOver[P any](src Source[P], within func(q, x P) bool) *AnnulusIndex[P] {
	if src == nil {
		panic("index: source must be non-nil")
	}
	return &AnnulusIndex[P]{src: src, within: within}
}

// NewRangeReporterOver wraps any serving backend — static, dynamic,
// sharded, or a snapshot of either — in the Theorem 6.5 reporting
// algorithm; see NewAnnulusOver for the sharing and concurrency contract.
// NewRangeReporterOver panics when src is nil.
func NewRangeReporterOver[P any](src Source[P], inRange func(q, x P) bool) *RangeReporter[P] {
	if src == nil {
		panic("index: source must be non-nil")
	}
	return &RangeReporter[P]{src: src, inRange: inRange}
}

// AnnulusIndex solves the approximate annulus search problem of
// Theorem 6.1: given a family whose CPF peaks inside the target interval,
// a query retrieves collision candidates and returns the first whose
// distance lies in the report interval, scanning at most 8L candidates.
//
// An AnnulusIndex is safe for concurrent use whenever its backend is: the
// static backend is immutable, and the dynamic backend may absorb
// concurrent Inserts, Deletes and compactions while queries run. The
// within predicate is called inside the query's read window — over a
// dynamic backend it must not call back into the index's mutating or
// locking methods (Insert, Delete, Flush, Compact, Len, Point, ...), or
// the query deadlocks; compare points using only the two arguments.
type AnnulusIndex[P any] struct {
	src candidateSource[P]
	// within reports whether a candidate point lies in the *report*
	// interval [beta-, beta+] relative to the query.
	within func(q, x P) bool
}

// NewAnnulus builds the Theorem 6.1 structure over a fresh static index:
// family should have a CPF peaking inside the target interval;
// L = ceil(1/f(peak)) repetitions; within decides membership in the report
// interval.
func NewAnnulus[P any](rng *xrand.Rand, family core.Family[P], L int, points []P, within func(q, x P) bool) *AnnulusIndex[P] {
	return &AnnulusIndex[P]{src: New(rng, family, L, points), within: within}
}

// NewDynamicAnnulus wraps an existing DynamicIndex in the Theorem 6.1
// query algorithm. The veneer shares the backend's storage: Inserts,
// Deletes and compactions through dx are visible to subsequent queries
// immediately, and several veneers may wrap one backend.
func NewDynamicAnnulus[P any](dx *DynamicIndex[P], within func(q, x P) bool) *AnnulusIndex[P] {
	if dx == nil {
		panic("index: dynamic index must be non-nil")
	}
	return &AnnulusIndex[P]{src: dx, within: within}
}

// Query returns the id of some point within the report interval of q, or
// -1 if none was found among the first 8L candidates (the Markov-bound
// early termination from the proof of Theorem 6.1). Safe for concurrent
// use whenever the backend is (it draws per-query scratch from the
// backend's pool and runs inside one consistent read window, so it may
// overlap mutations, freezes and compactions on a dynamic backend).
func (ai *AnnulusIndex[P]) Query(q P) (int, QueryStats) {
	sq := ai.src.acquireSQ()
	id, stats := sq.annulusQuery(q, ai.within)
	ai.src.releaseSQ(sq)
	return id, stats
}

// QueryWith is Query with an explicit Querier, for callers over a static
// backend that manage their own per-goroutine scratch. The steady state
// allocates nothing. The Querier is not safe for concurrent use: callers
// serialize access to it (one per goroutine).
func (ai *AnnulusIndex[P]) QueryWith(qr *Querier[P], q P) (int, QueryStats) {
	if qr.src != ai.src {
		panic("index: Querier bound to a different index")
	}
	return qr.annulusQuery(q, ai.within)
}

// Index exposes the static backend (for inspection in experiments), or
// nil when the veneer is backed by any other source.
func (ai *AnnulusIndex[P]) Index() *Index[P] {
	ix, _ := ai.src.(*Index[P])
	return ix
}

// Dynamic exposes the dynamic backend, or nil when the veneer is backed
// by any other source.
func (ai *AnnulusIndex[P]) Dynamic() *DynamicIndex[P] {
	dx, _ := ai.src.(*DynamicIndex[P])
	return dx
}

// Source exposes the veneer's backend as a Source handle, whichever
// concrete backend it is.
func (ai *AnnulusIndex[P]) Source() Source[P] { return ai.src }

// RangeReporter solves approximate spherical range reporting
// (Theorem 6.5): report every point within the target range of the query,
// each with probability >= 1 - (1-fmin)^L, verifying candidates and
// deduplicating across repetitions.
//
// A RangeReporter is safe for concurrent use whenever its backend is, and
// its inRange predicate runs inside the query's read window — over a
// dynamic backend it must not call back into the index; see AnnulusIndex.
type RangeReporter[P any] struct {
	src candidateSource[P]
	// inRange reports whether x lies within the report radius r+ of q.
	inRange func(q, x P) bool
}

// NewRangeReporter builds the reporting structure over a fresh static
// index with L = ceil(1/fmin) repetitions, where fmin is the minimum CPF
// value over the target range.
func NewRangeReporter[P any](rng *xrand.Rand, family core.Family[P], L int, points []P, inRange func(q, x P) bool) *RangeReporter[P] {
	return &RangeReporter[P]{src: New(rng, family, L, points), inRange: inRange}
}

// NewDynamicRangeReporter wraps an existing DynamicIndex in the
// Theorem 6.5 reporting algorithm; mutations through dx are visible to
// subsequent queries immediately.
func NewDynamicRangeReporter[P any](dx *DynamicIndex[P], inRange func(q, x P) bool) *RangeReporter[P] {
	if dx == nil {
		panic("index: dynamic index must be non-nil")
	}
	return &RangeReporter[P]{src: dx, inRange: inRange}
}

// Query returns the distinct ids of reported points within range of q.
// Every candidate is verified once, so the work is Probes bucket lookups
// plus Distinct distance evaluations. The returned slice is owned by the
// caller; AppendQuery is the allocation-free variant.
func (rr *RangeReporter[P]) Query(q P) ([]int, QueryStats) {
	return rr.AppendQuery(nil, q)
}

// AppendQuery appends the distinct ids of reported points within range of
// q to dst and returns the extended slice. Reusing dst across queries
// makes the steady-state reporting path allocation-free. Safe for
// concurrent use whenever the backend is, provided each goroutine passes
// its own dst; see AnnulusIndex.Query for the read-window contract.
func (rr *RangeReporter[P]) AppendQuery(dst []int, q P) ([]int, QueryStats) {
	sq := rr.src.acquireSQ()
	dst, stats := sq.appendRange(dst, q, rr.inRange)
	rr.src.releaseSQ(sq)
	return dst, stats
}

// AppendQueryWith is AppendQuery with an explicit Querier, for callers
// over a static backend that manage their own per-goroutine scratch; the
// Querier is not safe for concurrent use.
func (rr *RangeReporter[P]) AppendQueryWith(qr *Querier[P], dst []int, q P) ([]int, QueryStats) {
	if qr.src != rr.src {
		panic("index: Querier bound to a different index")
	}
	return qr.appendRange(dst, q, rr.inRange)
}

// Index exposes the static backend, or nil when the veneer is backed by
// any other source.
func (rr *RangeReporter[P]) Index() *Index[P] {
	ix, _ := rr.src.(*Index[P])
	return ix
}

// Dynamic exposes the dynamic backend, or nil when the veneer is backed
// by any other source.
func (rr *RangeReporter[P]) Dynamic() *DynamicIndex[P] {
	dx, _ := rr.src.(*DynamicIndex[P])
	return dx
}

// Source exposes the veneer's backend as a Source handle, whichever
// concrete backend it is.
func (rr *RangeReporter[P]) Source() Source[P] { return rr.src }
