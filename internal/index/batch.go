package index

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dsh/internal/obs"
	"dsh/internal/stats"
	"dsh/internal/xrand"
)

// sortedQuantile reads the q-th quantile off an already sorted sample with
// the same linear interpolation as stats.Quantile.
func sortedQuantile(sorted []float64, q float64) float64 {
	pos := q * float64(len(sorted)-1)
	i := int(pos)
	if i >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(i)
	return sorted[i]*(1-frac) + sorted[i+1]*frac
}

// BatchOptions configures a concurrent batch query.
type BatchOptions struct {
	// Workers is the number of concurrent workers; values <= 0 mean
	// GOMAXPROCS.
	Workers int
	// MaxCandidates caps the number of distinct candidates collected per
	// query by Index.QueryBatch (<= 0 means no limit). The other batch
	// entry points ignore it.
	MaxCandidates int
	// NoBlockHash disables the repetition-blocked batch pre-hash in the
	// distinct-candidate and range-reporting batch paths. By default those
	// paths hash the whole query block against one repetition's draws at a
	// time before any probing starts (using core.BatchHasher when the
	// family's query hasher implements it), which keeps each repetition's
	// parameters cache-resident across the block; results and stats are
	// bit-identical either way. Per-query Latency excludes the shared
	// pre-hash; Wall (and therefore QPS) includes it. The annulus batch
	// path never pre-hashes: its 8L early termination usually stops after
	// a few repetitions, so hashing all L up front would be wasted work.
	NoBlockHash bool
	// Rand, when non-nil, supplies per-query deterministic generators: it
	// is Split once per query in query order before any worker starts, so
	// randomized per-query work is reproducible regardless of how queries
	// are scheduled onto workers. The batch entry points in this package
	// need no randomness themselves; the field exists for callers driving
	// randomized verification through RunBatch.
	Rand *xrand.Rand
}

func (o BatchOptions) workerCount(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// BatchStats aggregates the work and latency of a batch of queries.
type BatchStats struct {
	// Queries is the number of queries in the batch.
	Queries int
	// Probes, Candidates, Distinct and Verified sum the per-query
	// QueryStats counters across the batch.
	Probes     int64
	Candidates int64
	Distinct   int64
	Verified   int64
	// Wall is the wall-clock time of the whole batch (all workers).
	Wall time.Duration
	// QPS is Queries divided by Wall, in queries per second.
	QPS float64
	// Latency percentiles over the per-query latencies.
	LatMean time.Duration
	LatP50  time.Duration
	LatP90  time.Duration
	LatP99  time.Duration
	LatMax  time.Duration
}

// AggregateStats folds per-query stats and a wall-clock duration into a
// BatchStats with latency percentiles.
func AggregateStats(per []QueryStats, wall time.Duration) BatchStats {
	agg := BatchStats{Queries: len(per), Wall: wall}
	if len(per) == 0 {
		return agg
	}
	lats := make([]float64, len(per))
	for i, s := range per {
		agg.Probes += int64(s.Probes)
		agg.Candidates += int64(s.Candidates)
		agg.Distinct += int64(s.Distinct)
		agg.Verified += int64(s.Verified)
		lats[i] = float64(s.Latency)
	}
	if wall > 0 {
		agg.QPS = float64(len(per)) / wall.Seconds()
	}
	agg.LatMean = time.Duration(stats.Mean(lats))
	// Sort once and read all quantiles off the sorted sample rather than
	// paying stats.Quantile's copy+sort per percentile.
	sort.Float64s(lats)
	agg.LatP50 = time.Duration(sortedQuantile(lats, 0.50))
	agg.LatP90 = time.Duration(sortedQuantile(lats, 0.90))
	agg.LatP99 = time.Duration(sortedQuantile(lats, 0.99))
	agg.LatMax = time.Duration(lats[len(lats)-1])
	return agg
}

// RunBatch fans fn over n query indices across a worker pool and returns
// the wall-clock duration of the run. Queries are claimed from a shared
// cursor, so stragglers do not idle the pool. When opts.Rand is non-nil
// each index i receives a private generator derived by the i-th Split of
// opts.Rand (split sequentially before the workers start); otherwise the
// rng argument is nil. fn must treat distinct indices as independent: it
// is called concurrently from multiple goroutines.
func RunBatch(n int, opts BatchOptions, fn func(i int, rng *xrand.Rand)) time.Duration {
	return runBatchScratch(n, opts,
		func() struct{} { return struct{}{} },
		func(struct{}) {},
		func(i int, rng *xrand.Rand, _ struct{}) { fn(i, rng) })
}

// runBatchScratch is RunBatch with per-worker scratch: every worker
// acquires one scratch value before claiming queries and releases it when
// the batch drains. The QueryBatch entry points use it to hand each worker
// a reusable Querier, so concurrent queries share no dedup state and the
// steady-state batch path does not allocate per query.
func runBatchScratch[T any](n int, opts BatchOptions, acquire func() T, release func(T), fn func(i int, rng *xrand.Rand, scratch T)) time.Duration {
	if n <= 0 {
		return 0
	}
	var rngs []*xrand.Rand
	if opts.Rand != nil {
		rngs = make([]*xrand.Rand, n)
		for i := range rngs {
			rngs[i] = opts.Rand.Split()
		}
	}
	workers := opts.workerCount(n)
	start := time.Now()
	if workers == 1 {
		scratch := acquire()
		for i := 0; i < n; i++ {
			if rngs != nil {
				fn(i, rngs[i], scratch)
			} else {
				fn(i, nil, scratch)
			}
		}
		release(scratch)
		return recordBatch(start)
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := acquire()
			defer release(scratch)
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				if rngs != nil {
					fn(i, rngs[i], scratch)
				} else {
					fn(i, nil, scratch)
				}
			}
		}()
	}
	wg.Wait()
	return recordBatch(start)
}

// recordBatch counts one drained batch and its wall time. Batches are
// coarse-grained, so a fresh stripe per batch spreads updates without
// the components needing a persistent stripe id.
func recordBatch(start time.Time) time.Duration {
	wall := time.Since(start)
	st := obs.NextStripe()
	mBatches.Inc(st)
	mBatchLatency.Observe(st, uint64(wall))
	return wall
}

// batchPreHash runs the repetition-blocked pre-hash for a batch unless
// disabled, returning the key block (nil when skipped) and the wall time
// it cost. Callers fold that time back into the batch wall so QPS stays
// honest about total work.
func batchPreHash[P any](src candidateSource[P], queries []P, opts BatchOptions) (*blockKeys, time.Duration) {
	if opts.NoBlockHash {
		return nil, 0
	}
	start := time.Now()
	bk := blockHash(src, queries, opts.workerCount(len(queries)))
	if bk == nil {
		return nil, 0
	}
	return bk, time.Since(start)
}

// installPreKeys points a pooled querier at query i's column of the key
// block; a nil block is a no-op (the querier hashes inline as usual).
func installPreKeys[P any](sq *sourceQuerier[P], bk *blockKeys, i int) {
	if bk != nil {
		sq.preKeys, sq.preStride, sq.preOff = bk.keys, bk.q, i
	}
}

// collectBatch is the shared distinct-candidate batch engine: the query
// block is pre-hashed repetition by repetition (see blockHash), then one
// pooled sourceQuerier per worker consumes the key block. Results are
// identical to sequential CollectDistinct calls in query order. Both
// backends' QueryBatch methods delegate here.
func collectBatch[P any](src candidateSource[P], queries []P, opts BatchOptions) ([][]int, []QueryStats, BatchStats) {
	out := make([][]int, len(queries))
	per := make([]QueryStats, len(queries))
	bk, preWall := batchPreHash(src, queries, opts)
	wall := runBatchScratch(len(queries), opts, src.acquireSQ, src.releaseSQ,
		func(i int, _ *xrand.Rand, sq *sourceQuerier[P]) {
			start := time.Now()
			installPreKeys(sq, bk, i)
			res, st := sq.collectDistinct(queries[i], opts.MaxCandidates)
			sq.preKeys = nil
			if len(res) > 0 {
				out[i] = make([]int, len(res))
				copy(out[i], res)
			}
			per[i] = st
			per[i].Latency = time.Since(start)
		})
	if bk != nil {
		bk.release()
	}
	return out, per, AggregateStats(per, wall+preWall)
}

// QueryBatch collects distinct candidates for every query concurrently,
// fanning the batch across opts.Workers workers. Results are identical to
// calling CollectDistinct(q, opts.MaxCandidates) sequentially for each
// query, in query order; only the wall-clock time changes. Per-query
// stats (including latency) and aggregated batch stats are returned
// alongside the candidate lists.
func (ix *Index[P]) QueryBatch(queries []P, opts BatchOptions) ([][]int, []QueryStats, BatchStats) {
	return collectBatch[P](ix, queries, opts)
}

// QueryBatch answers every annulus query concurrently, over either
// backend. Element i of the returned slice is exactly what
// Query(queries[i]) returns: the id of some point within the report
// interval, or -1 after the 8L early termination bound. This path skips
// the repetition-blocked pre-hash on purpose: annulus queries usually
// terminate after scanning a few repetitions, so hashing every query
// against all L draws up front would mostly be thrown away.
func (ai *AnnulusIndex[P]) QueryBatch(queries []P, opts BatchOptions) ([]int, []QueryStats, BatchStats) {
	out := make([]int, len(queries))
	per := make([]QueryStats, len(queries))
	src := ai.src
	wall := runBatchScratch(len(queries), opts, src.acquireSQ, src.releaseSQ,
		func(i int, _ *xrand.Rand, sq *sourceQuerier[P]) {
			start := time.Now()
			out[i], per[i] = sq.annulusQuery(queries[i], ai.within)
			per[i].Latency = time.Since(start)
		})
	return out, per, AggregateStats(per, wall)
}

// QueryBatch runs every range-reporting query concurrently, over either
// backend. Element i of the returned slice is exactly what
// Query(queries[i]) returns.
func (rr *RangeReporter[P]) QueryBatch(queries []P, opts BatchOptions) ([][]int, []QueryStats, BatchStats) {
	out := make([][]int, len(queries))
	per := make([]QueryStats, len(queries))
	src := rr.src
	bk, preWall := batchPreHash(src, queries, opts)
	wall := runBatchScratch(len(queries), opts, src.acquireSQ, src.releaseSQ,
		func(i int, _ *xrand.Rand, sq *sourceQuerier[P]) {
			start := time.Now()
			installPreKeys(sq, bk, i)
			out[i], per[i] = sq.appendRange(nil, queries[i], rr.inRange)
			sq.preKeys = nil
			per[i].Latency = time.Since(start)
		})
	if bk != nil {
		bk.release()
	}
	return out, per, AggregateStats(per, wall+preWall)
}

// QueryBatch answers every hyperplane query concurrently, mirroring
// Query element-wise.
func (hi *HyperplaneIndex) QueryBatch(queries [][]float64, opts BatchOptions) ([]int, []QueryStats, BatchStats) {
	return hi.inner.QueryBatch(queries, opts)
}
