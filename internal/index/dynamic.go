package index

import (
	"sync"
	"time"

	"dsh/internal/bitvec"
	"dsh/internal/core"
	"dsh/internal/xrand"
)

// DynamicOptions configures a DynamicIndex.
type DynamicOptions struct {
	// MemtableThreshold is the number of buffered inserts after which the
	// memtable is automatically frozen into a segment (<= 0 means the
	// default of 1024).
	MemtableThreshold int
	// MaxSegments is the segment count above which the background
	// compactor (when enabled) merges every frozen segment into one
	// (<= 0 means the default of 8). Explicit Compact calls always merge.
	MaxSegments int
	// BackgroundCompaction starts a goroutine that merges segments when
	// their count exceeds MaxSegments after a memtable freeze. Call Close
	// to stop it. Queries remain race-free during background merges: the
	// merge builds against an immutable snapshot and swaps it in under
	// the structural lock after validating the snapshot is still current.
	BackgroundCompaction bool
}

func (o DynamicOptions) withDefaults() DynamicOptions {
	if o.MemtableThreshold <= 0 {
		o.MemtableThreshold = 1024
	}
	if o.MaxSegments <= 0 {
		o.MaxSegments = 8
	}
	return o
}

// DynamicIndex is the mutable, LSM-style variant of Index: a small
// map-layout memtable absorbs fresh inserts, immutable flat-table segments
// hold frozen points, and a tombstone bitmap records deletes, consulted
// during candidate iteration. The L repetition draws (h_i, g_i) are
// sampled once at construction and shared by every segment and the
// memtable, so a query hashes once per repetition and probes every layer
// with the same key — the collision-probability semantics of the family
// are exactly those of a static Index over the live points.
//
// Every point keeps a stable global id, assigned by Insert in increasing
// order (the initial points get ids 0..len-1) and preserved across freezes
// and merges. Compact folds all frozen state back into a single flat
// segment, dropping tombstoned points from the tables; ids are never
// reused.
//
// All methods are safe for concurrent use. Steady-state queries through a
// DynamicQuerier perform no heap allocations once the memtable has been
// compacted away (map probes of an empty memtable and tombstone checks
// allocate nothing).
type DynamicIndex[P any] struct {
	pairs []core.Pair[P]
	negG  []negQueryHasher
	opts  DynamicOptions

	// mu guards every field below it. Queries hold it shared; Insert,
	// Delete and the structural swaps of Compact hold it exclusively.
	mu sync.RWMutex
	// points holds every point ever inserted, indexed by global id. It is
	// append-only: elements below len are immutable, so compaction can
	// read a snapshot of the slice header outside the lock.
	points   []P
	segments []*segment
	mem      *memtable
	// dead is the tombstone bitmap over global ids. Bits are set by
	// Delete and never cleared: after a merge drops a point from the
	// tables its bit is simply never consulted again, and keeping it set
	// makes double-Delete detection trivial.
	dead bitvec.Bitmap
	live int

	queriers sync.Pool

	// compactCh nudges the background compactor; nil when disabled.
	compactCh chan struct{}
	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// NewDynamic builds a dynamic index over the initial points (which become
// one frozen segment with global ids 0..len-1) with L repetitions of the
// family. It consumes rng exactly like New — L Sample calls — so a static
// and a dynamic index built from generators with the same seed share their
// repetition draws.
func NewDynamic[P any](rng *xrand.Rand, family core.Family[P], L int, points []P, opts DynamicOptions) *DynamicIndex[P] {
	if family == nil {
		panic("index: family must be non-nil")
	}
	if L <= 0 {
		panic("index: repetitions must be positive")
	}
	dx := &DynamicIndex[P]{
		pairs:  make([]core.Pair[P], L),
		opts:   opts.withDefaults(),
		points: append([]P(nil), points...),
		mem:    newMemtable(L),
		live:   len(points),
	}
	for i := range dx.pairs {
		dx.pairs[i] = family.Sample(rng)
	}
	dx.negG = negHashers(dx.pairs)
	if len(dx.points) > 0 {
		ids := make([]int32, len(dx.points))
		for i := range ids {
			ids[i] = int32(i)
		}
		dx.segments = []*segment{buildSegment(dx.pairs, dx.points, ids)}
	}
	dx.queriers.New = func() any { return dx.NewQuerier() }
	if dx.opts.BackgroundCompaction {
		dx.compactCh = make(chan struct{}, 1)
		dx.closed = make(chan struct{})
		dx.wg.Add(1)
		go dx.backgroundCompactor()
	}
	return dx
}

// L returns the number of repetitions.
func (dx *DynamicIndex[P]) L() int { return len(dx.pairs) }

// Len returns the number of live (inserted and not deleted) points.
func (dx *DynamicIndex[P]) Len() int {
	dx.mu.RLock()
	defer dx.mu.RUnlock()
	return dx.live
}

// Point returns the point stored under the given global id. It remains
// valid for deleted ids (points are retained until their segment is
// compacted; the stored value is retained forever).
func (dx *DynamicIndex[P]) Point(id int) P {
	dx.mu.RLock()
	defer dx.mu.RUnlock()
	return dx.points[id]
}

// Deleted reports whether id has been deleted.
func (dx *DynamicIndex[P]) Deleted(id int) bool {
	dx.mu.RLock()
	defer dx.mu.RUnlock()
	return dx.dead.Get(id)
}

// Segments returns the current number of frozen segments.
func (dx *DynamicIndex[P]) Segments() int {
	dx.mu.RLock()
	defer dx.mu.RUnlock()
	return len(dx.segments)
}

// MemtableLen returns the number of points buffered in the memtable.
func (dx *DynamicIndex[P]) MemtableLen() int {
	dx.mu.RLock()
	defer dx.mu.RUnlock()
	return dx.mem.len()
}

// Insert adds a point and returns its stable global id. The point lands in
// the memtable; when the buffer reaches MemtableThreshold it is frozen
// into a new immutable segment (and the background compactor, if enabled,
// is nudged once the segment count exceeds MaxSegments).
//
// The L hash evaluations run before the structural lock is taken, so
// concurrent queries are blocked only for the map inserts themselves. The
// Insert that crosses the threshold additionally pays for the freeze
// (building L flat tables over the buffered keys, no rehashing) while
// holding the lock — the classic LSM write stall; size MemtableThreshold
// to bound it, or call Flush at quiet moments to schedule it explicitly.
func (dx *DynamicIndex[P]) Insert(p P) int {
	keys := make([]uint64, len(dx.pairs))
	for i, pair := range dx.pairs {
		keys[i] = pair.H.Hash(p)
	}
	dx.mu.Lock()
	id := int32(len(dx.points))
	dx.points = append(dx.points, p)
	dx.mem.insert(id, keys)
	dx.live++
	needMerge := false
	if dx.mem.len() >= dx.opts.MemtableThreshold {
		dx.freezeLocked()
		needMerge = dx.compactCh != nil && len(dx.segments) > dx.opts.MaxSegments
	}
	dx.mu.Unlock()
	if needMerge {
		select {
		case dx.compactCh <- struct{}{}:
		default:
		}
	}
	return int(id)
}

// Delete tombstones the point with the given global id, reporting whether
// it was live. The point disappears from query results immediately and
// from the underlying tables at the next Compact.
func (dx *DynamicIndex[P]) Delete(id int) bool {
	dx.mu.Lock()
	defer dx.mu.Unlock()
	if id < 0 || id >= len(dx.points) || dx.dead.Get(id) {
		return false
	}
	dx.dead.Set(id)
	dx.live--
	return true
}

// freezeLocked turns a non-empty memtable into a new frozen segment.
// Callers hold mu exclusively.
func (dx *DynamicIndex[P]) freezeLocked() {
	if dx.mem.len() == 0 {
		return
	}
	dx.segments = append(dx.segments, dx.mem.freeze())
	dx.mem = newMemtable(len(dx.pairs))
}

// Flush freezes the memtable into a segment immediately, regardless of
// the threshold. Useful before read-heavy phases: frozen probes are
// cheaper than map probes.
func (dx *DynamicIndex[P]) Flush() {
	dx.mu.Lock()
	dx.freezeLocked()
	dx.mu.Unlock()
}

// acquireQuerier draws a DynamicQuerier from the pool.
func (dx *DynamicIndex[P]) acquireQuerier() *DynamicQuerier[P] {
	return dx.queriers.Get().(*DynamicQuerier[P])
}

// releaseQuerier returns a DynamicQuerier to the pool.
func (dx *DynamicIndex[P]) releaseQuerier(qr *DynamicQuerier[P]) { dx.queriers.Put(qr) }

// CollectDistinct gathers up to max distinct live candidate ids for q
// (max <= 0 means no limit). The returned slice is freshly allocated and
// owned by the caller; use a DynamicQuerier for the zero-allocation
// variant.
func (dx *DynamicIndex[P]) CollectDistinct(q P, max int) []int {
	qr := dx.acquireQuerier()
	res, _ := qr.CollectDistinct(q, max)
	var out []int
	if len(res) > 0 {
		out = make([]int, len(res))
		copy(out, res)
	}
	dx.releaseQuerier(qr)
	return out
}

// DynamicQuerier is the reusable query scratch of a DynamicIndex,
// mirroring Querier: an epoch-stamped visited array over global ids, a
// negated-query buffer, and a reusable output buffer. A DynamicQuerier is
// not safe for concurrent use; use one per goroutine (QueryBatch hands
// each worker its own). Steady-state queries allocate nothing unless the
// global id space grew since the previous query on this querier.
type DynamicQuerier[P any] struct {
	dx      *DynamicIndex[P]
	visited []uint32
	epoch   uint32
	out     []int
	neg     []float64
	negOK   bool
}

// NewQuerier returns a fresh DynamicQuerier bound to dx.
func (dx *DynamicIndex[P]) NewQuerier() *DynamicQuerier[P] {
	return &DynamicQuerier[P]{dx: dx}
}

// begin opens a query over a global id space of size n: grow the visited
// array if points were inserted since last use, and advance the epoch
// (clearing only on uint32 wraparound).
func (qr *DynamicQuerier[P]) begin(n int) {
	qr.negOK = false
	if len(qr.visited) < n {
		grown := make([]uint32, n)
		copy(grown, qr.visited)
		qr.visited = grown
	}
	qr.epoch++
	if qr.epoch == 0 {
		for i := range qr.visited {
			qr.visited[i] = 0
		}
		qr.epoch = 1
	}
}

// gKey returns g_i(q), negating q once per query when repetition i's
// query hasher supports the pre-negated path.
func (qr *DynamicQuerier[P]) gKey(i int, q P) uint64 {
	dx := qr.dx
	if nh := dx.negG[i]; nh != nil {
		if !qr.negOK {
			qr.neg, qr.negOK = negateQuery(qr.neg, q)
		}
		if qr.negOK {
			return nh.HashNeg(qr.neg)
		}
	}
	return dx.pairs[i].G.Hash(q)
}

// CollectDistinct gathers up to max distinct live candidate ids for q
// (max <= 0 means no limit): per repetition, the query key probes every
// frozen segment oldest-first and then the memtable, skipping tombstoned
// ids and deduplicating across repetitions and layers. After a full
// Compact the candidate order equals that of a static Index over the live
// points (with ids mapped through the survivors' global ids). The returned
// slice is owned by the querier and valid only until its next use.
func (qr *DynamicQuerier[P]) CollectDistinct(q P, max int) ([]int, QueryStats) {
	dx := qr.dx
	dx.mu.RLock()
	defer dx.mu.RUnlock()
	qr.begin(len(dx.points))
	var stats QueryStats
	out := qr.out[:0]
	visited := qr.visited
	epoch := qr.epoch
	// take dereferences once outside the hot loops.
	segments := dx.segments
	mem := dx.mem
scan:
	for i := range dx.pairs {
		key := qr.gKey(i, q)
		for _, seg := range segments {
			for _, local := range seg.lookup(i, key) {
				stats.Candidates++
				id := int(seg.globalIDs[local])
				if dx.dead.Get(id) || visited[id] == epoch {
					continue
				}
				visited[id] = epoch
				out = append(out, id)
				stats.Distinct++
				if max > 0 && len(out) >= max {
					break scan
				}
			}
		}
		for _, id32 := range mem.lookup(i, key) {
			stats.Candidates++
			id := int(id32)
			if dx.dead.Get(id) || visited[id] == epoch {
				continue
			}
			visited[id] = epoch
			out = append(out, id)
			stats.Distinct++
			if max > 0 && len(out) >= max {
				break scan
			}
		}
	}
	qr.out = out
	return out, stats
}

// QueryBatch collects distinct live candidates for every query
// concurrently, fanning the batch across opts.Workers workers with one
// pooled DynamicQuerier per worker (so the steady-state batch path does
// not allocate per query). Mutations and compactions may proceed
// concurrently; each individual query sees a consistent snapshot of the
// index.
func (dx *DynamicIndex[P]) QueryBatch(queries []P, opts BatchOptions) ([][]int, []QueryStats, BatchStats) {
	out := make([][]int, len(queries))
	per := make([]QueryStats, len(queries))
	wall := runBatchScratch(len(queries), opts, dx.acquireQuerier, dx.releaseQuerier,
		func(i int, _ *xrand.Rand, qr *DynamicQuerier[P]) {
			start := time.Now()
			res, st := qr.CollectDistinct(queries[i], opts.MaxCandidates)
			if len(res) > 0 {
				out[i] = make([]int, len(res))
				copy(out[i], res)
			}
			per[i] = st
			per[i].Latency = time.Since(start)
		})
	return out, per, AggregateStats(per, wall)
}
