package index

import (
	"sync"
	"time"

	"dsh/internal/bitvec"
	"dsh/internal/core"
	"dsh/internal/obs"
	"dsh/internal/xrand"
)

// DynamicOptions configures a DynamicIndex.
type DynamicOptions struct {
	// MemtableThreshold is the number of buffered inserts after which the
	// memtable is automatically frozen into a segment (<= 0 means the
	// default of 1024).
	MemtableThreshold int
	// MaxSegments is the segment count above which the background
	// compactor (when enabled) merges segments according to Policy
	// (<= 0 means the default of 8). Explicit Compact calls always merge
	// everything.
	MaxSegments int
	// BackgroundCompaction starts a goroutine that merges segments when
	// their count exceeds MaxSegments after a freeze. Call Close to stop
	// it. Queries remain race-free during background merges: a merge
	// builds against an immutable snapshot and swaps it in under the
	// structural lock, and all structural rewrites are serialized.
	BackgroundCompaction bool
	// Policy selects how automatic (background) compaction merges
	// segments: CompactAll folds everything into one segment,
	// CompactTiered merges only a contiguous run of the newest
	// similar-sized segments so large old segments are rewritten rarely,
	// and CompactLeveled additionally garbage-collects tombstones in its
	// bottom-level merges — dead ids are dropped permanently, survivors
	// are renumbered through a dense shrinking id space, and the tombstone
	// bitmap is compacted (see CompactLeveled for the id-stability
	// caveat). Explicit Compact calls merge everything regardless of
	// policy (performing the GC under CompactLeveled).
	Policy CompactionPolicy
	// GrowthFactor is the size ratio steering the tiered and leveled
	// policies: a tiered run excludes older segments more than
	// GrowthFactor times the accumulated newer data, and the leveled
	// policy triggers its bottom-level GC merge when the upper tier (or
	// the dead-row count) reaches 1/GrowthFactor of the bottom segment
	// (respectively the live count). <= -1 panics at construction; 0 means
	// the default of 4.
	GrowthFactor int
	// AsyncFreeze makes the Insert that crosses MemtableThreshold detach
	// the full memtable and keep serving it read-only while the L flat
	// tables build off the structural lock (the same snapshot-validated
	// swap discipline as compaction), flattening the insert tail latency.
	// When false (the default), the crossing Insert builds the segment
	// inline while holding the lock — deterministic, but an LSM write
	// stall bounded by MemtableThreshold.
	//
	// Query results are identical either way: a detached memtable serves
	// the same ids in the same order as the segment it becomes.
	AsyncFreeze bool
}

func (o DynamicOptions) withDefaults() DynamicOptions {
	if o.MemtableThreshold <= 0 {
		o.MemtableThreshold = 1024
	}
	if o.MaxSegments <= 0 {
		o.MaxSegments = 8
	}
	if o.GrowthFactor < 0 {
		panic("index: compaction growth factor must be positive")
	}
	if o.GrowthFactor == 0 {
		o.GrowthFactor = defaultGrowthFactor
	}
	return o
}

// DynamicIndex is the mutable, LSM-style backend of the candidateSource
// core: a small map-layout memtable absorbs fresh inserts, immutable
// flat-table segments hold frozen points, detached read-only memtables
// bridge the two while asynchronous freezes build their tables off-lock,
// and a tombstone bitmap records deletes, consulted during candidate
// iteration. The L repetition draws (h_i, g_i) are sampled once at
// construction and shared by every layer, so a query hashes once per
// repetition and probes every layer with the same key — the
// collision-probability semantics of the family are exactly those of a
// static Index over the live points.
//
// Every point keeps a stable global id, assigned by Insert in increasing
// order (the initial points get ids 0..len-1) and preserved across freezes
// and merges. Layers are kept in ascending global-id order (segments
// oldest first, then detached memtables oldest first, then the live
// memtable), so the per-repetition candidate stream walks live points in
// exactly the order a static Index over them would. Compact folds all
// frozen state back into a single flat segment, dropping tombstoned
// points from the tables; ids are never reused.
//
// All methods are safe for concurrent use. Locking discipline: mu (the
// structural RWMutex) guards the layer lists, the points array, and the
// tombstone bitmap — queries hold it shared for their whole read window,
// mutators hold it exclusively and briefly. mergeMu serializes structural
// rewrites (async-freeze installs and compaction merges); it is always
// acquired before mu and never held while blocking on queries, so the
// expensive table builds run with neither queries nor inserts stalled.
// Steady-state queries through a DynamicQuerier perform no heap
// allocations once the memtable has been compacted away.
type DynamicIndex[P any] struct {
	pairs []core.Pair[P]
	negG  []negQueryHasher
	opts  DynamicOptions

	// mu guards every field below it. Queries hold it shared; Insert,
	// Delete and the structural swaps of freezes and merges hold it
	// exclusively.
	mu sync.RWMutex
	// points holds every point ever inserted, indexed by global id. It is
	// append-only: elements below len are immutable, so merges, veneers
	// and snapshots can read pinned copies of the slice header without
	// holding mu.
	points   []P
	segments []*segment
	// frozen holds detached, read-only memtables awaiting their
	// asynchronous flat-table build, oldest first. Only Insert, Flush and
	// Compact append; only the freezer and Compact (both serialized by
	// mergeMu) pop from the front.
	frozen []*memtable
	// freezerBusy records that a freezer goroutine is draining frozen;
	// Insert spawns one only when it is clear.
	freezerBusy bool
	mem         *memtable
	// dead is the tombstone bitmap over global ids. Bits are set by
	// Delete and never cleared in place: after a merge drops a point from
	// the tables its bit is simply never consulted again, and keeping it
	// set makes double-Delete detection trivial. Only the leveled GC
	// replaces the bitmap wholesale, rebuilt over the compacted id space.
	dead bitvec.Bitmap
	live int
	// keyed maps an external key to the global id of its newest version;
	// nil until the first InsertKeyed. Entries always point at the latest
	// insert under the key — upserts tombstone the previous id in the same
	// critical section — and the leveled GC renumbers them alongside the
	// rows.
	keyed map[uint64]int32
	// epoch counts visible mutations (Insert and successful Delete).
	// Snapshots capture it, so Epoch comparison detects staleness;
	// structural rewrites (freezes, merges) preserve the live set and do
	// not advance it — except a leveled GC merge that drops rows, which
	// renumbers ids and therefore advances the epoch once.
	epoch uint64
	// gcCollected and gcReclaimedBytes accumulate what leveled GC merges
	// have permanently dropped; surfaced via GCStats.
	gcCollected      int
	gcReclaimedBytes int

	// barrier, when non-nil, is the owning ShardedIndex's epoch barrier:
	// every visible mutation (Insert, InsertKeyed, Delete, DeleteKeyed)
	// and every id-renumbering GC swap holds it shared, so the sharded
	// Snapshot can quiesce all shards at one instant by holding it
	// exclusively. Standalone indexes leave it nil.
	barrier *sync.RWMutex

	// mergeMu serializes structural rewrites; see the type comment.
	mergeMu sync.Mutex

	queriers sync.Pool

	// keyBufs pools the per-insert data-side key scratch ([]uint64 of
	// length L, boxed to avoid an interface allocation per Get/Put) so the
	// steady-state insert path performs no heap allocations.
	keyBufs sync.Pool

	// compactCh nudges the background compactor; nil when disabled.
	compactCh chan struct{}
	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	// store is the durability attachment (WAL + segment files + manifest);
	// nil for a purely in-memory index. Mutators call its log methods
	// inside their mu critical sections, so WAL order is apply order.
	store *store[P]

	// stripe is this index's metrics stripe, drawn once at construction;
	// shards of a ShardedIndex record write-path metrics onto distinct
	// counter cache lines.
	stripe uint32
}

// NewDynamic builds a dynamic index over the initial points (which become
// one frozen segment with global ids 0..len-1) with L repetitions of the
// family. It consumes rng exactly like New — L Sample calls — so a static
// and a dynamic index built from generators with the same seed share their
// repetition draws.
func NewDynamic[P any](rng *xrand.Rand, family core.Family[P], L int, points []P, opts DynamicOptions) *DynamicIndex[P] {
	if family == nil {
		panic("index: family must be non-nil")
	}
	if L <= 0 {
		panic("index: repetitions must be positive")
	}
	pairs := make([]core.Pair[P], L)
	for i := range pairs {
		pairs[i] = family.Sample(rng)
	}
	return newDynamicFromPairs(pairs, negHashers(pairs), points, opts)
}

// newDynamicFromPairs builds a dynamic index around already-sampled
// repetition draws. It is the shared constructor tail of NewDynamic and
// NewSharded: a ShardedIndex hands the same pairs slice to every shard, so
// a query hashes once per repetition and probes every shard with the same
// key.
func newDynamicFromPairs[P any](pairs []core.Pair[P], negG []negQueryHasher, points []P, opts DynamicOptions) *DynamicIndex[P] {
	dx := newDynamicShell(pairs, negG, opts)
	dx.points = append([]P(nil), points...)
	dx.live = len(points)
	if len(dx.points) > 0 {
		ids := make([]int32, len(dx.points))
		for i := range ids {
			ids[i] = int32(i)
		}
		dx.segments = []*segment{buildSegment(dx.pairs, dx.points, ids)}
	}
	dx.startCompactor()
	return dx
}

// newDynamicShell builds an empty index around already-sampled repetition
// draws without starting the background compactor — the shared skeleton of
// every constructor. Durable recovery needs the split: replay must finish
// (single-threaded, unpublished) before any goroutine can touch the index.
func newDynamicShell[P any](pairs []core.Pair[P], negG []negQueryHasher, opts DynamicOptions) *DynamicIndex[P] {
	dx := &DynamicIndex[P]{
		pairs:  pairs,
		negG:   negG,
		opts:   opts.withDefaults(),
		stripe: obs.NextStripe(),
	}
	dx.mem = newMemtable(len(pairs), dx.opts.MemtableThreshold)
	dx.queriers.New = func() any { return newSourceQuerier[P](dx, 0) }
	dx.keyBufs.New = func() any {
		buf := make([]uint64, len(dx.pairs))
		return &buf
	}
	return dx
}

// startCompactor starts the background compactor when the options ask for
// one. Idempotent; called once from each constructor path.
func (dx *DynamicIndex[P]) startCompactor() {
	if !dx.opts.BackgroundCompaction || dx.compactCh != nil {
		return
	}
	dx.compactCh = make(chan struct{}, 1)
	dx.closed = make(chan struct{})
	dx.wg.Add(1)
	go dx.backgroundCompactor()
}

// L returns the number of repetitions. The repetition draws are immutable
// after construction, so L takes no lock and may be called at any time.
func (dx *DynamicIndex[P]) L() int { return len(dx.pairs) }

// Len returns the number of live (inserted and not deleted) points. It
// takes the structural read-lock briefly and is safe for concurrent use,
// including during compactions and freezes.
func (dx *DynamicIndex[P]) Len() int {
	dx.mu.RLock()
	defer dx.mu.RUnlock()
	return dx.live
}

// Point returns the point stored under the given global id. It remains
// valid for deleted ids (points are retained until their segment is
// compacted; the stored value is retained forever). It takes the
// structural read-lock briefly and is safe for concurrent use.
func (dx *DynamicIndex[P]) Point(id int) P {
	dx.mu.RLock()
	defer dx.mu.RUnlock()
	return dx.points[id]
}

// Deleted reports whether id has been deleted. It takes the structural
// read-lock briefly and is safe for concurrent use.
func (dx *DynamicIndex[P]) Deleted(id int) bool {
	dx.mu.RLock()
	defer dx.mu.RUnlock()
	return dx.dead.Get(id)
}

// Segments returns the current number of frozen segments. It takes the
// structural read-lock briefly; concurrent freezes and merges may move
// the count at any moment.
func (dx *DynamicIndex[P]) Segments() int {
	dx.mu.RLock()
	defer dx.mu.RUnlock()
	return len(dx.segments)
}

// MemtableLen returns the number of points buffered in the live memtable.
// It takes the structural read-lock briefly and is safe for concurrent
// use.
func (dx *DynamicIndex[P]) MemtableLen() int {
	dx.mu.RLock()
	defer dx.mu.RUnlock()
	return dx.mem.len()
}

// PendingFreezes returns the number of detached read-only memtables whose
// flat-table builds have not been installed yet. Detaches come from
// AsyncFreeze inserts, from Snapshot (which freezes the live memtable
// read-only so the snapshot can share it), and transiently from Compact;
// Flush returns only after draining every freeze that was pending when it
// was called (concurrent Inserts may detach new ones at any time).
func (dx *DynamicIndex[P]) PendingFreezes() int {
	dx.mu.RLock()
	defer dx.mu.RUnlock()
	return len(dx.frozen)
}

// Insert adds a point and returns its stable global id. The point lands in
// the memtable; when the buffer reaches MemtableThreshold it is frozen
// into a new immutable segment (and the background compactor, if enabled,
// is nudged once the segment count exceeds MaxSegments).
//
// The L hash evaluations run before the structural lock is taken, so
// concurrent queries are blocked only for the map inserts themselves. With
// AsyncFreeze the crossing Insert merely detaches the full memtable (the
// flat tables build off-lock while the detached buffer keeps serving
// reads); without it, the crossing Insert builds the segment inline while
// holding the lock — size MemtableThreshold to bound that stall, or call
// Flush at quiet moments to schedule it explicitly.
func (dx *DynamicIndex[P]) Insert(p P) int {
	kb := dx.keyBufs.Get().(*[]uint64)
	keys := *kb
	for i, pair := range dx.pairs {
		keys[i] = pair.H.Hash(p)
	}
	if dx.barrier != nil {
		dx.barrier.RLock()
	}
	dx.mu.Lock()
	if dx.store != nil {
		dx.store.logInsert(dx, p, keys)
	}
	id, needMerge := dx.insertLocked(p, keys)
	dx.mu.Unlock()
	if dx.barrier != nil {
		dx.barrier.RUnlock()
	}
	dx.keyBufs.Put(kb)
	mInserts.Inc(dx.stripe)
	mWriteHashEvals.Add(dx.stripe, uint64(len(dx.pairs)))
	if needMerge {
		dx.nudgeCompactor()
	}
	return int(id)
}

// insertLocked appends p under a fresh global id and buffers it in the
// memtable, handling the threshold crossing. Callers hold mu exclusively
// (and the shard barrier shared, when one exists); keys are the L
// pre-computed data-side hashes of p. It reports the new id and whether
// the caller should nudge the background compactor after unlocking.
func (dx *DynamicIndex[P]) insertLocked(p P, keys []uint64) (int32, bool) {
	id := int32(len(dx.points))
	dx.points = append(dx.points, p)
	dx.mem.insert(id, keys)
	dx.live++
	dx.epoch++
	needMerge := false
	if dx.mem.len() >= dx.opts.MemtableThreshold {
		// With detached memtables pending (AsyncFreeze, or a Snapshot
		// detach on an inline-freeze index) the memtable must go through
		// the same FIFO, not straight into segments: installs happen in
		// detach order, preserving the ascending-global-id layer invariant.
		if dx.opts.AsyncFreeze || len(dx.frozen) > 0 {
			dx.detachMemLocked()
		} else {
			dx.freezeLocked()
			needMerge = dx.compactCh != nil && len(dx.segments) > dx.opts.MaxSegments
		}
	}
	return id, needMerge
}

// InsertKeyed upserts a point under an external key and returns the global
// id of the new version. When the key already maps to a live point, that
// previous version is tombstoned and the new one inserted in the same
// critical section, so queries never see both (or neither) version of a
// key. The returned id is the point's current identity for Delete/Point,
// but under CompactLeveled ids are renumbered by GC merges — the key is
// the durable handle; use LookupKey to recover the current id.
func (dx *DynamicIndex[P]) InsertKeyed(key uint64, p P) int {
	kb := dx.keyBufs.Get().(*[]uint64)
	keys := *kb
	for i, pair := range dx.pairs {
		keys[i] = pair.H.Hash(p)
	}
	if dx.barrier != nil {
		dx.barrier.RLock()
	}
	dx.mu.Lock()
	if dx.store != nil {
		dx.store.logInsertKeyed(dx, key, p, keys)
	}
	if old, ok := dx.keyed[key]; ok && !dx.dead.Get(int(old)) {
		dx.dead.Set(int(old))
		dx.live--
		dx.epoch++
	}
	id, needMerge := dx.insertLocked(p, keys)
	if dx.keyed == nil {
		dx.keyed = make(map[uint64]int32)
	}
	dx.keyed[key] = id
	dx.mu.Unlock()
	if dx.barrier != nil {
		dx.barrier.RUnlock()
	}
	dx.keyBufs.Put(kb)
	mUpserts.Inc(dx.stripe)
	mWriteHashEvals.Add(dx.stripe, uint64(len(dx.pairs)))
	if needMerge {
		dx.nudgeCompactor()
	}
	return int(id)
}

// DeleteKeyed tombstones the newest version of the point inserted under
// key, reporting whether a live version existed. The key's mapping is
// removed either way, so a later InsertKeyed under the same key starts
// fresh.
func (dx *DynamicIndex[P]) DeleteKeyed(key uint64) bool {
	if dx.barrier != nil {
		dx.barrier.RLock()
		defer dx.barrier.RUnlock()
	}
	dx.mu.Lock()
	defer dx.mu.Unlock()
	id, ok := dx.keyed[key]
	if !ok {
		return false
	}
	if dx.store != nil {
		dx.store.logDeleteKeyed(key)
	}
	delete(dx.keyed, key)
	if dx.dead.Get(int(id)) {
		return false
	}
	dx.dead.Set(int(id))
	dx.live--
	dx.epoch++
	mDeletesKeyed.Inc(dx.stripe)
	return true
}

// LookupKey returns the current global id of the live point inserted under
// key, if any. Under CompactLeveled the id is only guaranteed current
// until the next GC merge; re-resolve after observing an Epoch change.
func (dx *DynamicIndex[P]) LookupKey(key uint64) (int, bool) {
	dx.mu.RLock()
	defer dx.mu.RUnlock()
	id, ok := dx.keyed[key]
	if !ok || dx.dead.Get(int(id)) {
		return 0, false
	}
	return int(id), true
}

// Delete tombstones the point with the given global id, reporting whether
// it was live. The point disappears from query results immediately and
// from the underlying tables at the next merge covering its segment.
func (dx *DynamicIndex[P]) Delete(id int) bool {
	if dx.barrier != nil {
		dx.barrier.RLock()
		defer dx.barrier.RUnlock()
	}
	dx.mu.Lock()
	defer dx.mu.Unlock()
	if id < 0 || id >= len(dx.points) || dx.dead.Get(id) {
		return false
	}
	if dx.store != nil {
		dx.store.logDelete(int32(id))
	}
	dx.dead.Set(id)
	dx.live--
	dx.epoch++
	mDeletes.Inc(dx.stripe)
	return true
}

// GCStats reports the index's tombstone occupancy and leveled-GC progress.
// It takes the structural read-lock briefly and is safe for concurrent
// use; DeadRows is exact at that instant (rows still in some layer's
// tables minus the live count).
func (dx *DynamicIndex[P]) GCStats() GCStats {
	dx.mu.RLock()
	defer dx.mu.RUnlock()
	rows := dx.mem.len()
	for _, fm := range dx.frozen {
		rows += fm.len()
	}
	for _, s := range dx.segments {
		rows += s.len()
	}
	return GCStats{
		LiveRows:             dx.live,
		DeadRows:             rows - dx.live,
		BitmapBytes:          dx.dead.Bytes(),
		CollectedRows:        dx.gcCollected,
		ReclaimedBitmapBytes: dx.gcReclaimedBytes,
	}
}

// Epoch returns the index's mutation epoch: a counter advanced by every
// Insert and every successful Delete (structural rewrites — freezes,
// merges — preserve the live set and do not advance it, except a leveled
// GC merge that drops rows, which renumbers ids and advances it once).
// Comparing it with Snapshot.Epoch tells whether a snapshot is stale.
// Epoch takes the structural read-lock briefly and is safe for concurrent
// use.
func (dx *DynamicIndex[P]) Epoch() uint64 {
	dx.mu.RLock()
	defer dx.mu.RUnlock()
	return dx.epoch
}

// freezeLocked turns a non-empty memtable into a new frozen segment
// inline. Callers hold mu exclusively.
func (dx *DynamicIndex[P]) freezeLocked() {
	if dx.mem.len() == 0 {
		return
	}
	rows := dx.mem.len()
	start := time.Now()
	dx.segments = append(dx.segments, dx.mem.freeze())
	mFreezeBuild.Observe(dx.stripe, uint64(time.Since(start)))
	mFreezesInline.Inc(dx.stripe)
	mFrozenRows.Add(dx.stripe, uint64(rows))
	obs.RecordEvent("freeze.inline", int64(rows), int64(len(dx.segments)))
	dx.freshMemtableLocked()
}

// freshMemtableLocked replaces the live memtable with an empty one; on a
// durable index the replacement is stamped with the current WAL end, the
// position of the first record it could ever buffer. Callers hold mu
// exclusively. During durable replay (store still nil) the stamp is
// deferred: the first replayed row carries its own log position.
func (dx *DynamicIndex[P]) freshMemtableLocked() {
	dx.mem = newMemtable(len(dx.pairs), dx.opts.MemtableThreshold)
	if dx.store != nil {
		dx.mem.walStart = dx.store.wal.End()
	}
}

// detachMemLocked moves a non-empty memtable onto the frozen FIFO and
// spawns a freezer to build its flat tables off-lock if none is running.
// Callers hold mu exclusively.
func (dx *DynamicIndex[P]) detachMemLocked() {
	if dx.mem.len() == 0 {
		return
	}
	mFreezesAsync.Inc(dx.stripe)
	obs.RecordEvent("freeze.async", int64(dx.mem.len()), int64(len(dx.frozen)+1))
	dx.frozen = append(dx.frozen, dx.mem)
	dx.freshMemtableLocked()
	if !dx.freezerBusy {
		dx.freezerBusy = true
		go dx.freezer()
	}
}

// freezer drains the frozen FIFO: build the oldest detached memtable's
// flat tables with neither lock held for the build, then install the
// segment under mu. Holding mergeMu from the head-read through the
// install keeps rewrites serialized, so installs happen in detach order
// and the ascending-global-id layer invariant is preserved. The goroutine
// exits when the FIFO drains; Insert spawns a fresh one on the next
// detach.
func (dx *DynamicIndex[P]) freezer() {
	for {
		dx.mergeMu.Lock()
		dx.mu.Lock()
		if len(dx.frozen) == 0 {
			dx.freezerBusy = false
			dx.mu.Unlock()
			dx.mergeMu.Unlock()
			return
		}
		fm := dx.frozen[0]
		dx.mu.Unlock()

		start := time.Now()
		seg := fm.freeze() // the L flat-table builds: off-lock, no rehashing
		mFreezeBuild.Observe(dx.stripe, uint64(time.Since(start)))
		mFreezeInstalls.Inc(dx.stripe)
		mFrozenRows.Add(dx.stripe, uint64(fm.len()))

		dx.mu.Lock()
		dx.frozen = dx.frozen[1:]
		dx.segments = append(dx.segments, seg)
		needMerge := dx.compactCh != nil && len(dx.segments) > dx.opts.MaxSegments
		dx.mu.Unlock()
		dx.mergeMu.Unlock()
		if needMerge {
			dx.nudgeCompactor()
		}
	}
}

// drainFrozen synchronously converts every detached memtable into an
// installed segment, cooperating with any running freezer through the
// same mergeMu-serialized pop-and-install discipline.
func (dx *DynamicIndex[P]) drainFrozen() {
	needMerge := false
	for {
		dx.mergeMu.Lock()
		dx.mu.RLock()
		var fm *memtable
		if len(dx.frozen) > 0 {
			fm = dx.frozen[0]
		}
		dx.mu.RUnlock()
		if fm == nil {
			dx.mergeMu.Unlock()
			break
		}
		start := time.Now()
		seg := fm.freeze()
		mFreezeBuild.Observe(dx.stripe, uint64(time.Since(start)))
		mFreezeInstalls.Inc(dx.stripe)
		mFrozenRows.Add(dx.stripe, uint64(fm.len()))
		dx.mu.Lock()
		dx.frozen = dx.frozen[1:]
		dx.segments = append(dx.segments, seg)
		needMerge = dx.compactCh != nil && len(dx.segments) > dx.opts.MaxSegments
		dx.mu.Unlock()
		dx.mergeMu.Unlock()
	}
	if needMerge {
		dx.nudgeCompactor()
	}
}

// Flush freezes the memtable into a segment immediately, regardless of
// the threshold, and waits for every pending asynchronous freeze to be
// installed. Useful before read-heavy phases: frozen probes are cheaper
// than map probes.
func (dx *DynamicIndex[P]) Flush() {
	dx.mu.Lock()
	// Any pending detached memtables (async freezes, or Snapshot detaches
	// on an inline-freeze index) must install before the live memtable, so
	// route through the FIFO whenever one exists.
	if dx.opts.AsyncFreeze || len(dx.frozen) > 0 {
		if dx.mem.len() > 0 {
			mFreezesAsync.Inc(dx.stripe)
			obs.RecordEvent("freeze.async", int64(dx.mem.len()), int64(len(dx.frozen)+1))
			dx.frozen = append(dx.frozen, dx.mem)
			dx.freshMemtableLocked()
		}
		dx.mu.Unlock()
		dx.drainFrozen()
		return
	}
	dx.freezeLocked()
	dx.mu.Unlock()
}

// nudgeCompactor pokes the background compactor without blocking.
func (dx *DynamicIndex[P]) nudgeCompactor() {
	select {
	case dx.compactCh <- struct{}{}:
	default:
	}
}

// candidateSource implementation. A query's read window is one shared
// acquisition of mu: appendCandidates and srcPoint run under it, so every
// query sees one consistent layer list and tombstone state.

func (dx *DynamicIndex[P]) srcPairs() []core.Pair[P]  { return dx.pairs }
func (dx *DynamicIndex[P]) srcNegG() []negQueryHasher { return dx.negG }

func (dx *DynamicIndex[P]) beginRead() int {
	dx.mu.RLock()
	return len(dx.points)
}

func (dx *DynamicIndex[P]) endRead() { dx.mu.RUnlock() }

// srcPoint runs inside a beginRead window (mu held shared), so it reads
// the points array directly; Point is the self-locking public variant.
func (dx *DynamicIndex[P]) srcPoint(id int) P { return dx.points[id] }

func (dx *DynamicIndex[P]) appendCandidates(rep int, key uint64, dst []int32) ([]int32, int) {
	probes := 0
	for _, seg := range dx.segments {
		probes++
		for _, local := range seg.lookup(rep, key) {
			if id := seg.globalIDs[local]; !dx.dead.Get(int(id)) {
				dst = append(dst, id)
			}
		}
	}
	for _, fm := range dx.frozen {
		probes++
		for j := fm.bucketHead(rep, key); j >= 0; j = fm.chains[rep][j] {
			if id := fm.ids[j]; !dx.dead.Get(int(id)) {
				dst = append(dst, id)
			}
		}
	}
	if dx.mem.len() > 0 {
		probes++
		mem := dx.mem
		for j := mem.bucketHead(rep, key); j >= 0; j = mem.chains[rep][j] {
			if id := mem.ids[j]; !dx.dead.Get(int(id)) {
				dst = append(dst, id)
			}
		}
	}
	return dst, probes
}

func (dx *DynamicIndex[P]) acquireSQ() *sourceQuerier[P] {
	return dx.queriers.Get().(*sourceQuerier[P])
}
func (dx *DynamicIndex[P]) releaseSQ(sq *sourceQuerier[P]) { dx.queriers.Put(sq) }

// CollectDistinct gathers up to max distinct live candidate ids for q
// (max <= 0 means no limit). The returned slice is freshly allocated and
// owned by the caller; use a DynamicQuerier for the zero-allocation
// variant. Safe for concurrent use — the query holds the structural lock
// shared for its whole read window, so it sees one consistent layer list
// and tombstone state even during compactions and freezes.
func (dx *DynamicIndex[P]) CollectDistinct(q P, max int) []int {
	return collectDistinctOwned[P](dx, q, max)
}

// Candidates streams the live ids colliding with q, repetition by
// repetition across every layer (duplicates across repetitions included),
// invoking visit for each. If visit returns false the scan stops early.
// visit runs inside the query's read window: it must not call back into
// this index's mutating or locking methods, or the scan deadlocks.
func (dx *DynamicIndex[P]) Candidates(q P, visit func(id int) bool) {
	streamCandidates[P](dx, q, visit)
}

// DynamicQuerier is the reusable query scratch of a DynamicIndex,
// mirroring Querier: an epoch-stamped visited array over global ids, a
// negated-query buffer, and reusable candidate/output buffers. A
// DynamicQuerier is not safe for concurrent use; use one per goroutine
// (QueryBatch hands each worker its own). Steady-state queries allocate
// nothing unless the global id space grew since the previous query on
// this querier.
type DynamicQuerier[P any] struct {
	sourceQuerier[P]
}

// NewQuerier returns a fresh DynamicQuerier bound to dx.
func (dx *DynamicIndex[P]) NewQuerier() *DynamicQuerier[P] {
	return &DynamicQuerier[P]{sourceQuerier: *newSourceQuerier[P](dx, 0)}
}

// CollectDistinct gathers up to max distinct live candidate ids for q
// (max <= 0 means no limit): per repetition, the query key probes every
// frozen segment oldest-first, then every detached memtable, then the
// live memtable, skipping tombstoned ids and deduplicating across
// repetitions and layers. The candidate order always equals that of a
// static Index over the live points (with ids mapped through the
// survivors' global ids). The returned slice is owned by the querier and
// valid only until its next use.
func (qr *DynamicQuerier[P]) CollectDistinct(q P, max int) ([]int, QueryStats) {
	return qr.collectDistinct(q, max)
}

// QueryBatch collects distinct live candidates for every query
// concurrently, fanning the batch across opts.Workers workers with one
// pooled querier per worker (so the steady-state batch path does not
// allocate per query). Mutations and compactions may proceed
// concurrently; each individual query sees a consistent snapshot of the
// index, and its QueryStats aggregate the probes and candidates of every
// layer — all segments, detached memtables, and the live memtable — for
// each repetition it executed.
func (dx *DynamicIndex[P]) QueryBatch(queries []P, opts BatchOptions) ([][]int, []QueryStats, BatchStats) {
	return collectBatch[P](dx, queries, opts)
}

// backgroundCompactor merges segments whenever a freeze pushes the count
// past MaxSegments, following opts.Policy. It runs until Close.
func (dx *DynamicIndex[P]) backgroundCompactor() {
	defer dx.wg.Done()
	for {
		select {
		case <-dx.closed:
			return
		case <-dx.compactCh:
			dx.autoCompact()
		}
	}
}

// autoCompact applies the configured policy until the segment count is
// within MaxSegments or the policy has no productive merge left.
func (dx *DynamicIndex[P]) autoCompact() {
	for {
		dx.mu.RLock()
		over := len(dx.segments) > dx.opts.MaxSegments
		dx.mu.RUnlock()
		if !over {
			return
		}
		switch dx.opts.Policy {
		case CompactTiered:
			if !dx.compactTieredStep() {
				return
			}
		case CompactLeveled:
			if !dx.compactLeveledStep() {
				return
			}
		default:
			dx.Compact()
		}
	}
}

// Close stops the background compactor, if one was started, and — for a
// durable index — seals the on-disk state: every pending freeze is
// drained, a final checkpoint (segments + manifest) is written, and the
// WAL is synced and closed. After a clean Close, OpenDynamic recovers
// the exact live set without replaying any log tail.
//
// Close is idempotent and safe to call concurrently with queries and
// mutations (concurrent Close calls seal exactly once). It does not
// invalidate the index: queries and mutations keep working and Compact
// remains explicitly callable — but mutations that land after the seal
// are in-memory only and latch ErrNotJournaled in DurableErr. Durable
// failures during the final checkpoint also surface via DurableErr, not
// from Close itself.
func (dx *DynamicIndex[P]) Close() {
	if dx.compactCh != nil {
		dx.closeOnce.Do(func() {
			close(dx.closed)
			dx.wg.Wait()
		})
	}
	if dx.store != nil {
		dx.store.seal(dx)
	}
}
