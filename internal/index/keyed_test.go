package index

import (
	"reflect"
	"sort"
	"testing"

	"dsh/internal/workload"
	"dsh/internal/xrand"
)

// TestKeyedInsertSemantics pins the upsert contract of the DynamicIndex
// keyed write path: re-inserting a key tombstones the previous version and
// installs the new one atomically, DeleteKeyed removes the newest version,
// and LookupKey always resolves to the latest live version.
func TestKeyedInsertSemantics(t *testing.T) {
	rng := xrand.New(11)
	pts := workload.SpherePoints(rng, 8, testDim)
	dx := NewDynamic(xrand.New(12), dynamicFamily(), 8, nil, DynamicOptions{})

	id0 := dx.InsertKeyed(42, pts[0])
	if got, ok := dx.LookupKey(42); !ok || got != id0 {
		t.Fatalf("LookupKey(42) = %d, %v; want %d, true", got, ok, id0)
	}
	if dx.Len() != 1 {
		t.Fatalf("Len = %d after first keyed insert", dx.Len())
	}

	// Upsert: same key, new point. One live point, old id tombstoned.
	id1 := dx.InsertKeyed(42, pts[1])
	if id1 == id0 {
		t.Fatalf("upsert reused id %d", id1)
	}
	if dx.Len() != 1 {
		t.Fatalf("Len = %d after upsert, want 1", dx.Len())
	}
	if !dx.Deleted(id0) {
		t.Fatal("upsert left the previous version live")
	}
	if got, ok := dx.LookupKey(42); !ok || got != id1 {
		t.Fatalf("LookupKey(42) = %d, %v after upsert; want %d, true", got, ok, id1)
	}

	// A different key is independent.
	id2 := dx.InsertKeyed(7, pts[2])
	if dx.Len() != 2 {
		t.Fatalf("Len = %d with two keys", dx.Len())
	}

	// DeleteKeyed tombstones the newest version and clears the mapping.
	if !dx.DeleteKeyed(42) {
		t.Fatal("DeleteKeyed(42) = false for a live key")
	}
	if dx.DeleteKeyed(42) {
		t.Fatal("double DeleteKeyed(42) = true")
	}
	if !dx.Deleted(id1) {
		t.Fatal("DeleteKeyed left the newest version live")
	}
	if _, ok := dx.LookupKey(42); ok {
		t.Fatal("LookupKey(42) resolved after DeleteKeyed")
	}

	// Deleting the underlying id directly leaves a stale mapping that
	// LookupKey and DeleteKeyed both treat as absent.
	if !dx.Delete(id2) {
		t.Fatal("Delete of keyed id returned false")
	}
	if _, ok := dx.LookupKey(7); ok {
		t.Fatal("LookupKey(7) resolved after Delete by id")
	}
	if dx.DeleteKeyed(7) {
		t.Fatal("DeleteKeyed(7) = true after Delete by id")
	}

	// Re-inserting a deleted key starts fresh.
	id3 := dx.InsertKeyed(42, pts[3])
	if got, ok := dx.LookupKey(42); !ok || got != id3 {
		t.Fatalf("LookupKey(42) = %d, %v after re-insert; want %d, true", got, ok, id3)
	}
	if dx.Len() != 1 {
		t.Fatalf("Len = %d at the end, want 1", dx.Len())
	}
}

// TestKeyedUpsertMatchesStaticRebuild is the keyed differential
// acceptance test: after re-inserting a small pool of keys many times
// (interleaved with keyed deletes, flushes and GC compactions) on a
// hash-routed sharded index with the leveled policy, every query's
// candidate id set and its Candidates/Distinct/Verified counters must be
// bit-identical to a single-shard — and a static — rebuild containing
// only the latest version of each key, under the same rng stream.
func TestKeyedUpsertMatchesStaticRebuild(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		fam := dynamicFamily()
		const L = 16
		const keyPool = 60

		sx := NewSharded[[]float64](xrand.New(seed), fam, L, nil, ShardOptions{
			Shards:  4,
			Routing: RouteHash,
			Dynamic: DynamicOptions{MemtableThreshold: 24, Policy: CompactLeveled},
		})
		mrng := xrand.New(seed * 777)
		latest := make(map[uint64][]float64, keyPool) // key -> live latest version
		for op := 0; op < 600; op++ {
			key := uint64(mrng.Intn(keyPool))
			switch r := mrng.Float64(); {
			case r < 0.70:
				p := workload.SpherePoints(mrng, 1, testDim)[0]
				sx.InsertKeyed(key, p)
				latest[key] = p
			case r < 0.90:
				_, live := latest[key]
				if got := sx.DeleteKeyed(key); got != live {
					t.Fatalf("seed %d: DeleteKeyed(%d) = %v with live=%v", seed, key, got, live)
				}
				delete(latest, key)
			case r < 0.97:
				sx.Flush()
			default:
				sx.Compact() // leveled: bottom-level GC merge on every shard
			}
		}
		if sx.Len() != len(latest) {
			t.Fatalf("seed %d: Len() = %d, want %d live keys", seed, sx.Len(), len(latest))
		}

		within := withinSim(0.2, 0.8)
		shardRR := NewRangeReporterOver[[]float64](sx, within)

		// The reference indexes are rebuilt per check: a GC renumbers each
		// shard's local ids independently, so the survivors' global-id
		// order can change across a compaction — only the (key -> latest
		// point) set is invariant. Ids come from LookupKey, so the mapping
		// below is correct in whatever id space is current.
		check := func(label string) {
			t.Helper()
			type kv struct {
				id int
				p  []float64
			}
			var rows []kv
			for key, p := range latest {
				id, ok := sx.LookupKey(key)
				if !ok {
					t.Fatalf("seed %d %s: live key %d did not resolve", seed, label, key)
				}
				if !reflect.DeepEqual(sx.Point(id), p) {
					t.Fatalf("seed %d %s: key %d resolved to a stale version", seed, label, key)
				}
				rows = append(rows, kv{id, p})
			}
			sort.Slice(rows, func(i, j int) bool { return rows[i].id < rows[j].id })
			survivors := make([][]float64, len(rows))
			toPos := make(map[int]int, len(rows))
			for pos, r := range rows {
				survivors[pos] = r.p
				toPos[r.id] = pos
			}
			mapSorted := func(qi int, global []int) []int {
				t.Helper()
				out := make([]int, len(global))
				for i, id := range global {
					pos, ok := toPos[id]
					if !ok {
						t.Fatalf("seed %d %s query %d: candidate %d is not a live key's id", seed, label, qi, id)
					}
					out[i] = pos
				}
				sort.Ints(out)
				return out
			}

			single := NewSharded(xrand.New(seed), fam, L, survivors,
				ShardOptions{Shards: 1, Dynamic: DynamicOptions{}})
			static := New(xrand.New(seed), fam, L, survivors)
			singleRR := NewRangeReporterOver[[]float64](single, within)
			queries := workload.SpherePoints(xrand.New(seed*999), 20, testDim)
			queries = append(queries, survivors[:min(4, len(survivors))]...)

			for qi, q := range queries {
				got := sx.CollectDistinct(q, 0)
				gotPos := mapSorted(qi, got)
				want := static.CollectDistinct(q, 0)
				sort.Ints(want)
				if (len(gotPos) > 0 || len(want) > 0) && !reflect.DeepEqual(gotPos, want) {
					t.Fatalf("seed %d %s query %d: keyed ids %v != static %v", seed, label, qi, gotPos, want)
				}

				sq := sx.acquireSQ()
				_, gotStats := sq.collectDistinct(q, 0)
				sx.releaseSQ(sq)
				uq := single.acquireSQ()
				_, wantStats := uq.collectDistinct(q, 0)
				single.releaseSQ(uq)
				if gotStats.Candidates != wantStats.Candidates || gotStats.Distinct != wantStats.Distinct {
					t.Fatalf("seed %d %s query %d: keyed stats %+v != single-shard %+v", seed, label, qi, gotStats, wantStats)
				}

				gotIDs, gotRS := shardRR.Query(q)
				wantIDs, wantRS := singleRR.Query(q)
				gotRPos := mapSorted(qi, gotIDs)
				wantSorted := append([]int(nil), wantIDs...)
				sort.Ints(wantSorted)
				if (len(gotRPos) > 0 || len(wantSorted) > 0) && !reflect.DeepEqual(gotRPos, wantSorted) {
					t.Fatalf("seed %d %s query %d: keyed range %v != single-shard %v", seed, label, qi, gotRPos, wantSorted)
				}
				if gotRS.Candidates != wantRS.Candidates || gotRS.Distinct != wantRS.Distinct || gotRS.Verified != wantRS.Verified {
					t.Fatalf("seed %d %s query %d: keyed range stats %+v != single-shard %+v", seed, label, qi, gotRS, wantRS)
				}
			}
		}

		check("pre-compact")
		sx.Compact() // leveled: GC merge may renumber ids on every shard
		check("post-compact")
		sx.Close()
	}
}

// TestLeveledGCMatchesStaticRebuild checks the id-renumbering contract of
// the bottom-level GC merge on a single DynamicIndex: after churn and a GC
// compaction, survivors occupy the dense id space 0..S-1 in insertion
// order, so candidate streams equal a static rebuild over the survivors
// directly — no id mapping at all. A mid-churn GC exercises churn
// continuing over a renumbered id space.
func TestLeveledGCMatchesStaticRebuild(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		fam := dynamicFamily()
		const L = 18
		initial := workload.SpherePoints(xrand.New(seed*100), 100, testDim)
		dx := NewDynamic(xrand.New(seed), fam, L, initial,
			DynamicOptions{MemtableThreshold: 40, Policy: CompactLeveled})

		mrng := xrand.New(seed * 777)
		live := make([]int, len(initial)) // current ids of live points
		for i := range live {
			live[i] = i
		}
		churn := func(ops int) {
			for op := 0; op < ops; op++ {
				switch r := mrng.Float64(); {
				case r < 0.50:
					live = append(live, dx.Insert(workload.SpherePoints(mrng, 1, testDim)[0]))
				case r < 0.90:
					if len(live) == 0 {
						continue
					}
					i := mrng.Intn(len(live))
					if !dx.Delete(live[i]) {
						t.Fatalf("seed %d: Delete(%d) = false for a live id", seed, live[i])
					}
					live = append(live[:i], live[i+1:]...)
				default:
					dx.Flush()
				}
			}
		}
		gc := func() {
			// The GC renumbers the survivors densely in ascending old-id
			// order; track the same renumbering locally.
			dx.Compact()
			sort.Ints(live)
			for i := range live {
				live[i] = i
			}
		}

		churn(300)
		gc()
		churn(300)
		gc()

		if dx.Len() != len(live) {
			t.Fatalf("seed %d: Len() = %d, want %d", seed, dx.Len(), len(live))
		}
		if got := dx.Segments(); got != 1 {
			t.Fatalf("seed %d: %d segments after GC", seed, got)
		}
		survivors := make([][]float64, len(live))
		for i := range live {
			if dx.Deleted(i) {
				t.Fatalf("seed %d: dense id %d tombstoned after GC", seed, i)
			}
			survivors[i] = dx.Point(i)
		}

		static := New(xrand.New(seed), fam, L, survivors)
		queries := workload.SpherePoints(xrand.New(seed*999), 24, testDim)
		queries = append(queries, survivors[:min(4, len(survivors))]...)
		for qi, q := range queries {
			got := dx.CollectDistinct(q, 0)
			want := static.CollectDistinct(q, 0)
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d query %d: post-GC candidates %v != static %v (dense ids must match without mapping)", seed, qi, got, want)
			}
		}
	}
}

// TestLeveledGCBoundsDeadRows is the garbage acceptance test: under a
// 50%-delete churn the leveled policy's step-driven compaction keeps dead
// rows bounded, and the bottom-level GC merge reclaims both table rows and
// tombstone-bitmap storage — dead/live < 10% post-GC, a strictly smaller
// bitmap, and non-zero reclamation counters.
func TestLeveledGCBoundsDeadRows(t *testing.T) {
	dx := NewDynamic(xrand.New(21), dynamicFamily(), 8, nil,
		DynamicOptions{MemtableThreshold: 128, Policy: CompactLeveled})
	mrng := xrand.New(22)

	var ids []int
	collected := 0
	for op := 0; op < 6000; op++ {
		if len(ids) > 0 && mrng.Bernoulli(0.5) {
			i := mrng.Intn(len(ids))
			dx.Delete(ids[i])
			ids = append(ids[:i], ids[i+1:]...)
		} else {
			ids = append(ids, dx.Insert(workload.SpherePoints(mrng, 1, testDim)[0]))
		}
		if op%500 == 499 {
			// Drive the policy the way the background compactor would.
			for dx.compactLeveledStep() {
			}
			st := dx.GCStats()
			// CollectedRows moves only when a GC merge dropped rows — and
			// then ids were renumbered: survivors keep their ascending-id
			// order, so rebase the tracked ids onto the dense space.
			if st.CollectedRows != collected {
				collected = st.CollectedRows
				sort.Ints(ids)
				for i := range ids {
					ids[i] = i
				}
			}
			// The step trigger fires at dead*growth >= live+1, so the
			// steady-state garbage ratio stays within ~1/growth of live.
			if growth := dx.opts.GrowthFactor; st.DeadRows*growth > st.LiveRows+1+st.DeadRows {
				t.Fatalf("op %d: leveled steps left %d dead rows against %d live", op, st.DeadRows, st.LiveRows)
			}
		}
	}

	// Build a 50% garbage load, then reclaim it with one explicit GC merge.
	for i := 0; i < len(ids)/2; i++ {
		dx.Delete(ids[i])
	}
	ids = ids[len(ids)/2:]
	before := dx.GCStats()
	if before.DeadRows == 0 || before.BitmapBytes == 0 {
		t.Fatalf("delete burst left no garbage: %+v", before)
	}
	dx.Compact() // explicit bottom-level GC merge
	after := dx.GCStats()

	if after.LiveRows != len(ids) {
		t.Fatalf("post-GC LiveRows = %d, want %d", after.LiveRows, len(ids))
	}
	if after.DeadRows*10 >= after.LiveRows {
		t.Fatalf("post-GC dead/live = %d/%d, want < 10%%", after.DeadRows, after.LiveRows)
	}
	if after.BitmapBytes >= before.BitmapBytes {
		t.Fatalf("bitmap bytes did not shrink: %d -> %d", before.BitmapBytes, after.BitmapBytes)
	}
	if after.CollectedRows <= 0 {
		t.Fatal("CollectedRows = 0 after GC merges")
	}
	if after.ReclaimedBitmapBytes <= 0 {
		t.Fatal("ReclaimedBitmapBytes = 0 after GC merges")
	}
}

// TestLeveledUpperMergeStep checks the non-GC step of the leveled policy:
// with a big bottom segment and a small upper tier, compactUpperStep folds
// only the upper segments — the bottom segment is untouched (same object),
// ids do not move, and every query answer is preserved.
func TestLeveledUpperMergeStep(t *testing.T) {
	initial := workload.SpherePoints(xrand.New(31), 600, testDim)
	dx := NewDynamic(xrand.New(32), dynamicFamily(), 10, initial,
		DynamicOptions{MemtableThreshold: 1 << 20, Policy: CompactLeveled})
	mrng := xrand.New(33)
	for b := 0; b < 3; b++ {
		for i := 0; i < 20; i++ {
			dx.Insert(workload.SpherePoints(mrng, 1, testDim)[0])
		}
		dx.Flush()
	}
	if got := dx.Segments(); got != 4 {
		t.Fatalf("setup produced %d segments, want 4", got)
	}
	bottom := dx.segments[0]

	queries := workload.SpherePoints(xrand.New(34), 16, testDim)
	before := make([][]int, len(queries))
	for i, q := range queries {
		before[i] = dx.CollectDistinct(q, 0)
	}

	if !dx.compactUpperStep() {
		t.Fatal("compactUpperStep = false with three upper segments")
	}
	if got := dx.Segments(); got != 2 {
		t.Fatalf("upper merge left %d segments, want 2", got)
	}
	if dx.segments[0] != bottom {
		t.Fatal("upper merge rewrote the bottom segment")
	}
	for i, q := range queries {
		if got := dx.CollectDistinct(q, 0); !reflect.DeepEqual(got, before[i]) {
			t.Fatalf("query %d diverged after upper merge: %v != %v", i, got, before[i])
		}
	}
	// With nothing left to fold and no garbage pressure, the policy rests.
	if dx.compactUpperStep() {
		t.Fatal("compactUpperStep reported work with a single upper segment")
	}
}

// TestLeveledSteadyStateZeroAlloc pins the allocation contract on the new
// paths: after a GC compaction, warmed queriers on a leveled DynamicIndex
// and on a hash-routed leveled ShardedIndex perform no heap allocations
// per query.
func TestLeveledSteadyStateZeroAlloc(t *testing.T) {
	pts := workload.SpherePoints(xrand.New(41), 600, testDim)
	dx := NewDynamic(xrand.New(42), dynamicFamily(), 10, pts[:300],
		DynamicOptions{MemtableThreshold: 64, Policy: CompactLeveled})
	for i, p := range pts[300:500] {
		id := dx.Insert(p)
		if i%3 == 0 {
			dx.Delete(id)
		}
	}
	dx.Compact()
	q := pts[550]
	qr := dx.NewQuerier()
	qr.CollectDistinct(q, 0)
	if allocs := testing.AllocsPerRun(100, func() { qr.CollectDistinct(q, 0) }); allocs != 0 {
		t.Errorf("leveled DynamicIndex steady-state query allocates %.1f/op", allocs)
	}

	sx := NewSharded[[]float64](xrand.New(42), dynamicFamily(), 10, nil, ShardOptions{
		Shards:  4,
		Routing: RouteHash,
		Dynamic: DynamicOptions{MemtableThreshold: 64, Policy: CompactLeveled},
	})
	for i, p := range pts[:400] {
		sx.InsertKeyed(uint64(i%300), p)
	}
	for i := 0; i < 100; i += 2 {
		sx.DeleteKeyed(uint64(i))
	}
	sx.Compact()
	sq := sx.NewQuerier()
	sq.CollectDistinct(q, 0)
	if allocs := testing.AllocsPerRun(100, func() { sq.CollectDistinct(q, 0) }); allocs != 0 {
		t.Errorf("hash-routed ShardedIndex steady-state query allocates %.1f/op", allocs)
	}
}

// TestKeyedGuardMessages locks in the constructor- and misuse-panic
// messages of the keyed write path and the leveled policy.
func TestKeyedGuardMessages(t *testing.T) {
	fam := dynamicFamily()
	p := workload.SpherePoints(xrand.New(51), 1, testDim)[0]

	hashed := NewSharded[[]float64](xrand.New(52), fam, 4, nil,
		ShardOptions{Shards: 2, Routing: RouteHash})
	mustPanicMessage(t, "index: Insert on hash-routed ShardedIndex (use InsertKeyed)",
		func() { hashed.Insert(p) })
	hashed.InsertKeyed(1, p) // sanity: the matching routing works
	hashed.Close()
	mustPanicMessage(t, "index: InsertKeyed on closed ShardedIndex",
		func() { hashed.InsertKeyed(2, p) })

	rr := NewSharded[[]float64](xrand.New(53), fam, 4, nil, ShardOptions{Shards: 2})
	mustPanicMessage(t, "index: InsertKeyed on round-robin ShardedIndex (set ShardOptions.Routing to RouteHash)",
		func() { rr.InsertKeyed(1, p) })
	rr.Insert(p)
	rr.Close()

	mustPanicMessage(t, "index: compaction growth factor must be positive", func() {
		NewDynamic[[]float64](xrand.New(54), fam, 4, nil,
			DynamicOptions{Policy: CompactLeveled, GrowthFactor: -1})
	})
	mustPanicMessage(t, "index: compaction growth factor must be positive", func() {
		NewSharded[[]float64](xrand.New(55), fam, 4, nil,
			ShardOptions{Shards: 2, Dynamic: DynamicOptions{GrowthFactor: -2}})
	})
}
