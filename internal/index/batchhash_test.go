package index

import (
	"reflect"
	"testing"

	"dsh/internal/core"
	"dsh/internal/sphere"
	"dsh/internal/workload"
	"dsh/internal/xrand"
)

// statsEqualIgnoringLatency compares two QueryStats counter-by-counter.
// The batch pre-hash moves hashing out of the per-query critical section,
// so Latency is the one field allowed to differ.
func statsEqualIgnoringLatency(a, b QueryStats) bool {
	a.Latency, b.Latency = 0, 0
	return a == b
}

// blockHashFamilies covers every per-repetition path blockHash can take:
// the core.BatchHasher fast path (fast cross-polytope, packed simhash),
// the HashNeg pre-negated path (the anti families' negatedHasher is not a
// BatchHasher), and the scalar g.Hash fallback (Power-of-SimHash hashers
// are combinedHashers).
var blockHashFamilies = map[string]core.Family[[]float64]{
	"fastcp":        sphere.FastCrossPolytope(testDim),
	"fastanticp":    sphere.FastAntiCrossPolytope(testDim),
	"batchsimhash":  sphere.PackedSimHash(testDim, 6),
	"power-simhash": core.Power[[]float64](sphere.SimHash(testDim), 4),
}

// TestBatchHashIdenticalToScalar is the engine-level differential test:
// for every hashing path, QueryBatch with the repetition-blocked pre-hash
// (the default) must return exactly the ids and stats of QueryBatch with
// NoBlockHash and of sequential CollectDistinct calls.
func TestBatchHashIdenticalToScalar(t *testing.T) {
	for name, fam := range blockHashFamilies {
		t.Run(name, func(t *testing.T) {
			rng := xrand.New(51)
			pts := workload.SpherePoints(rng, 400, testDim)
			ix := New(rng, fam, 16, pts)
			queries := workload.SpherePoints(rng, 40, testDim)

			pre, prePer, _ := ix.QueryBatch(queries, BatchOptions{Workers: 4})
			scalar, scalarPer, _ := ix.QueryBatch(queries, BatchOptions{Workers: 4, NoBlockHash: true})
			if !reflect.DeepEqual(pre, scalar) {
				t.Fatal("pre-hashed batch results differ from NoBlockHash results")
			}
			for i, q := range queries {
				if !statsEqualIgnoringLatency(prePer[i], scalarPer[i]) {
					t.Fatalf("query %d: pre-hash stats %+v != scalar stats %+v", i, prePer[i], scalarPer[i])
				}
				want := ix.CollectDistinct(q, 0)
				if len(want) == 0 {
					want = nil
				}
				if !reflect.DeepEqual(pre[i], want) {
					t.Fatalf("query %d: batch %v != sequential %v", i, pre[i], want)
				}
			}
		})
	}
}

// TestBatchHashKeyBlockMatchesGKeys unit-tests blockHash itself: every
// entry of the rep-major key block must equal what the scalar query path
// computes for that (repetition, query) cell, for both the plain and the
// negated-query families.
func TestBatchHashKeyBlockMatchesGKeys(t *testing.T) {
	for _, name := range []string{"fastcp", "fastanticp", "power-simhash"} {
		fam := blockHashFamilies[name]
		t.Run(name, func(t *testing.T) {
			rng := xrand.New(52)
			pts := workload.SpherePoints(rng, 50, testDim)
			ix := New(rng, fam, 12, pts)
			queries := workload.SpherePoints(rng, 16, testDim)

			bk := blockHash[[]float64](ix, queries, 4)
			if bk == nil {
				t.Fatal("blockHash skipped a batch above the minimum size")
			}
			defer bk.release()
			sq := ix.acquireSQ()
			defer ix.releaseSQ(sq)
			for i := range ix.pairs {
				for j, q := range queries {
					sq.negOK = false // fresh query, like the scalar path
					if got, want := bk.keys[i*bk.q+j], sq.gKey(i, q); got != want {
						t.Fatalf("rep %d query %d: block key %d != scalar gKey %d", i, j, got, want)
					}
				}
			}
		})
	}
}

// TestBatchHashSmallBatchFallsBack pins the minimum-size gate: batches
// under blockHashMinQueries skip the pre-hash entirely and still return
// sequential results.
func TestBatchHashSmallBatchFallsBack(t *testing.T) {
	rng := xrand.New(53)
	pts := workload.SpherePoints(rng, 200, testDim)
	ix := New(rng, sphere.FastCrossPolytope(testDim), 12, pts)
	queries := workload.SpherePoints(rng, blockHashMinQueries-1, testDim)
	if bk := blockHash[[]float64](ix, queries, 4); bk != nil {
		bk.release()
		t.Fatal("blockHash should skip batches below blockHashMinQueries")
	}
	got, _, _ := ix.QueryBatch(queries, BatchOptions{Workers: 2})
	for i, q := range queries {
		want := ix.CollectDistinct(q, 0)
		if len(want) == 0 {
			want = nil
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("query %d: small batch %v != sequential %v", i, got[i], want)
		}
	}
}

// TestBatchHashDynamicWithDeletes runs the differential over the LSM
// backend mid-churn: frozen segments, a live memtable, and tombstones all
// sit under the same candidateSource contract, so the pre-hashed batch
// must match the scalar batch there too.
func TestBatchHashDynamicWithDeletes(t *testing.T) {
	rng := xrand.New(54)
	dx := NewDynamic[[]float64](rng, sphere.FastCrossPolytope(testDim), 12, nil,
		DynamicOptions{MemtableThreshold: 64})
	pts := workload.SpherePoints(rng, 300, testDim)
	for _, p := range pts {
		dx.Insert(p)
	}
	for id := 0; id < 300; id += 7 {
		dx.Delete(id)
	}
	queries := workload.SpherePoints(rng, 32, testDim)
	pre, prePer, _ := dx.QueryBatch(queries, BatchOptions{Workers: 4})
	scalar, scalarPer, _ := dx.QueryBatch(queries, BatchOptions{Workers: 4, NoBlockHash: true})
	if !reflect.DeepEqual(pre, scalar) {
		t.Fatal("dynamic pre-hashed batch differs from NoBlockHash batch")
	}
	for i := range queries {
		if !statsEqualIgnoringLatency(prePer[i], scalarPer[i]) {
			t.Fatalf("query %d: pre-hash stats %+v != scalar stats %+v", i, prePer[i], scalarPer[i])
		}
	}
}

// TestBatchHashRangeReporter covers the range-reporting veneer, the other
// batch entry point that consumes the key block.
func TestBatchHashRangeReporter(t *testing.T) {
	rng := xrand.New(55)
	pts := workload.SpherePoints(rng, 400, testDim)
	rr := NewRangeReporter(rng, sphere.FastCrossPolytope(testDim), 16, pts, withinSim(0.2, 1.0))
	queries := workload.SpherePoints(rng, 24, testDim)
	pre, prePer, _ := rr.QueryBatch(queries, BatchOptions{Workers: 4})
	scalar, scalarPer, _ := rr.QueryBatch(queries, BatchOptions{Workers: 4, NoBlockHash: true})
	if !reflect.DeepEqual(pre, scalar) {
		t.Fatal("range-reporter pre-hashed batch differs from NoBlockHash batch")
	}
	for i, q := range queries {
		if !statsEqualIgnoringLatency(prePer[i], scalarPer[i]) {
			t.Fatalf("query %d: pre-hash stats %+v != scalar stats %+v", i, prePer[i], scalarPer[i])
		}
		wantIDs, _ := rr.Query(q)
		if !reflect.DeepEqual(pre[i], wantIDs) {
			t.Fatalf("query %d: batch %v != sequential %v", i, pre[i], wantIDs)
		}
	}
}

// scalarOnly wraps a family so its sampled hashers expose only Hash,
// hiding BatchHasher (and HashNeg) from the index layer.
type scalarOnly struct{ inner core.Family[[]float64] }

func (s scalarOnly) Name() string   { return s.inner.Name() }
func (s scalarOnly) CPF() core.CPF  { return s.inner.CPF() }
func (s scalarOnly) Sample(rng *xrand.Rand) core.Pair[[]float64] {
	pair := s.inner.Sample(rng)
	return core.Pair[[]float64]{
		H: core.HasherFunc[[]float64](pair.H.Hash),
		G: core.HasherFunc[[]float64](pair.G.Hash),
	}
}

// TestBatchHashBuildPathIdentical checks Index.New's HashBatch build fast
// path: an index built through HashBatch must be probe-for-probe identical
// to one built through per-point Hash calls over the same draws.
func TestBatchHashBuildPathIdentical(t *testing.T) {
	for _, name := range []string{"fastcp", "batchsimhash"} {
		fam := blockHashFamilies[name]
		t.Run(name, func(t *testing.T) {
			pts := workload.SpherePoints(xrand.New(56), 300, testDim)
			batched := New(xrand.New(57), fam, 12, pts)
			scalar := New(xrand.New(57), scalarOnly{inner: fam}, 12, pts)
			if !reflect.DeepEqual(batched.tables, scalar.tables) {
				t.Fatal("HashBatch-built tables differ from Hash-built tables")
			}
		})
	}
}
