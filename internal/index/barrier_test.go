package index

import (
	"sync"
	"testing"

	"dsh/internal/workload"
	"dsh/internal/xrand"
)

// seqPoint encodes a writer id and a per-writer sequence number into a
// point (the remaining coordinates are a deterministic fill so hashing
// spreads buckets); decoded by the snapshot checker below.
func seqPoint(writer, seq int) []float64 {
	p := make([]float64, testDim)
	p[0] = float64(writer)
	p[1] = float64(seq)
	for i := 2; i < testDim; i++ {
		p[i] = float64((writer*31+seq*17+i)%13) - 6
	}
	return p
}

// TestSnapshotBarrierSingleInstant is the epoch-barrier race test: W
// writers mutate a hash-routed sharded index (keyed inserts plus trailing
// keyed deletes, so every writer's footprint is a sliding window of
// sequence numbers whose keys scatter across shards) while a snapshotter
// repeatedly takes global snapshots. The single-instant invariant: in any
// snapshot, each writer's visible sequence numbers form one contiguous
// window — the writer issues its ops strictly one after another, so a view
// that contains op i+1's effect but not op i's mixes two points in time
// and can only come from shards pinned at different instants. Run it with
// -race in CI to also exercise the locking discipline.
func TestSnapshotBarrierSingleInstant(t *testing.T) {
	const (
		W      = 4
		ops    = 400
		window = 8
		snaps  = 60
	)
	sx := NewSharded[[]float64](xrand.New(61), dynamicFamily(), 6, nil, ShardOptions{
		Shards:  4,
		Routing: RouteHash,
		Dynamic: DynamicOptions{MemtableThreshold: 32, AsyncFreeze: true},
	})
	defer sx.Close()

	key := func(writer, seq int) uint64 { return uint64(writer)<<32 | uint64(seq) }

	var wg sync.WaitGroup
	for w := 0; w < W; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for seq := 0; seq < ops; seq++ {
				sx.InsertKeyed(key(w, seq), seqPoint(w, seq))
				if old := seq - window; old >= 0 {
					if !sx.DeleteKeyed(key(w, old)) {
						t.Errorf("writer %d: DeleteKeyed(seq %d) = false", w, old)
						return
					}
				}
			}
		}(w)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	checked := 0
	for running := true; running || checked < snaps; checked++ {
		select {
		case <-done:
			running = false
		default:
		}
		snap := sx.Snapshot()
		var minSeq, maxSeq, count [W]int
		for i := range minSeq {
			minSeq[i] = ops
			maxSeq[i] = -1
		}
		total := 0
		for _, id := range snap.AppendLiveIDs(nil) {
			p := snap.Point(id)
			w, seq := int(p[0]), int(p[1])
			if w < 0 || w >= W || seq < 0 || seq >= ops {
				t.Fatalf("snapshot %d: live id %d decodes to impossible (writer %d, seq %d)", checked, id, w, seq)
			}
			count[w]++
			if seq < minSeq[w] {
				minSeq[w] = seq
			}
			if seq > maxSeq[w] {
				maxSeq[w] = seq
			}
			total++
		}
		if total != snap.Len() {
			t.Fatalf("snapshot %d: scanned %d live ids, Len() = %d", checked, total, snap.Len())
		}
		for w := 0; w < W; w++ {
			if count[w] == 0 {
				continue
			}
			// Contiguity: a gap means op i is missing while op j > i is
			// visible — two different instants across shards.
			if got := maxSeq[w] - minSeq[w] + 1; got != count[w] {
				t.Fatalf("snapshot %d: writer %d window [%d,%d] holds %d seqs, want %d — not a single instant",
					checked, w, minSeq[w], maxSeq[w], count[w], got)
			}
			// The window invariant additionally bounds the spread: at any
			// instant at most window+1 versions are visible (op window+1
			// deletes the tail before inserting the head... the insert of
			// seq s precedes the delete of s-window, so both may be live).
			if count[w] > window+1 {
				t.Fatalf("snapshot %d: writer %d has %d live seqs, want <= %d",
					checked, w, count[w], window+1)
			}
		}
		snap.Release()
	}
	if checked < snaps {
		t.Fatalf("only %d snapshots checked", checked)
	}

	// Quiescent final state: every writer's last `window` versions live.
	if got, want := sx.Len(), W*window; got != want {
		t.Fatalf("final Len = %d, want %d", got, want)
	}

	// The fallback (stop-the-world) path must also produce a valid
	// snapshot; force it by exhausting the optimistic attempts under a
	// dedicated writer hammering epochs.
	stop := make(chan struct{})
	var hammer sync.WaitGroup
	hammer.Add(1)
	go func() {
		defer hammer.Done()
		pts := workload.SpherePoints(xrand.New(62), 64, testDim)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				sx.InsertKeyed(key(W, i%64), pts[i%64])
			}
		}
	}()
	for i := 0; i < 20; i++ {
		snap := sx.Snapshot()
		if snap.Len() == 0 {
			t.Fatal("snapshot under write load lost the quiescent state")
		}
		snap.Release()
	}
	close(stop)
	hammer.Wait()
}
