package index

import (
	"reflect"
	"sort"
	"sync"
	"testing"

	"dsh/internal/workload"
	"dsh/internal/xrand"
)

// churnSharded applies a deterministic interleaving of inserts, deletes,
// flushes and compactions to sx, returning the surviving points in
// ascending global-id order together with each survivor's global id.
func churnSharded(t *testing.T, rng *xrand.Rand, sx *ShardedIndex[[]float64], initial, ops int) (survivors [][]float64, ids []int) {
	t.Helper()
	inserted := make([]int, 0, initial+ops)
	for i := 0; i < initial; i++ {
		inserted = append(inserted, i)
	}
	for op := 0; op < ops; op++ {
		switch r := rng.Float64(); {
		case r < 0.55:
			inserted = append(inserted, sx.Insert(workload.SpherePoints(rng, 1, testDim)[0]))
		case r < 0.85:
			if len(inserted) == 0 {
				continue
			}
			victim := inserted[rng.Intn(len(inserted))]
			was := sx.Deleted(victim)
			if got := sx.Delete(victim); got == was {
				t.Fatalf("Delete(%d) = %v with Deleted()=%v", victim, got, was)
			}
		case r < 0.95:
			sx.Flush()
		default:
			sx.Compact()
		}
	}
	sort.Ints(inserted)
	for _, id := range inserted {
		if !sx.Deleted(id) {
			survivors = append(survivors, sx.Point(id))
			ids = append(ids, id)
		}
	}
	return survivors, ids
}

// TestShardedMatchesSingleShardRebuild is the sharded differential
// acceptance test: after an arbitrary interleaving of inserts, deletes,
// flushes and compactions on a 4-shard index, every query's candidate id
// set and its Candidates/Distinct/Verified counters must be bit-identical
// to a single-shard rebuild — and a static rebuild — over the same
// survivors with the same rng stream. Only the candidate order
// (shard-major versus id-major) and the Probes layering counter may
// differ.
func TestShardedMatchesSingleShardRebuild(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		fam := dynamicFamily()
		const L = 16
		initial := workload.SpherePoints(xrand.New(seed*100), 121, testDim)

		sx := NewSharded(xrand.New(seed), fam, L, initial,
			ShardOptions{Shards: 4, Dynamic: DynamicOptions{MemtableThreshold: 24}})
		survivors, ids := churnSharded(t, xrand.New(seed*777), sx, len(initial), 400)
		if sx.Len() != len(survivors) {
			t.Fatalf("seed %d: Len() = %d, want %d survivors", seed, sx.Len(), len(survivors))
		}

		// Single-shard rebuild over the survivors with the same rng
		// stream: NewSharded consumes rng exactly like New, and with one
		// shard global ids equal positions 0..n-1.
		single := NewSharded(xrand.New(seed), fam, L, survivors,
			ShardOptions{Shards: 1, Dynamic: DynamicOptions{}})
		static := New(xrand.New(seed), fam, L, survivors)
		toPos := make(map[int]int, len(ids))
		for pos, id := range ids {
			toPos[id] = pos
		}
		mapSorted := func(label string, qi int, global []int) []int {
			t.Helper()
			out := make([]int, len(global))
			for i, id := range global {
				pos, ok := toPos[id]
				if !ok {
					t.Fatalf("seed %d %s query %d: candidate %d is not a survivor", seed, label, qi, id)
				}
				out[i] = pos
			}
			sort.Ints(out)
			return out
		}

		queries := workload.SpherePoints(xrand.New(seed*999), 24, testDim)
		queries = append(queries, survivors[:min(4, len(survivors))]...)

		within := withinSim(0.2, 0.8)
		shardRR := NewRangeReporterOver[[]float64](sx, within)
		singleRR := NewRangeReporterOver[[]float64](single, within)
		shardAI := NewAnnulusOver[[]float64](sx, within)

		check := func(label string) {
			t.Helper()
			for qi, q := range queries {
				for _, max := range []int{0, 5} {
					sq := sx.acquireSQ()
					got, gotStats := sq.collectDistinct(q, max)
					gotPos := mapSorted(label, qi, got)
					sx.releaseSQ(sq)
					uq := single.acquireSQ()
					want, wantStats := uq.collectDistinct(q, max)
					wantPos := append([]int(nil), want...)
					single.releaseSQ(uq)
					sort.Ints(wantPos)
					// Under truncation the first-max distinct ids depend
					// on candidate order (shard-major versus id-major),
					// so the id-set comparison applies to the full scan;
					// the work counters must be bit-identical either way
					// (the cutoff repetition is order-independent).
					if max == 0 && (len(gotPos) > 0 || len(wantPos) > 0) && !reflect.DeepEqual(gotPos, wantPos) {
						t.Fatalf("seed %d %s query %d: sharded ids %v != single-shard %v", seed, label, qi, gotPos, wantPos)
					}
					if gotStats.Candidates != wantStats.Candidates || gotStats.Distinct != wantStats.Distinct {
						t.Fatalf("seed %d %s query %d max=%d: sharded stats %+v != single-shard %+v", seed, label, qi, max, gotStats, wantStats)
					}
					// And against the fully static rebuild.
					if max == 0 {
						staticIDs := static.CollectDistinct(q, 0)
						sort.Ints(staticIDs)
						if (len(gotPos) > 0 || len(staticIDs) > 0) && !reflect.DeepEqual(gotPos, staticIDs) {
							t.Fatalf("seed %d %s query %d: sharded ids %v != static %v", seed, label, qi, gotPos, staticIDs)
						}
					}
				}

				gotIDs, gotRS := shardRR.Query(q)
				wantIDs, wantRS := singleRR.Query(q)
				gotPos := mapSorted(label, qi, gotIDs)
				wantSorted := append([]int(nil), wantIDs...)
				sort.Ints(wantSorted)
				if (len(gotPos) > 0 || len(wantSorted) > 0) && !reflect.DeepEqual(gotPos, wantSorted) {
					t.Fatalf("seed %d %s query %d: sharded range %v != single-shard %v", seed, label, qi, gotPos, wantSorted)
				}
				if gotRS.Candidates != wantRS.Candidates || gotRS.Distinct != wantRS.Distinct || gotRS.Verified != wantRS.Verified {
					t.Fatalf("seed %d %s query %d: sharded range stats %+v != single-shard %+v", seed, label, qi, gotRS, wantRS)
				}

				// The annulus veneer scans in shard-major order, so pin
				// semantics rather than the exact hit: any hit must be a
				// live survivor satisfying the predicate.
				if hit, _ := shardAI.Query(q); hit >= 0 {
					if _, ok := toPos[hit]; !ok {
						t.Fatalf("seed %d %s query %d: annulus hit %d is not a survivor", seed, label, qi, hit)
					}
					if !within(q, sx.Point(hit)) {
						t.Fatalf("seed %d %s query %d: annulus hit %d fails the predicate", seed, label, qi, hit)
					}
				}
			}
		}

		check("pre-compact")
		sx.Compact()
		for s := 0; s < sx.Shards(); s++ {
			if got := sx.Shard(s).Segments(); got > 1 {
				t.Fatalf("seed %d: shard %d has %d segments after Compact", seed, s, got)
			}
		}
		check("post-compact")

		// The sharded snapshot pins the same state as the live index at
		// quiescence.
		snap := sx.Snapshot()
		if snap.Len() != sx.Len() {
			t.Fatalf("seed %d: snapshot Len %d != live %d", seed, snap.Len(), sx.Len())
		}
		if got := snap.AppendLiveIDs(nil); !reflect.DeepEqual(got, ids) {
			t.Fatalf("seed %d: snapshot live ids != survivor ids", seed)
		}
		for qi, q := range queries {
			a := sx.CollectDistinct(q, 0)
			b := snap.CollectDistinct(q, 0)
			if (len(a) > 0 || len(b) > 0) && !reflect.DeepEqual(a, b) {
				t.Fatalf("seed %d query %d: snapshot candidates diverge from live at quiescence", seed, qi)
			}
		}
		snap.Release()
	}
}

// TestShardedQueryBatchMatchesSequential pins the batch engine over the
// sharded backend to its sequential path, including merged per-query
// stats.
func TestShardedQueryBatchMatchesSequential(t *testing.T) {
	rng := xrand.New(5)
	pts := workload.SpherePoints(rng, 300, testDim)
	sx := NewSharded(xrand.New(6), dynamicFamily(), 16, pts[:200],
		ShardOptions{Shards: 3, Dynamic: DynamicOptions{MemtableThreshold: 32}})
	for _, p := range pts[200:] {
		sx.Insert(p)
	}
	for id := 0; id < 300; id += 7 {
		sx.Delete(id)
	}
	queries := workload.SpherePoints(rng, 48, testDim)
	for _, max := range []int{0, 5} {
		got, per, agg := sx.QueryBatch(queries, BatchOptions{Workers: 8, MaxCandidates: max})
		if agg.Queries != len(queries) {
			t.Fatalf("agg.Queries = %d", agg.Queries)
		}
		for i, q := range queries {
			want := sx.CollectDistinct(q, max)
			if len(want) == 0 {
				want = nil
			}
			if !reflect.DeepEqual(got[i], want) {
				t.Fatalf("max=%d query %d: batch %v != sequential %v", max, i, got[i], want)
			}
			if per[i].Distinct != len(want) {
				t.Fatalf("max=%d query %d: Distinct=%d want %d", max, i, per[i].Distinct, len(want))
			}
		}
	}
}

// TestShardedInsertIDsSingleWriter pins the global-id arithmetic: initial
// points get ids 0..n-1 (point i on shard i mod K), and a single writer's
// round-robin inserts continue densely from n.
func TestShardedInsertIDsSingleWriter(t *testing.T) {
	pts := workload.SpherePoints(xrand.New(1), 40, testDim)
	sx := NewSharded(xrand.New(2), dynamicFamily(), 8, pts[:10], ShardOptions{Shards: 3})
	for i, p := range pts[10:] {
		if id := sx.Insert(p); id != 10+i {
			t.Fatalf("Insert %d returned id %d, want %d", i, id, 10+i)
		}
	}
	for id, p := range pts {
		if !reflect.DeepEqual(sx.Point(id), p) {
			t.Fatalf("Point(%d) does not round-trip", id)
		}
	}
	if sx.Len() != 40 || sx.Shards() != 3 || sx.L() != 8 {
		t.Fatalf("Len/Shards/L = %d/%d/%d", sx.Len(), sx.Shards(), sx.L())
	}
	if sx.Delete(-1) || sx.Delete(40) {
		t.Fatal("out-of-range Delete returned true")
	}
	if sx.Deleted(-1) || sx.Deleted(40) {
		t.Fatal("out-of-range Deleted returned true")
	}
	if !sx.Delete(17) || sx.Delete(17) || !sx.Deleted(17) {
		t.Fatal("Delete/Deleted semantics wrong")
	}
}

// TestShardedConcurrentWriters is the multi-writer race test: W writers
// insert and delete concurrently with queriers, snapshot scans and
// explicit compactions. Invariants under any interleaving: every Insert
// returns a unique id, every returned id round-trips through Point, query
// results are duplicate-free, and the final live count balances inserts
// against successful deletes.
func TestShardedConcurrentWriters(t *testing.T) {
	const writers, perWriter = 4, 300
	rng := xrand.New(7)
	pts := workload.SpherePoints(rng, 100+writers*perWriter, testDim)
	sx := NewSharded(xrand.New(8), dynamicFamily(), 12, pts[:100],
		ShardOptions{Shards: 4, Dynamic: DynamicOptions{
			MemtableThreshold: 32, MaxSegments: 2, BackgroundCompaction: true, AsyncFreeze: true}})
	defer sx.Close()

	queries := workload.SpherePoints(rng, 16, testDim)
	stop := make(chan struct{})
	var qwg sync.WaitGroup
	for w := 0; w < 3; w++ {
		qwg.Add(1)
		go func(w int) {
			defer qwg.Done()
			qr := sx.NewQuerier()
			seen := map[int]bool{}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				res, _ := qr.CollectDistinct(queries[(i+w)%len(queries)], 0)
				for k := range seen {
					delete(seen, k)
				}
				for _, id := range res {
					if id < 0 || seen[id] {
						t.Errorf("bad candidate id %d (negative or duplicated)", id)
						return
					}
					seen[id] = true
				}
				if i%50 == 0 {
					snap := sx.Snapshot()
					a := snap.AppendLiveIDs(nil)
					b := snap.AppendLiveIDs(nil)
					if !reflect.DeepEqual(a, b) {
						t.Error("snapshot scan not stable")
						snap.Release()
						return
					}
					snap.Release()
				}
			}
		}(w)
	}

	idCh := make(chan []int, writers)
	delCh := make(chan int, writers)
	var wwg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			mrng := xrand.New(uint64(100 + w))
			mine := make([]int, 0, perWriter)
			deleted := 0
			for i := 0; i < perWriter; i++ {
				id := sx.Insert(pts[100+w*perWriter+i])
				mine = append(mine, id)
				if mrng.Bernoulli(0.25) {
					if sx.Delete(mine[mrng.Intn(len(mine))]) {
						deleted++
					}
				}
				if i%101 == 0 {
					sx.Shard(mrng.Intn(sx.Shards())).Compact()
				}
			}
			idCh <- mine
			delCh <- deleted
		}(w)
	}
	wwg.Wait()
	close(stop)
	qwg.Wait()
	close(idCh)
	close(delCh)

	seen := map[int]bool{}
	all := make([]int, 0, writers*perWriter)
	for ids := range idCh {
		for _, id := range ids {
			if seen[id] {
				t.Fatalf("duplicate global id %d across writers", id)
			}
			seen[id] = true
			all = append(all, id)
		}
	}
	deleted := 0
	for d := range delCh {
		deleted += d
	}
	if want := 100 + writers*perWriter - deleted; sx.Len() != want {
		t.Fatalf("Len = %d, want %d (inserts minus deletes)", sx.Len(), want)
	}
	sx.Compact()
	live := 0
	for _, id := range all {
		if !sx.Deleted(id) {
			sx.Point(id) // must not panic
			live++
		}
	}
	if live+deleted != writers*perWriter {
		t.Fatalf("live %d + deleted %d != inserted %d", live, deleted, writers*perWriter)
	}
}

// TestShardedSteadyStateZeroAlloc extends the zero-allocation criterion
// to the sharded backend: after Compact, CollectDistinct through a warmed
// ShardedQuerier performs no heap allocations even though it probes every
// shard.
func TestShardedSteadyStateZeroAlloc(t *testing.T) {
	rng := xrand.New(11)
	pts := workload.SpherePoints(rng, 2000, testDim)
	sx := NewSharded(xrand.New(12), dynamicFamily(), 24, pts[:1500],
		ShardOptions{Shards: 4, Dynamic: DynamicOptions{MemtableThreshold: 200}})
	for _, p := range pts[1500:] {
		sx.Insert(p)
	}
	for id := 0; id < 2000; id += 5 {
		sx.Delete(id)
	}
	sx.Compact()
	q := workload.SpherePoints(rng, 1, testDim)[0]
	qr := sx.NewQuerier()
	qr.CollectDistinct(q, 0) // warm the visited/out buffers
	if allocs := testing.AllocsPerRun(100, func() { qr.CollectDistinct(q, 0) }); allocs != 0 {
		t.Errorf("steady-state sharded CollectDistinct allocates %.1f/op, want 0", allocs)
	}
}

// TestShardedGuardMessages mirrors TestConstructorValidationMessages for
// the sharded surface: constructor misuse, use after Close, and use after
// Release all panic with clear, pinned messages.
func TestShardedGuardMessages(t *testing.T) {
	fam := dynamicFamily()
	rng := func() *xrand.Rand { return xrand.New(1) }
	pts := workload.SpherePoints(xrand.New(2), 8, testDim)

	mustPanicMessage(t, "index: shard count must be positive", func() {
		NewSharded[[]float64](rng(), fam, 4, nil, ShardOptions{})
	})
	mustPanicMessage(t, "index: shard count must be positive", func() {
		NewSharded[[]float64](rng(), fam, 4, nil, ShardOptions{Shards: -2})
	})
	mustPanicMessage(t, "index: repetitions must be positive", func() {
		NewSharded[[]float64](rng(), fam, 0, nil, ShardOptions{Shards: 2})
	})
	mustPanicMessage(t, "index: family must be non-nil", func() {
		NewSharded[[]float64](rng(), nil, 4, nil, ShardOptions{Shards: 2})
	})
	mustPanicMessage(t, "index: source must be non-nil", func() {
		NewAnnulusOver[[]float64](nil, withinSim(0, 1))
	})
	mustPanicMessage(t, "index: source must be non-nil", func() {
		NewRangeReporterOver[[]float64](nil, withinSim(0, 1))
	})

	sx := NewSharded(rng(), fam, 4, pts, ShardOptions{Shards: 2})
	snap := sx.Snapshot()
	shardSnap := snap.Shard(0)
	sx.Close()
	sx.Close() // idempotent
	mustPanicMessage(t, "index: Insert on closed ShardedIndex", func() { sx.Insert(pts[0]) })
	mustPanicMessage(t, "index: Snapshot of closed ShardedIndex", func() { sx.Snapshot() })
	if sx.Len() != len(pts) {
		t.Fatal("queries should remain valid after Close")
	}

	snap.Release()
	snap.Release() // idempotent
	mustPanicMessage(t, "index: use of released Snapshot", func() { snap.CollectDistinct(pts[0], 0) })
	mustPanicMessage(t, "index: use of released Snapshot", func() { snap.AppendLiveIDs(nil) })
	mustPanicMessage(t, "index: use of released Snapshot", func() { snap.Deleted(0) })
	mustPanicMessage(t, "index: use of released Snapshot", func() { shardSnap.CollectDistinct(pts[0], 0) })
	mustPanicMessage(t, "index: use of released Snapshot", func() { shardSnap.Deleted(0) })
	mustPanicMessage(t, "index: negative point id", func() { sx.Point(-1) })
}
