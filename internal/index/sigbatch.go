package index

import (
	"time"

	"dsh/internal/xrand"
)

// This file is the index-side hook for the network serving edge
// (internal/serve): a batch entry point that, alongside the usual
// distinct-candidate results, returns every query's *hash-key signature*
// — a 64-bit fold of its L per-repetition keys g_i(q). Two queries with
// equal signatures probed the same bucket in every repetition, so against
// the same pinned snapshot they produce identical candidate streams;
// that makes the signature a sound cache key for query results, valid
// exactly as long as the snapshot's epoch.

// sigSeed is the initial accumulator of the signature fold; any non-zero
// constant works, the golden-ratio word matches mixKey's increment.
const sigSeed = 0x9e3779b97f4a7c15

// sig folds query column i of the rep-major key block into a 64-bit
// signature: per repetition the key is xor-folded and re-mixed through the
// splitmix64 finalizer, so the fold is order-sensitive (repetition r's key
// contributes differently from repetition r+1's) and avalanches.
func (bk *blockKeys) sig(i int) uint64 {
	s := uint64(sigSeed)
	for off := i; off < len(bk.keys); off += bk.q {
		s = mixKey(s ^ bk.keys[off])
	}
	return s
}

// collectBatchSigned is collectBatch with the key block forced on (no
// minimum batch size) and every query's signature folded out of it before
// the workers consume the keys. Results and stats are bit-identical to
// QueryBatch over the same source: queriers consume the same pre-hashed
// keys the signature was folded from.
func collectBatchSigned[P any](src candidateSource[P], queries []P, opts BatchOptions) ([][]int, []uint64, []QueryStats, BatchStats) {
	out := make([][]int, len(queries))
	per := make([]QueryStats, len(queries))
	sigs := make([]uint64, len(queries))
	if len(queries) == 0 {
		return out, sigs, per, BatchStats{}
	}
	preStart := time.Now()
	bk := blockHashAll(src, queries, opts.workerCount(len(queries)))
	preWall := time.Since(preStart)
	for i := range queries {
		sigs[i] = bk.sig(i)
	}
	wall := runBatchScratch(len(queries), opts, src.acquireSQ, src.releaseSQ,
		func(i int, _ *xrand.Rand, sq *sourceQuerier[P]) {
			start := time.Now()
			installPreKeys(sq, bk, i)
			res, st := sq.collectDistinct(queries[i], opts.MaxCandidates)
			sq.preKeys = nil
			if len(res) > 0 {
				out[i] = make([]int, len(res))
				copy(out[i], res)
			}
			per[i] = st
			per[i].Latency = time.Since(start)
		})
	bk.release()
	return out, sigs, per, AggregateStats(per, wall+preWall)
}

// QueryBatchSigned is QueryBatch plus, for every query, the 64-bit fold
// of its L per-repetition hash keys g_i(q). Candidate lists and stats are
// bit-identical to QueryBatch over the same snapshot (the queriers consume
// the exact key block the signatures were folded from); equal signatures
// against one snapshot imply identical results, which is the serving
// edge's cache-key invariant. Unlike QueryBatch, the repetition-blocked
// pre-hash always runs (even for batches of one query), since the
// signature needs every key; opts.NoBlockHash is ignored.
func (s *Snapshot[P]) QueryBatchSigned(queries []P, opts BatchOptions) ([][]int, []uint64, []QueryStats, BatchStats) {
	s.check()
	return collectBatchSigned[P](s, queries, opts)
}

// QueryBatchSigned is QueryBatch plus per-query hash-key signatures; see
// Snapshot.QueryBatchSigned for the signature and cache-key contract.
func (ss *ShardedSnapshot[P]) QueryBatchSigned(queries []P, opts BatchOptions) ([][]int, []uint64, []QueryStats, BatchStats) {
	ss.check()
	return collectBatchSigned[P](ss, queries, opts)
}
