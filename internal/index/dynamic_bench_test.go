package index

import (
	"testing"

	"dsh/internal/workload"
	"dsh/internal/xrand"
)

// Benchmarks for the dynamic segmented index. Run with
//
//	go test -bench 'Dynamic' -benchmem ./internal/index/
//
// DynamicQueryAfterCompact should report 0 allocs/op: the compacted
// steady state answers from one flat segment through reused querier
// scratch, exactly like the static index.

func BenchmarkDynamicInsert(b *testing.B) {
	rng := xrand.New(91)
	const d, L = 24, 24
	pts := workload.SpherePoints(rng, 4096, d)
	dx := NewDynamic[[]float64](xrand.New(92), dynamicFamily(), L, nil,
		DynamicOptions{MemtableThreshold: 1024})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dx.Insert(pts[i%len(pts)])
	}
}

func BenchmarkDynamicQueryAfterCompact(b *testing.B) {
	rng := xrand.New(93)
	const d, n, L = 24, 20000, 24
	pts := workload.SpherePoints(rng, n, d)
	dx := NewDynamic(xrand.New(94), dynamicFamily(), L, pts[:n/2],
		DynamicOptions{MemtableThreshold: 2048})
	for _, p := range pts[n/2:] {
		dx.Insert(p)
	}
	for id := 0; id < n; id += 10 {
		dx.Delete(id)
	}
	dx.Compact()
	q := workload.SpherePoints(rng, 1, d)[0]
	qr := dx.NewQuerier()
	qr.CollectDistinct(q, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qr.CollectDistinct(q, 0)
	}
}

// BenchmarkDynamicQueryPreCompact measures the same query against the
// layered state (several segments plus a live memtable), quantifying what
// compaction buys.
func BenchmarkDynamicQueryPreCompact(b *testing.B) {
	rng := xrand.New(95)
	const d, n, L = 24, 20000, 24
	pts := workload.SpherePoints(rng, n, d)
	dx := NewDynamic(xrand.New(96), dynamicFamily(), L, pts[:n/2],
		DynamicOptions{MemtableThreshold: 2048})
	for _, p := range pts[n/2:] {
		dx.Insert(p)
	}
	for id := 0; id < n; id += 10 {
		dx.Delete(id)
	}
	q := workload.SpherePoints(rng, 1, d)[0]
	qr := dx.NewQuerier()
	qr.CollectDistinct(q, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qr.CollectDistinct(q, 0)
	}
}
