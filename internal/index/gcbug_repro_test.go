package index

import (
	"testing"

	"dsh/internal/workload"
	"dsh/internal/xrand"
)

func TestReproGCHoleRenumbering(t *testing.T) {
	rng := xrand.New(99)
	pts := workload.SpherePoints(rng, 12, testDim)
	dx := NewDynamic(xrand.New(7), dynamicFamily(), 8, nil, DynamicOptions{
		MemtableThreshold: 4,
		Policy:            CompactLeveled,
	})
	for i, p := range pts {
		dx.InsertKeyed(uint64(i), p)
	}
	if got := dx.Segments(); got != 3 {
		t.Fatalf("segments = %d, want 3", got)
	}
	// Tombstone a row in an upper segment, then fold the upper level:
	// the dead row is dropped from the tables, id space keeps a hole.
	dx.DeleteKeyed(5)
	if !dx.compactUpperStep() {
		t.Fatal("upper step did not merge")
	}
	epochBefore := dx.Epoch()
	dx.Compact() // leveled GC: dropped==0 but delta==-1
	t.Logf("epoch before=%d after=%d", epochBefore, dx.Epoch())
	id, ok := dx.LookupKey(11)
	if !ok {
		t.Fatal("key 11 lost")
	}
	t.Logf("LookupKey(11) = %d, Len = %d", id, dx.Len())
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("Point(%d) panicked: %v", id, r)
		}
	}()
	p := dx.Point(id)
	if p[0] != pts[11][0] {
		t.Fatalf("key 11 resolves to wrong point: id %d", id)
	}
}
