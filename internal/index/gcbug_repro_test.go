package index

import (
	"testing"

	"dsh/internal/workload"
	"dsh/internal/xrand"
)

// TestReproGCHoleRenumbering is the regression test for the leveled-GC
// id-hole bug: an upper-level fold used to drop a tombstoned row from the
// merged tables without renumbering, so the following bottom-level GC saw
// dropped == 0 yet still shifted every higher id — leaving the external
// key table pointing one past the dense id space and making Point panic.
// Upper folds are now strictly id-preserving (dead rows live until the
// bottom fold) and the GC remaps the key table whenever ids shift, not
// only when the fold itself dropped rows.
func TestReproGCHoleRenumbering(t *testing.T) {
	rng := xrand.New(99)
	pts := workload.SpherePoints(rng, 12, testDim)
	dx := NewDynamic(xrand.New(7), dynamicFamily(), 8, nil, DynamicOptions{
		MemtableThreshold: 4,
		Policy:            CompactLeveled,
	})
	for i, p := range pts {
		dx.InsertKeyed(uint64(i), p)
	}
	if got := dx.Segments(); got != 3 {
		t.Fatalf("segments = %d, want 3", got)
	}
	// Tombstone a row in an upper segment, then fold the upper level:
	// the dead row is dropped from the tables, id space keeps a hole.
	dx.DeleteKeyed(5)
	if !dx.compactUpperStep() {
		t.Fatal("upper step did not merge")
	}
	epochBefore := dx.Epoch()
	dx.Compact() // leveled GC: dropped==0 but delta==-1
	t.Logf("epoch before=%d after=%d", epochBefore, dx.Epoch())
	id, ok := dx.LookupKey(11)
	if !ok {
		t.Fatal("key 11 lost")
	}
	t.Logf("LookupKey(11) = %d, Len = %d", id, dx.Len())
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("Point(%d) panicked: %v", id, r)
		}
	}()
	p := dx.Point(id)
	if p[0] != pts[11][0] {
		t.Fatalf("key 11 resolves to wrong point: id %d", id)
	}
}
