package index

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"dsh/internal/core"
	"dsh/internal/sphere"
	"dsh/internal/vec"
	"dsh/internal/workload"
	"dsh/internal/xrand"
)

func TestSelfJoinFindsClusterPairs(t *testing.T) {
	rng := xrand.New(1)
	const d = 24
	// Two tight clusters: within-cluster pairs have high similarity.
	corpus := workload.NewArticleCorpus(rng, d, 2, 15, 0.15)
	// Plant one pair at similarity 0.9 — above the 0.8 verify threshold by
	// construction — so the corpus can never be degenerate and the recall
	// assertion below always has ground truth to measure against.
	anchor := vec.RandomUnit(rng, d)
	corpus.Points = append(corpus.Points, anchor, workload.PointAtAlpha(rng, anchor, 0.9))
	fam := core.Power[[]float64](sphere.SimHash(d), 6)
	verify := func(a, b []float64) bool { return vec.Dot(a, b) >= 0.8 }
	truth := 0
	for i := range corpus.Points {
		for j := i + 1; j < len(corpus.Points); j++ {
			if verify(corpus.Points[i], corpus.Points[j]) {
				truth++
			}
		}
	}
	if truth == 0 {
		t.Fatalf("no pair above the verify threshold despite the planted pair at similarity 0.9")
	}
	L := RepetitionsForCPF(pow(sphere.SimHashCPF(0.8), 6)) * 3
	pairs, stats := SelfJoin(rng, fam, L, corpus.Points, verify)
	if stats.Emitted != len(pairs) {
		t.Fatalf("stats inconsistent: %+v vs %d pairs", stats, len(pairs))
	}
	recall := float64(len(pairs)) / float64(truth)
	if recall < 0.8 {
		t.Errorf("join recall %v (found %d of %d)", recall, len(pairs), truth)
	}
	// Output must be deduplicated, ordered, off-diagonal, and verified.
	seen := map[[2]int32]bool{}
	for _, p := range pairs {
		if p.A >= p.B {
			t.Fatalf("unnormalized pair %+v", p)
		}
		key := [2]int32{p.A, p.B}
		if seen[key] {
			t.Fatalf("duplicate pair %+v", p)
		}
		seen[key] = true
		if !verify(corpus.Points[p.A], corpus.Points[p.B]) {
			t.Fatalf("unverified pair %+v emitted", p)
		}
	}
}

func pow(x float64, k int) float64 {
	out := 1.0
	for i := 0; i < k; i++ {
		out *= x
	}
	return out
}

func TestAnnulusSelfJoin(t *testing.T) {
	// Unimodal family: join pairs that are close-but-not-too-close.
	rng := xrand.New(2)
	const d = 24
	pts := workload.SpherePoints(rng, 60, d)
	// Add pairs at similarity ~0.5 (in band) and ~0.98 (too close).
	base := vec.RandomUnit(rng, d)
	pts = append(pts, base)
	inBand := workload.PointAtAlpha(rng, base, 0.5)
	tooClose := workload.PointAtAlpha(rng, base, 0.98)
	pts = append(pts, inBand, tooClose)
	fam := sphere.NewAnnulus(d, 0.5, 1.8)
	L := RepetitionsForCPF(fam.CPF().Eval(0.5)) * 2
	verify := func(a, b []float64) bool {
		s := vec.Dot(a, b)
		return s >= 0.35 && s <= 0.65
	}
	pairs, _ := SelfJoin[[]float64](rng, fam, L, pts, verify)
	foundBand := false
	for _, p := range pairs {
		if (int(p.A) == len(pts)-3 && int(p.B) == len(pts)-2) ||
			(int(p.A) == len(pts)-2 && int(p.B) == len(pts)-3) {
			foundBand = true
		}
		s := vec.Dot(pts[p.A], pts[p.B])
		if s < 0.35 || s > 0.65 {
			t.Fatalf("emitted out-of-band pair with similarity %v", s)
		}
	}
	if !foundBand {
		t.Error("planted in-band pair not found")
	}
	_ = tooClose
}

func TestBipartiteJoin(t *testing.T) {
	rng := xrand.New(3)
	const d = 16
	// B contains rotated copies of A's points: each a_i pairs with b_i.
	setA := workload.SpherePoints(rng, 20, d)
	setB := make([][]float64, len(setA))
	for i, a := range setA {
		setB[i] = workload.PointAtAlpha(rng, a, 0.95)
	}
	fam := core.Power[[]float64](sphere.SimHash(d), 4)
	verify := func(a, b []float64) bool { return vec.Dot(a, b) >= 0.9 }
	L := RepetitionsForCPF(pow(sphere.SimHashCPF(0.95), 4)) * 3
	pairs, _ := Join(rng, fam, L, setA, setB, verify)
	matched := map[int32]bool{}
	for _, p := range pairs {
		if verify(setA[p.A], setB[p.B]) {
			matched[p.A] = true
		}
	}
	if len(matched) < 15 {
		t.Errorf("matched only %d/20 planted pairs", len(matched))
	}
}

func TestJoinPanicsOnBadL(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("L=0 should panic")
		}
	}()
	Join[[]float64](xrand.New(1), sphere.SimHash(4), 0, nil, nil, nil)
}

func TestNewParallelMatchesSequentialBehaviour(t *testing.T) {
	rng := xrand.New(4)
	const d = 16
	pts := workload.SpherePoints(rng, 300, d)
	fam := core.Power[[]float64](sphere.SimHash(d), 4)
	ix := NewParallel(rng, fam, 16, pts)
	if ix.L() != 16 || ix.Len() != 300 {
		t.Fatalf("sizes: L=%d n=%d", ix.L(), ix.Len())
	}
	// Every point must be present in every table (find itself).
	for i := 0; i < 20; i++ {
		found := false
		for _, id := range ix.CollectDistinct(pts[i], 0) {
			if id == i {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("point %d not retrievable from parallel index", i)
		}
	}
}

func TestNewParallelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("L=0 should panic")
		}
	}()
	NewParallel[[]float64](xrand.New(1), sphere.SimHash(4), 0, nil)
}

// TestJoinParallelVerifyContract pins the documented verify contract:
// JoinParallel calls verify exactly once per distinct candidate pair (never
// twice, even across repetitions), possibly from concurrent goroutines,
// and the output still matches the sequential Join.
func TestJoinParallelVerifyContract(t *testing.T) {
	rng := xrand.New(31)
	const d = 16
	setA := workload.SpherePoints(rng, 120, d)
	setB := workload.SpherePoints(rng, 120, d)
	fam := core.Power[[]float64](sphere.SimHash(d), 3)
	plain := func(a, b []float64) bool { return vec.Dot(a, b) >= 0.3 }
	want, wantStats := Join(xrand.New(32), fam, 24, setA, setB, plain)

	var calls atomic.Int64
	var mu sync.Mutex
	seen := map[[2]*float64]bool{}
	counting := func(a, b []float64) bool {
		calls.Add(1)
		mu.Lock()
		key := [2]*float64{&a[0], &b[0]}
		if seen[key] {
			mu.Unlock()
			t.Error("verify called twice for the same pair")
			return false
		}
		seen[key] = true
		mu.Unlock()
		return plain(a, b)
	}
	got, gotStats := JoinParallel(xrand.New(32), fam, 24, setA, setB, counting, 8)
	if !reflect.DeepEqual(got, want) || gotStats != wantStats {
		t.Fatalf("parallel join diverged: %d pairs %+v vs %d pairs %+v",
			len(got), gotStats, len(want), wantStats)
	}
	if int(calls.Load()) != gotStats.Verified {
		t.Errorf("verify called %d times, stats.Verified = %d", calls.Load(), gotStats.Verified)
	}

	// With fewer repetitions than workers the verify fan-out still runs on
	// the full pool (only the hashing phase is capped by L) and the output
	// still matches the sequential join.
	wantSmall, wantSmallStats := Join(xrand.New(33), fam, 2, setA, setB, plain)
	gotSmall, gotSmallStats := JoinParallel(xrand.New(33), fam, 2, setA, setB, plain, 8)
	if !reflect.DeepEqual(gotSmall, wantSmall) || gotSmallStats != wantSmallStats {
		t.Fatalf("L=2 parallel join diverged: %d pairs %+v vs %d pairs %+v",
			len(gotSmall), gotSmallStats, len(wantSmall), wantSmallStats)
	}
}
