package index

import (
	"sync/atomic"
	"testing"

	"dsh/internal/workload"
	"dsh/internal/xrand"
)

// Benchmarks for the sharded multi-writer core. Run with
//
//	go test -bench 'Sharded' -benchmem ./internal/index/
//
// ShardedInsertParallel is the headline: RunParallel drives inserts from
// every P simultaneously, so the 1-shard variant measures the single
// structural lock under contention and the 8-shard variant what sharding
// buys. ShardedQueryAfterCompact should report 0 allocs/op like every
// other backend.

func benchmarkShardedInsertParallel(b *testing.B, shards int) {
	rng := xrand.New(91)
	const d, L = 24, 24
	pts := workload.SpherePoints(rng, 4096, d)
	sx := NewSharded[[]float64](xrand.New(92), dynamicFamily(), L, nil,
		ShardOptions{Shards: shards, Dynamic: DynamicOptions{MemtableThreshold: 1024}})
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := int(next.Add(1)-1) % len(pts)
			sx.Insert(pts[i])
		}
	})
}

func BenchmarkShardedInsertParallel1(b *testing.B) { benchmarkShardedInsertParallel(b, 1) }
func BenchmarkShardedInsertParallel8(b *testing.B) { benchmarkShardedInsertParallel(b, 8) }

func BenchmarkShardedQueryAfterCompact(b *testing.B) {
	rng := xrand.New(93)
	const d, n, L = 24, 20000, 24
	pts := workload.SpherePoints(rng, n, d)
	sx := NewSharded(xrand.New(94), dynamicFamily(), L, pts[:n/2],
		ShardOptions{Shards: 4, Dynamic: DynamicOptions{MemtableThreshold: 2048}})
	for _, p := range pts[n/2:] {
		sx.Insert(p)
	}
	for id := 0; id < n; id += 10 {
		sx.Delete(id)
	}
	sx.Compact()
	q := workload.SpherePoints(rng, 1, d)[0]
	qr := sx.NewQuerier()
	qr.CollectDistinct(q, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qr.CollectDistinct(q, 0)
	}
}

// BenchmarkSnapshotQuery measures the lock-free snapshot read path over
// the same corpus; it should match the static index's flat-table cost.
func BenchmarkSnapshotQuery(b *testing.B) {
	rng := xrand.New(95)
	const d, n, L = 24, 20000, 24
	pts := workload.SpherePoints(rng, n, d)
	dx := NewDynamic(xrand.New(96), dynamicFamily(), L, pts, DynamicOptions{})
	dx.Compact()
	snap := dx.Snapshot()
	q := workload.SpherePoints(rng, 1, d)[0]
	qr := snap.NewQuerier()
	qr.CollectDistinct(q, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qr.CollectDistinct(q, 0)
	}
}
