package index

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"dsh/internal/durable"
	"dsh/internal/workload"
	"dsh/internal/xrand"
)

// TestCloseIdempotent hammers Close from many goroutines on both a plain
// and a durable dynamic index: the seal must run exactly once, nothing
// may panic, and the durable directory must reopen cleanly afterwards.
func TestCloseIdempotent(t *testing.T) {
	pts := workload.SpherePoints(xrand.New(801), 60, testDim)

	plain := NewDynamic[[]float64](xrand.New(71), dynamicFamily(), 4, pts,
		DynamicOptions{BackgroundCompaction: true, MemtableThreshold: 16})
	dir := t.TempDir()
	dur, err := NewDurableDynamic[[]float64](dir, 71, dynamicFamily(), 4, durable.Float64Codec{},
		DynamicOptions{MemtableThreshold: 16}, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		dur.Insert(p)
	}

	for _, dx := range []*DynamicIndex[[]float64]{plain, dur} {
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				dx.Close()
				dx.Close()
			}()
		}
		wg.Wait()
	}
	if err := dur.DurableErr(); err != nil {
		t.Fatalf("durable error after concurrent closes: %v", err)
	}

	rx, err := OpenDynamic[[]float64](dir, dynamicFamily(), durable.Float64Codec{},
		DynamicOptions{MemtableThreshold: 16}, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	requireSameServing(t, dur, rx)
}

// TestCloseConcurrentWithWriters races Close against live insert
// goroutines. Writers that land before the seal are journaled; any that
// land after are in-memory only and must latch ErrNotJournaled. Either
// way the directory must reopen, recovering a subset of the inserted
// points with no corruption and no invented rows.
func TestCloseConcurrentWithWriters(t *testing.T) {
	const writers, perWriter = 4, 40
	dir := t.TempDir()
	pts := workload.SpherePoints(xrand.New(803), writers*perWriter, testDim)
	dx, err := NewDurableDynamic[[]float64](dir, 73, dynamicFamily(), 4, durable.Float64Codec{},
		DynamicOptions{MemtableThreshold: 8, Policy: CompactLeveled}, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < perWriter; i++ {
				dx.Insert(pts[w*perWriter+i])
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		dx.Close()
	}()
	close(start)
	wg.Wait()
	dx.Close() // second close after the dust settles: still a no-op

	if err := dx.DurableErr(); err != nil && !errors.Is(err, ErrNotJournaled) {
		t.Fatalf("unexpected durable error: %v", err)
	}

	rx, err := OpenDynamic[[]float64](dir, dynamicFamily(), durable.Float64Codec{},
		DynamicOptions{MemtableThreshold: 8, Policy: CompactLeveled}, durable.Options{})
	if err != nil {
		t.Fatalf("reopen after racing close failed: %v", err)
	}
	defer rx.Close()

	if rx.Len() > dx.Len() {
		t.Fatalf("recovered %d rows but only %d were ever inserted in memory", rx.Len(), dx.Len())
	}
	inserted := map[string]bool{}
	for _, p := range pts {
		inserted[fmt.Sprint(p)] = true
	}
	for id := 0; id < len(rx.points); id++ {
		if rx.Deleted(id) {
			continue
		}
		if !inserted[fmt.Sprint(rx.Point(id))] {
			t.Fatalf("recovered point %d was never inserted", id)
		}
	}
	if dx.DurableErr() == nil && rx.Len() != dx.Len() {
		t.Fatalf("no write was reported lost, but recovery has %d rows vs %d in memory", rx.Len(), dx.Len())
	}
}

// TestMutationAfterCloseLatchesErrNotJournaled proves the documented
// failure model: a mutation after Close still applies in memory but
// latches ErrNotJournaled, and recovery serves only the sealed state.
func TestMutationAfterCloseLatchesErrNotJournaled(t *testing.T) {
	dir := t.TempDir()
	pts := workload.SpherePoints(xrand.New(805), 40, testDim)
	dx, err := NewDurableDynamic[[]float64](dir, 79, dynamicFamily(), 4, durable.Float64Codec{},
		DynamicOptions{MemtableThreshold: 16}, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts[:30] {
		dx.Insert(p)
	}
	dx.Close()
	if err := dx.DurableErr(); err != nil {
		t.Fatalf("durable error after clean close: %v", err)
	}

	dx.Insert(pts[30])
	dx.InsertKeyed(9, pts[31])
	if dx.Len() != 32 {
		t.Fatalf("post-close mutations not applied in memory: len %d", dx.Len())
	}
	if err := dx.DurableErr(); !errors.Is(err, ErrNotJournaled) {
		t.Fatalf("DurableErr after post-close mutation = %v, want ErrNotJournaled", err)
	}

	rx, err := OpenDynamic[[]float64](dir, dynamicFamily(), durable.Float64Codec{},
		DynamicOptions{MemtableThreshold: 16}, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	if rx.Len() != 30 {
		t.Fatalf("recovered %d rows, want the 30 sealed ones", rx.Len())
	}
	if _, ok := rx.LookupKey(9); ok {
		t.Fatal("post-close keyed insert leaked onto disk")
	}
}

// TestShardedCloseIdempotent: concurrent Close calls on a durable
// sharded index seal every shard exactly once, and the directory
// reopens with identical keyed state.
func TestShardedCloseIdempotent(t *testing.T) {
	dir := t.TempDir()
	pts := workload.SpherePoints(xrand.New(807), 120, testDim)
	sx, err := NewDurableSharded[[]float64](dir, 83, dynamicFamily(), 4, durable.Float64Codec{},
		ShardOptions{Shards: 3, Routing: RouteHash, Dynamic: DynamicOptions{MemtableThreshold: 16}},
		durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		sx.InsertKeyed(uint64(i), p)
	}
	wantLen := sx.Len()

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sx.Close()
		}()
	}
	wg.Wait()
	if err := sx.DurableErr(); err != nil {
		t.Fatalf("durable error after concurrent sharded closes: %v", err)
	}

	rx, err := OpenSharded[[]float64](dir, dynamicFamily(), durable.Float64Codec{},
		DynamicOptions{MemtableThreshold: 16}, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	if rx.Len() != wantLen {
		t.Fatalf("recovered %d rows, want %d", rx.Len(), wantLen)
	}
	for i := range pts {
		wid, wok := sx.LookupKey(uint64(i))
		gid, gok := rx.LookupKey(uint64(i))
		if !gok || wok != gok || wid != gid {
			t.Fatalf("key %d diverged after close/reopen", i)
		}
	}
}
