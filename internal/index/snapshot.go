package index

import (
	"sync"
	"sync/atomic"

	"dsh/internal/bitvec"
	"dsh/internal/core"
)

// Snapshot is an immutable, point-in-time view of a DynamicIndex: the
// segment list, every detached read-only memtable, the points array
// prefix, the live count, and a private clone of the tombstone bitmap as
// they stood at the moment DynamicIndex.Snapshot returned. A snapshot
// implements the candidateSource contract, so every veneer — annulus
// search, range reporting, CollectDistinct, QueryBatch — runs over it
// unchanged and answers from the pinned state even while Insert, Delete,
// Flush and compaction rewrite the live index underneath. That makes
// long-running scans consistent: a query stream over one snapshot
// observes one id set, start to finish.
//
// Taking a snapshot is cheap: the live memtable (if non-empty) is
// detached read-only onto the index's freeze FIFO — its flat tables build
// in the background exactly as under AsyncFreeze — and the snapshot then
// just pins slice headers plus a bitmap clone; no point is copied or
// rehashed. The detach does mean every snapshot that finds buffered
// inserts cuts a new (possibly tiny) segment, so a high snapshot cadence
// over a trickle of writes fragments the index — each query pays one
// extra probe per repetition per extra segment until a merge folds them;
// enable BackgroundCompaction (or Compact at quiet moments) under such
// workloads. Reclamation is by reference: segments swapped out by later
// compactions stay reachable from the snapshots whose epoch pinned them
// and are garbage-collected when the last such snapshot is released.
//
// Concurrency contract: a Snapshot is immutable and safe for unrestricted
// concurrent querying with no locking at all — beginRead is free, like
// the static Index. Release is the only mutating method; after it,
// queries panic. A Snapshot never blocks and is never blocked by the
// live index's locks.
type Snapshot[P any] struct {
	pairs []core.Pair[P]
	negG  []negQueryHasher
	// points is a pinned header of the index's append-only points array;
	// elements below idBound are immutable.
	points  []P
	idBound int
	// segments and frozen are the pinned storage layers, oldest first;
	// all are immutable after detach.
	segments []*segment
	frozen   []*memtable
	// dead is a private clone of the tombstone bitmap: later Deletes on
	// the live index do not affect this snapshot.
	dead bitvec.Bitmap
	live int
	// epoch is the mutation epoch captured from the index; compare with
	// DynamicIndex.Epoch to detect staleness.
	epoch uint64

	released atomic.Bool
	queriers sync.Pool
}

// Snapshot returns an immutable view of the index's current live points.
// The call takes the structural lock exclusively but briefly: it detaches
// the live memtable (if non-empty) onto the freeze FIFO — where it keeps
// serving both the live index and the snapshot read-only while its flat
// tables build in the background — clones the tombstone bitmap, and pins
// the current layer lists. No points are copied or rehashed.
//
// The returned snapshot answers queries from exactly the live set at the
// moment of the call, concurrently with any later mutation or compaction
// of the index. Safe for concurrent use with every other method. Each
// call that finds buffered inserts cuts a new segment (see the Snapshot
// type comment for the fragmentation trade-off under high snapshot
// cadence).
func (dx *DynamicIndex[P]) Snapshot() *Snapshot[P] {
	dx.mu.Lock()
	if dx.mem.len() > 0 {
		dx.detachMemLocked()
	}
	snap := &Snapshot[P]{
		pairs:    dx.pairs,
		negG:     dx.negG,
		points:   dx.points[:len(dx.points):len(dx.points)],
		idBound:  len(dx.points),
		segments: dx.segments[:len(dx.segments):len(dx.segments)],
		frozen:   append([]*memtable(nil), dx.frozen...),
		dead:     dx.dead.Clone(),
		live:     dx.live,
		epoch:    dx.epoch,
	}
	dx.mu.Unlock()
	snap.queriers.New = func() any { return newSourceQuerier[P](snap, snap.idBound) }
	mSnapshots.Inc(dx.stripe)
	mSnapshotsOpen.Add(1)
	mSnapshotEpoch.Set(int64(snap.epoch))
	return snap
}

// Len returns the number of live points visible to the snapshot.
func (s *Snapshot[P]) Len() int { return s.live }

// L returns the number of repetitions.
func (s *Snapshot[P]) L() int { return len(s.pairs) }

// Epoch returns the mutation epoch the snapshot was taken at; it equals
// DynamicIndex.Epoch while no Insert or Delete has landed since.
func (s *Snapshot[P]) Epoch() uint64 { return s.epoch }

// Deleted reports whether id was tombstoned at snapshot time. Deletes on
// the live index after the snapshot are not visible; ids outside the
// pinned range (including negative ids) report false. Panics after
// Release.
func (s *Snapshot[P]) Deleted(id int) bool {
	s.check()
	return s.dead.Get(id)
}

// Point returns the point stored under the given global id at snapshot
// time. Like DynamicIndex.Point it remains valid for deleted ids.
func (s *Snapshot[P]) Point(id int) P {
	s.check()
	return s.points[id]
}

// Release drops the snapshot's references to the pinned layers so
// segments rewritten by later compactions can be garbage-collected.
// Queries on a released snapshot panic. Releasing is optional — an
// unreferenced snapshot is reclaimed by the garbage collector anyway —
// but explicit release bounds the lifetime of large pinned segments in
// long-lived processes. Release is idempotent and safe for concurrent
// use, but must not run concurrently with queries on the same snapshot.
func (s *Snapshot[P]) Release() {
	if s.released.Swap(true) {
		return
	}
	mSnapshotsOpen.Add(-1)
	s.points = nil
	s.segments = nil
	s.frozen = nil
	s.dead = bitvec.Bitmap{}
}

// check panics when the snapshot has been released.
func (s *Snapshot[P]) check() {
	if s.released.Load() {
		panic("index: use of released Snapshot")
	}
}

// candidateSource implementation. Every pinned layer is immutable, so the
// read window is free (beginRead takes no lock) and any number of
// goroutines may query concurrently.

func (s *Snapshot[P]) srcPairs() []core.Pair[P]  { return s.pairs }
func (s *Snapshot[P]) srcNegG() []negQueryHasher { return s.negG }

func (s *Snapshot[P]) beginRead() int {
	s.check()
	return s.idBound
}

func (s *Snapshot[P]) endRead() {}

func (s *Snapshot[P]) srcPoint(id int) P { return s.points[id] }

func (s *Snapshot[P]) appendCandidates(rep int, key uint64, dst []int32) ([]int32, int) {
	probes := 0
	for _, seg := range s.segments {
		probes++
		for _, local := range seg.lookup(rep, key) {
			if id := seg.globalIDs[local]; !s.dead.Get(int(id)) {
				dst = append(dst, id)
			}
		}
	}
	for _, fm := range s.frozen {
		probes++
		for j := fm.bucketHead(rep, key); j >= 0; j = fm.chains[rep][j] {
			if id := fm.ids[j]; !s.dead.Get(int(id)) {
				dst = append(dst, id)
			}
		}
	}
	return dst, probes
}

func (s *Snapshot[P]) acquireSQ() *sourceQuerier[P] {
	return s.queriers.Get().(*sourceQuerier[P])
}
func (s *Snapshot[P]) releaseSQ(sq *sourceQuerier[P]) { s.queriers.Put(sq) }

// AppendLiveIDs appends every live global id visible to the snapshot to
// dst in ascending order and returns the extended slice — the scan
// primitive: iterate the pinned id space once, with no locking, while the
// live index keeps mutating.
func (s *Snapshot[P]) AppendLiveIDs(dst []int) []int {
	s.check()
	for id := 0; id < s.idBound; id++ {
		if !s.dead.Get(id) {
			dst = append(dst, id)
		}
	}
	return dst
}

// CollectDistinct gathers up to max distinct live candidate ids for q
// (max <= 0 means no limit) from the pinned state, exactly like
// DynamicIndex.CollectDistinct would have at snapshot time. The returned
// slice is freshly allocated and owned by the caller; use a
// SnapshotQuerier for the zero-allocation variant.
func (s *Snapshot[P]) CollectDistinct(q P, max int) []int {
	return collectDistinctOwned[P](s, q, max)
}

// Candidates streams the pinned live ids colliding with q, repetition by
// repetition (duplicates across repetitions included), invoking visit for
// each; if visit returns false the scan stops early. Unlike the dynamic
// backend there is no read window to deadlock: visit may call any
// snapshot or live-index method.
func (s *Snapshot[P]) Candidates(q P, visit func(id int) bool) {
	streamCandidates[P](s, q, visit)
}

// QueryBatch collects distinct candidates for every query concurrently
// from the pinned state, with one pooled querier per worker; see
// Index.QueryBatch for the determinism contract.
func (s *Snapshot[P]) QueryBatch(queries []P, opts BatchOptions) ([][]int, []QueryStats, BatchStats) {
	s.check()
	return collectBatch[P](s, queries, opts)
}

// SnapshotQuerier is the reusable query scratch of a Snapshot, mirroring
// Querier and DynamicQuerier: not safe for concurrent use, one per
// goroutine, and steady-state queries through a warmed one perform no
// heap allocations.
type SnapshotQuerier[P any] struct {
	sourceQuerier[P]
}

// NewQuerier returns a fresh SnapshotQuerier bound to s.
func (s *Snapshot[P]) NewQuerier() *SnapshotQuerier[P] {
	return &SnapshotQuerier[P]{sourceQuerier: *newSourceQuerier[P](s, s.idBound)}
}

// CollectDistinct is Snapshot.CollectDistinct through this querier's
// scratch; the returned slice is owned by the querier and valid only
// until its next use.
func (qr *SnapshotQuerier[P]) CollectDistinct(q P, max int) ([]int, QueryStats) {
	return qr.collectDistinct(q, max)
}
