package index

// Compaction for DynamicIndex. A merge rebuilds every frozen segment into
// one flat segment over the surviving points, dropping tombstoned ids from
// the tables while keeping survivors' global ids unchanged. The expensive
// build runs against an immutable snapshot *outside* the structural lock,
// so concurrent queriers keep answering from the old segments; the swap
// retakes the lock and validates that the snapshotted segments are still
// the prefix of the segment list, retrying if a concurrent merge replaced
// them (freezes only append, so they never invalidate the build).

// Compact freezes the memtable and merges all frozen segments into a
// single segment, dropping deleted points from the tables. After Compact
// the index answers queries from one flat segment and an empty memtable —
// the zero-allocation steady state, with candidate order matching a static
// Index over the live points. Safe to call concurrently with queries and
// mutations.
func (dx *DynamicIndex[P]) Compact() {
	for {
		dx.mu.Lock()
		dx.freezeLocked()
		segs := dx.segments
		if len(segs) <= 1 && !dx.segmentsHaveTombstonesLocked() {
			dx.mu.Unlock()
			return
		}
		points := dx.points
		dead := dx.dead.Clone()
		dx.mu.Unlock()

		// Build outside the lock: segments and points[0:len] are immutable,
		// and the tombstone snapshot decides survivors. Deletes that land
		// during the build stay tombstoned (bits are never cleared), so
		// they remain filtered at query time even though the merged tables
		// still contain them until the next Compact.
		var liveIDs []int32
		var livePts []P
		for _, seg := range segs {
			for _, id := range seg.globalIDs {
				if dead.Get(int(id)) {
					continue
				}
				liveIDs = append(liveIDs, id)
				livePts = append(livePts, points[id])
			}
		}
		var merged *segment
		if len(liveIDs) > 0 {
			merged = buildSegment(dx.pairs, livePts, liveIDs)
		}

		dx.mu.Lock()
		// Validate the snapshot: the merge replaces exactly the segments it
		// read, so dx.segments must still start with them. Freezes only
		// append (prefix intact, no retry needed); a concurrent merge
		// replaced the prefix, so this build is stale and must retry.
		stale := len(dx.segments) < len(segs)
		if !stale {
			for i := range segs {
				if dx.segments[i] != segs[i] {
					stale = true
					break
				}
			}
		}
		if stale {
			dx.mu.Unlock()
			continue
		}
		rest := dx.segments[len(segs):]
		if merged != nil {
			dx.segments = append([]*segment{merged}, rest...)
		} else {
			dx.segments = append([]*segment(nil), rest...)
		}
		dx.mu.Unlock()
		return
	}
}

// segmentsHaveTombstonesLocked reports whether any frozen segment still
// holds a tombstoned point (making a single-segment merge worthwhile).
// Callers hold mu.
func (dx *DynamicIndex[P]) segmentsHaveTombstonesLocked() bool {
	if dx.dead.Count() == 0 {
		return false
	}
	for _, seg := range dx.segments {
		for _, id := range seg.globalIDs {
			if dx.dead.Get(int(id)) {
				return true
			}
		}
	}
	return false
}

// backgroundCompactor merges segments whenever a freeze pushes the count
// past MaxSegments. It runs until Close.
func (dx *DynamicIndex[P]) backgroundCompactor() {
	defer dx.wg.Done()
	for {
		select {
		case <-dx.closed:
			return
		case <-dx.compactCh:
			dx.mu.RLock()
			over := len(dx.segments) > dx.opts.MaxSegments
			dx.mu.RUnlock()
			if over {
				dx.Compact()
			}
		}
	}
}

// Close stops the background compactor, if one was started. It does not
// invalidate the index: queries and mutations keep working, and Compact
// remains explicitly callable. Close is idempotent.
func (dx *DynamicIndex[P]) Close() {
	if dx.compactCh == nil {
		return
	}
	dx.closeOnce.Do(func() {
		close(dx.closed)
		dx.wg.Wait()
	})
}
