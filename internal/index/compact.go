package index

import "dsh/internal/bitvec"

// Compaction for DynamicIndex. Every layer retains its per-repetition key
// columns (segments since construction, memtables by design), so a merge
// never re-evaluates a hash function: it concatenates the key and id
// columns of the merged layers oldest-first, drops tombstoned rows, and
// rebuilds the open-addressed tables from the retained keys — O(rows * L)
// memory moves instead of O(rows * L) hash evaluations.
//
// The expensive column concatenation and table builds run against an
// immutable snapshot with no lock held, so concurrent queriers keep
// answering from the old layers; the swap retakes the structural lock and
// replaces exactly the snapshotted layers. All rewrites (merges and
// async-freeze installs) are serialized by mergeMu, and every other
// mutation only appends to the layer lists, so a snapshot's layers stay at
// their positions for the whole build and no validation retry is needed.

// CompactionPolicy selects how automatic (background) compaction merges
// segments; see the constants. Explicit Compact calls always merge
// everything regardless of policy.
type CompactionPolicy int

const (
	// CompactAll is the monolithic policy: every automatic compaction
	// folds all frozen state into a single segment. Queries then probe
	// one layer per repetition, but each merge rewrites the whole index.
	CompactAll CompactionPolicy = iota
	// CompactTiered merges only a contiguous run of the newest
	// similar-sized segments (a size-tiered policy with growth factor
	// tieredGrowth): small fresh segments are folded together quickly
	// while large old segments are rewritten only when the accumulated
	// young data reaches a comparable size, so each row is moved O(log n)
	// times over the life of the index instead of once per freeze.
	CompactTiered
)

// tieredGrowth is the size ratio above which an older segment is left out
// of a tiered merge run.
const tieredGrowth = 4

// colSource is one mergeable layer: parallel id and per-repetition key
// columns in insertion order. Both segments and memtables provide it.
type colSource struct {
	ids  []int32
	keys [][]uint64
}

// mergeSources concatenates the retained columns of the sources (given
// oldest-first), dropping rows whose id is tombstoned in dead, and
// freezes the result into one segment. It performs zero family hash
// evaluations. Returns nil when no row survives.
func mergeSources(L int, srcs []colSource, dead *bitvec.Bitmap) *segment {
	keeps := make([][]int32, len(srcs))
	total := 0
	for si, s := range srcs {
		var keep []int32
		for j, id := range s.ids {
			if !dead.Get(int(id)) {
				keep = append(keep, int32(j))
			}
		}
		keeps[si] = keep
		total += len(keep)
	}
	if total == 0 {
		return nil
	}
	ids := make([]int32, 0, total)
	for si, s := range srcs {
		for _, j := range keeps[si] {
			ids = append(ids, s.ids[j])
		}
	}
	seg := &segment{
		tables:    make([]flatTable, L),
		keys:      make([][]uint64, L),
		globalIDs: ids,
	}
	for rep := 0; rep < L; rep++ {
		col := make([]uint64, 0, total)
		for si, s := range srcs {
			sk := s.keys[rep]
			for _, j := range keeps[si] {
				col = append(col, sk[j])
			}
		}
		seg.keys[rep] = col
		seg.tables[rep] = buildFlatTable(col)
	}
	return seg
}

// Compact detaches the memtable and merges it, every pending detached
// memtable, and all frozen segments into a single segment, dropping
// deleted points from the tables. After Compact the index answers queries
// from one flat segment and an empty memtable — the zero-allocation
// steady state, with candidate order matching a static Index over the
// live points. Safe to call concurrently with queries and mutations.
// Deletes that land during the merge stay tombstoned (bits are never
// cleared), so they remain filtered at query time even though the merged
// tables still contain them until the next merge.
func (dx *DynamicIndex[P]) Compact() {
	dx.mergeMu.Lock()
	defer dx.mergeMu.Unlock()

	dx.mu.Lock()
	if dx.mem.len() > 0 {
		dx.frozen = append(dx.frozen, dx.mem)
		dx.mem = newMemtable(len(dx.pairs))
	}
	segs := dx.segments
	fmems := dx.frozen
	if len(fmems) == 0 && len(segs) <= 1 && !dx.segmentsHaveTombstonesLocked() {
		dx.mu.Unlock()
		return
	}
	dead := dx.dead.Clone()
	dx.mu.Unlock()

	srcs := make([]colSource, 0, len(segs)+len(fmems))
	for _, s := range segs {
		srcs = append(srcs, colSource{ids: s.globalIDs, keys: s.keys})
	}
	for _, fm := range fmems {
		srcs = append(srcs, colSource{ids: fm.ids, keys: fm.keys})
	}
	merged := mergeSources(len(dx.pairs), srcs, &dead)

	dx.mu.Lock()
	// The snapshotted layers are still the prefixes of their lists:
	// rewrites are serialized by mergeMu (held), and Insert/Flush only
	// append. Keep everything appended since the snapshot.
	dx.frozen = append([]*memtable(nil), dx.frozen[len(fmems):]...)
	rest := dx.segments[len(segs):]
	if merged != nil {
		dx.segments = append([]*segment{merged}, rest...)
	} else {
		dx.segments = append([]*segment(nil), rest...)
	}
	dx.mu.Unlock()
}

// compactTieredStep merges the newest run of similar-sized segments into
// one, dropping their tombstoned rows, and reports whether a merge
// happened (false when fewer than two segments are tier-eligible). The
// memtable and pending detached memtables are left alone — freezes, not
// merges, are responsible for them.
func (dx *DynamicIndex[P]) compactTieredStep() bool {
	dx.mergeMu.Lock()
	defer dx.mergeMu.Unlock()

	dx.mu.RLock()
	segs := dx.segments
	dead := dx.dead.Clone()
	dx.mu.RUnlock()

	lo := tieredRunStart(segs)
	if len(segs)-lo < 2 {
		return false
	}
	srcs := make([]colSource, 0, len(segs)-lo)
	for _, s := range segs[lo:] {
		srcs = append(srcs, colSource{ids: s.globalIDs, keys: s.keys})
	}
	merged := mergeSources(len(dx.pairs), srcs, &dead)

	dx.mu.Lock()
	// segs[lo:] still occupies positions lo..len(segs) of dx.segments:
	// concurrent freezes only appended past len(segs), and other merges
	// are excluded by mergeMu.
	rest := dx.segments[len(segs):]
	swapped := make([]*segment, 0, lo+1+len(rest))
	swapped = append(swapped, dx.segments[:lo]...)
	if merged != nil {
		swapped = append(swapped, merged)
	}
	swapped = append(swapped, rest...)
	dx.segments = swapped
	dx.mu.Unlock()
	return true
}

// tieredRunStart returns the start index of the maximal suffix run of
// segments eligible for a tiered merge: walking newest to oldest, an
// older segment joins the run while it is at most tieredGrowth times the
// combined size of the newer segments already in it. Large old segments
// therefore stay out of the run until enough young data has accumulated
// next to them.
func tieredRunStart(segs []*segment) int {
	if len(segs) == 0 {
		return 0
	}
	lo := len(segs) - 1
	total := segs[lo].len()
	for lo > 0 && segs[lo-1].len() <= tieredGrowth*total {
		lo--
		total += segs[lo].len()
	}
	return lo
}

// segmentsHaveTombstonesLocked reports whether any frozen segment still
// holds a tombstoned point (making a single-segment merge worthwhile).
// Callers hold mu.
func (dx *DynamicIndex[P]) segmentsHaveTombstonesLocked() bool {
	if dx.dead.Count() == 0 {
		return false
	}
	for _, seg := range dx.segments {
		for _, id := range seg.globalIDs {
			if dx.dead.Get(int(id)) {
				return true
			}
		}
	}
	return false
}
