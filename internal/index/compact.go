package index

import (
	"time"

	"dsh/internal/bitvec"
	"dsh/internal/obs"
)

// Compaction for DynamicIndex. Every layer retains its per-repetition key
// columns (segments since construction, memtables by design), so a merge
// never re-evaluates a hash function: it concatenates the key and id
// columns of the merged layers oldest-first, drops tombstoned rows, and
// rebuilds the open-addressed tables from the retained keys — O(rows * L)
// memory moves instead of O(rows * L) hash evaluations.
//
// The expensive column concatenation and table builds run against an
// immutable snapshot with no lock held, so concurrent queriers keep
// answering from the old layers; the swap retakes the structural lock and
// replaces exactly the snapshotted layers. All rewrites (merges and
// async-freeze installs) are serialized by mergeMu, and every other
// mutation only appends to the layer lists, so a snapshot's layers stay at
// their positions for the whole build and no validation retry is needed.

// CompactionPolicy selects how automatic (background) compaction merges
// segments; see the constants. Explicit Compact calls always merge
// everything regardless of policy.
type CompactionPolicy int

const (
	// CompactAll is the monolithic policy: every automatic compaction
	// folds all frozen state into a single segment. Queries then probe
	// one layer per repetition, but each merge rewrites the whole index.
	CompactAll CompactionPolicy = iota
	// CompactTiered merges only a contiguous run of the newest
	// similar-sized segments (a size-tiered policy with growth factor
	// DynamicOptions.GrowthFactor): small fresh segments are folded
	// together quickly while large old segments are rewritten only when
	// the accumulated young data reaches a comparable size, so each row is
	// moved O(log n) times over the life of the index instead of once per
	// freeze.
	CompactTiered
	// CompactLeveled keeps one big bottom-level segment plus a small upper
	// tier. Automatic compactions fold fresh upper segments together
	// until the upper tier reaches 1/GrowthFactor of the bottom segment
	// (or dead rows reach 1/GrowthFactor of the live count), then run a
	// bottom-level merge that garbage-collects tombstones for good: dead
	// ids are dropped permanently, surviving rows are renumbered through a
	// dense shrinking id space (matching a static rebuild over the
	// survivors), and the tombstone bitmap is rebuilt at the smaller size.
	// Explicit Compact calls under this policy always run the bottom-level
	// GC merge. Because the GC renumbers ids, ids are stable only between
	// GC merges under this policy — use external keys (InsertKeyed) as the
	// durable identity, and see GCStats for the reclamation counters.
	CompactLeveled
)

// defaultGrowthFactor is the DynamicOptions.GrowthFactor default, shared
// by the tiered and leveled policies.
const defaultGrowthFactor = 4

// GCStats reports tombstone occupancy and garbage-collection progress for
// a DynamicIndex (or, summed across shards, a ShardedIndex). DeadRows
// counts tombstoned rows still occupying table space across every layer;
// CollectedRows and ReclaimedBitmapBytes accumulate what leveled GC merges
// have permanently dropped. Under CompactAll and CompactTiered, merges
// drop dead rows from the tables (DeadRows shrinks) but never renumber
// ids, so BitmapBytes only grows; only CompactLeveled reclaims it.
type GCStats struct {
	// LiveRows is the number of live (inserted and not deleted) rows.
	LiveRows int
	// DeadRows is the number of tombstoned rows still present in some
	// layer's tables, awaiting a merge to drop them.
	DeadRows int
	// BitmapBytes is the current tombstone-bitmap footprint in bytes.
	BitmapBytes int
	// CollectedRows is the total number of dead rows permanently dropped
	// by bottom-level GC merges so far.
	CollectedRows int
	// ReclaimedBitmapBytes is the total tombstone-bitmap storage released
	// by bottom-level GC merges so far.
	ReclaimedBitmapBytes int
}

// colSource is one mergeable layer: parallel id and per-repetition key
// columns in insertion order. Both segments and memtables provide it.
type colSource struct {
	ids  []int32
	keys [][]uint64
}

// mergeSources concatenates the retained columns of the sources (given
// oldest-first), dropping rows whose id is tombstoned in dead, and
// freezes the result into one segment. It performs zero family hash
// evaluations. Returns nil when no row survives.
func mergeSources(L int, srcs []colSource, dead *bitvec.Bitmap) *segment {
	keeps := make([][]int32, len(srcs))
	total := 0
	for si, s := range srcs {
		var keep []int32
		for j, id := range s.ids {
			if !dead.Get(int(id)) {
				keep = append(keep, int32(j))
			}
		}
		keeps[si] = keep
		total += len(keep)
	}
	if total == 0 {
		return nil
	}
	ids := make([]int32, 0, total)
	for si, s := range srcs {
		for _, j := range keeps[si] {
			ids = append(ids, s.ids[j])
		}
	}
	seg := &segment{
		tables:    make([]flatTable, L),
		keys:      make([][]uint64, L),
		globalIDs: ids,
	}
	for rep := 0; rep < L; rep++ {
		col := make([]uint64, 0, total)
		for si, s := range srcs {
			sk := s.keys[rep]
			for _, j := range keeps[si] {
				col = append(col, sk[j])
			}
		}
		seg.keys[rep] = col
		seg.tables[rep] = buildFlatTable(col)
	}
	return seg
}

// Compact detaches the memtable and merges it, every pending detached
// memtable, and all frozen segments into a single segment, dropping
// deleted points from the tables. After Compact the index answers queries
// from one flat segment and an empty memtable — the zero-allocation
// steady state, with candidate order matching a static Index over the
// live points. Safe to call concurrently with queries and mutations.
// Deletes that land during the merge stay tombstoned (bits are never
// cleared), so they remain filtered at query time even though the merged
// tables still contain them until the next merge.
//
// Under Policy == CompactLeveled, Compact is the bottom-level GC merge
// instead: it additionally renumbers the surviving rows through a dense id
// space and rebuilds the tombstone bitmap at the smaller size, so global
// ids may change (see CompactLeveled and GCStats).
func (dx *DynamicIndex[P]) Compact() {
	if dx.opts.Policy == CompactLeveled {
		dx.compactGC()
		return
	}
	dx.mergeMu.Lock()
	defer dx.mergeMu.Unlock()

	dx.mu.Lock()
	if dx.mem.len() > 0 {
		dx.frozen = append(dx.frozen, dx.mem)
		dx.freshMemtableLocked()
	}
	segs := dx.segments
	fmems := dx.frozen
	if len(fmems) == 0 && len(segs) <= 1 && !dx.segmentsHaveTombstonesLocked() {
		dx.mu.Unlock()
		return
	}
	dead := dx.dead.Clone()
	dx.mu.Unlock()

	start := time.Now()
	srcs := make([]colSource, 0, len(segs)+len(fmems))
	for _, s := range segs {
		srcs = append(srcs, colSource{ids: s.globalIDs, keys: s.keys})
	}
	for _, fm := range fmems {
		srcs = append(srcs, colSource{ids: fm.ids, keys: fm.keys})
	}
	merged := mergeSources(len(dx.pairs), srcs, &dead)
	rows := 0
	if merged != nil {
		rows = merged.len()
	}
	mCompactAll.Inc(dx.stripe)
	mCompactRows.Add(dx.stripe, uint64(rows))
	mCompactDur.Observe(dx.stripe, uint64(time.Since(start)))
	obs.RecordEvent("compact.all", int64(rows), int64(len(segs)+len(fmems)))

	dx.mu.Lock()
	// The snapshotted layers are still the prefixes of their lists:
	// rewrites are serialized by mergeMu (held), and Insert/Flush only
	// append. Keep everything appended since the snapshot.
	dx.frozen = append([]*memtable(nil), dx.frozen[len(fmems):]...)
	rest := dx.segments[len(segs):]
	if merged != nil {
		dx.segments = append([]*segment{merged}, rest...)
	} else {
		dx.segments = append([]*segment(nil), rest...)
	}
	dx.mu.Unlock()
}

// compactGC is the bottom-level merge of the leveled policy: fold every
// layer into one segment exactly like Compact, then renumber the
// survivors through a dense id space 0..S-1 (their relative — insertion —
// order is preserved, so the result matches a static rebuild over the
// survivors id for id), rebuild the tombstone bitmap at the new size, and
// remap the external-key table. Layers that accumulated while the merge
// built (ids assigned after the pin) shift down by the number of dropped
// rows; they are renumbered via copies, so snapshots pinned under the old
// id space stay consistent. When any row is dropped the mutation epoch
// advances — ids changed, so epoch-based staleness checks (and caches
// keyed on ids) correctly observe the GC.
func (dx *DynamicIndex[P]) compactGC() {
	dx.mergeMu.Lock()
	defer dx.mergeMu.Unlock()

	dx.mu.Lock()
	if dx.mem.len() > 0 {
		dx.frozen = append(dx.frozen, dx.mem)
		dx.freshMemtableLocked()
	}
	segs := dx.segments
	fmems := dx.frozen
	snapBound := len(dx.points)
	// Fast path: one dense segment covering every id, nothing pending, no
	// tombstones — the GC would be an identity rewrite.
	if len(fmems) == 0 && dx.dead.Count() == 0 &&
		(len(segs) == 0 || (len(segs) == 1 && segs[0].len() == snapBound)) {
		dx.mu.Unlock()
		return
	}
	dead := dx.dead.Clone()
	points := dx.points
	dx.mu.Unlock()

	start := time.Now()
	// Off-lock: concatenate the retained columns, dropping rows dead at
	// pin time (zero hash evaluations), then rebase the survivors onto the
	// dense id space.
	srcs := make([]colSource, 0, len(segs)+len(fmems))
	mergedRows := 0
	for _, s := range segs {
		srcs = append(srcs, colSource{ids: s.globalIDs, keys: s.keys})
		mergedRows += s.len()
	}
	for _, fm := range fmems {
		srcs = append(srcs, colSource{ids: fm.ids, keys: fm.keys})
		mergedRows += fm.len()
	}
	merged := mergeSources(len(dx.pairs), srcs, &dead)

	// For a durable index, the WAL record of this renumbering must carry
	// the exact dropped-id set: replay-time tombstone state includes
	// deletes that landed after this pin, so snapBound+delta alone would
	// not reproduce the same drop decisions.
	var droppedIDs []int32
	if dx.store != nil {
		for _, s := range srcs {
			for _, id := range s.ids {
				if dead.Get(int(id)) {
					droppedIDs = append(droppedIDs, id)
				}
			}
		}
	}

	var surv []int32 // survivors' old ids, strictly ascending
	var newSeg *segment
	var newPoints []P
	if merged != nil {
		surv = merged.globalIDs
		newPoints = make([]P, len(surv))
		denseIDs := make([]int32, len(surv))
		for j, old := range surv {
			newPoints[j] = points[old]
			denseIDs[j] = int32(j)
		}
		newSeg = &segment{tables: merged.tables, keys: merged.keys, globalIDs: denseIDs}
	}
	dropped := mergedRows - len(surv)
	delta := int32(len(surv) - snapBound) // shift for every id assigned after the pin

	// The swap renumbers visible ids, so it counts as a write for the
	// sharded epoch barrier: holding the barrier shared keeps a concurrent
	// epoch-barrier Snapshot from pinning shards on both sides of a GC.
	if dx.barrier != nil {
		dx.barrier.RLock()
		defer dx.barrier.RUnlock()
	}
	dx.mu.Lock()
	defer dx.mu.Unlock()

	// Rebase the post-pin tail of the points array onto the dense prefix.
	tailLen := len(dx.points) - snapBound
	dx.points = append(newPoints, dx.points[snapBound:]...)

	// Renumber the layers appended since the pin (all their ids are >=
	// snapBound: freezer installs were excluded by mergeMu, and inline
	// freezes or snapshot detaches only carry post-pin inserts). Copies,
	// not in-place edits: pinned snapshots keep the originals.
	rest := dx.segments[len(segs):]
	swapped := make([]*segment, 0, 1+len(rest))
	if newSeg != nil {
		swapped = append(swapped, newSeg)
	}
	for _, s := range rest {
		swapped = append(swapped, s.withShiftedIDs(delta))
	}
	dx.segments = swapped
	restMems := dx.frozen[len(fmems):]
	dx.frozen = make([]*memtable, 0, len(restMems))
	for _, fm := range restMems {
		dx.frozen = append(dx.frozen, fm.remapped(delta))
	}
	if dx.mem.len() > 0 {
		dx.mem = dx.mem.remapped(delta)
	}

	// Rebuild the tombstone bitmap in the new id space: survivors deleted
	// during the merge keep their (translated) bits, dropped rows lose
	// theirs, and the words beyond the new id bound are released.
	oldBytes := dx.dead.Bytes()
	var newDead bitvec.Bitmap
	if dx.dead.Count() != dead.Count() { // deletes landed during the merge
		for j, old := range surv {
			if dx.dead.Get(int(old)) {
				newDead.Set(j)
			}
		}
		for old := snapBound; old < snapBound+tailLen; old++ {
			if dx.dead.Get(old) {
				newDead.Set(old + int(delta))
			}
		}
	}
	reclaim := oldBytes - newDead.Bytes()
	if reclaim > 0 {
		dx.gcReclaimedBytes += reclaim
		mGCReclaimed.Add(dx.stripe, uint64(reclaim))
	}
	dx.dead = newDead
	dx.gcCollected += dropped
	mCompactGC.Inc(dx.stripe)
	mCompactRows.Add(dx.stripe, uint64(len(surv)))
	mGCCollected.Add(dx.stripe, uint64(dropped))
	mCompactDur.Observe(dx.stripe, uint64(time.Since(start)))
	obs.RecordEvent("gc", int64(dropped), int64(reclaim))

	// Remap the external-key table: keyed rows inserted after the pin
	// shift, keyed survivors take their dense rank, and entries orphaned
	// on dropped rows (deleted by id rather than by key) are purged. The
	// guard is dropped-OR-shifted, not dropped alone: if an earlier merge
	// ever removed a row without renumbering (an id hole), this fold still
	// shifts every higher id even though it dropped nothing itself.
	if dropped > 0 || delta != 0 {
		if dx.store != nil {
			dx.store.logGCRemap(int32(snapBound), delta, droppedIDs)
		}
		for k, v := range dx.keyed {
			switch {
			case int(v) >= snapBound:
				dx.keyed[k] = v + delta
			default:
				if j := rankOf(surv, v); j >= 0 {
					dx.keyed[k] = int32(j)
				} else {
					delete(dx.keyed, k)
				}
			}
		}
		// Ids changed: advance the epoch so snapshots and caches keyed on
		// ids observe the renumbering as a mutation.
		dx.epoch++
	}
}

// rankOf returns the index of id in the strictly ascending slice ids, or
// -1 when absent.
func rankOf(ids []int32, id int32) int {
	lo, hi := 0, len(ids)
	for lo < hi {
		mid := (lo + hi) / 2
		if ids[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(ids) && ids[lo] == id {
		return lo
	}
	return -1
}

// compactLeveledStep runs one automatic step of the leveled policy and
// reports whether it did productive work. It triggers the bottom-level GC
// merge when the upper tier has grown to 1/GrowthFactor of the bottom
// segment or dead rows have reached 1/GrowthFactor of the live count;
// otherwise it folds the upper segments (everything above the bottom one)
// into a single level-1 segment.
func (dx *DynamicIndex[P]) compactLeveledStep() bool {
	dx.mu.RLock()
	segs := dx.segments
	live := dx.live
	rows := dx.mem.len()
	for _, fm := range dx.frozen {
		rows += fm.len()
	}
	for _, s := range segs {
		rows += s.len()
	}
	dx.mu.RUnlock()
	if len(segs) == 0 {
		return false
	}
	growth := dx.opts.GrowthFactor
	bottom := segs[0].len()
	upper := 0
	for _, s := range segs[1:] {
		upper += s.len()
	}
	if upper*growth >= bottom || (rows-live)*growth >= live+1 {
		dx.compactGC()
		return true
	}
	return dx.compactUpperStep()
}

// compactUpperStep folds every segment above the bottom one into a single
// level-1 segment and reports whether a merge happened (false with fewer
// than two upper segments). The memtable and pending detached memtables
// are left alone — freezes, not merges, are responsible for them.
//
// Unlike the other merge steps, an upper fold is strictly id-preserving:
// tombstoned rows are retained, not dropped. Dropping them here once
// created id holes that the bottom-level GC could not see — its dropped
// count came out zero while the dense renumbering still shifted every
// higher id, so the external-key table was left pointing at out-of-range
// ids (the bug pinned by TestReproGCHoleRenumbering). Dead rows therefore
// live until the bottom fold, which drops and renumbers them atomically.
func (dx *DynamicIndex[P]) compactUpperStep() bool {
	dx.mergeMu.Lock()
	defer dx.mergeMu.Unlock()

	dx.mu.RLock()
	segs := dx.segments
	dx.mu.RUnlock()

	if len(segs) < 3 {
		return false
	}
	start := time.Now()
	srcs := make([]colSource, 0, len(segs)-1)
	for _, s := range segs[1:] {
		srcs = append(srcs, colSource{ids: s.globalIDs, keys: s.keys})
	}
	var noDead bitvec.Bitmap // keep every row: upper merges never drop
	merged := mergeSources(len(dx.pairs), srcs, &noDead)
	rows := 0
	if merged != nil {
		rows = merged.len()
	}
	mCompactUpper.Inc(dx.stripe)
	mCompactRows.Add(dx.stripe, uint64(rows))
	mCompactDur.Observe(dx.stripe, uint64(time.Since(start)))
	obs.RecordEvent("compact.upper", int64(rows), int64(len(segs)-1))

	dx.mu.Lock()
	// segs still occupies the prefix of dx.segments: rewrites are
	// serialized by mergeMu (held) and concurrent freezes only append.
	rest := dx.segments[len(segs):]
	swapped := make([]*segment, 0, 2+len(rest))
	swapped = append(swapped, segs[0])
	if merged != nil {
		swapped = append(swapped, merged)
	}
	swapped = append(swapped, rest...)
	dx.segments = swapped
	dx.mu.Unlock()
	return true
}

// compactTieredStep merges the newest run of similar-sized segments into
// one, dropping their tombstoned rows, and reports whether a merge
// happened (false when fewer than two segments are tier-eligible). The
// memtable and pending detached memtables are left alone — freezes, not
// merges, are responsible for them.
func (dx *DynamicIndex[P]) compactTieredStep() bool {
	dx.mergeMu.Lock()
	defer dx.mergeMu.Unlock()

	dx.mu.RLock()
	segs := dx.segments
	dead := dx.dead.Clone()
	dx.mu.RUnlock()

	lo := tieredRunStart(segs, dx.opts.GrowthFactor)
	if len(segs)-lo < 2 {
		return false
	}
	start := time.Now()
	srcs := make([]colSource, 0, len(segs)-lo)
	for _, s := range segs[lo:] {
		srcs = append(srcs, colSource{ids: s.globalIDs, keys: s.keys})
	}
	merged := mergeSources(len(dx.pairs), srcs, &dead)
	rows := 0
	if merged != nil {
		rows = merged.len()
	}
	mCompactTiered.Inc(dx.stripe)
	mCompactRows.Add(dx.stripe, uint64(rows))
	mCompactDur.Observe(dx.stripe, uint64(time.Since(start)))
	obs.RecordEvent("compact.tiered", int64(rows), int64(len(segs)-lo))

	dx.mu.Lock()
	// segs[lo:] still occupies positions lo..len(segs) of dx.segments:
	// concurrent freezes only appended past len(segs), and other merges
	// are excluded by mergeMu.
	rest := dx.segments[len(segs):]
	swapped := make([]*segment, 0, lo+1+len(rest))
	swapped = append(swapped, dx.segments[:lo]...)
	if merged != nil {
		swapped = append(swapped, merged)
	}
	swapped = append(swapped, rest...)
	dx.segments = swapped
	dx.mu.Unlock()
	return true
}

// tieredRunStart returns the start index of the maximal suffix run of
// segments eligible for a tiered merge: walking newest to oldest, an
// older segment joins the run while it is at most growth times the
// combined size of the newer segments already in it. Large old segments
// therefore stay out of the run until enough young data has accumulated
// next to them.
func tieredRunStart(segs []*segment, growth int) int {
	if len(segs) == 0 {
		return 0
	}
	lo := len(segs) - 1
	total := segs[lo].len()
	for lo > 0 && segs[lo-1].len() <= growth*total {
		lo--
		total += segs[lo].len()
	}
	return lo
}

// segmentsHaveTombstonesLocked reports whether any frozen segment still
// holds a tombstoned point (making a single-segment merge worthwhile).
// Callers hold mu.
func (dx *DynamicIndex[P]) segmentsHaveTombstonesLocked() bool {
	if dx.dead.Count() == 0 {
		return false
	}
	for _, seg := range dx.segments {
		for _, id := range seg.globalIDs {
			if dx.dead.Get(int(id)) {
				return true
			}
		}
	}
	return false
}
