package index

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dsh/internal/core"
	"dsh/internal/workload"
	"dsh/internal/xrand"
)

// countingFamily wraps a family so every data-side (H) and query-side (G)
// hash evaluation increments shared counters, letting tests assert that
// merges move memory instead of re-evaluating hash functions.
type countingFamily struct {
	inner  core.Family[[]float64]
	hCalls *atomic.Int64
	gCalls *atomic.Int64
}

type countingHasher struct {
	inner core.Hasher[[]float64]
	calls *atomic.Int64
}

func (h countingHasher) Hash(p []float64) uint64 {
	h.calls.Add(1)
	return h.inner.Hash(p)
}

func (f countingFamily) Name() string  { return "counting(" + f.inner.Name() + ")" }
func (f countingFamily) CPF() core.CPF { return f.inner.CPF() }

func (f countingFamily) Sample(rng *xrand.Rand) core.Pair[[]float64] {
	pair := f.inner.Sample(rng)
	return core.Pair[[]float64]{
		H: countingHasher{inner: pair.H, calls: f.hCalls},
		G: countingHasher{inner: pair.G, calls: f.gCalls},
	}
}

// TestCompactionPerformsNoHashEvaluations is the rehash-free acceptance
// criterion: once a point's keys are evaluated at Insert (or initial
// construction), no freeze, flush, monolithic compaction, or tiered merge
// ever evaluates a hash function again.
func TestCompactionPerformsNoHashEvaluations(t *testing.T) {
	fam := countingFamily{inner: dynamicFamily(), hCalls: &atomic.Int64{}, gCalls: &atomic.Int64{}}
	const L, initial, inserts = 12, 100, 400
	pts := workload.SpherePoints(xrand.New(61), initial+inserts, testDim)

	dx := NewDynamic[[]float64](xrand.New(62), fam, L, pts[:initial],
		DynamicOptions{MemtableThreshold: 64})
	for _, p := range pts[initial:] {
		dx.Insert(p)
	}
	for id := 0; id < initial+inserts; id += 5 {
		dx.Delete(id)
	}
	want := int64((initial + inserts) * L)
	if got := fam.hCalls.Load(); got != want {
		t.Fatalf("construction+inserts evaluated %d data hashes, want %d", got, want)
	}

	dx.Flush()
	if dx.Segments() < 3 {
		t.Fatalf("fixture too flat: %d segments", dx.Segments())
	}
	for dx.compactTieredStep() {
	}
	dx.Compact()
	if got := fam.hCalls.Load(); got != want {
		t.Fatalf("merges evaluated %d extra data hashes, want 0", got-want)
	}
	if got := fam.gCalls.Load(); got != 0 {
		t.Fatalf("merges evaluated %d query hashes, want 0", got)
	}

	// The merged index still answers correctly: every live point finds
	// itself (SimHash^k collides with probability 1 at distance 0).
	for id := 0; id < initial+inserts; id += 37 {
		if dx.Deleted(id) {
			continue
		}
		found := false
		for _, c := range dx.CollectDistinct(dx.Point(id), 0) {
			if c == id {
				found = true
			}
		}
		if !found {
			t.Fatalf("live point %d lost after rehash-free merges", id)
		}
	}
}

// TestTieredCompactionPreservesResults drives tiered merge steps over a
// many-segment index and checks each step reduces the segment count while
// leaving query results bit-identical.
func TestTieredCompactionPreservesResults(t *testing.T) {
	pts := workload.SpherePoints(xrand.New(63), 600, testDim)
	dx := NewDynamic[[]float64](xrand.New(64), dynamicFamily(), 10, nil,
		DynamicOptions{MemtableThreshold: 32})
	for _, p := range pts {
		dx.Insert(p)
	}
	for id := 0; id < 600; id += 7 {
		dx.Delete(id)
	}
	dx.Flush()

	queries := workload.SpherePoints(xrand.New(65), 16, testDim)
	want := make([][]int, len(queries))
	for i, q := range queries {
		want[i] = dx.CollectDistinct(q, 0)
	}

	for {
		before := dx.Segments()
		if !dx.compactTieredStep() {
			break
		}
		after := dx.Segments()
		if after >= before {
			t.Fatalf("tiered step grew segments: %d -> %d", before, after)
		}
		for i, q := range queries {
			if got := dx.CollectDistinct(q, 0); !reflect.DeepEqual(got, want[i]) {
				t.Fatalf("query %d diverged after tiered step: %v != %v", i, got, want[i])
			}
		}
	}
	if dx.Segments() > 2 {
		t.Fatalf("tiered steps left %d segments over equal-sized runs", dx.Segments())
	}
}

func TestTieredRunStart(t *testing.T) {
	seg := func(n int) *segment { return &segment{globalIDs: make([]int32, n)} }
	cases := []struct {
		sizes []int
		want  int
	}{
		{nil, 0},
		{[]int{100}, 0},
		{[]int{100, 100}, 0},                // peers merge
		{[]int{10000, 100, 100}, 1},         // big old segment stays out
		{[]int{10000, 100, 100, 100}, 1},    // run grows along the suffix
		{[]int{400, 100}, 0},                // within the growth factor
		{[]int{401, 100}, 1},                // just beyond it
		{[]int{100000, 4000, 1000, 250}, 1}, // geometric chain folds up to the giant
	}
	for _, c := range cases {
		segs := make([]*segment, len(c.sizes))
		for i, n := range c.sizes {
			segs[i] = seg(n)
		}
		if got := tieredRunStart(segs, defaultGrowthFactor); got != c.want {
			t.Errorf("tieredRunStart(%v) = %d, want %d", c.sizes, got, c.want)
		}
	}
}

// TestAsyncFreezeMatchesInline checks the freeze-mode equivalence claim:
// the same insert/delete stream served with AsyncFreeze returns exactly
// the results of the inline-freeze index, and Flush leaves no pending
// detached memtables behind.
func TestAsyncFreezeMatchesInline(t *testing.T) {
	pts := workload.SpherePoints(xrand.New(71), 800, testDim)
	build := func(async bool) *DynamicIndex[[]float64] {
		dx := NewDynamic[[]float64](xrand.New(72), dynamicFamily(), 12, pts[:200],
			DynamicOptions{MemtableThreshold: 64, AsyncFreeze: async})
		for _, p := range pts[200:] {
			dx.Insert(p)
		}
		for id := 0; id < 800; id += 9 {
			dx.Delete(id)
		}
		return dx
	}
	inline, async := build(false), build(true)
	async.Flush()
	if got := async.PendingFreezes(); got != 0 {
		t.Fatalf("Flush left %d pending freezes", got)
	}
	if inline.Len() != async.Len() {
		t.Fatalf("live counts differ: %d vs %d", inline.Len(), async.Len())
	}
	queries := workload.SpherePoints(xrand.New(73), 24, testDim)
	for i, q := range queries {
		if got, want := async.CollectDistinct(q, 0), inline.CollectDistinct(q, 0); !reflect.DeepEqual(got, want) {
			t.Fatalf("query %d: async results %v != inline %v", i, got, want)
		}
	}
	async.Compact()
	inline.Compact()
	for i, q := range queries {
		if got, want := async.CollectDistinct(q, 0), inline.CollectDistinct(q, 0); !reflect.DeepEqual(got, want) {
			t.Fatalf("post-compact query %d: async results differ", i)
		}
	}
}

// TestDynamicConcurrentQueryAsyncFreeze hammers queries (collect, annulus
// and range veneers) while inserts constantly detach memtables and the
// freezer installs segments in the background. Run under -race (CI does)
// this is the race-freedom check of the asynchronous freeze path; the
// assertions are the interleaving-independent invariants: ids in range,
// no duplicates within one result, deleted ids never reported.
func TestDynamicConcurrentQueryAsyncFreeze(t *testing.T) {
	pts := workload.SpherePoints(xrand.New(81), 3000, testDim)
	dx := NewDynamic[[]float64](xrand.New(82), dynamicFamily(), 10, pts[:200],
		DynamicOptions{MemtableThreshold: 16, AsyncFreeze: true})
	within := withinSim(-1, 2)
	ai := NewDynamicAnnulus(dx, within)
	rr := NewDynamicRangeReporter(dx, within)

	queries := workload.SpherePoints(xrand.New(83), 8, testDim)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			qr := dx.NewQuerier()
			seen := map[int]bool{}
			var dst []int
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := queries[(i+w)%len(queries)]
				res, _ := qr.CollectDistinct(q, 0)
				for k := range seen {
					delete(seen, k)
				}
				for _, id := range res {
					if id < 0 || seen[id] {
						t.Errorf("bad candidate id %d", id)
						return
					}
					seen[id] = true
				}
				if id, _ := ai.Query(q); id < -1 {
					t.Errorf("annulus returned %d", id)
					return
				}
				dst, _ = rr.AppendQuery(dst[:0], q)
			}
		}(w)
	}

	for _, p := range pts[200:] {
		dx.Insert(p)
	}
	dx.Flush()
	close(stop)
	wg.Wait()
	if got, want := dx.Len(), len(pts); got != want {
		t.Fatalf("Len = %d after concurrent async freezes, want %d", got, want)
	}
}

// TestDynamicDeleteDuringTieredCompact runs concurrent deletes and
// queries against a background compactor in tiered mode. Under -race this
// checks the tiered swap discipline; the assertions check tombstones are
// honored through any merge interleaving.
func TestDynamicDeleteDuringTieredCompact(t *testing.T) {
	pts := workload.SpherePoints(xrand.New(84), 2000, testDim)
	dx := NewDynamic[[]float64](xrand.New(85), dynamicFamily(), 10, pts[:200],
		DynamicOptions{MemtableThreshold: 32, MaxSegments: 3, BackgroundCompaction: true, Policy: CompactTiered, AsyncFreeze: true})
	defer dx.Close()

	queries := workload.SpherePoints(xrand.New(86), 8, testDim)
	stop := make(chan struct{})
	deleted := &atomic.Int64{}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		qr := dx.NewQuerier()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			res, _ := qr.CollectDistinct(queries[i%len(queries)], 0)
			for _, id := range res {
				if id < 0 || id >= 2000 {
					t.Errorf("candidate id %d out of range", id)
					return
				}
			}
		}
	}()

	mrng := xrand.New(87)
	for i, p := range pts[200:] {
		id := dx.Insert(p)
		if i%3 == 0 {
			victim := mrng.Intn(id + 1)
			if dx.Delete(victim) {
				deleted.Add(1)
			}
		}
	}
	// Let the background compactor catch up, then verify tombstones.
	deadline := time.Now().Add(5 * time.Second)
	for dx.Segments() > 3+1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	dx.Compact()
	if got, want := dx.Len(), 2000-int(deleted.Load()); got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	for _, q := range queries {
		for _, id := range dx.CollectDistinct(q, 0) {
			if dx.Deleted(id) {
				t.Fatalf("deleted id %d survived tiered compaction", id)
			}
		}
	}
}
