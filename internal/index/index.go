// Package index implements the paper's Section 6 applications as hash-table
// data structures built on DSH families:
//
//   - Index: a generic multi-repetition asymmetric LSH index (data points
//     inserted under h, queries probed under g).
//   - AnnulusIndex (Theorems 6.1, 6.2, 6.4): retrieve a point whose
//     distance/similarity to the query lies in a target interval, with the
//     8L early-termination rule from the proof of Theorem 6.1.
//   - RangeReporter (Theorem 6.5): output-sensitive spherical range
//     reporting with a step-function CPF.
//   - Linear-scan baselines and a [41]-style concatenation baseline are in
//     baseline.go.
//
// Storage is the frozen flat-table layout of table.go: each repetition is
// an open-addressed key array plus a CSR id array built once at
// construction, so a probe is one hash, a short linear scan, and one
// contiguous []int32 slice. Query-time scratch (dedup sets, negated-query
// buffers, output buffers) lives in reusable Querier objects so the
// steady-state query path performs no heap allocations.
//
// DynamicIndex (dynamic.go, memtable.go, segment.go, compact.go) is the
// mutable, LSM-style variant for churning workloads: a map-layout
// memtable absorbs inserts, immutable flat-table segments hold frozen
// points, a tombstone bitmap records deletes, and Compact merges
// everything back into a single flat segment while points keep stable
// global ids.
package index

import (
	"math"
	"sync"
	"time"

	"dsh/internal/core"
	"dsh/internal/xrand"
)

// negQueryHasher is implemented by query-side hashers that evaluate an
// inner hasher on the negated query point (the paper's central asymmetry
// device; see sphere.NegateQuery and the anti families). HashNeg hashes an
// already-negated point, letting the index negate a query once per query
// instead of once per repetition.
type negQueryHasher interface {
	HashNeg(neg []float64) uint64
}

// Index is a multi-repetition asymmetric hash index: L independent draws
// (h_i, g_i) from a DSH family; point x is stored in table i under key
// h_i(x) and a query y probes table i with key g_i(y).
type Index[P any] struct {
	family core.Family[P]
	pairs  []core.Pair[P]
	// negG[i] is non-nil iff pairs[i].G hashes the negated query, in
	// which case queriers negate the query once and call HashNeg per
	// repetition.
	negG   []negQueryHasher
	tables []flatTable
	points []P
	// queriers pools *Querier scratch for the single-query entry points;
	// batch paths hand each worker its own Querier.
	queriers sync.Pool
}

// newIndexShell allocates an Index with empty tables and wires the
// querier pool.
func newIndexShell[P any](family core.Family[P], L int, points []P) *Index[P] {
	if family == nil {
		panic("index: family must be non-nil")
	}
	if L <= 0 {
		panic("index: repetitions must be positive")
	}
	ix := &Index[P]{
		family: family,
		pairs:  make([]core.Pair[P], L),
		tables: make([]flatTable, L),
		points: points,
	}
	ix.queriers.New = func() any { return ix.NewQuerier() }
	return ix
}

// negHashers records, per repetition, whether the query-side hasher
// supports the pre-negated fast path. Called after all pairs are sampled;
// the static and dynamic indexes share it.
func negHashers[P any](pairs []core.Pair[P]) []negQueryHasher {
	out := make([]negQueryHasher, len(pairs))
	for i, pair := range pairs {
		if nh, ok := pair.G.(negQueryHasher); ok {
			out[i] = nh
		}
	}
	return out
}

// freezeNegG caches the pre-negated fast-path hashers for ix.pairs.
func (ix *Index[P]) freezeNegG() {
	ix.negG = negHashers(ix.pairs)
}

// New builds an index over points with L repetitions of the family.
func New[P any](rng *xrand.Rand, family core.Family[P], L int, points []P) *Index[P] {
	ix := newIndexShell(family, L, points)
	keys := make([]uint64, len(points))
	for i := 0; i < L; i++ {
		ix.pairs[i] = family.Sample(rng)
		h := ix.pairs[i].H
		for j, p := range points {
			keys[j] = h.Hash(p)
		}
		ix.tables[i] = buildFlatTable(keys)
	}
	ix.freezeNegG()
	return ix
}

// L returns the number of repetitions.
func (ix *Index[P]) L() int { return len(ix.pairs) }

// Len returns the number of indexed points.
func (ix *Index[P]) Len() int { return len(ix.points) }

// Point returns the stored point with the given id.
func (ix *Index[P]) Point(id int) P { return ix.points[id] }

// acquireQuerier draws a Querier from the pool.
func (ix *Index[P]) acquireQuerier() *Querier[P] { return ix.queriers.Get().(*Querier[P]) }

// releaseQuerier returns a Querier to the pool.
func (ix *Index[P]) releaseQuerier(qr *Querier[P]) { ix.queriers.Put(qr) }

// Candidates streams the ids colliding with query q, table by table
// (duplicates across tables included), invoking visit for each. If visit
// returns false the scan stops early.
func (ix *Index[P]) Candidates(q P, visit func(id int) bool) {
	qr := ix.acquireQuerier()
	qr.Candidates(q, visit)
	ix.releaseQuerier(qr)
}

// CollectDistinct gathers up to max distinct candidate ids for q
// (max <= 0 means no limit). The returned slice is freshly allocated and
// owned by the caller; use a Querier for the zero-allocation variant.
func (ix *Index[P]) CollectDistinct(q P, max int) []int {
	out, _ := ix.collectDistinct(q, max)
	return out
}

// collectDistinct is CollectDistinct plus the candidate/distinct counters;
// it is the single implementation behind the sequential and batch paths.
func (ix *Index[P]) collectDistinct(q P, max int) ([]int, QueryStats) {
	qr := ix.acquireQuerier()
	res, stats := qr.CollectDistinct(q, max)
	var out []int
	if len(res) > 0 {
		out = make([]int, len(res))
		copy(out, res)
	}
	ix.releaseQuerier(qr)
	return out, stats
}

// Querier is a reusable query-scratch object bound to one Index: an
// epoch-stamped visited array sized to Len() (so deduplication never
// allocates), a negated-query buffer for NegateQuery-backed families, and
// a reusable output buffer. A Querier is not safe for concurrent use; use
// one per goroutine (the batch engine hands each worker its own, and the
// single-query entry points draw from an internal pool). Steady-state
// queries through a Querier perform no heap allocations.
type Querier[P any] struct {
	ix      *Index[P]
	visited []uint32
	epoch   uint32
	out     []int
	neg     []float64
	negOK   bool
}

// NewQuerier returns a fresh Querier bound to ix.
func (ix *Index[P]) NewQuerier() *Querier[P] {
	return &Querier[P]{ix: ix, visited: make([]uint32, len(ix.points))}
}

// begin opens a new query: advance the visited epoch (clearing the array
// only on uint32 wraparound) and invalidate the negated-query buffer.
func (qr *Querier[P]) begin() {
	qr.negOK = false
	qr.epoch++
	if qr.epoch == 0 {
		for i := range qr.visited {
			qr.visited[i] = 0
		}
		qr.epoch = 1
	}
}

// gKey returns g_i(q), negating q once per query (into the reused scratch
// buffer) when repetition i's query hasher supports the pre-negated path.
func (qr *Querier[P]) gKey(i int, q P) uint64 {
	ix := qr.ix
	if nh := ix.negG[i]; nh != nil {
		if qr.prepNeg(q) {
			return nh.HashNeg(qr.neg)
		}
	}
	return ix.pairs[i].G.Hash(q)
}

// negateQuery fills buf with -q when q is a []float64, reporting success.
// The returned slice reuses buf's capacity so steady-state negation does
// not allocate; the static and dynamic queriers share it.
func negateQuery[P any](buf []float64, q P) ([]float64, bool) {
	fq, ok := any(q).([]float64)
	if !ok {
		return buf, false
	}
	if cap(buf) < len(fq) {
		buf = make([]float64, len(fq))
	}
	buf = buf[:len(fq)]
	for i, v := range fq {
		buf[i] = -v
	}
	return buf, true
}

// prepNeg fills qr.neg with -q if q is a []float64 and reports success.
// The negation is computed at most once per query.
func (qr *Querier[P]) prepNeg(q P) bool {
	if qr.negOK {
		return true
	}
	neg, ok := negateQuery(qr.neg, q)
	qr.neg = neg
	qr.negOK = ok
	return ok
}

// Candidates streams the ids colliding with q exactly like
// Index.Candidates, using this Querier's scratch for the per-query
// negated-hash hoisting.
func (qr *Querier[P]) Candidates(q P, visit func(id int) bool) {
	qr.negOK = false
	ix := qr.ix
	for i := range ix.pairs {
		key := qr.gKey(i, q)
		for _, id := range ix.tables[i].lookup(key) {
			if !visit(int(id)) {
				return
			}
		}
	}
}

// CollectDistinct gathers up to max distinct candidate ids for q (max <= 0
// means no limit), returning the same ids in the same order as
// Index.CollectDistinct. The returned slice is owned by the Querier and
// valid only until its next use; steady-state calls perform no heap
// allocations.
func (qr *Querier[P]) CollectDistinct(q P, max int) ([]int, QueryStats) {
	qr.begin()
	var stats QueryStats
	ix := qr.ix
	out := qr.out[:0]
	visited := qr.visited
	epoch := qr.epoch
scan:
	for i := range ix.pairs {
		key := qr.gKey(i, q)
		for _, id32 := range ix.tables[i].lookup(key) {
			stats.Candidates++
			id := int(id32)
			if visited[id] != epoch {
				visited[id] = epoch
				out = append(out, id)
				stats.Distinct++
				if max > 0 && len(out) >= max {
					break scan
				}
			}
		}
	}
	qr.out = out
	return out, stats
}

// QueryStats reports the work performed by a query.
type QueryStats struct {
	// Candidates is the total number of candidate ids scanned, counting
	// duplicates across repetitions.
	Candidates int
	// Distinct is the number of distinct candidates seen.
	Distinct int
	// Verified is the number of candidate points whose distance was
	// actually evaluated.
	Verified int
	// Latency is the wall-clock time of the query. It is populated by the
	// batch entry points in batch.go; single-query paths leave it zero.
	Latency time.Duration
}

// RepetitionsForCPF returns the standard repetition count L = ceil(1/f)
// that makes a target with collision probability f collide in some
// repetition with constant probability (1 - 1/e).
func RepetitionsForCPF(f float64) int {
	if f <= 0 {
		panic("index: collision probability must be positive")
	}
	if f >= 1 {
		return 1
	}
	L := math.Ceil(1 / f)
	if L > 1<<24 {
		panic("index: repetition count unreasonably large")
	}
	return int(L)
}

// AnnulusIndex solves the approximate annulus search problem of
// Theorem 6.1: given a family whose CPF peaks inside the target interval,
// a query retrieves collision candidates and returns the first whose
// distance lies in the report interval, scanning at most 8L candidates.
type AnnulusIndex[P any] struct {
	ix *Index[P]
	// Within reports whether a candidate point lies in the *report*
	// interval [beta-, beta+] relative to the query.
	within func(q, x P) bool
}

// NewAnnulus builds the Theorem 6.1 structure: family should have a CPF
// peaking inside the target interval; L = ceil(1/f(peak)) repetitions;
// within decides membership in the report interval.
func NewAnnulus[P any](rng *xrand.Rand, family core.Family[P], L int, points []P, within func(q, x P) bool) *AnnulusIndex[P] {
	return &AnnulusIndex[P]{
		ix:     New(rng, family, L, points),
		within: within,
	}
}

// Query returns the id of some point within the report interval of q, or
// -1 if none was found among the first 8L candidates (the Markov-bound
// early termination from the proof of Theorem 6.1).
func (ai *AnnulusIndex[P]) Query(q P) (int, QueryStats) {
	qr := ai.ix.acquireQuerier()
	id, stats := ai.QueryWith(qr, q)
	ai.ix.releaseQuerier(qr)
	return id, stats
}

// QueryWith is Query with an explicit Querier, for callers that manage
// their own per-goroutine scratch. The candidate loop is written out
// directly (rather than through Candidates' visit callback) so the steady
// state allocates nothing.
func (ai *AnnulusIndex[P]) QueryWith(qr *Querier[P], q P) (int, QueryStats) {
	if qr.ix != ai.ix {
		panic("index: Querier bound to a different index")
	}
	var stats QueryStats
	ix := ai.ix
	limit := 8 * ix.L()
	qr.negOK = false
	for i := range ix.pairs {
		key := qr.gKey(i, q)
		for _, id32 := range ix.tables[i].lookup(key) {
			stats.Candidates++
			stats.Verified++
			id := int(id32)
			if ai.within(q, ix.points[id]) {
				return id, stats
			}
			if stats.Candidates >= limit {
				return -1, stats
			}
		}
	}
	return -1, stats
}

// Index exposes the underlying index (for inspection in experiments).
func (ai *AnnulusIndex[P]) Index() *Index[P] { return ai.ix }

// RangeReporter solves approximate spherical range reporting
// (Theorem 6.5): report every point within the target range of the query,
// each with probability >= 1 - (1-fmin)^L, verifying candidates and
// deduplicating across repetitions.
type RangeReporter[P any] struct {
	ix *Index[P]
	// inRange reports whether x lies within the report radius r+ of q.
	inRange func(q, x P) bool
}

// NewRangeReporter builds the reporting structure with L = ceil(1/fmin)
// repetitions, where fmin is the minimum CPF value over the target range.
func NewRangeReporter[P any](rng *xrand.Rand, family core.Family[P], L int, points []P, inRange func(q, x P) bool) *RangeReporter[P] {
	return &RangeReporter[P]{
		ix:      New(rng, family, L, points),
		inRange: inRange,
	}
}

// Query returns the distinct ids of reported points within range of q.
// Every candidate is verified once, so the work is Candidates hash probes
// plus Distinct distance evaluations. The returned slice is owned by the
// caller; AppendQuery is the allocation-free variant.
func (rr *RangeReporter[P]) Query(q P) ([]int, QueryStats) {
	return rr.AppendQuery(nil, q)
}

// AppendQuery appends the distinct ids of reported points within range of
// q to dst and returns the extended slice. Reusing dst across queries
// makes the steady-state reporting path allocation-free.
func (rr *RangeReporter[P]) AppendQuery(dst []int, q P) ([]int, QueryStats) {
	qr := rr.ix.acquireQuerier()
	dst, stats := rr.appendQueryWith(qr, dst, q)
	rr.ix.releaseQuerier(qr)
	return dst, stats
}

// appendQueryWith is AppendQuery against an explicit Querier; the batch
// path reuses one Querier per worker through it.
func (rr *RangeReporter[P]) appendQueryWith(qr *Querier[P], dst []int, q P) ([]int, QueryStats) {
	qr.begin()
	var stats QueryStats
	ix := rr.ix
	visited := qr.visited
	epoch := qr.epoch
	for i := range ix.pairs {
		key := qr.gKey(i, q)
		for _, id32 := range ix.tables[i].lookup(key) {
			stats.Candidates++
			id := int(id32)
			if visited[id] != epoch {
				visited[id] = epoch
				stats.Distinct++
				stats.Verified++
				if rr.inRange(q, ix.points[id]) {
					dst = append(dst, id)
				}
			}
		}
	}
	return dst, stats
}

// Index exposes the underlying index.
func (rr *RangeReporter[P]) Index() *Index[P] { return rr.ix }
