// Package index implements the paper's Section 6 applications as hash-table
// data structures built on DSH families.
//
// Serving is organized around a single candidateSource core (source.go): a
// per-repetition key probe plus tombstone-aware candidate iteration under
// stable point ids. Four backends implement it:
//
//   - Index: the frozen flat-table backend (table.go) — each repetition is
//     an open-addressed key array plus a CSR id array built once at
//     construction, so a probe is one hash, a short linear scan, and one
//     contiguous []int32 slice.
//   - DynamicIndex (dynamic.go, memtable.go, segment.go, compact.go): the
//     mutable, LSM-style backend for churning workloads — a map-layout
//     memtable absorbs inserts, immutable flat-table segments hold frozen
//     points, a tombstone bitmap records deletes, freezes run
//     asynchronously off the structural lock, and compaction merges
//     retained key columns without re-evaluating any hash function.
//   - ShardedIndex (shard.go): K independent DynamicIndex shards sharing
//     one set of repetition draws, partitioned by global id, so
//     multi-writer ingest never contends on a single lock.
//   - Snapshot / ShardedSnapshot (snapshot.go, shard.go): immutable
//     point-in-time views of the dynamic backends for lock-free,
//     snapshot-isolated scans and queries while the live index mutates.
//
// The query structures are veneers written once over that core and served
// by either backend (veneer.go):
//
//   - AnnulusIndex (Theorems 6.1, 6.2, 6.4): retrieve a point whose
//     distance/similarity to the query lies in a target interval, with the
//     8L early-termination rule from the proof of Theorem 6.1.
//   - RangeReporter (Theorem 6.5): output-sensitive spherical range
//     reporting with a step-function CPF.
//   - CollectDistinct / QueryBatch: deduplicated candidate collection,
//     sequential and concurrent (batch.go).
//   - Linear-scan baselines and a [41]-style concatenation baseline are in
//     baseline.go.
//
// Query-time scratch (dedup sets, negated-query buffers, candidate and
// output buffers) lives in reusable querier objects so the steady-state
// query path performs no heap allocations on either backend.
package index

import (
	"math"
	"sync"
	"time"

	"dsh/internal/core"
	"dsh/internal/xrand"
)

// negQueryHasher is implemented by query-side hashers that evaluate an
// inner hasher on the negated query point (the paper's central asymmetry
// device; see sphere.NegateQuery and the anti families). HashNeg hashes an
// already-negated point, letting a querier negate a query once per query
// instead of once per repetition.
type negQueryHasher interface {
	HashNeg(neg []float64) uint64
}

// Index is a multi-repetition asymmetric hash index: L independent draws
// (h_i, g_i) from a DSH family; point x is stored in table i under key
// h_i(x) and a query y probes table i with key g_i(y). An Index is
// immutable after construction and therefore safe for unrestricted
// concurrent querying; it is the frozen backend of the candidateSource
// core.
type Index[P any] struct {
	family core.Family[P]
	pairs  []core.Pair[P]
	// negG[i] is non-nil iff pairs[i].G hashes the negated query, in
	// which case queriers negate the query once and call HashNeg per
	// repetition.
	negG   []negQueryHasher
	tables []flatTable
	points []P
	// queriers pools *sourceQuerier scratch for the single-query and batch
	// entry points.
	queriers sync.Pool
}

// newIndexShell allocates an Index with empty tables and wires the
// querier pool.
func newIndexShell[P any](family core.Family[P], L int, points []P) *Index[P] {
	if family == nil {
		panic("index: family must be non-nil")
	}
	if L <= 0 {
		panic("index: repetitions must be positive")
	}
	ix := &Index[P]{
		family: family,
		pairs:  make([]core.Pair[P], L),
		tables: make([]flatTable, L),
		points: points,
	}
	ix.queriers.New = func() any { return newSourceQuerier[P](ix, len(ix.points)) }
	return ix
}

// negHashers records, per repetition, whether the query-side hasher
// supports the pre-negated fast path. Called after all pairs are sampled;
// the static and dynamic backends share it.
func negHashers[P any](pairs []core.Pair[P]) []negQueryHasher {
	out := make([]negQueryHasher, len(pairs))
	for i, pair := range pairs {
		if nh, ok := pair.G.(negQueryHasher); ok {
			out[i] = nh
		}
	}
	return out
}

// freezeNegG caches the pre-negated fast-path hashers for ix.pairs.
func (ix *Index[P]) freezeNegG() {
	ix.negG = negHashers(ix.pairs)
}

// New builds an index over points with L repetitions of the family. The
// build is already repetition-blocked (all points are hashed against one
// draw before the next is sampled), so when the family's data hasher
// implements core.BatchHasher the whole column is hashed in one call.
func New[P any](rng *xrand.Rand, family core.Family[P], L int, points []P) *Index[P] {
	ix := newIndexShell(family, L, points)
	keys := make([]uint64, len(points))
	for i := 0; i < L; i++ {
		ix.pairs[i] = family.Sample(rng)
		h := ix.pairs[i].H
		if bh, ok := h.(core.BatchHasher[P]); ok {
			bh.HashBatch(points, keys)
		} else {
			for j, p := range points {
				keys[j] = h.Hash(p)
			}
		}
		ix.tables[i] = buildFlatTable(keys)
	}
	ix.freezeNegG()
	return ix
}

// L returns the number of repetitions.
func (ix *Index[P]) L() int { return len(ix.pairs) }

// Len returns the number of indexed points.
func (ix *Index[P]) Len() int { return len(ix.points) }

// Point returns the stored point with the given id.
func (ix *Index[P]) Point(id int) P { return ix.points[id] }

// candidateSource implementation. The Index is immutable, so the read
// window is free and candidate iteration is a single flat-table lookup per
// repetition.

func (ix *Index[P]) srcPairs() []core.Pair[P]  { return ix.pairs }
func (ix *Index[P]) srcNegG() []negQueryHasher { return ix.negG }
func (ix *Index[P]) beginRead() int            { return len(ix.points) }
func (ix *Index[P]) endRead()                  {}
func (ix *Index[P]) srcPoint(id int) P         { return ix.points[id] }

func (ix *Index[P]) appendCandidates(rep int, key uint64, dst []int32) ([]int32, int) {
	return append(dst, ix.tables[rep].lookup(key)...), 1
}

func (ix *Index[P]) acquireSQ() *sourceQuerier[P]   { return ix.queriers.Get().(*sourceQuerier[P]) }
func (ix *Index[P]) releaseSQ(sq *sourceQuerier[P]) { ix.queriers.Put(sq) }

// Candidates streams the ids colliding with query q, table by table
// (duplicates across tables included), invoking visit for each. If visit
// returns false the scan stops early.
func (ix *Index[P]) Candidates(q P, visit func(id int) bool) {
	sq := ix.acquireSQ()
	sq.candidates(q, visit)
	ix.releaseSQ(sq)
}

// CollectDistinct gathers up to max distinct candidate ids for q
// (max <= 0 means no limit). The returned slice is freshly allocated and
// owned by the caller; use a Querier for the zero-allocation variant.
func (ix *Index[P]) CollectDistinct(q P, max int) []int {
	out, _ := ix.collectDistinct(q, max)
	return out
}

// collectDistinct is CollectDistinct plus the candidate/distinct counters.
func (ix *Index[P]) collectDistinct(q P, max int) ([]int, QueryStats) {
	sq := ix.acquireSQ()
	res, stats := sq.collectDistinct(q, max)
	var out []int
	if len(res) > 0 {
		out = make([]int, len(res))
		copy(out, res)
	}
	ix.releaseSQ(sq)
	return out, stats
}

// Querier is a reusable query-scratch object bound to one Index: an
// epoch-stamped visited array sized to Len() (so deduplication never
// allocates), a negated-query buffer for NegateQuery-backed families, and
// reusable candidate/output buffers. A Querier is not safe for concurrent
// use; use one per goroutine (the batch engine hands each worker its own,
// and the single-query entry points draw from an internal pool).
// Steady-state queries through a Querier perform no heap allocations.
type Querier[P any] struct {
	sourceQuerier[P]
}

// NewQuerier returns a fresh Querier bound to ix.
func (ix *Index[P]) NewQuerier() *Querier[P] {
	return &Querier[P]{sourceQuerier: *newSourceQuerier[P](ix, len(ix.points))}
}

// Candidates streams the ids colliding with q exactly like
// Index.Candidates, using this Querier's scratch for the per-query
// negated-hash hoisting.
func (qr *Querier[P]) Candidates(q P, visit func(id int) bool) {
	qr.candidates(q, visit)
}

// CollectDistinct gathers up to max distinct candidate ids for q (max <= 0
// means no limit), returning the same ids in the same order as
// Index.CollectDistinct. The returned slice is owned by the Querier and
// valid only until its next use; steady-state calls perform no heap
// allocations.
func (qr *Querier[P]) CollectDistinct(q P, max int) ([]int, QueryStats) {
	return qr.collectDistinct(q, max)
}

// QueryStats reports the work performed by a query.
type QueryStats struct {
	// Probes is the number of hash-table bucket lookups performed: one per
	// repetition per storage layer probed. A static Index probes one table
	// per repetition; a DynamicIndex probes every segment, every detached
	// read-only memtable, and the live memtable (empty layers are
	// skipped), so Probes surfaces the layering cost that compaction
	// removes.
	Probes int
	// Candidates is the total number of live candidate ids scanned,
	// counting duplicates across repetitions. Tombstoned (deleted) ids are
	// filtered during iteration and never counted.
	Candidates int
	// Distinct is the number of distinct candidates seen.
	Distinct int
	// Verified is the number of candidate points whose distance was
	// actually evaluated.
	Verified int
	// Latency is the wall-clock time of the query. It is populated by the
	// batch entry points in batch.go; single-query paths leave it zero.
	Latency time.Duration
}

// RepetitionsForCPF returns the standard repetition count L = ceil(1/f)
// that makes a target with collision probability f collide in some
// repetition with constant probability (1 - 1/e).
func RepetitionsForCPF(f float64) int {
	if f <= 0 {
		panic("index: collision probability must be positive")
	}
	if f >= 1 {
		return 1
	}
	L := math.Ceil(1 / f)
	if L > 1<<24 {
		panic("index: repetition count unreasonably large")
	}
	return int(L)
}
