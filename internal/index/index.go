// Package index implements the paper's Section 6 applications as hash-table
// data structures built on DSH families:
//
//   - Index: a generic multi-repetition asymmetric LSH index (data points
//     inserted under h, queries probed under g).
//   - AnnulusIndex (Theorems 6.1, 6.2, 6.4): retrieve a point whose
//     distance/similarity to the query lies in a target interval, with the
//     8L early-termination rule from the proof of Theorem 6.1.
//   - RangeReporter (Theorem 6.5): output-sensitive spherical range
//     reporting with a step-function CPF.
//   - Linear-scan baselines and a [41]-style concatenation baseline are in
//     baseline.go.
package index

import (
	"math"
	"time"

	"dsh/internal/core"
	"dsh/internal/xrand"
)

// Index is a multi-repetition asymmetric hash index: L independent draws
// (h_i, g_i) from a DSH family; point x is stored in table i under key
// h_i(x) and a query y probes table i with key g_i(y).
type Index[P any] struct {
	family core.Family[P]
	pairs  []core.Pair[P]
	tables []map[uint64][]int32
	points []P
}

// New builds an index over points with L repetitions of the family.
func New[P any](rng *xrand.Rand, family core.Family[P], L int, points []P) *Index[P] {
	if L <= 0 {
		panic("index: repetitions must be positive")
	}
	ix := &Index[P]{
		family: family,
		pairs:  make([]core.Pair[P], L),
		tables: make([]map[uint64][]int32, L),
		points: points,
	}
	for i := 0; i < L; i++ {
		ix.pairs[i] = family.Sample(rng)
		table := make(map[uint64][]int32)
		for j, p := range points {
			key := ix.pairs[i].H.Hash(p)
			table[key] = append(table[key], int32(j))
		}
		ix.tables[i] = table
	}
	return ix
}

// L returns the number of repetitions.
func (ix *Index[P]) L() int { return len(ix.pairs) }

// Len returns the number of indexed points.
func (ix *Index[P]) Len() int { return len(ix.points) }

// Point returns the stored point with the given id.
func (ix *Index[P]) Point(id int) P { return ix.points[id] }

// Candidates streams the ids colliding with query q, table by table
// (duplicates across tables included), invoking visit for each. If visit
// returns false the scan stops early.
func (ix *Index[P]) Candidates(q P, visit func(id int) bool) {
	for i, pair := range ix.pairs {
		key := pair.G.Hash(q)
		for _, id := range ix.tables[i][key] {
			if !visit(int(id)) {
				return
			}
		}
	}
}

// CollectDistinct gathers up to max distinct candidate ids for q
// (max <= 0 means no limit).
func (ix *Index[P]) CollectDistinct(q P, max int) []int {
	out, _ := ix.collectDistinct(q, max)
	return out
}

// collectDistinct is CollectDistinct plus the candidate/distinct counters;
// it is the single implementation behind the sequential and batch paths.
func (ix *Index[P]) collectDistinct(q P, max int) ([]int, QueryStats) {
	var stats QueryStats
	seen := make(map[int]struct{})
	var out []int
	ix.Candidates(q, func(id int) bool {
		stats.Candidates++
		if _, dup := seen[id]; !dup {
			seen[id] = struct{}{}
			out = append(out, id)
			stats.Distinct++
		}
		return max <= 0 || len(out) < max
	})
	return out, stats
}

// QueryStats reports the work performed by a query.
type QueryStats struct {
	// Candidates is the total number of candidate ids scanned, counting
	// duplicates across repetitions.
	Candidates int
	// Distinct is the number of distinct candidates seen.
	Distinct int
	// Verified is the number of candidate points whose distance was
	// actually evaluated.
	Verified int
	// Latency is the wall-clock time of the query. It is populated by the
	// batch entry points in batch.go; single-query paths leave it zero.
	Latency time.Duration
}

// RepetitionsForCPF returns the standard repetition count L = ceil(1/f)
// that makes a target with collision probability f collide in some
// repetition with constant probability (1 - 1/e).
func RepetitionsForCPF(f float64) int {
	if f <= 0 {
		panic("index: collision probability must be positive")
	}
	if f >= 1 {
		return 1
	}
	L := math.Ceil(1 / f)
	if L > 1<<24 {
		panic("index: repetition count unreasonably large")
	}
	return int(L)
}

// AnnulusIndex solves the approximate annulus search problem of
// Theorem 6.1: given a family whose CPF peaks inside the target interval,
// a query retrieves collision candidates and returns the first whose
// distance lies in the report interval, scanning at most 8L candidates.
type AnnulusIndex[P any] struct {
	ix *Index[P]
	// Within reports whether a candidate point lies in the *report*
	// interval [beta-, beta+] relative to the query.
	within func(q, x P) bool
}

// NewAnnulus builds the Theorem 6.1 structure: family should have a CPF
// peaking inside the target interval; L = ceil(1/f(peak)) repetitions;
// within decides membership in the report interval.
func NewAnnulus[P any](rng *xrand.Rand, family core.Family[P], L int, points []P, within func(q, x P) bool) *AnnulusIndex[P] {
	return &AnnulusIndex[P]{
		ix:     New(rng, family, L, points),
		within: within,
	}
}

// Query returns the id of some point within the report interval of q, or
// -1 if none was found among the first 8L candidates (the Markov-bound
// early termination from the proof of Theorem 6.1).
func (ai *AnnulusIndex[P]) Query(q P) (int, QueryStats) {
	var stats QueryStats
	limit := 8 * ai.ix.L()
	found := -1
	ai.ix.Candidates(q, func(id int) bool {
		stats.Candidates++
		stats.Verified++
		if ai.within(q, ai.ix.Point(id)) {
			found = id
			return false
		}
		return stats.Candidates < limit
	})
	return found, stats
}

// Index exposes the underlying index (for inspection in experiments).
func (ai *AnnulusIndex[P]) Index() *Index[P] { return ai.ix }

// RangeReporter solves approximate spherical range reporting
// (Theorem 6.5): report every point within the target range of the query,
// each with probability >= 1 - (1-fmin)^L, verifying candidates and
// deduplicating across repetitions.
type RangeReporter[P any] struct {
	ix *Index[P]
	// inRange reports whether x lies within the report radius r+ of q.
	inRange func(q, x P) bool
}

// NewRangeReporter builds the reporting structure with L = ceil(1/fmin)
// repetitions, where fmin is the minimum CPF value over the target range.
func NewRangeReporter[P any](rng *xrand.Rand, family core.Family[P], L int, points []P, inRange func(q, x P) bool) *RangeReporter[P] {
	return &RangeReporter[P]{
		ix:      New(rng, family, L, points),
		inRange: inRange,
	}
}

// Query returns the distinct ids of reported points within range of q.
// Every candidate is verified once (the verification status is memoized),
// so the work is Candidates hash probes plus Distinct distance evaluations.
func (rr *RangeReporter[P]) Query(q P) ([]int, QueryStats) {
	var stats QueryStats
	status := make(map[int]bool)
	var out []int
	rr.ix.Candidates(q, func(id int) bool {
		stats.Candidates++
		if _, seen := status[id]; !seen {
			stats.Distinct++
			stats.Verified++
			ok := rr.inRange(q, rr.ix.Point(id))
			status[id] = ok
			if ok {
				out = append(out, id)
			}
		}
		return true
	})
	return out, stats
}

// Index exposes the underlying index.
func (rr *RangeReporter[P]) Index() *Index[P] { return rr.ix }
