package index

import (
	"math"

	"dsh/internal/core"
	"dsh/internal/sphere"
	"dsh/internal/xrand"
)

// LinearScan is the trivial baseline: examine every point.
type LinearScan[P any] struct {
	points []P
}

// NewLinearScan wraps points for brute-force queries.
func NewLinearScan[P any](points []P) *LinearScan[P] {
	return &LinearScan[P]{points: points}
}

// Query returns the first point satisfying within, with full-scan stats.
func (ls *LinearScan[P]) Query(q P, within func(q, x P) bool) (int, QueryStats) {
	stats := QueryStats{}
	for i, p := range ls.points {
		stats.Candidates++
		stats.Verified++
		if within(q, p) {
			return i, stats
		}
	}
	return -1, stats
}

// QueryAll returns every point satisfying within.
func (ls *LinearScan[P]) QueryAll(q P, within func(q, x P) bool) ([]int, QueryStats) {
	return ls.AppendQueryAll(nil, q, within)
}

// AppendQueryAll appends every point id satisfying within to dst and
// returns the extended slice; reusing dst across queries makes the
// baseline scan allocation-free, matching the flat index's AppendQuery for
// fair benchmark comparisons.
func (ls *LinearScan[P]) AppendQueryAll(dst []int, q P, within func(q, x P) bool) ([]int, QueryStats) {
	stats := QueryStats{}
	for i, p := range ls.points {
		stats.Candidates++
		stats.Verified++
		if within(q, p) {
			dst = append(dst, i)
		}
	}
	return dst, stats
}

// ConcatAnnulusBaseline reproduces the ad-hoc two-stage annulus solution of
// Pagh et al. [41] in the form the paper notes is equivalent (Section 6.1):
// concatenate k1 copies of a standard LSH (SimHash) with k2 copies of an
// anti-LSH (query-negated SimHash), yielding the unimodal CPF
//
//	f(alpha) = SimHashCPF(alpha)^k1 * SimHashCPF(-alpha)^k2,
//
// then run the same Theorem 6.1 query algorithm on top. k1/k2 controls the
// peak location: the CPF peaks where k1 * s'(a)/s(a) = k2 * s'(-a)/s(-a).
func ConcatAnnulusBaseline(rng *xrand.Rand, d, k1, k2, L int, points [][]float64, within func(q, x []float64) bool) *AnnulusIndex[[]float64] {
	if k1 < 1 || k2 < 1 {
		panic("index: concatenation lengths must be >= 1")
	}
	fam := core.Concat[[]float64](
		core.Power[[]float64](sphere.SimHash(d), k1),
		core.Power[[]float64](sphere.AntiSimHash(d), k2),
	)
	named := core.Renamed[[]float64]{Inner: fam, NewName: "pagh17-baseline"}
	return NewAnnulus[[]float64](rng, named, L, points, within)
}

// ConcatAnnulusCPF returns the baseline's analytic CPF for parameter
// selection: f(alpha) = SimHashCPF(alpha)^k1 * SimHashCPF(-alpha)^k2.
func ConcatAnnulusCPF(k1, k2 int) core.CPF {
	return core.CPF{Domain: core.DomainInnerProduct, Eval: func(alpha float64) float64 {
		return math.Pow(sphere.SimHashCPF(alpha), float64(k1)) *
			math.Pow(sphere.SimHashCPF(-alpha), float64(k2))
	}}
}
