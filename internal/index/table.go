package index

// This file implements the frozen flat-table storage behind Index and the
// join paths. A flatTable replaces one map[uint64][]int32 repetition table
// with three contiguous arrays: an open-addressed key array (linear
// probing, load factor <= 1/2) mapping a 64-bit hash key to a bucket
// index, and a CSR-style (starts, ids) pair holding every bucket's point
// ids back to back. A probe is one SplitMix64 finalization, a short linear
// scan over the key array, and one contiguous []int32 slice — no pointer
// chasing and no per-bucket allocations.
//
// Buckets are numbered in first-appearance order and ids within a bucket
// are stored in insertion order, so iterating a bucket yields exactly the
// sequence the old append-to-map-value layout produced. Candidates streams
// are therefore bit-identical to the map-based implementation.

// tableMix64 is the SplitMix64 finalizer. Family hash keys are not
// guaranteed to be well distributed (bit-sampling emits 0/1), so every
// probe mixes the key before masking.
func tableMix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// flatTable is one frozen repetition table. The zero value is an empty,
// unusable table; construct with buildFlatTable.
type flatTable struct {
	mask uint64
	// keys[s] is the hash key stored in slot s; meaningful only where
	// slotBucket[s] >= 0.
	keys []uint64
	// slotBucket[s] is the bucket index stored in slot s, or -1 if the
	// slot is empty.
	slotBucket []int32
	// starts has one entry per bucket plus a terminator: bucket b's ids
	// are ids[starts[b]:starts[b+1]].
	starts []int32
	// ids holds every bucket's point ids back to back, each bucket in
	// insertion order.
	ids []int32
}

// buildFlatTable freezes keys (keys[j] is the hash key of point j) into a
// flatTable. Two passes: the first assigns buckets in first-appearance
// order and counts occupancy (growing the open-addressed key array with
// the number of *distinct* keys, which can be far below n for coarse
// families like bit-sampling), the second fills the CSR id array in point
// order, so per-bucket id order matches map-append order exactly.
func buildFlatTable(keys []uint64) flatTable {
	n := len(keys)
	t := flatTable{
		mask:       15,
		keys:       make([]uint64, 16),
		slotBucket: make([]int32, 16),
	}
	for i := range t.slotBucket {
		t.slotBucket[i] = -1
	}
	counts := make([]int32, 0, 16)
	bucketOf := make([]int32, n)
	for j, key := range keys {
		if 2*(len(counts)+1) > len(t.keys) {
			t.growSlots()
		}
		s := tableMix64(key) & t.mask
		for {
			b := t.slotBucket[s]
			if b < 0 {
				b = int32(len(counts))
				t.keys[s] = key
				t.slotBucket[s] = b
				counts = append(counts, 0)
			} else if t.keys[s] != key {
				s = (s + 1) & t.mask
				continue
			}
			counts[b]++
			bucketOf[j] = b
			break
		}
	}
	starts := make([]int32, len(counts)+1)
	var acc int32
	for b, c := range counts {
		starts[b] = acc
		acc += c
	}
	starts[len(counts)] = acc
	// Reuse counts as per-bucket write cursors for the fill pass.
	cursor := counts
	copy(cursor, starts[:len(counts)])
	ids := make([]int32, n)
	for j := range keys {
		b := bucketOf[j]
		ids[cursor[b]] = int32(j)
		cursor[b]++
	}
	t.starts = starts
	t.ids = ids
	return t
}

// growSlots doubles the open-addressed key array, preserving bucket
// assignments. Only used during the build pass; frozen tables never grow.
func (t *flatTable) growSlots() {
	oldKeys, oldBuckets := t.keys, t.slotBucket
	size := 2 * len(oldKeys)
	t.keys = make([]uint64, size)
	t.slotBucket = make([]int32, size)
	t.mask = uint64(size - 1)
	for i := range t.slotBucket {
		t.slotBucket[i] = -1
	}
	for i, b := range oldBuckets {
		if b < 0 {
			continue
		}
		key := oldKeys[i]
		s := tableMix64(key) & t.mask
		for t.slotBucket[s] >= 0 {
			s = (s + 1) & t.mask
		}
		t.keys[s] = key
		t.slotBucket[s] = b
	}
}

// lookup returns the ids bucketed under key, in insertion order, or nil.
// The returned slice aliases the table's storage and must not be modified.
func (t *flatTable) lookup(key uint64) []int32 {
	s := tableMix64(key) & t.mask
	for {
		b := t.slotBucket[s]
		if b < 0 {
			return nil
		}
		if t.keys[s] == key {
			return t.ids[t.starts[b]:t.starts[b+1]]
		}
		s = (s + 1) & t.mask
	}
}

// buckets returns the number of distinct keys in the table.
func (t *flatTable) buckets() int { return len(t.starts) - 1 }

// u64Set is an open-addressed set of uint64 keys strictly below
// 1<<63 (slot 0 marks empty; stored values are key+1), used by the join
// paths to deduplicate composite (a, b) pair ids without the pointer
// chasing of map[uint64]struct{}. The zero value is unusable; construct
// with newU64Set.
type u64Set struct {
	slots []uint64
	mask  uint64
	n     int
}

// newU64Set returns a set pre-sized for about hint keys.
func newU64Set(hint int) *u64Set {
	size := 16
	for size < 2*hint {
		size <<= 1
	}
	return &u64Set{slots: make([]uint64, size), mask: uint64(size - 1)}
}

// add inserts key and reports whether it was absent. The set grows to keep
// the load factor at or below 1/2.
func (s *u64Set) add(key uint64) bool {
	if 2*(s.n+1) > len(s.slots) {
		s.grow()
	}
	v := key + 1
	i := tableMix64(key) & s.mask
	for {
		cur := s.slots[i]
		if cur == 0 {
			s.slots[i] = v
			s.n++
			return true
		}
		if cur == v {
			return false
		}
		i = (i + 1) & s.mask
	}
}

func (s *u64Set) grow() {
	old := s.slots
	size := 2 * len(old)
	s.slots = make([]uint64, size)
	s.mask = uint64(size - 1)
	for _, v := range old {
		if v == 0 {
			continue
		}
		i := tableMix64(v-1) & s.mask
		for s.slots[i] != 0 {
			i = (i + 1) & s.mask
		}
		s.slots[i] = v
	}
}
