package lowerbound

import (
	"math"
	"testing"
	"testing/quick"

	"dsh/internal/bitvec"
	"dsh/internal/stats"
	"dsh/internal/xrand"
)

func TestVolumeRadiusRoundTrip(t *testing.T) {
	for _, v := range []float64{1, 0.5, 0.1, 1e-6} {
		a := VolumeToRadius(v)
		if back := RadiusToVolume(a); math.Abs(back-v) > 1e-12*v {
			t.Errorf("round trip %v -> %v -> %v", v, a, back)
		}
	}
	if VolumeToRadius(1) != 0 {
		t.Error("full volume should have radius 0")
	}
	for _, fn := range []func(){
		func() { VolumeToRadius(0) },
		func() { VolumeToRadius(1.5) },
		func() { RadiusToVolume(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("should panic")
				}
			}()
			fn()
		}()
	}
}

func TestReverseSSEAtZeroCorrelation(t *testing.T) {
	// At alpha = 0 the bound is exactly volA * volB (independence).
	for _, vA := range []float64{0.5, 0.1, 0.01} {
		for _, vB := range []float64{0.3, 0.05} {
			got := ReverseSmallSetExpansion(vA, vB, 0)
			if math.Abs(got-vA*vB) > 1e-12 {
				t.Errorf("bound(%v,%v,0) = %v, want %v", vA, vB, got, vA*vB)
			}
		}
	}
}

func TestReverseSSEHoldsOnThresholdSets(t *testing.T) {
	// The exact correlated Gaussian orthant mass dominates the bound.
	for _, tt := range []float64{0.5, 1, 2} {
		for _, alpha := range []float64{0, 0.3, 0.7, 0.95} {
			exact, bound := BivariateOrthantLowerBound(tt, alpha)
			if exact < bound*(1-1e-9) {
				t.Errorf("t=%v alpha=%v: exact %v below bound %v", tt, alpha, exact, bound)
			}
		}
	}
}

func TestReverseSSEHoldsOnHammingSubcubes(t *testing.T) {
	// Monte-Carlo check on actual alpha-correlated bit vectors with
	// subcube sets A = B = {x : first k bits all zero}, volume 2^-k.
	rng := xrand.New(1)
	const d = 256
	const k = 3 // volume 1/8
	vol := 1.0 / 8
	for _, alpha := range []float64{0.25, 0.5, 0.8} {
		const trials = 200000
		hits := 0
		for i := 0; i < trials; i++ {
			x, y := bitvec.Correlated(rng, d, alpha)
			inA := true
			inB := true
			for j := 0; j < k; j++ {
				if x.Bit(j) {
					inA = false
				}
				if y.Bit(j) {
					inB = false
				}
			}
			if inA && inB {
				hits++
			}
		}
		bound := ReverseSmallSetExpansion(vol, vol, alpha)
		iv := stats.WilsonInterval(hits, trials, 5)
		if iv.Hi < bound {
			t.Errorf("alpha=%v: measured mass [%v,%v] below Thm 3.2 bound %v",
				alpha, iv.Lo, iv.Hi, bound)
		}
	}
}

func TestGeneralSSEUpperRegime(t *testing.T) {
	// For threshold sets, Pr[X>=t, Y>=t] <= exp(-t^2/(1+alpha)) ~ the
	// general SSE value; check the bound formula's basic ordering: higher
	// alpha gives a *larger* generalized bound value.
	prev := 0.0
	for _, alpha := range []float64{0, 0.3, 0.6, 0.9} {
		v := GeneralSmallSetExpansion(0.1, 0.1, alpha)
		if v < prev {
			t.Errorf("general SSE should grow with alpha: %v after %v", v, prev)
		}
		prev = v
	}
	// Equal-volume alpha=1 degenerates to the volume itself.
	if got := GeneralSmallSetExpansion(0.1, 0.1, 1); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("alpha=1 value = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("regime violation should panic")
		}
	}()
	GeneralSmallSetExpansion(0.9, 1e-6, 0.99) // a << alpha*b
}

func TestJensenProductBoundQuick(t *testing.T) {
	// Lemma 3.4 for random distributions and c >= 1; reversed for c <= 1.
	f := func(seed uint64, cRaw uint8) bool {
		rng := xrand.New(seed)
		n := 2 + rng.Intn(8)
		p := make([]float64, n)
		q := make([]float64, n)
		var sp, sq float64
		for i := range p {
			p[i] = rng.Float64() + 1e-9
			q[i] = rng.Float64() + 1e-9
			sp += p[i]
			sq += q[i]
		}
		for i := range p {
			p[i] /= sp
			q[i] /= sq
		}
		cHi := 1 + float64(cRaw%40)/10 // c in [1, 5)
		lhs, rhs := JensenProductBound(p, q, cHi)
		if lhs < rhs*(1-1e-9) {
			return false
		}
		cLo := 0.5 + float64(cRaw%5)/10 // c in [0.5, 1): the valid reverse regime
		lhs, rhs = JensenProductBound(p, q, cLo)
		return lhs <= rhs*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestJensenProductBoundEqualityAtC1(t *testing.T) {
	p := []float64{0.2, 0.3, 0.5}
	q := []float64{0.5, 0.25, 0.25}
	lhs, rhs := JensenProductBound(p, q, 1)
	if math.Abs(lhs-rhs) > 1e-12 {
		t.Errorf("c=1 should be equality: %v vs %v", lhs, rhs)
	}
}

func TestCPFBoundsOrdering(t *testing.T) {
	// Lower bound <= fhat0 <= upper bound... actually for fhat0 < 1 and
	// alpha > 0: lower = fhat0^{>1} < fhat0 < fhat0^{<1} = upper.
	for _, f0 := range []float64{0.1, 0.5, 0.9} {
		for _, alpha := range []float64{0.1, 0.5, 0.9} {
			lo := CPFLowerBound(f0, alpha)
			hi := CPFUpperBound(f0, alpha)
			if !(lo <= f0 && f0 <= hi) {
				t.Errorf("ordering violated: %v <= %v <= %v", lo, f0, hi)
			}
		}
	}
	// At alpha = 0 both coincide with fhat0.
	if CPFLowerBound(0.3, 0) != 0.3 || CPFUpperBound(0.3, 0) != 0.3 {
		t.Error("alpha=0 should be identity")
	}
}

func TestAntiBitSamplingMeetsBoundsExactly(t *testing.T) {
	// Anti bit-sampling has fhat(alpha) = (1-alpha)/2 exactly. Verify it
	// respects both the Theorem 1.3 lower bound and the Lemma 3.10 upper
	// bound (with fhat(0) = 1/2) across alpha.
	for alpha := 0.0; alpha < 0.999; alpha += 0.05 {
		fa := (1 - alpha) / 2
		lo := CPFLowerBound(0.5, alpha)
		hi := CPFUpperBound(0.5, alpha)
		if fa < lo-1e-12 {
			t.Errorf("alpha=%v: anti bit-sampling %v below lower bound %v", alpha, fa, lo)
		}
		// The *upper* bound applies to increasing CPFs; anti bit-sampling
		// decreases in similarity, so only the lower bound binds. Sanity:
		// the two bounds bracket the symmetric point.
		_ = hi
	}
}

func TestRhoMinusBound(t *testing.T) {
	leading, errTerm := RhoMinusBound(0.25, 0.75, 1e-3, 1024)
	want := (1 - 0.75) / (1 + 0.75 - 2*0.25)
	if math.Abs(leading-want) > 1e-12 {
		t.Errorf("leading = %v, want %v", leading, want)
	}
	if errTerm <= 0 || errTerm > 0.2 {
		t.Errorf("error term %v implausible", errTerm)
	}
	// Error shrinks with d.
	_, errBig := RhoMinusBound(0.25, 0.75, 1e-3, 1<<20)
	if errBig >= errTerm {
		t.Error("error term should shrink with d")
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid alphas should panic")
		}
	}()
	RhoMinusBound(0.8, 0.2, 0.5, 10)
}

func TestTheorem38Params(t *testing.T) {
	p := NewTheorem38Params(500, 2, 0.01)
	if p.Leading != 1.0/3 {
		t.Errorf("leading = %v", p.Leading)
	}
	if p.Alpha <= 0 || p.Alpha >= 1 {
		t.Errorf("alpha = %v", p.Alpha)
	}
	if p.DHat < 1000 {
		t.Errorf("dHat = %d, want >= 2r", p.DHat)
	}
	if p.RhoLowerBound() > p.Leading {
		t.Error("penalty must not increase the bound")
	}
	// As r grows (with q fixed) the penalty vanishes.
	pBig := NewTheorem38Params(5e6, 2, 0.01)
	if pBig.Penalty >= p.Penalty {
		t.Errorf("penalty should shrink with r: %v vs %v", pBig.Penalty, p.Penalty)
	}
	if pBig.RhoLowerBound() < 0.3 {
		t.Errorf("large-r bound %v should approach 1/3", pBig.RhoLowerBound())
	}
	defer func() {
		if recover() == nil {
			t.Error("bad params should panic")
		}
	}()
	NewTheorem38Params(-1, 2, 0.1)
}
