// Package lowerbound implements the machinery of Section 3 of the paper:
// the small-set-expansion theorems of O'Donnell that underlie the
// Theorem 1.3 lower bound on monotone DSH families, the Lemma 3.4
// Jensen-type inequality, and the finite-d bound of Theorems 3.7/3.8 with
// its explicit Chernoff error terms.
//
// These are the quantitative objects the paper's lower-bound proofs
// manipulate; the experiments use them to check that every measured CPF
// respects the bounds, and the tests verify the inequalities numerically
// on random instances.
package lowerbound

import (
	"math"

	"dsh/internal/stats"
)

// VolumeToRadius converts a subset volume |A|/2^d = exp(-a^2/2) into its
// Gaussian "radius" a >= 0, the parameterization used by the small-set
// expansion theorems. It panics unless 0 < volume <= 1.
func VolumeToRadius(volume float64) float64 {
	if !(volume > 0 && volume <= 1) {
		panic("lowerbound: volume must lie in (0, 1]")
	}
	return math.Sqrt(-2 * math.Log(volume))
}

// RadiusToVolume is the inverse of VolumeToRadius.
func RadiusToVolume(a float64) float64 {
	if a < 0 {
		panic("lowerbound: radius must be non-negative")
	}
	return math.Exp(-a * a / 2)
}

// ReverseSmallSetExpansion returns the Theorem 3.2 lower bound on
// Pr[x in A, y in B] for randomly alpha-correlated (x, y) and subsets of
// volumes volA, volB:
//
//	exp( -1/2 * (a^2 + 2*alpha*a*b + b^2) / (1 - alpha^2) ),
//
// with a, b the Gaussian radii of the volumes. Valid for 0 <= alpha <= 1
// (at alpha = 1 the bound degenerates to 0 unless a = b).
func ReverseSmallSetExpansion(volA, volB, alpha float64) float64 {
	if alpha < 0 || alpha > 1 {
		panic("lowerbound: alpha out of [0, 1]")
	}
	a := VolumeToRadius(volA)
	b := VolumeToRadius(volB)
	if alpha == 1 {
		if a == b {
			return RadiusToVolume(a)
		}
		return 0
	}
	return math.Exp(-0.5 * (a*a + 2*alpha*a*b + b*b) / (1 - alpha*alpha))
}

// GeneralSmallSetExpansion returns the Theorem 3.9 upper-bound-side
// quantity exp(-1/2 (a^2 - 2 alpha a b + b^2)/(1-alpha^2)), the
// generalized small-set expansion bound on Pr[x in A, y in B], valid when
// 0 <= alpha*b <= a <= b.
func GeneralSmallSetExpansion(volA, volB, alpha float64) float64 {
	if alpha < 0 || alpha > 1 {
		panic("lowerbound: alpha out of [0, 1]")
	}
	a := VolumeToRadius(volA)
	b := VolumeToRadius(volB)
	if a > b {
		a, b = b, a
	}
	if alpha*b > a {
		panic("lowerbound: requires alpha*b <= a <= b")
	}
	if alpha == 1 {
		return RadiusToVolume(a)
	}
	return math.Exp(-0.5 * (a*a - 2*alpha*a*b + b*b) / (1 - alpha*alpha))
}

// JensenProductBound evaluates both sides of Lemma 3.4: for discrete
// distributions p, q and c >= 1,
//
//	sum_i (p_i q_i)^c  >=  ( sum_i p_i q_i )^(2c-1),
//
// with the inequality reversed for 1/2 <= c <= 1. (The paper states the
// reverse for all c <= 1, but x -> x^(2-1/c) is concave only when
// c >= 1/2; the proofs only ever use c = 1/(1-alpha) >= 1.)
// It returns (lhs, rhs).
func JensenProductBound(p, q []float64, c float64) (lhs, rhs float64) {
	if len(p) != len(q) {
		panic("lowerbound: distribution length mismatch")
	}
	var dot float64
	for i := range p {
		lhs += math.Pow(p[i]*q[i], c)
		dot += p[i] * q[i]
	}
	rhs = math.Pow(dot, 2*c-1)
	return lhs, rhs
}

// CPFLowerBound returns the Theorem 1.3 lower bound
// fhat(0)^((1+alpha)/(1-alpha)) on fhat(alpha), for 0 <= alpha < 1.
func CPFLowerBound(fhat0, alpha float64) float64 {
	if alpha < 0 || alpha >= 1 {
		panic("lowerbound: alpha out of [0, 1)")
	}
	if fhat0 < 0 || fhat0 > 1 {
		panic("lowerbound: fhat0 out of [0, 1]")
	}
	return math.Pow(fhat0, (1+alpha)/(1-alpha))
}

// CPFUpperBound returns the Lemma 3.10 upper bound
// fhat(0)^((1-alpha)/(1+alpha)) on fhat(alpha) -- the asymmetric analogue
// of classical LSH lower bounds: asymmetry does not help for increasing
// CPFs in the similarity.
func CPFUpperBound(fhat0, alpha float64) float64 {
	if alpha < 0 || alpha >= 1 {
		panic("lowerbound: alpha out of [0, 1)")
	}
	if fhat0 < 0 || fhat0 > 1 {
		panic("lowerbound: fhat0 out of [0, 1]")
	}
	return math.Pow(fhat0, (1-alpha)/(1+alpha))
}

// RhoMinusBound is the finite-d lower bound of Theorem 3.7 on
// rho^- = log(1/fMinus) / log(1/fPlus) for an (alphaMinus, alphaPlus,
// fMinus, fPlus)-decreasingly sensitive family on ({0,1}^d, sim_H):
//
//	rho^- >= (1 - a+) / (1 + a+ - 2 a-)  -  errorTerm,
//
// where the error term is O(sqrt(log(1/fPlus)/d)). It returns the leading
// term and the explicit error estimate separately so callers can report
// both.
func RhoMinusBound(alphaMinus, alphaPlus, fPlus float64, d int) (leading, errorTerm float64) {
	if !(0 < alphaMinus && alphaMinus < alphaPlus && alphaPlus < 1) {
		panic("lowerbound: need 0 < alphaMinus < alphaPlus < 1")
	}
	if !(fPlus > 0 && fPlus < 1) {
		panic("lowerbound: fPlus out of (0, 1)")
	}
	if d <= 0 {
		panic("lowerbound: dimension must be positive")
	}
	leading = (1 - alphaPlus) / (1 + alphaPlus - 2*alphaMinus)
	errorTerm = math.Sqrt(math.Log(1/fPlus) / float64(d))
	return leading, errorTerm
}

// Theorem38Params carries the explicit epsilon/delta bookkeeping of the
// proof of Theorem 3.8 for an (r, cr, p, q)-increasingly sensitive family
// under Hamming distance.
type Theorem38Params struct {
	R       float64 // target distance r (absolute)
	C       float64 // approximation factor c > 1
	Q       float64 // collision probability at distance cr
	EpsP    float64 // Chernoff slack for the p side
	EpsQ    float64 // Chernoff slack for the q side
	DeltaP  float64 // failure probability exp(-epsP^2/(1-epsP) * r/2)
	DeltaQ  float64 // failure probability exp(-epsQ^2/(1+epsQ) * r/(3c))
	DHat    int     // reduced dimension ceil(2r/(1-epsP))
	Alpha   float64 // correlation 1 - (1-epsP)/((1+epsQ) c)
	Leading float64 // 1/(2c-1)
	Penalty float64 // 2(epsQ + epsP + deltaQ/q + deltaP)
}

// NewTheorem38Params computes the bookkeeping with the proof's choice
// eps = K*sqrt((c/r) ln(1/q)). K = 4 makes deltaQ <= q^5 so the
// deltaQ/q penalty term vanishes along with the others as r grows.
func NewTheorem38Params(r, c, q float64) Theorem38Params {
	if r <= 0 || c <= 1 || q <= 0 || q >= 1 {
		panic("lowerbound: invalid Theorem 3.8 parameters")
	}
	const k = 4
	eps := k * math.Sqrt(c/r*math.Log(1/q))
	if eps > 0.5 {
		eps = 0.5 // the theorem is vacuous beyond small eps; clamp
	}
	p := Theorem38Params{R: r, C: c, Q: q, EpsP: eps, EpsQ: eps}
	p.DeltaP = math.Exp(-eps * eps / (1 - eps) * r / 2)
	p.DeltaQ = math.Exp(-eps * eps / (1 + eps) * r / (3 * c))
	p.DHat = int(math.Ceil(2 * r / (1 - eps)))
	p.Alpha = 1 - (1-eps)/((1+eps)*c)
	p.Leading = 1 / (2*c - 1)
	p.Penalty = 2 * (p.EpsQ + p.EpsP + p.DeltaQ/q + p.DeltaP)
	return p
}

// RhoLowerBound returns the Theorem 3.8 statement: any
// (r, cr, p, q)-increasingly sensitive family satisfies
// rho = log(1/p)/log(1/q) >= Leading - Penalty.
func (t Theorem38Params) RhoLowerBound() float64 {
	return t.Leading - t.Penalty
}

// BivariateOrthantLowerBound cross-checks Theorem 3.2 against the exact
// bivariate normal orthant probability: for half-space-like sets of volume
// exp(-t^2/2) (i.e. Gaussian threshold sets), the exact correlated mass is
// Pr[X >= a, Y >= b] with correlation alpha, which must dominate the
// reverse small-set expansion bound. Returns (exact, bound).
func BivariateOrthantLowerBound(t, alpha float64) (exact, bound float64) {
	vol := stats.NormalTail(t)
	exact = stats.BivariateNormalOrthant(t, alpha)
	bound = ReverseSmallSetExpansion(vol, vol, alpha)
	return exact, bound
}
