package privacy

import (
	"math"
	"testing"

	"dsh/internal/psi"
	"dsh/internal/sphere"
	"dsh/internal/stats"
	"dsh/internal/vec"
	"dsh/internal/xrand"
)

const testDim = 24

// newTestEstimator builds an estimator over a step family flat on
// alpha in [0.5, 0.9] (the "close" regime) and tiny below 0 (the "far"
// regime), returning it with the plateau min and max.
func newTestEstimator(t *testing.T, rng *xrand.Rand, eps float64) (*Estimator[[]float64], float64, float64) {
	t.Helper()
	fam := sphere.NewStep(testDim, 0.5, 0.9, 4, 2.2)
	fmin, fmax := sphere.PlateauStats(fam.CPF(), 0.5, 0.9, 30)
	// Far regime: alpha <= 0.
	pFar := fam.CPF().Eval(0)
	if pFar > fmin {
		t.Fatalf("far CPF %v not below plateau %v", pFar, fmin)
	}
	est, err := NewEstimator[[]float64](rng, fam, fmin, pFar, eps)
	if err != nil {
		t.Fatal(err)
	}
	return est, fmin, fmax
}

func TestEstimatorValidation(t *testing.T) {
	rng := xrand.New(1)
	fam := sphere.SimHash(testDim)
	cases := []struct{ pClose, pFar, eps float64 }{
		{0, 0, 0.1},
		{0.5, 0.6, 0.1},
		{0.5, 0.1, 0},
		{0.5, 0.1, 1},
		{1e-9, 0, 0.0000001}, // N too large
	}
	for i, c := range cases {
		if _, err := NewEstimator[[]float64](rng, fam, c.pClose, c.pFar, c.eps); err == nil {
			t.Errorf("case %d should error", i)
		}
	}
}

func TestNMatchesFormula(t *testing.T) {
	rng := xrand.New(2)
	fam := sphere.SimHash(testDim)
	est, err := NewEstimator[[]float64](rng, fam, 0.1, 0.01, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	want := int(math.Ceil(math.Log(20.0) / 0.1))
	if est.N() != want {
		t.Errorf("N = %d, want %d", est.N(), want)
	}
	if fn := est.PredictedFalseNegative(); fn > 0.05+1e-9 {
		t.Errorf("predicted false negative %v exceeds eps", fn)
	}
}

func TestCloseDetection(t *testing.T) {
	rng := xrand.New(3)
	est, _, _ := newTestEstimator(t, rng, 0.1)
	// A pair at alpha = 0.7 (inside the plateau) should be detected.
	misses := 0
	const reps = 60
	for i := 0; i < reps; i++ {
		x, q := vec.UnitPairWithDot(rng, testDim, 0.7)
		out, err := est.Estimate(x, q, psi.Plaintext{})
		if err != nil {
			t.Fatal(err)
		}
		if !out.Close {
			misses++
		}
	}
	// eps = 0.1: expect <= ~6 misses; allow generous 6-sigma slack.
	if misses > 18 {
		t.Errorf("missed %d/%d close pairs (eps=0.1)", misses, reps)
	}
}

func TestFarRejection(t *testing.T) {
	rng := xrand.New(4)
	est, _, _ := newTestEstimator(t, rng, 0.1)
	falseAlarms := 0
	const reps = 60
	for i := 0; i < reps; i++ {
		x, q := vec.UnitPairWithDot(rng, testDim, -0.5)
		out, err := est.Estimate(x, q, psi.Plaintext{})
		if err != nil {
			t.Fatal(err)
		}
		if out.Close {
			falseAlarms++
		}
	}
	pred := est.PredictedFalsePositive()
	// Allow noise: the union bound is loose, but alpha=-0.5 is far below
	// the far boundary so alarms should be rare.
	bound := int(pred*reps) + 10
	if falseAlarms > bound {
		t.Errorf("false alarms %d/%d exceed predicted %v", falseAlarms, reps, pred)
	}
}

func TestIntersectionSizeFlatAcrossPlateau(t *testing.T) {
	// The privacy property: pairs at different close similarities produce
	// statistically similar intersection sizes.
	rng := xrand.New(5)
	est, fmin, fmax := newTestEstimator(t, rng, 0.05)
	meanSize := func(alpha float64) float64 {
		var sizes []float64
		for i := 0; i < 40; i++ {
			x, q := vec.UnitPairWithDot(rng, testDim, alpha)
			out, err := est.Estimate(x, q, psi.Plaintext{})
			if err != nil {
				t.Fatal(err)
			}
			sizes = append(sizes, float64(out.IntersectionSize))
		}
		return stats.Mean(sizes)
	}
	m1 := meanSize(0.55)
	m2 := meanSize(0.85)
	// Expected sizes are N*f(alpha); both lie within [N*fmin, N*fmax].
	lo := float64(est.N()) * fmin * 0.4
	hi := float64(est.N()) * fmax * 2.5
	if m1 < lo || m1 > hi || m2 < lo || m2 > hi {
		t.Errorf("intersection means %v, %v outside [%v, %v]", m1, m2, lo, hi)
	}
	if ratio := math.Max(m1, m2) / math.Min(m1, m2); ratio > fmax/fmin*2 {
		t.Errorf("intersection size ratio %v reveals distance (fmax/fmin=%v)", ratio, fmax/fmin)
	}
}

func TestEstimateOverDHPSI(t *testing.T) {
	// One end-to-end run over the real commutative-encryption PSI.
	rng := xrand.New(6)
	fam := sphere.NewStep(testDim, 0.5, 0.9, 3, 2.0)
	fmin, _ := sphere.PlateauStats(fam.CPF(), 0.5, 0.9, 20)
	est, err := NewEstimator[[]float64](rng, fam, math.Max(fmin, 0.02), fam.CPF().Eval(0), 0.3)
	if err != nil {
		t.Fatal(err)
	}
	x, q := vec.UnitPairWithDot(rng, testDim, 0.8)
	outPlain, err := est.Estimate(x, q, psi.Plaintext{})
	if err != nil {
		t.Fatal(err)
	}
	outDH, err := est.Estimate(x, q, psi.DH{})
	if err != nil {
		t.Fatal(err)
	}
	if outPlain.Close != outDH.Close || outPlain.IntersectionSize != outDH.IntersectionSize {
		t.Errorf("DH PSI disagrees with plaintext: %+v vs %+v", outDH, outPlain)
	}
	if outDH.TranscriptBytes <= outPlain.TranscriptBytes {
		t.Errorf("DH transcript %d should exceed plaintext %d",
			outDH.TranscriptBytes, outPlain.TranscriptBytes)
	}
}

func TestLeakageAccounting(t *testing.T) {
	rng := xrand.New(7)
	fam := sphere.SimHash(testDim)
	est, err := NewEstimator[[]float64](rng, fam, 0.2, 0.05, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if got := est.ExpectedIntersection(0.2); math.Abs(got-float64(est.N())*0.2) > 1e-12 {
		t.Errorf("ExpectedIntersection = %v", got)
	}
	bits := est.LeakageBits(0.2, 8)
	if bits <= 0 {
		t.Errorf("LeakageBits = %v", bits)
	}
	// Leakage grows with the CPF value: flat CPFs equalize it.
	if est.LeakageBits(0.4, 8) <= bits {
		t.Error("leakage should increase with collision rate")
	}
}
