// Package privacy implements the paper's Section 6.4 application:
// privacy-preserving distance estimation via the reduction from a
// step-function DSH to private set intersection.
//
// Two parties hold points x and q and want to decide "is dist(x, q) <= r?"
// while revealing as little else as possible. The protocol:
//
//  1. Agree on N independent draws (h_i, g_i) from a DSH family whose CPF
//     is flat (~pClose) on [0, r] and at most pFar beyond cr.
//  2. Party A computes the set {(i, h_i(x))}; party B computes
//     {(i, g_i(q))}.
//  3. They run PSI; answer "Yes" iff the intersection is non-empty.
//
// With N ~ ln(1/eps)/pClose, close pairs are detected with probability
// >= 1-eps while far pairs produce a false "Yes" with probability at most
// N*pFar (union bound). Because the CPF is flat on [0, r], the size of the
// intersection leaks essentially nothing about *how* close the points are
// -- the property distinguishing this protocol from standard-LSH
// approaches, whose collision rates grow as points get closer (cf. the
// triangulation attack of Riazi et al. discussed in the paper).
package privacy

import (
	"encoding/binary"
	"fmt"
	"math"

	"dsh/internal/core"
	"dsh/internal/psi"
	"dsh/internal/xrand"
)

// Estimator is a configured distance-estimation protocol instance. The
// sampled hash pairs constitute the shared randomness of the two parties.
type Estimator[P any] struct {
	pairs  []core.Pair[P]
	pClose float64
	pFar   float64
	eps    float64
}

// NewEstimator samples the shared randomness for a protocol with the given
// family. pClose must lower-bound the CPF over the "close" range [0, r];
// pFar must upper-bound it over the "far" range [cr, inf); eps is the
// target false-negative probability. The number of hash pairs is
// N = ceil(ln(1/eps) / pClose).
func NewEstimator[P any](rng *xrand.Rand, fam core.Family[P], pClose, pFar, eps float64) (*Estimator[P], error) {
	if !(pClose > 0 && pClose <= 1) {
		return nil, fmt.Errorf("privacy: pClose = %v out of (0, 1]", pClose)
	}
	if !(pFar >= 0 && pFar <= pClose) {
		return nil, fmt.Errorf("privacy: pFar = %v must lie in [0, pClose]", pFar)
	}
	if !(eps > 0 && eps < 1) {
		return nil, fmt.Errorf("privacy: eps = %v out of (0, 1)", eps)
	}
	n := int(math.Ceil(math.Log(1/eps) / pClose))
	if n < 1 {
		n = 1
	}
	if n > 1<<22 {
		return nil, fmt.Errorf("privacy: N = %d unreasonably large; increase pClose", n)
	}
	e := &Estimator[P]{pClose: pClose, pFar: pFar, eps: eps}
	for i := 0; i < n; i++ {
		e.pairs = append(e.pairs, fam.Sample(rng))
	}
	return e, nil
}

// N returns the number of hash-function pairs.
func (e *Estimator[P]) N() int { return len(e.pairs) }

// PredictedFalseNegative returns the analytic bound (1 - pClose)^N on
// missing a close pair.
func (e *Estimator[P]) PredictedFalseNegative() float64 {
	return math.Pow(1-e.pClose, float64(e.N()))
}

// PredictedFalsePositive returns the union bound min(1, N * pFar) on
// answering "Yes" for a far pair.
func (e *Estimator[P]) PredictedFalsePositive() float64 {
	return math.Min(1, float64(e.N())*e.pFar)
}

// item serializes one (index, hash value) element for PSI.
func item(i int, v uint64) []byte {
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(i))
	binary.LittleEndian.PutUint64(buf[8:], v)
	return buf[:]
}

// DataVector returns party A's PSI input {(i, h_i(x))}.
func (e *Estimator[P]) DataVector(x P) [][]byte {
	out := make([][]byte, len(e.pairs))
	for i, pair := range e.pairs {
		out[i] = item(i, pair.H.Hash(x))
	}
	return out
}

// QueryVector returns party B's PSI input {(i, g_i(q))}.
func (e *Estimator[P]) QueryVector(q P) [][]byte {
	out := make([][]byte, len(e.pairs))
	for i, pair := range e.pairs {
		out[i] = item(i, pair.G.Hash(q))
	}
	return out
}

// Outcome reports one protocol execution.
type Outcome struct {
	// Close is the protocol's answer: true means "distance <= r".
	Close bool
	// IntersectionSize is the number of colliding hash positions; its
	// distribution is what an adversary observes.
	IntersectionSize int
	// TranscriptBytes is the PSI communication volume.
	TranscriptBytes int
}

// Estimate runs the protocol between data point x and query q over the
// given PSI implementation.
func (e *Estimator[P]) Estimate(x, q P, proto psi.Protocol) (Outcome, error) {
	res, err := proto.Intersect(e.DataVector(x), e.QueryVector(q))
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{
		Close:            len(res.IndicesA) > 0,
		IntersectionSize: len(res.IndicesA),
		TranscriptBytes:  res.TranscriptBytes,
	}, nil
}

// ExpectedIntersection returns the expected number of colliding positions
// for a pair whose CPF value is f: N * f. For a flat (step) CPF this is
// (approximately) the same for every close pair -- the privacy property.
func (e *Estimator[P]) ExpectedIntersection(f float64) float64 {
	return float64(e.N()) * f
}

// LeakageBits bounds the information revealed to A by the intersection
// contents for a pair with CPF value f: each revealed position identifies
// one of N indices plus a shared hash value, so the expected leakage is at
// most E[|I|] * (log2 N + hashBits) bits. The paper's point is that this is
// O(log(1/eps) * log t) for close pairs -- independent of the distance.
func (e *Estimator[P]) LeakageBits(f float64, hashBits int) float64 {
	return e.ExpectedIntersection(f) * (math.Log2(float64(e.N())) + float64(hashBits))
}
