package bitvec

import (
	"math"
	"testing"
	"testing/quick"

	"dsh/internal/xrand"
)

func TestNewAndDim(t *testing.T) {
	for _, d := range []int{1, 63, 64, 65, 128, 1000} {
		v := New(d)
		if v.Dim() != d {
			t.Errorf("Dim = %d, want %d", v.Dim(), d)
		}
		if v.Weight() != 0 {
			t.Errorf("fresh vector weight = %d", v.Weight())
		}
	}
}

func TestNewPanicsOnBadDim(t *testing.T) {
	for _, d := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) should panic", d)
				}
			}()
			New(d)
		}()
	}
}

func TestSetBitFlip(t *testing.T) {
	v := New(130)
	v.Set(0, true)
	v.Set(64, true)
	v.Set(129, true)
	if !v.Bit(0) || !v.Bit(64) || !v.Bit(129) || v.Bit(1) {
		t.Fatal("Set/Bit mismatch")
	}
	if v.Weight() != 3 {
		t.Fatalf("weight = %d, want 3", v.Weight())
	}
	v.Flip(0)
	v.Flip(1)
	if v.Bit(0) || !v.Bit(1) {
		t.Fatal("Flip mismatch")
	}
	v.Set(64, false)
	if v.Bit(64) {
		t.Fatal("Set false failed")
	}
}

func TestIndexPanics(t *testing.T) {
	v := New(10)
	for _, fn := range []func(){
		func() { v.Bit(10) },
		func() { v.Bit(-1) },
		func() { v.Set(10, true) },
		func() { v.Flip(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out of range access should panic")
				}
			}()
			fn()
		}()
	}
}

func TestFromBitsAndString(t *testing.T) {
	v := FromBits([]byte{1, 0, 1, 1, 0})
	if v.String() != "10110" {
		t.Fatalf("String = %q", v.String())
	}
	w, err := FromString("10110")
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(w) {
		t.Fatal("FromString round trip failed")
	}
	if _, err := FromString("10210"); err == nil {
		t.Fatal("invalid character should error")
	}
	if _, err := FromString(""); err == nil {
		t.Fatal("empty string should error")
	}
}

func TestCloneIndependence(t *testing.T) {
	v := New(70)
	v.Set(5, true)
	w := v.Clone()
	w.Flip(5)
	if !v.Bit(5) {
		t.Fatal("Clone shares storage with original")
	}
}

func TestDistanceBasics(t *testing.T) {
	a, _ := FromString("0000")
	b, _ := FromString("1111")
	c, _ := FromString("1010")
	if Distance(a, b) != 4 || Distance(a, c) != 2 || Distance(b, c) != 2 {
		t.Fatal("distance values wrong")
	}
	if Distance(a, a) != 0 {
		t.Fatal("self distance nonzero")
	}
	if RelativeDistance(a, c) != 0.5 {
		t.Fatal("relative distance wrong")
	}
	if Similarity(a, c) != 0 {
		t.Fatalf("similarity = %v, want 0", Similarity(a, c))
	}
	if Similarity(a, a) != 1 || Similarity(a, b) != -1 {
		t.Fatal("similarity endpoints wrong")
	}
}

func TestDistanceMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch should panic")
		}
	}()
	Distance(New(3), New(4))
}

func TestXorNotWeight(t *testing.T) {
	rng := xrand.New(1)
	v := Random(rng, 200)
	w := Random(rng, 200)
	x := Xor(v, w)
	if x.Weight() != Distance(v, w) {
		t.Fatal("XOR weight != distance")
	}
	n := Not(v)
	if n.Weight() != 200-v.Weight() {
		t.Fatalf("Not weight = %d, want %d", n.Weight(), 200-v.Weight())
	}
	if Distance(v, n) != 200 {
		t.Fatal("distance to complement should be d")
	}
}

func TestNotMasksTail(t *testing.T) {
	// d not a multiple of 64: complement must not pollute the tail.
	v := New(65)
	n := Not(v)
	if n.Weight() != 65 {
		t.Fatalf("Not(zero) weight = %d, want 65", n.Weight())
	}
	nn := Not(n)
	if !nn.Equal(v) {
		t.Fatal("double complement should be identity")
	}
}

func TestRandomWeightConcentration(t *testing.T) {
	rng := xrand.New(2)
	const d = 4096
	v := Random(rng, d)
	w := v.Weight()
	// Weight ~ Binomial(d, 1/2): mean 2048, sd 32. Allow 6 sigma.
	if math.Abs(float64(w)-d/2) > 6*32 {
		t.Fatalf("random vector weight %d too far from %d", w, d/2)
	}
}

func TestCorrelatedExpectedDistance(t *testing.T) {
	rng := xrand.New(3)
	const d = 2048
	for _, alpha := range []float64{-0.5, 0, 0.25, 0.8, 1} {
		var total int
		const reps = 50
		for i := 0; i < reps; i++ {
			x, y := Correlated(rng, d, alpha)
			total += Distance(x, y)
		}
		mean := float64(total) / reps
		want := float64(d) * (1 - alpha) / 2
		sd := math.Sqrt(float64(d)*(1-alpha)/2*(1+alpha)/2) / math.Sqrt(reps)
		if alpha == 1 {
			if total != 0 {
				t.Fatalf("alpha=1 gave nonzero distance")
			}
			continue
		}
		if math.Abs(mean-want) > 8*sd+1 {
			t.Fatalf("alpha=%v: mean distance %v, want %v", alpha, mean, want)
		}
	}
}

func TestCorrelatedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("alpha out of range should panic")
		}
	}()
	Correlated(xrand.New(1), 8, 1.5)
}

func TestAtDistanceExact(t *testing.T) {
	rng := xrand.New(4)
	x := Random(rng, 300)
	for _, r := range []int{0, 1, 5, 150, 300} {
		y := AtDistance(rng, x, r)
		if Distance(x, y) != r {
			t.Fatalf("AtDistance(%d) produced distance %d", r, Distance(x, y))
		}
	}
}

func TestAppend(t *testing.T) {
	a, _ := FromString("101")
	b, _ := FromString("0110")
	c := Append(a, b)
	if c.String() != "1010110" {
		t.Fatalf("Append = %q", c.String())
	}
}

func TestPadOnes(t *testing.T) {
	a, _ := FromString("10")
	p := PadOnes(a, 5)
	if p.String() != "10111" {
		t.Fatalf("PadOnes = %q", p.String())
	}
	if p.Weight() != 4 {
		t.Fatalf("weight = %d", p.Weight())
	}
}

func TestSignVectorInnerProductIsSimilarity(t *testing.T) {
	rng := xrand.New(5)
	for i := 0; i < 20; i++ {
		d := 64 + rng.Intn(200)
		x := Random(rng, d)
		y := Random(rng, d)
		sx := SignVector(x)
		sy := SignVector(y)
		dot := 0.0
		var norm float64
		for j := range sx {
			dot += sx[j] * sy[j]
			norm += sx[j] * sx[j]
		}
		if math.Abs(norm-1) > 1e-9 {
			t.Fatalf("sign vector not unit norm: %v", norm)
		}
		if math.Abs(dot-Similarity(x, y)) > 1e-9 {
			t.Fatalf("dot %v != similarity %v", dot, Similarity(x, y))
		}
	}
}

func TestDistancePropertiesQuick(t *testing.T) {
	rng := xrand.New(6)
	f := func(seed uint64, dRaw uint16) bool {
		d := int(dRaw%500) + 1
		r := xrand.New(seed)
		x := Random(r, d)
		y := Random(r, d)
		z := Random(r, d)
		dxy := Distance(x, y)
		// Symmetry, identity, triangle inequality.
		if dxy != Distance(y, x) {
			return false
		}
		if Distance(x, x) != 0 {
			return false
		}
		return dxy <= Distance(x, z)+Distance(z, y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	_ = rng
}

func TestStringRoundTripQuick(t *testing.T) {
	f := func(seed uint64, dRaw uint16) bool {
		d := int(dRaw%200) + 1
		v := Random(xrand.New(seed), d)
		w, err := FromString(v.String())
		return err == nil && v.Equal(w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDistance1024(b *testing.B) {
	rng := xrand.New(1)
	x := Random(rng, 1024)
	y := Random(rng, 1024)
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += Distance(x, y)
	}
	_ = sink
}

// appendRef is the old bit-by-bit Append, kept as the reference for the
// word-level implementation.
func appendRef(v, w Vector) Vector {
	out := New(v.Dim() + w.Dim())
	for i := 0; i < v.Dim(); i++ {
		if v.Bit(i) {
			out.Set(i, true)
		}
	}
	for i := 0; i < w.Dim(); i++ {
		if w.Bit(i) {
			out.Set(v.Dim()+i, true)
		}
	}
	return out
}

// padOnesRef is the old bit-by-bit PadOnes reference.
func padOnesRef(v Vector, dNew int) Vector {
	out := New(dNew)
	for i := 0; i < v.Dim(); i++ {
		if v.Bit(i) {
			out.Set(i, true)
		}
	}
	for i := v.Dim(); i < dNew; i++ {
		out.Set(i, true)
	}
	return out
}

// TestAppendMatchesBitReference round-trips the word-level Append against
// the bit-by-bit reference across word-boundary dimensions.
func TestAppendMatchesBitReference(t *testing.T) {
	rng := xrand.New(31)
	dims := []int{1, 3, 63, 64, 65, 127, 128, 129, 200}
	for _, dv := range dims {
		for _, dw := range dims {
			v := Random(rng, dv)
			w := Random(rng, dw)
			got := Append(v, w)
			want := appendRef(v, w)
			if !got.Equal(want) {
				t.Fatalf("Append(%d,%d) = %q, want %q", dv, dw, got.String(), want.String())
			}
			// Tail invariant: weight must count only in-range bits.
			if got.Weight() != v.Weight()+w.Weight() {
				t.Fatalf("Append(%d,%d) weight %d, want %d", dv, dw, got.Weight(), v.Weight()+w.Weight())
			}
			// String round-trip catches stray bits past d.
			back, err := FromString(got.String())
			if err != nil || !back.Equal(got) {
				t.Fatalf("Append(%d,%d) string round-trip failed", dv, dw)
			}
		}
	}
}

// TestPadOnesMatchesBitReference round-trips the word-level PadOnes
// against the bit-by-bit reference, including the dNew == d edge.
func TestPadOnesMatchesBitReference(t *testing.T) {
	rng := xrand.New(32)
	dims := []int{1, 3, 63, 64, 65, 127, 128, 129, 200}
	for _, d := range dims {
		v := Random(rng, d)
		for _, pad := range []int{0, 1, 5, 63, 64, 65, 130} {
			dNew := d + pad
			got := PadOnes(v, dNew)
			want := padOnesRef(v, dNew)
			if !got.Equal(want) {
				t.Fatalf("PadOnes(d=%d,dNew=%d) = %q, want %q", d, dNew, got.String(), want.String())
			}
			if got.Weight() != v.Weight()+pad {
				t.Fatalf("PadOnes(d=%d,dNew=%d) weight %d, want %d", d, dNew, got.Weight(), v.Weight()+pad)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("PadOnes shrinking should panic")
		}
	}()
	PadOnes(Random(rng, 10), 5)
}

func TestBitmapSetClearGetCount(t *testing.T) {
	var b Bitmap
	if b.Get(0) || b.Get(1000) || b.Count() != 0 {
		t.Fatal("zero-value bitmap should be empty")
	}
	ids := []int{0, 1, 63, 64, 65, 500, 4096}
	for _, id := range ids {
		b.Set(id)
	}
	b.Set(63) // idempotent
	if b.Count() != len(ids) {
		t.Errorf("Count = %d, want %d", b.Count(), len(ids))
	}
	for _, id := range ids {
		if !b.Get(id) {
			t.Errorf("Get(%d) = false after Set", id)
		}
	}
	if b.Get(2) || b.Get(4097) || b.Get(1<<20) {
		t.Error("unset ids report present")
	}
	b.Clear(64)
	b.Clear(64)      // idempotent
	b.Clear(1 << 21) // beyond grown range: no-op
	if b.Get(64) || b.Count() != len(ids)-1 {
		t.Errorf("after Clear(64): Get=%v Count=%d", b.Get(64), b.Count())
	}
	clone := b.Clone()
	b.Reset()
	if b.Count() != 0 || b.Get(63) {
		t.Error("Reset did not clear")
	}
	if clone.Count() != len(ids)-1 || !clone.Get(63) {
		t.Error("Clone shares storage with original")
	}
}

func TestBitmapMatchesMapReference(t *testing.T) {
	rng := xrand.New(99)
	var b Bitmap
	ref := map[int]bool{}
	for step := 0; step < 5000; step++ {
		id := rng.Intn(2000)
		if rng.Bernoulli(0.5) {
			b.Set(id)
			ref[id] = true
		} else {
			b.Clear(id)
			delete(ref, id)
		}
	}
	if b.Count() != len(ref) {
		t.Fatalf("Count = %d, want %d", b.Count(), len(ref))
	}
	for id := 0; id < 2000; id++ {
		if b.Get(id) != ref[id] {
			t.Fatalf("Get(%d) = %v, want %v", id, b.Get(id), ref[id])
		}
	}
}

func TestBitmapNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Set(-1) should panic")
		}
	}()
	var b Bitmap
	b.Set(-1)
}
