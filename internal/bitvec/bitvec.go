// Package bitvec implements packed binary vectors over {0,1}^d, the ambient
// space for the paper's Hamming-distance constructions (bit-sampling, anti
// bit-sampling, the Theorem 5.2 polynomial schemes) and for the Section 3
// lower-bound experiments on randomly alpha-correlated points.
//
// Vectors are stored 64 bits per word; Hamming distance is computed with
// hardware popcount via math/bits.
package bitvec

import (
	"fmt"
	"math"
	"math/bits"
	"strings"

	"dsh/internal/xrand"
)

// Vector is a binary vector of fixed dimension d packed into uint64 words.
// The zero value is unusable; construct with New or the random generators.
type Vector struct {
	d     int
	words []uint64
}

// New returns an all-zeros vector of dimension d. It panics for d <= 0.
func New(d int) Vector {
	if d <= 0 {
		panic("bitvec: dimension must be positive")
	}
	return Vector{d: d, words: make([]uint64, (d+63)/64)}
}

// FromBits builds a vector from a slice of 0/1 values (any nonzero byte
// counts as a one).
func FromBits(bits []byte) Vector {
	v := New(len(bits))
	for i, b := range bits {
		if b != 0 {
			v.Set(i, true)
		}
	}
	return v
}

// FromString parses a string of '0' and '1' runes into a vector.
func FromString(s string) (Vector, error) {
	if len(s) == 0 {
		return Vector{}, fmt.Errorf("bitvec: empty string")
	}
	v := New(len(s))
	for i, r := range s {
		switch r {
		case '0':
		case '1':
			v.Set(i, true)
		default:
			return Vector{}, fmt.Errorf("bitvec: invalid character %q at position %d", r, i)
		}
	}
	return v, nil
}

// Dim returns the dimension d.
func (v Vector) Dim() int { return v.d }

// Bit returns bit i as a bool. It panics if i is out of range.
func (v Vector) Bit(i int) bool {
	if i < 0 || i >= v.d {
		panic("bitvec: index out of range")
	}
	return v.words[i>>6]>>(uint(i)&63)&1 == 1
}

// Set assigns bit i. It panics if i is out of range.
func (v Vector) Set(i int, value bool) {
	if i < 0 || i >= v.d {
		panic("bitvec: index out of range")
	}
	if value {
		v.words[i>>6] |= 1 << (uint(i) & 63)
	} else {
		v.words[i>>6] &^= 1 << (uint(i) & 63)
	}
}

// Flip toggles bit i.
func (v Vector) Flip(i int) {
	if i < 0 || i >= v.d {
		panic("bitvec: index out of range")
	}
	v.words[i>>6] ^= 1 << (uint(i) & 63)
}

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	w := Vector{d: v.d, words: make([]uint64, len(v.words))}
	copy(w.words, v.words)
	return w
}

// Equal reports whether v and w have the same dimension and bits.
func (v Vector) Equal(w Vector) bool {
	if v.d != w.d {
		return false
	}
	for i := range v.words {
		if v.words[i] != w.words[i] {
			return false
		}
	}
	return true
}

// Weight returns the number of one-bits (Hamming weight).
func (v Vector) Weight() int {
	total := 0
	for _, w := range v.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// String renders the vector as a 0/1 string, most significant position last,
// matching FromString round-trips.
func (v Vector) String() string {
	var sb strings.Builder
	sb.Grow(v.d)
	for i := 0; i < v.d; i++ {
		if v.Bit(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// Distance returns the Hamming distance between v and w.
// It panics on dimension mismatch.
func Distance(v, w Vector) int {
	if v.d != w.d {
		panic("bitvec: dimension mismatch")
	}
	total := 0
	for i := range v.words {
		total += bits.OnesCount64(v.words[i] ^ w.words[i])
	}
	return total
}

// RelativeDistance returns dist(v, w) / d, the normalized Hamming distance
// in [0, 1] used as the CPF argument for Hamming-space families.
func RelativeDistance(v, w Vector) float64 {
	return float64(Distance(v, w)) / float64(v.d)
}

// Similarity returns sim_H(v, w) = 1 - 2*dist(v, w)/d in [-1, 1], the
// similarity measure of Section 3 of the paper. It equals the inner product
// of the +/-1 encodings of v and w divided by d.
func Similarity(v, w Vector) float64 {
	return 1 - 2*RelativeDistance(v, w)
}

// Xor returns the coordinate-wise exclusive or of v and w.
func Xor(v, w Vector) Vector {
	if v.d != w.d {
		panic("bitvec: dimension mismatch")
	}
	out := New(v.d)
	for i := range v.words {
		out.words[i] = v.words[i] ^ w.words[i]
	}
	return out
}

// Not returns the coordinate-wise complement of v.
func Not(v Vector) Vector {
	out := New(v.d)
	for i := range v.words {
		out.words[i] = ^v.words[i]
	}
	out.maskTail()
	return out
}

// maskTail clears the unused high bits of the final word so that Weight and
// Distance remain correct after complement-style operations.
func (v Vector) maskTail() {
	if rem := uint(v.d) & 63; rem != 0 {
		v.words[len(v.words)-1] &= (1 << rem) - 1
	}
}

// Random returns a uniformly random vector of dimension d.
func Random(rng *xrand.Rand, d int) Vector {
	v := New(d)
	for i := range v.words {
		v.words[i] = rng.Uint64()
	}
	v.maskTail()
	return v
}

// Correlated returns a pair (x, y) of randomly alpha-correlated vectors as
// in Definition 3.1 of the paper: x is uniform and each bit of y
// independently equals the corresponding bit of x with probability
// (1+alpha)/2. alpha must lie in [-1, 1].
func Correlated(rng *xrand.Rand, d int, alpha float64) (x, y Vector) {
	if alpha < -1 || alpha > 1 {
		panic("bitvec: alpha out of [-1,1]")
	}
	x = Random(rng, d)
	y = x.Clone()
	flipProb := (1 - alpha) / 2
	for i := 0; i < d; i++ {
		if rng.Bernoulli(flipProb) {
			y.Flip(i)
		}
	}
	return x, y
}

// AtDistance returns a copy of x with exactly r distinct random bits
// flipped, i.e. a uniformly random point at Hamming distance exactly r.
func AtDistance(rng *xrand.Rand, x Vector, r int) Vector {
	if r < 0 || r > x.d {
		panic("bitvec: distance out of range")
	}
	y := x.Clone()
	for _, i := range rng.Sample(x.d, r) {
		y.Flip(i)
	}
	return y
}

// Append returns the concatenation of v followed by w. It copies v's words
// wholesale and ORs in w's words shifted by v.d mod 64 bits, so the cost is
// O(words), not O(bits).
func Append(v, w Vector) Vector {
	out := New(v.d + w.d)
	copy(out.words, v.words)
	base := v.d >> 6
	shift := uint(v.d) & 63
	if shift == 0 {
		copy(out.words[base:], w.words)
	} else {
		// Each word of w straddles two output words; the tail bits beyond
		// w.d are zero by the maskTail invariant, so the high spill of the
		// final word never reaches past the output array.
		for i, word := range w.words {
			out.words[base+i] |= word << shift
			if base+i+1 < len(out.words) {
				out.words[base+i+1] |= word >> (64 - shift)
			}
		}
	}
	out.maskTail()
	return out
}

// PadOnes returns v extended to dimension dNew with all-one padding, the
// embedding hat-x = x . 1 used in the proof of Theorem 3.8. The padding is
// written word-at-a-time: a masked OR into the word straddling v.d, then
// whole ^uint64(0) words, with maskTail clearing the overhang.
func PadOnes(v Vector, dNew int) Vector {
	if dNew < v.d {
		panic("bitvec: PadOnes target smaller than source")
	}
	out := New(dNew)
	copy(out.words, v.words)
	start := v.d >> 6
	if rem := uint(v.d) & 63; rem != 0 && start < len(out.words) {
		out.words[start] |= ^uint64(0) << rem
		start++
	}
	for i := start; i < len(out.words); i++ {
		out.words[i] = ^uint64(0)
	}
	out.maskTail()
	return out
}

// Words returns the vector's packed word storage (bit i of the vector in
// bit i%64 of word i/64, tail bits zero). The slice aliases the vector and
// must not be modified; it is the serialization surface for the durable
// index tier.
func (v Vector) Words() []uint64 { return v.words }

// FromWords rebuilds a d-dimensional vector from packed words as produced
// by Words. The words are copied; it panics when d <= 0 or the word count
// does not match the dimension.
func FromWords(d int, words []uint64) Vector {
	v := New(d)
	if len(words) != len(v.words) {
		panic("bitvec: word count does not match dimension")
	}
	copy(v.words, words)
	v.maskTail()
	return v
}

// Bitmap is a growable bit set over non-negative integer ids, stored 64
// bits per word. Unlike Vector it has no fixed dimension: Set grows the
// word array on demand and Get treats ids beyond the grown range as unset.
// The zero value is an empty, ready-to-use bitmap. The dynamic index uses
// it as the tombstone set over stable global point ids.
type Bitmap struct {
	words []uint64
	n     int
}

// Set marks id as present. It panics for negative ids and grows the bitmap
// as needed.
func (b *Bitmap) Set(id int) {
	if id < 0 {
		panic("bitvec: negative bitmap id")
	}
	w := id >> 6
	if w >= len(b.words) {
		// append doubles capacity, so monotone id growth is amortized O(1).
		b.words = append(b.words, make([]uint64, w+1-len(b.words))...)
	}
	mask := uint64(1) << (uint(id) & 63)
	if b.words[w]&mask == 0 {
		b.words[w] |= mask
		b.n++
	}
}

// Clear marks id as absent. Ids beyond the grown range are already absent.
func (b *Bitmap) Clear(id int) {
	if id < 0 {
		panic("bitvec: negative bitmap id")
	}
	w := id >> 6
	if w >= len(b.words) {
		return
	}
	mask := uint64(1) << (uint(id) & 63)
	if b.words[w]&mask != 0 {
		b.words[w] &^= mask
		b.n--
	}
}

// Get reports whether id is present. Ids outside the grown range (including
// negative ids) report false, so callers can probe without bounds checks.
func (b *Bitmap) Get(id int) bool {
	w := id >> 6
	if id < 0 || w >= len(b.words) {
		return false
	}
	return b.words[w]>>(uint(id)&63)&1 == 1
}

// Count returns the number of set bits.
func (b *Bitmap) Count() int { return b.n }

// Bytes returns the heap footprint of the bitmap's word storage in bytes.
// It grows with the highest id ever Set (bits are stored up to that id even
// after Clear), so shrinking requires rebuilding the bitmap — which is what
// the dynamic index's leveled GC does when it compacts the id space.
func (b *Bitmap) Bytes() int { return len(b.words) * 8 }

// Clone returns an independent deep copy of b.
func (b *Bitmap) Clone() Bitmap {
	out := Bitmap{n: b.n}
	if len(b.words) > 0 {
		out.words = make([]uint64, len(b.words))
		copy(out.words, b.words)
	}
	return out
}

// Reset clears every bit, retaining the grown capacity.
func (b *Bitmap) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
	b.n = 0
}

// Words returns the bitmap's packed word storage (64 ids per word, id i in
// bit i%64 of word i/64). The slice aliases the bitmap and must not be
// modified; it is the serialization surface for the durable index tier.
func (b *Bitmap) Words() []uint64 { return b.words }

// BitmapFromWords rebuilds a bitmap from packed words as produced by
// Words, recounting the set bits. The words are copied.
func BitmapFromWords(words []uint64) Bitmap {
	b := Bitmap{}
	if len(words) > 0 {
		b.words = make([]uint64, len(words))
		copy(b.words, words)
		for _, w := range words {
			b.n += bits.OnesCount64(w)
		}
	}
	return b
}

// SignVector returns the +/-1 encoding of v scaled by 1/sqrt(d), i.e. the
// standard embedding of the Hamming cube onto the unit sphere: bit 0 maps to
// +1/sqrt(d) and bit 1 maps to -1/sqrt(d). Under this embedding the inner
// product of two images equals sim_H of the originals.
func SignVector(v Vector) []float64 {
	out := make([]float64, v.d)
	inv := 1.0 / math.Sqrt(float64(v.d))
	for i := 0; i < v.d; i++ {
		if v.Bit(i) {
			out[i] = -inv
		} else {
			out[i] = inv
		}
	}
	return out
}
