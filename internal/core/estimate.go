package core

import (
	"math"

	"dsh/internal/stats"
	"dsh/internal/xrand"
)

// Estimate is a Monte-Carlo estimate of a collision probability.
type Estimate struct {
	X        float64 // the distance/similarity at which the CPF was probed
	Hits     int
	Trials   int
	P        float64        // point estimate Hits/Trials
	Interval stats.Interval // Wilson interval at the z used for estimation
}

// PairGenerator produces point pairs at a prescribed CPF argument x
// (distance or similarity depending on the family's domain).
type PairGenerator[P any] func(rng *xrand.Rand, x float64) (P, P)

// EstimateCollision estimates Pr[h(x)=g(y)] at CPF argument x by drawing
// `trials` fresh ((h,g), (x,y)) combinations. Resampling the points each
// trial estimates the probabilistic CPF of Definition 3.3; for spaces where
// the generator produces exact distances the two notions coincide.
// The returned interval is a Wilson score interval at the given z.
func EstimateCollision[P any](rng *xrand.Rand, fam Family[P], gen PairGenerator[P], x float64, trials int, z float64) Estimate {
	if trials <= 0 {
		panic("core: EstimateCollision requires trials > 0")
	}
	hits := 0
	for i := 0; i < trials; i++ {
		px, py := gen(rng, x)
		pair := fam.Sample(rng)
		if pair.Collides(px, py) {
			hits++
		}
	}
	return Estimate{
		X:        x,
		Hits:     hits,
		Trials:   trials,
		P:        float64(hits) / float64(trials),
		Interval: stats.WilsonInterval(hits, trials, z),
	}
}

// EstimateCollisionFixedPoints estimates Pr[h(x)=g(y)] for one fixed point
// pair over `trials` independent (h, g) draws. at is the CPF argument
// (distance or similarity) of the pair, recorded in the returned
// Estimate's X field so fixed-point estimates tabulate like EstimateCPF
// sweeps.
func EstimateCollisionFixedPoints[P any](rng *xrand.Rand, fam Family[P], x, y P, at float64, trials int, z float64) Estimate {
	if trials <= 0 {
		panic("core: EstimateCollisionFixedPoints requires trials > 0")
	}
	hits := 0
	for i := 0; i < trials; i++ {
		pair := fam.Sample(rng)
		if pair.Collides(x, y) {
			hits++
		}
	}
	return Estimate{
		X:        at,
		Hits:     hits,
		Trials:   trials,
		P:        float64(hits) / float64(trials),
		Interval: stats.WilsonInterval(hits, trials, z),
	}
}

// EstimateCPF sweeps the family's CPF across the given arguments.
func EstimateCPF[P any](rng *xrand.Rand, fam Family[P], gen PairGenerator[P], xs []float64, trials int, z float64) []Estimate {
	out := make([]Estimate, len(xs))
	for i, x := range xs {
		out[i] = EstimateCollision(rng, fam, gen, x, trials, z)
	}
	return out
}

// RhoMinus computes the "anti-LSH" quality measure
// rho^- = ln(1/f(far)) / ln(1/f(near)) for a CPF that *increases* with
// distance: near is the small distance where collisions should be rare and
// far the large distance where they should be common... more precisely, per
// Section 4.1 of the paper, rho^- = ln f(r) / ln f(r/c) with r the target
// distance and r/c the too-close distance, both CPF values in (0, 1).
func RhoMinus(f CPF, r, rNear float64) float64 {
	fr := f.Eval(r)
	fn := f.Eval(rNear)
	return math.Log(fr) / math.Log(fn)
}

// RhoPlus computes the classical LSH measure
// rho^+ = ln(1/f(r)) / ln(1/f(cr)) for a decreasing CPF: r the near
// distance, rFar = c*r the far distance.
func RhoPlus(f CPF, r, rFar float64) float64 {
	return math.Log(f.Eval(r)) / math.Log(f.Eval(rFar))
}

// CheckLowerBound evaluates the Theorem 1.3 lower-bound inequality
// fhat(alpha) >= fhat(0)^((1+alpha)/(1-alpha)) at a similarity alpha in
// [0, 1) from two estimates. It returns the right-hand side bound and
// whether the inequality holds with slack: the estimate at alpha (upper
// Wilson limit) must not fall below the bound computed from the estimate at
// 0 (lower Wilson limit gives the weakest bound, so we use it to avoid
// false alarms from Monte-Carlo noise).
func CheckLowerBound(atZero, atAlpha Estimate, alpha float64) (bound float64, ok bool) {
	if alpha < 0 || alpha >= 1 {
		panic("core: CheckLowerBound requires 0 <= alpha < 1")
	}
	exponent := (1 + alpha) / (1 - alpha)
	// The weakest (smallest) admissible bound uses the lower end of the
	// interval at 0, since x^exponent is increasing in x for x in [0,1].
	bound = math.Pow(atZero.Interval.Lo, exponent)
	ok = atAlpha.Interval.Hi >= bound
	return bound, ok
}
