// Package core defines the distance-sensitive hashing (DSH) framework of
// the paper: distributions over pairs of hash functions (h, g) whose
// collision probability Pr[h(x) = g(y)] is a prescribed function f of
// dist(x, y) (Definition 1.1), the collision probability function (CPF)
// abstraction, the Lemma 1.4 combinators (concatenation, powering,
// mixtures), and a Monte-Carlo harness for estimating CPFs with
// confidence intervals.
//
// Classical locality-sensitive hashing is the symmetric special case h = g
// with a CPF that decreases in distance; the Symmetric adapter embeds any
// LSH into this framework.
package core

import (
	"dsh/internal/xrand"
)

// Hasher maps points of type P to 64-bit hash values. Collisions of
// interest are exact equalities of these values; all constructions mix
// their discrete outputs through a strong 64-bit finalizer so that
// accidental collisions are negligible (probability ~2^-64).
type Hasher[P any] interface {
	Hash(p P) uint64
}

// BatchHasher is implemented by hashers that can evaluate a whole block of
// points in one call. HashBatch fills out[i] with exactly the key Hash
// would return for points[i] — implementations must produce bit-identical
// keys to point-at-a-time Hash calls (same floating-point evaluation order
// per point), so candidate streams derived from batched keys match the
// scalar path — while amortizing per-call setup and keeping one draw's
// parameters cache-resident as the block streams through. The index batch
// engine uses it to hash Q queries against one repetition's draws before
// moving to the next repetition. out must have at least len(points)
// entries; implementations panic otherwise.
type BatchHasher[P any] interface {
	Hasher[P]
	HashBatch(points []P, out []uint64)
}

// HasherFunc adapts a plain function to the Hasher interface.
type HasherFunc[P any] func(P) uint64

// Hash calls f(p).
func (f HasherFunc[P]) Hash(p P) uint64 { return f(p) }

// Pair is one draw (h, g) from a DSH family. Data points are hashed with H
// and query points with G; the asymmetry H != G is what extends the
// reachable class of CPFs beyond classical LSH.
type Pair[P any] struct {
	H, G Hasher[P]
}

// Collides reports whether x (hashed by H) and y (hashed by G) collide.
func (p Pair[P]) Collides(x, y P) bool { return p.H.Hash(x) == p.G.Hash(y) }

// Domain identifies the argument convention of a CPF.
type Domain int

const (
	// DomainDistance means the CPF argument is an absolute distance
	// (Euclidean constructions).
	DomainDistance Domain = iota
	// DomainRelativeHamming means the argument is a relative Hamming
	// distance in [0, 1] (bit-sampling style constructions).
	DomainRelativeHamming
	// DomainInnerProduct means the argument is an inner product /
	// similarity in [-1, 1] (unit-sphere constructions).
	DomainInnerProduct
)

// String returns a short human-readable name for the domain.
func (d Domain) String() string {
	switch d {
	case DomainDistance:
		return "distance"
	case DomainRelativeHamming:
		return "relative-hamming"
	case DomainInnerProduct:
		return "inner-product"
	default:
		return "unknown"
	}
}

// CPF is a collision probability function together with its argument
// convention. Eval may be an exact closed form, a numeric-integration
// approximation, or an asymptotic prediction, depending on the family;
// family documentation states which.
type CPF struct {
	Domain Domain
	Eval   func(x float64) float64
}

// Constant returns a CPF that is identically p on the given domain.
func Constant(domain Domain, p float64) CPF {
	return CPF{Domain: domain, Eval: func(float64) float64 { return p }}
}

// Family is a distance-sensitive hash family: a distribution over pairs
// (h, g) with a known collision probability function.
type Family[P any] interface {
	// Name returns a short identifier used in experiment tables.
	Name() string
	// Sample draws an independent (h, g) pair using rng.
	Sample(rng *xrand.Rand) Pair[P]
	// CPF returns the family's collision probability function.
	CPF() CPF
}

// mix64 is the SplitMix64 finalizer, used to combine discrete hash outputs
// injectively-with-overwhelming-probability into single 64-bit values.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// combine folds the next value into a running combined hash. Equal
// sequences produce equal results; unequal sequences collide with
// probability ~2^-64.
func combine(acc, next uint64) uint64 {
	return mix64(acc ^ (next + 0x9e3779b97f4a7c15 + (acc << 6) + (acc >> 2)))
}

// Symmetric wraps a distribution over single functions (classical LSH) as a
// DSH family with h = g.
type Symmetric[P any] struct {
	FamilyName string
	SampleFn   func(rng *xrand.Rand) Hasher[P]
	Prob       CPF
}

// Name implements Family.
func (s Symmetric[P]) Name() string { return s.FamilyName }

// Sample implements Family: it draws one hasher and uses it on both sides.
func (s Symmetric[P]) Sample(rng *xrand.Rand) Pair[P] {
	h := s.SampleFn(rng)
	return Pair[P]{H: h, G: h}
}

// CPF implements Family.
func (s Symmetric[P]) CPF() CPF { return s.Prob }
