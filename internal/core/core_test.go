package core

import (
	"math"
	"strings"
	"testing"

	"dsh/internal/stats"
	"dsh/internal/xrand"
)

// lineLSH is a symmetric test family on the real line: h(x) = floor(x + b)
// for uniform b in [0,1), with exact CPF f(t) = max(0, 1-t) in the distance
// t = |x-y|. It is the classical 1-dimensional p-stable bucketing with w=1.
func lineLSH() Family[float64] {
	return Symmetric[float64]{
		FamilyName: "line",
		SampleFn: func(rng *xrand.Rand) Hasher[float64] {
			b := rng.Float64()
			return HasherFunc[float64](func(x float64) uint64 {
				return uint64(int64(math.Floor(x + b)))
			})
		},
		Prob: CPF{Domain: DomainDistance, Eval: func(t float64) float64 {
			return math.Max(0, 1-t)
		}},
	}
}

// antiLine is the asymmetric variant with g(y) = h(y) + 1: for points at
// distance t in [0, 1] with y > x the collision probability is exactly t.
type antiLine struct{}

func (antiLine) Name() string { return "anti-line" }

func (antiLine) Sample(rng *xrand.Rand) Pair[float64] {
	b := rng.Float64()
	h := HasherFunc[float64](func(x float64) uint64 {
		return uint64(int64(math.Floor(x + b)))
	})
	g := HasherFunc[float64](func(y float64) uint64 {
		return uint64(int64(math.Floor(y+b)) - 1)
	})
	return Pair[float64]{H: h, G: g}
}

func (antiLine) CPF() CPF {
	return CPF{Domain: DomainDistance, Eval: func(t float64) float64 {
		if t < 0 || t > 2 {
			return 0
		}
		if t <= 1 {
			return t
		}
		return 2 - t
	}}
}

// constFamily collides with exactly probability p, independent of points.
type constFamily struct{ p float64 }

func (c constFamily) Name() string { return "const" }

func (c constFamily) Sample(rng *xrand.Rand) Pair[float64] {
	collide := rng.Bernoulli(c.p)
	h := HasherFunc[float64](func(float64) uint64 { return 0 })
	var g Hasher[float64]
	if collide {
		g = HasherFunc[float64](func(float64) uint64 { return 0 })
	} else {
		g = HasherFunc[float64](func(float64) uint64 { return 1 })
	}
	return Pair[float64]{H: h, G: g}
}

func (c constFamily) CPF() CPF { return Constant(DomainDistance, c.p) }

// linePairs generates pairs of reals at distance exactly t.
func linePairs(rng *xrand.Rand, t float64) (float64, float64) {
	x := rng.Float64Range(0, 100)
	return x, x + t
}

func TestSymmetricSharesFunction(t *testing.T) {
	fam := lineLSH()
	rng := xrand.New(1)
	pair := fam.Sample(rng)
	for i := 0; i < 100; i++ {
		x := rng.Float64Range(-50, 50)
		if pair.H.Hash(x) != pair.G.Hash(x) {
			t.Fatal("symmetric family must have h == g pointwise")
		}
	}
}

func TestLineLSHCPFEmpirical(t *testing.T) {
	fam := lineLSH()
	rng := xrand.New(2)
	for _, tt := range []float64{0, 0.25, 0.5, 0.9, 1.5} {
		est := EstimateCollision(rng, fam, linePairs, tt, 20000, 5)
		want := fam.CPF().Eval(tt)
		if !est.Interval.Contains(want) {
			t.Errorf("t=%v: estimate %v (interval [%v,%v]) excludes analytic %v",
				tt, est.P, est.Interval.Lo, est.Interval.Hi, want)
		}
	}
}

func TestAntiLineIncreasingCPF(t *testing.T) {
	fam := antiLine{}
	rng := xrand.New(3)
	for _, tt := range []float64{0, 0.3, 0.7, 1.0} {
		est := EstimateCollision(rng, fam, linePairs, tt, 20000, 5)
		want := fam.CPF().Eval(tt)
		if !est.Interval.Contains(want) {
			t.Errorf("t=%v: estimate %v excludes analytic %v", tt, est.P, want)
		}
	}
}

func TestConcatCPFIsProduct(t *testing.T) {
	fam := Concat[float64](lineLSH(), antiLine{})
	f := fam.CPF()
	for _, tt := range []float64{0.2, 0.5, 0.8} {
		want := math.Max(0, 1-tt) * tt
		if got := f.Eval(tt); math.Abs(got-want) > 1e-12 {
			t.Errorf("concat CPF(%v) = %v, want %v", tt, got, want)
		}
	}
	if !strings.Contains(fam.Name(), "concat") {
		t.Errorf("Name = %q", fam.Name())
	}
}

func TestConcatEmpirical(t *testing.T) {
	fam := Concat[float64](lineLSH(), antiLine{})
	rng := xrand.New(4)
	for _, tt := range []float64{0.3, 0.6} {
		est := EstimateCollision(rng, fam, linePairs, tt, 30000, 5)
		want := fam.CPF().Eval(tt)
		if !est.Interval.Contains(want) {
			t.Errorf("t=%v: estimate %v excludes %v", tt, est.P, want)
		}
	}
}

func TestConcatSingleAndErrors(t *testing.T) {
	single := lineLSH()
	if got := Concat[float64](single); got.Name() != single.Name() {
		t.Error("Concat of one family should be identity")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Concat() should panic")
			}
		}()
		Concat[float64]()
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("domain mismatch should panic")
			}
		}()
		other := Symmetric[float64]{
			FamilyName: "ip",
			SampleFn: func(rng *xrand.Rand) Hasher[float64] {
				return HasherFunc[float64](func(float64) uint64 { return 0 })
			},
			Prob: Constant(DomainInnerProduct, 1),
		}
		Concat[float64](lineLSH(), other)
	}()
}

func TestPowerCPF(t *testing.T) {
	fam := Power[float64](lineLSH(), 3)
	f := fam.CPF()
	for _, tt := range []float64{0.1, 0.5} {
		want := math.Pow(1-tt, 3)
		if got := f.Eval(tt); math.Abs(got-want) > 1e-12 {
			t.Errorf("power CPF(%v) = %v, want %v", tt, got, want)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Power(fam, 0) should panic")
			}
		}()
		Power[float64](lineLSH(), 0)
	}()
}

func TestPowerEmpirical(t *testing.T) {
	fam := Power[float64](antiLine{}, 2)
	rng := xrand.New(5)
	est := EstimateCollision(rng, fam, linePairs, 0.7, 30000, 5)
	if want := 0.49; !est.Interval.Contains(want) {
		t.Errorf("estimate %v excludes %v", est.P, want)
	}
}

func TestMixtureCPF(t *testing.T) {
	fam := Mixture[float64](
		[]Family[float64]{constFamily{1}, constFamily{0}},
		[]float64{0.3, 0.7},
	)
	if got := fam.CPF().Eval(0.5); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("mixture CPF = %v, want 0.3", got)
	}
	rng := xrand.New(6)
	est := EstimateCollision(rng, fam, linePairs, 0.5, 30000, 5)
	if !est.Interval.Contains(0.3) {
		t.Errorf("mixture empirical %v excludes 0.3", est.P)
	}
}

func TestMixtureOfDistanceFamilies(t *testing.T) {
	fam := Mixture[float64](
		[]Family[float64]{lineLSH(), antiLine{}},
		[]float64{0.5, 0.5},
	)
	rng := xrand.New(7)
	for _, tt := range []float64{0.2, 0.8} {
		want := 0.5*math.Max(0, 1-tt) + 0.5*tt
		est := EstimateCollision(rng, fam, linePairs, tt, 30000, 5)
		if !est.Interval.Contains(want) {
			t.Errorf("t=%v: %v excludes %v", tt, est.P, want)
		}
	}
}

func TestMixtureValidation(t *testing.T) {
	cases := []func(){
		func() { Mixture[float64](nil, nil) },
		func() {
			Mixture[float64]([]Family[float64]{lineLSH()}, []float64{0.5})
		},
		func() {
			Mixture[float64]([]Family[float64]{lineLSH(), antiLine{}}, []float64{1.5, -0.5})
		},
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestRenamed(t *testing.T) {
	fam := Renamed[float64]{Inner: lineLSH(), NewName: "alias"}
	if fam.Name() != "alias" {
		t.Errorf("Name = %q", fam.Name())
	}
	if fam.CPF().Eval(0.5) != 0.5 {
		t.Error("Renamed must preserve CPF")
	}
	rng := xrand.New(8)
	pair := fam.Sample(rng)
	if pair.H.Hash(1.0) != pair.G.Hash(1.0) {
		t.Error("Renamed must preserve sampling")
	}
}

func TestRhoValues(t *testing.T) {
	// For CPF f(t) = t: rho^- = ln f(r)/ln f(r/c).
	f := CPF{Domain: DomainRelativeHamming, Eval: func(t float64) float64 { return t }}
	r, c := 0.1, 2.0
	want := math.Log(0.1) / math.Log(0.05)
	if got := RhoMinus(f, r, r/c); math.Abs(got-want) > 1e-12 {
		t.Errorf("RhoMinus = %v, want %v", got, want)
	}
	// For CPF g(t) = 1-t: rho^+ = ln g(r)/ln g(cr).
	g := CPF{Domain: DomainRelativeHamming, Eval: func(t float64) float64 { return 1 - t }}
	want = math.Log(0.9) / math.Log(0.8)
	if got := RhoPlus(g, r, c*r); math.Abs(got-want) > 1e-12 {
		t.Errorf("RhoPlus = %v, want %v", got, want)
	}
}

func TestCheckLowerBound(t *testing.T) {
	atZero := Estimate{P: 0.25, Interval: intervalOf(0.24, 0.26)}
	atAlpha := Estimate{P: 0.1, Interval: intervalOf(0.09, 0.11)}
	// alpha = 1/3: exponent = 2; bound = 0.24^2 = 0.0576 <= 0.11: ok.
	bound, ok := CheckLowerBound(atZero, atAlpha, 1.0/3)
	if !ok {
		t.Errorf("bound %v should hold", bound)
	}
	// Violation: collision prob at alpha way too small.
	atBad := Estimate{P: 0.001, Interval: intervalOf(0.0005, 0.002)}
	if _, ok := CheckLowerBound(atZero, atBad, 1.0/3); ok {
		t.Error("violation should be detected")
	}
	defer func() {
		if recover() == nil {
			t.Error("alpha out of range should panic")
		}
	}()
	CheckLowerBound(atZero, atAlpha, 1)
}

func TestEstimateCollisionFixedPoints(t *testing.T) {
	fam := lineLSH()
	rng := xrand.New(9)
	est := EstimateCollisionFixedPoints(rng, fam, 0.0, 0.5, 0.5, 20000, 5)
	if !est.Interval.Contains(0.5) {
		t.Errorf("fixed-point estimate %v excludes 0.5", est.P)
	}
	if est.X != 0.5 {
		t.Errorf("fixed-point estimate X = %v, want 0.5", est.X)
	}
}

func TestEstimatorsRejectNonPositiveTrials(t *testing.T) {
	fam := lineLSH()
	for _, trials := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("EstimateCollision with trials=%d should panic", trials)
				}
			}()
			EstimateCollision(xrand.New(1), fam, linePairs, 0.5, trials, 5)
		}()
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("EstimateCollisionFixedPoints with trials=%d should panic", trials)
				}
			}()
			EstimateCollisionFixedPoints(xrand.New(1), fam, 0.0, 0.5, 0.5, trials, 5)
		}()
	}
}

func TestEstimateCPFSweep(t *testing.T) {
	fam := lineLSH()
	rng := xrand.New(10)
	xs := []float64{0.1, 0.5, 0.9}
	ests := EstimateCPF(rng, fam, linePairs, xs, 5000, 5)
	if len(ests) != 3 {
		t.Fatalf("got %d estimates", len(ests))
	}
	for i, e := range ests {
		if e.X != xs[i] {
			t.Errorf("estimate %d has X = %v", i, e.X)
		}
		if !e.Interval.Contains(1 - xs[i]) {
			t.Errorf("sweep point %v: %v excludes %v", e.X, e.P, 1-xs[i])
		}
	}
}

func TestDomainString(t *testing.T) {
	if DomainDistance.String() != "distance" ||
		DomainRelativeHamming.String() != "relative-hamming" ||
		DomainInnerProduct.String() != "inner-product" ||
		Domain(99).String() != "unknown" {
		t.Error("Domain.String values wrong")
	}
}

func TestConstantCPF(t *testing.T) {
	c := Constant(DomainInnerProduct, 0.42)
	if c.Eval(-1) != 0.42 || c.Eval(1) != 0.42 {
		t.Error("Constant CPF should ignore its argument")
	}
}

func intervalOf(lo, hi float64) stats.Interval {
	return stats.Interval{Lo: lo, Hi: hi}
}
