package core

import (
	"fmt"
	"strings"

	"dsh/internal/xrand"
)

// concatFamily implements Lemma 1.4(a): concatenating n independent draws
// multiplies the collision probability functions.
type concatFamily[P any] struct {
	parts []Family[P]
}

// Concat returns the concatenation of the given families: a draw samples an
// (h_i, g_i) pair from every part and the combined hash value is a digest of
// the component values, so the combined pair collides exactly when every
// component pair collides. Its CPF is the product of the component CPFs
// (Lemma 1.4(a) of the paper). All parts must share the same CPF domain.
func Concat[P any](parts ...Family[P]) Family[P] {
	if len(parts) == 0 {
		panic("core: Concat of zero families")
	}
	if len(parts) == 1 {
		return parts[0]
	}
	d := parts[0].CPF().Domain
	for _, p := range parts[1:] {
		if p.CPF().Domain != d {
			panic("core: Concat across different CPF domains")
		}
	}
	return concatFamily[P]{parts: parts}
}

// Power returns the k-fold concatenation of family with itself, with CPF
// f(x)^k. This is the classical amplification ("powering") technique the
// paper invokes to drive collision probabilities below 1/n.
func Power[P any](family Family[P], k int) Family[P] {
	if k <= 0 {
		panic("core: Power requires k >= 1")
	}
	parts := make([]Family[P], k)
	for i := range parts {
		parts[i] = family
	}
	return Concat(parts...)
}

func (c concatFamily[P]) Name() string {
	names := make([]string, len(c.parts))
	for i, p := range c.parts {
		names[i] = p.Name()
	}
	return "concat(" + strings.Join(names, ",") + ")"
}

func (c concatFamily[P]) Sample(rng *xrand.Rand) Pair[P] {
	hs := make([]Hasher[P], len(c.parts))
	gs := make([]Hasher[P], len(c.parts))
	ngs := make([]negHasher, len(c.parts))
	negOK := true
	for i, p := range c.parts {
		pair := p.Sample(rng)
		hs[i] = pair.H
		gs[i] = pair.G
		if ng, ok := pair.G.(negHasher); ok {
			ngs[i] = ng
		} else {
			negOK = false
		}
	}
	var g Hasher[P] = combinedHasher[P]{parts: gs}
	if negOK {
		// Every component query hasher evaluates on the negated point, so
		// the concatenation does too: preserve the HashNeg fast path that
		// lets the index layer negate a query once across all components.
		g = combinedNegHasher[P]{combinedHasher[P]{parts: gs}, ngs}
	}
	return Pair[P]{H: combinedHasher[P]{parts: hs}, G: g}
}

// negHasher mirrors the index layer's per-query negation fast path: a
// hasher whose Hash evaluates on the negated point and can consume a
// pre-negated one. Combined hashers forward it when every component
// supports it.
type negHasher interface {
	HashNeg(neg []float64) uint64
}

// combinedHasher digests the component hash values in order, exactly as
// the concatenation's collision semantics require.
type combinedHasher[P any] struct {
	parts []Hasher[P]
}

func (c combinedHasher[P]) Hash(x P) uint64 {
	acc := uint64(len(c.parts))
	for _, h := range c.parts {
		acc = combine(acc, h.Hash(x))
	}
	return acc
}

// combinedNegHasher is a combinedHasher whose components all hash the
// negated point; HashNeg feeds each one the caller's pre-negated query.
type combinedNegHasher[P any] struct {
	combinedHasher[P]
	negs []negHasher
}

func (c combinedNegHasher[P]) HashNeg(neg []float64) uint64 {
	acc := uint64(len(c.negs))
	for _, ng := range c.negs {
		acc = combine(acc, ng.HashNeg(neg))
	}
	return acc
}

func (c concatFamily[P]) CPF() CPF {
	cpfs := make([]CPF, len(c.parts))
	for i, p := range c.parts {
		cpfs[i] = p.CPF()
	}
	return CPF{
		Domain: cpfs[0].Domain,
		Eval: func(x float64) float64 {
			prod := 1.0
			for _, f := range cpfs {
				prod *= f.Eval(x)
			}
			return prod
		},
	}
}

// mixtureFamily implements Lemma 1.4(b): a convex combination of families.
type mixtureFamily[P any] struct {
	parts   []Family[P]
	weights []float64
	cum     []float64
}

// Mixture returns the family that first picks index i with probability
// weights[i] and then samples from parts[i]; the hash values are tagged with
// i so that draws from different components never collide. Its CPF is the
// convex combination sum_i weights[i] * f_i (Lemma 1.4(b) of the paper).
// The weights must be non-negative and sum to 1 (within 1e-9); domains must
// agree.
func Mixture[P any](parts []Family[P], weights []float64) Family[P] {
	if len(parts) == 0 || len(parts) != len(weights) {
		panic("core: Mixture requires matching non-empty parts and weights")
	}
	var sum float64
	for _, w := range weights {
		if w < 0 {
			panic("core: Mixture weight negative")
		}
		sum += w
	}
	if sum < 1-1e-9 || sum > 1+1e-9 {
		panic(fmt.Sprintf("core: Mixture weights sum to %v, want 1", sum))
	}
	d := parts[0].CPF().Domain
	for _, p := range parts[1:] {
		if p.CPF().Domain != d {
			panic("core: Mixture across different CPF domains")
		}
	}
	m := mixtureFamily[P]{
		parts:   parts,
		weights: append([]float64(nil), weights...),
		cum:     make([]float64, len(weights)),
	}
	acc := 0.0
	for i, w := range weights {
		acc += w
		m.cum[i] = acc
	}
	m.cum[len(m.cum)-1] = 1 // guard against rounding
	return m
}

func (m mixtureFamily[P]) Name() string {
	names := make([]string, len(m.parts))
	for i, p := range m.parts {
		names[i] = fmt.Sprintf("%.3g*%s", m.weights[i], p.Name())
	}
	return "mix(" + strings.Join(names, ",") + ")"
}

func (m mixtureFamily[P]) Sample(rng *xrand.Rand) Pair[P] {
	u := rng.Float64()
	idx := len(m.cum) - 1
	for i, c := range m.cum {
		if u < c {
			idx = i
			break
		}
	}
	inner := m.parts[idx].Sample(rng)
	tag := uint64(idx + 1)
	var g Hasher[P] = taggedHasher[P]{tag: tag, inner: inner.G}
	if ng, ok := inner.G.(negHasher); ok {
		g = taggedNegHasher[P]{taggedHasher[P]{tag: tag, inner: inner.G}, ng}
	}
	return Pair[P]{H: taggedHasher[P]{tag: tag, inner: inner.H}, G: g}
}

// taggedHasher combines a mixture component's hash with the component
// index so draws from different components never collide.
type taggedHasher[P any] struct {
	tag   uint64
	inner Hasher[P]
}

func (t taggedHasher[P]) Hash(x P) uint64 { return combine(t.tag, t.inner.Hash(x)) }

// taggedNegHasher preserves the component's HashNeg fast path through the
// mixture tag.
type taggedNegHasher[P any] struct {
	taggedHasher[P]
	neg negHasher
}

func (t taggedNegHasher[P]) HashNeg(neg []float64) uint64 {
	return combine(t.tag, t.neg.HashNeg(neg))
}

func (m mixtureFamily[P]) CPF() CPF {
	cpfs := make([]CPF, len(m.parts))
	for i, p := range m.parts {
		cpfs[i] = p.CPF()
	}
	weights := m.weights
	return CPF{
		Domain: cpfs[0].Domain,
		Eval: func(x float64) float64 {
			var sum float64
			for i, f := range cpfs {
				sum += weights[i] * f.Eval(x)
			}
			return sum
		},
	}
}

// Renamed wraps a family with a different display name, convenient for
// experiment tables.
type Renamed[P any] struct {
	Inner   Family[P]
	NewName string
}

// Name implements Family.
func (r Renamed[P]) Name() string { return r.NewName }

// Sample implements Family.
func (r Renamed[P]) Sample(rng *xrand.Rand) Pair[P] { return r.Inner.Sample(rng) }

// CPF implements Family.
func (r Renamed[P]) CPF() CPF { return r.Inner.CPF() }
