// Package sketch implements CountSketch and TensorSketch from scratch.
//
// TensorSketch (Pham and Pagh, KDD 2013 — reference [42] of the paper)
// approximates the tensor-power embedding x^(k) with a D-dimensional sketch
// computable in time O(k(d + D log D)), so that
//
//	<TS(x), TS(y)> ~ <x, y>^k.
//
// The paper invokes it to evaluate the Valiant embeddings of Theorem 5.1 in
// near-linear time instead of the naive O(d^k). internal/sphere builds the
// approximate polynomial CPF families on top of this package.
package sketch

import (
	"math"

	"dsh/internal/fft"
	"dsh/internal/xrand"
)

// CountSketch is a linear projection R^d -> R^D defined by a hash function
// h: [d] -> [D] and signs s: [d] -> {+1, -1}: CS(x)[j] = sum_{h(i)=j} s(i) x(i).
// It preserves inner products in expectation: E[<CS(x), CS(y)>] = <x, y>.
type CountSketch struct {
	d, width int
	bucket   []int
	sign     []float64
}

// NewCountSketch samples a CountSketch for input dimension d and sketch
// width (output dimension) width. It panics for non-positive dimensions.
func NewCountSketch(rng *xrand.Rand, d, width int) *CountSketch {
	if d <= 0 || width <= 0 {
		panic("sketch: dimensions must be positive")
	}
	cs := &CountSketch{
		d:      d,
		width:  width,
		bucket: make([]int, d),
		sign:   make([]float64, d),
	}
	for i := 0; i < d; i++ {
		cs.bucket[i] = rng.Intn(width)
		if rng.Bool() {
			cs.sign[i] = 1
		} else {
			cs.sign[i] = -1
		}
	}
	return cs
}

// InputDim returns the expected input dimension d.
func (cs *CountSketch) InputDim() int { return cs.d }

// Width returns the sketch width D.
func (cs *CountSketch) Width() int { return cs.width }

// Apply sketches x into a fresh slice of length Width.
// It panics if len(x) != InputDim.
func (cs *CountSketch) Apply(x []float64) []float64 {
	if len(x) != cs.d {
		panic("sketch: input dimension mismatch")
	}
	out := make([]float64, cs.width)
	for i, v := range x {
		out[cs.bucket[i]] += cs.sign[i] * v
	}
	return out
}

// TensorSketch approximates the degree-k tensor power embedding using k
// independent CountSketches combined by circular convolution (computed via
// FFT). Width is rounded up to a power of two internally.
type TensorSketch struct {
	degree int
	width  int
	cs     []*CountSketch
}

// NewTensorSketch samples a TensorSketch of the given degree (k >= 1) for
// input dimension d with the requested sketch width (rounded up to a power
// of two for the FFT).
func NewTensorSketch(rng *xrand.Rand, d, degree, width int) *TensorSketch {
	if degree < 1 {
		panic("sketch: degree must be >= 1")
	}
	if d <= 0 || width <= 0 {
		panic("sketch: dimensions must be positive")
	}
	w := fft.NextPowerOfTwo(width)
	ts := &TensorSketch{degree: degree, width: w}
	for i := 0; i < degree; i++ {
		ts.cs = append(ts.cs, NewCountSketch(rng, d, w))
	}
	return ts
}

// Degree returns k.
func (ts *TensorSketch) Degree() int { return ts.degree }

// Width returns the (power-of-two) sketch width D.
func (ts *TensorSketch) Width() int { return ts.width }

// Apply returns the degree-k tensor sketch of x: the circular convolution of
// the k individual CountSketches, so that <Apply(x), Apply(y)> is an
// unbiased estimator of <x, y>^k.
func (ts *TensorSketch) Apply(x []float64) []float64 {
	if ts.degree == 1 {
		return ts.cs[0].Apply(x)
	}
	seqs := make([][]float64, ts.degree)
	for i, cs := range ts.cs {
		seqs[i] = cs.Apply(x)
	}
	return fft.PointwiseMulFFT(seqs...)
}

// PolySketch sketches the full polynomial embedding for P(t) = sum a_i t^i:
// it concatenates per-degree tensor sketches weighted so that
//
//	<Left(x), Right(y)> ~ P(<x, y>).
//
// The asymmetric weighting (sqrt|a_i| on one side, a_i/sqrt|a_i| on the
// other) mirrors Valiant's exact construction in Appendix C.2 of the paper
// and is what permits negative coefficients.
type PolySketch struct {
	coeffs  []float64 // a_0 ... a_k
	widths  []int
	degrees []*TensorSketch // degrees[i] sketches t^{i+1}
}

// NewPolySketch samples sketches for the polynomial with the given
// coefficients (constant term first) over input dimension d, using the given
// width per degree.
func NewPolySketch(rng *xrand.Rand, d int, coeffs []float64, width int) *PolySketch {
	if len(coeffs) == 0 {
		panic("sketch: empty polynomial")
	}
	ps := &PolySketch{coeffs: append([]float64(nil), coeffs...)}
	for deg := 1; deg < len(coeffs); deg++ {
		ps.degrees = append(ps.degrees, NewTensorSketch(rng, d, deg, width))
	}
	return ps
}

// Left returns the data-side embedding of x.
func (ps *PolySketch) Left(x []float64) []float64 {
	return ps.embed(x, true)
}

// Right returns the query-side embedding of y.
func (ps *PolySketch) Right(y []float64) []float64 {
	return ps.embed(y, false)
}

func (ps *PolySketch) embed(x []float64, left bool) []float64 {
	var out []float64
	// Constant term: a_0 contributes a fixed coordinate pair
	// sqrt|a_0| * sign factor.
	a0 := ps.coeffs[0]
	switch {
	case a0 == 0:
		out = append(out, 0)
	case left:
		out = append(out, sqrtAbs(a0))
	default:
		out = append(out, a0/sqrtAbs(a0))
	}
	for i, ts := range ps.degrees {
		ai := ps.coeffs[i+1]
		sk := ts.Apply(x)
		var scale float64
		switch {
		case ai == 0:
			scale = 0
		case left:
			scale = sqrtAbs(ai)
		default:
			scale = ai / sqrtAbs(ai)
		}
		for _, v := range sk {
			out = append(out, scale*v)
		}
	}
	return out
}

func sqrtAbs(a float64) float64 {
	return math.Sqrt(math.Abs(a))
}
