package sketch

import (
	"math"
	"testing"

	"dsh/internal/stats"
	"dsh/internal/vec"
	"dsh/internal/xrand"
)

func TestCountSketchLinearity(t *testing.T) {
	rng := xrand.New(1)
	cs := NewCountSketch(rng, 20, 8)
	x := vec.Gaussian(rng, 20)
	y := vec.Gaussian(rng, 20)
	sx := cs.Apply(x)
	sy := cs.Apply(y)
	sxy := cs.Apply(vec.Add(x, y))
	for i := range sxy {
		if math.Abs(sxy[i]-(sx[i]+sy[i])) > 1e-12 {
			t.Fatalf("not linear at %d", i)
		}
	}
}

func TestCountSketchPreservesNormInExpectation(t *testing.T) {
	rng := xrand.New(2)
	x := vec.RandomUnit(rng, 30)
	const reps = 3000
	var sum float64
	for i := 0; i < reps; i++ {
		cs := NewCountSketch(rng, 30, 16)
		s := cs.Apply(x)
		sum += vec.Dot(s, s)
	}
	mean := sum / reps
	if math.Abs(mean-1) > 0.05 {
		t.Fatalf("E[|CS(x)|^2] = %v, want ~1", mean)
	}
}

func TestCountSketchInnerProductUnbiased(t *testing.T) {
	rng := xrand.New(3)
	x, y := vec.UnitPairWithDot(rng, 25, 0.6)
	const reps = 5000
	var sum float64
	for i := 0; i < reps; i++ {
		cs := NewCountSketch(rng, 25, 16)
		sum += vec.Dot(cs.Apply(x), cs.Apply(y))
	}
	mean := sum / reps
	if math.Abs(mean-0.6) > 0.04 {
		t.Fatalf("E[<CS(x),CS(y)>] = %v, want ~0.6", mean)
	}
}

func TestCountSketchPanics(t *testing.T) {
	rng := xrand.New(4)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("bad dims should panic")
			}
		}()
		NewCountSketch(rng, 0, 4)
	}()
	cs := NewCountSketch(rng, 5, 4)
	defer func() {
		if recover() == nil {
			t.Error("dimension mismatch should panic")
		}
	}()
	cs.Apply(make([]float64, 6))
}

func TestTensorSketchDegree1MatchesCountSketch(t *testing.T) {
	rng := xrand.New(5)
	ts := NewTensorSketch(rng, 10, 1, 8)
	x := vec.Gaussian(rng, 10)
	if got := ts.Apply(x); len(got) != 8 {
		t.Fatalf("width = %d", len(got))
	}
}

func TestTensorSketchInnerProduct(t *testing.T) {
	rng := xrand.New(6)
	for _, k := range []int{2, 3} {
		for _, alpha := range []float64{0.8, 0.3, -0.5} {
			x, y := vec.UnitPairWithDot(rng, 16, alpha)
			want := math.Pow(alpha, float64(k))
			const reps = 4000
			var sum float64
			for i := 0; i < reps; i++ {
				ts := NewTensorSketch(rng, 16, k, 64)
				sum += vec.Dot(ts.Apply(x), ts.Apply(y))
			}
			mean := sum / reps
			if math.Abs(mean-want) > 0.05 {
				t.Fatalf("k=%d alpha=%v: E[<TS,TS>] = %v, want %v", k, alpha, mean, want)
			}
		}
	}
}

func TestTensorSketchWidthRounded(t *testing.T) {
	rng := xrand.New(7)
	ts := NewTensorSketch(rng, 8, 2, 100)
	if ts.Width() != 128 {
		t.Fatalf("width = %d, want 128", ts.Width())
	}
	if ts.Degree() != 2 {
		t.Fatalf("degree = %d", ts.Degree())
	}
}

func TestPolySketchApproximatesPolynomial(t *testing.T) {
	rng := xrand.New(8)
	// P(t) = 0.2 - 0.3 t + 0.5 t^2 (abs coeff sum 1).
	coeffs := []float64{0.2, -0.3, 0.5}
	evalP := func(a float64) float64 { return 0.2 - 0.3*a + 0.5*a*a }
	for _, alpha := range []float64{-0.7, 0, 0.5, 0.9} {
		x, y := vec.UnitPairWithDot(rng, 12, alpha)
		const reps = 3000
		var sum float64
		for i := 0; i < reps; i++ {
			ps := NewPolySketch(rng, 12, coeffs, 32)
			sum += vec.Dot(ps.Left(x), ps.Right(y))
		}
		mean := sum / reps
		if math.Abs(mean-evalP(alpha)) > 0.05 {
			t.Fatalf("alpha=%v: mean = %v, want %v", alpha, mean, evalP(alpha))
		}
	}
}

func TestPolySketchZeroAndNegativeCoefficients(t *testing.T) {
	rng := xrand.New(9)
	// P(t) = -t^3 (pure negative monomial).
	coeffs := []float64{0, 0, 0, -1}
	alpha := 0.6
	x, y := vec.UnitPairWithDot(rng, 10, alpha)
	const reps = 3000
	var sum float64
	for i := 0; i < reps; i++ {
		ps := NewPolySketch(rng, 10, coeffs, 64)
		sum += vec.Dot(ps.Left(x), ps.Right(y))
	}
	mean := sum / reps
	want := -math.Pow(alpha, 3)
	if math.Abs(mean-want) > 0.04 {
		t.Fatalf("mean = %v, want %v", mean, want)
	}
}

func TestPolySketchPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty coefficients should panic")
		}
	}()
	NewPolySketch(xrand.New(1), 4, nil, 8)
}

func TestTensorSketchVarianceShrinksWithWidth(t *testing.T) {
	rng := xrand.New(10)
	x, y := vec.UnitPairWithDot(rng, 16, 0.5)
	variance := func(width int) float64 {
		const reps = 1500
		vals := make([]float64, reps)
		for i := 0; i < reps; i++ {
			ts := NewTensorSketch(rng, 16, 2, width)
			vals[i] = vec.Dot(ts.Apply(x), ts.Apply(y))
		}
		return stats.Variance(vals)
	}
	v16 := variance(16)
	v256 := variance(256)
	if v256 >= v16 {
		t.Fatalf("variance did not shrink: width16=%v width256=%v", v16, v256)
	}
}

func BenchmarkTensorSketchApply(b *testing.B) {
	rng := xrand.New(1)
	ts := NewTensorSketch(rng, 128, 3, 256)
	x := vec.RandomUnit(rng, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts.Apply(x)
	}
}
