package workload

import (
	"math"
	"testing"

	"dsh/internal/bitvec"
	"dsh/internal/vec"
	"dsh/internal/xrand"
)

func TestSpherePoints(t *testing.T) {
	rng := xrand.New(1)
	pts := SpherePoints(rng, 50, 8)
	if len(pts) != 50 {
		t.Fatalf("n = %d", len(pts))
	}
	for _, p := range pts {
		if math.Abs(vec.Norm(p)-1) > 1e-12 {
			t.Fatal("not unit norm")
		}
	}
}

func TestNewPlantedSphere(t *testing.T) {
	rng := xrand.New(2)
	alphas := []float64{0.9, 0.5, -0.2}
	ds := NewPlantedSphere(rng, 16, 100, alphas)
	if len(ds.Points) != 103 {
		t.Fatalf("points = %d", len(ds.Points))
	}
	if math.Abs(vec.Norm(ds.Query)-1) > 1e-12 {
		t.Fatal("query not unit")
	}
	for i, idx := range ds.PlantedIdx {
		got := vec.Dot(ds.Points[idx], ds.Query)
		if math.Abs(got-alphas[i]) > 1e-9 {
			t.Errorf("planted %d has alpha %v, want %v", i, got, alphas[i])
		}
	}
}

func TestArticleCorpus(t *testing.T) {
	rng := xrand.New(3)
	c := NewArticleCorpus(rng, 24, 5, 20, 0.3)
	if len(c.Points) != 100 || len(c.Topic) != 100 || len(c.Centers) != 5 {
		t.Fatalf("sizes wrong: %d %d %d", len(c.Points), len(c.Topic), len(c.Centers))
	}
	// Same-topic points should be closer (higher dot) to their centroid
	// than to other centroids, most of the time.
	good := 0
	for i, p := range c.Points {
		own := vec.Dot(p, c.Centers[c.Topic[i]])
		best := true
		for tt, ctr := range c.Centers {
			if tt != c.Topic[i] && vec.Dot(p, ctr) > own {
				best = false
				break
			}
		}
		if best {
			good++
		}
	}
	if good < 90 {
		t.Errorf("only %d/100 points nearest their own centroid", good)
	}
}

func TestNewPlantedHamming(t *testing.T) {
	rng := xrand.New(4)
	rs := []int{0, 5, 30}
	ds := NewPlantedHamming(rng, 128, 50, rs)
	if len(ds.Points) != 53 {
		t.Fatalf("points = %d", len(ds.Points))
	}
	for i, idx := range ds.PlantedIdx {
		if got := bitvec.Distance(ds.Points[idx], ds.Query); got != rs[i] {
			t.Errorf("planted %d at distance %d, want %d", i, got, rs[i])
		}
	}
}

func TestScanners(t *testing.T) {
	rng := xrand.New(5)
	ds := NewPlantedSphere(rng, 16, 200, []float64{0.95, 0.6, 0.1})
	ann := ScanSphereAnnulus(ds.Points, ds.Query, 0.55, 0.65)
	found := false
	for _, i := range ann {
		if i == ds.PlantedIdx[1] {
			found = true
		}
		a := vec.Dot(ds.Points[i], ds.Query)
		if a < 0.55 || a > 0.65 {
			t.Errorf("annulus scan returned alpha %v", a)
		}
	}
	if !found {
		t.Error("annulus scan missed the planted point")
	}

	rangeHits := ScanSphereRange(ds.Points, ds.Query, 0.9)
	foundClose := false
	for _, i := range rangeHits {
		if i == ds.PlantedIdx[0] {
			foundClose = true
		}
	}
	if !foundClose {
		t.Error("range scan missed the 0.95 point")
	}

	if best := ScanNearest(ds.Points, ds.Query); best != ds.PlantedIdx[0] {
		got := vec.Dot(ds.Points[best], ds.Query)
		if got < 0.95 {
			t.Errorf("nearest scan returned alpha %v", got)
		}
	}
}

func TestHammingPoints(t *testing.T) {
	rng := xrand.New(6)
	pts := HammingPoints(rng, 10, 100)
	if len(pts) != 10 {
		t.Fatalf("n = %d", len(pts))
	}
	for _, p := range pts {
		if p.Dim() != 100 {
			t.Fatal("wrong dimension")
		}
	}
}
