// Package workload generates the synthetic datasets used by the examples,
// experiments and benchmarks: uniform points on the unit sphere with
// planted annulus/near-neighbor structure, clustered "article embedding"
// corpora for the paper's recommender motivating example, and Hamming-cube
// workloads. It also provides exact brute-force scanners used as ground
// truth and as the linear-scan baseline.
package workload

import (
	"math"

	"dsh/internal/bitvec"
	"dsh/internal/vec"
	"dsh/internal/xrand"
)

// SpherePoints returns n independent uniform points on S^{d-1}.
func SpherePoints(rng *xrand.Rand, n, d int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = vec.RandomUnit(rng, d)
	}
	return out
}

// PlantedSphere is a sphere dataset with one query and a set of points
// planted at prescribed inner products from it, hidden among uniform noise.
type PlantedSphere struct {
	Query  []float64
	Points [][]float64
	// PlantedIdx[i] is the index in Points of the point planted at
	// PlantedAlpha[i].
	PlantedIdx   []int
	PlantedAlpha []float64
}

// NewPlantedSphere builds a dataset of nNoise uniform points plus one
// planted point per entry of alphas, all shuffled together.
func NewPlantedSphere(rng *xrand.Rand, d, nNoise int, alphas []float64) *PlantedSphere {
	q := vec.RandomUnit(rng, d)
	pts := make([][]float64, 0, nNoise+len(alphas))
	for i := 0; i < nNoise; i++ {
		pts = append(pts, vec.RandomUnit(rng, d))
	}
	planted := make([]int, len(alphas))
	for i, a := range alphas {
		x := pointAtAlpha(rng, q, a)
		planted[i] = len(pts)
		pts = append(pts, x)
	}
	// Shuffle, tracking planted indices.
	where := make([]int, len(pts))
	for i := range where {
		where[i] = i
	}
	rng.Shuffle(len(pts), func(i, j int) {
		pts[i], pts[j] = pts[j], pts[i]
		where[i], where[j] = where[j], where[i]
	})
	inv := make(map[int]int, len(where))
	for pos, orig := range where {
		inv[orig] = pos
	}
	for i := range planted {
		planted[i] = inv[planted[i]]
	}
	return &PlantedSphere{
		Query:        q,
		Points:       pts,
		PlantedIdx:   planted,
		PlantedAlpha: append([]float64(nil), alphas...),
	}
}

// PointAtAlpha returns a unit vector with <q, x> = alpha, random otherwise.
func PointAtAlpha(rng *xrand.Rand, q []float64, alpha float64) []float64 {
	return pointAtAlpha(rng, q, alpha)
}

// pointAtAlpha returns a unit vector with <q, x> = alpha, random otherwise.
func pointAtAlpha(rng *xrand.Rand, q []float64, alpha float64) []float64 {
	d := len(q)
	for {
		g := vec.Gaussian(rng, d)
		vec.Axpy(-vec.Dot(g, q), q, g)
		if vec.Norm(g) > 1e-9 {
			u := vec.Normalize(g)
			x := vec.Scaled(q, alpha)
			vec.Axpy(math.Sqrt(1-alpha*alpha), u, x)
			return x
		}
	}
}

// ArticleCorpus models the paper's recommender-system motivating example:
// articles grouped into topics, with embeddings clustered around unit
// topic centroids.
type ArticleCorpus struct {
	Centers [][]float64
	Points  [][]float64
	Topic   []int // Topic[i] is the topic of Points[i]
}

// NewArticleCorpus generates nTopics topic centroids and perArticle points
// per topic at dispersion sigma (noise scale before renormalization).
// Smaller sigma means tighter topics.
func NewArticleCorpus(rng *xrand.Rand, d, nTopics, perTopic int, sigma float64) *ArticleCorpus {
	c := &ArticleCorpus{}
	for t := 0; t < nTopics; t++ {
		center := vec.RandomUnit(rng, d)
		c.Centers = append(c.Centers, center)
		for j := 0; j < perTopic; j++ {
			p := vec.Clone(center)
			vec.Axpy(sigma, vec.Gaussian(rng, d), p)
			vec.Normalize(p)
			c.Points = append(c.Points, p)
			c.Topic = append(c.Topic, t)
		}
	}
	return c
}

// HierarchicalCorpus is a two-level clustered dataset: topics containing
// subtopics containing points. Within-subtopic pairs are near-duplicates
// (high similarity), same-topic cross-subtopic pairs land at intermediate
// similarity (the "related but distinct" band an annulus join targets),
// and cross-topic pairs are near-orthogonal.
type HierarchicalCorpus struct {
	Points   [][]float64
	Topic    []int
	Subtopic []int // globally unique subtopic id
}

// NewHierarchicalCorpus generates the corpus. sigmaSub controls subtopic
// spread within a topic, sigmaPoint the point spread within a subtopic
// (per-coordinate Gaussian scale before renormalization; the expected
// similarity between a center and its perturbation is ~1/sqrt(1+sigma^2*d)).
func NewHierarchicalCorpus(rng *xrand.Rand, d, topics, subPerTopic, perSub int, sigmaSub, sigmaPoint float64) *HierarchicalCorpus {
	c := &HierarchicalCorpus{}
	sub := 0
	for t := 0; t < topics; t++ {
		center := vec.RandomUnit(rng, d)
		for s := 0; s < subPerTopic; s++ {
			sc := vec.Clone(center)
			vec.Axpy(sigmaSub, vec.Gaussian(rng, d), sc)
			vec.Normalize(sc)
			for p := 0; p < perSub; p++ {
				pt := vec.Clone(sc)
				vec.Axpy(sigmaPoint, vec.Gaussian(rng, d), pt)
				vec.Normalize(pt)
				c.Points = append(c.Points, pt)
				c.Topic = append(c.Topic, t)
				c.Subtopic = append(c.Subtopic, sub)
			}
			sub++
		}
	}
	return c
}

// HammingPoints returns n uniform points of {0,1}^d.
func HammingPoints(rng *xrand.Rand, n, d int) []bitvec.Vector {
	out := make([]bitvec.Vector, n)
	for i := range out {
		out[i] = bitvec.Random(rng, d)
	}
	return out
}

// PlantedHamming builds a Hamming dataset with a query, noise points, and
// points planted at exact distances rs from the query.
type PlantedHamming struct {
	Query      bitvec.Vector
	Points     []bitvec.Vector
	PlantedIdx []int
	PlantedR   []int
}

// NewPlantedHamming returns nNoise uniform points plus one planted point at
// each distance in rs.
func NewPlantedHamming(rng *xrand.Rand, d, nNoise int, rs []int) *PlantedHamming {
	q := bitvec.Random(rng, d)
	pts := make([]bitvec.Vector, 0, nNoise+len(rs))
	for i := 0; i < nNoise; i++ {
		pts = append(pts, bitvec.Random(rng, d))
	}
	planted := make([]int, len(rs))
	for i, r := range rs {
		planted[i] = len(pts)
		pts = append(pts, bitvec.AtDistance(rng, q, r))
	}
	return &PlantedHamming{Query: q, Points: pts, PlantedIdx: planted, PlantedR: append([]int(nil), rs...)}
}

// ScanSphereAnnulus returns the indices of all points whose inner product
// with q lies in [alphaLo, alphaHi] (the brute-force annulus ground truth).
func ScanSphereAnnulus(points [][]float64, q []float64, alphaLo, alphaHi float64) []int {
	var out []int
	for i, p := range points {
		a := vec.Dot(p, q)
		if a >= alphaLo && a <= alphaHi {
			out = append(out, i)
		}
	}
	return out
}

// ScanSphereRange returns the indices of all points with inner product at
// least alphaMin with q (i.e. within the corresponding distance).
func ScanSphereRange(points [][]float64, q []float64, alphaMin float64) []int {
	var out []int
	for i, p := range points {
		if vec.Dot(p, q) >= alphaMin {
			out = append(out, i)
		}
	}
	return out
}

// ScanNearest returns the index of the point maximizing <p, q>.
func ScanNearest(points [][]float64, q []float64) int {
	best, bestDot := -1, math.Inf(-1)
	for i, p := range points {
		if d := vec.Dot(p, q); d > bestDot {
			best, bestDot = i, d
		}
	}
	return best
}
