package workload

import (
	"fmt"
	"math"

	"dsh/internal/core"
	"dsh/internal/sphere"
)

// ServingFamily resolves a benchmark/server -family flag into a hash
// family plus a repetition count, shared by cmd/dshbench and cmd/dshserve
// so the two tools accept identical names and build identical indexes:
//
//	cp            dense cross-polytope (O(d^2) Gaussian rotation per eval)
//	fastcp        FFT-accelerated cross-polytope (O(d log d) pseudo-rotation)
//	simhash       SimHash^6 via the generic Power combinator (scalar hashing)
//	batchsimhash  row-packed SimHash k=6 implementing core.BatchHasher
//
// cp and fastcp derive L from the asymptotic CPF at alpha = 0.5 (L =
// ceil(1/f), the standard repetition count for constant success
// probability) so their runs are directly comparable; the simhash pair
// keeps the historical L = 32 so simhash reproduces the old churn-mode
// default exactly.
func ServingFamily(name string, dim int) (core.Family[[]float64], int, error) {
	switch name {
	case "cp":
		fam := sphere.CrossPolytope(dim)
		return fam, repetitionsFor(fam.CPF().Eval(0.5)), nil
	case "fastcp":
		fam := sphere.FastCrossPolytope(dim)
		return fam, repetitionsFor(fam.CPF().Eval(0.5)), nil
	case "simhash":
		return core.Power[[]float64](sphere.SimHash(dim), 6), 32, nil
	case "batchsimhash":
		return sphere.PackedSimHash(dim, 6), 32, nil
	}
	return nil, 0, fmt.Errorf("unknown family %q (want cp, fastcp, simhash or batchsimhash)", name)
}

// repetitionsFor is L = ceil(1/f), mirroring index.RepetitionsForCPF
// without pulling the index package into workload's dependency set.
func repetitionsFor(f float64) int {
	if f >= 1 {
		return 1
	}
	return int(math.Ceil(1 / f))
}
