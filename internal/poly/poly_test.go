package poly

import (
	"math"
	"math/cmplx"
	"sort"
	"testing"
	"testing/quick"

	"dsh/internal/xrand"
)

func TestNewTrimsZeros(t *testing.T) {
	p := New(1, 2, 0, 0)
	if p.Degree() != 1 {
		t.Fatalf("degree = %d, want 1", p.Degree())
	}
	z := New(0, 0)
	if !z.IsZero() || z.Degree() != -1 {
		t.Fatal("zero polynomial not recognized")
	}
}

func TestEvalHorner(t *testing.T) {
	p := New(1, -2, 3) // 3t^2 - 2t + 1
	cases := []struct{ x, want float64 }{
		{0, 1}, {1, 2}, {2, 9}, {-1, 6},
	}
	for _, c := range cases {
		if got := p.Eval(c.x); got != c.want {
			t.Errorf("p(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestEvalC(t *testing.T) {
	p := New(1, 0, 1) // t^2 + 1
	got := p.EvalC(complex(0, 1))
	if cmplx.Abs(got) > 1e-15 {
		t.Errorf("p(i) = %v, want 0", got)
	}
}

func TestArithmetic(t *testing.T) {
	p := New(1, 1)  // 1 + t
	q := New(-1, 1) // -1 + t
	sum := p.Add(q)
	if sum.Degree() != 1 || sum.Coeffs[0] != 0 || sum.Coeffs[1] != 2 {
		t.Errorf("Add = %v", sum)
	}
	prod := p.Mul(q) // t^2 - 1
	if prod.Degree() != 2 || prod.Coeffs[0] != -1 || prod.Coeffs[1] != 0 || prod.Coeffs[2] != 1 {
		t.Errorf("Mul = %v", prod)
	}
	if got := p.Scale(3); got.Coeffs[0] != 3 || got.Coeffs[1] != 3 {
		t.Errorf("Scale = %v", got)
	}
	if !p.Mul(Poly{}).IsZero() {
		t.Error("p * 0 should be zero")
	}
}

func TestDerivative(t *testing.T) {
	p := New(5, 3, 0, 2) // 2t^3 + 3t + 5
	d := p.Derivative()  // 6t^2 + 3
	if d.Degree() != 2 || d.Coeffs[0] != 3 || d.Coeffs[1] != 0 || d.Coeffs[2] != 6 {
		t.Errorf("Derivative = %v", d)
	}
	if !New(7).Derivative().IsZero() {
		t.Error("derivative of constant should be zero")
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		p    Poly
		want string
	}{
		{New(1, -1, 2), "2t^2 - t + 1"},
		{New(0), "0"},
		{New(0, 1), "t"},
		{New(-1), "-1"},
	}
	for _, c := range cases {
		if got := c.p.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestCoeffSums(t *testing.T) {
	p := New(-0.5, 0.25, 0.25)
	if got := p.AbsCoeffSum(); got != 1 {
		t.Errorf("AbsCoeffSum = %v", got)
	}
	if got := p.CoeffSum(); got != 0 {
		t.Errorf("CoeffSum = %v", got)
	}
	q := New(2, 2).NormalizeAbsSum()
	if q.AbsCoeffSum() != 1 {
		t.Errorf("normalized sum = %v", q.AbsCoeffSum())
	}
}

func TestFromRoots(t *testing.T) {
	p := FromRoots(2, 1, -3) // 2(t-1)(t+3) = 2t^2 + 4t - 6
	if p.Coeffs[0] != -6 || p.Coeffs[1] != 4 || p.Coeffs[2] != 2 {
		t.Errorf("FromRoots = %v", p)
	}
}

func TestChebyshev(t *testing.T) {
	// T_2 = 2t^2 - 1; T_3 = 4t^3 - 3t; T_5 = 16t^5 - 20t^3 + 5t.
	t2 := Chebyshev(2)
	if t2.Coeffs[0] != -1 || t2.Coeffs[2] != 2 {
		t.Errorf("T2 = %v", t2)
	}
	t3 := Chebyshev(3)
	if t3.Coeffs[1] != -3 || t3.Coeffs[3] != 4 {
		t.Errorf("T3 = %v", t3)
	}
	t5 := Chebyshev(5)
	if t5.Coeffs[1] != 5 || t5.Coeffs[3] != -20 || t5.Coeffs[5] != 16 {
		t.Errorf("T5 = %v", t5)
	}
	// Defining property: T_n(cos x) = cos(n x).
	for n := 0; n <= 6; n++ {
		tn := Chebyshev(n)
		for _, x := range []float64{0.1, 0.9, 2.0} {
			got := tn.Eval(math.Cos(x))
			want := math.Cos(float64(n) * x)
			if math.Abs(got-want) > 1e-10 {
				t.Errorf("T_%d(cos %v) = %v, want %v", n, x, got, want)
			}
		}
	}
}

func sortComplex(zs []complex128) {
	sort.Slice(zs, func(i, j int) bool {
		if real(zs[i]) != real(zs[j]) {
			return real(zs[i]) < real(zs[j])
		}
		return imag(zs[i]) < imag(zs[j])
	})
}

func TestRootsQuadratic(t *testing.T) {
	p := New(-6, 1, 1) // (t-2)(t+3)
	roots := p.Roots()
	sortComplex(roots)
	if cmplx.Abs(roots[0]-complex(-3, 0)) > 1e-9 || cmplx.Abs(roots[1]-complex(2, 0)) > 1e-9 {
		t.Errorf("roots = %v", roots)
	}
}

func TestRootsComplexPair(t *testing.T) {
	p := New(1, 0, 1) // t^2 + 1 => +/- i
	roots := p.Roots()
	sortComplex(roots)
	if cmplx.Abs(roots[0]-complex(0, -1)) > 1e-9 || cmplx.Abs(roots[1]-complex(0, 1)) > 1e-9 {
		t.Errorf("roots = %v", roots)
	}
}

func TestRootsRepeated(t *testing.T) {
	p := FromRoots(1, 2, 2, 2) // (t-2)^3
	roots := p.Roots()
	for _, z := range roots {
		if cmplx.Abs(z-complex(2, 0)) > 1e-4 {
			t.Errorf("repeated root estimate %v too far from 2", z)
		}
	}
}

func TestRootsReconstructQuick(t *testing.T) {
	// Random polynomials from well-separated random real roots: the found
	// roots must reproduce the originals as a multiset. (Repeated roots are
	// inherently ill-conditioned and are covered by TestRootsRepeated.)
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 1 + rng.Intn(5)
		var want []float64
	draw:
		for len(want) < n {
			c := rng.Float64Range(-3, 3)
			for _, w := range want {
				if math.Abs(c-w) < 0.3 {
					continue draw
				}
			}
			want = append(want, c)
		}
		p := FromRoots(1+rng.Float64(), want...)
		got := p.Roots()
		re := make([]float64, len(got))
		for i, z := range got {
			if math.Abs(imag(z)) > 1e-7 {
				return false
			}
			re[i] = real(z)
		}
		sort.Float64s(want)
		sort.Float64s(re)
		for i := range want {
			if math.Abs(want[i]-re[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRootsResidualQuick(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 1 + rng.Intn(6)
		coeffs := make([]float64, n+1)
		for i := range coeffs {
			coeffs[i] = rng.Float64Range(-2, 2)
		}
		if math.Abs(coeffs[n]) < 0.1 {
			coeffs[n] = 1
		}
		p := New(coeffs...)
		if p.Degree() < 1 {
			return true
		}
		scale := 0.0
		for _, c := range p.Coeffs {
			scale += math.Abs(c)
		}
		for _, z := range p.Roots() {
			zn := math.Pow(cmplx.Abs(z)+1, float64(p.Degree()))
			if cmplx.Abs(p.EvalC(z)) > 1e-6*scale*zn {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestRootsPanicsOnConstant(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Roots of constant should panic")
		}
	}()
	New(3).Roots()
}

func TestClassifyRoots(t *testing.T) {
	// P(t) = (t+2)(t-3)(t^2+2t+5): complex pair -1±2i.
	p := FromRoots(1, -2, 3).Mul(New(5, 2, 1))
	rc := ClassifyRoots(p)
	if len(rc.Real) != 2 {
		t.Fatalf("real roots = %v", rc.Real)
	}
	sort.Float64s(rc.Real)
	if math.Abs(rc.Real[0]+2) > 1e-8 || math.Abs(rc.Real[1]-3) > 1e-8 {
		t.Fatalf("real roots = %v", rc.Real)
	}
	if len(rc.ComplexPairs) != 1 {
		t.Fatalf("complex pairs = %v", rc.ComplexPairs)
	}
	z := rc.ComplexPairs[0]
	if math.Abs(real(z)+1) > 1e-8 || math.Abs(imag(z)-2) > 1e-8 {
		t.Fatalf("complex pair representative = %v", z)
	}
	// Negative real parts: root -2 (1) + pair -1±2i (2) = 3.
	if rc.NumNegativeRealPart != 3 {
		t.Fatalf("NumNegativeRealPart = %d, want 3", rc.NumNegativeRealPart)
	}
}

func TestHasRootWithRealPartIn(t *testing.T) {
	p := FromRoots(1, 0.5, -2) // root at 0.5 inside (0,1)
	if !HasRootWithRealPartIn(p, 0, 1) {
		t.Error("should detect root in (0,1)")
	}
	q := FromRoots(1, -0.5, 2)
	if HasRootWithRealPartIn(q, 0, 1) {
		t.Error("no root in (0,1) expected")
	}
}

func TestMonomialTaylor(t *testing.T) {
	// exp truncation: 1 + t + t^2/2.
	p := MonomialTaylor(2, func(i int) float64 {
		f := 1.0
		for j := 2; j <= i; j++ {
			f *= float64(j)
		}
		return 1 / f
	})
	if math.Abs(p.Eval(0.1)-1.105) > 1e-12 {
		t.Errorf("Taylor eval = %v", p.Eval(0.1))
	}
}
