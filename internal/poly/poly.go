// Package poly implements real-coefficient polynomial arithmetic and complex
// root finding. The Theorem 5.2 construction in the paper builds a Hamming
// DSH family whose collision probability is P(t)/Delta by factoring P over
// its complex roots; this package supplies the factorization, the root
// classification (positive real, negative real, conjugate complex pairs),
// and the Chebyshev generators used by Figure 4.
package poly

import (
	"fmt"
	"math"
	"math/cmplx"
	"strings"
)

// Poly is a polynomial with real coefficients. Coeffs[i] is the coefficient
// of t^i. The zero value represents the zero polynomial.
type Poly struct {
	Coeffs []float64
}

// New returns a polynomial with the given coefficients (constant term
// first), trimming trailing zero coefficients.
func New(coeffs ...float64) Poly {
	p := Poly{Coeffs: append([]float64(nil), coeffs...)}
	p.trim()
	return p
}

func (p *Poly) trim() {
	n := len(p.Coeffs)
	for n > 0 && p.Coeffs[n-1] == 0 {
		n--
	}
	p.Coeffs = p.Coeffs[:n]
}

// Degree returns the degree of p, with -1 for the zero polynomial.
func (p Poly) Degree() int { return len(p.Coeffs) - 1 }

// IsZero reports whether p is the zero polynomial.
func (p Poly) IsZero() bool { return len(p.Coeffs) == 0 }

// Leading returns the leading coefficient, 0 for the zero polynomial.
func (p Poly) Leading() float64 {
	if p.IsZero() {
		return 0
	}
	return p.Coeffs[len(p.Coeffs)-1]
}

// Eval evaluates p at x by Horner's rule.
func (p Poly) Eval(x float64) float64 {
	var acc float64
	for i := len(p.Coeffs) - 1; i >= 0; i-- {
		acc = acc*x + p.Coeffs[i]
	}
	return acc
}

// EvalC evaluates p at a complex point by Horner's rule.
func (p Poly) EvalC(z complex128) complex128 {
	var acc complex128
	for i := len(p.Coeffs) - 1; i >= 0; i-- {
		acc = acc*z + complex(p.Coeffs[i], 0)
	}
	return acc
}

// Add returns p + q.
func (p Poly) Add(q Poly) Poly {
	n := max(len(p.Coeffs), len(q.Coeffs))
	out := make([]float64, n)
	for i := range out {
		if i < len(p.Coeffs) {
			out[i] += p.Coeffs[i]
		}
		if i < len(q.Coeffs) {
			out[i] += q.Coeffs[i]
		}
	}
	return New(out...)
}

// Scale returns c * p.
func (p Poly) Scale(c float64) Poly {
	out := make([]float64, len(p.Coeffs))
	for i, v := range p.Coeffs {
		out[i] = c * v
	}
	return New(out...)
}

// Mul returns p * q by schoolbook convolution.
func (p Poly) Mul(q Poly) Poly {
	if p.IsZero() || q.IsZero() {
		return Poly{}
	}
	out := make([]float64, len(p.Coeffs)+len(q.Coeffs)-1)
	for i, a := range p.Coeffs {
		for j, b := range q.Coeffs {
			out[i+j] += a * b
		}
	}
	return New(out...)
}

// Derivative returns p'.
func (p Poly) Derivative() Poly {
	if len(p.Coeffs) <= 1 {
		return Poly{}
	}
	out := make([]float64, len(p.Coeffs)-1)
	for i := 1; i < len(p.Coeffs); i++ {
		out[i-1] = float64(i) * p.Coeffs[i]
	}
	return New(out...)
}

// String renders p in conventional notation, e.g. "2t^3 - t + 1".
func (p Poly) String() string {
	if p.IsZero() {
		return "0"
	}
	var parts []string
	for i := len(p.Coeffs) - 1; i >= 0; i-- {
		c := p.Coeffs[i]
		if c == 0 {
			continue
		}
		var term string
		abs := math.Abs(c)
		switch {
		case i == 0:
			term = fmt.Sprintf("%g", abs)
		case i == 1:
			if abs == 1 {
				term = "t"
			} else {
				term = fmt.Sprintf("%gt", abs)
			}
		default:
			if abs == 1 {
				term = fmt.Sprintf("t^%d", i)
			} else {
				term = fmt.Sprintf("%gt^%d", abs, i)
			}
		}
		if len(parts) == 0 {
			if c < 0 {
				term = "-" + term
			}
		} else if c < 0 {
			term = "- " + term
		} else {
			term = "+ " + term
		}
		parts = append(parts, term)
	}
	return strings.Join(parts, " ")
}

// AbsCoeffSum returns the sum of absolute values of the coefficients; the
// Theorem 5.1 construction requires this to be 1.
func (p Poly) AbsCoeffSum() float64 {
	var s float64
	for _, c := range p.Coeffs {
		s += math.Abs(c)
	}
	return s
}

// CoeffSum returns the plain sum of coefficients, i.e. p(1).
func (p Poly) CoeffSum() float64 {
	var s float64
	for _, c := range p.Coeffs {
		s += c
	}
	return s
}

// NormalizeAbsSum returns p scaled so its absolute coefficient sum is 1.
// It panics for the zero polynomial.
func (p Poly) NormalizeAbsSum() Poly {
	s := p.AbsCoeffSum()
	if s == 0 {
		panic("poly: cannot normalize zero polynomial")
	}
	return p.Scale(1 / s)
}

// FromRoots returns leading * prod (t - r_i) for real roots r_i.
func FromRoots(leading float64, roots ...float64) Poly {
	p := New(leading)
	for _, r := range roots {
		p = p.Mul(New(-r, 1))
	}
	return p
}

// Chebyshev returns the Chebyshev polynomial of the first kind T_n, the
// family used in Figure 4 of the paper (after absolute-sum normalization).
func Chebyshev(n int) Poly {
	if n < 0 {
		panic("poly: negative Chebyshev index")
	}
	t0 := New(1)
	if n == 0 {
		return t0
	}
	t1 := New(0, 1)
	if n == 1 {
		return t1
	}
	two := New(0, 2)
	for i := 2; i <= n; i++ {
		t2 := two.Mul(t1).Add(t0.Scale(-1))
		t0, t1 = t1, t2
	}
	return t1
}

// MonomialTaylor returns the degree-k truncation of the Taylor series given
// by coefficient function c(i), as a convenience for approximating analytic
// CPFs (Section 5 of the paper notes any Taylor-representable f can be
// matched after truncation).
func MonomialTaylor(k int, c func(i int) float64) Poly {
	coeffs := make([]float64, k+1)
	for i := 0; i <= k; i++ {
		coeffs[i] = c(i)
	}
	return New(coeffs...)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Roots returns the complex roots of p (with multiplicity) computed by the
// Durand-Kerner (Weierstrass) iteration, polished with Newton steps.
// It panics for polynomials of degree < 1.
func (p Poly) Roots() []complex128 {
	n := p.Degree()
	if n < 1 {
		panic("poly: Roots requires degree >= 1")
	}
	// Normalize to monic to improve conditioning.
	monic := make([]complex128, n+1)
	lead := p.Coeffs[n]
	for i, c := range p.Coeffs {
		monic[i] = complex(c/lead, 0)
	}
	evalMonic := func(z complex128) complex128 {
		acc := complex(1, 0)
		for i := n - 1; i >= 0; i-- {
			acc = acc*z + monic[i]
		}
		return acc
	}

	// Initial guesses on a circle of radius related to the coefficient
	// bound, with an irrational angle offset to break symmetry.
	radius := 0.0
	for i := 0; i < n; i++ {
		radius = math.Max(radius, math.Abs(real(monic[i])))
	}
	radius = 1 + radius
	roots := make([]complex128, n)
	for i := range roots {
		theta := 2*math.Pi*float64(i)/float64(n) + 0.3951827
		roots[i] = complex(radius*math.Cos(theta), radius*math.Sin(theta))
	}

	// Durand-Kerner iterations.
	const maxIter = 500
	for iter := 0; iter < maxIter; iter++ {
		maxDelta := 0.0
		for i := range roots {
			num := evalMonic(roots[i])
			den := complex(1, 0)
			for j := range roots {
				if j != i {
					den *= roots[i] - roots[j]
				}
			}
			if den == 0 {
				// Perturb coincident estimates.
				roots[i] += complex(1e-8, 1e-8)
				continue
			}
			delta := num / den
			roots[i] -= delta
			if d := cmplx.Abs(delta); d > maxDelta {
				maxDelta = d
			}
		}
		if maxDelta < 1e-14*radius {
			break
		}
	}

	// Newton polish against the original polynomial.
	deriv := p.Derivative()
	for i := range roots {
		z := roots[i]
		for it := 0; it < 20; it++ {
			f := p.EvalC(z)
			df := deriv.EvalC(z)
			if df == 0 {
				break
			}
			step := f / df
			z -= step
			if cmplx.Abs(step) < 1e-15*(1+cmplx.Abs(z)) {
				break
			}
		}
		// Only accept the polish if it did not drift to another root's
		// basin leaving a worse residual.
		if cmplx.Abs(p.EvalC(z)) <= cmplx.Abs(p.EvalC(roots[i])) {
			roots[i] = z
		}
	}

	// Snap tiny imaginary parts to the real axis.
	for i, z := range roots {
		if math.Abs(imag(z)) < 1e-9*(1+math.Abs(real(z))) {
			roots[i] = complex(real(z), 0)
		}
	}
	return roots
}

// RootClassification partitions the roots of a polynomial for the
// Theorem 5.2 construction.
type RootClassification struct {
	Real []float64 // real roots with multiplicity
	// ComplexPairs holds one representative (positive imaginary part)
	// per conjugate pair.
	ComplexPairs []complex128
	// NumNegativeRealPart counts roots (with multiplicity, pairs counting
	// twice) whose real part is negative; this is the exponent psi in the
	// scaling factor Delta = a_k * 2^psi * prod_{|z|>1} |z|.
	NumNegativeRealPart int
}

// ClassifyRoots computes the root classification of p. Conjugate pairs are
// matched greedily; the polynomial must have real coefficients (guaranteed
// by the Poly type).
func ClassifyRoots(p Poly) RootClassification {
	roots := p.Roots()
	var rc RootClassification
	var pending []complex128
	for _, z := range roots {
		if imag(z) == 0 {
			rc.Real = append(rc.Real, real(z))
			if real(z) < 0 {
				rc.NumNegativeRealPart++
			}
			continue
		}
		pending = append(pending, z)
	}
	// Pair complex roots with their conjugates.
	used := make([]bool, len(pending))
	for i, z := range pending {
		if used[i] {
			continue
		}
		best := -1
		bestDist := math.Inf(1)
		for j := i + 1; j < len(pending); j++ {
			if used[j] {
				continue
			}
			d := cmplx.Abs(pending[j] - cmplx.Conj(z))
			if d < bestDist {
				bestDist = d
				best = j
			}
		}
		if best >= 0 {
			used[i], used[best] = true, true
			rep := z
			if imag(rep) < 0 {
				rep = cmplx.Conj(rep)
			}
			rc.ComplexPairs = append(rc.ComplexPairs, rep)
			if real(rep) < 0 {
				rc.NumNegativeRealPart += 2
			}
		} else {
			// Unpaired complex root: numerically this is a nearly-real
			// root; treat as real.
			used[i] = true
			rc.Real = append(rc.Real, real(z))
			if real(z) < 0 {
				rc.NumNegativeRealPart++
			}
		}
	}
	return rc
}

// HasRootWithRealPartIn reports whether p has a root whose real part lies
// strictly inside (lo, hi). The Theorem 5.2 construction requires no roots
// with real part in (0, 1).
func HasRootWithRealPartIn(p Poly, lo, hi float64) bool {
	for _, z := range p.Roots() {
		if re := real(z); re > lo && re < hi {
			return true
		}
	}
	return false
}
