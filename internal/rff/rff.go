// Package rff implements random Fourier features (Rahimi and Recht),
// the embedding the paper invokes in Section 2 to transfer its unit-sphere
// DSH constructions to l_s spaces for 0 < s <= 2:
//
//	"Results on the unit sphere can be extended to l_s-spaces ... through
//	 Rahimi and Recht's embedding version of Bochner's Theorem applied to
//	 the characteristic functions of s-stable distributions."
//
// A feature map phi: R^d -> R^D with
//
//	phi(x)_j = sqrt(2/D) * cos(<w_j, x> + b_j)
//
// has E[<phi(x), phi(y)>] = kappa(x - y), the kernel whose spectral measure
// the w_j are drawn from. Gaussian w gives the Gaussian kernel
// exp(-||x-y||_2^2 / (2 sigma^2)); Cauchy (1-stable) w gives the Laplacian
// kernel exp(-||x-y||_1 / sigma). Composing the embedding with any sphere
// DSH family F yields a family for l_s whose CPF is approximately
// f_F(kappa(distance)).
package rff

import (
	"fmt"
	"math"

	"dsh/internal/core"
	"dsh/internal/vec"
	"dsh/internal/xrand"
)

// Kernel identifies the shift-invariant kernel approximated by a feature
// map, i.e. the s-stable spectral distribution the projections are drawn
// from.
type Kernel int

const (
	// Gaussian is the l_2 kernel exp(-||x-y||_2^2 / (2 sigma^2))
	// (2-stable spectral distribution).
	Gaussian Kernel = iota
	// Laplacian is the l_1 kernel exp(-||x-y||_1 / sigma)
	// (1-stable / Cauchy spectral distribution).
	Laplacian
)

// String returns the kernel name.
func (k Kernel) String() string {
	switch k {
	case Gaussian:
		return "gaussian"
	case Laplacian:
		return "laplacian"
	default:
		return "unknown"
	}
}

// FeatureMap is one sampled random Fourier feature embedding
// R^d -> R^D.
type FeatureMap struct {
	kernel Kernel
	sigma  float64
	w      [][]float64
	b      []float64
	scale  float64
}

// NewFeatureMap samples a feature map with D features for inputs of
// dimension d at bandwidth sigma > 0.
func NewFeatureMap(rng *xrand.Rand, kernel Kernel, d, features int, sigma float64) *FeatureMap {
	if d <= 0 || features <= 0 {
		panic("rff: dimensions must be positive")
	}
	if sigma <= 0 {
		panic("rff: bandwidth must be positive")
	}
	fm := &FeatureMap{
		kernel: kernel,
		sigma:  sigma,
		w:      make([][]float64, features),
		b:      make([]float64, features),
		scale:  math.Sqrt(2 / float64(features)),
	}
	for j := 0; j < features; j++ {
		row := make([]float64, d)
		for i := range row {
			switch kernel {
			case Gaussian:
				row[i] = rng.NormFloat64() / sigma
			case Laplacian:
				// Standard Cauchy scaled by 1/sigma: the spectral
				// distribution of the Laplacian kernel.
				row[i] = math.Tan(math.Pi*(rng.Float64()-0.5)) / sigma
			default:
				panic("rff: unknown kernel")
			}
		}
		fm.w[j] = row
		fm.b[j] = 2 * math.Pi * rng.Float64()
	}
	return fm
}

// Features returns D, the embedded dimension.
func (fm *FeatureMap) Features() int { return len(fm.w) }

// Embed returns phi(x). The embedding has E||phi(x)||^2 = 1 and
// E[<phi(x), phi(y)>] = Kappa(x, y).
func (fm *FeatureMap) Embed(x []float64) []float64 {
	out := make([]float64, len(fm.w))
	for j, wj := range fm.w {
		out[j] = fm.scale * math.Cos(vec.Dot(wj, x)+fm.b[j])
	}
	return out
}

// Kappa returns the kernel value for a pair at the given distance
// (l_2 distance for Gaussian, l_1 distance for Laplacian).
func (fm *FeatureMap) Kappa(distance float64) float64 {
	return KernelValue(fm.kernel, fm.sigma, distance)
}

// KernelValue evaluates the kernel at the given distance.
func KernelValue(kernel Kernel, sigma, distance float64) float64 {
	switch kernel {
	case Gaussian:
		return math.Exp(-distance * distance / (2 * sigma * sigma))
	case Laplacian:
		return math.Exp(-math.Abs(distance) / sigma)
	default:
		panic("rff: unknown kernel")
	}
}

// Family lifts a unit-sphere DSH family to an l_s space through a fresh
// random Fourier feature embedding per draw: a draw samples a feature map
// phi and a sphere pair (h, g) and hashes points as h(phi(x)/|phi(x)|).
// If the sphere family has CPF f(alpha), the lifted family's CPF is
// approximately f(kappa(distance)), with the approximation improving as
// the number of features grows (the embedded inner product concentrates
// around kappa at rate O(1/sqrt(features))).
type Family struct {
	kernel   Kernel
	d        int
	features int
	sigma    float64
	base     core.Family[[]float64]
}

// NewFamily builds the lifted family. The base family must be a
// unit-sphere family with an inner-product CPF.
func NewFamily(kernel Kernel, d, features int, sigma float64, base core.Family[[]float64]) *Family {
	if base.CPF().Domain != core.DomainInnerProduct {
		panic("rff: base family must have an inner-product CPF")
	}
	if d <= 0 || features <= 0 || sigma <= 0 {
		panic("rff: invalid parameters")
	}
	return &Family{kernel: kernel, d: d, features: features, sigma: sigma, base: base}
}

// Name implements core.Family.
func (f *Family) Name() string {
	return fmt.Sprintf("rff(%s,sigma=%.3g,D=%d,%s)", f.kernel, f.sigma, f.features, f.base.Name())
}

// Sample implements core.Family.
func (f *Family) Sample(rng *xrand.Rand) core.Pair[[]float64] {
	fm := NewFeatureMap(rng, f.kernel, f.d, f.features, f.sigma)
	inner := f.base.Sample(rng)
	embed := func(x []float64) []float64 {
		e := fm.Embed(x)
		n := vec.Norm(e)
		if n > 0 {
			vec.Scale(e, 1/n)
		}
		return e
	}
	h := core.HasherFunc[[]float64](func(x []float64) uint64 {
		return inner.H.Hash(embed(x))
	})
	g := core.HasherFunc[[]float64](func(y []float64) uint64 {
		return inner.G.Hash(embed(y))
	})
	return core.Pair[[]float64]{H: h, G: g}
}

// CPF implements core.Family: the idealized CPF f_base(kappa(distance)),
// exact in the limit of infinitely many features.
func (f *Family) CPF() core.CPF {
	baseEval := f.base.CPF().Eval
	kernel := f.kernel
	sigma := f.sigma
	return core.CPF{Domain: core.DomainDistance, Eval: func(distance float64) float64 {
		return baseEval(KernelValue(kernel, sigma, distance))
	}}
}
