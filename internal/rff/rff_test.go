package rff

import (
	"math"
	"testing"

	"dsh/internal/core"
	"dsh/internal/sphere"
	"dsh/internal/vec"
	"dsh/internal/xrand"
)

func TestKernelValues(t *testing.T) {
	if got := KernelValue(Gaussian, 1, 0); got != 1 {
		t.Errorf("Gaussian(0) = %v", got)
	}
	if got := KernelValue(Gaussian, 1, 1); math.Abs(got-math.Exp(-0.5)) > 1e-15 {
		t.Errorf("Gaussian(1) = %v", got)
	}
	if got := KernelValue(Laplacian, 2, 1); math.Abs(got-math.Exp(-0.5)) > 1e-15 {
		t.Errorf("Laplacian(1, sigma=2) = %v", got)
	}
	if Gaussian.String() != "gaussian" || Laplacian.String() != "laplacian" {
		t.Error("kernel names wrong")
	}
}

func TestFeatureMapApproximatesGaussianKernel(t *testing.T) {
	rng := xrand.New(1)
	const d = 8
	for _, delta := range []float64{0.5, 1, 2} {
		x, y := vec.PairAtDistance(rng, d, delta)
		want := KernelValue(Gaussian, 1.5, delta)
		// Average over independent maps: the estimator is unbiased.
		const maps = 300
		var sum float64
		for i := 0; i < maps; i++ {
			fm := NewFeatureMap(rng, Gaussian, d, 64, 1.5)
			sum += vec.Dot(fm.Embed(x), fm.Embed(y))
		}
		got := sum / maps
		if math.Abs(got-want) > 0.03 {
			t.Errorf("delta=%v: <phi,phi> = %v, want %v", delta, got, want)
		}
	}
}

func TestFeatureMapApproximatesLaplacianKernel(t *testing.T) {
	rng := xrand.New(2)
	const d = 6
	// Points differing along coordinates for a known l1 distance.
	x := []float64{0, 0, 0, 0, 0, 0}
	y := []float64{0.5, -0.5, 0.25, 0, 0, 0} // l1 distance 1.25
	want := KernelValue(Laplacian, 2, 1.25)
	const maps = 400
	var sum float64
	for i := 0; i < maps; i++ {
		fm := NewFeatureMap(rng, Laplacian, d, 64, 2)
		sum += vec.Dot(fm.Embed(x), fm.Embed(y))
	}
	got := sum / maps
	if math.Abs(got-want) > 0.04 {
		t.Errorf("laplacian: <phi,phi> = %v, want %v", got, want)
	}
}

func TestFeatureMapNormConcentration(t *testing.T) {
	rng := xrand.New(3)
	fm := NewFeatureMap(rng, Gaussian, 8, 512, 1)
	x := vec.Gaussian(rng, 8)
	n := vec.Norm(fm.Embed(x))
	if math.Abs(n-1) > 0.15 {
		t.Errorf("embedded norm = %v, want ~1", n)
	}
}

func TestFeatureMapPanics(t *testing.T) {
	rng := xrand.New(4)
	for i, fn := range []func(){
		func() { NewFeatureMap(rng, Gaussian, 0, 8, 1) },
		func() { NewFeatureMap(rng, Gaussian, 8, 0, 1) },
		func() { NewFeatureMap(rng, Gaussian, 8, 8, 0) },
		func() { NewFeatureMap(rng, Kernel(99), 8, 8, 1).Embed(make([]float64, 8)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestLiftedFamilyCPFShape(t *testing.T) {
	// Lift SimHash to l2: CPF(distance) = SimHashCPF(exp(-delta^2/2sigma^2)),
	// decreasing in distance from 1 at distance 0 toward 1/2.
	fam := NewFamily(Gaussian, 8, 256, 1.5, sphere.SimHash(256))
	f := fam.CPF()
	if got := f.Eval(0); math.Abs(got-1) > 1e-12 {
		t.Errorf("CPF(0) = %v, want 1", got)
	}
	prev := 1.1
	for delta := 0.0; delta < 6; delta += 0.5 {
		v := f.Eval(delta)
		if v > prev+1e-12 {
			t.Fatalf("lifted CPF not decreasing at %v", delta)
		}
		prev = v
	}
	if far := f.Eval(100); math.Abs(far-0.5) > 1e-6 {
		t.Errorf("CPF(far) = %v, want -> 1/2 (kernel -> 0)", far)
	}
}

func TestLiftedFamilyEmpirical(t *testing.T) {
	rng := xrand.New(5)
	const d = 8
	fam := NewFamily(Gaussian, d, 384, 1.5, sphere.SimHash(384))
	gen := func(r *xrand.Rand, delta float64) ([]float64, []float64) {
		return vec.PairAtDistance(r, d, delta)
	}
	for _, delta := range []float64{0.5, 1.5, 3} {
		est := core.EstimateCollision(rng, fam, gen, delta, 4000, 5)
		want := fam.CPF().Eval(delta)
		// Finite-feature noise adds bias beyond Monte-Carlo error.
		if math.Abs(est.P-want) > 0.05 {
			t.Errorf("delta=%v: measured %v, idealized %v", delta, est.P, want)
		}
	}
}

func TestLiftedAnnulusInEuclideanSpace(t *testing.T) {
	// The paper's annulus family, transported to l2: peak the CPF at the
	// distance where the kernel equals alphaMax.
	rng := xrand.New(6)
	const d = 8
	const sigma = 2.0
	const alphaMax = 0.5
	// kappa(delta*) = 0.5 at delta* = sigma*sqrt(2 ln 2) ~ 2.355.
	target := sigma * math.Sqrt(2*math.Log(2))
	base := sphere.NewAnnulus(256, alphaMax, 1.6)
	fam := NewFamily(Gaussian, d, 256, sigma, base)
	f := fam.CPF()
	// The idealized CPF peaks at the target distance.
	bestD, bestV := 0.0, -1.0
	for delta := 0.1; delta < 8; delta += 0.05 {
		if v := f.Eval(delta); v > bestV {
			bestV, bestD = v, delta
		}
	}
	if math.Abs(bestD-target) > 0.3 {
		t.Errorf("lifted annulus peaks at %v, want ~%v", bestD, target)
	}
	// Empirically the peak beats both flanks.
	gen := func(r *xrand.Rand, delta float64) ([]float64, []float64) {
		return vec.PairAtDistance(r, d, delta)
	}
	estPeak := core.EstimateCollision(rng, fam, gen, target, 6000, 5)
	estNear := core.EstimateCollision(rng, fam, gen, target/3, 6000, 5)
	estFar := core.EstimateCollision(rng, fam, gen, target*2.5, 6000, 5)
	if estPeak.P <= estNear.P || estPeak.P <= estFar.P {
		t.Errorf("peak %v not above flanks %v, %v", estPeak.P, estNear.P, estFar.P)
	}
}

func TestNewFamilyValidation(t *testing.T) {
	base := sphere.SimHash(8)
	hammingStyle := core.Constant(core.DomainRelativeHamming, 0.5)
	bad := core.Symmetric[[]float64]{
		FamilyName: "bad",
		SampleFn: func(rng *xrand.Rand) core.Hasher[[]float64] {
			return core.HasherFunc[[]float64](func([]float64) uint64 { return 0 })
		},
		Prob: hammingStyle,
	}
	for i, fn := range []func(){
		func() { NewFamily(Gaussian, 8, 16, 1, bad) },
		func() { NewFamily(Gaussian, 0, 16, 1, base) },
		func() { NewFamily(Gaussian, 8, 16, -1, base) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestCauchySpectralHeavyTails(t *testing.T) {
	// Sanity: Laplacian projections are heavy-tailed (Cauchy), so extreme
	// values must appear far more often than for Gaussian.
	rng := xrand.New(7)
	big := 0
	const n = 4000
	fm := NewFeatureMap(rng, Laplacian, 1, n, 1)
	for _, row := range fm.w {
		if math.Abs(row[0]) > 10 {
			big++
		}
	}
	// P(|Cauchy| > 10) ~ 0.063: expect ~250 of 4000; Gaussian would give 0.
	if big < 100 {
		t.Errorf("only %d/%d heavy-tail draws; Cauchy sampling broken?", big, n)
	}
}
