package experiments

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

// parse extracts a float from a table cell.
func parse(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

func cfg() Config { return Config{Trials: 3000, Seed: 11} }

func TestTableRendering(t *testing.T) {
	tbl := &Table{ID: "X", Title: "test", Columns: []string{"a", "bb"}}
	tbl.AddRow("1", "2")
	tbl.AddNote("hello %d", 42)
	var sb strings.Builder
	tbl.Render(&sb)
	out := sb.String()
	for _, want := range []string{"== X: test ==", "a", "bb", "hello 42"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	var csv strings.Builder
	tbl.RenderCSV(&csv)
	if !strings.Contains(csv.String(), "a,bb") || !strings.Contains(csv.String(), "1,2") {
		t.Errorf("CSV output wrong:\n%s", csv.String())
	}
}

func TestTableRowWidthMismatchPanics(t *testing.T) {
	tbl := &Table{Columns: []string{"a"}}
	defer func() {
		if recover() == nil {
			t.Fatal("should panic")
		}
	}()
	tbl.AddRow("1", "2")
}

func TestFigure1ShapeReproduced(t *testing.T) {
	tbl := Figure1(cfg())
	if len(tbl.Rows) == 0 {
		t.Fatal("no rows")
	}
	// Analytic and measured must agree within Monte-Carlo noise, and the
	// curve must be unimodal with peak ~0.08.
	best := 0.0
	for _, row := range tbl.Rows {
		analytic := parse(t, row[1])
		measured := parse(t, row[2])
		if math.Abs(analytic-measured) > 0.03 {
			t.Errorf("distance %s: analytic %v vs measured %v", row[0], analytic, measured)
		}
		if analytic > best {
			best = analytic
		}
	}
	if best < 0.06 || best > 0.10 {
		t.Errorf("peak CPF %v, want ~0.08 as in Figure 1", best)
	}
}

func TestFigure2PlateauReproduced(t *testing.T) {
	tbl := Figure2(cfg())
	var plateau []float64
	var farOut []float64
	var left []float64
	for _, row := range tbl.Rows {
		v := parse(t, row[1])
		x := parse(t, row[0])
		switch {
		case row[3] == "yes":
			plateau = append(plateau, v)
		case x >= 25:
			farOut = append(farOut, v)
		case x <= 1:
			left = append(left, v)
		}
	}
	if len(plateau) < 3 || len(farOut) < 2 || len(left) < 1 {
		t.Fatal("table structure unexpected")
	}
	minP, maxP := plateau[0], plateau[0]
	for _, v := range plateau {
		minP = math.Min(minP, v)
		maxP = math.Max(maxP, v)
	}
	if maxP/minP > 2 {
		t.Errorf("plateau ratio %v too large", maxP/minP)
	}
	// The left flank is essentially zero (too-close pairs never collide).
	for _, v := range left {
		if v > minP/10 {
			t.Errorf("left flank value %v not far below plateau %v", v, minP)
		}
	}
	// Well beyond the plateau the mixture has fallen below the plateau.
	for _, v := range farOut {
		if v > minP {
			t.Errorf("far-out value %v not below plateau min %v", v, minP)
		}
	}
}

func TestFigure3BoundsContainAlphaMax(t *testing.T) {
	tbl := Figure3(cfg())
	for _, row := range tbl.Rows {
		amax := parse(t, row[0])
		for i := 1; i < 7; i += 2 {
			lo := parse(t, row[i])
			hi := parse(t, row[i+1])
			if !(lo <= amax && amax <= hi) {
				t.Errorf("alphaMax %v outside annulus [%v, %v]", amax, lo, hi)
			}
		}
		// s=4 annulus contains s=2 annulus.
		if parse(t, row[5]) > parse(t, row[1]) || parse(t, row[6]) < parse(t, row[2]) {
			t.Errorf("s=4 annulus does not contain s=2 annulus at alphaMax %v", amax)
		}
	}
}

func TestFigure4AnalyticVsMeasured(t *testing.T) {
	tbl := Figure4(cfg())
	for _, row := range tbl.Rows {
		analytic := parse(t, row[2])
		measured := parse(t, row[3])
		if math.Abs(analytic-measured) > 0.05 {
			t.Errorf("%s at alpha %s: analytic %v vs measured %v", row[0], row[1], analytic, measured)
		}
	}
}

func TestFilterCPFDeviationIsLowerOrder(t *testing.T) {
	tbl := FilterCPF(cfg())
	for _, row := range tbl.Rows {
		dev := parse(t, row[4])
		// Theta(log t) for t=2: modest constant.
		if math.Abs(dev) > 5 {
			t.Errorf("%s alpha %s: deviation %v too large", row[0], row[1], dev)
		}
		exact := parse(t, row[6])
		measured := parse(t, row[5])
		if math.Abs(exact-measured) > 0.04 {
			t.Errorf("%s alpha %s: exact %v vs measured %v", row[0], row[1], exact, measured)
		}
	}
}

func TestLowerBoundNeverViolated(t *testing.T) {
	tbl := LowerBound(cfg())
	for _, row := range tbl.Rows {
		if row[5] != "yes" {
			t.Errorf("Theorem 1.3 lower bound violated: %v", row)
		}
	}
}

func TestAntiBitNeverWins(t *testing.T) {
	tbl := AntiBit(cfg())
	for _, row := range tbl.Rows {
		if row[4] == "antibit" {
			t.Errorf("anti bit-sampling should never win: %v", row)
		}
		anti := parse(t, row[1])
		sphereRho := parse(t, row[2])
		if anti <= sphereRho {
			t.Errorf("r=%s: antibit rho %v should exceed sphere rho %v", row[0], anti, sphereRho)
		}
	}
}

func TestEuclidRhoConverges(t *testing.T) {
	tbl := EuclidRho(cfg())
	for _, row := range tbl.Rows {
		c := parse(t, row[0])
		k := parse(t, row[1])
		w := parse(t, row[2])
		rhoC2 := parse(t, row[4])
		// The proof of Theorem 4.1 bounds rho*c^2 by
		// (-2 ln(w/(4 sqrt(2 pi))) + ((k+1/2)w)^2) / ((k-1)w)^2;
		// the -2ln term makes convergence slower for larger c (smaller w).
		if k < 4 {
			continue
		}
		full := (-2*math.Log(w/(4*math.Sqrt(2*math.Pi))) +
			math.Pow((k+0.5)*w, 2)) / math.Pow((k-1)*w, 2)
		if rhoC2 > full*1.05 {
			t.Errorf("c=%v k=%v: rho*c^2 = %v exceeds proof bound %v", c, k, rhoC2, full)
		}
		if rhoC2 < 0.7 {
			t.Errorf("c=%v k=%v: rho*c^2 = %v suspiciously below 1", c, k, rhoC2)
		}
	}
}

func TestPolyCPFMatches(t *testing.T) {
	tbl := PolyCPF(cfg())
	for _, row := range tbl.Rows {
		want := parse(t, row[3])
		got := parse(t, row[4])
		if math.Abs(want-got) > 0.04 {
			t.Errorf("%s at t=%s: target %v vs measured %v", row[0], row[2], want, got)
		}
	}
}

func TestCombinatorsAgree(t *testing.T) {
	tbl := Combinators(cfg())
	for _, row := range tbl.Rows {
		if math.Abs(parse(t, row[2])-parse(t, row[3])) > 0.04 {
			t.Errorf("%s at t=%s: %v vs %v", row[0], row[1], row[2], row[3])
		}
	}
}

func TestAnnulusSearchSublinear(t *testing.T) {
	tbl := AnnulusSearch(cfg())
	for _, row := range tbl.Rows {
		if row[1] == "linear-scan" {
			continue
		}
		frac := parse(t, row[5])
		if frac > 0.5 {
			t.Errorf("%s at n=%s scans fraction %v of the data", row[1], row[0], frac)
		}
	}
}

func TestRangeReportStepIsOutputSensitive(t *testing.T) {
	tbl := RangeReport(cfg())
	if len(tbl.Rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(tbl.Rows))
	}
	stepWork := parse(t, tbl.Rows[0][5])
	clsWork := parse(t, tbl.Rows[1][5])
	if stepWork > clsWork {
		t.Errorf("step CPF work/report %v should not exceed classical %v", stepWork, clsWork)
	}
}

func TestPrivacyRates(t *testing.T) {
	tbl := Privacy(cfg())
	for _, row := range tbl.Rows {
		rate := parse(t, row[2])
		switch row[1] {
		case "close":
			if rate < 0.7 {
				t.Errorf("close pair at alpha %s detected only %v", row[0], rate)
			}
		case "far":
			if parse(t, row[0]) < 0 && rate > 0.3 {
				t.Errorf("far pair at alpha %s false-alarmed %v", row[0], rate)
			}
		}
	}
}
