package experiments

import (
	"fmt"
	"math"

	"dsh/internal/bitvec"
	"dsh/internal/core"
	"dsh/internal/cpfit"
	"dsh/internal/hamming"
	"dsh/internal/index"
	"dsh/internal/rff"
	"dsh/internal/sphere"
	"dsh/internal/vec"
	"dsh/internal/workload"
	"dsh/internal/xrand"
)

// AnnulusJoin is experiment E11: the similarity-join operator from the
// paper's introduction, run with a unimodal CPF so that it emits pairs
// that are close but not near-duplicates, against brute force.
func AnnulusJoin(cfg Config) *Table {
	rng := xrand.New(cfg.Seed)
	const d = 24
	topics := 24
	if cfg.Trials < 10000 {
		topics = 10
	}
	t := &Table{
		ID:      "E11",
		Title:   "Similarity join (intro motivation): annulus self-join vs brute force",
		Columns: []string{"n", "structure", "emitted", "recall", "verified_pairs", "frac_of_n^2"},
	}
	// Two-level corpus: within-subtopic pairs are near-duplicates
	// (sim ~0.9), same-topic cross-subtopic pairs sit in the band
	// (~0.4-0.6), cross-topic pairs are near-orthogonal. The annulus join
	// targets exactly the middle tier.
	corpus := workload.NewHierarchicalCorpus(rng, d, topics, 4, 8, 0.2, 0.1)
	pts := corpus.Points
	verify := func(a, b []float64) bool {
		s := vec.Dot(a, b)
		return s >= 0.35 && s <= 0.65
	}
	truth := 0
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if verify(pts[i], pts[j]) {
				truth++
			}
		}
	}
	fam := sphere.NewAnnulus(d, 0.5, 1.8)
	L := index.RepetitionsForCPF(fam.CPF().Eval(0.5))
	pairs, stats := index.SelfJoin[[]float64](rng, fam, L, pts, verify)
	total := float64(len(pts)) * float64(len(pts)-1) / 2
	t.AddRow(fmt.Sprint(len(pts)), "dsh-annulus-join", fmt.Sprint(len(pairs)),
		f3(float64(len(pairs))/math.Max(1, float64(truth))),
		fmt.Sprint(stats.Verified), f4(float64(stats.Verified)/total))
	t.AddRow(fmt.Sprint(len(pts)), "brute-force", fmt.Sprint(truth), "1.000",
		fmt.Sprint(int(total)), "1.0000")
	fPeak := fam.CPF().Eval(0.5)
	f0 := fam.CPF().Eval(0)
	t.AddNote("the unimodal CPF prunes verification (contrast f(peak)/f(0) = %.1fx at t=1.8); the advantage is asymptotic -- the exponent rho* < 1 widens the gap as n grows, while brute force stays n^2", fPeak/f0)
	return t
}

// CPFDesign is experiment E12: fitting target CPFs over a dictionary of
// powered bit-sampling families (the Lemma 1.4 closure), showing which
// shapes are reachable and with what error.
func CPFDesign(cfg Config) *Table {
	const d = 256
	dict := cpfit.BuildDictionary[bitvec.Vector](4,
		hamming.BitSampling(d), hamming.AntiBitSampling(d),
		core.Concat[bitvec.Vector](hamming.BitSampling(d), hamming.AntiBitSampling(d)),
		core.Concat[bitvec.Vector](
			core.Power[bitvec.Vector](hamming.BitSampling(d), 2),
			hamming.AntiBitSampling(d)),
	)
	t := &Table{
		ID:      "E12",
		Title:   "CPF design: sub-simplex least-squares over the Lemma 1.4 dictionary",
		Columns: []string{"target", "mass", "max_err", "rmse", "components"},
	}
	targets := []struct {
		name string
		fn   func(float64) float64
	}{
		{"0.3(1-t)+0.2t^2", func(x float64) float64 { return 0.3*(1-x) + 0.2*x*x }},
		{"bump@1/3 (amp .12)", func(x float64) float64 {
			return 0.12 * math.Exp(-8*(x-1.0/3)*(x-1.0/3))
		}},
		{"ramp min(2t,1)/2", func(x float64) float64 { return math.Min(2*x, 1) / 2 }},
		{"exp(-2t)/4", func(x float64) float64 { return math.Exp(-2*x) / 4 }},
	}
	for _, target := range targets {
		res, err := cpfit.Fit(dict, cpfit.Grid(0, 1, 33, target.fn))
		if err != nil {
			panic(err)
		}
		comps := 0
		for _, w := range res.Weights {
			if w > 0 {
				comps++
			}
		}
		t.AddRow(target.name, f3(res.Mass), f4(res.MaxErr), f4(res.RMSE), fmt.Sprint(comps))
	}
	t.AddNote("every target is matched to a few percent by a convex combination (plus never-collide slack), as Lemma 1.4 predicts")
	return t
}

// TaylorCPF is experiment E13: the Section 5 closing remark -- analytic
// CPFs via truncated Taylor series fed to the Theorem 5.2 construction,
// including the feasibility boundary (degree-4 exponential truncations are
// rejected by the root condition).
func TaylorCPF(cfg Config) *Table {
	const d = 256
	t := &Table{
		ID:      "E13",
		Title:   "Sec 5 remark: Taylor-series CPFs exp(-c t) via Thm 5.2",
		Columns: []string{"c", "degree", "feasible", "Delta", "trunc_err", "achieved_f(0.5)"},
	}
	for _, c := range []float64{0.3, 0.5, 0.8} {
		for _, deg := range []int{2, 3, 4, 5} {
			scheme, err := hamming.ExpDecayScheme(d, c, deg)
			if err != nil {
				t.AddRow(f3(c), fmt.Sprint(deg), "no (root in (0,1))", "-", "-", "-")
				continue
			}
			t.AddRow(f3(c), fmt.Sprint(deg), "yes", f3(scheme.Delta),
				g4(scheme.TruncationError), f4(scheme.Family.CPF().Eval(0.5)))
		}
	}
	t.AddNote("degree-4 truncations of exp(-ct) always have a conjugate root pair with real part ~0.27/c inside (0,1); the construction surfaces this instead of silently mis-building")
	return t
}

// HyperplaneQueries is experiment E14 (Section 6.1): the hyperplane-query
// structure finds near-orthogonal vectors with sublinear candidate counts;
// rho* = (1-alpha^2)/(1+alpha^2).
func HyperplaneQueries(cfg Config) *Table {
	rng := xrand.New(cfg.Seed)
	const d = 24
	n := 3000
	queries := 8
	if cfg.Trials < 10000 {
		n = 800
		queries = 4
	}
	t := &Table{
		ID:      "E14",
		Title:   "Sec 6.1: hyperplane queries (find |<x,q>| <= alpha)",
		Columns: []string{"alpha", "rho*", "L", "recall", "avg_candidates", "frac_of_n"},
	}
	for _, alpha := range []float64{0.15, 0.25} {
		points := workload.SpherePoints(rng, n, d)
		qs := make([][]float64, queries)
		for i := range qs {
			qs[i] = vec.RandomUnit(rng, d)
			points = append(points, workload.PointAtAlpha(rng, qs[i], 0))
		}
		hi := index.NewHyperplane(rng, d, alpha, 1.4, points)
		hits, cands := 0, 0
		for _, q := range qs {
			id, stats := hi.Query(q)
			if id >= 0 {
				hits++
			}
			cands += stats.Candidates
		}
		avg := float64(cands) / float64(queries)
		t.AddRow(f3(alpha), f3(index.HyperplaneRho(alpha)), fmt.Sprint(hi.L()),
			f3(float64(hits)/float64(queries)), f3(avg), f4(avg/float64(n)))
	}
	t.AddNote("matches the near-optimality the paper proves for the ad-hoc constructions of [52]")
	return t
}

// KernelSpaces is experiment E15 (Section 2 remark): lifting the sphere
// constructions to l_2 via random Fourier features; the lifted annulus
// family peaks at the distance where the Gaussian kernel equals alphaMax.
func KernelSpaces(cfg Config) *Table {
	rng := xrand.New(cfg.Seed)
	const d = 8
	const sigma = 2.0
	trials := cfg.Trials
	if trials > 20000 {
		trials = 20000
	}
	t := &Table{
		ID:      "E15",
		Title:   "Sec 2 remark: l_2 lifting via random Fourier features (Gaussian kernel)",
		Columns: []string{"distance", "kernel", "idealized_f", "measured_f"},
	}
	base := sphere.NewAnnulus(192, 0.5, 1.6)
	fam := rff.NewFamily(rff.Gaussian, d, 192, sigma, base)
	gen := func(r *xrand.Rand, delta float64) ([]float64, []float64) {
		return vec.PairAtDistance(r, d, delta)
	}
	target := sigma * math.Sqrt(2*math.Log(2)) // kernel = 0.5 here
	for _, delta := range []float64{0.5, 1.2, target, 3.5, 5} {
		est := core.EstimateCollision(rng, fam, gen, delta, trials, 4)
		t.AddRow(f3(delta), f4(rff.KernelValue(rff.Gaussian, sigma, delta)),
			f4(fam.CPF().Eval(delta)), f4(est.P))
	}
	t.AddNote("the lifted CPF peaks at distance %.3f where kappa = alphaMax = 0.5, turning the sphere annulus family into a Euclidean-distance annulus family", target)
	return t
}
