package experiments

import (
	"math"

	"dsh/internal/core"
	"dsh/internal/euclid"
	"dsh/internal/poly"
	"dsh/internal/sphere"
	"dsh/internal/vec"
	"dsh/internal/xrand"
)

// Figure1 reproduces Figure 1 of the paper: the CPF of the Euclidean
// family R_{k,w} with k = 3, w = 1 as a function of distance -- unimodal,
// peak ~0.08 near distance 2.5, steep on the left and slow on the right.
func Figure1(cfg Config) *Table {
	rng := xrand.New(cfg.Seed)
	fam := euclid.NewPStable(16, 3, 1)
	t := &Table{
		ID:      "F1",
		Title:   "Figure 1: CPF of R_{k,w}, k=3, w=1 (Euclidean)",
		Columns: []string{"distance", "analytic_f", "measured_f", "ci_lo", "ci_hi"},
	}
	gen := func(r *xrand.Rand, delta float64) (euclid.Point, euclid.Point) {
		return vec.PairAtDistance(r, 16, delta)
	}
	for _, delta := range []float64{0.5, 1, 1.5, 2, 2.5, 3, 4, 5, 6, 8, 10} {
		est := core.EstimateCollision(rng, fam, gen, delta, cfg.Trials, 4)
		t.AddRow(f3(delta), f4(fam.ExactCPF(delta)), f4(est.P), f4(est.Interval.Lo), f4(est.Interval.Hi))
	}
	peak := fam.PeakDistance()
	t.AddNote("peak at distance %.3f with f = %.4f (paper: ~0.08 near 2-3)", peak, fam.ExactCPF(peak))
	t.AddNote("left/right asymmetry: f(peak-1.2) = %.4f vs f(peak+1.2) = %.4f",
		fam.ExactCPF(peak-1.2), fam.ExactCPF(peak+1.2))
	return t
}

// Figure2 reproduces Figure 2: composing unimodal CPFs (R_{k,w} for a range
// of k) via the Lemma 1.4(b) mixture into an approximate step-function CPF.
func Figure2(cfg Config) *Table {
	rng := xrand.New(cfg.Seed)
	const d = 16
	// Equal-height unimodal components, as drawn in the paper's left
	// panel: the same R_{3,w} shape at geometrically spread widths w
	// (R_{k,w}(Delta) = R_{k,1}(Delta/w), so all peaks have equal height),
	// squared via Lemma 1.4(a) powering to sharpen the tails, then mixed
	// with equal weights (Lemma 1.4(b)) into a step.
	const power = 2
	widths := []float64{1, 1.5, 2.25, 3.4, 5}
	var parts []core.Family[euclid.Point]
	weights := make([]float64, len(widths))
	for i, w := range widths {
		base := euclid.NewPStable(d, 3, w)
		parts = append(parts, core.Power[euclid.Point](base, power))
		weights[i] = 1 / float64(len(widths))
	}
	mix := core.Mixture(parts, weights)
	t := &Table{
		ID:      "F2",
		Title:   "Figure 2: step-function CPF as a mixture of unimodal CPFs (Lemma 1.4b)",
		Columns: []string{"distance", "analytic_mix", "measured_mix", "plateau?"},
	}
	gen := func(r *xrand.Rand, delta float64) (euclid.Point, euclid.Point) {
		return vec.PairAtDistance(r, d, delta)
	}
	f := mix.CPF()
	for _, delta := range []float64{0.5, 1, 3, 5, 8, 11, 13, 16, 20, 30, 40} {
		est := core.EstimateCollision(rng, mix, gen, delta, cfg.Trials, 4)
		in := "no"
		if delta >= 3 && delta <= 13 {
			in = "yes"
		}
		t.AddRow(f3(delta), f4(f.Eval(delta)), f4(est.P), in)
	}
	fmin, fmax := math.Inf(1), 0.0
	for delta := 3.0; delta <= 13; delta += 0.25 {
		v := f.Eval(delta)
		fmin = math.Min(fmin, v)
		fmax = math.Max(fmax, v)
	}
	t.AddNote("plateau over [3,13]: fmin=%.4f fmax=%.4f ratio=%.2f (flat step as in Fig 2 right)",
		fmin, fmax, fmax/fmin)
	t.AddNote("fall beyond the plateau: f(13)=%.4f f(20)=%.5f f(40)=%.6f",
		f.Eval(13), f.Eval(20), f.Eval(40))
	return t
}

// Figure3 reproduces Figure 3: the annulus boundaries alpha-(alphaMax, s)
// and alpha+(alphaMax, s) of Theorem 6.2 for s = 2, 3, 4. Purely analytic.
func Figure3(cfg Config) *Table {
	t := &Table{
		ID:      "F3",
		Title:   "Figure 3: annuli [alpha-, alpha+] vs alphaMax for s = 2, 3, 4 (Thm 6.2)",
		Columns: []string{"alphaMax", "s2_lo", "s2_hi", "s3_lo", "s3_hi", "s4_lo", "s4_hi"},
	}
	for a := -0.75; a <= 0.76; a += 0.25 {
		row := []string{f3(a)}
		for _, s := range []float64{2, 3, 4} {
			lo, hi := sphere.AnnulusBounds(a, s)
			row = append(row, f3(lo), f3(hi))
		}
		t.AddRow(row...)
	}
	t.AddNote("each annulus contains alphaMax and widens with s, pinching near alphaMax = +/-1 (as drawn in Fig 3)")
	return t
}

// Figure4 reproduces Figure 4: Theorem 5.1 CPFs sim(P(alpha)) under
// SimHash for the paper's example polynomials -- t^2, -t^2,
// (-t^3+t^2-t)/3 (left panel) and normalized Chebyshev T_2..T_5 (right).
func Figure4(cfg Config) *Table {
	rng := xrand.New(cfg.Seed)
	// Embedding dimension is sum d^i over nonzero coefficients; d = 4 keeps
	// the degree-5 Chebyshev embedding at ~1.4k dimensions.
	const d = 4
	polys := []struct {
		name string
		p    poly.Poly
	}{
		{"t^2", poly.New(0, 0, 1)},
		{"-t^2", poly.New(0, 0, -1)},
		{"(-t^3+t^2-t)/3", poly.New(0, -1.0/3, 1.0/3, -1.0/3)},
		{"T2/3", poly.Chebyshev(2).NormalizeAbsSum()},
		{"T3/7", poly.Chebyshev(3).NormalizeAbsSum()},
		{"T4/17", poly.Chebyshev(4).NormalizeAbsSum()},
		{"T5/41", poly.Chebyshev(5).NormalizeAbsSum()},
	}
	t := &Table{
		ID:      "F4",
		Title:   "Figure 4: polynomial CPFs sim(P(alpha)) via Valiant embeddings (Thm 5.1)",
		Columns: []string{"P", "alpha", "analytic", "measured", "ci_lo", "ci_hi"},
	}
	gen := func(r *xrand.Rand, a float64) (sphere.Point, sphere.Point) {
		return vec.UnitPairWithDot(r, d, a)
	}
	// Each draw samples a Gaussian in the embedded dimension; cap the
	// budget so the degree-5 polynomials stay tractable.
	trials := cfg.Trials
	if trials > 20000 {
		trials = 20000
	}
	for _, entry := range polys {
		fam, err := sphere.NewValiant(d, entry.p)
		if err != nil {
			panic(err)
		}
		for _, alpha := range []float64{-0.9, -0.5, 0, 0.5, 0.9} {
			est := core.EstimateCollision(rng, fam, gen, alpha, trials, 4)
			want := sphere.SimHashCPF(entry.p.Eval(alpha))
			t.AddRow(entry.name, f3(alpha), f4(want), f4(est.P), f4(est.Interval.Lo), f4(est.Interval.Hi))
		}
	}
	t.AddNote("matches Figure 4: t^2 symmetric U-shape around 0.5 at alpha=0; -t^2 inverted; Chebyshev CPFs oscillate")
	return t
}
