package experiments

import (
	"fmt"
	"testing"

	"dsh/internal/index"
	"dsh/internal/sphere"
)

func TestProbeParams(t *testing.T) {
	if testing.Short() {
		// This probe has no assertions: it prints the Monte-Carlo CPF /
		// repetition-count tables used to pick the annulus and step-family
		// parameters hard-coded in the experiments. The integrals behind
		// CPF().Eval make it the slowest test in the package, so -short
		// drops it; run it verbosely when retuning t or the plateau bounds.
		t.Skip("parameter-tuning probe (print-only, slow CPF integrals); run without -short to regenerate the tables")
	}
	for _, tt := range []float64{1.4, 1.6, 1.8, 2.0, 2.2} {
		ann := sphere.NewAnnulus(24, 0.5, tt)
		f := ann.CPF().Eval(0.5)
		fmt.Printf("annulus t=%.1f: f(peak)=%.5f L=%d (m+=%d m-=%d)\n",
			tt, f, index.RepetitionsForCPF(f), ann.Plus().M(), ann.Minus().M())
	}
	for _, tt := range []float64{1.4, 1.6, 1.8, 2.0} {
		step := sphere.NewStep(24, 0.75, 0.97, 5, tt)
		fmin, fmax := sphere.PlateauStats(step.CPF(), 0.75, 0.97, 30)
		fmt.Printf("step[.75,.97] t=%.1f: fmin=%.5f fmax=%.5f L=%d\n", tt, fmin, fmax, index.RepetitionsForCPF(fmin))
	}
	for _, tt := range []float64{1.4, 1.6, 1.8, 2.2} {
		step := sphere.NewStep(24, 0.5, 0.9, 4, tt)
		fmin, _ := sphere.PlateauStats(step.CPF(), 0.5, 0.9, 30)
		far := step.CPF().Eval(0)
		fmt.Printf("step[.5,.9] t=%.1f: fmin=%.5f far=%.2g N(eps=.1)=%d\n", tt, fmin, far, int(2.303/fmin))
	}
}

func TestProbeStepDecay(t *testing.T) {
	for _, tt := range []float64{1.8, 2.0, 2.2} {
		step := sphere.NewStep(24, 0.5, 0.9, 4, tt)
		f := step.CPF()
		fmin, _ := sphere.PlateauStats(f, 0.5, 0.9, 30)
		fmt.Printf("step[.5,.9] t=%.1f: fmin=%.5f f(0.2)=%.5f f(0)=%.5f f(-0.2)=%.2g f(-0.5)=%.2g N=%d N*f(-0.2)=%.3f\n",
			tt, fmin, f.Eval(0.2), f.Eval(0), f.Eval(-0.2), f.Eval(-0.5), int(2.303/fmin), 2.303/fmin*f.Eval(-0.2))
	}
}

func TestProbeReportStep(t *testing.T) {
	for _, tt := range []float64{1.6, 2.0, 2.4} {
		step := sphere.NewStep(24, 0.75, 0.97, 5, tt)
		f := step.CPF()
		fmin, fmax := sphere.PlateauStats(f, 0.75, 0.97, 30)
		fmt.Printf("step[.75,.97] t=%.1f: fmin=%.5f fmax=%.5f L=%d f(0.3)=%.2g f(0)=%.2g ratio0=%.1f\n",
			tt, fmin, fmax, index.RepetitionsForCPF(fmin), f.Eval(0.3), f.Eval(0), fmin/f.Eval(0))
	}
}
