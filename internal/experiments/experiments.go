// Package experiments reproduces every figure and quantitative theorem of
// the paper as a table of paper-predicted versus measured values. Each
// experiment is a function returning a Table; cmd/dshbench renders them to
// text or CSV, the root bench_test.go wraps them as benchmarks, and
// EXPERIMENTS.md records representative output.
//
// The paper has no numbered tables; its evaluation artifacts are Figures
// 1-4 and the quantitative statements of Theorems 1.2, 1.3, 2.1/2.2, 4.1,
// 5.1, 5.2, 6.1/6.2/6.4, 6.5 and Section 6.4. The experiment IDs here
// (F1-F4, E1-E10) are indexed in DESIGN.md.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's output.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic("experiments: row width mismatch")
	}
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a free-text note rendered after the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// RenderCSV writes the table as CSV (ID and title as a comment line).
func (t *Table) RenderCSV(w io.Writer) {
	fmt.Fprintf(w, "# %s: %s\n", t.ID, t.Title)
	fmt.Fprintln(w, strings.Join(t.Columns, ","))
	for _, row := range t.Rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

// Config controls the Monte-Carlo budget of the experiments.
type Config struct {
	// Trials is the number of Monte-Carlo samples per probed point.
	Trials int
	// Seed feeds the deterministic generator.
	Seed uint64
}

// Quick returns a configuration suitable for benchmarks and smoke tests.
func Quick() Config { return Config{Trials: 4000, Seed: 7} }

// Full returns the configuration used for EXPERIMENTS.md.
func Full() Config { return Config{Trials: 60000, Seed: 7} }

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

func f4(v float64) string { return fmt.Sprintf("%.4f", v) }

func g4(v float64) string { return fmt.Sprintf("%.4g", v) }
