package experiments

import (
	"fmt"
	"math"

	"dsh/internal/bitvec"
	"dsh/internal/core"
	"dsh/internal/euclid"
	"dsh/internal/hamming"
	"dsh/internal/poly"
	"dsh/internal/sphere"
	"dsh/internal/vec"
	"dsh/internal/xrand"
)

// FilterCPF is experiment E1 (Theorem 1.2 / Theorem A.6): the filter
// families' ln(1/f(alpha)) against the asymptotic (1 -/+ alpha)/(1 +/- alpha)
// * t^2/2, with exact closed forms and Monte-Carlo estimates.
func FilterCPF(cfg Config) *Table {
	rng := xrand.New(cfg.Seed)
	const d = 24
	const tParam = 2.0
	plus := sphere.NewFilterPlus(d, tParam)
	minus := sphere.NewFilterMinus(d, tParam)
	t := &Table{
		ID:      "E1",
		Title:   "Thm 1.2: filter family ln(1/f(alpha)) vs asymptotic (t=2)",
		Columns: []string{"family", "alpha", "exact_lninv", "asym_lninv", "dev", "measured_f", "exact_f"},
	}
	gen := func(r *xrand.Rand, a float64) (sphere.Point, sphere.Point) {
		return vec.UnitPairWithDot(r, d, a)
	}
	for _, fam := range []*sphere.Filter{plus, minus} {
		name := "D+"
		if fam == minus {
			name = "D-"
		}
		for _, alpha := range []float64{-0.5, -0.25, 0, 0.25, 0.5} {
			exact := fam.ExactCPF(alpha)
			lninv := -math.Log(exact)
			asym := fam.AsymptoticLogInvCPF(alpha)
			est := core.EstimateCollision(rng, fam, gen, alpha, cfg.Trials, 4)
			t.AddRow(name, f3(alpha), f3(lninv), f3(asym), f3(lninv-asym), f4(est.P), f4(exact))
		}
	}
	t.AddNote("dev column is the Theta(log t) lower-order term of Thm 1.2; log(t)=%.3f", math.Log(tParam))
	rho := math.Log(minus.ExactCPF(0)) / math.Log(minus.ExactCPF(0.5))
	t.AddNote("rho- = ln f(0)/ln f(0.5) = %.3f >= optimal (1-a)/(1+a) = %.3f (Thm 1.3 bound)",
		rho, (1-0.5)/(1+0.5))
	return t
}

// CrossPolytopeExp is experiment E2 (Theorem 2.1 / Corollary 2.2): the
// cross-polytope CPF satisfies ln(1/f(alpha)) ~ (1-alpha)/(1+alpha) * ln d,
// verified by a slope fit across dimensions for CP+ and CP-.
func CrossPolytopeExp(cfg Config) *Table {
	rng := xrand.New(cfg.Seed)
	t := &Table{
		ID:      "E2",
		Title:   "Thm 2.1/Cor 2.2: cross-polytope ln(1/f) vs (1-/+alpha)/(1+/-alpha) ln d",
		Columns: []string{"family", "d", "alpha", "measured_f", "lninv/lnd", "predicted"},
	}
	dims := []int{16, 64, 128}
	alphas := []float64{0, 0.5}
	for _, negate := range []bool{false, true} {
		name := "CP+"
		fam := func(d int) core.Family[sphere.Point] { return sphere.CrossPolytope(d) }
		if negate {
			name = "CP-"
			fam = func(d int) core.Family[sphere.Point] { return sphere.AntiCrossPolytope(d) }
		}
		for _, d := range dims {
			gen := func(r *xrand.Rand, a float64) (sphere.Point, sphere.Point) {
				return vec.UnitPairWithDot(r, d, a)
			}
			// Sampling a CP draw costs a d x d Gaussian matrix; cap the
			// Monte-Carlo budget at large d to keep the sweep tractable.
			trials := cfg.Trials
			if d >= 64 && trials > 20000 {
				trials = 20000
			}
			for _, alpha := range alphas {
				est := core.EstimateCollision(rng, fam(d), gen, alpha, trials, 4)
				if est.P <= 0 {
					t.AddRow(name, fmt.Sprint(d), f3(alpha), "0", "-", "-")
					continue
				}
				ratio := -math.Log(est.P) / math.Log(float64(d))
				pred := (1 - alpha) / (1 + alpha)
				if negate {
					pred = (1 + alpha) / (1 - alpha)
				}
				t.AddRow(name, fmt.Sprint(d), f3(alpha), f4(est.P), f3(ratio), f3(pred))
			}
		}
	}
	t.AddNote("lninv/lnd approaches the prediction as d grows (the O(ln ln d) term shrinks relative to ln d)")
	return t
}

// LowerBound is experiment E3 (Theorem 1.3 / Lemma 3.5): for every
// implemented family on randomly alpha-correlated Hamming points,
// fhat(alpha) >= fhat(0)^((1+alpha)/(1-alpha)), and the filter family D-
// approaches the bound (it is optimal up to lower-order terms).
func LowerBound(cfg Config) *Table {
	rng := xrand.New(cfg.Seed)
	const d = 512
	t := &Table{
		ID:      "E3",
		Title:   "Thm 1.3: fhat(alpha) >= fhat(0)^((1+alpha)/(1-alpha)) on correlated bits",
		Columns: []string{"family", "alpha", "fhat0", "fhatA", "bound", "ok", "rho_measured", "rho_bound"},
	}
	type famEntry struct {
		name string
		est  func(alpha float64) (p0, pa core.Estimate)
	}
	genBits := func(r *xrand.Rand, alpha float64) (bitvec.Vector, bitvec.Vector) {
		return bitvec.Correlated(r, d, alpha)
	}
	entries := []famEntry{
		{
			name: "anti-bitsample",
			est: func(alpha float64) (core.Estimate, core.Estimate) {
				fam := hamming.AntiBitSampling(d)
				p0 := core.EstimateCollision(rng, fam, genBits, 0, cfg.Trials, 4)
				pa := core.EstimateCollision(rng, fam, genBits, alpha, cfg.Trials, 4)
				return p0, pa
			},
		},
		{
			name: "anti-bitsample^4",
			est: func(alpha float64) (core.Estimate, core.Estimate) {
				fam := core.Power[bitvec.Vector](hamming.AntiBitSampling(d), 4)
				p0 := core.EstimateCollision(rng, fam, genBits, 0, cfg.Trials, 4)
				pa := core.EstimateCollision(rng, fam, genBits, alpha, cfg.Trials, 4)
				return p0, pa
			},
		},
		{
			name: "filter-(t=2)-signembed",
			est: func(alpha float64) (core.Estimate, core.Estimate) {
				fam := sphere.NewFilterMinus(64, 2)
				// Embed correlated bits onto the sphere: sim_H = <image>.
				gen := func(r *xrand.Rand, a float64) (sphere.Point, sphere.Point) {
					x, y := bitvec.Correlated(r, 64, a)
					return bitvec.SignVector(x), bitvec.SignVector(y)
				}
				p0 := core.EstimateCollision(rng, fam, gen, 0, cfg.Trials, 4)
				pa := core.EstimateCollision(rng, fam, gen, alpha, cfg.Trials, 4)
				return p0, pa
			},
		},
		{
			name: "anti-simhash-signembed",
			est: func(alpha float64) (core.Estimate, core.Estimate) {
				fam := sphere.AntiSimHash(64)
				gen := func(r *xrand.Rand, a float64) (sphere.Point, sphere.Point) {
					x, y := bitvec.Correlated(r, 64, a)
					return bitvec.SignVector(x), bitvec.SignVector(y)
				}
				p0 := core.EstimateCollision(rng, fam, gen, 0, cfg.Trials, 4)
				pa := core.EstimateCollision(rng, fam, gen, alpha, cfg.Trials, 4)
				return p0, pa
			},
		},
	}
	for _, e := range entries {
		for _, alpha := range []float64{0.25, 0.5, 0.75} {
			p0, pa := e.est(alpha)
			bound, ok := core.CheckLowerBound(p0, pa, alpha)
			okStr := "yes"
			if !ok {
				okStr = "VIOLATED"
			}
			rhoM := "-"
			if pa.P > 0 && p0.P > 0 && p0.P < 1 && pa.P < 1 {
				rhoM = f3(math.Log(p0.P) / math.Log(pa.P))
			}
			t.AddRow(e.name, f3(alpha), f4(p0.P), f4(pa.P), g4(bound), okStr,
				rhoM, f3((1-alpha)/(1+alpha)))
		}
	}
	t.AddNote("rho_measured = ln fhat(0)/ln fhat(alpha) must be >= rho_bound = (1-a)/(1+a); the filter family is closest (tight up to lower-order terms)")
	return t
}

// AntiBit is experiment E4 (Section 4.1): anti bit-sampling's
// rho- = ln(r)/ln(r/c) is Omega(1/ln c) and *worse* (larger) at small r
// than the sphere-based construction's (1-alpha)/(1+alpha) ~ r/(1-r)
// after the sim_H mapping alpha = 1 - 2r, and worse than the Euclidean
// construction's 1/c^2.
func AntiBit(cfg Config) *Table {
	t := &Table{
		ID:      "E4",
		Title:   "Sec 4.1: rho- of anti bit-sampling vs sphere filter vs Euclidean (c=2)",
		Columns: []string{"rel_dist_r", "antibit_rho", "sphere_rho", "euclid_rho", "winner"},
	}
	const c = 2.0
	euclidFam := euclid.NewPStable(16, 24, euclid.Theorem41Width(c))
	euclidRho := euclidFam.RhoMinus(1, c)
	for _, r := range []float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.3} {
		antibit := math.Log(r) / math.Log(r/c)
		// Sphere: alpha = 1 - 2r (similarity of the sign embedding);
		// optimal rho- = (1-alpha)/(1+alpha) at alpha' vs alpha... the
		// relevant gap is between distances r and r/c, i.e. similarities
		// 1-2r and 1-2r/c: rho- = ln f(1-2r)/ln f(1-2r/c) with
		// ln(1/f(a)) ~ (1+a)/(1-a):
		aFar := 1 - 2*r
		aNear := 1 - 2*r/c
		sphereRho := ((1 + aFar) / (1 - aFar)) / ((1 + aNear) / (1 - aNear))
		winner := "sphere"
		if euclidRho < sphereRho {
			winner = "euclid"
		}
		if antibit < math.Min(sphereRho, euclidRho) {
			winner = "antibit"
		}
		t.AddRow(f3(r), f3(antibit), f3(sphereRho), f3(euclidRho), winner)
	}
	t.AddNote("paper: anti bit-sampling rho- = Omega(1/ln c) is suboptimal; sphere/Euclidean reach O(1/c): anti bit-sampling never wins")
	return t
}

// EuclidRho is experiment E5 (Theorem 4.1): rho- * c^2 -> 1 as k grows.
func EuclidRho(cfg Config) *Table {
	t := &Table{
		ID:      "E5",
		Title:   "Thm 4.1: Euclidean R_{k,w}: rho- * c^2 -> 1 + O(1/k)",
		Columns: []string{"c", "k", "w(c)", "rho", "rho*c^2", "paper_bound_(k+.5)^2/(k-1)^2"},
	}
	for _, c := range []float64{1.5, 2, 3} {
		w := euclid.Theorem41Width(c)
		for _, k := range []int{2, 4, 8, 16, 32} {
			fam := euclid.NewPStable(16, k, w)
			rho := fam.RhoMinus(1, c)
			bound := math.Pow(float64(k)+0.5, 2) / math.Pow(float64(k)-1, 2)
			t.AddRow(f3(c), fmt.Sprint(k), f4(w), f4(rho), f4(rho*c*c), f4(bound))
		}
	}
	t.AddNote("rho*c^2 column approaches 1 from either side as k grows, within the paper's (k+1/2)^2/(k-1)^2 factor")
	return t
}

// PolyCPF is experiment E6 (Theorem 5.2): Hamming families with CPF
// P(t)/Delta for polynomials covering every root class.
func PolyCPF(cfg Config) *Table {
	rng := xrand.New(cfg.Seed)
	const d = 256
	t := &Table{
		ID:      "E6",
		Title:   "Thm 5.2: Hamming polynomial CPFs P(t)/Delta",
		Columns: []string{"P", "Delta", "t", "target_P/Delta", "measured", "ci_lo", "ci_hi"},
	}
	gen := func(r *xrand.Rand, tt float64) (bitvec.Vector, bitvec.Vector) {
		x := bitvec.Random(r, d)
		return x, bitvec.AtDistance(r, x, int(math.Round(tt*d)))
	}
	cases := []struct {
		name string
		p    poly.Poly
	}{
		{"t+0.5 (neg real)", poly.New(0.5, 1)},
		{"2-t (pos real)", poly.New(2, -1)},
		{"t^2 (zero roots)", poly.New(0, 0, 1)},
		{"t^2+2t+5 (complex)", poly.New(5, 2, 1)},
		{"3(t+1)(2-t) (product)", poly.New(1, 1).Mul(poly.New(2, -1)).Scale(3)},
	}
	for _, cse := range cases {
		scheme, err := hamming.PolynomialFamily(d, cse.p)
		if err != nil {
			panic(err)
		}
		for _, tt := range []float64{0, 0.25, 0.5, 0.75, 1} {
			tq := math.Round(tt*d) / d
			est := core.EstimateCollision(rng, scheme.Family, gen, tt, cfg.Trials, 4)
			want := scheme.P.Eval(tq) / scheme.Delta
			t.AddRow(cse.name, f3(scheme.Delta), f3(tt), f4(want), f4(est.P),
				f4(est.Interval.Lo), f4(est.Interval.Hi))
		}
	}
	t.AddNote("Delta matches the Thm 5.2 formula |a_k| 2^psi prod_{|z|>1}|z| for every case (asserted in tests)")
	return t
}

// Combinators is experiment E10 (Lemma 1.4): CPF algebra of concatenation
// and mixtures, verified empirically.
func Combinators(cfg Config) *Table {
	rng := xrand.New(cfg.Seed)
	const d = 256
	t := &Table{
		ID:      "E10",
		Title:   "Lemma 1.4: Concat = product CPF, Mixture = convex CPF",
		Columns: []string{"construction", "t", "analytic", "measured"},
	}
	gen := func(r *xrand.Rand, tt float64) (bitvec.Vector, bitvec.Vector) {
		x := bitvec.Random(r, d)
		return x, bitvec.AtDistance(r, x, int(math.Round(tt*d)))
	}
	concat := core.Concat[bitvec.Vector](hamming.BitSampling(d), hamming.AntiBitSampling(d))
	mixture := core.Mixture(
		[]core.Family[bitvec.Vector]{hamming.BitSampling(d), hamming.AntiBitSampling(d)},
		[]float64{0.3, 0.7},
	)
	for _, tt := range []float64{0.2, 0.5, 0.8} {
		est := core.EstimateCollision(rng, concat, gen, tt, cfg.Trials, 4)
		t.AddRow("concat: (1-t)*t", f3(tt), f4((1-tt)*tt), f4(est.P))
	}
	for _, tt := range []float64{0.2, 0.5, 0.8} {
		est := core.EstimateCollision(rng, mixture, gen, tt, cfg.Trials, 4)
		t.AddRow("mix: 0.3(1-t)+0.7t", f3(tt), f4(0.3*(1-tt)+0.7*tt), f4(est.P))
	}
	return t
}
