package experiments

import (
	"fmt"
	"math"

	"dsh/internal/core"
	"dsh/internal/index"
	"dsh/internal/privacy"
	"dsh/internal/psi"
	"dsh/internal/sphere"
	"dsh/internal/vec"
	"dsh/internal/workload"
	"dsh/internal/xrand"
)

// AnnulusSearch is experiment E7 (Theorems 6.1, 6.2, 6.4): the unimodal
// annulus index answers "find a point at similarity ~alphaMax" with
// recall >= 1/2 while scanning far fewer candidates than a linear scan,
// and matches the exponent of the [41]-style concatenation baseline.
func AnnulusSearch(cfg Config) *Table {
	rng := xrand.New(cfg.Seed)
	const d = 24
	const alphaTarget = 0.5
	within := func(q, x []float64) bool {
		a := vec.Dot(q, x)
		return a >= 0.35 && a <= 0.65
	}
	t := &Table{
		ID:      "E7",
		Title:   "Thm 6.1/6.4: annulus search vs linear scan vs [41]-style baseline",
		Columns: []string{"n", "structure", "L", "recall", "avg_candidates", "frac_of_n"},
	}
	queries := 10
	if cfg.Trials < 10000 {
		queries = 4
	}
	famDSH := sphere.NewAnnulus(d, alphaTarget, 1.8)
	Ldsh := index.RepetitionsForCPF(famDSH.CPF().Eval(alphaTarget))
	baseCPF := index.ConcatAnnulusCPF(6, 2)
	Lbase := index.RepetitionsForCPF(baseCPF.Eval(alphaTarget))
	for _, n := range []int{1000, 4000, 16000} {
		// One dataset per n: n noise points plus one planted target per
		// query (each query sees its own target; the others act as noise).
		points := workload.SpherePoints(rng, n, d)
		qs := make([][]float64, queries)
		for i := range qs {
			qs[i] = vec.RandomUnit(rng, d)
			points = append(points, workload.PointAtAlpha(rng, qs[i], alphaTarget))
		}
		// Build each structure once, then answer all queries.
		ai := index.NewAnnulus[[]float64](rng, famDSH, Ldsh, points, within)
		bi := index.ConcatAnnulusBaseline(rng, d, 6, 2, Lbase, points, within)
		ls := index.NewLinearScan(points)
		type result struct {
			name       string
			L          int
			hits       int
			candidates int
		}
		results := []*result{
			{name: "dsh-annulus", L: Ldsh},
			{name: "pagh17-baseline", L: Lbase},
			{name: "linear-scan", L: 0},
		}
		for _, q := range qs {
			if id, stats := ai.Query(q); true {
				if id >= 0 {
					results[0].hits++
				}
				results[0].candidates += stats.Candidates
			}
			if id, stats := bi.Query(q); true {
				if id >= 0 {
					results[1].hits++
				}
				results[1].candidates += stats.Candidates
			}
			if id, stats := ls.Query(q, within); true {
				if id >= 0 {
					results[2].hits++
				}
				results[2].candidates += stats.Candidates
			}
		}
		for _, r := range results {
			avg := float64(r.candidates) / float64(queries)
			t.AddRow(fmt.Sprint(n), r.name, fmt.Sprint(r.L),
				f3(float64(r.hits)/float64(queries)), f3(avg), f4(avg/float64(n)))
		}
	}
	t.AddNote("Thm 6.1 guarantees recall >= 1/2 per structure build; both hash structures scan a vanishing fraction of n while the scan is linear")
	return t
}

// RangeReport is experiment E8 (Theorem 6.5): with a step-function CPF the
// work per reported point is O(fmax/fmin); with a classical decreasing CPF
// (powered SimHash) very close points are found in nearly every repetition,
// so duplicate candidates blow up.
func RangeReport(cfg Config) *Table {
	rng := xrand.New(cfg.Seed)
	const d = 24
	// Report all points with similarity >= 0.75. The planted cluster is
	// large and *very* close to the query (alpha in [0.93, 0.995]): the
	// regime the paper highlights ("classical LSH data structures are
	// inefficient when many near neighbors need to be found"), where a
	// decreasing CPF re-finds each near point in a constant fraction of
	// all repetitions, so the duplicate term |S| * fmax/fmin dominates.
	alphas := make([]float64, 300)
	for i := range alphas {
		alphas[i] = 0.93 + 0.065*float64(i)/float64(len(alphas)-1)
	}
	inRange := func(q, x []float64) bool { return vec.Dot(q, x) >= 0.75 }
	t := &Table{
		ID:      "E8",
		Title:   "Thm 6.5: output-sensitive range reporting: step CPF vs classical LSH",
		Columns: []string{"structure", "L", "reported", "candidates", "dups_per_report", "work_per_report"},
	}
	nNoise := 1000
	queries := 4
	if cfg.Trials < 10000 {
		queries = 2
		nNoise = 500
	}
	stepFam := sphere.NewStep(d, 0.75, 0.97, 5, 1.6)
	fmin, fmax := sphere.PlateauStats(stepFam.CPF(), 0.75, 0.97, 30)
	Lstep := index.RepetitionsForCPF(fmin)
	k := 14 // concatenation length: collision prob at 0.75 comparable to step plateau
	powered := core.Power[[]float64](sphere.SimHash(d), k)
	fAt075 := math.Pow(sphere.SimHashCPF(0.75), float64(k))
	Lcls := index.RepetitionsForCPF(fAt075)

	// One dataset: noise plus one planted cluster per query.
	points := workload.SpherePoints(rng, nNoise, d)
	qs := make([][]float64, queries)
	for i := range qs {
		qs[i] = vec.RandomUnit(rng, d)
		for _, a := range alphas {
			points = append(points, workload.PointAtAlpha(rng, qs[i], a))
		}
	}
	rrStep := index.NewRangeReporter[[]float64](rng, stepFam, Lstep, points, inRange)
	rrCls := index.NewRangeReporter[[]float64](rng, powered, Lcls, points, inRange)

	type agg struct {
		reported, candidates, distinct int
	}
	var stepAgg, clsAgg agg
	for _, q := range qs {
		got, stats := rrStep.Query(q)
		stepAgg.reported += len(got)
		stepAgg.candidates += stats.Candidates
		stepAgg.distinct += stats.Distinct

		got, stats = rrCls.Query(q)
		clsAgg.reported += len(got)
		clsAgg.candidates += stats.Candidates
		clsAgg.distinct += stats.Distinct
	}
	addAgg := func(name string, L int, a agg) {
		rep := math.Max(1, float64(a.reported))
		t.AddRow(name, fmt.Sprint(L), fmt.Sprint(a.reported), fmt.Sprint(a.candidates),
			f3(float64(a.candidates-a.distinct)/rep), f3(float64(a.candidates)/rep))
	}
	addAgg("step-cpf", Lstep, stepAgg)
	addAgg(fmt.Sprintf("simhash^%d", k), Lcls, clsAgg)
	t.AddNote("step plateau fmax/fmin = %.2f bounds work/report (Thm 6.5); classical CPF rises toward 1 for near points, so each is re-found in ~f*L repetitions", fmax/fmin)
	return t
}

// Privacy is experiment E9 (Section 6.4): the PSI-based distance estimator
// achieves the (eps, delta) guarantees, with flat leakage across the close
// range, over both plaintext and DH PSI.
func Privacy(cfg Config) *Table {
	rng := xrand.New(cfg.Seed)
	const d = 24
	// Close regime: similarity in [0.5, 0.9] (the plateau). Far regime:
	// similarity <= -0.2, where the step CPF has decayed by ~7x.
	fam := sphere.NewStep(d, 0.5, 0.9, 4, 2.2)
	fmin, fmax := sphere.PlateauStats(fam.CPF(), 0.5, 0.9, 30)
	pFar := fam.CPF().Eval(-0.2)
	const eps = 0.1
	est, err := privacy.NewEstimator[[]float64](rng, fam, fmin, pFar, eps)
	if err != nil {
		panic(err)
	}
	t := &Table{
		ID:      "E9",
		Title:   "Sec 6.4: private distance estimation over PSI",
		Columns: []string{"alpha", "regime", "yes_rate", "avg_intersection", "predicted"},
	}
	reps := 60
	if cfg.Trials < 10000 {
		reps = 25
	}
	for _, alpha := range []float64{0.85, 0.7, 0.55, 0.2, -0.2, -0.5} {
		regime := "close"
		pred := fmt.Sprintf(">=%.2f yes", 1-eps)
		switch {
		case alpha < -0.2+1e-9:
			regime = "far"
			pred = fmt.Sprintf("<=%.3f yes", est.PredictedFalsePositive())
		case alpha < 0.5:
			regime = "gap"
			pred = "(no guarantee)"
		}
		yes := 0
		totalInter := 0
		for i := 0; i < reps; i++ {
			x, q := vec.UnitPairWithDot(rng, d, alpha)
			out, err := est.Estimate(x, q, psi.Plaintext{})
			if err != nil {
				panic(err)
			}
			if out.Close {
				yes++
			}
			totalInter += out.IntersectionSize
		}
		t.AddRow(f3(alpha), regime, f3(float64(yes)/float64(reps)),
			f3(float64(totalInter)/float64(reps)), pred)
	}
	t.AddNote("N = %d hash pairs; plateau fmax/fmin = %.2f keeps close-pair intersections statistically flat (privacy)", est.N(), fmax/fmin)
	if cfg.Trials >= 10000 {
		// One end-to-end DH-PSI execution for the transcript comparison
		// (skipped in quick mode: ~3N modular exponentiations).
		x, q := vec.UnitPairWithDot(rng, d, 0.8)
		outP, _ := est.Estimate(x, q, psi.Plaintext{})
		outD, errDH := est.Estimate(x, q, psi.DH{})
		if errDH == nil {
			t.AddNote("DH-PSI transcript: %d bytes vs plaintext %d bytes; identical answers: %v",
				outD.TranscriptBytes, outP.TranscriptBytes, outD.Close == outP.Close)
		}
	}
	return t
}

// All runs every experiment.
func All(cfg Config) []*Table {
	return []*Table{
		Figure1(cfg), Figure2(cfg), Figure3(cfg), Figure4(cfg),
		FilterCPF(cfg), CrossPolytopeExp(cfg), LowerBound(cfg),
		AntiBit(cfg), EuclidRho(cfg), PolyCPF(cfg),
		AnnulusSearch(cfg), RangeReport(cfg), Privacy(cfg),
		Combinators(cfg),
		AnnulusJoin(cfg), CPFDesign(cfg), TaylorCPF(cfg),
		HyperplaneQueries(cfg), KernelSpaces(cfg),
	}
}
