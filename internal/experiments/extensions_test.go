package experiments

import (
	"math"
	"testing"
)

func TestAnnulusJoinPrunesAndRecalls(t *testing.T) {
	tbl := AnnulusJoin(cfg())
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	joinRow, bruteRow := tbl.Rows[0], tbl.Rows[1]
	if parse(t, joinRow[3]) < 0.6 {
		t.Errorf("join recall %s too low", joinRow[3])
	}
	joinFrac := parse(t, joinRow[5])
	if joinFrac >= 0.8 {
		t.Errorf("join verified fraction %v not below brute force", joinFrac)
	}
	if bruteRow[5] != "1.0000" {
		t.Errorf("brute force fraction = %s", bruteRow[5])
	}
}

func TestCPFDesignFitsTargets(t *testing.T) {
	tbl := CPFDesign(cfg())
	for _, row := range tbl.Rows {
		mass := parse(t, row[1])
		if mass < 0 || mass > 1+1e-9 {
			t.Errorf("%s: mass %v out of [0,1]", row[0], mass)
		}
		maxErr := parse(t, row[2])
		// The ramp has a kink (not exactly representable); others are
		// near-exact.
		limit := 0.02
		if row[0] == "ramp min(2t,1)/2" {
			limit = 0.15
		}
		if maxErr > limit {
			t.Errorf("%s: max error %v exceeds %v", row[0], maxErr, limit)
		}
	}
}

func TestTaylorCPFFeasibilityBoundary(t *testing.T) {
	tbl := TaylorCPF(cfg())
	feasible, infeasible := 0, 0
	for _, row := range tbl.Rows {
		switch {
		case row[2] == "yes":
			feasible++
			if parse(t, row[4]) > 0.1 {
				t.Errorf("c=%s deg=%s: truncation error %s too large", row[0], row[1], row[4])
			}
		default:
			infeasible++
			if row[1] == "2" {
				t.Errorf("degree-2 truncation at c=%s should be feasible", row[0])
			}
		}
	}
	if feasible < 6 || infeasible < 3 {
		t.Errorf("feasibility split %d/%d unexpected", feasible, infeasible)
	}
}

func TestHyperplaneQueriesSublinear(t *testing.T) {
	tbl := HyperplaneQueries(cfg())
	for _, row := range tbl.Rows {
		if parse(t, row[3]) < 0.5 {
			t.Errorf("alpha=%s: recall %s below 1/2", row[0], row[3])
		}
		if parse(t, row[5]) > 0.25 {
			t.Errorf("alpha=%s: candidate fraction %s not sublinear", row[0], row[5])
		}
		rho := parse(t, row[1])
		if rho <= 0 || rho >= 1 {
			t.Errorf("rho* = %v out of (0,1)", rho)
		}
	}
}

func TestKernelSpacesPeaksAtKernelHalf(t *testing.T) {
	tbl := KernelSpaces(cfg())
	var peakMeasured, nearMeasured, farMeasured float64
	for _, row := range tbl.Rows {
		dist := parse(t, row[0])
		m := parse(t, row[3])
		switch {
		case math.Abs(dist-2.355) < 0.01:
			peakMeasured = m
		case dist == 0.5:
			nearMeasured = m
		case dist == 5:
			farMeasured = m
		}
	}
	if peakMeasured <= nearMeasured || peakMeasured <= farMeasured {
		t.Errorf("lifted CPF not peaked: near=%v peak=%v far=%v",
			nearMeasured, peakMeasured, farMeasured)
	}
}
