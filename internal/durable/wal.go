package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"dsh/internal/obs"
)

// WAL record framing: [u32 payload length][u32 CRC32C of payload][payload].
// The length is bounded (walMaxRecord) so a torn or corrupted length field
// cannot make the reader attempt a multi-gigabyte allocation.
const (
	walHeaderSize = 8
	walMaxRecord  = 1 << 28 // 256 MiB; far above any index record
)

// crc32Sum is the CRC32C used by every durable file format.
func crc32Sum(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// Pos addresses a WAL byte: the log file's rotation sequence number and
// the record's starting offset within it. Positions order
// lexicographically (Seq, then Off); the manifest watermark is a Pos and
// replay skips records strictly below it.
type Pos struct {
	Seq uint64
	Off int64
}

// Less reports whether p precedes q in the log.
func (p Pos) Less(q Pos) bool {
	if p.Seq != q.Seq {
		return p.Seq < q.Seq
	}
	return p.Off < q.Off
}

// WALName returns the file name of the WAL with the given sequence
// number.
func WALName(seq uint64) string { return fmt.Sprintf("wal-%08d.log", seq) }

// parseWALSeq extracts the sequence number from a WAL file name, or
// reports false.
func parseWALSeq(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	n, err := strconv.ParseUint(name[len("wal-"):len(name)-len(".log")], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// WAL is an append-only checksummed log file. Appends are not
// internally locked: the index calls Append under its structural mutex,
// which also makes WAL order identical to apply order — the property
// replay depends on.
type WAL struct {
	env      *Env
	f        *os.File
	seq      uint64
	off      int64 // end of the last accepted record
	lastSync time.Time
	hdr      [walHeaderSize]byte
}

// CreateWAL creates (or truncates) the log file for the given sequence
// number. Fault point "wal:create". The new file is made durable with a
// directory sync so a post-rotation crash cannot lose the file itself.
func (e *Env) CreateWAL(seq uint64) (*WAL, error) {
	if err := e.check("wal:create"); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(e.dir, WALName(seq)), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, e.fail(err)
	}
	if err := e.syncDir(); err != nil {
		_ = f.Close()
		return nil, err
	}
	mWALRotations.Inc(e.stripe)
	obs.RecordEvent("wal.rotate", int64(seq), 0)
	return &WAL{env: e, f: f, seq: seq}, nil
}

// Seq returns the log's rotation sequence number.
func (w *WAL) Seq() uint64 { return w.seq }

// End returns the position one past the last accepted record — the Pos
// the next Append will return.
func (w *WAL) End() Pos { return Pos{Seq: w.seq, Off: w.off} }

// Append writes one record and applies the fsync policy. It returns the
// record's starting position. Fault points "wal:append" (before the
// write, so a fault leaves the record entirely absent) and "wal:sync".
//
// A record interrupted mid-write by a real crash leaves a torn tail;
// ReadWAL detects it by length/checksum and truncates replay there.
func (w *WAL) Append(payload []byte) (Pos, error) {
	if err := w.env.check("wal:append"); err != nil {
		return Pos{}, err
	}
	if len(payload) > walMaxRecord {
		return Pos{}, w.env.fail(fmt.Errorf("durable: WAL record too large (%d bytes)", len(payload)))
	}
	pos := Pos{Seq: w.seq, Off: w.off}
	binary.LittleEndian.PutUint32(w.hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(w.hdr[4:8], crc32Sum(payload))
	if _, err := w.f.Write(w.hdr[:]); err != nil {
		return Pos{}, w.env.fail(err)
	}
	if _, err := w.f.Write(payload); err != nil {
		return Pos{}, w.env.fail(err)
	}
	w.off += int64(walHeaderSize + len(payload))
	mWALAppends.Inc(w.env.stripe)
	mWALBytes.Add(w.env.stripe, uint64(walHeaderSize+len(payload)))
	switch w.env.opts.Fsync {
	case FsyncAlways:
		if err := w.Sync(); err != nil {
			return pos, err
		}
	case FsyncInterval:
		if time.Since(w.lastSync) >= w.env.opts.Interval {
			if err := w.Sync(); err != nil {
				return pos, err
			}
		}
	}
	return pos, nil
}

// Sync forces the log to disk. Fault point "wal:sync".
func (w *WAL) Sync() error {
	if err := w.env.check("wal:sync"); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return w.env.fail(err)
	}
	w.lastSync = time.Now()
	mWALFsyncs.Inc(w.env.stripe)
	return nil
}

// Close syncs and closes the log file. The final sync keeps
// FsyncNever/Interval tails from being lost on a clean shutdown.
func (w *WAL) Close() error {
	err := w.Sync()
	if cerr := w.f.Close(); err == nil && cerr != nil {
		err = w.env.fail(cerr)
	}
	return err
}

// WALRecord is one replayed record and the position it started at.
type WALRecord struct {
	Pos     Pos
	Payload []byte
}

// ReadWAL reads every intact record of the given log file, stopping —
// without error — at the first torn or checksum-failing record: anything
// beyond a corrupt point was never acknowledged as durable, exactly as
// if the crash had happened one record earlier. A missing file reads as
// empty, which keeps replay robust to a crash between manifest commit
// and the creation of the next log.
func (e *Env) ReadWAL(seq uint64) ([]WALRecord, error) {
	data, err := os.ReadFile(filepath.Join(e.dir, WALName(seq)))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var recs []WALRecord
	off := int64(0)
	for int(off)+walHeaderSize <= len(data) {
		n := binary.LittleEndian.Uint32(data[off : off+4])
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n > walMaxRecord {
			break // corrupt length: treat as torn tail
		}
		body := data[off+walHeaderSize:]
		if uint32(len(body)) < n {
			break // torn mid-payload
		}
		payload := body[:n]
		if crc32Sum(payload) != sum {
			break // bit-flipped, or torn with a plausible length
		}
		recs = append(recs, WALRecord{Pos: Pos{Seq: seq, Off: off}, Payload: payload})
		off += int64(walHeaderSize) + int64(n)
	}
	return recs, nil
}

// ListWALs returns the sequence numbers of the WAL files present in the
// directory, ascending.
func (e *Env) ListWALs() ([]uint64, error) {
	entries, err := os.ReadDir(e.dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, ent := range entries {
		if s, ok := parseWALSeq(ent.Name()); ok {
			seqs = append(seqs, s)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}
