package durable

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// The manifest is the commit point of the durable state: it names the
// live segment files, carries the tombstone bitmap and external-key
// table as of its capture, and records the WAL watermark from which
// replay resumes. Manifests are numbered by the WAL sequence they
// commit (each persist rotates the WAL, so numbers are unique and
// monotone) and written with the atomic temp-fsync-rename-dirsync
// protocol; recovery loads the highest checksum-valid manifest and
// falls back to older ones, which is safe because files referenced by
// manifest N are deleted only after manifest N+1 is durable.
const (
	manMagic   = 0x0a316e616d_687364 // "dsh" "man1\n" packed LE
	manVersion = 1
)

// SegmentRef names one live segment file and the contiguous global-id
// range its rows held at capture. Segments are listed oldest-first;
// their Base values are strictly increasing and their row ranges tile
// [0, IDBound) when followed by the buffered-region WAL inserts.
type SegmentRef struct {
	Name string
	Base uint32 // first global id of the segment's rows at capture
	Rows uint32
}

// Manifest is the decoded durable state descriptor.
type Manifest struct {
	// Seq is the WAL sequence this manifest commits: WAL files with a
	// lower sequence are the buffered region (their inserts are already
	// reflected in the segments or pending rows, their deletes in Dead),
	// files at or above it are the live region and replay in full.
	Seq uint64
	// Watermark is where replay of the buffered region starts — the log
	// position of the oldest row not yet persisted into a segment file.
	Watermark Pos
	// NextSeg is the next segment file number to allocate.
	NextSeg uint64
	// Seed and L rebuild the hash family deterministically (the family is
	// re-sampled on open, never re-evaluated on points).
	Seed uint64
	L    uint32
	// Shards is 0 for a plain DynamicIndex; for a sharded top-level
	// manifest it is the shard count and Routing the routing mode.
	Shards  uint32
	Routing uint32
	// IDBound is len(points) at capture; Epoch, GCCollected and
	// GCReclaimed restore the observable GC counters.
	IDBound     uint64
	Epoch       uint64
	GCCollected uint64
	GCReclaimed uint64
	// Segments lists the live segment files, oldest first.
	Segments []SegmentRef
	// Dead is the tombstone bitmap over [0, IDBound) as 64-bit words.
	Dead []uint64
	// KeyedKeys/KeyedIDs are the external-key table pairs at capture
	// (parallel slices; empty for unkeyed indexes).
	KeyedKeys []uint64
	KeyedIDs  []int32
}

// ManifestName returns the file name of the manifest committing WAL
// sequence seq.
func ManifestName(seq uint64) string { return fmt.Sprintf("manifest-%08d.mf", seq) }

func parseManifestSeq(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "manifest-") || !strings.HasSuffix(name, ".mf") {
		return 0, false
	}
	n, err := strconv.ParseUint(name[len("manifest-"):len(name)-len(".mf")], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// WriteManifest commits m atomically under its sequence-derived name.
// Fault points "man:write", "man:sync", "man:rename", "dir:sync".
func (e *Env) WriteManifest(m *Manifest) error {
	b := appendManifest(nil, m)
	b = binary.LittleEndian.AppendUint32(b, crc32Sum(b))
	if err := e.atomicWrite(ManifestName(m.Seq), b, "man"); err != nil {
		return err
	}
	mManifests.Inc(e.stripe)
	return nil
}

func appendManifest(b []byte, m *Manifest) []byte {
	b = binary.LittleEndian.AppendUint64(b, manMagic)
	b = binary.LittleEndian.AppendUint32(b, manVersion)
	b = binary.LittleEndian.AppendUint64(b, m.Seq)
	b = binary.LittleEndian.AppendUint64(b, m.Watermark.Seq)
	b = binary.LittleEndian.AppendUint64(b, uint64(m.Watermark.Off))
	b = binary.LittleEndian.AppendUint64(b, m.NextSeg)
	b = binary.LittleEndian.AppendUint64(b, m.Seed)
	b = binary.LittleEndian.AppendUint32(b, m.L)
	b = binary.LittleEndian.AppendUint32(b, m.Shards)
	b = binary.LittleEndian.AppendUint32(b, m.Routing)
	b = binary.LittleEndian.AppendUint64(b, m.IDBound)
	b = binary.LittleEndian.AppendUint64(b, m.Epoch)
	b = binary.LittleEndian.AppendUint64(b, m.GCCollected)
	b = binary.LittleEndian.AppendUint64(b, m.GCReclaimed)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(m.Segments)))
	for _, s := range m.Segments {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(s.Name)))
		b = append(b, s.Name...)
		b = binary.LittleEndian.AppendUint32(b, s.Base)
		b = binary.LittleEndian.AppendUint32(b, s.Rows)
	}
	b = appendU64s(b, m.Dead)
	b = appendU64s(b, m.KeyedKeys)
	b = appendI32s(b, m.KeyedIDs)
	return b
}

// decodeManifest parses one manifest file's bytes; it reports ErrCorrupt
// on any checksum or structural failure so LoadManifest can fall back.
func decodeManifest(name string, data []byte) (*Manifest, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("%w: %s: short file", ErrCorrupt, name)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32Sum(body) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("%w: %s: checksum mismatch", ErrCorrupt, name)
	}
	c := cursor{b: body, name: name}
	if mg := c.u64(); mg != manMagic {
		return nil, fmt.Errorf("%w: %s: bad magic %#x", ErrCorrupt, name, mg)
	}
	if v := c.u32(); v != manVersion {
		return nil, fmt.Errorf("%w: %s: unsupported version %d", ErrCorrupt, name, v)
	}
	m := &Manifest{}
	m.Seq = c.u64()
	m.Watermark.Seq = c.u64()
	m.Watermark.Off = int64(c.u64())
	m.NextSeg = c.u64()
	m.Seed = c.u64()
	m.L = c.u32()
	m.Shards = c.u32()
	m.Routing = c.u32()
	m.IDBound = c.u64()
	m.Epoch = c.u64()
	m.GCCollected = c.u64()
	m.GCReclaimed = c.u64()
	nseg := int(c.u32())
	if c.err != nil || nseg < 0 || nseg > 1<<20 {
		return nil, fmt.Errorf("%w: %s: bad segment count", ErrCorrupt, name)
	}
	m.Segments = make([]SegmentRef, nseg)
	for i := range m.Segments {
		nameBytes := c.bytes()
		m.Segments[i] = SegmentRef{Name: string(nameBytes), Base: c.u32(), Rows: c.u32()}
	}
	m.Dead = c.u64s()
	m.KeyedKeys = c.u64s()
	m.KeyedIDs = c.i32s()
	if c.err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, name, c.err)
	}
	if len(m.KeyedKeys) != len(m.KeyedIDs) {
		return nil, fmt.Errorf("%w: %s: keyed table length mismatch", ErrCorrupt, name)
	}
	return m, nil
}

// LoadManifest returns the newest checksum-valid manifest in the
// directory, falling back across corrupt or torn candidates (a crash
// mid-manifest-write leaves only a .tmp file, which is never
// considered). It returns nil with no error when the directory holds no
// manifest at all — a fresh store.
func (e *Env) LoadManifest() (*Manifest, error) {
	entries, err := os.ReadDir(e.dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, ent := range entries {
		if s, ok := parseManifestSeq(ent.Name()); ok {
			seqs = append(seqs, s)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
	var firstErr error
	for _, s := range seqs {
		name := ManifestName(s)
		data, err := os.ReadFile(filepath.Join(e.dir, name))
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		m, err := decodeManifest(name, data)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		return m, nil
	}
	if len(seqs) > 0 {
		return nil, fmt.Errorf("durable: no valid manifest (newest error: %w)", firstErr)
	}
	return nil, nil
}

// Retire deletes files obsoleted by the (already durable) manifest m:
// older manifests, WAL files below the watermark, segment files not in
// the live set, and stray temp files. It is idempotent — a crash during
// retirement just leaves extra files for the next pass. Fault point
// "retire" per removal.
func (e *Env) Retire(m *Manifest) error {
	entries, err := os.ReadDir(e.dir)
	if err != nil {
		return err
	}
	live := make(map[string]bool, len(m.Segments))
	for _, s := range m.Segments {
		live[s.Name] = true
	}
	for _, ent := range entries {
		name := ent.Name()
		var stale bool
		switch {
		case strings.HasSuffix(name, ".tmp"):
			stale = true
		case IsSegmentName(name):
			stale = !live[name]
		default:
			if s, ok := parseManifestSeq(name); ok {
				stale = s < m.Seq
			} else if s, ok := parseWALSeq(name); ok {
				stale = s < m.Watermark.Seq
			}
		}
		if !stale {
			continue
		}
		if err := e.Remove(name); err != nil {
			return err
		}
	}
	return nil
}
