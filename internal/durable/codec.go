package durable

import (
	"encoding/binary"
	"fmt"
	"math"

	"dsh/internal/bitvec"
)

// PointCodec serializes index points for the WAL and segment files. The
// durable layer treats payloads as opaque bytes; the codec is the one
// place the point representation is pinned, so changing it is a format
// version bump.
type PointCodec[P any] interface {
	// AppendPoint appends p's encoding to dst and returns the extended
	// slice.
	AppendPoint(dst []byte, p P) []byte
	// DecodePoint parses one payload produced by AppendPoint.
	DecodePoint(b []byte) (P, error)
}

// Float64Codec encodes []float64 points as raw little-endian IEEE-754
// words (no length prefix: the payload framing already bounds it).
type Float64Codec struct{}

// AppendPoint implements PointCodec.
func (Float64Codec) AppendPoint(dst []byte, p []float64) []byte {
	for _, x := range p {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(x))
	}
	return dst
}

// DecodePoint implements PointCodec.
func (Float64Codec) DecodePoint(b []byte) ([]float64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("%w: float64 payload length %d not a multiple of 8", ErrCorrupt, len(b))
	}
	p := make([]float64, len(b)/8)
	for i := range p {
		p[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return p, nil
}

// BitvecCodec encodes bitvec.Vector points as a u32 dimension followed
// by the packed words.
type BitvecCodec struct{}

// AppendPoint implements PointCodec.
func (BitvecCodec) AppendPoint(dst []byte, v bitvec.Vector) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(v.Dim()))
	for _, w := range v.Words() {
		dst = binary.LittleEndian.AppendUint64(dst, w)
	}
	return dst
}

// DecodePoint implements PointCodec.
func (BitvecCodec) DecodePoint(b []byte) (bitvec.Vector, error) {
	if len(b) < 4 {
		return bitvec.Vector{}, fmt.Errorf("%w: bitvec payload too short", ErrCorrupt)
	}
	d := int(binary.LittleEndian.Uint32(b))
	rest := b[4:]
	want := (d + 63) / 64
	if len(rest) != 8*want {
		return bitvec.Vector{}, fmt.Errorf("%w: bitvec payload has %d word bytes, want %d", ErrCorrupt, len(rest), 8*want)
	}
	words := make([]uint64, want)
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(rest[8*i:])
	}
	return bitvec.FromWords(d, words), nil
}
