package durable

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func testEnv(t *testing.T, opts Options) *Env {
	t.Helper()
	e, err := OpenEnv(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestWALEmptyAndMissing: a freshly created log replays to nothing, and a
// sequence with no file at all reads as empty rather than erroring — a
// crash between manifest commit and next-log creation leaves exactly that.
func TestWALEmptyAndMissing(t *testing.T) {
	e := testEnv(t, Options{})
	w, err := e.CreateWAL(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := e.ReadWAL(1)
	if err != nil || len(recs) != 0 {
		t.Fatalf("empty log replayed %d records (err %v)", len(recs), err)
	}
	recs, err = e.ReadWAL(99)
	if err != nil || recs != nil {
		t.Fatalf("missing log: got %v, %v; want nil, nil", recs, err)
	}
}

// TestWALRoundTripPositions checks framing and position accounting:
// every record replays byte-identical at the Pos its Append returned.
func TestWALRoundTripPositions(t *testing.T) {
	e := testEnv(t, Options{Fsync: FsyncAlways})
	w, err := e.CreateWAL(3)
	if err != nil {
		t.Fatal(err)
	}
	payloads := [][]byte{[]byte("alpha"), {}, []byte("gamma-longer-payload")}
	var poss []Pos
	for _, p := range payloads {
		pos, err := w.Append(p)
		if err != nil {
			t.Fatal(err)
		}
		poss = append(poss, pos)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := e.ReadWAL(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(payloads) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(payloads))
	}
	for i, r := range recs {
		if r.Pos != poss[i] {
			t.Fatalf("record %d at %+v, want %+v", i, r.Pos, poss[i])
		}
		if !bytes.Equal(r.Payload, payloads[i]) {
			t.Fatalf("record %d payload %q, want %q", i, r.Payload, payloads[i])
		}
	}
	if !poss[0].Less(poss[1]) || poss[1].Less(poss[0]) {
		t.Fatal("Pos ordering broken within one file")
	}
	if !poss[2].Less(Pos{Seq: 4}) {
		t.Fatal("Pos ordering broken across sequences")
	}
}

// TestWALTornTailTruncates cuts the final record mid-payload — the
// classic torn write — and expects replay to stop cleanly before it.
func TestWALTornTailTruncates(t *testing.T) {
	e := testEnv(t, Options{Fsync: FsyncAlways})
	w, err := e.CreateWAL(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"first", "second", "third-and-torn"} {
		if _, err := w.Append([]byte(p)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(e.Dir(), WALName(1))
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-3); err != nil {
		t.Fatal(err)
	}
	recs, err := e.ReadWAL(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || string(recs[0].Payload) != "first" || string(recs[1].Payload) != "second" {
		t.Fatalf("torn tail: replayed %d records, want the 2 intact ones", len(recs))
	}
}

// TestWALCorruptMidRecordStopsReplay flips a bit inside a middle record:
// replay must stop at the damage (nothing after a corrupt point was
// acknowledged as durable) without erroring.
func TestWALCorruptMidRecordStopsReplay(t *testing.T) {
	e := testEnv(t, Options{Fsync: FsyncAlways})
	w, err := e.CreateWAL(1)
	if err != nil {
		t.Fatal(err)
	}
	var second Pos
	for i, p := range []string{"first", "second", "third"} {
		pos, err := w.Append([]byte(p))
		if err != nil {
			t.Fatal(err)
		}
		if i == 1 {
			second = pos
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a payload bit of the second record (skip its 8-byte header).
	if err := FlipBit(filepath.Join(e.Dir(), WALName(1)), second.Off+walHeaderSize+1, 4); err != nil {
		t.Fatal(err)
	}
	recs, err := e.ReadWAL(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0].Payload) != "first" {
		t.Fatalf("corrupt mid-record: replayed %d records, want 1", len(recs))
	}
}

// TestManifestFallback commits two manifests, corrupts the newer, and
// expects LoadManifest to fall back to the older intact one — the
// guarantee that makes deleting old files only after the successor is
// durable safe.
func TestManifestFallback(t *testing.T) {
	e := testEnv(t, Options{})
	if m, err := e.LoadManifest(); m != nil || err != nil {
		t.Fatalf("fresh dir: got %v, %v; want nil, nil", m, err)
	}
	m2 := &Manifest{Seq: 2, Watermark: Pos{Seq: 1, Off: 16}, Seed: 7, L: 4,
		Segments: []SegmentRef{{Name: SegmentName(0), Rows: 10}}, Dead: []uint64{5}}
	if err := e.WriteManifest(m2); err != nil {
		t.Fatal(err)
	}
	m5 := &Manifest{Seq: 5, Watermark: Pos{Seq: 4}, Seed: 7, L: 4}
	if err := e.WriteManifest(m5); err != nil {
		t.Fatal(err)
	}
	got, err := e.LoadManifest()
	if err != nil || got.Seq != 5 {
		t.Fatalf("got seq %d (err %v), want newest (5)", got.Seq, err)
	}
	if err := FlipBit(filepath.Join(e.Dir(), ManifestName(5)), 20, 1); err != nil {
		t.Fatal(err)
	}
	got, err = e.LoadManifest()
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 2 || got.Watermark != m2.Watermark || got.Seed != m2.Seed ||
		!reflect.DeepEqual(got.Segments, m2.Segments) || !reflect.DeepEqual(got.Dead, m2.Dead) {
		t.Fatalf("fallback manifest %+v, want %+v", got, m2)
	}
}

// TestSegmentRoundTripAndChecksum round-trips a segment file and then
// proves a single flipped bit is rejected with ErrCorrupt.
func TestSegmentRoundTripAndChecksum(t *testing.T) {
	e := testEnv(t, Options{})
	sd := &SegmentData{
		GlobalIDs: []int32{0, 1, 2},
		Reps: []RepData{
			{Keys: []uint64{9, 9, 11}, Table: TableData{Mask: 3, Keys: []uint64{9, 11}, SlotBucket: []int32{0, 1}, Starts: []int32{0, 2, 3}, IDs: []int32{0, 1, 2}}},
			{Keys: []uint64{4, 5, 6}, Table: TableData{Mask: 7, Keys: []uint64{4, 5, 6}, SlotBucket: []int32{0, 1, 2}, Starts: []int32{0, 1, 2, 3}, IDs: []int32{0, 1, 2}}},
		},
		Points: [][]byte{[]byte("p0"), []byte("p1"), []byte("p2")},
	}
	name := SegmentName(0)
	if err := e.WriteSegment(name, sd); err != nil {
		t.Fatal(err)
	}
	got, err := e.ReadSegment(name)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sd) {
		t.Fatalf("round trip diverged:\ngot  %+v\nwant %+v", got, sd)
	}
	if err := FlipBit(filepath.Join(e.Dir(), name), 30, 6); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ReadSegment(name); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit-flipped segment read returned %v, want ErrCorrupt", err)
	}
}

// TestAtomicWriteFaultLeavesNoCommittedFile kills the writer at each
// stage of the temp-fsync-rename protocol and checks the committed name
// never appears half-written, the env latches, and Retire cleans the
// leftover temp file.
func TestAtomicWriteFaultLeavesNoCommittedFile(t *testing.T) {
	for _, stage := range []string{"seg:write", "seg:sync"} {
		e, err := OpenEnv(t.TempDir(), Options{Hooks: FailAt(map[string]int{stage: 0})})
		if err != nil {
			t.Fatal(err)
		}
		name := SegmentName(7)
		sd := &SegmentData{GlobalIDs: []int32{0}, Reps: []RepData{{Keys: []uint64{1}, Table: TableData{Mask: 0, Keys: []uint64{1}, SlotBucket: []int32{0}, Starts: []int32{0, 1}, IDs: []int32{0}}}}, Points: [][]byte{[]byte("x")}}
		if err := e.WriteSegment(name, sd); !errors.Is(err, ErrCrashed) {
			t.Fatalf("%s: write returned %v, want ErrCrashed", stage, err)
		}
		if _, err := os.Stat(filepath.Join(e.Dir(), name)); !os.IsNotExist(err) {
			t.Fatalf("%s: committed file exists after mid-protocol crash", stage)
		}
		// Crashed env refuses further work.
		if err := e.WriteSegment(SegmentName(8), sd); !errors.Is(err, ErrCrashed) {
			t.Fatalf("%s: crashed env accepted another write: %v", stage, err)
		}
		// A fresh env (the restarted process) retires the leftover temp file.
		e2, err := OpenEnv(e.Dir(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := e2.Retire(&Manifest{Seq: 1, Watermark: Pos{Seq: 1}}); err != nil {
			t.Fatal(err)
		}
		left, err := os.ReadDir(e.Dir())
		if err != nil {
			t.Fatal(err)
		}
		for _, ent := range left {
			if filepath.Ext(ent.Name()) == ".tmp" {
				t.Fatalf("%s: temp file %s survived retirement", stage, ent.Name())
			}
		}
	}
}

// TestRetireKeepsLiveFiles populates a directory with a mix of live and
// obsolete files and checks Retire removes exactly the obsolete set.
func TestRetireKeepsLiveFiles(t *testing.T) {
	e := testEnv(t, Options{})
	sd := &SegmentData{GlobalIDs: []int32{0}, Reps: []RepData{{Keys: []uint64{1}, Table: TableData{Mask: 0, Keys: []uint64{1}, SlotBucket: []int32{0}, Starts: []int32{0, 1}, IDs: []int32{0}}}}, Points: [][]byte{[]byte("x")}}
	for n := uint64(0); n < 3; n++ {
		if err := e.WriteSegment(SegmentName(n), sd); err != nil {
			t.Fatal(err)
		}
	}
	for _, seq := range []uint64{2, 3, 5} {
		if err := e.WriteManifest(&Manifest{Seq: seq, Watermark: Pos{Seq: seq - 1}, L: 1}); err != nil {
			t.Fatal(err)
		}
	}
	for _, seq := range []uint64{1, 2, 4, 5} {
		w, err := e.CreateWAL(seq)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	m := &Manifest{Seq: 5, Watermark: Pos{Seq: 4}, Segments: []SegmentRef{{Name: SegmentName(1), Rows: 1}}}
	if err := e.Retire(m); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		SegmentName(1):  true,
		ManifestName(5): true,
		WALName(4):      true,
		WALName(5):      true,
	}
	ents, err := os.ReadDir(e.Dir())
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, ent := range ents {
		got[ent.Name()] = true
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("after retire: have %v, want %v", got, want)
	}
	// Idempotent: a second pass (crash-during-retire rerun) changes nothing.
	if err := e.Retire(m); err != nil {
		t.Fatal(err)
	}
}
