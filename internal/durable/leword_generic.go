//go:build !(386 || amd64 || arm || arm64 || loong64 || mipsle || mips64le || ppc64le || riscv64 || wasm)

package durable

import "encoding/binary"

// Portable fallback for big-endian (or unlisted) targets: decode the
// little-endian on-disk words one element at a time.

func copyU64sLE(dst []uint64, src []byte) {
	for i := range dst {
		dst[i] = binary.LittleEndian.Uint64(src[8*i:])
	}
}

func copyI32sLE(dst []int32, src []byte) {
	for i := range dst {
		dst[i] = int32(binary.LittleEndian.Uint32(src[4*i:]))
	}
}

// Aliasing is a little-endian-only optimization; these fallbacks force
// the copy path.

func aliasU64s([]byte, int) ([]uint64, bool) { return nil, false }

func aliasI32s([]byte, int) ([]int32, bool) { return nil, false }

func appendU64Words(b []byte, v []uint64) []byte {
	for _, x := range v {
		b = binary.LittleEndian.AppendUint64(b, x)
	}
	return b
}
