package durable

import "dsh/internal/obs"

// Process-wide durable-tier metrics, registered once in the obs default
// registry. Counters are striped; each Env draws one stripe at OpenEnv
// (per-shard stores therefore write to distinct cache lines). The fault
// gauge is the health signal: it counts Envs that have latched a
// DurableErr — any non-zero value means some store stopped persisting.
var (
	mWALAppends = obs.NewCounter("dsh_wal_appends_total",
		"WAL records appended")
	mWALBytes = obs.NewCounter("dsh_wal_append_bytes_total",
		"WAL bytes appended (headers + payloads)")
	mWALFsyncs = obs.NewCounter("dsh_wal_fsyncs_total",
		"WAL fsync calls (per-append under FsyncAlways, time-based under FsyncInterval, rotation/seal only under FsyncNever)")
	mWALRotations = obs.NewCounter("dsh_wal_rotations_total",
		"WAL files created (initial creation and checkpoint rotations)")
	mSegWrites = obs.NewCounter("dsh_segment_writes_total",
		"segment files committed via the temp-fsync-rename protocol")
	mSegWriteBytes = obs.NewCounter("dsh_segment_write_bytes_total",
		"serialized segment bytes committed")
	mSegReads = obs.NewCounter("dsh_segment_reads_total",
		"segment files read and verified during recovery")
	mManifests = obs.NewCounter("dsh_manifest_commits_total",
		"manifest files committed")
	mFaults = obs.NewGauge("dsh_durable_faults",
		"durable directories with a latched unrecoverable error (0 = healthy)")
)
