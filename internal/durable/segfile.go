package durable

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Segment files persist a frozen index segment nearly verbatim: the
// global id column, and for each of the L repetitions the per-row hash
// key column plus the flat open-addressed table (mask, slot keys, slot
// buckets, CSR starts, CSR ids) exactly as it sits in memory, followed
// by the raw point payloads. Nothing in here requires a hash evaluation
// to read back — that is the whole point.
//
// Layout (all integers little-endian):
//
//	u64 magic  "dshseg1\n"
//	u32 version
//	u32 L (repetitions)
//	u32 rows
//	i32[] globalIDs            (rows entries)
//	repeat L times:
//	  u64[] keys               (rows entries; the per-row key column)
//	  u64   table mask
//	  u64[] table slot keys
//	  i32[] table slot buckets
//	  i32[] table CSR starts
//	  i32[] table CSR ids
//	repeat rows times:
//	  u32-prefixed point payload bytes
//	u32 CRC32C of everything above
//
// Variable-length sections carry a u32 count prefix. Since version 2,
// u64 sections pad with zero bytes after the count so their data starts
// 8-byte aligned in the file: on little-endian machines the reader then
// aliases the integer columns directly into the file buffer instead of
// copying them out, which makes loading a segment O(file read) rather
// than O(element decode). The whole file is covered by one trailing
// CRC32C: segment files are immutable and read in full at recovery, so
// a single checksum is enough to reject any bit flip.
const (
	segMagic   = 0x0a3167657368_7364 // "dsh" "seg1\n" packed LE
	segVersion = 2
)

// TableData mirrors one repetition's flat hash table.
type TableData struct {
	Mask       uint64
	Keys       []uint64
	SlotBucket []int32
	Starts     []int32
	IDs        []int32
}

// RepData is one repetition's persisted state: the dense per-row key
// column and the lookup table built over it.
type RepData struct {
	Keys  []uint64
	Table TableData
}

// SegmentData is the serialized form of one frozen segment.
type SegmentData struct {
	GlobalIDs []int32
	Reps      []RepData
	// Points holds the encoded point payload of each row, parallel to
	// GlobalIDs (Points[i] belongs to global id GlobalIDs[i]).
	Points [][]byte
}

// SegmentName returns the file name for segment number n.
func SegmentName(n uint64) string { return fmt.Sprintf("seg-%08d.seg", n) }

// IsSegmentName reports whether name is a committed segment file.
func IsSegmentName(name string) bool {
	return strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".seg")
}

// WriteSegment serializes sd and commits it under name via the
// temp-fsync-rename protocol. Fault points "seg:write", "seg:sync",
// "seg:rename", "dir:sync".
func (e *Env) WriteSegment(name string, sd *SegmentData) error {
	buf := appendSegment(nil, sd)
	buf = binary.LittleEndian.AppendUint32(buf, crc32Sum(buf))
	if err := e.atomicWrite(name, buf, "seg"); err != nil {
		return err
	}
	mSegWrites.Inc(e.stripe)
	mSegWriteBytes.Add(e.stripe, uint64(len(buf)))
	return nil
}

func appendSegment(b []byte, sd *SegmentData) []byte {
	b = binary.LittleEndian.AppendUint64(b, segMagic)
	b = binary.LittleEndian.AppendUint32(b, segVersion)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(sd.Reps)))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(sd.GlobalIDs)))
	b = appendI32s(b, sd.GlobalIDs)
	for _, rep := range sd.Reps {
		b = appendU64sPadded(b, rep.Keys)
		b = binary.LittleEndian.AppendUint64(b, rep.Table.Mask)
		b = appendU64sPadded(b, rep.Table.Keys)
		b = appendI32s(b, rep.Table.SlotBucket)
		b = appendI32s(b, rep.Table.Starts)
		b = appendI32s(b, rep.Table.IDs)
	}
	for _, p := range sd.Points {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(p)))
		b = append(b, p...)
	}
	return b
}

// readFileParallel reads a whole file like os.ReadFile but fans large
// files out over parallel ReadAt chunks: segment files are tens of
// megabytes and read in full at recovery, where a single sequential
// read leaves most of the memory bandwidth idle.
func readFileParallel(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := info.Size()
	const chunk = 4 << 20
	if size <= chunk {
		return os.ReadFile(path)
	}
	buf := make([]byte, size)
	n := int((size + chunk - 1) / chunk)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lo := int64(i) * chunk
			hi := lo + chunk
			if hi > size {
				hi = size
			}
			_, errs[i] = f.ReadAt(buf[lo:hi], lo)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// ReadSegment reads and verifies a committed segment file.
func (e *Env) ReadSegment(name string) (*SegmentData, error) {
	data, err := readFileParallel(filepath.Join(e.dir, name))
	if err != nil {
		return nil, err
	}
	if len(data) < 4 {
		return nil, fmt.Errorf("%w: %s: short file", ErrCorrupt, name)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	// Checksum the body concurrently with the structural decode below: the
	// cursor is bounds-checked, so decoding unverified bytes is safe — the
	// result is simply discarded if the checksum then fails. Nothing is
	// returned before the verdict arrives.
	crcOK := make(chan bool, 1)
	go func() { crcOK <- crc32Sum(body) == binary.LittleEndian.Uint32(tail) }()
	c := cursor{b: body, tot: len(body), name: name}
	if m := c.u64(); m != segMagic {
		return nil, fmt.Errorf("%w: %s: bad magic %#x", ErrCorrupt, name, m)
	}
	if v := c.u32(); v != segVersion {
		return nil, fmt.Errorf("%w: %s: unsupported version %d", ErrCorrupt, name, v)
	}
	reps := int(c.u32())
	rows := int(c.u32())
	if c.err != nil || reps < 0 || reps > 1<<16 || rows < 0 || rows > math.MaxInt32 {
		return nil, fmt.Errorf("%w: %s: bad header", ErrCorrupt, name)
	}
	sd := &SegmentData{
		GlobalIDs: c.i32sAliased(),
		Reps:      make([]RepData, reps),
	}
	// The repetition sections are independent once their boundaries are
	// known, and decoding them is the bulk of recovery for a large
	// segment: skip through the sections first (cheap — counts only),
	// then widen-and-copy each repetition on its own goroutine.
	repCursors := make([]cursor, reps)
	for i := 0; i < reps && c.err == nil; i++ {
		repCursors[i] = c
		c.skipU64s()        // key column
		c.skip(8)           // mask
		c.skipU64s()        // table slot keys
		for j := 0; j < 3; j++ {
			c.skipI32s() // slot buckets, CSR starts, CSR ids
		}
	}
	if c.err == nil {
		var wg sync.WaitGroup
		for i := range sd.Reps {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				rc := &repCursors[i]
				sd.Reps[i].Keys = rc.u64sAligned()
				sd.Reps[i].Table = TableData{
					Mask:       rc.u64(),
					Keys:       rc.u64sAligned(),
					SlotBucket: rc.i32sAliased(),
					Starts:     rc.i32sAliased(),
					IDs:        rc.i32sAliased(),
				}
			}(i)
		}
		wg.Wait()
		for i := range repCursors {
			if err := repCursors[i].err; err != nil {
				return nil, fmt.Errorf("%w: %s: repetition %d: %v", ErrCorrupt, name, i, err)
			}
		}
	}
	sd.Points = make([][]byte, rows)
	for i := range sd.Points {
		sd.Points[i] = c.bytes()
	}
	if c.err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, name, c.err)
	}
	if len(sd.GlobalIDs) != rows {
		return nil, fmt.Errorf("%w: %s: id column length %d != rows %d", ErrCorrupt, name, len(sd.GlobalIDs), rows)
	}
	if !<-crcOK {
		return nil, fmt.Errorf("%w: %s: checksum mismatch", ErrCorrupt, name)
	}
	mSegReads.Inc(e.stripe)
	return sd, nil
}

// cursor is a bounds-checked little-endian reader over a checksummed
// byte slice; the first out-of-bounds read latches err and every later
// read returns zero values. tot is the total body length, set when the
// buffer starts at file offset 0 — the aligned section readers need it
// to locate the writer's padding (plain readers never consult it).
type cursor struct {
	b    []byte
	tot  int
	name string
	err  error
}

// align8 skips the zero padding appendU64sPadded wrote after a count.
func (c *cursor) align8() {
	c.skip((8 - (c.tot-len(c.b))%8) % 8)
}

func (c *cursor) fail() {
	if c.err == nil {
		c.err = fmt.Errorf("truncated section")
	}
}

// skip advances past n bytes (latching err when fewer remain).
func (c *cursor) skip(n int) {
	if c.err != nil || n < 0 || len(c.b) < n {
		c.fail()
		return
	}
	c.b = c.b[n:]
}

// skipU64s / skipI32s step over one count-prefixed section without
// decoding it (skipU64s covers the alignment padding of
// appendU64sPadded).
func (c *cursor) skipU64s() {
	n := int(c.u32())
	if n > math.MaxInt32/8 {
		c.fail()
		return
	}
	c.align8()
	c.skip(8 * n)
}

func (c *cursor) skipI32s() {
	n := int(c.u32())
	if n > math.MaxInt32/4 {
		c.fail()
		return
	}
	c.skip(4 * n)
}

func (c *cursor) u32() uint32 {
	if c.err != nil || len(c.b) < 4 {
		c.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(c.b)
	c.b = c.b[4:]
	return v
}

func (c *cursor) u64() uint64 {
	if c.err != nil || len(c.b) < 8 {
		c.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(c.b)
	c.b = c.b[8:]
	return v
}

func (c *cursor) bytes() []byte {
	n := int(c.u32())
	if c.err != nil || n < 0 || len(c.b) < n {
		c.fail()
		return nil
	}
	v := c.b[:n:n]
	c.b = c.b[n:]
	return v
}

func (c *cursor) u64s() []uint64 {
	n := int(c.u32())
	if c.err != nil || n < 0 || len(c.b) < 8*n {
		c.fail()
		return nil
	}
	v := make([]uint64, n)
	copyU64sLE(v, c.b)
	c.b = c.b[8*n:]
	return v
}

// u64sAligned reads a section written by appendU64sPadded, aliasing the
// file buffer zero-copy on little-endian machines (segment columns are
// immutable once loaded, so sharing the backing array is safe).
func (c *cursor) u64sAligned() []uint64 {
	n := int(c.u32())
	if c.err != nil || n < 0 || n > math.MaxInt32/8 {
		c.fail()
		return nil
	}
	c.align8()
	if c.err != nil || len(c.b) < 8*n {
		c.fail()
		return nil
	}
	v, ok := aliasU64s(c.b, n)
	if !ok {
		v = make([]uint64, n)
		copyU64sLE(v, c.b)
	}
	c.b = c.b[8*n:]
	return v
}

// i32sAliased reads a count-prefixed i32 section, aliasing the file
// buffer zero-copy when the platform and alignment allow.
func (c *cursor) i32sAliased() []int32 {
	n := int(c.u32())
	if c.err != nil || n < 0 || len(c.b) < 4*n {
		c.fail()
		return nil
	}
	v, ok := aliasI32s(c.b, n)
	if !ok {
		v = make([]int32, n)
		copyI32sLE(v, c.b)
	}
	c.b = c.b[4*n:]
	return v
}

func (c *cursor) i32s() []int32 {
	n := int(c.u32())
	if c.err != nil || n < 0 || len(c.b) < 4*n {
		c.fail()
		return nil
	}
	v := make([]int32, n)
	copyI32sLE(v, c.b)
	c.b = c.b[4*n:]
	return v
}

// appendU64sPadded writes a count-prefixed u64 section with zero padding
// so the words start 8-byte aligned. It relies on appendSegment starting
// at file offset 0, so len(b) is the absolute offset.
func appendU64sPadded(b []byte, v []uint64) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(v)))
	for len(b)%8 != 0 {
		b = append(b, 0)
	}
	return appendU64Words(b, v)
}

func appendU64s(b []byte, v []uint64) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(v)))
	for _, x := range v {
		b = binary.LittleEndian.AppendUint64(b, x)
	}
	return b
}

func appendI32s(b []byte, v []int32) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(v)))
	for _, x := range v {
		b = binary.LittleEndian.AppendUint32(b, uint32(x))
	}
	return b
}
