//go:build 386 || amd64 || arm || arm64 || loong64 || mipsle || mips64le || ppc64le || riscv64 || wasm

package durable

import "unsafe"

// On little-endian machines the on-disk word layout matches memory, so
// decoding an integer column is a single bulk copy instead of a
// per-element shift loop — this is the difference between recovery
// being decode-bound and being memory-bandwidth-bound.

func copyU64sLE(dst []uint64, src []byte) {
	if len(dst) == 0 {
		return
	}
	copy(unsafe.Slice((*byte)(unsafe.Pointer(&dst[0])), 8*len(dst)), src)
}

func copyI32sLE(dst []int32, src []byte) {
	if len(dst) == 0 {
		return
	}
	copy(unsafe.Slice((*byte)(unsafe.Pointer(&dst[0])), 4*len(dst)), src)
}

// aliasU64s/aliasI32s view the front of b as an integer slice without
// copying, when the data is suitably aligned. The caller guarantees b
// holds at least the requested words and never writes through either
// view.

func aliasU64s(b []byte, n int) ([]uint64, bool) {
	if n == 0 {
		return []uint64{}, true
	}
	if uintptr(unsafe.Pointer(&b[0]))%8 != 0 {
		return nil, false
	}
	return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), n), true
}

func aliasI32s(b []byte, n int) ([]int32, bool) {
	if n == 0 {
		return []int32{}, true
	}
	if uintptr(unsafe.Pointer(&b[0]))%4 != 0 {
		return nil, false
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n), true
}

// appendU64Words bulk-appends the raw little-endian bytes of v.
func appendU64Words(b []byte, v []uint64) []byte {
	if len(v) == 0 {
		return b
	}
	return append(b, unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 8*len(v))...)
}
