// Package durable is the on-disk storage layer of the dynamic serving
// core: a checksummed write-ahead log, versioned immutable segment files,
// and an atomically-replaced manifest tying them together. It knows
// nothing about hashing or the index structures — internal/index
// serializes its frozen segments into SegmentData, journals mutations as
// opaque WAL payloads, and records the live file set in a Manifest; this
// package owns the byte formats, the fsync/rename protocol, and the
// crash-recovery reading paths.
//
// Crash-safety protocol. Every file is written complete-then-visible:
// segment files and manifests are written to a temporary name, fsynced,
// atomically renamed into place, and the directory fsynced, so a reader
// never observes a half-written committed file. The WAL is the only
// append-in-place file; each record carries its own length prefix and
// CRC32C, so a torn tail is detected and truncated on replay. Manifests
// are sequence-numbered (manifest-<seq>) and recovery loads the highest
// one that passes its checksum, falling back to the previous — whose WAL
// files are guaranteed intact, because obsolete files are deleted only
// after the successor manifest is durable.
//
// Fault injection. Every syscall of consequence passes through a named
// fault point (see Hooks); tests install a hook that fails the N-th pass
// through a point, the Env latches into a crashed state in which no
// further byte reaches disk, and recovery is exercised against exactly
// the partial on-disk state a process kill at that instant would leave.
package durable

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"dsh/internal/obs"
)

// FsyncPolicy selects when the write-ahead log is fsynced. Segment files
// and manifests are always fully synced before they become visible,
// regardless of policy — the policy only bounds how much of the WAL tail
// (mutations since the last segment flush) a power failure can lose.
type FsyncPolicy int

const (
	// FsyncAlways syncs the WAL after every record: no acknowledged
	// mutation is ever lost, at one fsync per write.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs the WAL at most once per Options.Interval
	// (checked on append): a crash loses at most the records of the last
	// interval. The default policy.
	FsyncInterval
	// FsyncNever leaves WAL syncing to the OS page cache (plus the forced
	// sync at every rotation): fastest, loses the unsynced tail on power
	// failure, still torn-tail-safe thanks to per-record checksums.
	FsyncNever
)

// DefaultInterval is the FsyncInterval cadence used when
// Options.Interval is zero.
const DefaultInterval = 50 * time.Millisecond

// Options configures an Env.
type Options struct {
	// Fsync is the WAL sync policy; see FsyncPolicy.
	Fsync FsyncPolicy
	// Interval is the FsyncInterval cadence (0 means DefaultInterval).
	Interval time.Duration
	// Hooks, when non-nil, receives every fault point crossing; for crash
	// tests only.
	Hooks *Hooks
}

// ErrCrashed is reported by every operation after an injected fault has
// latched the Env: the simulated process is dead and nothing more may
// reach disk.
var ErrCrashed = errors.New("durable: env crashed (injected fault)")

// ErrCorrupt wraps checksum and structural failures detected while
// reading committed files; errors.Is(err, ErrCorrupt) identifies them.
var ErrCorrupt = errors.New("durable: corrupt file")

// castagnoli is the CRC32C table; CRC32C has hardware support on amd64
// and arm64, so checksumming is not a write-path bottleneck.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Env is a handle on one durable directory: it owns the file naming, the
// fault hooks, and the crashed latch shared by the WAL, segment and
// manifest paths. An Env is safe for concurrent use; the caller
// serializes logically-conflicting operations (the index's persist path
// already does).
type Env struct {
	dir  string
	opts Options
	// stripe spreads this Env's metric updates across counter stripes;
	// drawn once at OpenEnv so per-shard stores write distinct cache
	// lines.
	stripe uint32

	// failed latches the first unrecoverable write error (injected or
	// real). Once set, every subsequent operation is a no-op returning
	// that error — mirroring a dead process, which also stops writing.
	failedMu sync.Mutex
	failed   error
	crashed  atomic.Bool
}

// OpenEnv opens (creating if needed) the durable directory and returns
// its handle.
func OpenEnv(dir string, opts Options) (*Env, error) {
	if opts.Interval <= 0 {
		opts.Interval = DefaultInterval
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: create dir: %w", err)
	}
	return &Env{dir: dir, opts: opts, stripe: obs.NextStripe()}, nil
}

// Dir returns the directory the Env manages.
func (e *Env) Dir() string { return e.dir }

// Err returns the latched failure, or nil while the Env is healthy.
func (e *Env) Err() error {
	e.failedMu.Lock()
	defer e.failedMu.Unlock()
	return e.failed
}

// fail latches err (keeping the first) and returns it. The first latch
// raises the process-wide fault gauge and records a trace event, so a
// store that silently stopped persisting is visible on the metrics plane
// before anyone polls DurableErr.
func (e *Env) fail(err error) error {
	e.failedMu.Lock()
	defer e.failedMu.Unlock()
	if e.failed == nil {
		e.failed = err
		mFaults.Add(1)
		obs.RecordEvent("durable.fault", int64(e.stripe), 0)
	}
	return e.failed
}

// check is called at every fault point: it refuses to proceed once the
// Env has crashed, and consults the injection hooks. A hook-returned
// error latches the crash, so no later operation touches disk — exactly
// the visibility a process kill at this point would leave.
func (e *Env) check(point string) error {
	if e.crashed.Load() {
		return ErrCrashed
	}
	if h := e.opts.Hooks; h != nil {
		if err := h.at(point); err != nil {
			e.crashed.Store(true)
			return e.fail(fmt.Errorf("%w at %s: %v", ErrCrashed, point, err))
		}
	}
	return nil
}

// syncDir fsyncs the durable directory, making completed renames and
// creates durable. Fault point "dir:sync".
func (e *Env) syncDir() error {
	if err := e.check("dir:sync"); err != nil {
		return err
	}
	d, err := os.Open(e.dir)
	if err != nil {
		return e.fail(err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return e.fail(err)
	}
	return nil
}

// atomicWrite writes data to name via the temp-fsync-rename-dirsync
// protocol under the given fault-point prefix, so the file is either
// absent or complete, never torn.
func (e *Env) atomicWrite(name string, data []byte, pointPrefix string) error {
	if err := e.check(pointPrefix + ":write"); err != nil {
		return err
	}
	tmp := filepath.Join(e.dir, name+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return e.fail(err)
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return e.fail(err)
	}
	if err := e.check(pointPrefix + ":sync"); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return e.fail(err)
	}
	if err := f.Close(); err != nil {
		return e.fail(err)
	}
	if err := e.check(pointPrefix + ":rename"); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(e.dir, name)); err != nil {
		return e.fail(err)
	}
	return e.syncDir()
}

// Remove deletes a committed file during retirement. Fault point
// "retire". Missing files are fine: retirement is retried after crashes.
func (e *Env) Remove(name string) error {
	if err := e.check("retire"); err != nil {
		return err
	}
	if err := os.Remove(filepath.Join(e.dir, name)); err != nil && !os.IsNotExist(err) {
		return e.fail(err)
	}
	return nil
}

// Hooks drives crash injection: a fault counter per named point. Install
// via Options.Hooks; production paths leave it nil.
type Hooks struct {
	mu sync.Mutex
	// remaining[point] counts down on each crossing; the crossing that
	// decrements it to below zero fails.
	remaining map[string]int
	err       error
	// trace accumulates every point crossed, letting tests enumerate the
	// real fault surface instead of guessing point names.
	trace []string
}

// FailAt returns hooks that let each named point pass n times and fail
// the (n+1)-th crossing (n = 0 fails the first). Unnamed points always
// pass.
func FailAt(counts map[string]int) *Hooks {
	c := make(map[string]int, len(counts))
	for k, v := range counts {
		c[k] = v
	}
	return &Hooks{remaining: c, err: errors.New("injected fault")}
}

// Trace returns hooks that never fail but record every fault point
// crossed, in order.
func Trace() *Hooks { return &Hooks{} }

// Crossings returns the fault points crossed so far, in order.
func (h *Hooks) Crossings() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]string(nil), h.trace...)
}

// at records the crossing and reports whether it should fail.
func (h *Hooks) at(point string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.trace = append(h.trace, point)
	if h.remaining == nil {
		return nil
	}
	n, ok := h.remaining[point]
	if !ok {
		return nil
	}
	if n == 0 {
		return h.err
	}
	h.remaining[point] = n - 1
	return nil
}

// FlipBit XORs one bit of the file at path, simulating silent media
// corruption inside a checksummed region; recovery must either detect it
// (committed files) or truncate past it (the WAL tail). Test helper.
func FlipBit(path string, offset int64, bit uint) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], offset); err != nil {
		return err
	}
	b[0] ^= 1 << (bit & 7)
	_, err = f.WriteAt(b[:], offset)
	return err
}
