package stats

import (
	"math"
	"testing"

	"dsh/internal/xrand"
)

func TestWilsonIntervalBasics(t *testing.T) {
	iv := WilsonInterval(50, 100, 2)
	if !(iv.Lo < 0.5 && 0.5 < iv.Hi) {
		t.Errorf("Wilson(50/100) = %+v should contain 0.5", iv)
	}
	if iv.Lo < 0 || iv.Hi > 1 {
		t.Errorf("Wilson interval out of [0,1]: %+v", iv)
	}
}

func TestWilsonIntervalEdges(t *testing.T) {
	iv0 := WilsonInterval(0, 1000, 3)
	if iv0.Lo != 0 {
		t.Errorf("Wilson(0/1000).Lo = %v, want 0", iv0.Lo)
	}
	if iv0.Hi <= 0 || iv0.Hi > 0.02 {
		t.Errorf("Wilson(0/1000).Hi = %v unreasonable", iv0.Hi)
	}
	ivAll := WilsonInterval(1000, 1000, 3)
	if ivAll.Hi != 1 {
		t.Errorf("Wilson(1000/1000).Hi = %v, want 1", ivAll.Hi)
	}
	ivEmpty := WilsonInterval(0, 0, 3)
	if ivEmpty.Lo != 0 || ivEmpty.Hi != 1 {
		t.Errorf("Wilson with 0 trials should be [0,1], got %+v", ivEmpty)
	}
}

func TestWilsonIntervalShrinksWithN(t *testing.T) {
	w1 := WilsonInterval(30, 100, 2).Width()
	w2 := WilsonInterval(300, 1000, 2).Width()
	w3 := WilsonInterval(3000, 10000, 2).Width()
	if !(w1 > w2 && w2 > w3) {
		t.Errorf("widths should shrink: %v, %v, %v", w1, w2, w3)
	}
}

func TestWilsonCoverage(t *testing.T) {
	// Empirical coverage of the z=2 interval should be >= ~95%.
	rng := xrand.New(7)
	const p = 0.12
	const trials = 400
	const n = 500
	covered := 0
	for i := 0; i < trials; i++ {
		hits := 0
		for j := 0; j < n; j++ {
			if rng.Bernoulli(p) {
				hits++
			}
		}
		if WilsonInterval(hits, n, 2).Contains(p) {
			covered++
		}
	}
	if rate := float64(covered) / trials; rate < 0.90 {
		t.Errorf("Wilson z=2 coverage = %v, want >= 0.90", rate)
	}
}

func TestRegIncompleteBetaKnown(t *testing.T) {
	// I_x(1,1) = x (uniform CDF).
	for _, x := range []float64{0, 0.2, 0.5, 0.9, 1} {
		if got := RegIncompleteBeta(1, 1, x); !approxEq(got, x, 1e-12) {
			t.Errorf("I_%v(1,1) = %v", x, got)
		}
	}
	// I_x(2,2) = 3x^2 - 2x^3.
	for _, x := range []float64{0.1, 0.37, 0.8} {
		want := 3*x*x - 2*x*x*x
		if got := RegIncompleteBeta(2, 2, x); !approxEq(got, want, 1e-12) {
			t.Errorf("I_%v(2,2) = %v, want %v", x, got, want)
		}
	}
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	for _, x := range []float64{0.2, 0.6} {
		a, b := 3.5, 1.25
		if got, want := RegIncompleteBeta(a, b, x), 1-RegIncompleteBeta(b, a, 1-x); !approxEq(got, want, 1e-12) {
			t.Errorf("beta symmetry failed at %v: %v vs %v", x, got, want)
		}
	}
}

func TestClopperPearsonContainsTruth(t *testing.T) {
	rng := xrand.New(21)
	const p = 0.3
	const trials = 200
	const n = 300
	covered := 0
	for i := 0; i < trials; i++ {
		hits := 0
		for j := 0; j < n; j++ {
			if rng.Bernoulli(p) {
				hits++
			}
		}
		if ClopperPearsonInterval(hits, n, 0.05).Contains(p) {
			covered++
		}
	}
	// Clopper-Pearson is conservative: coverage should exceed 95%.
	if rate := float64(covered) / trials; rate < 0.93 {
		t.Errorf("Clopper-Pearson coverage = %v", rate)
	}
}

func TestClopperPearsonEdges(t *testing.T) {
	iv := ClopperPearsonInterval(0, 100, 0.05)
	if iv.Lo != 0 {
		t.Errorf("CP(0/100).Lo = %v", iv.Lo)
	}
	// Rule of three: upper bound near 3/n ~ 0.036 for alpha/2 = 0.025.
	if iv.Hi < 0.02 || iv.Hi > 0.06 {
		t.Errorf("CP(0/100).Hi = %v, want near 0.036", iv.Hi)
	}
	iv = ClopperPearsonInterval(100, 100, 0.05)
	if iv.Hi != 1 {
		t.Errorf("CP(100/100).Hi = %v", iv.Hi)
	}
}

func TestChernoffBoundsSane(t *testing.T) {
	if ChernoffUpperTail(100, 0.5) >= 1e-3 {
		t.Errorf("Chernoff upper tail too weak: %v", ChernoffUpperTail(100, 0.5))
	}
	if ChernoffUpperTail(0, 0.5) != 1 || ChernoffUpperTail(10, 0) != 1 {
		t.Error("degenerate Chernoff bounds should be 1")
	}
	if ChernoffLowerTail(100, 0.5) >= ChernoffUpperTail(100, 0.5) {
		// exp(-mu eps^2/2) < exp(-mu eps^2/3)
		t.Error("lower-tail bound should be tighter than upper-tail bound")
	}
	// Empirical validation: binomial(1000, 0.1), mu=100.
	rng := xrand.New(5)
	const reps = 2000
	exceed := 0
	for i := 0; i < reps; i++ {
		x := 0
		for j := 0; j < 1000; j++ {
			if rng.Bernoulli(0.1) {
				x++
			}
		}
		if float64(x) >= 1.5*100 {
			exceed++
		}
	}
	bound := ChernoffUpperTail(100, 0.5)
	if emp := float64(exceed) / reps; emp > bound*10+0.005 {
		t.Errorf("empirical tail %v inconsistent with Chernoff bound %v", emp, bound)
	}
	_ = math.Pi
}
