package stats

import "math"

// BivariateNormalCDF returns Pr[X <= h, Y <= k] where (X, Y) is standard
// bivariate normal with correlation rho. It is a port of Alan Genz's BVND
// algorithm (itself based on Drezner and Wesolowsky), accurate to about
// 1e-14 for |rho| < 1 and exact in the degenerate cases rho = +/-1.
func BivariateNormalCDF(h, k, rho float64) float64 {
	if math.IsNaN(h) || math.IsNaN(k) || math.IsNaN(rho) {
		return math.NaN()
	}
	if rho >= 1 {
		return NormalCDF(math.Min(h, k))
	}
	if rho <= -1 {
		if h+k <= 0 {
			return 0
		}
		return NormalCDF(h) + NormalCDF(k) - 1
	}
	// Genz computes Pr[X > -h, Y > -k]; with our argument convention
	// Pr[X <= h, Y <= k] = bvnd(-h, -k, rho).
	return bvnd(-h, -k, rho)
}

// BivariateNormalOrthant returns Pr[X >= t, Y >= t] for standard bivariate
// normal (X, Y) with correlation rho. This is the quantity the filter-based
// DSH analysis is built on (Section 2.2 and Appendix A of the paper).
func BivariateNormalOrthant(t, rho float64) float64 {
	// Pr[X >= t, Y >= t] = Pr[-X <= -t, -Y <= -t] = CDF(-t, -t, rho).
	return BivariateNormalCDF(-t, -t, rho)
}

// BivariateNormalOppositeOrthant returns Pr[X >= t, Y <= -t] with
// correlation rho, which equals the same-orthant probability with
// correlation -rho (Corollary A.4 of the paper).
func BivariateNormalOppositeOrthant(t, rho float64) float64 {
	return BivariateNormalOrthant(t, -rho)
}

// Gauss-Legendre abscissae/weights used by Genz's BVND, arranged per the
// original Fortran: 6, 12 and 20 point rules on [0, 1] after transformation.
var (
	bvnW6 = [3]float64{0.1713244923791705, 0.3607615730481384, 0.4679139345726904}
	bvnX6 = [3]float64{-0.9324695142031522, -0.6612093864662647, -0.2386191860831970}

	bvnW12 = [6]float64{
		0.4717533638651177e-01, 0.1069393259953183, 0.1600783285433464,
		0.2031674267230659, 0.2334925365383547, 0.2491470458134029,
	}
	bvnX12 = [6]float64{
		-0.9815606342467191, -0.9041172563704750, -0.7699026741943050,
		-0.5873179542866171, -0.3678314989981802, -0.1252334085114692,
	}

	bvnW20 = [10]float64{
		0.1761400713915212e-01, 0.4060142980038694e-01, 0.6267204833410906e-01,
		0.8327674157670475e-01, 0.1019301198172404, 0.1181945319615184,
		0.1316886384491766, 0.1420961093183821, 0.1491729864726037,
		0.1527533871307259,
	}
	bvnX20 = [10]float64{
		-0.9931285991850949, -0.9639719272779138, -0.9122344282513259,
		-0.8391169718222188, -0.7463319064601508, -0.6360536807265150,
		-0.5108670019508271, -0.3737060887154196, -0.2277858511416451,
		-0.7652652113349733e-01,
	}
)

// bvnd computes Pr[X > dh, Y > dk] with correlation r, following Genz.
func bvnd(dh, dk, r float64) float64 {
	var x []float64
	var w []float64
	switch {
	case math.Abs(r) < 0.3:
		x = bvnX6[:]
		w = bvnW6[:]
	case math.Abs(r) < 0.75:
		x = bvnX12[:]
		w = bvnW12[:]
	default:
		x = bvnX20[:]
		w = bvnW20[:]
	}

	h := dh
	k := dk
	hk := h * k
	bvn := 0.0

	if math.Abs(r) < 0.925 {
		hs := (h*h + k*k) / 2
		asr := math.Asin(r)
		for i := range x {
			for _, sign := range [2]float64{-1, 1} {
				sn := math.Sin(asr * (sign*x[i] + 1) / 2)
				bvn += w[i] * math.Exp((sn*hk-hs)/(1-sn*sn))
			}
		}
		bvn = bvn*asr/(4*math.Pi) + NormalCDF(-h)*NormalCDF(-k)
		return math.Max(0, math.Min(1, bvn))
	}

	if r < 0 {
		k = -k
		hk = -hk
	}
	if math.Abs(r) < 1 {
		as := (1 - r) * (1 + r)
		a := math.Sqrt(as)
		bs := (h - k) * (h - k)
		c := (4 - hk) / 8
		d := (12 - hk) / 16
		asrExp := -(bs/as + hk) / 2
		if asrExp > -100 {
			bvn = a * math.Exp(asrExp) *
				(1 - c*(bs-as)*(1-d*bs/5)/3 + c*d*as*as/5)
		}
		if -hk < 100 {
			b := math.Sqrt(bs)
			bvn -= math.Exp(-hk/2) * math.Sqrt(2*math.Pi) * NormalCDF(-b/a) *
				b * (1 - c*bs*(1-d*bs/5)/3)
		}
		a /= 2
		for i := range x {
			for _, sign := range [2]float64{-1, 1} {
				xs := a * (sign*x[i] + 1)
				xs = xs * xs
				rs := math.Sqrt(1 - xs)
				asrE := -(bs/xs + hk) / 2
				if asrE > -100 {
					bvn += a * w[i] * math.Exp(asrE) *
						(math.Exp(-hk*(1-rs)/(2*(1+rs)))/rs -
							(1 + c*xs*(1+d*xs)))
				}
			}
		}
		bvn = -bvn / (2 * math.Pi)
	}
	if r > 0 {
		bvn += NormalCDF(-math.Max(h, k))
	} else {
		bvn = -bvn
		if k > h {
			bvn += NormalCDF(k) - NormalCDF(h)
		}
	}
	return math.Max(0, math.Min(1, bvn))
}

// SavageBounds returns the Savage (Lemma A.3) lower and upper bounds on
// Pr[X1 >= t, X2 >= t] where X1 = Z1 and X2 = alpha*Z1 + sqrt(1-alpha^2)*Z2
// for independent standard normals Z1, Z2; i.e. correlation alpha.
// Valid for t > 0 and alpha in (-1, 1).
func SavageBounds(t, alpha float64) (lo, hi float64) {
	base := 1 / (2 * math.Pi * t * t) *
		(1 + alpha) * (1 + alpha) / math.Sqrt(1-alpha*alpha) *
		math.Exp(-t*t/(1+alpha))
	factor := 1 - (2-alpha)*(1+alpha)/(1-alpha)/(t*t)
	lo = factor * base
	if lo < 0 {
		lo = 0
	}
	return lo, base
}
