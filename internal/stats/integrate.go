package stats

import "math"

// Integrate computes the definite integral of f over [a, b] by adaptive
// Simpson quadrature with absolute tolerance tol. It handles a > b by sign
// flip and returns 0 for a == b.
func Integrate(f func(float64) float64, a, b, tol float64) float64 {
	if a == b {
		return 0
	}
	if a > b {
		return -Integrate(f, b, a, tol)
	}
	if tol <= 0 {
		tol = 1e-10
	}
	fa, fb := f(a), f(b)
	m, fm, whole := simpsonStep(f, a, b, fa, fb)
	return adaptiveSimpson(f, a, b, fa, fb, m, fm, whole, tol, 50)
}

// simpsonStep returns the midpoint, f(midpoint), and the Simpson estimate
// over [a, b].
func simpsonStep(f func(float64) float64, a, b, fa, fb float64) (m, fm, s float64) {
	m = (a + b) / 2
	fm = f(m)
	s = (b - a) / 6 * (fa + 4*fm + fb)
	return
}

func adaptiveSimpson(f func(float64) float64, a, b, fa, fb, m, fm, whole, tol float64, depth int) float64 {
	lm, flm, left := simpsonStep(f, a, m, fa, fm)
	rm, frm, right := simpsonStep(f, m, b, fm, fb)
	delta := left + right - whole
	if depth <= 0 || math.Abs(delta) <= 15*tol {
		return left + right + delta/15
	}
	return adaptiveSimpson(f, a, m, fa, fm, lm, flm, left, tol/2, depth-1) +
		adaptiveSimpson(f, m, b, fm, fb, rm, frm, right, tol/2, depth-1)
}
