// Package stats provides the numerical and statistical substrate for the
// distance-sensitive hashing library: univariate and bivariate normal
// distribution functions, tail bounds used in the paper's analysis,
// confidence intervals for Monte-Carlo collision estimates, summary
// statistics, least-squares fitting, and adaptive numerical integration.
//
// Everything is implemented from scratch on top of the Go standard library
// (math only); no external numeric packages are used.
package stats

import "math"

// invSqrt2Pi is 1/sqrt(2*pi).
const invSqrt2Pi = 0.3989422804014326779399460599343818684758586311649346576659

// NormalPDF returns the standard normal density at x.
func NormalPDF(x float64) float64 {
	return invSqrt2Pi * math.Exp(-0.5*x*x)
}

// NormalCDF returns Phi(x), the standard normal cumulative distribution
// function, computed via the complementary error function for accuracy in
// both tails.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalTail returns Pr[Z >= t] = 1 - Phi(t) for a standard normal Z,
// accurate for large t where 1-Phi(t) underflows naive computation.
func NormalTail(t float64) float64 {
	return 0.5 * math.Erfc(t/math.Sqrt2)
}

// LogNormalTail returns ln Pr[Z >= t] without underflow for large t.
// For t > 8 it uses the asymptotic expansion
// ln(phi(t)/t) + ln(1 - 1/t^2 + 3/t^4 - ...) which is accurate to
// machine precision in that regime.
func LogNormalTail(t float64) float64 {
	if t < 8 {
		return math.Log(NormalTail(t))
	}
	// Asymptotic series: Q(t) = phi(t)/t * (1 - 1/t^2 + 3/t^4 - 15/t^6 + ...)
	t2 := t * t
	t4 := t2 * t2
	series := 1 - 1/t2 + 3/t4 - 15/(t4*t2) + 105/(t4*t4) - 945/(t4*t4*t2)
	return -0.5*t2 - math.Log(t) - 0.5*math.Log(2*math.Pi) + math.Log(series)
}

// NormalQuantile returns the inverse of the standard normal CDF: the x such
// that Phi(x) = p. It panics if p is outside (0, 1). The initial estimate is
// Acklam's rational approximation, refined by one step of Halley's method to
// full double precision.
func NormalQuantile(p float64) float64 {
	if !(p > 0 && p < 1) {
		panic("stats: NormalQuantile requires 0 < p < 1")
	}
	x := acklam(p)
	// Halley refinement: e = Phi(x) - p; u = e / phi(x);
	// x <- x - u / (1 + x*u/2).
	e := NormalCDF(x) - p
	u := e / NormalPDF(x)
	x -= u / (1 + x*u/2)
	return x
}

// acklam computes Peter Acklam's rational approximation to the normal
// quantile, good to about 1.15e-9 relative error.
func acklam(p float64) float64 {
	var a = [6]float64{
		-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00,
	}
	var b = [5]float64{
		-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01,
	}
	var c = [6]float64{
		-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00,
	}
	var d = [4]float64{
		7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00,
	}
	const pLow = 0.02425
	const pHigh = 1 - pLow
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > pHigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// NormalTailBounds returns the Szarek-Werner style lower and upper bounds on
// Pr[Z >= t] used in Lemma A.2 of the paper:
//
//	phi(t)/(t+1) <= Pr[Z >= t] <= phi(t)/t   (for t > 0).
//
// For t <= 0 it returns (0, 1) since the bounds only hold for positive t.
func NormalTailBounds(t float64) (lo, hi float64) {
	if t <= 0 {
		return 0, 1
	}
	p := NormalPDF(t)
	return p / (t + 1), p / t
}
