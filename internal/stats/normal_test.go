package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approxEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestNormalPDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.3989422804014327},
		{1, 0.24197072451914337},
		{-1, 0.24197072451914337},
		{2, 0.05399096651318806},
		{3, 0.004431848411938008},
	}
	for _, c := range cases {
		if got := NormalPDF(c.x); !approxEq(got, c.want, 1e-15) {
			t.Errorf("NormalPDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145705},
		{1.959963984540054, 0.975},
		{-2.575829303548901, 0.005},
		{4, 0.9999683287581669},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x); !approxEq(got, c.want, 1e-12) {
			t.Errorf("NormalCDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestNormalTailSymmetry(t *testing.T) {
	for _, x := range []float64{-3, -1, 0, 0.5, 2, 5} {
		if got, want := NormalTail(x), 1-NormalCDF(x); !approxEq(got, want, 1e-14) {
			t.Errorf("NormalTail(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestNormalTailDeepTail(t *testing.T) {
	// At t=10, Pr[Z>=t] ~ 7.62e-24; naive 1-Phi would be 0.
	got := NormalTail(10)
	want := 7.619853024160527e-24
	if math.Abs(got/want-1) > 1e-8 {
		t.Errorf("NormalTail(10) = %v, want %v", got, want)
	}
}

func TestLogNormalTailMatchesDirect(t *testing.T) {
	for _, x := range []float64{0, 1, 3, 7, 7.99} {
		got := LogNormalTail(x)
		want := math.Log(NormalTail(x))
		if !approxEq(got, want, 1e-10) {
			t.Errorf("LogNormalTail(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestLogNormalTailAsymptoticRegime(t *testing.T) {
	// Compare the asymptotic branch against the exact erfc-based value at a
	// point where erfc still has precision (t = 9 .. 20).
	for _, x := range []float64{9, 12, 20} {
		got := LogNormalTail(x)
		want := math.Log(NormalTail(x))
		if math.Abs(got-want) > 1e-6 {
			t.Errorf("LogNormalTail(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestNormalQuantileInverse(t *testing.T) {
	for _, p := range []float64{1e-10, 1e-6, 0.001, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999, 1 - 1e-9} {
		x := NormalQuantile(p)
		back := NormalCDF(x)
		if math.Abs(back-p) > 1e-12*math.Max(1, math.Abs(p)) && math.Abs(back-p) > 1e-15 {
			t.Errorf("NormalCDF(NormalQuantile(%v)) = %v", p, back)
		}
	}
}

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959963984540054},
		{0.84134474606854293, 1},
	}
	for _, c := range cases {
		if got := NormalQuantile(c.p); !approxEq(got, c.want, 1e-9) {
			t.Errorf("NormalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestNormalQuantilePanics(t *testing.T) {
	for _, p := range []float64{0, 1, -0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NormalQuantile(%v) should panic", p)
				}
			}()
			NormalQuantile(p)
		}()
	}
}

func TestNormalQuantileMonotoneProperty(t *testing.T) {
	f := func(a, b float64) bool {
		pa := 0.5 + 0.499*math.Tanh(a) // map to (0.001, 0.999)
		pb := 0.5 + 0.499*math.Tanh(b)
		if pa > pb {
			pa, pb = pb, pa
		}
		return NormalQuantile(pa) <= NormalQuantile(pb)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalTailBoundsBracket(t *testing.T) {
	for _, tt := range []float64{0.1, 0.5, 1, 2, 4, 6} {
		lo, hi := NormalTailBounds(tt)
		exact := NormalTail(tt)
		if !(lo <= exact && exact <= hi) {
			t.Errorf("bounds at t=%v do not bracket: lo=%v exact=%v hi=%v", tt, lo, exact, hi)
		}
	}
}

func TestNormalTailBoundsNonPositive(t *testing.T) {
	lo, hi := NormalTailBounds(0)
	if lo != 0 || hi != 1 {
		t.Errorf("NormalTailBounds(0) = %v, %v", lo, hi)
	}
}
