package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); !approxEq(got, 5, 1e-12) {
		t.Errorf("Mean = %v", got)
	}
	// Sample variance with n-1 denominator: 32/7.
	if got := Variance(xs); !approxEq(got, 32.0/7, 1e-12) {
		t.Errorf("Variance = %v", got)
	}
	if got := StdDev(xs); !approxEq(got, math.Sqrt(32.0/7), 1e-12) {
		t.Errorf("StdDev = %v", got)
	}
}

func TestMeanEmpty(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("Variance of single element should be NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 5, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.125, 1.5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !approxEq(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Input must not be mutated.
	if xs[0] != 3 {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantileClamp(t *testing.T) {
	xs := []float64{1, 2, 3}
	if got := Quantile(xs, -0.5); got != 1 {
		t.Errorf("Quantile(-0.5) = %v", got)
	}
	if got := Quantile(xs, 1.5); got != 3 {
		t.Errorf("Quantile(1.5) = %v", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile of empty should be NaN")
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	s := Summarize(xs)
	if s.N != 10 || !approxEq(s.Mean, 5.5, 1e-12) || !approxEq(s.Median, 5.5, 1e-12) {
		t.Errorf("Summarize = %+v", s)
	}
	if s.Min != 1 || s.Max != 10 {
		t.Errorf("Min/Max wrong: %+v", s)
	}
	empty := Summarize(nil)
	if empty.N != 0 || !math.IsNaN(empty.Mean) {
		t.Errorf("empty summary = %+v", empty)
	}
}

func TestFitLineExact(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4}
	y := []float64{1, 3, 5, 7, 9} // y = 1 + 2x
	fit := FitLine(x, y)
	if !approxEq(fit.Slope, 2, 1e-12) || !approxEq(fit.Intercept, 1, 1e-12) {
		t.Errorf("FitLine = %+v", fit)
	}
	if !approxEq(fit.R2, 1, 1e-12) {
		t.Errorf("R2 = %v, want 1", fit.R2)
	}
}

func TestFitLineNoisy(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6}
	y := []float64{2.1, 3.9, 6.2, 7.8, 10.1, 11.9} // ~ 2x
	fit := FitLine(x, y)
	if math.Abs(fit.Slope-2) > 0.1 {
		t.Errorf("slope = %v", fit.Slope)
	}
	if fit.R2 < 0.99 {
		t.Errorf("R2 = %v", fit.R2)
	}
}

func TestFitLineDegenerate(t *testing.T) {
	fit := FitLine([]float64{1, 1, 1}, []float64{1, 2, 3})
	if !math.IsNaN(fit.Slope) {
		t.Errorf("constant x should give NaN slope, got %v", fit.Slope)
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	FitLine([]float64{1}, []float64{1, 2})
}

func TestVarianceNonNegativeProperty(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) < 2 {
			return true
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true
			}
		}
		return Variance(xs) >= -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestIntegratePolynomial(t *testing.T) {
	// Integral of x^2 on [0,3] = 9.
	got := Integrate(func(x float64) float64 { return x * x }, 0, 3, 1e-12)
	if !approxEq(got, 9, 1e-9) {
		t.Errorf("integral x^2 = %v", got)
	}
}

func TestIntegrateGaussian(t *testing.T) {
	// Integral of the standard normal pdf over [-8, 8] ~ 1.
	got := Integrate(NormalPDF, -8, 8, 1e-12)
	if !approxEq(got, 1, 1e-9) {
		t.Errorf("integral of pdf = %v", got)
	}
	// And [-1, 1] matches CDF difference.
	got = Integrate(NormalPDF, -1, 1, 1e-12)
	want := NormalCDF(1) - NormalCDF(-1)
	if !approxEq(got, want, 1e-10) {
		t.Errorf("integral = %v, want %v", got, want)
	}
}

func TestIntegrateReversedAndEmpty(t *testing.T) {
	f := func(x float64) float64 { return x }
	if got := Integrate(f, 2, 2, 1e-9); got != 0 {
		t.Errorf("empty integral = %v", got)
	}
	fwd := Integrate(f, 0, 1, 1e-12)
	rev := Integrate(f, 1, 0, 1e-12)
	if !approxEq(fwd, -rev, 1e-12) {
		t.Errorf("reversal: %v vs %v", fwd, rev)
	}
}

func TestIntegrateOscillatory(t *testing.T) {
	// Integral of sin over [0, pi] = 2.
	got := Integrate(math.Sin, 0, math.Pi, 1e-12)
	if !approxEq(got, 2, 1e-9) {
		t.Errorf("integral sin = %v", got)
	}
}
