package stats

import "math"

// Interval is a closed confidence interval [Lo, Hi].
type Interval struct {
	Lo, Hi float64
}

// Contains reports whether v lies in the interval.
func (iv Interval) Contains(v float64) bool { return v >= iv.Lo && v <= iv.Hi }

// Width returns Hi - Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// WilsonInterval returns the Wilson score interval for a binomial proportion
// with successes out of trials at the given z-score (e.g. z = 4 for a ~6e-5
// two-sided failure probability). It is well-behaved for proportions near 0
// and 1, which is the regime of LSH collision probabilities.
func WilsonInterval(successes, trials int, z float64) Interval {
	if trials <= 0 {
		return Interval{0, 1}
	}
	n := float64(trials)
	p := float64(successes) / n
	z2 := z * z
	denom := 1 + z2/n
	center := (p + z2/(2*n)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/n+z2/(4*n*n))
	lo := center - half
	hi := center + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return Interval{lo, hi}
}

// ClopperPearsonInterval returns the exact (conservative) Clopper-Pearson
// interval for a binomial proportion at two-sided confidence 1-alpha,
// computed from the regularized incomplete beta function.
func ClopperPearsonInterval(successes, trials int, alpha float64) Interval {
	if trials <= 0 {
		return Interval{0, 1}
	}
	k := float64(successes)
	n := float64(trials)
	var lo, hi float64
	if successes == 0 {
		lo = 0
	} else {
		lo = betaQuantile(alpha/2, k, n-k+1)
	}
	if successes == trials {
		hi = 1
	} else {
		hi = betaQuantile(1-alpha/2, k+1, n-k)
	}
	return Interval{lo, hi}
}

// RegIncompleteBeta returns the regularized incomplete beta function
// I_x(a, b), the CDF of the Beta(a, b) distribution at x, using the
// continued-fraction expansion (Numerical Recipes betacf).
func RegIncompleteBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta, _ := math.Lgamma(a + b)
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	front := math.Exp(lbeta - la - lb + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta function
// by the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-15
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// betaQuantile inverts the Beta(a, b) CDF by bisection refined with Newton
// steps; adequate for confidence-interval use.
func betaQuantile(p, a, b float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	lo, hi := 0.0, 1.0
	x := 0.5
	for i := 0; i < 200; i++ {
		v := RegIncompleteBeta(a, b, x)
		if v > p {
			hi = x
		} else {
			lo = x
		}
		x = (lo + hi) / 2
		if hi-lo < 1e-14 {
			break
		}
	}
	return x
}

// ChernoffUpperTail returns the standard multiplicative Chernoff bound
// Pr[X >= (1+eps) mu] <= exp(-eps^2 mu / 3) for a sum of independent 0/1
// variables with mean mu, as used in Section 3.1 of the paper.
func ChernoffUpperTail(mu, eps float64) float64 {
	if eps <= 0 || mu <= 0 {
		return 1
	}
	return math.Exp(-eps * eps * mu / 3)
}

// ChernoffLowerTail returns Pr[X <= (1-eps) mu] <= exp(-eps^2 mu / 2).
func ChernoffLowerTail(mu, eps float64) float64 {
	if eps <= 0 || mu <= 0 {
		return 1
	}
	return math.Exp(-eps * eps * mu / 2)
}
