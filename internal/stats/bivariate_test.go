package stats

import (
	"math"
	"testing"

	"dsh/internal/xrand"
)

func TestBivariateIndependent(t *testing.T) {
	// rho = 0: CDF factorizes.
	for _, h := range []float64{-2, -0.5, 0, 1, 2.5} {
		for _, k := range []float64{-1.5, 0, 0.7, 3} {
			got := BivariateNormalCDF(h, k, 0)
			want := NormalCDF(h) * NormalCDF(k)
			if !approxEq(got, want, 1e-12) {
				t.Errorf("CDF(%v,%v,0) = %v, want %v", h, k, got, want)
			}
		}
	}
}

func TestBivariatePerfectCorrelation(t *testing.T) {
	for _, h := range []float64{-1, 0, 1} {
		for _, k := range []float64{-1, 0.5, 2} {
			got := BivariateNormalCDF(h, k, 1)
			want := NormalCDF(math.Min(h, k))
			if !approxEq(got, want, 1e-12) {
				t.Errorf("CDF(%v,%v,1) = %v, want %v", h, k, got, want)
			}
		}
	}
}

func TestBivariateAntiCorrelation(t *testing.T) {
	for _, h := range []float64{-1, 0, 1, 2} {
		for _, k := range []float64{-1, 0.5, 2} {
			got := BivariateNormalCDF(h, k, -1)
			want := math.Max(0, NormalCDF(h)+NormalCDF(k)-1)
			if !approxEq(got, want, 1e-12) {
				t.Errorf("CDF(%v,%v,-1) = %v, want %v", h, k, got, want)
			}
		}
	}
}

func TestBivariateKnownValues(t *testing.T) {
	// Reference values computed with high-precision quadrature
	// (Owen's T function identities); standard test points.
	cases := []struct{ h, k, rho, want float64 }{
		{0, 0, 0.5, 1.0 / 3},  // classical: Phi2(0,0,rho) = 1/4 + asin(rho)/(2 pi)
		{0, 0, -0.5, 1.0 / 6}, // 1/4 - asin(0.5)/(2 pi) = 1/4 - 1/12
		{0, 0, 0.99, 0.25 + math.Asin(0.99)/(2*math.Pi)},
		{0, 0, -0.99, 0.25 + math.Asin(-0.99)/(2*math.Pi)},
	}
	for _, c := range cases {
		got := BivariateNormalCDF(c.h, c.k, c.rho)
		if math.Abs(got-c.want) > 1e-6 {
			t.Errorf("CDF(%v,%v,%v) = %v, want %v", c.h, c.k, c.rho, got, c.want)
		}
	}
}

func TestBivariateZeroZeroIdentity(t *testing.T) {
	// Phi2(0, 0, rho) = 1/4 + asin(rho) / (2 pi) for all rho.
	for rho := -0.95; rho <= 0.96; rho += 0.05 {
		got := BivariateNormalCDF(0, 0, rho)
		want := 0.25 + math.Asin(rho)/(2*math.Pi)
		if math.Abs(got-want) > 1e-10 {
			t.Errorf("Phi2(0,0,%v) = %v, want %v", rho, got, want)
		}
	}
}

func TestBivariateMonotoneInRho(t *testing.T) {
	// For fixed h=k=t the orthant probability is increasing in rho
	// (Slepian's inequality).
	for _, tt := range []float64{0.5, 1, 2} {
		prev := -1.0
		for rho := -0.9; rho <= 0.91; rho += 0.1 {
			p := BivariateNormalOrthant(tt, rho)
			if p < prev-1e-12 {
				t.Errorf("orthant prob not monotone at t=%v rho=%v: %v < %v", tt, rho, p, prev)
			}
			prev = p
		}
	}
}

func TestBivariateOrthantVsMonteCarlo(t *testing.T) {
	rng := xrand.New(99)
	const n = 2000000
	for _, c := range []struct{ t, rho float64 }{{1, 0.3}, {0.5, -0.6}, {1.5, 0.8}} {
		hits := 0
		s := math.Sqrt(1 - c.rho*c.rho)
		for i := 0; i < n; i++ {
			z1 := rng.NormFloat64()
			z2 := rng.NormFloat64()
			x := z1
			y := c.rho*z1 + s*z2
			if x >= c.t && y >= c.t {
				hits++
			}
		}
		mc := float64(hits) / n
		analytic := BivariateNormalOrthant(c.t, c.rho)
		iv := WilsonInterval(hits, n, 5)
		if !iv.Contains(analytic) {
			t.Errorf("orthant(t=%v,rho=%v): analytic %v outside MC interval [%v,%v] (mc=%v)",
				c.t, c.rho, analytic, iv.Lo, iv.Hi, mc)
		}
	}
}

func TestOppositeOrthantSymmetry(t *testing.T) {
	for _, tt := range []float64{0.5, 1, 2} {
		for _, rho := range []float64{-0.7, -0.2, 0, 0.4, 0.9} {
			a := BivariateNormalOppositeOrthant(tt, rho)
			b := BivariateNormalOrthant(tt, -rho)
			if !approxEq(a, b, 1e-14) {
				t.Errorf("opposite orthant mismatch t=%v rho=%v: %v vs %v", tt, rho, a, b)
			}
		}
	}
}

func TestSavageBoundsBracketExact(t *testing.T) {
	// Savage's bounds should bracket the true orthant probability for
	// t large enough that the lower-bound factor is positive.
	for _, c := range []struct{ t, alpha float64 }{{3, 0.2}, {4, 0.5}, {5, -0.3}, {6, 0.7}} {
		lo, hi := SavageBounds(c.t, c.alpha)
		exact := BivariateNormalOrthant(c.t, c.alpha)
		if lo > exact*(1+1e-9) {
			t.Errorf("Savage lower bound violated at t=%v alpha=%v: lo=%v exact=%v", c.t, c.alpha, lo, exact)
		}
		if hi < exact*(1-1e-9) {
			t.Errorf("Savage upper bound violated at t=%v alpha=%v: hi=%v exact=%v", c.t, c.alpha, hi, exact)
		}
		if lo > hi {
			t.Errorf("Savage bounds inverted at t=%v alpha=%v", c.t, c.alpha)
		}
	}
}

func TestBivariateCDFInUnitRange(t *testing.T) {
	for _, h := range []float64{-3, -1, 0, 1, 3} {
		for _, k := range []float64{-3, 0, 3} {
			for _, rho := range []float64{-0.99, -0.5, 0, 0.5, 0.93, 0.99} {
				p := BivariateNormalCDF(h, k, rho)
				if p < 0 || p > 1 || math.IsNaN(p) {
					t.Errorf("CDF(%v,%v,%v) = %v out of range", h, k, rho, p)
				}
			}
		}
	}
}
