package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (NaN for fewer than
// two observations), using the numerically stable two-pass formula.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss, comp float64
	for _, x := range xs {
		d := x - m
		ss += d * d
		comp += d
	}
	n := float64(len(xs))
	return (ss - comp*comp/n) / (n - 1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It does not modify xs.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	i := int(math.Floor(pos))
	if i >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(i)
	return sorted[i]*(1-frac) + sorted[i+1]*frac
}

// Summary holds basic descriptive statistics of a sample.
type Summary struct {
	N                  int
	Mean, StdDev       float64
	Min, Median, Max   float64
	P05, P25, P75, P95 float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		nan := math.NaN()
		s.Mean, s.StdDev, s.Min, s.Median, s.Max = nan, nan, nan, nan, nan
		s.P05, s.P25, s.P75, s.P95 = nan, nan, nan, nan
		return s
	}
	s.Mean = Mean(xs)
	if len(xs) >= 2 {
		s.StdDev = StdDev(xs)
	}
	s.Min = Quantile(xs, 0)
	s.P05 = Quantile(xs, 0.05)
	s.P25 = Quantile(xs, 0.25)
	s.Median = Quantile(xs, 0.5)
	s.P75 = Quantile(xs, 0.75)
	s.P95 = Quantile(xs, 0.95)
	s.Max = Quantile(xs, 1)
	return s
}

// LinearFit holds the result of an ordinary least squares fit y = a + b*x.
type LinearFit struct {
	Intercept, Slope float64
	R2               float64
}

// FitLine fits y = a + b*x by ordinary least squares. It panics if the
// slices have different lengths and returns NaNs for fewer than two points
// or degenerate (constant) x.
func FitLine(x, y []float64) LinearFit {
	if len(x) != len(y) {
		panic("stats: FitLine length mismatch")
	}
	n := float64(len(x))
	if len(x) < 2 {
		return LinearFit{math.NaN(), math.NaN(), math.NaN()}
	}
	mx := Mean(x)
	my := Mean(y)
	var sxx, sxy, syy float64
	for i := range x {
		dx := x[i] - mx
		dy := y[i] - my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{math.NaN(), math.NaN(), math.NaN()}
	}
	slope := sxy / sxx
	fit := LinearFit{
		Intercept: my - slope*mx,
		Slope:     slope,
	}
	if syy > 0 {
		fit.R2 = sxy * sxy / (sxx * syy)
	} else {
		fit.R2 = 1 // y constant and perfectly fit by slope 0 line
	}
	_ = n
	return fit
}
