// Package vec provides dense float64 vector operations and the random
// geometric generators used by the unit-sphere and Euclidean constructions:
// Gaussian vectors, uniform points on S^{d-1}, pairs of unit vectors with a
// prescribed inner product, pairs of points at a prescribed Euclidean
// distance, and the tensor-power embeddings of Valiant used by Theorem 5.1.
package vec

import (
	"math"

	"dsh/internal/xrand"
)

// Dot returns the inner product of x and y. It panics on length mismatch.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("vec: dimension mismatch")
	}
	var sum float64
	for i, v := range x {
		sum += v * y[i]
	}
	return sum
}

// Norm returns the Euclidean norm of x.
func Norm(x []float64) float64 {
	return math.Sqrt(Dot(x, x))
}

// Distance returns the Euclidean distance between x and y.
func Distance(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("vec: dimension mismatch")
	}
	var sum float64
	for i := range x {
		d := x[i] - y[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// CosineSimilarity returns <x,y>/(|x||y|), NaN if either vector is zero.
func CosineSimilarity(x, y []float64) float64 {
	nx, ny := Norm(x), Norm(y)
	if nx == 0 || ny == 0 {
		return math.NaN()
	}
	return Dot(x, y) / (nx * ny)
}

// AngularDistance returns the angle in radians between x and y, in [0, pi].
func AngularDistance(x, y []float64) float64 {
	c := CosineSimilarity(x, y)
	if c > 1 {
		c = 1
	}
	if c < -1 {
		c = -1
	}
	return math.Acos(c)
}

// Scale multiplies x by s in place and returns x.
func Scale(x []float64, s float64) []float64 {
	for i := range x {
		x[i] *= s
	}
	return x
}

// Scaled returns a new vector equal to s*x.
func Scaled(x []float64, s float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = s * v
	}
	return out
}

// Add returns x + y as a new vector.
func Add(x, y []float64) []float64 {
	if len(x) != len(y) {
		panic("vec: dimension mismatch")
	}
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i] + y[i]
	}
	return out
}

// Sub returns x - y as a new vector.
func Sub(x, y []float64) []float64 {
	if len(x) != len(y) {
		panic("vec: dimension mismatch")
	}
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i] - y[i]
	}
	return out
}

// Axpy computes y += a*x in place and returns y.
func Axpy(a float64, x, y []float64) []float64 {
	if len(x) != len(y) {
		panic("vec: dimension mismatch")
	}
	for i := range y {
		y[i] += a * x[i]
	}
	return y
}

// Neg returns -x as a new vector. Negating the query point is the central
// asymmetry trick of the paper (Sections 2.1 and 2.2).
func Neg(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = -v
	}
	return out
}

// Normalize scales x to unit norm in place and returns x.
// It panics if x is the zero vector.
func Normalize(x []float64) []float64 {
	n := Norm(x)
	if n == 0 {
		panic("vec: cannot normalize zero vector")
	}
	return Scale(x, 1/n)
}

// Clone returns a copy of x.
func Clone(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// Gaussian returns a vector of d independent standard normal entries.
func Gaussian(rng *xrand.Rand, d int) []float64 {
	out := make([]float64, d)
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}

// RandomUnit returns a uniformly random point on the unit sphere S^{d-1}.
func RandomUnit(rng *xrand.Rand, d int) []float64 {
	for {
		g := Gaussian(rng, d)
		if Norm(g) > 1e-12 {
			return Normalize(g)
		}
	}
}

// UnitPairWithDot returns two unit vectors x, y with <x, y> = alpha exactly
// (up to floating point), with the pair's orientation uniformly random.
// alpha must lie in [-1, 1].
func UnitPairWithDot(rng *xrand.Rand, d int, alpha float64) (x, y []float64) {
	if alpha < -1 || alpha > 1 {
		panic("vec: alpha out of [-1,1]")
	}
	if d < 2 {
		panic("vec: need dimension >= 2 for a prescribed inner product")
	}
	x = RandomUnit(rng, d)
	// Build a unit vector u orthogonal to x, then y = alpha*x + sqrt(1-a^2)*u.
	var u []float64
	for {
		g := Gaussian(rng, d)
		Axpy(-Dot(g, x), x, g)
		if Norm(g) > 1e-9 {
			u = Normalize(g)
			break
		}
	}
	y = Scaled(x, alpha)
	Axpy(math.Sqrt(1-alpha*alpha), u, y)
	return x, y
}

// PairAtDistance returns two points in R^d at Euclidean distance exactly
// delta, centered near the origin with random orientation.
func PairAtDistance(rng *xrand.Rand, d int, delta float64) (x, y []float64) {
	if delta < 0 {
		panic("vec: negative distance")
	}
	x = Gaussian(rng, d)
	dir := RandomUnit(rng, d)
	y = Clone(x)
	Axpy(delta, dir, y)
	return x, y
}

// TensorPower returns the k-th tensor power x^(k) of x flattened into a
// vector of dimension len(x)^k, with x^(0) = [1]. Inner products satisfy
// <x^(k), y^(k)> = <x, y>^k, the identity at the heart of Valiant's
// polynomial embedding (Theorem 5.1 of the paper).
func TensorPower(x []float64, k int) []float64 {
	if k < 0 {
		panic("vec: negative tensor power")
	}
	out := []float64{1}
	for p := 0; p < k; p++ {
		next := make([]float64, 0, len(out)*len(x))
		for _, a := range out {
			for _, b := range x {
				next = append(next, a*b)
			}
		}
		out = next
	}
	return out
}

// Concat returns the concatenation of the given vectors.
func Concat(vs ...[]float64) []float64 {
	total := 0
	for _, v := range vs {
		total += len(v)
	}
	out := make([]float64, 0, total)
	for _, v := range vs {
		out = append(out, v...)
	}
	return out
}
