package vec

import (
	"math"
	"testing"
	"testing/quick"

	"dsh/internal/xrand"
)

func TestDotNormDistance(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, -5, 6}
	if got := Dot(x, y); got != 12 {
		t.Errorf("Dot = %v", got)
	}
	if got := Norm([]float64{3, 4}); got != 5 {
		t.Errorf("Norm = %v", got)
	}
	if got := Distance([]float64{1, 1}, []float64{4, 5}); got != 5 {
		t.Errorf("Distance = %v", got)
	}
}

func TestMismatchPanics(t *testing.T) {
	funcs := []func(){
		func() { Dot([]float64{1}, []float64{1, 2}) },
		func() { Distance([]float64{1}, []float64{1, 2}) },
		func() { Add([]float64{1}, []float64{1, 2}) },
		func() { Sub([]float64{1}, []float64{1, 2}) },
		func() { Axpy(1, []float64{1}, []float64{1, 2}) },
	}
	for i, fn := range funcs {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestArithmetic(t *testing.T) {
	x := []float64{1, 2}
	y := []float64{10, 20}
	if got := Add(x, y); got[0] != 11 || got[1] != 22 {
		t.Errorf("Add = %v", got)
	}
	if got := Sub(y, x); got[0] != 9 || got[1] != 18 {
		t.Errorf("Sub = %v", got)
	}
	if got := Scaled(x, 3); got[0] != 3 || got[1] != 6 {
		t.Errorf("Scaled = %v", got)
	}
	if got := Neg(x); got[0] != -1 || got[1] != -2 {
		t.Errorf("Neg = %v", got)
	}
	z := Clone(x)
	Axpy(2, y, z)
	if z[0] != 21 || z[1] != 42 {
		t.Errorf("Axpy = %v", z)
	}
	if x[0] != 1 {
		t.Error("Clone aliases input")
	}
}

func TestNormalize(t *testing.T) {
	x := []float64{3, 4}
	Normalize(x)
	if math.Abs(Norm(x)-1) > 1e-15 {
		t.Errorf("Normalize norm = %v", Norm(x))
	}
	defer func() {
		if recover() == nil {
			t.Error("normalizing zero should panic")
		}
	}()
	Normalize([]float64{0, 0})
}

func TestCosineAndAngular(t *testing.T) {
	e1 := []float64{1, 0}
	e2 := []float64{0, 1}
	if got := CosineSimilarity(e1, e2); got != 0 {
		t.Errorf("cos = %v", got)
	}
	if got := AngularDistance(e1, e2); math.Abs(got-math.Pi/2) > 1e-15 {
		t.Errorf("angle = %v", got)
	}
	if got := AngularDistance(e1, []float64{-1, 0}); math.Abs(got-math.Pi) > 1e-15 {
		t.Errorf("angle = %v", got)
	}
	if !math.IsNaN(CosineSimilarity(e1, []float64{0, 0})) {
		t.Error("cosine with zero vector should be NaN")
	}
}

func TestGaussianMoments(t *testing.T) {
	rng := xrand.New(1)
	g := Gaussian(rng, 100000)
	mean := 0.0
	for _, v := range g {
		mean += v
	}
	mean /= float64(len(g))
	if math.Abs(mean) > 0.02 {
		t.Errorf("gaussian mean = %v", mean)
	}
	norm2 := Dot(g, g) / float64(len(g))
	if math.Abs(norm2-1) > 0.02 {
		t.Errorf("gaussian second moment = %v", norm2)
	}
}

func TestRandomUnitOnSphere(t *testing.T) {
	rng := xrand.New(2)
	for i := 0; i < 50; i++ {
		u := RandomUnit(rng, 10)
		if math.Abs(Norm(u)-1) > 1e-12 {
			t.Fatalf("norm = %v", Norm(u))
		}
	}
	// Mean of many unit vectors should be near zero (uniformity check).
	const n, d = 5000, 5
	sum := make([]float64, d)
	for i := 0; i < n; i++ {
		Axpy(1, RandomUnit(rng, d), sum)
	}
	for j := 0; j < d; j++ {
		if math.Abs(sum[j]/n) > 0.05 {
			t.Fatalf("coordinate %d mean = %v", j, sum[j]/n)
		}
	}
}

func TestUnitPairWithDot(t *testing.T) {
	rng := xrand.New(3)
	for _, alpha := range []float64{-1, -0.9, -0.3, 0, 0.5, 0.99, 1} {
		for i := 0; i < 20; i++ {
			x, y := UnitPairWithDot(rng, 16, alpha)
			if math.Abs(Norm(x)-1) > 1e-12 || math.Abs(Norm(y)-1) > 1e-12 {
				t.Fatalf("not unit: %v %v", Norm(x), Norm(y))
			}
			if math.Abs(Dot(x, y)-alpha) > 1e-10 {
				t.Fatalf("alpha=%v: dot = %v", alpha, Dot(x, y))
			}
		}
	}
}

func TestUnitPairWithDotPanics(t *testing.T) {
	rng := xrand.New(4)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("alpha > 1 should panic")
			}
		}()
		UnitPairWithDot(rng, 8, 1.5)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("d < 2 should panic")
			}
		}()
		UnitPairWithDot(rng, 1, 0.5)
	}()
}

func TestPairAtDistance(t *testing.T) {
	rng := xrand.New(5)
	for _, delta := range []float64{0, 0.5, 1, 3.7, 100} {
		x, y := PairAtDistance(rng, 12, delta)
		if math.Abs(Distance(x, y)-delta) > 1e-9*math.Max(1, delta) {
			t.Fatalf("distance = %v, want %v", Distance(x, y), delta)
		}
	}
}

func TestTensorPowerInnerProduct(t *testing.T) {
	rng := xrand.New(6)
	for _, k := range []int{0, 1, 2, 3, 4} {
		x := RandomUnit(rng, 5)
		y := RandomUnit(rng, 5)
		tx := TensorPower(x, k)
		ty := TensorPower(y, k)
		wantLen := 1
		for i := 0; i < k; i++ {
			wantLen *= 5
		}
		if len(tx) != wantLen {
			t.Fatalf("k=%d: len = %d, want %d", k, len(tx), wantLen)
		}
		got := Dot(tx, ty)
		want := math.Pow(Dot(x, y), float64(k))
		if math.Abs(got-want) > 1e-10 {
			t.Fatalf("k=%d: <x^k,y^k> = %v, want %v", k, got, want)
		}
	}
}

func TestTensorPowerNormPreserved(t *testing.T) {
	rng := xrand.New(7)
	x := RandomUnit(rng, 6)
	for k := 0; k <= 3; k++ {
		if n := Norm(TensorPower(x, k)); math.Abs(n-1) > 1e-10 {
			t.Fatalf("k=%d: |x^k| = %v", k, n)
		}
	}
}

func TestConcat(t *testing.T) {
	got := Concat([]float64{1, 2}, nil, []float64{3})
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("Concat = %v", got)
	}
}

func TestDotSymmetryQuick(t *testing.T) {
	f := func(seed uint64, dRaw uint8) bool {
		d := int(dRaw%20) + 1
		rng := xrand.New(seed)
		x := Gaussian(rng, d)
		y := Gaussian(rng, d)
		return math.Abs(Dot(x, y)-Dot(y, x)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCauchySchwarzQuick(t *testing.T) {
	f := func(seed uint64, dRaw uint8) bool {
		d := int(dRaw%20) + 1
		rng := xrand.New(seed)
		x := Gaussian(rng, d)
		y := Gaussian(rng, d)
		return math.Abs(Dot(x, y)) <= Norm(x)*Norm(y)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDot128(b *testing.B) {
	rng := xrand.New(1)
	x := Gaussian(rng, 128)
	y := Gaussian(rng, 128)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += Dot(x, y)
	}
	_ = sink
}
