// Package euclid implements the paper's Euclidean-space DSH construction
// (Section 4.2): the asymmetric extension R_{k,w} of the Datar-Immorlica-
// Indyk-Mirrokni p-stable LSH,
//
//	h(x) = floor((<a,x>+b)/w),   g(y) = floor((<a,y>+b)/w) + k,
//
// with a ~ N_d(0,1) and b uniform in [0,w). Its CPF is a function of the
// Euclidean distance Delta: unimodal with peak near Delta ~ k*w (Figure 1
// of the paper), and Theorem 4.1 shows the induced rho^- approaches the
// optimal 1/c^2 as k grows.
package euclid

import (
	"fmt"
	"math"

	"dsh/internal/core"
	"dsh/internal/stats"
	"dsh/internal/vec"
	"dsh/internal/xrand"
)

// Point is the point type for Euclidean families.
type Point = []float64

// PStable is the R_{k,w} family. k = 0 recovers the classical symmetric
// LSH of Datar et al.; k >= 1 gives the unimodal anti-LSH behaviour.
type PStable struct {
	d int
	k int
	w float64
}

// NewPStable returns the R_{k,w} family for dimension d with bucket shift k
// (k >= 0) and bucket width w > 0.
func NewPStable(d, k int, w float64) *PStable {
	if d <= 0 {
		panic("euclid: dimension must be positive")
	}
	if k < 0 {
		panic("euclid: shift k must be non-negative")
	}
	if w <= 0 {
		panic("euclid: bucket width must be positive")
	}
	return &PStable{d: d, k: k, w: w}
}

// K returns the bucket shift.
func (p *PStable) K() int { return p.k }

// W returns the bucket width.
func (p *PStable) W() float64 { return p.w }

// Name implements core.Family.
func (p *PStable) Name() string { return fmt.Sprintf("pstable(d=%d,k=%d,w=%.3g)", p.d, p.k, p.w) }

type bucketHasher struct {
	a     []float64
	b     float64
	w     float64
	shift int64
}

func (h bucketHasher) Hash(x Point) uint64 {
	v := int64(math.Floor((vec.Dot(h.a, x)+h.b)/h.w)) + h.shift
	return uint64(v)
}

// Sample implements core.Family.
func (p *PStable) Sample(rng *xrand.Rand) core.Pair[Point] {
	a := vec.Gaussian(rng, p.d)
	b := rng.Float64() * p.w
	h := bucketHasher{a: a, b: b, w: p.w}
	g := bucketHasher{a: a, b: b, w: p.w, shift: int64(p.k)}
	return core.Pair[Point]{H: h, G: g}
}

// ExactCPF returns the exact collision probability at Euclidean distance
// delta >= 0. Derivation: the projected gap T = <a, x-y> is N(0, delta^2)
// and, conditioned on T = t, the uniform offset b makes the bucket-index
// difference equal k with the triangular probability
//
//	t/w - (k-1)  for t/w in [k-1, k]
//	k+1 - t/w    for t/w in [k, k+1]
//
// yielding, with s = t/delta, A = (k-1)w, B = kw, C = (k+1)w:
//
//	f = (delta/w)(phi(A/delta) - phi(B/delta)) - (k-1)(Phi(B/delta) - Phi(A/delta))
//	  + (k+1)(Phi(C/delta) - Phi(B/delta)) + (delta/w)(phi(C/delta) - phi(B/delta))
//
// Note: the paper's Appendix B subtracts an extra phi(kw/delta)/delta term;
// the Monte-Carlo estimator (see tests) confirms the formula above, and the
// discrepancy is recorded in EXPERIMENTS.md.
func (p *PStable) ExactCPF(delta float64) float64 {
	if delta < 0 {
		panic("euclid: negative distance")
	}
	k := float64(p.k)
	w := p.w
	if delta == 0 {
		if p.k == 0 {
			return 1
		}
		return 0
	}
	A := (k - 1) * w / delta
	B := k * w / delta
	C := (k + 1) * w / delta
	r := delta / w
	term1 := r*(stats.NormalPDF(A)-stats.NormalPDF(B)) -
		(k-1)*(stats.NormalCDF(B)-stats.NormalCDF(A))
	term2 := (k+1)*(stats.NormalCDF(C)-stats.NormalCDF(B)) +
		r*(stats.NormalPDF(C)-stats.NormalPDF(B))
	f := term1 + term2
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	return f
}

// CPF implements core.Family with the exact closed form.
func (p *PStable) CPF() core.CPF {
	return core.CPF{Domain: core.DomainDistance, Eval: p.ExactCPF}
}

// LogCPF returns ln f(delta) without underflow. When the exact value is
// representable it returns its logarithm; deep in the left tail (delta far
// below the peak, where f underflows float64) it switches to the asymptotic
//
//	f ~ (delta/w) * phi(a) / a^2,   a = (k-1)w/delta,
//
// obtained from f = (delta/w)(phi(a) - a*Q(a)) and Q(a) ~ phi(a)/a.
func (p *PStable) LogCPF(delta float64) float64 {
	f := p.ExactCPF(delta)
	if f > 1e-280 {
		return math.Log(f)
	}
	if p.k == 0 || delta <= 0 {
		return math.Inf(-1)
	}
	a := (float64(p.k) - 1) * p.w / delta
	if a <= 1 {
		return math.Inf(-1) // not in the asymptotic regime; truly ~0
	}
	return math.Log(delta/p.w) - a*a/2 - 0.5*math.Log(2*math.Pi) - 2*math.Log(a)
}

// PeakDistance returns the distance at which the CPF attains its maximum,
// found by golden-section search over (0, 4(k+1)w].
func (p *PStable) PeakDistance() float64 {
	lo, hi := 1e-9, 4*float64(p.k+1)*p.w
	const phi = 0.6180339887498949
	a, b := lo, hi
	x1 := b - phi*(b-a)
	x2 := a + phi*(b-a)
	f1, f2 := p.ExactCPF(x1), p.ExactCPF(x2)
	for i := 0; i < 200 && b-a > 1e-10; i++ {
		if f1 < f2 {
			a, x1, f1 = x1, x2, f2
			x2 = a + phi*(b-a)
			f2 = p.ExactCPF(x2)
		} else {
			b, x2, f2 = x2, x1, f1
			x1 = b - phi*(b-a)
			f1 = p.ExactCPF(x1)
		}
	}
	return (a + b) / 2
}

// Theorem41Width returns the bucket width w(c) <= sqrt(2*pi)/(2c) used in
// the proof of Theorem 4.1 (with the target distance normalized to r = 1).
func Theorem41Width(c float64) float64 {
	if c <= 1 {
		panic("euclid: approximation factor must exceed 1")
	}
	return math.Sqrt(2*math.Pi) / (2 * c)
}

// RhoMinus returns the exact rho^- = ln(1/f(r)) / ln(1/f(r/c)) of the
// family: the collision-probability gap between the target distance r and
// the too-close distance r/c. Theorem 4.1 shows that with w = Theorem41Width(c)
// and growing k this approaches 1/c^2.
func (p *PStable) RhoMinus(r, c float64) float64 {
	if c <= 1 {
		panic("euclid: approximation factor must exceed 1")
	}
	return p.LogCPF(r) / p.LogCPF(r/c)
}
