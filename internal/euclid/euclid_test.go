package euclid

import (
	"math"
	"testing"

	"dsh/internal/core"
	"dsh/internal/vec"
	"dsh/internal/xrand"
)

const testDim = 16

func pairsAt(rng *xrand.Rand, delta float64) (Point, Point) {
	return vec.PairAtDistance(rng, testDim, delta)
}

func TestConstructorPanics(t *testing.T) {
	for i, fn := range []func(){
		func() { NewPStable(0, 1, 1) },
		func() { NewPStable(4, -1, 1) },
		func() { NewPStable(4, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestSymmetricCaseMatchesDatarEtAl(t *testing.T) {
	// k = 0 recovers the classical p-stable LSH; its known CPF is
	// f(delta) = 2 Phi(w/delta) - 1 + (2 delta / (w sqrt(2 pi))) (e^{-w^2/(2 delta^2)} - 1)
	// ... rather than re-derive, just check endpoints and Monte Carlo.
	fam := NewPStable(testDim, 0, 2)
	if got := fam.ExactCPF(0); got != 1 {
		t.Errorf("f(0) = %v, want 1", got)
	}
	if got := fam.ExactCPF(100); got > 0.02 {
		t.Errorf("f(100) = %v, want ~0", got)
	}
	rng := xrand.New(1)
	for _, delta := range []float64{0.2, 1, 2, 5} {
		est := core.EstimateCollision(rng, fam, pairsAt, delta, 20000, 5)
		want := fam.ExactCPF(delta)
		if !est.Interval.Contains(want) {
			t.Errorf("delta=%v: estimate %v (interval [%v,%v]) excludes analytic %v",
				delta, est.P, est.Interval.Lo, est.Interval.Hi, want)
		}
	}
}

func TestShiftedCPFEmpirical(t *testing.T) {
	// This test also adjudicates the formula discrepancy with the paper's
	// Appendix B (the extra -phi(kw/delta)/delta term): our closed form
	// must match Monte-Carlo at every probed distance.
	rng := xrand.New(2)
	for _, k := range []int{1, 3} {
		fam := NewPStable(testDim, k, 1)
		for _, delta := range []float64{0.5, 1, 2, 3, 5, 8} {
			est := core.EstimateCollision(rng, fam, pairsAt, delta, 20000, 5)
			want := fam.ExactCPF(delta)
			if !est.Interval.Contains(want) {
				t.Errorf("k=%d delta=%v: estimate %v (interval [%v,%v]) excludes analytic %v",
					k, delta, est.P, est.Interval.Lo, est.Interval.Hi, want)
			}
		}
	}
}

func TestCPFZeroAtZeroDistanceForPositiveK(t *testing.T) {
	fam := NewPStable(testDim, 3, 1)
	if got := fam.ExactCPF(0); got != 0 {
		t.Errorf("f(0) = %v, want 0", got)
	}
	// Empirically: identical points never collide under g = h + k.
	rng := xrand.New(3)
	x := vec.Gaussian(rng, testDim)
	for i := 0; i < 2000; i++ {
		pair := fam.Sample(rng)
		if pair.Collides(x, x) {
			t.Fatal("shifted family must not collide at distance 0")
		}
	}
}

func TestFigure1Shape(t *testing.T) {
	// Figure 1 of the paper: k = 3, w = 1. The CPF is unimodal with peak
	// value ~0.08 around distance 2-3, decreasing rapidly on the left of
	// the maximum and slowly on the right.
	fam := NewPStable(testDim, 3, 1)
	peak := fam.PeakDistance()
	if peak < 1.5 || peak > 4 {
		t.Errorf("peak at %v, want in [1.5, 4]", peak)
	}
	fPeak := fam.ExactCPF(peak)
	if fPeak < 0.06 || fPeak > 0.10 {
		t.Errorf("peak value %v, want ~0.08", fPeak)
	}
	// Unimodality: increasing before, decreasing after.
	prev := -1.0
	for d := 0.25; d <= peak; d += 0.25 {
		v := fam.ExactCPF(d)
		if v < prev-1e-12 {
			t.Fatalf("CPF not increasing at %v", d)
		}
		prev = v
	}
	prev = fPeak
	for d := peak; d <= 10; d += 0.25 {
		v := fam.ExactCPF(d)
		if v > prev+1e-12 {
			t.Fatalf("CPF not decreasing at %v", d)
		}
		prev = v
	}
	// Asymmetry: left side falls off faster than right side.
	left := fam.ExactCPF(peak - 1.2)
	right := fam.ExactCPF(peak + 1.2)
	if left >= right {
		t.Errorf("expected steep left/slow right: f(peak-1.2)=%v, f(peak+1.2)=%v", left, right)
	}
}

func TestRhoMinusApproachesInverseCSquared(t *testing.T) {
	// Theorem 4.1: with w = w(c), rho^- = (1/c^2)(1 + O(1/k)).
	c := 2.0
	w := Theorem41Width(c)
	for _, k := range []int{4, 8, 16, 32} {
		fam := NewPStable(testDim, k, w)
		rho := fam.RhoMinus(1, c)
		// The deviation is O(1/k) (not necessarily monotone once the
		// log-space asymptotic kicks in at large k).
		if gap := math.Abs(rho*c*c - 1); gap > 6.0/float64(k) {
			t.Errorf("k=%d: rho=%v, |rho c^2 - 1| = %v too large", k, rho, gap)
		}
	}
}

func TestRhoMinusBeatsAntiBitSampling(t *testing.T) {
	// Sanity: for c = 2 the Euclidean construction achieves rho^- near
	// 1/c^2 = 0.25, far below the anti bit-sampling value
	// ln f(r)/ln f(r/c) with f(t)=t at r=0.1: ln(0.1)/ln(0.05) ~ 0.77.
	c := 2.0
	fam := NewPStable(testDim, 16, Theorem41Width(c))
	rho := fam.RhoMinus(1, c)
	if rho > 0.4 {
		t.Errorf("rho = %v, expected close to 0.25", rho)
	}
}

func TestPeakDistanceGrowsWithK(t *testing.T) {
	w := 1.0
	prev := 0.0
	for _, k := range []int{1, 2, 4, 8} {
		p := NewPStable(testDim, k, w).PeakDistance()
		if p <= prev {
			t.Errorf("peak for k=%d is %v, not larger than %v", k, p, prev)
		}
		prev = p
	}
}

func TestCPFNonNegativeAndBounded(t *testing.T) {
	for _, k := range []int{0, 1, 5} {
		fam := NewPStable(testDim, k, 0.7)
		for d := 0.0; d < 20; d += 0.1 {
			v := fam.ExactCPF(d)
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("k=%d: CPF(%v) = %v", k, d, v)
			}
		}
	}
}

func TestMixtureOfPStableFormsStep(t *testing.T) {
	// Figure 2: mixing unimodal CPFs yields an approximate step function.
	var parts []core.Family[Point]
	var weights []float64
	for k := 1; k <= 8; k++ {
		parts = append(parts, NewPStable(testDim, k, 1))
		weights = append(weights, 1.0/8)
	}
	mix := core.Mixture(parts, weights)
	f := mix.CPF()
	// The mixture should be relatively flat across the covered plateau
	// and fall off beyond it (the right tail decays like 1/Delta, as in
	// the red curve of the paper's Figure 2).
	v2 := f.Eval(2)
	v5 := f.Eval(5)
	v8 := f.Eval(8)
	if math.Abs(v2-v5)/math.Max(v2, v5) > 0.5 {
		t.Errorf("plateau not flat: f(2)=%v f(5)=%v", v2, v5)
	}
	prev := v8
	for d := 9.0; d <= 40; d++ {
		v := f.Eval(d)
		if v > prev+1e-12 {
			t.Fatalf("mixture CPF not decreasing at %v", d)
		}
		prev = v
	}
	if v40 := f.Eval(40); v40 > v5/3 {
		t.Errorf("step did not fall: f(5)=%v f(40)=%v", v5, v40)
	}
}

func BenchmarkPStableSampleHash(b *testing.B) {
	rng := xrand.New(1)
	fam := NewPStable(128, 3, 1)
	x := vec.Gaussian(rng, 128)
	y := vec.Gaussian(rng, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pair := fam.Sample(rng)
		_ = pair.Collides(x, y)
	}
}
