// Package fft implements an iterative radix-2 complex fast Fourier
// transform, circular convolution, and an in-place real fast
// Walsh-Hadamard transform. The complex transform is the computational
// substrate for TensorSketch (internal/sketch), which the paper cites
// ([42], Pham & Pagh) as the way to evaluate the Valiant polynomial
// embeddings of Theorem 5.1 in near-linear time; the Walsh-Hadamard round
// (FWHT) is the spectral half of the structured pseudo-rotations behind
// the fast cross-polytope families (internal/sphere, after Kennedy & Ward,
// "Fast Cross-Polytope LSH"), together with the pooled power-of-two-padded
// Scratch buffers that keep the hashing hot path allocation-free.
package fft

import (
	"math"
	"sync"
)

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool { return n > 0 && n&(n-1) == 0 }

// NextPowerOfTwo returns the smallest power of two >= n (and >= 1).
func NextPowerOfTwo(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// FFT computes the in-place forward discrete Fourier transform of x.
// len(x) must be a power of two; it panics otherwise.
func FFT(x []complex128) { transform(x, false) }

// IFFT computes the in-place inverse discrete Fourier transform of x,
// including the 1/n scaling. len(x) must be a power of two.
func IFFT(x []complex128) { transform(x, true) }

func transform(x []complex128, inverse bool) {
	n := len(x)
	if n == 0 {
		return
	}
	if !IsPowerOfTwo(n) {
		panic("fft: length must be a power of two")
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Cooley-Tukey butterflies.
	for length := 2; length <= n; length <<= 1 {
		ang := 2 * math.Pi / float64(length)
		if !inverse {
			ang = -ang
		}
		wl := complex(math.Cos(ang), math.Sin(ang))
		for start := 0; start < n; start += length {
			w := complex(1, 0)
			half := length / 2
			for k := 0; k < half; k++ {
				u := x[start+k]
				v := x[start+k+half] * w
				x[start+k] = u + v
				x[start+k+half] = u - v
				w *= wl
			}
		}
	}
	if inverse {
		inv := complex(1/float64(n), 0)
		for i := range x {
			x[i] *= inv
		}
	}
}

// FWHT computes the in-place unnormalized fast Walsh-Hadamard transform of
// x: x <- H_n x with H_n the {-1,+1} Hadamard matrix of order n = len(x),
// which must be a power of two (it panics otherwise). The transform is
// O(n log n), touches no memory beyond x, and performs no allocations.
//
// H_n is symmetric with H_n H_n = n I, so applying FWHT twice multiplies
// the input by n; dividing by sqrt(n) makes it orthonormal. The hashing
// pipelines skip the normalization entirely because a uniform positive
// scale changes neither an argmax nor a sign.
func FWHT(x []float64) {
	n := len(x)
	if n == 0 {
		return
	}
	if !IsPowerOfTwo(n) {
		panic("fft: length must be a power of two")
	}
	for length := 1; length < n; length <<= 1 {
		for start := 0; start < n; start += length << 1 {
			for k := start; k < start+length; k++ {
				a, b := x[k], x[k+length]
				x[k] = a + b
				x[k+length] = a - b
			}
		}
	}
}

// Scratch is a pooled real work buffer for in-place transform rounds on
// the hashing hot path. Buffers are pooled process-wide (not per hasher)
// because one hasher may be shared by many concurrent query workers; a
// warmed pool makes Acquire/Release allocation-free in steady state.
type Scratch struct{ buf []float64 }

var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// Acquire returns a pooled Scratch whose buffer has length
// NextPowerOfTwo(n) and unspecified contents. Callers that fill the whole
// buffer themselves use this; callers starting from a point use
// AcquirePadded. Release the Scratch when done.
func Acquire(n int) *Scratch {
	s := scratchPool.Get().(*Scratch)
	p := NextPowerOfTwo(n)
	if cap(s.buf) < p {
		s.buf = make([]float64, p)
	}
	s.buf = s.buf[:p]
	return s
}

// AcquirePadded returns a pooled Scratch holding a copy of x zero-padded
// to length NextPowerOfTwo(len(x)), ready for FWHT/FFT rounds. The pad
// region is re-zeroed on every acquisition, so reused pool buffers never
// leak a previous caller's values.
func AcquirePadded(x []float64) *Scratch {
	s := Acquire(len(x))
	copy(s.buf, x)
	for i := len(x); i < len(s.buf); i++ {
		s.buf[i] = 0
	}
	return s
}

// Data returns the scratch buffer. It is valid only until Release.
func (s *Scratch) Data() []float64 { return s.buf }

// Release returns the Scratch to the pool. The buffer must not be used
// after Release.
func (s *Scratch) Release() { scratchPool.Put(s) }

// Convolve returns the circular convolution of a and b, which must have the
// same power-of-two length n: out[k] = sum_i a[i] * b[(k-i) mod n].
func Convolve(a, b []complex128) []complex128 {
	if len(a) != len(b) {
		panic("fft: convolution length mismatch")
	}
	n := len(a)
	if n == 0 {
		return nil
	}
	if !IsPowerOfTwo(n) {
		panic("fft: length must be a power of two")
	}
	fa := make([]complex128, n)
	fb := make([]complex128, n)
	copy(fa, a)
	copy(fb, b)
	FFT(fa)
	FFT(fb)
	for i := range fa {
		fa[i] *= fb[i]
	}
	IFFT(fa)
	return fa
}

// ConvolveReal circularly convolves real-valued sequences of equal
// power-of-two length and returns the real part of the result.
func ConvolveReal(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("fft: convolution length mismatch")
	}
	ca := make([]complex128, len(a))
	cb := make([]complex128, len(b))
	for i := range a {
		ca[i] = complex(a[i], 0)
		cb[i] = complex(b[i], 0)
	}
	out := Convolve(ca, cb)
	res := make([]float64, len(a))
	for i, v := range out {
		res[i] = real(v)
	}
	return res
}

// PointwiseMulFFT computes the element-wise product of the FFTs of the given
// real sequences and returns the inverse transform: the circular convolution
// of all of them. All sequences must share the same power-of-two length.
// This is the core TensorSketch operation for degree-k monomials.
func PointwiseMulFFT(seqs ...[]float64) []float64 {
	if len(seqs) == 0 {
		return nil
	}
	n := len(seqs[0])
	if !IsPowerOfTwo(n) {
		panic("fft: length must be a power of two")
	}
	acc := make([]complex128, n)
	for i := range acc {
		acc[i] = complex(1, 0)
	}
	buf := make([]complex128, n)
	for _, s := range seqs {
		if len(s) != n {
			panic("fft: length mismatch")
		}
		for i, v := range s {
			buf[i] = complex(v, 0)
		}
		FFT(buf)
		for i := range acc {
			acc[i] *= buf[i]
		}
	}
	IFFT(acc)
	out := make([]float64, n)
	for i, v := range acc {
		out[i] = real(v)
	}
	return out
}
