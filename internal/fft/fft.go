// Package fft implements an iterative radix-2 complex fast Fourier
// transform and circular convolution. It is the computational substrate for
// TensorSketch (internal/sketch), which the paper cites ([42], Pham & Pagh)
// as the way to evaluate the Valiant polynomial embeddings of Theorem 5.1 in
// near-linear time.
package fft

import "math"

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool { return n > 0 && n&(n-1) == 0 }

// NextPowerOfTwo returns the smallest power of two >= n (and >= 1).
func NextPowerOfTwo(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// FFT computes the in-place forward discrete Fourier transform of x.
// len(x) must be a power of two; it panics otherwise.
func FFT(x []complex128) { transform(x, false) }

// IFFT computes the in-place inverse discrete Fourier transform of x,
// including the 1/n scaling. len(x) must be a power of two.
func IFFT(x []complex128) { transform(x, true) }

func transform(x []complex128, inverse bool) {
	n := len(x)
	if n == 0 {
		return
	}
	if !IsPowerOfTwo(n) {
		panic("fft: length must be a power of two")
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Cooley-Tukey butterflies.
	for length := 2; length <= n; length <<= 1 {
		ang := 2 * math.Pi / float64(length)
		if !inverse {
			ang = -ang
		}
		wl := complex(math.Cos(ang), math.Sin(ang))
		for start := 0; start < n; start += length {
			w := complex(1, 0)
			half := length / 2
			for k := 0; k < half; k++ {
				u := x[start+k]
				v := x[start+k+half] * w
				x[start+k] = u + v
				x[start+k+half] = u - v
				w *= wl
			}
		}
	}
	if inverse {
		inv := complex(1/float64(n), 0)
		for i := range x {
			x[i] *= inv
		}
	}
}

// Convolve returns the circular convolution of a and b, which must have the
// same power-of-two length n: out[k] = sum_i a[i] * b[(k-i) mod n].
func Convolve(a, b []complex128) []complex128 {
	if len(a) != len(b) {
		panic("fft: convolution length mismatch")
	}
	n := len(a)
	if n == 0 {
		return nil
	}
	if !IsPowerOfTwo(n) {
		panic("fft: length must be a power of two")
	}
	fa := make([]complex128, n)
	fb := make([]complex128, n)
	copy(fa, a)
	copy(fb, b)
	FFT(fa)
	FFT(fb)
	for i := range fa {
		fa[i] *= fb[i]
	}
	IFFT(fa)
	return fa
}

// ConvolveReal circularly convolves real-valued sequences of equal
// power-of-two length and returns the real part of the result.
func ConvolveReal(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("fft: convolution length mismatch")
	}
	ca := make([]complex128, len(a))
	cb := make([]complex128, len(b))
	for i := range a {
		ca[i] = complex(a[i], 0)
		cb[i] = complex(b[i], 0)
	}
	out := Convolve(ca, cb)
	res := make([]float64, len(a))
	for i, v := range out {
		res[i] = real(v)
	}
	return res
}

// PointwiseMulFFT computes the element-wise product of the FFTs of the given
// real sequences and returns the inverse transform: the circular convolution
// of all of them. All sequences must share the same power-of-two length.
// This is the core TensorSketch operation for degree-k monomials.
func PointwiseMulFFT(seqs ...[]float64) []float64 {
	if len(seqs) == 0 {
		return nil
	}
	n := len(seqs[0])
	if !IsPowerOfTwo(n) {
		panic("fft: length must be a power of two")
	}
	acc := make([]complex128, n)
	for i := range acc {
		acc[i] = complex(1, 0)
	}
	buf := make([]complex128, n)
	for _, s := range seqs {
		if len(s) != n {
			panic("fft: length mismatch")
		}
		for i, v := range s {
			buf[i] = complex(v, 0)
		}
		FFT(buf)
		for i := range acc {
			acc[i] *= buf[i]
		}
	}
	IFFT(acc)
	out := make([]float64, n)
	for i, v := range acc {
		out[i] = real(v)
	}
	return out
}
