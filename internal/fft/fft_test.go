package fft

import (
	"fmt"
	"math"
	"math/cmplx"
	"sync"
	"testing"
	"testing/quick"

	"dsh/internal/xrand"
)

func TestPowerOfTwoHelpers(t *testing.T) {
	if !IsPowerOfTwo(1) || !IsPowerOfTwo(64) || IsPowerOfTwo(0) || IsPowerOfTwo(3) || IsPowerOfTwo(-4) {
		t.Fatal("IsPowerOfTwo wrong")
	}
	cases := []struct{ in, want int }{{0, 1}, {1, 1}, {2, 2}, {3, 4}, {17, 32}, {64, 64}}
	for _, c := range cases {
		if got := NextPowerOfTwo(c.in); got != c.want {
			t.Errorf("NextPowerOfTwo(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestFFTKnownValues(t *testing.T) {
	// FFT of [1,0,0,0] is all ones.
	x := []complex128{1, 0, 0, 0}
	FFT(x)
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Errorf("impulse FFT[%d] = %v", i, v)
		}
	}
	// FFT of constant is impulse at 0.
	y := []complex128{2, 2, 2, 2}
	FFT(y)
	if cmplx.Abs(y[0]-8) > 1e-12 {
		t.Errorf("DC term = %v", y[0])
	}
	for i := 1; i < 4; i++ {
		if cmplx.Abs(y[i]) > 1e-12 {
			t.Errorf("nonzero bin %d: %v", i, y[i])
		}
	}
}

func TestFFTPanicsOnNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("should panic for length 3")
		}
	}()
	FFT(make([]complex128, 3))
}

func TestRoundTripQuick(t *testing.T) {
	f := func(seed uint64, logN uint8) bool {
		n := 1 << (logN%8 + 1)
		rng := xrand.New(seed)
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			orig[i] = x[i]
		}
		FFT(x)
		IFFT(x)
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestParseval(t *testing.T) {
	rng := xrand.New(3)
	n := 64
	x := make([]complex128, n)
	var timeEnergy float64
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
		timeEnergy += real(x[i]) * real(x[i])
	}
	FFT(x)
	var freqEnergy float64
	for _, v := range x {
		freqEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	if math.Abs(freqEnergy/float64(n)-timeEnergy) > 1e-9*timeEnergy {
		t.Fatalf("Parseval violated: %v vs %v", freqEnergy/float64(n), timeEnergy)
	}
}

func TestConvolveMatchesNaive(t *testing.T) {
	rng := xrand.New(4)
	n := 16
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = rng.Float64Range(-1, 1)
		b[i] = rng.Float64Range(-1, 1)
	}
	got := ConvolveReal(a, b)
	for k := 0; k < n; k++ {
		var want float64
		for i := 0; i < n; i++ {
			want += a[i] * b[(k-i+n)%n]
		}
		if math.Abs(got[k]-want) > 1e-9 {
			t.Fatalf("conv[%d] = %v, want %v", k, got[k], want)
		}
	}
}

func TestConvolveMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch should panic")
		}
	}()
	Convolve(make([]complex128, 4), make([]complex128, 8))
}

func TestPointwiseMulFFTAssociativity(t *testing.T) {
	rng := xrand.New(5)
	n := 32
	a := make([]float64, n)
	b := make([]float64, n)
	c := make([]float64, n)
	for i := range a {
		a[i] = rng.Float64Range(-1, 1)
		b[i] = rng.Float64Range(-1, 1)
		c[i] = rng.Float64Range(-1, 1)
	}
	// conv(conv(a,b),c) == PointwiseMulFFT(a,b,c)
	ab := ConvolveReal(a, b)
	want := ConvolveReal(ab, c)
	got := PointwiseMulFFT(a, b, c)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-8 {
			t.Fatalf("triple conv mismatch at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestPointwiseMulFFTSingle(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	got := PointwiseMulFFT(a)
	for i := range a {
		if math.Abs(got[i]-a[i]) > 1e-10 {
			t.Fatalf("identity failed: %v", got)
		}
	}
	if PointwiseMulFFT() != nil {
		t.Fatal("empty input should return nil")
	}
}

func TestEmptyFFT(t *testing.T) {
	FFT(nil) // must not panic
	IFFT(nil)
	if out := Convolve(nil, nil); out != nil {
		t.Fatal("empty convolution should be nil")
	}
}

// naiveFWHT multiplies by the Hadamard matrix defined recursively:
// H_1 = [1], H_2n = [[H_n, H_n], [H_n, -H_n]].
func naiveFWHT(x []float64) []float64 {
	n := len(x)
	if n == 1 {
		return []float64{x[0]}
	}
	half := n / 2
	lo := make([]float64, half)
	hi := make([]float64, half)
	for i := 0; i < half; i++ {
		lo[i] = x[i] + x[i+half]
		hi[i] = x[i] - x[i+half]
	}
	return append(naiveFWHT(lo), naiveFWHT(hi)...)
}

func TestFWHTMatchesNaive(t *testing.T) {
	rng := xrand.New(11)
	for _, n := range []int{1, 2, 4, 8, 32} {
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64Range(-1, 1)
		}
		want := naiveFWHT(append([]float64(nil), x...))
		FWHT(x)
		for i := range x {
			if math.Abs(x[i]-want[i]) > 1e-12 {
				t.Fatalf("n=%d: FWHT[%d] = %v, want %v", n, i, x[i], want[i])
			}
		}
	}
}

// TestFWHTInvolution checks H(Hx) = n*x (H_n H_n = n I), the property that
// makes the sign-flip x Hadamard rounds pseudo-rotations: up to the
// uniform scale sqrt(n) per round, the transform is orthogonal.
func TestFWHTInvolution(t *testing.T) {
	f := func(seed uint64, logN uint8) bool {
		n := 1 << (logN%8 + 1)
		rng := xrand.New(seed)
		x := make([]float64, n)
		orig := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			orig[i] = x[i]
		}
		FWHT(x)
		FWHT(x)
		for i := range x {
			if math.Abs(x[i]-float64(n)*orig[i]) > 1e-9*float64(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestFWHTParseval checks orthogonality via energies: ||Hx||^2 = n ||x||^2.
func TestFWHTParseval(t *testing.T) {
	rng := xrand.New(12)
	n := 128
	x := make([]float64, n)
	var before float64
	for i := range x {
		x[i] = rng.NormFloat64()
		before += x[i] * x[i]
	}
	FWHT(x)
	var after float64
	for _, v := range x {
		after += v * v
	}
	if math.Abs(after/float64(n)-before) > 1e-9*before {
		t.Fatalf("Parseval violated: %v vs %v", after/float64(n), before)
	}
}

func TestFWHTPanicsOnNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("should panic for length 6")
		}
	}()
	FWHT(make([]float64, 6))
}

func TestFWHTEmpty(t *testing.T) {
	FWHT(nil) // must not panic
}

func TestAcquirePaddedZeroPads(t *testing.T) {
	for _, n := range []int{1, 3, 5, 7, 9, 17, 31, 33, 64} {
		x := make([]float64, n)
		for i := range x {
			x[i] = float64(i + 1)
		}
		s := AcquirePadded(x)
		buf := s.Data()
		if len(buf) != NextPowerOfTwo(n) {
			t.Fatalf("n=%d: padded length %d, want %d", n, len(buf), NextPowerOfTwo(n))
		}
		for i := 0; i < n; i++ {
			if buf[i] != x[i] {
				t.Fatalf("n=%d: buf[%d] = %v, want %v", n, i, buf[i], x[i])
			}
		}
		for i := n; i < len(buf); i++ {
			if buf[i] != 0 {
				t.Fatalf("n=%d: pad position %d = %v, want 0", n, i, buf[i])
			}
		}
		s.Release()
	}
}

// TestAcquirePaddedReusedScratchIsClean dirties a pooled buffer, releases
// it, and checks that a smaller re-acquisition re-zeroes the pad region.
func TestAcquirePaddedReusedScratchIsClean(t *testing.T) {
	s := Acquire(64)
	for i := range s.Data() {
		s.Data()[i] = math.NaN()
	}
	s.Release()
	// The pool is not guaranteed to return the same buffer; loop a few
	// acquisitions so at least one reuse is overwhelmingly likely.
	for trial := 0; trial < 8; trial++ {
		s2 := AcquirePadded([]float64{1, 2, 3})
		buf := s2.Data()
		if len(buf) != 4 || buf[0] != 1 || buf[1] != 2 || buf[2] != 3 || buf[3] != 0 {
			t.Fatalf("trial %d: reused scratch not re-padded: %v", trial, buf)
		}
		s2.Release()
	}
}

// TestFWHTScratchPoolRace hammers the pooled scratch from many goroutines
// under -race: each round-trips a distinct vector through two transforms
// and checks it recovers the input, so cross-goroutine buffer sharing
// would corrupt results as well as trip the race detector.
func TestFWHTScratchPoolRace(t *testing.T) {
	const workers = 8
	const iters = 300
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := xrand.New(uint64(w) + 1)
			x := make([]float64, 24) // pads to 32
			for it := 0; it < iters; it++ {
				for i := range x {
					x[i] = rng.NormFloat64()
				}
				s := AcquirePadded(x)
				buf := s.Data()
				FWHT(buf)
				FWHT(buf)
				for i := range x {
					if math.Abs(buf[i]/32-x[i]) > 1e-9 {
						errs <- fmt.Errorf("worker %d iter %d: scratch corrupted at %d", w, it, i)
						s.Release()
						return
					}
				}
				s.Release()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// --- Convolve edge cases ---

func TestConvolveLengthOne(t *testing.T) {
	got := ConvolveReal([]float64{3}, []float64{-2})
	if len(got) != 1 || math.Abs(got[0]+6) > 1e-12 {
		t.Fatalf("length-1 convolution = %v, want [-6]", got)
	}
	c := Convolve([]complex128{2i}, []complex128{3})
	if len(c) != 1 || cmplx.Abs(c[0]-6i) > 1e-12 {
		t.Fatalf("length-1 complex convolution = %v, want [6i]", c)
	}
}

func TestConvolveRealEmpty(t *testing.T) {
	if out := ConvolveReal(nil, nil); out != nil && len(out) != 0 {
		t.Fatalf("empty ConvolveReal = %v, want empty", out)
	}
}

// TestConvolvePaddingBoundary exercises lengths on both sides of a
// power-of-two boundary: 2^k works, 2^k+1 panics.
func TestConvolvePaddingBoundary(t *testing.T) {
	rng := xrand.New(6)
	for _, n := range []int{2, 4, 8} {
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.Float64Range(-1, 1)
			b[i] = rng.Float64Range(-1, 1)
		}
		got := ConvolveReal(a, b)
		for k := 0; k < n; k++ {
			var want float64
			for i := 0; i < n; i++ {
				want += a[i] * b[(k-i+n)%n]
			}
			if math.Abs(got[k]-want) > 1e-9 {
				t.Fatalf("n=%d conv[%d] = %v, want %v", n, k, got[k], want)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length 2^k+1 should panic")
		}
	}()
	ConvolveReal(make([]float64, 5), make([]float64, 5))
}

func BenchmarkFWHT1024(b *testing.B) {
	rng := xrand.New(1)
	x := make([]float64, 1024)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FWHT(x)
	}
}

func BenchmarkFFT1024(b *testing.B) {
	rng := xrand.New(1)
	x := make([]complex128, 1024)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}
