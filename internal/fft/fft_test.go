package fft

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"dsh/internal/xrand"
)

func TestPowerOfTwoHelpers(t *testing.T) {
	if !IsPowerOfTwo(1) || !IsPowerOfTwo(64) || IsPowerOfTwo(0) || IsPowerOfTwo(3) || IsPowerOfTwo(-4) {
		t.Fatal("IsPowerOfTwo wrong")
	}
	cases := []struct{ in, want int }{{0, 1}, {1, 1}, {2, 2}, {3, 4}, {17, 32}, {64, 64}}
	for _, c := range cases {
		if got := NextPowerOfTwo(c.in); got != c.want {
			t.Errorf("NextPowerOfTwo(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestFFTKnownValues(t *testing.T) {
	// FFT of [1,0,0,0] is all ones.
	x := []complex128{1, 0, 0, 0}
	FFT(x)
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Errorf("impulse FFT[%d] = %v", i, v)
		}
	}
	// FFT of constant is impulse at 0.
	y := []complex128{2, 2, 2, 2}
	FFT(y)
	if cmplx.Abs(y[0]-8) > 1e-12 {
		t.Errorf("DC term = %v", y[0])
	}
	for i := 1; i < 4; i++ {
		if cmplx.Abs(y[i]) > 1e-12 {
			t.Errorf("nonzero bin %d: %v", i, y[i])
		}
	}
}

func TestFFTPanicsOnNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("should panic for length 3")
		}
	}()
	FFT(make([]complex128, 3))
}

func TestRoundTripQuick(t *testing.T) {
	f := func(seed uint64, logN uint8) bool {
		n := 1 << (logN%8 + 1)
		rng := xrand.New(seed)
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			orig[i] = x[i]
		}
		FFT(x)
		IFFT(x)
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestParseval(t *testing.T) {
	rng := xrand.New(3)
	n := 64
	x := make([]complex128, n)
	var timeEnergy float64
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
		timeEnergy += real(x[i]) * real(x[i])
	}
	FFT(x)
	var freqEnergy float64
	for _, v := range x {
		freqEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	if math.Abs(freqEnergy/float64(n)-timeEnergy) > 1e-9*timeEnergy {
		t.Fatalf("Parseval violated: %v vs %v", freqEnergy/float64(n), timeEnergy)
	}
}

func TestConvolveMatchesNaive(t *testing.T) {
	rng := xrand.New(4)
	n := 16
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = rng.Float64Range(-1, 1)
		b[i] = rng.Float64Range(-1, 1)
	}
	got := ConvolveReal(a, b)
	for k := 0; k < n; k++ {
		var want float64
		for i := 0; i < n; i++ {
			want += a[i] * b[(k-i+n)%n]
		}
		if math.Abs(got[k]-want) > 1e-9 {
			t.Fatalf("conv[%d] = %v, want %v", k, got[k], want)
		}
	}
}

func TestConvolveMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch should panic")
		}
	}()
	Convolve(make([]complex128, 4), make([]complex128, 8))
}

func TestPointwiseMulFFTAssociativity(t *testing.T) {
	rng := xrand.New(5)
	n := 32
	a := make([]float64, n)
	b := make([]float64, n)
	c := make([]float64, n)
	for i := range a {
		a[i] = rng.Float64Range(-1, 1)
		b[i] = rng.Float64Range(-1, 1)
		c[i] = rng.Float64Range(-1, 1)
	}
	// conv(conv(a,b),c) == PointwiseMulFFT(a,b,c)
	ab := ConvolveReal(a, b)
	want := ConvolveReal(ab, c)
	got := PointwiseMulFFT(a, b, c)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-8 {
			t.Fatalf("triple conv mismatch at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestPointwiseMulFFTSingle(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	got := PointwiseMulFFT(a)
	for i := range a {
		if math.Abs(got[i]-a[i]) > 1e-10 {
			t.Fatalf("identity failed: %v", got)
		}
	}
	if PointwiseMulFFT() != nil {
		t.Fatal("empty input should return nil")
	}
}

func TestEmptyFFT(t *testing.T) {
	FFT(nil) // must not panic
	IFFT(nil)
	if out := Convolve(nil, nil); out != nil {
		t.Fatal("empty convolution should be nil")
	}
}

func BenchmarkFFT1024(b *testing.B) {
	rng := xrand.New(1)
	x := make([]complex128, 1024)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}
