// Package hamming implements the paper's distance-sensitive hash families
// for d-dimensional Hamming space, with CPFs expressed in the relative
// Hamming distance t = dist(x,y)/d in [0, 1]:
//
//   - BitSampling: the classical Indyk-Motwani LSH, CPF f(t) = 1 - t.
//   - AntiBitSampling (Section 4.1): the pair (x -> x_i, y -> 1 - y_i),
//     CPF f(t) = t, the simplest increasing CPF.
//   - Scaled and biased variants used as building blocks by Theorem 5.2.
//   - PolynomialFamily (Theorem 5.2): for any polynomial P with no roots
//     having real part in (0, 1), a family with CPF P(t)/Delta where
//     Delta depends only on the roots of P.
//   - MonotonePolynomialFamily: the Lemma 1.4 mixture construction for
//     polynomials with non-negative coefficients summing to 1.
package hamming

import (
	"fmt"
	"math"

	"dsh/internal/bitvec"
	"dsh/internal/core"
	"dsh/internal/poly"
	"dsh/internal/xrand"
)

// Point is the point type for Hamming-space families.
type Point = bitvec.Vector

// bitHasher returns x_i as a hash value.
type bitHasher struct{ i int }

func (b bitHasher) Hash(p Point) uint64 {
	if p.Bit(b.i) {
		return 1
	}
	return 0
}

// negBitHasher returns 1 - y_i.
type negBitHasher struct{ i int }

func (b negBitHasher) Hash(p Point) uint64 {
	if p.Bit(b.i) {
		return 0
	}
	return 1
}

// constHasher ignores its input.
type constHasher uint64

func (c constHasher) Hash(Point) uint64 { return uint64(c) }

// bitSampling implements the classical bit-sampling LSH.
type bitSampling struct{ d int }

// BitSampling returns the bit-sampling LSH of Indyk and Motwani for
// dimension d, wrapped as a (symmetric) DSH family. Its CPF is exactly
// f(t) = 1 - t in the relative Hamming distance.
func BitSampling(d int) core.Family[Point] {
	if d <= 0 {
		panic("hamming: dimension must be positive")
	}
	return bitSampling{d: d}
}

func (b bitSampling) Name() string { return fmt.Sprintf("bitsample(d=%d)", b.d) }

func (b bitSampling) Sample(rng *xrand.Rand) core.Pair[Point] {
	h := bitHasher{i: rng.Intn(b.d)}
	return core.Pair[Point]{H: h, G: h}
}

func (b bitSampling) CPF() core.CPF {
	return core.CPF{Domain: core.DomainRelativeHamming, Eval: func(t float64) float64 {
		return 1 - t
	}}
}

// antiBitSampling implements the asymmetric pair of Section 4.1.
type antiBitSampling struct{ d int }

// AntiBitSampling returns the anti bit-sampling DSH family of Section 4.1:
// h samples a bit of the data point while g samples the *negated* bit of
// the query point, giving the monotonically increasing CPF f(t) = t.
func AntiBitSampling(d int) core.Family[Point] {
	if d <= 0 {
		panic("hamming: dimension must be positive")
	}
	return antiBitSampling{d: d}
}

func (b antiBitSampling) Name() string { return fmt.Sprintf("antibit(d=%d)", b.d) }

func (b antiBitSampling) Sample(rng *xrand.Rand) core.Pair[Point] {
	i := rng.Intn(b.d)
	return core.Pair[Point]{H: bitHasher{i: i}, G: negBitHasher{i: i}}
}

func (b antiBitSampling) CPF() core.CPF {
	return core.CPF{Domain: core.DomainRelativeHamming, Eval: func(t float64) float64 {
		return t
	}}
}

// scaledBitSampling has CPF 1 - alpha*t.
type scaledBitSampling struct {
	d     int
	alpha float64
}

// ScaledBitSampling returns a family with CPF f(t) = 1 - alpha*t for
// alpha in [0, 1]: with probability alpha it behaves as bit-sampling and
// otherwise always collides. This is the "bit-sampling with scaling factor
// alpha" primitive of Theorem 5.2's proof.
func ScaledBitSampling(d int, alpha float64) core.Family[Point] {
	if d <= 0 {
		panic("hamming: dimension must be positive")
	}
	if alpha < 0 || alpha > 1 {
		panic("hamming: scaling factor out of [0,1]")
	}
	return scaledBitSampling{d: d, alpha: alpha}
}

func (b scaledBitSampling) Name() string {
	return fmt.Sprintf("bitsample(d=%d,alpha=%.3g)", b.d, b.alpha)
}

func (b scaledBitSampling) Sample(rng *xrand.Rand) core.Pair[Point] {
	if rng.Bernoulli(b.alpha) {
		h := bitHasher{i: rng.Intn(b.d)}
		return core.Pair[Point]{H: h, G: h}
	}
	return core.Pair[Point]{H: constHasher(0), G: constHasher(0)}
}

func (b scaledBitSampling) CPF() core.CPF {
	alpha := b.alpha
	return core.CPF{Domain: core.DomainRelativeHamming, Eval: func(t float64) float64 {
		return 1 - alpha*t
	}}
}

// scaledAntiBitSampling has CPF alpha*t.
type scaledAntiBitSampling struct {
	d     int
	alpha float64
}

// ScaledAntiBitSampling returns a family with CPF f(t) = alpha*t for alpha
// in [0, 1]: with probability alpha it behaves as anti bit-sampling and
// otherwise never collides.
func ScaledAntiBitSampling(d int, alpha float64) core.Family[Point] {
	if d <= 0 {
		panic("hamming: dimension must be positive")
	}
	if alpha < 0 || alpha > 1 {
		panic("hamming: scaling factor out of [0,1]")
	}
	return scaledAntiBitSampling{d: d, alpha: alpha}
}

func (b scaledAntiBitSampling) Name() string {
	return fmt.Sprintf("antibit(d=%d,alpha=%.3g)", b.d, b.alpha)
}

func (b scaledAntiBitSampling) Sample(rng *xrand.Rand) core.Pair[Point] {
	if rng.Bernoulli(b.alpha) {
		i := rng.Intn(b.d)
		return core.Pair[Point]{H: bitHasher{i: i}, G: negBitHasher{i: i}}
	}
	return core.Pair[Point]{H: constHasher(0), G: constHasher(1)}
}

func (b scaledAntiBitSampling) CPF() core.CPF {
	alpha := b.alpha
	return core.CPF{Domain: core.DomainRelativeHamming, Eval: func(t float64) float64 {
		return alpha * t
	}}
}

// constantFamily collides with a fixed probability regardless of distance.
type constantFamily struct{ beta float64 }

// ConstantFamily returns a family whose CPF is identically beta in [0, 1]:
// with probability beta the sampled pair always collides and otherwise it
// never does. It is the "standard hashing" primitive in Theorem 5.2's proof.
func ConstantFamily(beta float64) core.Family[Point] {
	if beta < 0 || beta > 1 {
		panic("hamming: constant probability out of [0,1]")
	}
	return constantFamily{beta: beta}
}

func (c constantFamily) Name() string { return fmt.Sprintf("const(%.3g)", c.beta) }

func (c constantFamily) Sample(rng *xrand.Rand) core.Pair[Point] {
	if rng.Bernoulli(c.beta) {
		return core.Pair[Point]{H: constHasher(0), G: constHasher(0)}
	}
	return core.Pair[Point]{H: constHasher(0), G: constHasher(1)}
}

func (c constantFamily) CPF() core.CPF {
	return core.Constant(core.DomainRelativeHamming, c.beta)
}

// MonotonePolynomialFamily builds, via the Lemma 1.4 mixture of powered
// anti bit-sampling, a family whose CPF equals P(t) = sum a_i t^i for a
// polynomial with a_i >= 0 and sum a_i = 1 (Section 5 of the paper).
func MonotonePolynomialFamily(d int, p poly.Poly) (core.Family[Point], error) {
	if p.IsZero() {
		return nil, fmt.Errorf("hamming: zero polynomial")
	}
	var parts []core.Family[Point]
	var weights []float64
	for i, a := range p.Coeffs {
		if a < 0 {
			return nil, fmt.Errorf("hamming: coefficient of t^%d is negative (%v); use PolynomialFamily", i, a)
		}
		if a == 0 {
			continue
		}
		if i == 0 {
			parts = append(parts, ConstantFamily(1))
		} else {
			parts = append(parts, core.Power(AntiBitSampling(d), i))
		}
		weights = append(weights, a)
	}
	if s := p.CoeffSum(); math.Abs(s-1) > 1e-9 {
		return nil, fmt.Errorf("hamming: coefficients sum to %v, want 1", s)
	}
	fam := core.Mixture(parts, weights)
	return core.Renamed[Point]{Inner: fam, NewName: fmt.Sprintf("monopoly(d=%d,%s)", d, p)}, nil
}

// PolynomialScheme is the result of the Theorem 5.2 construction: a family
// whose CPF is P(t)/Delta.
type PolynomialScheme struct {
	Family core.Family[Point]
	// Delta is the scaling factor: Pr[h(x)=g(y)] = P(t)/Delta.
	Delta float64
	// P is the target polynomial.
	P poly.Poly
}

// PolynomialFamily implements Theorem 5.2: given a polynomial P(t) that is
// positive on (0, 1) and has no roots with real part in (0, 1), it returns
// a DSH family with CPF exactly P(t)/Delta, where
// Delta = |a_k| * 2^psi * prod_{|z| > 1} |z| over the multiset of roots,
// psi counting roots with negative real part.
//
// The construction factors P over its roots and assigns each root class the
// corresponding sub-scheme (the S1..S7 schemes of Appendix C.3), realized
// here as explicit mixtures of the scaled/biased bit-sampling primitives
// and concatenated with core.Concat.
func PolynomialFamily(d int, p poly.Poly) (*PolynomialScheme, error) {
	if p.Degree() < 1 {
		return nil, fmt.Errorf("hamming: polynomial must have degree >= 1")
	}
	// Strip roots at zero: P(t) = t^ell * P'(t).
	work := p
	ell := 0
	for !work.IsZero() && work.Coeffs[0] == 0 {
		work = poly.New(work.Coeffs[1:]...)
		ell++
	}
	var parts []core.Family[Point]
	for i := 0; i < ell; i++ {
		parts = append(parts, AntiBitSampling(d))
	}
	delta := math.Abs(work.Leading())
	if work.Degree() >= 1 {
		if poly.HasRootWithRealPartIn(work, 1e-9, 1-1e-9) {
			return nil, fmt.Errorf("hamming: polynomial has a root with real part in (0,1): %s", p)
		}
		rc := poly.ClassifyRoots(work)
		for _, z := range rc.Real {
			fam, dz, err := realRootScheme(d, z)
			if err != nil {
				return nil, err
			}
			parts = append(parts, fam)
			delta *= dz
		}
		for _, z := range rc.ComplexPairs {
			fam, dz, err := complexPairScheme(d, z)
			if err != nil {
				return nil, err
			}
			parts = append(parts, fam)
			delta *= dz
		}
	}
	if len(parts) == 0 {
		return nil, fmt.Errorf("hamming: polynomial %s has no usable factors", p)
	}
	fam := core.Concat(parts...)
	named := core.Renamed[Point]{Inner: fam, NewName: fmt.Sprintf("poly(d=%d,%s)", d, p)}
	return &PolynomialScheme{Family: named, Delta: delta, P: p}, nil
}

// TheoreticalCPF returns the target CPF P(t)/Delta.
func (ps *PolynomialScheme) TheoreticalCPF() core.CPF {
	return core.CPF{Domain: core.DomainRelativeHamming, Eval: func(t float64) float64 {
		return ps.P.Eval(t) / ps.Delta
	}}
}

// realRootScheme maps one real root z to its sub-scheme and per-root scale:
// the scheme's CPF S(t) satisfies |t - z| ... specifically
// (t + |z|) = scale * S(t) for negative roots and (z - t) = scale * S(t)
// for roots z >= 1.
func realRootScheme(d int, z float64) (core.Family[Point], float64, error) {
	switch {
	case z < -1:
		// S1: (t + |z|) = 2|z| * (1/2 + t/(2|z|)).
		fam := core.Mixture(
			[]core.Family[Point]{ConstantFamily(1), ScaledAntiBitSampling(d, 1/-z)},
			[]float64{0.5, 0.5},
		)
		return fam, 2 * -z, nil
	case z < 0:
		// S2: (t + |z|) = 2 * (|z|/2 + t/2).
		fam := core.Mixture(
			[]core.Family[Point]{ConstantFamily(-z), ScaledAntiBitSampling(d, 1)},
			[]float64{0.5, 0.5},
		)
		return fam, 2, nil
	case z >= 1:
		// S3: (z - t) = z * (1 - t/z).
		return ScaledBitSampling(d, 1/z), z, nil
	default:
		return nil, 0, fmt.Errorf("hamming: real root %v lies in [0,1)", z)
	}
}

// complexPairScheme maps one conjugate pair z = a+bi (b > 0) to a scheme
// whose CPF S(t) satisfies t^2 - 2at + a^2 + b^2 = scale * S(t).
//
// The a < -1 and a >= 1 regimes follow the paper's S4/S5 schemes. For
// -1 <= a <= 0 (the paper's S6/S7) both cases unify with s = max(1, |z|^2):
//
//	factor = 4s * [ r2/(4s) + |a|t/(2s) + t^2/(4s) ]
//
// realized as a (1/4, 1/2, 1/4) mixture of a constant-(r2/s) scheme, a
// scaled anti bit-sampling with factor |a|/s, and a concatenation of two
// scaled anti bit-samplings with factor 1/sqrt(s). All scales lie in [0,1]
// because s >= 1 >= |a| and s >= r2.
func complexPairScheme(d int, z complex128) (core.Family[Point], float64, error) {
	a := real(z)
	b := imag(z)
	r2 := a*a + b*b // |z|^2
	switch {
	case a < -1:
		// S4: factor = 4 r2 * [ b^2/(4 r2) + a^2/r2 * ((t+|a|)/(2|a|))^2 ].
		s1 := core.Mixture(
			[]core.Family[Point]{ConstantFamily(1), ScaledAntiBitSampling(d, 1/-a)},
			[]float64{0.5, 0.5},
		)
		fam := core.Mixture(
			[]core.Family[Point]{
				ConstantFamily(0.25),
				core.Concat(s1, s1),
			},
			[]float64{b * b / r2, a * a / r2},
		)
		return fam, 4 * r2, nil
	case a >= 1:
		// S5: factor = r2 * [ b^2/r2 + a^2/r2 * (1 - t/a)^2 ].
		bit := ScaledBitSampling(d, 1/a)
		fam := core.Mixture(
			[]core.Family[Point]{
				ConstantFamily(1),
				core.Concat(bit, bit),
			},
			[]float64{b * b / r2, a * a / r2},
		)
		return fam, r2, nil
	case a <= 0:
		// Unified S6/S7.
		s := math.Max(1, r2)
		inv := 1 / math.Sqrt(s)
		fam := core.Mixture(
			[]core.Family[Point]{
				ConstantFamily(r2 / s),
				ScaledAntiBitSampling(d, -a/s),
				core.Concat(ScaledAntiBitSampling(d, inv), ScaledAntiBitSampling(d, inv)),
			},
			[]float64{0.25, 0.5, 0.25},
		)
		return fam, 4 * s, nil
	default:
		return nil, 0, fmt.Errorf("hamming: complex root %v has real part in (0,1)", z)
	}
}
