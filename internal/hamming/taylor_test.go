package hamming

import (
	"math"
	"testing"

	"dsh/internal/bitvec"
	"dsh/internal/core"
	"dsh/internal/xrand"
)

func TestExpDecaySchemeCPF(t *testing.T) {
	// exp(-t/2) truncated at degree 3: P(t) = 1 - t/2 + t^2/8 - t^3/48.
	scheme, err := ExpDecayScheme(testDim, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if scheme.TruncationError > 0.01 {
		t.Errorf("degree-3 truncation error %v too large for c=0.5", scheme.TruncationError)
	}
	// The achieved CPF P(t)/Delta tracks exp(-t)/Delta within the
	// truncation error.
	f := scheme.Family.CPF()
	targetF := scheme.TargetCPF()
	for _, tt := range []float64{0, 0.25, 0.5, 0.75, 1} {
		got := f.Eval(tt)
		want := targetF.Eval(tt)
		if math.Abs(got-want) > scheme.TruncationError/scheme.Delta+1e-9 {
			t.Errorf("CPF(%v) = %v, target %v (trunc err %v)", tt, got, want, scheme.TruncationError)
		}
	}
}

func TestExpDecaySchemeEmpirical(t *testing.T) {
	scheme, err := ExpDecayScheme(testDim, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(1)
	gen := func(r *xrand.Rand, tt float64) (Point, Point) {
		x := bitvec.Random(r, testDim)
		return x, bitvec.AtDistance(r, x, int(math.Round(tt*testDim)))
	}
	for _, tt := range []float64{0, 0.5, 1} {
		est := core.EstimateCollision(rng, scheme.Family, gen, tt, 20000, 5)
		tq := math.Round(tt*testDim) / testDim
		want := scheme.P.Eval(tq) / scheme.Delta
		if !est.Interval.Contains(want) {
			t.Errorf("t=%v: measured %v excludes analytic %v", tt, est.P, want)
		}
	}
}

func TestExpDecayTruncationErrorShrinks(t *testing.T) {
	prev := math.Inf(1)
	for _, deg := range []int{2, 3, 5} {
		scheme, err := ExpDecayScheme(64, 0.5, deg)
		if err != nil {
			t.Fatalf("degree %d: %v", deg, err)
		}
		if scheme.TruncationError >= prev {
			t.Errorf("degree %d: truncation error %v did not shrink (prev %v)",
				deg, scheme.TruncationError, prev)
		}
		prev = scheme.TruncationError
	}
}

func TestTaylorSchemeValidation(t *testing.T) {
	if _, err := NewTaylorScheme(64, math.Exp, func(int) float64 { return 1 }, 0); err == nil {
		t.Error("degree 0 should error")
	}
	if _, err := ExpDecayScheme(64, -1, 3); err == nil {
		t.Error("negative rate should error")
	}
	// Degree-4 truncations of exp(-c t) have a root pair with real part
	// ~0.27/c inside (0,1) for all c >= 0.27: must be rejected.
	if _, err := ExpDecayScheme(64, 0.5, 4); err == nil {
		t.Error("infeasible degree-4 truncation should error")
	}
	// A target whose truncation has a root inside (0,1) must be rejected:
	// P(t) = 0.5 - t + 0*t^2 has root 0.5.
	_, err := NewTaylorScheme(64, func(t float64) float64 { return 0.5 - t },
		func(i int) float64 {
			switch i {
			case 0:
				return 0.5
			case 1:
				return -1
			default:
				return 0
			}
		}, 2)
	if err == nil {
		t.Error("root in (0,1) should be rejected")
	}
}
