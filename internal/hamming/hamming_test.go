package hamming

import (
	"math"
	"testing"

	"dsh/internal/bitvec"
	"dsh/internal/core"
	"dsh/internal/poly"
	"dsh/internal/xrand"
)

const testDim = 256

// pairsAt produces bit-vector pairs at exact relative Hamming distance t.
func pairsAt(rng *xrand.Rand, t float64) (Point, Point) {
	x := bitvec.Random(rng, testDim)
	r := int(math.Round(t * testDim))
	y := bitvec.AtDistance(rng, x, r)
	return x, y
}

func checkCPF(t *testing.T, fam core.Family[Point], ts []float64, trials int) {
	t.Helper()
	rng := xrand.NewFromString(t.Name() + fam.Name())
	for _, tt := range ts {
		est := core.EstimateCollision(rng, fam, pairsAt, tt, trials, 5)
		// Quantize the target to the lattice the generator can hit.
		tq := math.Round(tt*testDim) / testDim
		want := fam.CPF().Eval(tq)
		if !est.Interval.Contains(want) {
			t.Errorf("%s at t=%v: estimate %v (interval [%v,%v]) excludes analytic %v",
				fam.Name(), tt, est.P, est.Interval.Lo, est.Interval.Hi, want)
		}
	}
}

func TestBitSamplingCPF(t *testing.T) {
	checkCPF(t, BitSampling(testDim), []float64{0, 0.1, 0.25, 0.5, 0.9, 1}, 20000)
}

func TestAntiBitSamplingCPF(t *testing.T) {
	checkCPF(t, AntiBitSampling(testDim), []float64{0, 0.1, 0.25, 0.5, 0.9, 1}, 20000)
}

func TestAntiBitSamplingZeroDistanceNeverCollides(t *testing.T) {
	rng := xrand.New(1)
	fam := AntiBitSampling(testDim)
	x := bitvec.Random(rng, testDim)
	for i := 0; i < 2000; i++ {
		pair := fam.Sample(rng)
		if pair.Collides(x, x) {
			t.Fatal("anti bit-sampling must never collide at distance 0")
		}
	}
}

func TestScaledBitSamplingCPF(t *testing.T) {
	checkCPF(t, ScaledBitSampling(testDim, 0.6), []float64{0, 0.3, 0.7, 1}, 20000)
	checkCPF(t, ScaledBitSampling(testDim, 0), []float64{0.5}, 5000) // always collides
}

func TestScaledAntiBitSamplingCPF(t *testing.T) {
	checkCPF(t, ScaledAntiBitSampling(testDim, 0.4), []float64{0, 0.3, 0.7, 1}, 20000)
	checkCPF(t, ScaledAntiBitSampling(testDim, 0), []float64{0.5}, 5000) // never collides
}

func TestConstantFamilyCPF(t *testing.T) {
	checkCPF(t, ConstantFamily(0.35), []float64{0, 0.5, 1}, 20000)
}

func TestConstructorPanics(t *testing.T) {
	cases := []func(){
		func() { BitSampling(0) },
		func() { AntiBitSampling(-1) },
		func() { ScaledBitSampling(8, 1.5) },
		func() { ScaledAntiBitSampling(8, -0.1) },
		func() { ConstantFamily(2) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestRhoMinusAntiBitSampling(t *testing.T) {
	// Section 4.1: rho^- = ln f(r) / ln f(r/c) for f(t) = t.
	f := AntiBitSampling(testDim).CPF()
	r, c := 0.1, 2.0
	got := core.RhoMinus(f, r, r/c)
	want := math.Log(r) / math.Log(r/c)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("rho- = %v, want %v", got, want)
	}
	// The paper: for r < 1/e, rho^- = Omega(1/ln c): here ln(0.1)/ln(0.05) ~ 0.77.
	if got < 1/(3*math.Log(c)) {
		t.Errorf("rho- = %v suspiciously small", got)
	}
}

func TestMonotonePolynomialFamily(t *testing.T) {
	// P(t) = 0.2 + 0.3 t + 0.5 t^2.
	p := poly.New(0.2, 0.3, 0.5)
	fam, err := MonotonePolynomialFamily(testDim, p)
	if err != nil {
		t.Fatal(err)
	}
	f := fam.CPF()
	for _, tt := range []float64{0, 0.25, 0.5, 1} {
		if got, want := f.Eval(tt), p.Eval(tt); math.Abs(got-want) > 1e-12 {
			t.Errorf("CPF(%v) = %v, want %v", tt, got, want)
		}
	}
	checkCPF(t, fam, []float64{0, 0.3, 0.8}, 20000)
}

func TestMonotonePolynomialFamilyErrors(t *testing.T) {
	if _, err := MonotonePolynomialFamily(8, poly.New(0.5, -0.5, 1)); err == nil {
		t.Error("negative coefficient should error")
	}
	if _, err := MonotonePolynomialFamily(8, poly.New(0.5, 0.2)); err == nil {
		t.Error("coefficients not summing to 1 should error")
	}
	if _, err := MonotonePolynomialFamily(8, poly.Poly{}); err == nil {
		t.Error("zero polynomial should error")
	}
}

func TestPolynomialFamilyLinearNegativeRoot(t *testing.T) {
	// P(t) = t + 0.5, root -0.5 (S2 case): Delta = 2, CPF = (t+0.5)/2.
	p := poly.New(0.5, 1)
	scheme, err := PolynomialFamily(testDim, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(scheme.Delta-2) > 1e-9 {
		t.Errorf("Delta = %v, want 2", scheme.Delta)
	}
	fam := scheme.Family
	f := fam.CPF()
	target := scheme.TheoreticalCPF()
	for _, tt := range []float64{0, 0.25, 0.5, 1} {
		if got, want := f.Eval(tt), target.Eval(tt); math.Abs(got-want) > 1e-9 {
			t.Errorf("CPF(%v) = %v, want %v", tt, got, want)
		}
	}
	checkCPF(t, fam, []float64{0, 0.4, 1}, 20000)
}

func TestPolynomialFamilyBigNegativeRoot(t *testing.T) {
	// P(t) = t + 3, root -3 (S1 case): Delta = 2*3 = 6.
	scheme, err := PolynomialFamily(testDim, poly.New(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(scheme.Delta-6) > 1e-9 {
		t.Errorf("Delta = %v, want 6", scheme.Delta)
	}
	checkCPF(t, scheme.Family, []float64{0, 0.5, 1}, 20000)
}

func TestPolynomialFamilyPositiveRoot(t *testing.T) {
	// P(t) = 2 - t = (2 - t), root 2 (S3): Delta = 2 * |a_k|=1 -> 2.
	scheme, err := PolynomialFamily(testDim, poly.New(2, -1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(scheme.Delta-2) > 1e-9 {
		t.Errorf("Delta = %v, want 2", scheme.Delta)
	}
	// CPF should be (2-t)/2 = 1 - t/2.
	if got := scheme.Family.CPF().Eval(0.5); math.Abs(got-0.75) > 1e-9 {
		t.Errorf("CPF(0.5) = %v", got)
	}
	checkCPF(t, scheme.Family, []float64{0, 0.5, 1}, 20000)
}

func TestPolynomialFamilyRootAtZero(t *testing.T) {
	// P(t) = t^2 (double root at 0): CPF = t^2, Delta = 1.
	scheme, err := PolynomialFamily(testDim, poly.New(0, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(scheme.Delta-1) > 1e-9 {
		t.Errorf("Delta = %v, want 1", scheme.Delta)
	}
	if got := scheme.Family.CPF().Eval(0.5); math.Abs(got-0.25) > 1e-9 {
		t.Errorf("CPF(0.5) = %v", got)
	}
	checkCPF(t, scheme.Family, []float64{0.3, 0.9}, 20000)
}

func TestPolynomialFamilyComplexRootsNegativeRealPart(t *testing.T) {
	// P(t) = t^2 + 2t + 5: roots -1 +/- 2i, |z|^2 = 5 >= 1, a = -1 <= 0.
	// Unified S6: Delta = 4*5 = 20.
	p := poly.New(5, 2, 1)
	scheme, err := PolynomialFamily(testDim, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(scheme.Delta-20) > 1e-6 {
		t.Errorf("Delta = %v, want 20", scheme.Delta)
	}
	f := scheme.Family.CPF()
	target := scheme.TheoreticalCPF()
	for _, tt := range []float64{0, 0.3, 0.7, 1} {
		if got, want := f.Eval(tt), target.Eval(tt); math.Abs(got-want) > 1e-6 {
			t.Errorf("CPF(%v) = %v, want %v", tt, got, want)
		}
	}
	checkCPF(t, scheme.Family, []float64{0, 0.5, 1}, 20000)
}

func TestPolynomialFamilyComplexRootsSmallModulus(t *testing.T) {
	// P(t) = t^2 + t + 0.5: roots -0.5 +/- 0.5i, |z|^2 = 0.5 < 1 (S7).
	// Delta = 4 * max(1, 0.5) = 4.
	p := poly.New(0.5, 1, 1)
	scheme, err := PolynomialFamily(testDim, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(scheme.Delta-4) > 1e-6 {
		t.Errorf("Delta = %v, want 4", scheme.Delta)
	}
	checkCPF(t, scheme.Family, []float64{0, 0.5, 1}, 20000)
}

func TestPolynomialFamilyComplexRootsLargeNegative(t *testing.T) {
	// P(t) = t^2 + 4t + 8: roots -2 +/- 2i, a = -2 < -1 (S4).
	// Delta = 4 * |z|^2 = 4*8 = 32.
	p := poly.New(8, 4, 1)
	scheme, err := PolynomialFamily(testDim, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(scheme.Delta-32) > 1e-6 {
		t.Errorf("Delta = %v, want 32", scheme.Delta)
	}
	checkCPF(t, scheme.Family, []float64{0, 0.5, 1}, 20000)
}

func TestPolynomialFamilyComplexRootsPositive(t *testing.T) {
	// P(t) = t^2 - 4t + 8: roots 2 +/- 2i, a = 2 >= 1 (S5).
	// Delta = |z|^2 = 8.
	p := poly.New(8, -4, 1)
	scheme, err := PolynomialFamily(testDim, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(scheme.Delta-8) > 1e-6 {
		t.Errorf("Delta = %v, want 8", scheme.Delta)
	}
	checkCPF(t, scheme.Family, []float64{0, 0.5, 1}, 20000)
}

func TestPolynomialFamilyProduct(t *testing.T) {
	// P(t) = (t + 1)(2 - t) * 3: mixed roots, leading coeff -3.
	p := poly.New(1, 1).Mul(poly.New(2, -1)).Scale(3)
	scheme, err := PolynomialFamily(testDim, p)
	if err != nil {
		t.Fatal(err)
	}
	// Delta = |a_k| * 2^psi * prod_{|z|>1}|z| = 3 * 2 * 2 = 12.
	if math.Abs(scheme.Delta-12) > 1e-6 {
		t.Errorf("Delta = %v, want 12", scheme.Delta)
	}
	f := scheme.Family.CPF()
	for _, tt := range []float64{0, 0.5, 1} {
		want := p.Eval(tt) / scheme.Delta
		if got := f.Eval(tt); math.Abs(got-want) > 1e-6 {
			t.Errorf("CPF(%v) = %v, want %v", tt, got, want)
		}
	}
	checkCPF(t, scheme.Family, []float64{0, 0.5, 1}, 20000)
}

func TestPolynomialFamilyDeltaMatchesTheorem(t *testing.T) {
	// Verify Delta = |a_k| 2^psi prod_{|z|>1} |z| for an assorted set.
	cases := []struct {
		p    poly.Poly
		want float64
	}{
		{poly.New(0.5, 1), 2},                           // root -0.5: psi=1
		{poly.New(3, 1), 6},                             // root -3: psi=1, |z|=3
		{poly.New(2, -1), 2},                            // root 2: |z|=2
		{poly.New(5, 2, 1), 20},                         // -1±2i: psi=2, |z|^2=5
		{poly.New(8, 4, 1), 32},                         // -2±2i: psi=2, |z|^2=8
		{poly.New(8, -4, 1), 8},                         // 2±2i: |z|^2=8
		{poly.New(1, 1).Mul(poly.New(3, 1)), 2 * 2 * 3}, // roots -1,-3
	}
	for _, c := range cases {
		scheme, err := PolynomialFamily(64, c.p)
		if err != nil {
			t.Errorf("%s: %v", c.p, err)
			continue
		}
		if math.Abs(scheme.Delta-c.want) > 1e-6 {
			t.Errorf("%s: Delta = %v, want %v", c.p, scheme.Delta, c.want)
		}
	}
}

func TestPolynomialFamilyRejectsRootsInUnitInterval(t *testing.T) {
	// Root at 0.5.
	if _, err := PolynomialFamily(64, poly.New(-0.5, 1)); err == nil {
		t.Error("root in (0,1) should be rejected")
	}
	// Complex pair with real part 0.5: t^2 - t + 0.5.
	if _, err := PolynomialFamily(64, poly.New(0.5, -1, 1)); err == nil {
		t.Error("complex root with real part in (0,1) should be rejected")
	}
	// Constant polynomial.
	if _, err := PolynomialFamily(64, poly.New(3)); err == nil {
		t.Error("degree 0 should be rejected")
	}
}

func TestPolynomialCPFStaysInUnitRange(t *testing.T) {
	// The scheme CPF is a probability by construction; check numerically.
	ps := []poly.Poly{
		poly.New(5, 2, 1),
		poly.New(0.5, 1, 1),
		poly.New(1, 1).Mul(poly.New(2, -1)),
		poly.New(0, 0, 1),
	}
	for _, p := range ps {
		scheme, err := PolynomialFamily(64, p)
		if err != nil {
			t.Fatal(err)
		}
		f := scheme.Family.CPF()
		for tt := 0.0; tt <= 1.0001; tt += 0.05 {
			v := f.Eval(tt)
			if v < -1e-12 || v > 1+1e-12 {
				t.Errorf("%s: CPF(%v) = %v out of [0,1]", p, tt, v)
			}
		}
	}
}

func BenchmarkAntiBitSamplingSampleAndHash(b *testing.B) {
	rng := xrand.New(1)
	fam := AntiBitSampling(1024)
	x := bitvec.Random(rng, 1024)
	y := bitvec.Random(rng, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pair := fam.Sample(rng)
		if pair.Collides(x, y) {
			_ = pair
		}
	}
}
