package hamming

import (
	"fmt"
	"math"

	"dsh/internal/core"
	"dsh/internal/poly"
)

// TaylorScheme approximates an arbitrary analytic target CPF on Hamming
// space, following the closing remark of Section 5 of the paper: truncate
// the function's Taylor series to a polynomial and apply the Theorem 5.2
// construction to it. The achieved CPF is P_k(t)/Delta where P_k is the
// degree-k truncation.
type TaylorScheme struct {
	*PolynomialScheme
	// Target is the analytic function being approximated (pre-scaling).
	Target func(float64) float64
	// TruncationError bounds |Target(t) - P(t)| over [0, 1], estimated on
	// a grid.
	TruncationError float64
}

// NewTaylorScheme builds the scheme for the Taylor coefficients
// c(0), c(1), ..., c(degree) of the target function around 0. It fails if
// the truncated polynomial violates the Theorem 5.2 root condition (no
// roots with real part strictly inside (0, 1)).
func NewTaylorScheme(d int, target func(float64) float64, coeff func(i int) float64, degree int) (*TaylorScheme, error) {
	if degree < 1 {
		return nil, fmt.Errorf("hamming: Taylor degree must be >= 1")
	}
	p := poly.MonomialTaylor(degree, coeff)
	scheme, err := PolynomialFamily(d, p)
	if err != nil {
		return nil, fmt.Errorf("hamming: truncated Taylor polynomial unusable: %w", err)
	}
	ts := &TaylorScheme{
		PolynomialScheme: scheme,
		Target:           target,
	}
	for i := 0; i <= 64; i++ {
		t := float64(i) / 64
		if e := math.Abs(target(t) - p.Eval(t)); e > ts.TruncationError {
			ts.TruncationError = e
		}
	}
	return ts, nil
}

// TargetCPF returns the idealized CPF Target(t)/Delta the scheme
// approaches as the truncation degree grows.
func (ts *TaylorScheme) TargetCPF() core.CPF {
	return core.CPF{Domain: core.DomainRelativeHamming, Eval: func(t float64) float64 {
		return ts.Target(t) / ts.Delta
	}}
}

// ExpDecayScheme is a ready-made Taylor scheme for the exponential-decay
// CPF shape exp(-c*t) (up to the Theorem 5.2 scaling), a natural target
// for distance estimation with geometric accuracy. The Taylor coefficients
// (-c)^i / i! alternate in sign, which Lemma 1.4 mixtures cannot express;
// the root-factorization construction handles them.
//
// Feasibility depends irregularly on (c, degree): the roots of the
// truncated exponential series scale like 1/c, and the Theorem 5.2 root
// condition (no real parts in (0, 1)) fails whenever some root pair lands
// in that strip. Notably the degree-4 truncation has a conjugate pair with
// real part ~0.27/c, so degree 4 is infeasible for all c >= 0.27; degrees
// 2, 3, 5, 6, 7 work for moderate c. The constructor surfaces this as an
// error rather than guessing.
func ExpDecayScheme(d int, c float64, degree int) (*TaylorScheme, error) {
	if c <= 0 {
		return nil, fmt.Errorf("hamming: decay rate must be positive")
	}
	target := func(t float64) float64 { return math.Exp(-c * t) }
	coeff := func(i int) float64 {
		f := 1.0
		for j := 2; j <= i; j++ {
			f *= float64(j)
		}
		return math.Pow(-c, float64(i)) / f
	}
	return NewTaylorScheme(d, target, coeff, degree)
}
