package obs

import (
	"sync"
	"time"
)

// defaultTraceCap bounds the event ring of a registry: new events
// overwrite the oldest once the ring is full, so the trace is a sliding
// window over recent lifecycle activity, not a log.
const defaultTraceCap = 256

// Event is one lifecycle event: a freeze, a compaction, a GC fold, a
// snapshot-barrier fallback, a WAL rotation, a recovery phase, a durable
// fault. Kind is a constant string chosen by the recording site and A/B
// are two free integer payloads whose meaning the kind defines (rows and
// nanoseconds, bytes and position, ...) — events carry no formatted text,
// so recording one never allocates.
type Event struct {
	// Seq numbers events in record order across the whole trace (it keeps
	// counting as old events are overwritten, so gaps in a window reveal
	// how much was dropped).
	Seq  uint64
	Time time.Time
	Kind string
	A, B int64
}

// Trace is a bounded ring buffer of lifecycle events. Recording takes a
// short mutex (events are orders of magnitude rarer than counter
// updates — per freeze, not per insert) and writes into preallocated
// storage.
type Trace struct {
	mu   sync.Mutex
	ring []Event
	seq  uint64
}

// newTrace returns an empty trace with the given capacity.
func newTrace(capacity int) *Trace {
	if capacity <= 0 {
		capacity = defaultTraceCap
	}
	return &Trace{ring: make([]Event, capacity)}
}

// Record appends one event, overwriting the oldest when the ring is full.
func (t *Trace) Record(kind string, a, b int64) {
	now := time.Now()
	t.mu.Lock()
	t.ring[t.seq%uint64(len(t.ring))] = Event{
		Seq:  t.seq,
		Time: now,
		Kind: kind,
		A:    a,
		B:    b,
	}
	t.seq++
	t.mu.Unlock()
}

// Events returns the buffered events oldest-first. The slice is a copy.
func (t *Trace) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.seq
	capa := uint64(len(t.ring))
	start := uint64(0)
	count := n
	if n > capa {
		start = n - capa
		count = capa
	}
	out := make([]Event, 0, count)
	for s := start; s < n; s++ {
		out = append(out, t.ring[s%capa])
	}
	return out
}

// Trace returns the registry's event trace.
func (r *Registry) Trace() *Trace { return r.trace }

// RecordEvent records one lifecycle event in the Default registry's
// trace.
func RecordEvent(kind string, a, b int64) { Default.trace.Record(kind, a, b) }
