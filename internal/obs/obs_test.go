package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterStripesFold(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "test counter")
	for stripe := uint32(0); stripe < 3*numStripes; stripe++ {
		c.Add(stripe, uint64(stripe))
	}
	want := uint64(0)
	for s := uint32(0); s < 3*numStripes; s++ {
		want += uint64(s)
	}
	if got := c.Value(); got != want {
		t.Fatalf("Value = %d, want %d", got, want)
	}
}

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "test counter")
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(stripe uint32) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc(stripe)
			}
		}(NextStripe())
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("Value = %d, want %d", got, workers*perWorker)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.NewGauge("g", "test gauge")
	g.Set(7)
	if got := g.Value(); got != 7 {
		t.Fatalf("Value = %d, want 7", got)
	}
	g.Add(-9)
	if got := g.Value(); got != -2 {
		t.Fatalf("Value = %d, want -2", got)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("h_ns", "test histogram")
	// 1000 values at ~1µs, 10 values at ~1ms: p50 must land in the µs
	// decade and p999 in the ms decade.
	for i := 0; i < 1000; i++ {
		h.Observe(uint32(i), 1000)
	}
	for i := 0; i < 10; i++ {
		h.Observe(0, 1_000_000)
	}
	snap := h.Snapshot()
	if snap.Count != 1010 {
		t.Fatalf("Count = %d, want 1010", snap.Count)
	}
	if want := uint64(1000*1000 + 10*1_000_000); snap.Sum != want {
		t.Fatalf("Sum = %d, want %d", snap.Sum, want)
	}
	p50 := snap.Quantile(0.50)
	if p50 < 512 || p50 > 2048 {
		t.Fatalf("p50 = %g, want within the [512, 2048) bucket of 1000", p50)
	}
	p999 := snap.Quantile(0.999)
	if p999 < 512*1024 || p999 > 2*1024*1024 {
		t.Fatalf("p999 = %g, want within the ms bucket", p999)
	}
	if m := snap.Mean(); math.Abs(m-float64(snap.Sum)/1010) > 1e-9 {
		t.Fatalf("Mean = %g", m)
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("h_ns", "test histogram")
	empty := h.Snapshot()
	for _, q := range []float64{-1, 0, 0.5, 0.999, 1, 2} {
		if v := empty.Quantile(q); v != 0 {
			t.Fatalf("empty Quantile(%g) = %g, want 0", q, v)
		}
	}
	if empty.Mean() != 0 {
		t.Fatalf("empty Mean = %g, want 0", empty.Mean())
	}
	h.Observe(0, 0) // zero value lands in bucket 0
	h.Observe(0, math.MaxUint64)
	snap := h.Snapshot()
	if snap.Buckets[0] != 1 || snap.Buckets[numBuckets-1] != 1 {
		t.Fatalf("buckets = %v, want one zero and one overflow", snap.Buckets)
	}
	if v := snap.Quantile(1); math.IsNaN(v) || math.IsInf(v, 0) {
		t.Fatalf("Quantile(1) = %g", v)
	}
}

func TestTraceRingWrap(t *testing.T) {
	tr := newTrace(4)
	for i := 0; i < 10; i++ {
		tr.Record("k", int64(i), 0)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("len(events) = %d, want 4", len(evs))
	}
	for i, e := range evs {
		wantSeq := uint64(6 + i)
		if e.Seq != wantSeq || e.A != int64(wantSeq) || e.Kind != "k" {
			t.Fatalf("event %d = %+v, want seq %d", i, e, wantSeq)
		}
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.NewGauge("dup", "")
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "")
	g := r.NewGauge("g", "")
	h := r.NewHistogram("h_ns", "")
	c.Add(1, 41)
	c.Inc(2)
	g.Set(-3)
	h.Observe(0, 100)
	r.Trace().Record("freeze", 5, 6)
	snap := r.Snapshot()
	if snap.Counters["c_total"] != 42 {
		t.Fatalf("counter = %d, want 42", snap.Counters["c_total"])
	}
	if snap.Gauges["g"] != -3 {
		t.Fatalf("gauge = %d, want -3", snap.Gauges["g"])
	}
	if snap.Histograms["h_ns"].Count != 1 {
		t.Fatalf("histogram count = %d, want 1", snap.Histograms["h_ns"].Count)
	}
	if len(snap.Events) != 1 || snap.Events[0].Kind != "freeze" || snap.Events[0].A != 5 {
		t.Fatalf("events = %+v", snap.Events)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dsh_b_total", "second").Add(0, 2)
	r.NewCounter("dsh_a_total", "first").Add(0, 1)
	r.NewGauge("dsh_g", "a gauge").Set(9)
	h := r.NewHistogram("dsh_lat_ns", "latency")
	h.Observe(0, 1000)
	h.Observe(0, 3000)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP dsh_a_total first\n# TYPE dsh_a_total counter\ndsh_a_total 1\n",
		"# TYPE dsh_b_total counter\ndsh_b_total 2\n",
		"# TYPE dsh_g gauge\ndsh_g 9\n",
		"# TYPE dsh_lat_ns histogram\n",
		"dsh_lat_ns_bucket{le=\"+Inf\"} 2\n",
		"dsh_lat_ns_sum 4000\n",
		"dsh_lat_ns_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Counters must sort before each other deterministically.
	if strings.Index(out, "dsh_a_total") > strings.Index(out, "dsh_b_total") {
		t.Fatalf("metrics not sorted:\n%s", out)
	}
	// Cumulative bucket counts must be monotone and end at the count.
	prev := uint64(0)
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "dsh_lat_ns_bucket") {
			continue
		}
		var cum uint64
		if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &cum); err != nil {
			t.Fatalf("unparsable bucket line %q", line)
		}
		if cum < prev {
			t.Fatalf("bucket counts not cumulative at %q", line)
		}
		prev = cum
	}
	if prev != 2 {
		t.Fatalf("final cumulative bucket = %d, want 2", prev)
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("c_total", "").Add(0, 5)
	h := r.NewHistogram("h_ns", "")
	h.Observe(0, 2000)
	r.Trace().Record("compact", 1, 2)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters   map[string]uint64 `json:"counters"`
		Gauges     map[string]int64  `json:"gauges"`
		Histograms map[string]struct {
			Count uint64  `json:"count"`
			P50   float64 `json:"p50"`
			P999  float64 `json:"p999"`
		} `json:"histograms"`
		Events []struct {
			Kind string `json:"kind"`
			A    int64  `json:"a"`
		} `json:"events"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if doc.Counters["c_total"] != 5 {
		t.Fatalf("counter = %d, want 5", doc.Counters["c_total"])
	}
	if doc.Histograms["h_ns"].Count != 1 || doc.Histograms["h_ns"].P50 <= 0 {
		t.Fatalf("histogram = %+v", doc.Histograms["h_ns"])
	}
	if len(doc.Events) != 1 || doc.Events[0].Kind != "compact" {
		t.Fatalf("events = %+v", doc.Events)
	}
}

// TestRecordPathAllocFree pins the overhead contract: recording a
// counter, a histogram sample, or a trace event performs zero heap
// allocations.
func TestRecordPathAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "")
	h := r.NewHistogram("h_ns", "")
	tr := r.Trace()
	stripe := NextStripe()
	if n := testing.AllocsPerRun(1000, func() { c.Add(stripe, 3) }); n != 0 {
		t.Fatalf("Counter.Add allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(stripe, 12345) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { tr.Record("freeze.inline", 1, 2) }); n != 0 {
		t.Fatalf("Trace.Record allocates %v per op", n)
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "")
	stripe := NextStripe()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc(stripe)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.NewHistogram("h_ns", "")
	stripe := NextStripe()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(stripe, uint64(i))
	}
}
