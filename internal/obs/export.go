package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// WritePrometheus writes every registered metric in the Prometheus text
// exposition format (version 0.0.4), sorted by name: counters and gauges
// as single samples, histograms as cumulative le-labelled buckets plus
// _sum and _count. Histogram values are nanoseconds; the le bounds are
// the log2 bucket upper bounds.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	cs, gs, hs := r.sortedMetrics()
	for _, c := range cs {
		writeHeader(bw, c.name, c.help, "counter")
		fmt.Fprintf(bw, "%s %d\n", c.name, c.Value())
	}
	for _, g := range gs {
		writeHeader(bw, g.name, g.help, "gauge")
		fmt.Fprintf(bw, "%s %d\n", g.name, g.Value())
	}
	for _, h := range hs {
		writeHeader(bw, h.name, h.help, "histogram")
		snap := h.Snapshot()
		cum := uint64(0)
		for b, c := range snap.Buckets {
			cum += c
			if c == 0 && b != 0 {
				continue // elide empty buckets; cumulative counts stay exact
			}
			_, hi := bucketBounds(b)
			fmt.Fprintf(bw, "%s_bucket{le=\"%g\"} %d\n", h.name, hi, cum)
		}
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", h.name, snap.Count)
		fmt.Fprintf(bw, "%s_sum %d\n", h.name, snap.Sum)
		fmt.Fprintf(bw, "%s_count %d\n", h.name, snap.Count)
	}
	return bw.Flush()
}

// writeHeader writes the # HELP / # TYPE preamble of one metric family.
func writeHeader(w io.Writer, name, help, typ string) {
	if help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
}

// jsonHistogram is the JSON shape of one histogram: the folded totals
// plus extracted percentiles, which is what a human debugging over
// /debug/vars actually wants (the full bucket vector stays on the
// Prometheus endpoint).
type jsonHistogram struct {
	Count uint64  `json:"count"`
	Sum   uint64  `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
}

// jsonEvent is the JSON shape of one trace event.
type jsonEvent struct {
	Seq  uint64    `json:"seq"`
	Time time.Time `json:"time"`
	Kind string    `json:"kind"`
	A    int64     `json:"a"`
	B    int64     `json:"b"`
}

// WriteJSON writes an expvar-style JSON object with four top-level keys:
// "counters" and "gauges" (flat name→value maps), "histograms"
// (name→{count, sum, mean, p50, p99, p999}), and "events" (the trace,
// oldest first).
func (r *Registry) WriteJSON(w io.Writer) error {
	snap := r.Snapshot()
	hists := make(map[string]jsonHistogram, len(snap.Histograms))
	for name, h := range snap.Histograms {
		hists[name] = jsonHistogram{
			Count: h.Count,
			Sum:   h.Sum,
			Mean:  h.Mean(),
			P50:   h.Quantile(0.50),
			P99:   h.Quantile(0.99),
			P999:  h.Quantile(0.999),
		}
	}
	events := make([]jsonEvent, len(snap.Events))
	for i, e := range snap.Events {
		events[i] = jsonEvent{Seq: e.Seq, Time: e.Time, Kind: e.Kind, A: e.A, B: e.B}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]any{
		"counters":   snap.Counters,
		"gauges":     snap.Gauges,
		"histograms": hists,
		"events":     events,
	})
}
