// Package obs is the always-on, zero-dependency metrics plane of the
// serving core: atomic counters, gauges and fixed-bucket log2 latency
// histograms collected in a process-wide registry, plus a bounded
// ring-buffer trace of lifecycle events (freezes, compactions, GC folds,
// snapshot-barrier fallbacks, WAL rotations, recoveries, durable faults).
//
// The design contract is that recording is free enough to leave on in the
// hottest paths: every record operation is a handful of atomic adds into
// cache-line-padded per-stripe cells — no locks, no maps, no formatting,
// and no heap allocations (proven by alloc tests and the instrumented
// query/insert benchmarks). Writers are spread across a small power-of-two
// set of stripes so concurrent shards and query workers do not contend on
// one cache line; values are folded together only when a reader asks
// (Value, Snapshot, or one of the export encoders in this package).
//
// Instrumented components obtain a stripe id once at construction via
// NextStripe and pass it to every Add/Observe; anything without a natural
// home may use stripe 0 — correctness never depends on the stripe, only
// contention does.
package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// numStripes is the number of independent cells per counter/histogram.
// Power of two so stripe selection is a mask; 16 cells × 64 B = 1 KiB per
// counter, small enough to keep even a few dozen counters cache-resident.
const numStripes = 16

// stripeMask folds an arbitrary stripe id onto a cell index.
const stripeMask = numStripes - 1

// nextStripe distributes stripe ids round-robin across instrumented
// components (shards, queriers, WALs).
var nextStripe atomic.Uint32

// NextStripe returns a fresh stripe id. Components call it once at
// construction and reuse the id for every record; round-robin assignment
// keeps concurrent writers on distinct cache lines.
func NextStripe() uint32 { return nextStripe.Add(1) - 1 }

// cell is one counter stripe, padded to a full cache line so adjacent
// stripes never false-share.
type cell struct {
	v atomic.Uint64
	_ [56]byte
}

// Counter is a monotonically increasing striped counter. The zero value
// is not registered; create counters with NewCounter.
type Counter struct {
	name, help string
	cells      [numStripes]cell
}

// Add adds n to the counter on the given stripe. It performs one atomic
// add and never allocates.
func (c *Counter) Add(stripe uint32, n uint64) {
	c.cells[stripe&stripeMask].v.Add(n)
}

// Inc adds one to the counter on the given stripe.
func (c *Counter) Inc(stripe uint32) { c.Add(stripe, 1) }

// Value folds the stripes and returns the counter's current total.
func (c *Counter) Value() uint64 {
	var total uint64
	for i := range c.cells {
		total += c.cells[i].v.Load()
	}
	return total
}

// Name returns the registered metric name.
func (c *Counter) Name() string { return c.name }

// Gauge is a single instantaneous value (set, not accumulated): open
// snapshots, latched faults, last pinned epoch. Gauges are read and
// written rarely compared to counters, so they are a single unpadded
// atomic rather than a striped cell array.
type Gauge struct {
	name, help string
	v          atomic.Int64
}

// Set stores the gauge's value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta and returns the new value.
func (g *Gauge) Add(delta int64) int64 { return g.v.Add(delta) }

// Value returns the gauge's current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Name returns the registered metric name.
func (g *Gauge) Name() string { return g.name }

// numBuckets is the histogram bucket count: bucket b collects values v
// with bits.Len64(v) == b, i.e. v in [2^(b-1), 2^b), with bucket 0
// holding exactly zero and the last bucket absorbing everything at or
// above 2^(numBuckets-2). For nanosecond latencies the top bucket starts
// at 2^38 ns ≈ 4.6 min — far beyond any serving latency worth resolving.
const numBuckets = 40

// histStripe is one histogram stripe: per-bucket counts plus sum and
// count, padded out to a cache-line multiple.
type histStripe struct {
	buckets [numBuckets]atomic.Uint64
	sum     atomic.Uint64
	count   atomic.Uint64
	_       [48]byte
}

// Histogram is a striped fixed-bucket log2 histogram, built for recording
// nanosecond latencies on paths that must not allocate: Observe is three
// atomic adds, and percentile extraction happens only at read time from a
// folded Snapshot.
type Histogram struct {
	name, help string
	stripes    [numStripes]histStripe
}

// bucketOf maps a value onto its log2 bucket.
func bucketOf(v uint64) int {
	b := bits.Len64(v)
	if b >= numBuckets {
		b = numBuckets - 1
	}
	return b
}

// Observe records one value (typically a latency in nanoseconds) on the
// given stripe. It performs three atomic adds and never allocates.
func (h *Histogram) Observe(stripe uint32, v uint64) {
	s := &h.stripes[stripe&stripeMask]
	s.buckets[bucketOf(v)].Add(1)
	s.sum.Add(v)
	s.count.Add(1)
}

// Name returns the registered metric name.
func (h *Histogram) Name() string { return h.name }

// Snapshot folds the stripes into one HistogramSnapshot.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var out HistogramSnapshot
	for i := range h.stripes {
		s := &h.stripes[i]
		out.Sum += s.sum.Load()
		out.Count += s.count.Load()
		for b := range s.buckets {
			out.Buckets[b] += s.buckets[b].Load()
		}
	}
	return out
}

// HistogramSnapshot is a folded, immutable view of a Histogram.
type HistogramSnapshot struct {
	// Count is the number of recorded values and Sum their total, so
	// Sum/Count is the mean.
	Count, Sum uint64
	// Buckets[b] counts values v with bits.Len64(v) == b: bucket 0 holds
	// exactly zero, bucket b >= 1 holds [2^(b-1), 2^b), and the last
	// bucket absorbs everything above its lower bound.
	Buckets [numBuckets]uint64
}

// bucketBounds returns the value range [lo, hi) of bucket b.
func bucketBounds(b int) (lo, hi float64) {
	if b == 0 {
		return 0, 0
	}
	return float64(uint64(1) << (b - 1)), float64(uint64(1) << b)
}

// Quantile returns the q-quantile (q in [0, 1]) estimated by linear
// interpolation inside the covering log2 bucket; with no recorded values
// it returns 0. The log2 scheme bounds the relative error of any
// quantile by 2x, which is enough to tell 9 µs from 90 µs from 9 ms — the
// decisions a latency SLO actually turns on.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := 0.0
	for b, c := range s.Buckets {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum >= rank {
			lo, hi := bucketBounds(b)
			frac := 0.0
			if c > 0 {
				frac = (rank - prev) / float64(c)
			}
			return lo + frac*(hi-lo)
		}
	}
	_, hi := bucketBounds(numBuckets - 1)
	return hi
}

// Mean returns the arithmetic mean of the recorded values, or 0 with no
// records.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Registry holds a fixed set of named metrics. Registration happens at
// package init time of the instrumented components (and panics on a
// duplicate name); recording is lock-free afterwards. Default is the
// process-wide registry every component registers into; private
// registries exist for tests.
type Registry struct {
	mu         sync.Mutex
	counters   []*Counter
	gauges     []*Gauge
	histograms []*Histogram
	trace      *Trace
}

// Default is the process-wide registry, exported over HTTP by the obshttp
// package and snapshotted by dsh.Metrics.
var Default = NewRegistry()

// NewRegistry returns an empty registry with its own event trace.
func NewRegistry() *Registry {
	return &Registry{trace: newTrace(defaultTraceCap)}
}

// checkName panics when name is empty or already registered.
func (r *Registry) checkName(name string) {
	if name == "" {
		panic("obs: empty metric name")
	}
	for _, c := range r.counters {
		if c.name == name {
			panic(fmt.Sprintf("obs: duplicate metric %q", name))
		}
	}
	for _, g := range r.gauges {
		if g.name == name {
			panic(fmt.Sprintf("obs: duplicate metric %q", name))
		}
	}
	for _, h := range r.histograms {
		if h.name == name {
			panic(fmt.Sprintf("obs: duplicate metric %q", name))
		}
	}
}

// NewCounter registers a counter in r. It panics on a duplicate name.
func (r *Registry) NewCounter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name)
	c := &Counter{name: name, help: help}
	r.counters = append(r.counters, c)
	return c
}

// NewGauge registers a gauge in r. It panics on a duplicate name.
func (r *Registry) NewGauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name)
	g := &Gauge{name: name, help: help}
	r.gauges = append(r.gauges, g)
	return g
}

// NewHistogram registers a histogram in r. It panics on a duplicate name.
func (r *Registry) NewHistogram(name, help string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name)
	h := &Histogram{name: name, help: help}
	r.histograms = append(r.histograms, h)
	return h
}

// NewCounter registers a counter in the Default registry.
func NewCounter(name, help string) *Counter { return Default.NewCounter(name, help) }

// NewGauge registers a gauge in the Default registry.
func NewGauge(name, help string) *Gauge { return Default.NewGauge(name, help) }

// NewHistogram registers a histogram in the Default registry.
func NewHistogram(name, help string) *Histogram { return Default.NewHistogram(name, help) }

// Snapshot is a point-in-time copy of a registry: folded counter totals,
// gauge values, histogram snapshots, and the buffered trace events
// (oldest first). It is a plain value — embedders may retain, diff and
// serialize it freely.
type Snapshot struct {
	Counters   map[string]uint64
	Gauges     map[string]int64
	Histograms map[string]HistogramSnapshot
	Events     []Event
}

// Snapshot folds every metric and copies the trace. Counters on other
// stripes may advance while the fold runs; each individual metric is
// internally consistent (a single atomic fold), the set is not a global
// atomic cut.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := r.counters
	gauges := r.gauges
	histograms := r.histograms
	r.mu.Unlock()
	snap := Snapshot{
		Counters:   make(map[string]uint64, len(counters)),
		Gauges:     make(map[string]int64, len(gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(histograms)),
		Events:     r.trace.Events(),
	}
	for _, c := range counters {
		snap.Counters[c.name] = c.Value()
	}
	for _, g := range gauges {
		snap.Gauges[g.name] = g.Value()
	}
	for _, h := range histograms {
		snap.Histograms[h.name] = h.Snapshot()
	}
	return snap
}

// sortedMetrics returns the registered metrics sorted by name, for the
// deterministic export encoders.
func (r *Registry) sortedMetrics() (cs []*Counter, gs []*Gauge, hs []*Histogram) {
	r.mu.Lock()
	cs = append(cs, r.counters...)
	gs = append(gs, r.gauges...)
	hs = append(hs, r.histograms...)
	r.mu.Unlock()
	sort.Slice(cs, func(i, j int) bool { return cs[i].name < cs[j].name })
	sort.Slice(gs, func(i, j int) bool { return gs[i].name < gs[j].name })
	sort.Slice(hs, func(i, j int) bool { return hs[i].name < hs[j].name })
	return cs, gs, hs
}
